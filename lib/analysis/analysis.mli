(** Static structural analysis over AIGs.

    Facts a solver never has to discover: per-node shape metrics,
    SAT-discharged structural reduction, input-support prefiltering, and
    static diagnostics — plus the policy that turns the metrics into an
    engine-steering plan for the verification portfolio.  Everything here
    is computed before (or between) fixed-point runs; nothing depends on
    the correspondence engines. *)

(** Per-node structural metrics: logic level, fanout, register distance,
    combinational cone size, structural-hash signatures. *)
module Metrics : sig
  type t = {
    n : int;
    level : int array;  (** combinational depth; inputs/latches/const = 0 *)
    latch_dist : int array;
        (** min register crossings back to a PI; [max_int] = autonomous *)
    fanout : int array;  (** references as AND fanin, latch next or PO *)
    cone : int array;  (** nodes in the combinational transitive fanin, inclusive *)
    signature : int64 array;  (** structural hash, polarity-normalized fanins *)
  }

  val infinity_dist : int
  val make : Aig.t -> t

  type summary = {
    pis : int;
    latches : int;
    ands : int;
    pos : int;
    levels : int;
    max_cone : int;
    max_fanout : int;
    max_latch_dist : int;
    autonomous : int;  (** nodes with no structural path from any PI *)
    distinct_signatures : int;
  }

  val summarize : Aig.t -> t -> summary
  val summary : Aig.t -> summary
end

(** Primary-input support closed through latch next-state functions; the
    static candidate-equivalence prefilter is built on its disjointness
    queries. *)
module Prefilter : sig
  type t

  val make : Aig.t -> t
  val empty : t -> int -> bool
  (** No structural path from any PI (autonomous signal). *)

  val intersects : t -> int -> int -> bool

  val compatible : t -> int -> int -> bool
  (** May the two nodes stay equivalence candidates?  [false] exactly when
      both supports are non-empty and disjoint — splitting such a pair
      from a candidate class costs zero solver calls, preserves verdict
      soundness, and can only lose a proof that hinges on a semantically
      input-free pair whose vacuity is not structural. *)

  val support_size : t -> int -> int
end

(** Structural reduction: two-level AND rewriting, constant propagation
    (via the base constructors) and FRAIG-lite merging, one SAT-discharged
    proof obligation per merge. *)
module Reduce : sig
  type stats = {
    ands_before : int;
    ands_after : int;
    rewrites : int;  (** two-level identity applications during rebuild *)
    fraig_merges : int;  (** SAT-proven cone merges applied *)
    sat_calls : int;
    refuted : int;
    rounds : int;
    obligations : (int * int) list;
        (** literal pairs of the ORIGINAL circuit proven combinationally
            equivalent (latches free) — one discharged obligation per
            merge *)
  }

  val run : ?seed:int -> ?max_rounds:int -> ?n_words:int -> ?fraig:bool -> Aig.t -> Aig.t * stats
  (** Semantics-preserving: PIs and POs (names, order) are preserved
      exactly, and every merge is valid in every state, so all input
      traces produce identical output traces.  Latches keep their
      relative order and initialization, but an unobservable latch may be
      garbage collected with its dead cone.  Idempotent up to
      SAT-counterexample timing: a second pass finds nothing left to
      merge. *)

  val check_obligations : Aig.t -> (int * int) list -> (int * int) list
  (** Independently re-prove recorded obligations on the original circuit
      with a fresh solver; returns the pairs that FAIL (empty = all merges
      confirmed). *)

  val smart_and : int ref -> Aig.t -> int -> int -> int
  (** [smart_and rewrites dst a b] builds AND(a, b) in [dst] through the
      two-level rewrite rules (absorption, contradiction, substitution,
      subsumption) on top of the base structural hashing, bumping
      [rewrites] whenever an identity fires.  The strashing entry point the
      speculative reducer shares with [run]. *)
end

(** Static diagnostics (facts; lint assigns severities). *)
module Diag : sig
  type t = {
    acyclic : bool;
    structure_error : string option;
    undriven_latches : int list;
    dead_nodes : int list;  (** AND nodes no PO depends on *)
    unobservable_latches : int list;
    constant_pos : (string * bool) list;  (** (name, complemented) stuck POs *)
  }

  val run : Aig.t -> t
  val clean : t -> bool
end

(** Shape metrics -> portfolio rung ladder, plus the dynamic skip rules. *)
module Steer : sig
  type engine = Bdd | Sat
  type rung = { engine : engine; induction : int }
  type plan = { rungs : rung list; bdd_first : bool; reason : string }

  val bdd_latch_limit : int
  val bdd_level_limit : int

  val plan : ?max_unroll:int -> product_latches:int -> levels:int -> unit -> plan

  val redundant_after : completed:rung -> rung -> bool
  (** After [completed] finished its whole fixed point (Unknown, no blown
      budget), rungs of depth [<= completed.induction] would compute the
      same — or a coarser — relation and fail identically; skip them. *)

  val drop_on_exhaustion : reason:string option -> rung -> bool
  (** Drop later BDD rungs once one aborted on the node budget. *)

  (** Online per-class solve-cost model for the speculation dispatcher: an
      exponential moving average of past solve seconds keyed on (class id,
      engine), plus sticky exhaustion bans.  Consulted before the static
      cone/level thresholds. *)
  module Cost : sig
    type t

    val alpha : float
    (** EMA smoothing factor: estimate' = alpha*sample + (1-alpha)*estimate. *)

    val create : unit -> t
    val observe : t -> cls:int -> engine:engine -> float -> unit
    val estimate : t -> cls:int -> engine:engine -> float option
    val note_exhausted : t -> cls:int -> engine:engine -> unit
    val exhausted : t -> cls:int -> engine:engine -> bool

    val prefer : t -> cls:int -> default:engine -> engine option
    (** Proving-engine choice for one class: banned engines excluded
        ([None] when both are), cheaper EMA wins when both are known,
        [default] (the static-threshold pick) otherwise. *)
  end
end

(** One-stop report for `seqver analyze` and the bench shape columns. *)
type report = {
  name : string;
  metrics : Metrics.summary;
  reduce : Reduce.stats option;
  diag : Diag.t;
}

val report : ?reduce:bool -> name:string -> Aig.t -> report
val render : report -> string
val to_json : report -> string
