(* Engine steering: turn static shape metrics into a rung ladder for the
   verification portfolio, plus the two dynamic rules the portfolio applies
   as rungs finish (past-solve-cost feedback).

   Static policy.  The BDD engine is the paper's method and wins on small
   state spaces; its failure mode is variable-order blowup, which tracks
   the number of state variables (product latches) and the combinational
   depth far better than gate count.  So: BDD first below the latch/level
   thresholds, SAT first above them.  The deeper SAT rungs (k = 2, 3)
   always follow — they are the only rungs that can prove circuits whose
   invariant is not 1-step inductive.

   Dynamic rule 1 (same-depth skip).  The greatest fixed point of the
   refinement at induction depth k is a property of the product machine,
   not of the engine computing it.  If a rung COMPLETES its fixed point —
   verdict Unknown with no exhausted budget — every other rung at the
   same depth would compute the same relation and fail the same way, so
   the portfolio skips them.  Skipping is conclusion-preserving: it
   removes provably redundant work, never a possible proof.

   Dynamic rule 2 (escalate on blowup).  A rung that aborts on "bdd
   nodes" has demonstrated the order blowup the static policy tries to
   predict; the remaining same-depth SAT rung still runs (its budget is
   independent), but no further BDD rung is scheduled. *)

type engine = Bdd | Sat

type rung = { engine : engine; induction : int }

type plan = {
  rungs : rung list;  (* in execution order *)
  bdd_first : bool;
  reason : string;  (* one-line trace of the static decision *)
}

(* Thresholds calibrated on the built-in suite: the largest BDD-friendly
   product there has 60 state variables (bus), while tx — 128 state
   variables — drives the BDD engine past a 1.5M-node peak without
   converging.  Levels guard the same failure through combinational
   depth. *)
let bdd_latch_limit = 96
let bdd_level_limit = 80

let plan ?(max_unroll = 3) ~product_latches ~levels () =
  let bdd_first = product_latches <= bdd_latch_limit && levels <= bdd_level_limit in
  let reason =
    if bdd_first then
      Printf.sprintf "bdd-first: %d state vars <= %d, %d levels <= %d" product_latches
        bdd_latch_limit levels bdd_level_limit
    else
      Printf.sprintf "sat-first: %d state vars > %d or %d levels > %d" product_latches
        bdd_latch_limit levels bdd_level_limit
  in
  let k1 =
    if bdd_first then [ { engine = Bdd; induction = 1 }; { engine = Sat; induction = 1 } ]
    else [ { engine = Sat; induction = 1 }; { engine = Bdd; induction = 1 } ]
  in
  let deeper =
    List.init (max 0 (max_unroll - 1)) (fun i -> { engine = Sat; induction = i + 2 })
  in
  { rungs = k1 @ deeper; bdd_first; reason }

(* Dynamic rule 1: [completed] computed its whole fixed point (Unknown,
   no blown budget) — which later rungs are now redundant? *)
let redundant_after ~completed rung = rung.induction <= completed.induction

(* Dynamic rule 2: should this rung be dropped given an earlier abort
   reason (the [exhausted] stats field of a finished rung)? *)
let drop_on_exhaustion ~reason rung =
  match reason with Some "bdd nodes" -> rung.engine = Bdd | _ -> false

(* Online per-class solve-cost model for the speculation dispatcher: an
   exponential moving average of past solve times, keyed on (class id,
   engine).  The dispatcher consults it before the static thresholds, so a
   class whose cones look BDD-friendly but whose obligations keep timing
   the BDD manager out migrates to SAT after a few rounds — and vice
   versa.  Exhaustion (node-limit blowup, budget refusal) is sticky: a
   banned (class, engine) pair is never routed to that engine again, which
   is the fallback path's contract. *)
module Cost = struct
  type t = {
    ema : (int * engine, float) Hashtbl.t;
    banned : (int * engine, unit) Hashtbl.t;
  }

  (* EMA smoothing: new estimate = alpha * sample + (1 - alpha) * old. *)
  let alpha = 0.5

  let create () = { ema = Hashtbl.create 64; banned = Hashtbl.create 16 }

  let observe t ~cls ~engine seconds =
    let key = (cls, engine) in
    let v =
      match Hashtbl.find_opt t.ema key with
      | None -> seconds
      | Some old -> (alpha *. seconds) +. ((1. -. alpha) *. old)
    in
    Hashtbl.replace t.ema key v

  let estimate t ~cls ~engine = Hashtbl.find_opt t.ema (cls, engine)
  let note_exhausted t ~cls ~engine = Hashtbl.replace t.banned (cls, engine) ()
  let exhausted t ~cls ~engine = Hashtbl.mem t.banned (cls, engine)

  (* Pick between the two proving engines for [cls]: banned engines are
     excluded; with both estimates present the cheaper EMA wins; a single
     estimate wins only while the other side has no data and the estimate
     beats [default] (the static-threshold choice) — otherwise fall back
     to [default]. *)
  let prefer t ~cls ~default =
    let pick e = Some e in
    let b_banned = exhausted t ~cls ~engine:Bdd in
    let s_banned = exhausted t ~cls ~engine:Sat in
    if b_banned && s_banned then None
    else if b_banned then pick Sat
    else if s_banned then pick Bdd
    else
      match (estimate t ~cls ~engine:Bdd, estimate t ~cls ~engine:Sat) with
      | Some b, Some s -> pick (if b <= s then Bdd else Sat)
      | _ -> pick default
end
