(* Per-node structural metrics of an AIG.

   Everything here is a fact about the graph, not about its semantics:
   logic level (combinational depth), fanout, latch distance (the minimum
   number of register crossings separating a node from the primary
   inputs), combinational cone size, and a structural-hash signature per
   node.  The metrics feed three consumers: the `seqver analyze` report,
   the shape columns of `bench --json`, and the engine-steering policy of
   [Verify.portfolio] (see [Steer]). *)

type t = {
  n : int;
  level : int array;  (* combinational depth; inputs/latches/const = 0 *)
  latch_dist : int array;  (* min register crossings back to a PI; max_int = autonomous *)
  fanout : int array;  (* references as AND fanin, latch next or PO *)
  cone : int array;  (* nodes in the combinational transitive fanin, inclusive *)
  signature : int64 array;  (* structural hash, polarity-normalized fanins *)
}

let infinity_dist = max_int

(* 64-bit mixer (splitmix64 finalizer); good avalanche for cheap cost. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let combine a b = mix64 (Int64.add (mix64 a) (Int64.mul 0x9e3779b97f4a7c15L b))

let make aig =
  let n = Aig.num_nodes aig in
  let level = Array.make n 0 in
  let latch_dist = Array.make n infinity_dist in
  let fanout = Array.make n 0 in
  let cone = Array.make n 1 in
  let signature = Array.make n 0L in
  let words = (n + 63) / 64 in
  (* combinational cone membership as one bitset row per node; rows of
     PIs/latches/const contain just the node itself *)
  let rows = Array.make (n * words) 0L in
  let set_bit row id =
    let idx = (row * words) + (id lsr 6) in
    rows.(idx) <- Int64.logor rows.(idx) (Int64.shift_left 1L (id land 63))
  in
  let union_into dst src =
    let db = dst * words and sb = src * words in
    for w = 0 to words - 1 do
      rows.(db + w) <- Int64.logor rows.(db + w) rows.(sb + w)
    done
  in
  let popcount w =
    (* SWAR: parallel bit count in four steps *)
    let open Int64 in
    let w = sub w (logand (shift_right_logical w 1) 0x5555555555555555L) in
    let w =
      add (logand w 0x3333333333333333L) (logand (shift_right_logical w 2) 0x3333333333333333L)
    in
    let w = logand (add w (shift_right_logical w 4)) 0x0f0f0f0f0f0f0f0fL in
    to_int (shift_right_logical (mul w 0x0101010101010101L) 56)
  in
  let popcount_row row =
    let acc = ref 0 in
    let base = row * words in
    for w = 0 to words - 1 do
      acc := !acc + popcount rows.(base + w)
    done;
    !acc
  in
  let sig_lit l =
    let s = signature.(Aig.node_of_lit l) in
    if Aig.lit_is_compl l then Int64.lognot s else s
  in
  (* ascending ids are a topological order of the combinational structure,
     so one forward pass settles level, cone and signature *)
  for id = 0 to n - 1 do
    set_bit id id;
    match Aig.node aig id with
    | Aig.Const -> signature.(id) <- mix64 0x1L
    | Aig.Pi i -> signature.(id) <- combine 0x50L (Int64.of_int i)
    | Aig.Latch i -> signature.(id) <- combine 0x4cL (Int64.of_int i)
    | Aig.And (a, b) ->
      let na = Aig.node_of_lit a and nb = Aig.node_of_lit b in
      level.(id) <- 1 + max level.(na) level.(nb);
      fanout.(na) <- fanout.(na) + 1;
      fanout.(nb) <- fanout.(nb) + 1;
      union_into id na;
      union_into id nb;
      cone.(id) <- popcount_row id;
      (* fanins are sorted by [mk_and], so the hash is commutation-stable *)
      signature.(id) <- combine (sig_lit a) (sig_lit b)
  done;
  for i = 0 to Aig.num_latches aig - 1 do
    let nx = Aig.node_of_lit (Aig.latch_next aig i) in
    fanout.(nx) <- fanout.(nx) + 1
  done;
  List.iter
    (fun (_, l) ->
      let nl = Aig.node_of_lit l in
      fanout.(nl) <- fanout.(nl) + 1)
    (Aig.pos aig);
  (* latch distance: shortest register path from the inputs, through the
     latch feedback arcs — Bellman-Ford style to a fixed point, since the
     latch graph is cyclic *)
  List.iter (fun id -> latch_dist.(id) <- 0) (Aig.pis aig);
  let changed = ref true in
  while !changed do
    changed := false;
    for id = 0 to n - 1 do
      let improve d = if d < latch_dist.(id) then (latch_dist.(id) <- d; changed := true) in
      match Aig.node aig id with
      | Aig.Const | Aig.Pi _ -> ()
      | Aig.And (a, b) ->
        improve (min latch_dist.(Aig.node_of_lit a) latch_dist.(Aig.node_of_lit b))
      | Aig.Latch i ->
        let d = latch_dist.(Aig.node_of_lit (Aig.latch_next aig i)) in
        if d < infinity_dist then improve (d + 1)
    done
  done;
  { n; level; latch_dist; fanout; cone; signature }

(* --- aggregate shape -------------------------------------------------------- *)

type summary = {
  pis : int;
  latches : int;
  ands : int;
  pos : int;
  levels : int;  (* max combinational depth of any node *)
  max_cone : int;  (* largest combinational transitive fanin *)
  max_fanout : int;
  max_latch_dist : int;  (* deepest finite register distance *)
  autonomous : int;  (* nodes with no structural path from any PI *)
  distinct_signatures : int;
}

let summarize aig m =
  let levels = Array.fold_left max 0 m.level in
  let max_cone = Array.fold_left max 0 m.cone in
  let max_fanout = Array.fold_left max 0 m.fanout in
  let max_latch_dist =
    Array.fold_left (fun acc d -> if d < infinity_dist then max acc d else acc) 0 m.latch_dist
  in
  let autonomous =
    (* exclude the constant node: it is trivially input-free *)
    let c = ref 0 in
    for id = 1 to m.n - 1 do
      if m.latch_dist.(id) = infinity_dist then incr c
    done;
    !c
  in
  let seen = Hashtbl.create (2 * m.n) in
  Array.iter (fun s -> Hashtbl.replace seen s ()) m.signature;
  {
    pis = Aig.num_pis aig;
    latches = Aig.num_latches aig;
    ands = Aig.num_ands aig;
    pos = List.length (Aig.pos aig);
    levels;
    max_cone;
    max_fanout;
    max_latch_dist;
    autonomous;
    distinct_signatures = Hashtbl.length seen;
  }

let summary aig = summarize aig (make aig)
