(* Static structural diagnostics over an AIG.

   Facts only — the lint layer decides severities and wording.  The
   acyclicity fact deserves a note: AIG construction makes combinational
   cycles unrepresentable (AND fanins must reference earlier nodes), so
   [combinational_cycle] can only report a violation on a graph whose
   internal invariants were corrupted by construction-time mutation — the
   product machine after retiming augmentation is the interesting client,
   since it is grown in place. *)

type t = {
  acyclic : bool;  (* topological invariant intact; no combinational cycle *)
  structure_error : string option;  (* [Aig.validate] failure, if any *)
  undriven_latches : int list;  (* latch indices with no next-state function *)
  dead_nodes : int list;  (* AND node ids unreachable from every PO *)
  unobservable_latches : int list;  (* latch indices no PO depends on *)
  constant_pos : (string * bool) list;  (* outputs stuck at a constant literal *)
}

let run aig =
  let n = Aig.num_nodes aig in
  let structure_error =
    match Aig.validate aig with Ok () -> None | Error msg -> Some msg
  in
  let undriven_latches =
    (* [validate] reports the first offender; the per-latch list lets lint
       name every one *)
    List.filter_map
      (fun id ->
        let i = Aig.latch_index aig id in
        if Aig.latch_next aig i < 0 then Some i else None)
      (Aig.latch_ids aig)
  in
  (* acyclicity = the topological-order invariant of the representation:
     every AND reads strictly earlier nodes, every latch next is a valid
     literal of the graph *)
  let acyclic =
    let ok = ref true in
    for id = 1 to n - 1 do
      match Aig.node aig id with
      | Aig.And (a, b) ->
        if Aig.node_of_lit a >= id || Aig.node_of_lit b >= id then ok := false
      | Aig.Const | Aig.Pi _ | Aig.Latch _ -> ()
    done;
    !ok && undriven_latches = []
  in
  (* observability: mark the cone of the POs, pulling each reached latch's
     next-state cone in (the same closure [Aig.cleanup] removes against) *)
  let observable = Array.make n false in
  observable.(0) <- true;
  let rec mark id =
    if id < n && not observable.(id) then begin
      observable.(id) <- true;
      match Aig.node aig id with
      | Aig.And (a, b) ->
        mark (Aig.node_of_lit a);
        mark (Aig.node_of_lit b)
      | Aig.Latch i ->
        let nx = Aig.latch_next aig i in
        if nx >= 0 then mark (Aig.node_of_lit nx)
      | Aig.Const | Aig.Pi _ -> ()
    end
  in
  List.iter (fun (_, l) -> mark (Aig.node_of_lit l)) (Aig.pos aig);
  let dead_nodes = ref [] and unobservable_latches = ref [] in
  for id = n - 1 downto 1 do
    if not observable.(id) then begin
      match Aig.node aig id with
      | Aig.And _ -> dead_nodes := id :: !dead_nodes
      | Aig.Latch i -> unobservable_latches := i :: !unobservable_latches
      | Aig.Const | Aig.Pi _ -> ()
    end
  done;
  let constant_pos =
    List.filter_map
      (fun (name, l) ->
        if Aig.node_of_lit l = 0 then Some (name, Aig.lit_is_compl l) else None)
      (Aig.pos aig)
  in
  {
    acyclic;
    structure_error;
    undriven_latches;
    dead_nodes = !dead_nodes;
    unobservable_latches = !unobservable_latches;
    constant_pos;
  }

let clean d =
  d.acyclic && d.structure_error = None && d.undriven_latches = [] && d.dead_nodes = []
  && d.unobservable_latches = [] && d.constant_pos = []
