(* Structural reduction: one-level rewriting + constant propagation +
   FRAIG-lite merging of equivalent cones.

   The pass has two stages.  First, random simulation partitions the AND
   nodes into candidate classes by (polarity-normalized) signature and a
   SAT solver discharges one proof obligation per candidate merge: the
   merge is applied only on an UNSAT answer, i.e. only when the two cones
   are combinationally equivalent for every input AND every state (latches
   are free variables), so every merge is valid in any reachable or
   unreachable state — the semantics-preservation argument is per-merge
   and machine-checked, and the discharged obligations are returned so a
   caller (or test) can replay them independently with
   [check_obligations].  Second, the graph is rebuilt bottom-up through a
   rewriting constructor that applies the two-level AND identities —
   absorption, substitution, subsumption, contradiction — on top of the
   base strashing/constant folding of [Aig.mk_and]; each rewrite is
   justified by a named Boolean identity, not by a solver.

   Primary inputs and primary outputs (names, order) are preserved
   exactly, so any input trace drives the reduced circuit to the same
   output trace as the original.  Latches keep their relative order and
   initialization, but a latch no output can reach may be garbage
   collected with the rest of its dead cone (observationally invisible by
   construction). *)

type stats = {
  ands_before : int;
  ands_after : int;
  rewrites : int;  (* two-level identity applications during rebuild *)
  fraig_merges : int;  (* SAT-proven cone merges applied *)
  sat_calls : int;
  refuted : int;  (* candidate merges disproved by a counterexample *)
  rounds : int;
  obligations : (int * int) list;
      (* the discharged proof obligations: literal pairs of the ORIGINAL
         circuit proven combinationally equivalent (latches free) *)
}

(* --- the rewriting constructor ---------------------------------------------- *)

(* Two-level lookahead on top of [Aig.mk_and].  [count] is bumped once per
   identity applied.  All rules are stated for [a AND b]:

     absorption      a /\ (a /\ y)        = a /\ y
     contradiction   a /\ (~a /\ y)       = 0
     substitution    a /\ ~(a /\ y)       = a /\ ~y
     subsumption     ~a /\ ~(a /\ y)      = ~a
     sharing-clash   (x /\ y) /\ (~x /\ v) = 0

   Substitution recurses through the constructor, so a chain of nested
   ANDs collapses in one rebuild pass. *)
let rec smart_and count dst a b =
  let decomp l =
    match Aig.node dst (Aig.node_of_lit l) with
    | Aig.And (x, y) -> Some (x, y)
    | Aig.Const | Aig.Pi _ | Aig.Latch _ -> None
  in
  let rule_vs a b =
    (* identities driven by [b]'s top node; [None] = no rule fires *)
    match decomp b with
    | None -> None
    | Some (x, y) ->
      if Aig.lit_is_compl b then
        if a = x then Some (smart_and count dst a (Aig.lit_not y)) (* substitution *)
        else if a = y then Some (smart_and count dst a (Aig.lit_not x))
        else if a = Aig.lit_not x || a = Aig.lit_not y then Some a (* subsumption *)
        else None
      else if a = x || a = y then Some b (* absorption *)
      else if a = Aig.lit_not x || a = Aig.lit_not y then Some Aig.lit_false
        (* contradiction *)
      else
        (* sharing-clash: both conjunctions, complementary conjunct *)
        match decomp a with
        | Some (u, v)
          when (not (Aig.lit_is_compl a))
               && (x = Aig.lit_not u || x = Aig.lit_not v || y = Aig.lit_not u
                 || y = Aig.lit_not v) ->
          Some Aig.lit_false
        | _ -> None
  in
  match rule_vs a b with
  | Some l ->
    incr count;
    l
  | None -> (
    match rule_vs b a with
    | Some l ->
      incr count;
      l
    | None -> Aig.mk_and dst a b)

(* --- FRAIG-lite candidate discovery ------------------------------------------ *)

(* Random simulation signatures over [width] 64-bit words; latches get
   random words too (free variables), matching the SAT obligation. *)
let signatures aig patterns =
  let n = Aig.num_nodes aig in
  let width = List.length patterns in
  let sigs = Array.make n [||] in
  List.iteri
    (fun w (pi_words, latch_words) ->
      let values = Aig.Sim.eval_comb aig ~pi_words ~latch_words in
      for id = 0 to n - 1 do
        if w = 0 then sigs.(id) <- Array.make width 0L;
        sigs.(id).(w) <- values.(id)
      done)
    patterns;
  sigs

let run ?(seed = 7) ?(max_rounds = 16) ?(n_words = 4) ?(fraig = true) aig =
  let n = Aig.num_nodes aig in
  let n_pis = Aig.num_pis aig and n_latches = Aig.num_latches aig in
  let ands_before = Aig.num_ands aig in
  let sat_calls = ref 0 and merged = ref 0 and refuted = ref 0 and rounds = ref 0 in
  let obligations = ref [] in
  (* merge_to.(id) = original literal the node merges into, or -1 *)
  let merge_to = Array.make n (-1) in
  if fraig && ands_before > 0 then begin
    let rng = Random.State.make [| seed; 0xa9a1; n |] in
    let fresh_pattern () =
      ( Array.init n_pis (fun _ -> Random.State.int64 rng Int64.max_int),
        Array.init n_latches (fun _ -> Random.State.int64 rng Int64.max_int) )
    in
    let patterns = ref (List.init n_words (fun _ -> fresh_pattern ())) in
    let solver = Sat.create () in
    let pi_vars, latch_vars, sat_lit = Aig.Cnf.encode_fresh solver aig in
    let distinct : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
    let round () =
      incr rounds;
      let sigs = signatures aig !patterns in
      let normalize s =
        if Int64.logand s.(0) 1L = 1L then (true, Array.map Int64.lognot s)
        else (false, Array.copy s)
      in
      let classes : (int64 array, (int * bool) list) Hashtbl.t = Hashtbl.create 256 in
      for id = n - 1 downto 1 do
        match Aig.node aig id with
        | Aig.And _ when merge_to.(id) < 0 ->
          let compl, key = normalize sigs.(id) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt classes key) in
          Hashtbl.replace classes key ((id, compl) :: prev)
        | Aig.And _ | Aig.Const | Aig.Pi _ | Aig.Latch _ -> ()
      done;
      let n_cex = ref 0 in
      let prove rep rep_compl (id, compl) =
        if id <> rep && merge_to.(id) < 0 && not (Hashtbl.mem distinct (rep, id)) then begin
          let pol = compl <> rep_compl in
          let l_rep = Aig.lit_of_node rep in
          let l_id =
            if pol then Aig.lit_not (Aig.lit_of_node id) else Aig.lit_of_node id
          in
          (* obligation: l_rep XOR l_id is unsatisfiable (latches free) *)
          let sel = Sat.Lit.pos (Sat.new_var solver) in
          let nsel = Sat.Lit.negate sel in
          let va = sat_lit l_rep and vb = sat_lit l_id in
          Sat.add_clause solver [ nsel; va; vb ];
          Sat.add_clause solver [ nsel; Sat.Lit.negate va; Sat.Lit.negate vb ];
          incr sat_calls;
          (match Sat.solve ~assumptions:[ sel ] solver with
          | Sat.Unsat ->
            incr merged;
            merge_to.(id) <- (if pol then Aig.lit_not l_rep else l_rep);
            obligations := (l_rep, l_id) :: !obligations
          | Sat.Sat ->
            incr refuted;
            Hashtbl.replace distinct (rep, id) ();
            incr n_cex;
            let word_of v = if Sat.value solver v then -1L else 0L in
            patterns := (Array.map word_of pi_vars, Array.map word_of latch_vars) :: !patterns);
          Sat.add_clause solver [ nsel ]
        end
      in
      Hashtbl.iter
        (fun _ members ->
          match List.sort compare members with
          | [] | [ _ ] -> ()
          | (rep, rep_compl) :: rest -> List.iter (prove rep rep_compl) rest)
        classes;
      !n_cex
    in
    let rec iterate k = if k > 0 && round () > 0 then iterate (k - 1) in
    iterate max_rounds
  end;
  (* rebuild: apply the proven merges, then the rewriting constructor *)
  let rewrites = ref 0 in
  let dst = Aig.create () in
  let map = Array.make n (-1) in
  map.(0) <- 0;
  let pi_lits = Array.of_list (List.map (fun _ -> Aig.add_pi dst) (Aig.pis aig)) in
  let latch_lits =
    Array.init n_latches (fun i -> Aig.add_latch dst ~init:(Aig.latch_init aig i))
  in
  let tr_lit l = map.(Aig.node_of_lit l) lxor (l land 1) in
  for id = 0 to n - 1 do
    map.(id) <-
      (match Aig.node aig id with
      | Aig.Const -> 0
      | Aig.Pi i -> pi_lits.(i)
      | Aig.Latch i -> latch_lits.(i)
      | Aig.And (a, b) ->
        if merge_to.(id) >= 0 then tr_lit merge_to.(id)
        else smart_and rewrites dst (tr_lit a) (tr_lit b))
  done;
  for i = 0 to n_latches - 1 do
    Aig.set_latch_next dst latch_lits.(i) ~next:(tr_lit (Aig.latch_next aig i))
  done;
  List.iter (fun (name, l) -> Aig.add_po dst name (tr_lit l)) (Aig.pos aig);
  let reduced, _ = Aig.cleanup dst in
  ( reduced,
    {
      ands_before;
      ands_after = Aig.num_ands reduced;
      rewrites = !rewrites;
      fraig_merges = !merged;
      sat_calls = !sat_calls;
      refuted = !refuted;
      rounds = !rounds;
      obligations = List.rev !obligations;
    } )

(* --- independent replay of the proof obligations ------------------------------ *)

(* Re-prove each recorded merge on the ORIGINAL circuit with a fresh
   solver: for every obligation (a, b), check that a XOR b is
   unsatisfiable with latches as free variables.  Returns the obligations
   that fail (empty list = all merges independently confirmed). *)
let check_obligations aig obligations =
  let solver = Sat.create () in
  let _, _, sat_lit = Aig.Cnf.encode_fresh solver aig in
  List.filter
    (fun (a, b) ->
      let va = sat_lit a and vb = sat_lit b in
      let sel = Sat.Lit.pos (Sat.new_var solver) in
      let nsel = Sat.Lit.negate sel in
      Sat.add_clause solver [ nsel; va; vb ];
      Sat.add_clause solver [ nsel; Sat.Lit.negate va; Sat.Lit.negate vb ];
      let r = Sat.solve ~assumptions:[ sel ] solver in
      Sat.add_clause solver [ nsel ];
      r <> Sat.Unsat)
    obligations
