(* Public API of the static-analysis library; see analysis.mli. *)

module Metrics = Metrics
module Prefilter = Prefilter
module Reduce = Reduce
module Diag = Diag
module Steer = Steer

type report = {
  name : string;
  metrics : Metrics.summary;
  reduce : Reduce.stats option;
  diag : Diag.t;
}

let report ?(reduce = true) ~name aig =
  let metrics = Metrics.summary aig in
  let diag = Diag.run aig in
  let reduce =
    if not reduce then None
    else
      let _, stats = Reduce.run aig in
      Some stats
  in
  { name; metrics; reduce; diag }

(* --- human rendering ---------------------------------------------------------- *)

let render r =
  let buf = Buffer.create 512 in
  let m = r.metrics in
  Buffer.add_string buf
    (Printf.sprintf "%s: %d pis, %d latches, %d ands, %d pos\n" r.name m.Metrics.pis
       m.Metrics.latches m.Metrics.ands m.Metrics.pos);
  Buffer.add_string buf
    (Printf.sprintf
       "  shape: %d levels, max cone %d, max fanout %d, max latch distance %d, %d \
        autonomous node(s), %d distinct signatures\n"
       m.Metrics.levels m.Metrics.max_cone m.Metrics.max_fanout m.Metrics.max_latch_dist
       m.Metrics.autonomous m.Metrics.distinct_signatures);
  (match r.reduce with
  | None -> ()
  | Some s ->
    Buffer.add_string buf
      (Printf.sprintf
         "  reduction: %d -> %d ands (%d rewrites, %d fraig merges; %d sat calls, %d \
          refuted, %d rounds)\n"
         s.Reduce.ands_before s.Reduce.ands_after s.Reduce.rewrites s.Reduce.fraig_merges
         s.Reduce.sat_calls s.Reduce.refuted s.Reduce.rounds));
  let d = r.diag in
  if Diag.clean d then Buffer.add_string buf "  diagnostics: clean\n"
  else begin
    (match d.Diag.structure_error with
    | Some msg -> Buffer.add_string buf (Printf.sprintf "  structure error: %s\n" msg)
    | None -> ());
    if not d.Diag.acyclic then
      Buffer.add_string buf "  combinational-cycle/topological invariant VIOLATED\n";
    if d.Diag.undriven_latches <> [] then
      Buffer.add_string buf
        (Printf.sprintf "  undriven latches: %s\n"
           (String.concat ", " (List.map string_of_int d.Diag.undriven_latches)));
    if d.Diag.dead_nodes <> [] then
      Buffer.add_string buf
        (Printf.sprintf "  dead nodes (no PO depends on them): %d\n"
           (List.length d.Diag.dead_nodes));
    if d.Diag.unobservable_latches <> [] then
      Buffer.add_string buf
        (Printf.sprintf "  unobservable latches: %s\n"
           (String.concat ", " (List.map string_of_int d.Diag.unobservable_latches)));
    List.iter
      (fun (po, v) ->
        Buffer.add_string buf
          (Printf.sprintf "  constant output: %s stuck at %d\n" po (if v then 0 else 1)))
      d.Diag.constant_pos
  end;
  Buffer.contents buf

(* --- JSON rendering ------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let json_int_list l = "[" ^ String.concat "," (List.map string_of_int l) ^ "]"

(* Schema: {"name": string, "metrics": {...}, "reduction": {...}|null,
   "diagnostics": {...}} *)
let to_json r =
  let m = r.metrics in
  let metrics =
    Printf.sprintf
      {|{"pis":%d,"latches":%d,"ands":%d,"pos":%d,"levels":%d,"max_cone":%d,"max_fanout":%d,"max_latch_dist":%d,"autonomous":%d,"distinct_signatures":%d}|}
      m.Metrics.pis m.Metrics.latches m.Metrics.ands m.Metrics.pos m.Metrics.levels
      m.Metrics.max_cone m.Metrics.max_fanout m.Metrics.max_latch_dist m.Metrics.autonomous
      m.Metrics.distinct_signatures
  in
  let reduction =
    match r.reduce with
    | None -> "null"
    | Some s ->
      Printf.sprintf
        {|{"ands_before":%d,"ands_after":%d,"rewrites":%d,"fraig_merges":%d,"sat_calls":%d,"refuted":%d,"rounds":%d,"obligations":%d}|}
        s.Reduce.ands_before s.Reduce.ands_after s.Reduce.rewrites s.Reduce.fraig_merges
        s.Reduce.sat_calls s.Reduce.refuted s.Reduce.rounds
        (List.length s.Reduce.obligations)
  in
  let d = r.diag in
  let diagnostics =
    Printf.sprintf
      {|{"clean":%b,"acyclic":%b,"structure_error":%s,"undriven_latches":%s,"dead_nodes":%d,"unobservable_latches":%s,"constant_pos":%d}|}
      (Diag.clean d) d.Diag.acyclic
      (match d.Diag.structure_error with
      | Some e -> Printf.sprintf {|"%s"|} (json_escape e)
      | None -> "null")
      (json_int_list d.Diag.undriven_latches)
      (List.length d.Diag.dead_nodes)
      (json_int_list d.Diag.unobservable_latches)
      (List.length d.Diag.constant_pos)
  in
  Printf.sprintf {|{"name":"%s","metrics":%s,"reduction":%s,"diagnostics":%s}|}
    (json_escape r.name) metrics reduction diagnostics
