(* Primary-input support, closed through the latch next-state functions.

   supp(v) is the set of PIs with a structural path to v, where a path may
   pass through any number of registers (each latch contributes its
   next-state cone).  Structural support over-approximates semantic
   support, which gives the static candidate-equivalence prefilter its
   contract: two signals with DISJOINT non-empty structural supports can
   only be sequentially equivalent if both are semantically input-free —
   so splitting such a pair out of a candidate class costs zero solver
   calls and is almost always right.  The "almost" is why the split is a
   heuristic refinement: it preserves soundness of the verdict (splits
   never fabricate an equivalence) but can in principle lose a proof that
   hinges on an input-vacuous pair whose vacuity is not structural.
   Signals with EMPTY structural support (autonomous counters, stuck
   constants) are never split from anything: they are exactly the
   candidates whose equivalences live beyond the inputs' reach. *)

type t = {
  n : int;
  n_pis : int;
  words : int;  (* words per row: ceil(n_pis / 64) *)
  rows : int64 array;  (* n rows of [words] int64s *)
}

let make aig =
  let n = Aig.num_nodes aig in
  let n_pis = Aig.num_pis aig in
  let words = max 1 ((n_pis + 63) / 64) in
  let t = { n; n_pis; words; rows = Array.make (n * words) 0L } in
  List.iter
    (fun id ->
      let i = Aig.pi_index aig id in
      let idx = (id * t.words) + (i lsr 6) in
      t.rows.(idx) <- Int64.logor t.rows.(idx) (Int64.shift_left 1L (i land 63)))
    (Aig.pis aig);
  let union_into dst src =
    if dst = src then false
    else begin
      let changed = ref false in
      let db = dst * t.words and sb = src * t.words in
      for w = 0 to t.words - 1 do
        let v = Int64.logor t.rows.(db + w) t.rows.(sb + w) in
        if v <> t.rows.(db + w) then begin
          t.rows.(db + w) <- v;
          changed := true
        end
      done;
      !changed
    end
  in
  (* iterate to a fixed point: the latch feedback arcs make the support
     relation recursive *)
  let changed = ref true in
  while !changed do
    changed := false;
    for id = 0 to n - 1 do
      match Aig.node aig id with
      | Aig.Const | Aig.Pi _ -> ()
      | Aig.And (a, b) ->
        if union_into id (Aig.node_of_lit a) then changed := true;
        if union_into id (Aig.node_of_lit b) then changed := true
      | Aig.Latch i ->
        if union_into id (Aig.node_of_lit (Aig.latch_next aig i)) then changed := true
    done
  done;
  t

let empty t id =
  let base = id * t.words in
  let rec go w = w >= t.words || (t.rows.(base + w) = 0L && go (w + 1)) in
  go 0

let intersects t a b =
  let ab = a * t.words and bb = b * t.words in
  let rec go w =
    w < t.words && (Int64.logand t.rows.(ab + w) t.rows.(bb + w) <> 0L || go (w + 1))
  in
  go 0

(* The prefilter predicate: may [a] and [b] stay candidates for
   equivalence?  Yes unless both supports are non-empty and disjoint. *)
let compatible t a b =
  a >= t.n || b >= t.n || empty t a || empty t b || intersects t a b

let support_size t id =
  let acc = ref 0 in
  let base = id * t.words in
  for w = 0 to t.words - 1 do
    let x = ref t.rows.(base + w) in
    while !x <> 0L do
      acc := !acc + Int64.(to_int (logand !x 1L));
      x := Int64.shift_right_logical !x 1
    done
  done;
  !acc
