(* Client side of the serve protocol: connect, send newline-framed JSON
   requests, read newline-framed JSON responses.  Used by the [seqver
   submit] subcommand and the benchmark's [--serve] mode. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

type t = { fd : Unix.file_descr; buf : Buffer.t }

let connect ?tcp ?socket () =
  let addr =
    match (tcp, socket) with
    | Some (host, port), _ ->
      let ip =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> fail "unknown host %s" host
      in
      Unix.ADDR_INET (ip, port)
    | None, Some path -> Unix.ADDR_UNIX path
    | None, None -> fail "no daemon address (need a socket path or host:port)"
  in
  let fd =
    Unix.socket (match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET)
      Unix.SOCK_STREAM 0
  in
  (try Unix.connect fd addr
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     fail "cannot connect to the daemon: %s" (Unix.error_message e));
  { fd; buf = Buffer.create 256 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

let send t req =
  let line = Protocol.request_to_line req ^ "\n" in
  try write_all t.fd line 0 (String.length line)
  with Unix.Unix_error (e, _, _) -> fail "write to daemon failed: %s" (Unix.error_message e)

(* Read the next newline-framed response; blocks until one arrives. *)
let next t =
  let rec read_line () =
    let text = Buffer.contents t.buf in
    match String.index_opt text '\n' with
    | Some nl ->
      Buffer.clear t.buf;
      Buffer.add_string t.buf (String.sub text (nl + 1) (String.length text - nl - 1));
      String.sub text 0 nl
    | None -> (
      let bytes = Bytes.create 65536 in
      match Unix.read t.fd bytes 0 (Bytes.length bytes) with
      | 0 -> fail "daemon closed the connection"
      | n ->
        Buffer.add_subbytes t.buf bytes 0 n;
        read_line ()
      | exception Unix.Unix_error (e, _, _) ->
        fail "read from daemon failed: %s" (Unix.error_message e))
  in
  let line = read_line () in
  match Protocol.decode_response line with
  | Ok resp -> resp
  | Error msg -> fail "malformed response %S: %s" line msg

let request t req =
  send t req;
  next t

(* Submit and follow one job to completion: stream progress to
   [on_progress], return the final outcome.  Raises {!Error} on protocol
   trouble (including an [error] response). *)
let submit_and_wait ?(on_progress = fun ~round:_ ~iteration:_ ~classes:_ ~engine:_ -> ()) t
    ~spec ~impl ~opts () =
  send t (Protocol.Submit { spec; impl; opts; watch = true });
  let job_id = ref "" in
  let rec loop () =
    match next t with
    | Protocol.Submitted { job; cached = _ } ->
      job_id := job;
      loop ()
    | Protocol.Progress { job = _; round; iteration; classes; engine } ->
      on_progress ~round ~iteration ~classes ~engine;
      loop ()
    | Protocol.Job_result { job = _; outcome } -> (!job_id, outcome)
    | Protocol.Error_resp msg -> fail "%s" msg
    | _ -> loop ()
  in
  loop ()
