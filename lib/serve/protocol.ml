(* The serve wire protocol: one JSON object per line, in both directions.

   Requests carry a ["req"] discriminator, responses a ["resp"] one, so a
   line is self-describing and a client can interleave streamed progress
   events with direct replies.  Decoding is total: malformed lines come
   back as [Error msg] (the daemon answers them with an [error] response
   and keeps the connection), never an exception across the boundary.

   Counterexample traces are shipped as one '0'/'1' string per frame
   (["0110", "1011"]) — compact, order-preserving, and trivially
   comparable in shell tests. *)

type circuit =
  | Path of string  (** a file the daemon reads (server-side path) *)
  | Aag of string  (** inline ASCII AIGER text (cwd-independent) *)

type verify_opts = {
  meth : string;  (** ["scorr"] | ["auto"] *)
  engine : string;  (** ["bdd"] | ["sat"] *)
  induction : int;  (** SAT-engine unrolling depth *)
  seed : int;
  analysis : bool;
  incremental : bool;  (** persistent per-lane SAT solvers (default) *)
  speculate : bool;  (** speculative reduction with the per-class dispatcher *)
  deadline : float;  (** per-job wall budget, seconds; 0 = none *)
}

let default_opts =
  {
    meth = "scorr";
    engine = "bdd";
    induction = 1;
    seed = 1;
    analysis = false;
    incremental = true;
    speculate = false;
    deadline = 0.0;
  }

type request =
  | Submit of { spec : circuit; impl : circuit; opts : verify_opts; watch : bool }
  | Status of string
  | Result of { job : string; wait : bool }
  | Cancel of string
  | Stats
  | Shutdown

type outcome = {
  verdict : string;  (** ["equivalent"] | ["not_equivalent"] | ["unknown"] | ["cancelled"] *)
  frame : int;  (** difference frame; -1 when not refuted *)
  trace : string list;  (** witness input bits, one string per frame *)
  cached : bool;  (** verdict served from the result cache *)
  runtime : float;  (** verification seconds (0 for cache hits) *)
  queue_wait : float;  (** seconds from submission to a worker picking it up *)
  resumed_iterations : int;  (** iterations inherited from a warm-start checkpoint *)
  iterations : int;
  classes : int;
  sat_calls : int;
  conflicts : int;  (** SAT conflicts, summed over every solver of the run *)
  propagations : int;
  restarts : int;
  reused_clauses : int;  (** clauses live across incremental re-solves *)
  shared_clauses : int;  (** learned clauses imported across sweep lanes *)
  spec_rounds : int;  (** speculative reduce/discharge rounds (0 = plain sweep) *)
  spec_merges : int;  (** candidate merges across speculative rounds *)
  refuted_assumptions : int;  (** speculation assumptions refuted by a solver *)
  spec_by_sim : int;  (** obligations settled by the simulation screen *)
  spec_by_bdd : int;  (** obligations settled by the BDD route *)
  spec_by_sat : int;  (** obligations settled by the SAT route *)
  eq_pct : float;
  cert : string option;  (** on-disk certificate path, when one exists *)
  reason : string option;  (** unknown/cancel reason *)
}

type job_stat = { js_job : string; js_state : string; js_sched_wait : float }

type server_stats = {
  uptime : float;
  jobs_submitted : int;
  jobs_done : int;
  jobs_cached : int;
  jobs_cancelled : int;
  queue_len : int;
  running : int;
  workers : int;
  cache_entries : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  warm_starts : int;
  jobs : job_stat list;  (** per-job scheduling record, submission order *)
}

type response =
  | Submitted of { job : string; cached : bool }
  | Job_status of { job : string; state : string; queue_pos : int }
      (** [queue_pos] is 0-based among queued jobs; -1 when not queued *)
  | Progress of { job : string; round : int; iteration : int; classes : int; engine : string }
  | Job_result of { job : string; outcome : outcome }
  | Cancelled of { job : string; state : string }
  | Stats_report of server_stats
  | Bye
  | Error_resp of string

(* --- encoding ------------------------------------------------------------------ *)

let circuit_to_json = function
  | Path p -> Json.Obj [ ("path", Json.String p) ]
  | Aag text -> Json.Obj [ ("aag", Json.String text) ]

let opts_to_json o =
  Json.Obj
    [
      ("method", Json.String o.meth);
      ("engine", Json.String o.engine);
      ("induction", Json.Int o.induction);
      ("seed", Json.Int o.seed);
      ("analysis", Json.Bool o.analysis);
      ("incremental", Json.Bool o.incremental);
      ("speculate", Json.Bool o.speculate);
      ("deadline", Json.Float o.deadline);
    ]

let encode_request = function
  | Submit { spec; impl; opts; watch } ->
    Json.Obj
      [
        ("req", Json.String "submit");
        ("spec", circuit_to_json spec);
        ("impl", circuit_to_json impl);
        ("opts", opts_to_json opts);
        ("watch", Json.Bool watch);
      ]
  | Status job -> Json.Obj [ ("req", Json.String "status"); ("job", Json.String job) ]
  | Result { job; wait } ->
    Json.Obj [ ("req", Json.String "result"); ("job", Json.String job); ("wait", Json.Bool wait) ]
  | Cancel job -> Json.Obj [ ("req", Json.String "cancel"); ("job", Json.String job) ]
  | Stats -> Json.Obj [ ("req", Json.String "stats") ]
  | Shutdown -> Json.Obj [ ("req", Json.String "shutdown") ]

let opt_string = function None -> Json.Null | Some s -> Json.String s

let outcome_to_json o =
  Json.Obj
    [
      ("verdict", Json.String o.verdict);
      ("frame", Json.Int o.frame);
      ("trace", Json.List (List.map (fun f -> Json.String f) o.trace));
      ("cached", Json.Bool o.cached);
      ("runtime", Json.Float o.runtime);
      ("queue_wait", Json.Float o.queue_wait);
      ("resumed_iterations", Json.Int o.resumed_iterations);
      ("iterations", Json.Int o.iterations);
      ("classes", Json.Int o.classes);
      ("sat_calls", Json.Int o.sat_calls);
      ("conflicts", Json.Int o.conflicts);
      ("propagations", Json.Int o.propagations);
      ("restarts", Json.Int o.restarts);
      ("reused_clauses", Json.Int o.reused_clauses);
      ("shared_clauses", Json.Int o.shared_clauses);
      ("spec_rounds", Json.Int o.spec_rounds);
      ("spec_merges", Json.Int o.spec_merges);
      ("refuted_assumptions", Json.Int o.refuted_assumptions);
      ("spec_by_sim", Json.Int o.spec_by_sim);
      ("spec_by_bdd", Json.Int o.spec_by_bdd);
      ("spec_by_sat", Json.Int o.spec_by_sat);
      ("eq_pct", Json.Float o.eq_pct);
      ("cert", opt_string o.cert);
      ("reason", opt_string o.reason);
    ]

let encode_response = function
  | Submitted { job; cached } ->
    Json.Obj
      [ ("resp", Json.String "submitted"); ("job", Json.String job); ("cached", Json.Bool cached) ]
  | Job_status { job; state; queue_pos } ->
    Json.Obj
      [
        ("resp", Json.String "status");
        ("job", Json.String job);
        ("state", Json.String state);
        ("queue_pos", Json.Int queue_pos);
      ]
  | Progress { job; round; iteration; classes; engine } ->
    Json.Obj
      [
        ("resp", Json.String "progress");
        ("job", Json.String job);
        ("round", Json.Int round);
        ("iteration", Json.Int iteration);
        ("classes", Json.Int classes);
        ("engine", Json.String engine);
      ]
  | Job_result { job; outcome } ->
    Json.Obj
      [ ("resp", Json.String "result"); ("job", Json.String job); ("outcome", outcome_to_json outcome) ]
  | Cancelled { job; state } ->
    Json.Obj
      [ ("resp", Json.String "cancelled"); ("job", Json.String job); ("state", Json.String state) ]
  | Stats_report s ->
    Json.Obj
      [
        ("resp", Json.String "stats");
        ("uptime", Json.Float s.uptime);
        ("jobs_submitted", Json.Int s.jobs_submitted);
        ("jobs_done", Json.Int s.jobs_done);
        ("jobs_cached", Json.Int s.jobs_cached);
        ("jobs_cancelled", Json.Int s.jobs_cancelled);
        ("queue_len", Json.Int s.queue_len);
        ("running", Json.Int s.running);
        ("workers", Json.Int s.workers);
        ("cache_entries", Json.Int s.cache_entries);
        ("cache_hits", Json.Int s.cache_hits);
        ("cache_misses", Json.Int s.cache_misses);
        ("cache_evictions", Json.Int s.cache_evictions);
        ("warm_starts", Json.Int s.warm_starts);
        ( "jobs",
          Json.List
            (List.map
               (fun j ->
                 Json.Obj
                   [
                     ("job", Json.String j.js_job);
                     ("state", Json.String j.js_state);
                     ("sched_wait_seconds", Json.Float j.js_sched_wait);
                   ])
               s.jobs) );
      ]
  | Bye -> Json.Obj [ ("resp", Json.String "bye") ]
  | Error_resp msg -> Json.Obj [ ("resp", Json.String "error"); ("message", Json.String msg) ]

(* --- decoding ------------------------------------------------------------------ *)

exception Malformed of string

let bad fmt = Printf.ksprintf (fun msg -> raise (Malformed msg)) fmt

let circuit_of_json v =
  match (Json.member "path" v, Json.member "aag" v) with
  | Json.String p, Json.Null -> Path p
  | Json.Null, Json.String a -> Aag a
  | Json.Null, Json.Null -> bad "circuit needs a \"path\" or \"aag\" field"
  | _ -> bad "circuit takes exactly one of \"path\" and \"aag\""

let opts_of_json v =
  match v with
  | Json.Null -> default_opts
  | v ->
    let d = default_opts in
    {
      meth = Json.to_str ~default:d.meth (Json.member "method" v);
      engine = Json.to_str ~default:d.engine (Json.member "engine" v);
      induction = Json.to_int ~default:d.induction (Json.member "induction" v);
      seed = Json.to_int ~default:d.seed (Json.member "seed" v);
      analysis = Json.to_bool ~default:d.analysis (Json.member "analysis" v);
      incremental = Json.to_bool ~default:d.incremental (Json.member "incremental" v);
      speculate = Json.to_bool ~default:d.speculate (Json.member "speculate" v);
      deadline = Json.to_float ~default:d.deadline (Json.member "deadline" v);
    }

let job_field v =
  match Json.member "job" v with
  | Json.String j -> j
  | _ -> bad "missing \"job\" field"

let decode guard line =
  match
    let v = try Json.of_string line with Json.Parse_error msg -> bad "bad JSON: %s" msg in
    guard v
  with
  | r -> Ok r
  | exception Malformed msg -> Error msg
  | exception Json.Parse_error msg -> Error msg

let request_of_json v =
  match Json.member "req" v with
  | Json.String "submit" ->
    Submit
      {
        spec = circuit_of_json (Json.member "spec" v);
        impl = circuit_of_json (Json.member "impl" v);
        opts = opts_of_json (Json.member "opts" v);
        watch = Json.to_bool ~default:false (Json.member "watch" v);
      }
  | Json.String "status" -> Status (job_field v)
  | Json.String "result" ->
    Result { job = job_field v; wait = Json.to_bool ~default:false (Json.member "wait" v) }
  | Json.String "cancel" -> Cancel (job_field v)
  | Json.String "stats" -> Stats
  | Json.String "shutdown" -> Shutdown
  | Json.String other -> bad "unknown request %S" other
  | _ -> bad "missing \"req\" discriminator"

let decode_request line = decode request_of_json line

let string_opt_of_json = function
  | Json.Null -> None
  | Json.String s -> Some s
  | v -> bad "expected a string or null, found %s" (Json.to_string v)

let outcome_of_json v =
  {
    verdict = Json.to_str (Json.member "verdict" v);
    frame = Json.to_int ~default:(-1) (Json.member "frame" v);
    trace = List.map (fun f -> Json.to_str f) (Json.to_list (Json.member "trace" v));
    cached = Json.to_bool (Json.member "cached" v);
    runtime = Json.to_float ~default:0.0 (Json.member "runtime" v);
    queue_wait = Json.to_float ~default:0.0 (Json.member "queue_wait" v);
    resumed_iterations = Json.to_int ~default:0 (Json.member "resumed_iterations" v);
    iterations = Json.to_int ~default:0 (Json.member "iterations" v);
    classes = Json.to_int ~default:0 (Json.member "classes" v);
    sat_calls = Json.to_int ~default:0 (Json.member "sat_calls" v);
    conflicts = Json.to_int ~default:0 (Json.member "conflicts" v);
    propagations = Json.to_int ~default:0 (Json.member "propagations" v);
    restarts = Json.to_int ~default:0 (Json.member "restarts" v);
    reused_clauses = Json.to_int ~default:0 (Json.member "reused_clauses" v);
    shared_clauses = Json.to_int ~default:0 (Json.member "shared_clauses" v);
    spec_rounds = Json.to_int ~default:0 (Json.member "spec_rounds" v);
    spec_merges = Json.to_int ~default:0 (Json.member "spec_merges" v);
    refuted_assumptions = Json.to_int ~default:0 (Json.member "refuted_assumptions" v);
    spec_by_sim = Json.to_int ~default:0 (Json.member "spec_by_sim" v);
    spec_by_bdd = Json.to_int ~default:0 (Json.member "spec_by_bdd" v);
    spec_by_sat = Json.to_int ~default:0 (Json.member "spec_by_sat" v);
    eq_pct = Json.to_float ~default:0.0 (Json.member "eq_pct" v);
    cert = string_opt_of_json (Json.member "cert" v);
    reason = string_opt_of_json (Json.member "reason" v);
  }

let response_of_json v =
  match Json.member "resp" v with
  | Json.String "submitted" ->
    Submitted { job = job_field v; cached = Json.to_bool (Json.member "cached" v) }
  | Json.String "status" ->
    Job_status
      {
        job = job_field v;
        state = Json.to_str (Json.member "state" v);
        queue_pos = Json.to_int ~default:(-1) (Json.member "queue_pos" v);
      }
  | Json.String "progress" ->
    Progress
      {
        job = job_field v;
        round = Json.to_int ~default:0 (Json.member "round" v);
        iteration = Json.to_int ~default:0 (Json.member "iteration" v);
        classes = Json.to_int ~default:0 (Json.member "classes" v);
        engine = Json.to_str ~default:"" (Json.member "engine" v);
      }
  | Json.String "result" -> Job_result { job = job_field v; outcome = outcome_of_json (Json.member "outcome" v) }
  | Json.String "cancelled" ->
    Cancelled { job = job_field v; state = Json.to_str (Json.member "state" v) }
  | Json.String "stats" ->
    Stats_report
      {
        uptime = Json.to_float ~default:0.0 (Json.member "uptime" v);
        jobs_submitted = Json.to_int ~default:0 (Json.member "jobs_submitted" v);
        jobs_done = Json.to_int ~default:0 (Json.member "jobs_done" v);
        jobs_cached = Json.to_int ~default:0 (Json.member "jobs_cached" v);
        jobs_cancelled = Json.to_int ~default:0 (Json.member "jobs_cancelled" v);
        queue_len = Json.to_int ~default:0 (Json.member "queue_len" v);
        running = Json.to_int ~default:0 (Json.member "running" v);
        workers = Json.to_int ~default:0 (Json.member "workers" v);
        cache_entries = Json.to_int ~default:0 (Json.member "cache_entries" v);
        cache_hits = Json.to_int ~default:0 (Json.member "cache_hits" v);
        cache_misses = Json.to_int ~default:0 (Json.member "cache_misses" v);
        cache_evictions = Json.to_int ~default:0 (Json.member "cache_evictions" v);
        warm_starts = Json.to_int ~default:0 (Json.member "warm_starts" v);
        jobs =
          List.map
            (fun j ->
              {
                js_job = Json.to_str (Json.member "job" j);
                js_state = Json.to_str (Json.member "state" j);
                js_sched_wait = Json.to_float ~default:0.0 (Json.member "sched_wait_seconds" j);
              })
            (Json.to_list (Json.member "jobs" v));
      }
  | Json.String "bye" -> Bye
  | Json.String "error" -> Error_resp (Json.to_str ~default:"" (Json.member "message" v))
  | Json.String other -> bad "unknown response %S" other
  | _ -> bad "missing \"resp\" discriminator"

let decode_response line = decode response_of_json line

let request_to_line r = Json.to_string (encode_request r)
let response_to_line r = Json.to_string (encode_response r)

(* Exit code a scriptable client maps an outcome to: the verify
   convention (0 equivalent, 1 not equivalent, 3 unknown), with
   cancellation grouped under 3 (inconclusive) and anything
   unrecognized under 2 (protocol trouble). *)
let exit_code_of_outcome o =
  match o.verdict with
  | "equivalent" -> 0
  | "not_equivalent" -> 1
  | "unknown" | "cancelled" -> 3
  | _ -> 2

(* Traces cross the wire as bit strings; these adapt the verify-side
   [bool array array] representation. *)
let trace_to_strings trace =
  Array.to_list
    (Array.map
       (fun frame ->
         String.init (Array.length frame) (fun i -> if frame.(i) then '1' else '0'))
       trace)

let trace_of_strings frames =
  List.map (fun s -> Array.init (String.length s) (fun i -> s.[i] = '1')) frames
  |> Array.of_list
