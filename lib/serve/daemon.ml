(* The seqver verification daemon.

   One main domain owns all the sockets: it accepts connections on a
   Unix socket (and optionally TCP), reads newline-framed JSON requests,
   and answers synchronously.  [workers] worker domains pop jobs from a
   bounded FIFO ({!Jobq}) and run full verifications; they never touch a
   socket.  Results and streamed progress flow back through an event
   list guarded by its own mutex plus a self-pipe byte that wakes the
   main select, so every client write happens on the main domain.

   A submission is answered from the fingerprint-keyed {!Cache} when the
   exact [(spec_md5, impl_md5, option set)] key has a conclusive verdict
   — no queueing, [cached: true] in the result.  A miss enqueues the
   job; before running it, the worker probes the cache's persisted
   checkpoints for the most refined one compatible with the pair
   (fingerprints, candidate set, seed, induction containment — the
   [--resume] validation rules) and warm-starts the fixed point from it.

   Cancellation rides the {!Scorr.Deadline} external flag: every job
   carries one, the verify options attach it to the run's deadline, and
   a [cancel] request trips it, aborting the run within one class solve.

   All timing (queue wait, runtime, uptime) goes through {!Scorr.Clock},
   the monotonic-safe wall clock. *)

type config = {
  socket_path : string;
  tcp_port : int option;  (* listen on 127.0.0.1:port as well *)
  workers : int;
  queue_capacity : int;
  cache_dir : string;
  cache_capacity : int;
  verbose : bool;
}

let default_config =
  {
    socket_path = "seqver.sock";
    tcp_port = None;
    workers = 2;
    queue_capacity = 64;
    cache_dir = ".seqver-cache";
    cache_capacity = 128;
    verbose = false;
  }

type job_state = Queued | Running | Done | Cancelled

let state_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Cancelled -> "cancelled"

type job = {
  id : string;
  spec : Aig.t;
  impl : Aig.t;
  spec_digest : string;
  impl_digest : string;
  opts : Protocol.verify_opts;
  opts_key : string;
  cancel : Scorr.Deadline.flag;
  submitted_at : float;
  mutable state : job_state;
  mutable sched_wait : float;  (* submission -> worker pickup, seconds *)
  mutable cancel_requested : bool;
  mutable outcome : Protocol.outcome option;
  mutable watchers : Unix.file_descr list;  (* clients streaming progress *)
  mutable waiters : Unix.file_descr list;  (* clients blocked in result --wait *)
}

type event =
  | E_progress of string * Scorr.Verify.progress
  | E_done of string * Protocol.outcome

type t = {
  cfg : config;
  cache : Cache.t;
  queue : job Jobq.t;
  mu : Mutex.t;  (* guards jobs, order, counters and job fields *)
  jobs : (string, job) Hashtbl.t;
  mutable order : string list;  (* submission order, reversed *)
  mutable next_id : int;
  mutable n_submitted : int;
  mutable n_done : int;
  mutable n_cached : int;
  mutable n_cancelled : int;
  mutable n_warm_starts : int;
  ev_mu : Mutex.t;
  mutable events : event list;  (* worker -> main, reversed *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  started_at : float;
  mutable stop : bool;
}

let stop_requested = Atomic.make false

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let logf d fmt =
  if d.cfg.verbose then Printf.ksprintf (fun s -> Printf.eprintf "seqver serve: %s\n%!" s) fmt
  else Printf.ksprintf ignore fmt

(* --- events (worker -> main) ---------------------------------------------------- *)

let post_event d ev =
  locked d.ev_mu (fun () -> d.events <- ev :: d.events);
  (* best-effort wake: the select also times out, so a dropped byte only
     delays delivery, never loses it *)
  try ignore (Unix.write_substring d.wake_w "." 0 1) with Unix.Unix_error _ -> ()

let take_events d =
  locked d.ev_mu (fun () ->
      let evs = List.rev d.events in
      d.events <- [];
      evs)

(* --- circuit intake -------------------------------------------------------------- *)

(* Same suffix dispatch and lint preflight as the CLI's [read_circuit],
   but returning a result — a malformed submission is a protocol error
   for one client, not a daemon exit. *)
let load_circuit ~subject circuit =
  try
    let aig =
      match circuit with
      | Protocol.Aag text ->
        let aig = Aig.Aiger.parse_string text in
        Lint.preflight_aig ~subject aig;
        aig
      | Protocol.Path path ->
        if Filename.check_suffix path ".aag" then begin
          let aig = Aig.Aiger.parse_file path in
          Lint.preflight_aig ~subject:path aig;
          aig
        end
        else begin
          let netlist =
            if Filename.check_suffix path ".bench" then
              Netlist.Bench.parse_file ~lenient:true path
            else Netlist.Blif.parse_file ~lenient:true path
          in
          Lint.preflight_netlist ~subject:path netlist;
          fst (Aig.of_netlist netlist)
        end
    in
    Ok aig
  with
  | Lint.Rejected report -> Error (Printf.sprintf "%s rejected by lint preflight:\n%s" subject report)
  | Netlist.Blif.Parse_error msg | Netlist.Bench.Parse_error msg | Aig.Aiger.Parse_error msg ->
    Error (Printf.sprintf "%s: parse error: %s" subject msg)
  | Sys_error msg -> Error msg

(* --- verification worker --------------------------------------------------------- *)

let engine_of = function
  | "sat" -> Scorr.Verify.Sat_engine
  | _ -> Scorr.Verify.Bdd_engine

(* The run's effective induction depth, mirroring the verify layer: the
   BDD engine is always depth 1, the SAT engine unrolls [induction]. *)
let effective_induction (opts : Protocol.verify_opts) =
  match engine_of opts.engine with
  | Scorr.Verify.Bdd_engine -> 1
  | Scorr.Verify.Sat_engine -> max 1 opts.induction

let scorr_options d job ~resume =
  {
    Scorr.default_options with
    Scorr.Verify.engine = engine_of job.opts.engine;
    sat_unroll = max 1 job.opts.induction;
    seed = job.opts.seed;
    use_analysis = job.opts.analysis || job.opts.meth = "auto";
    use_incremental = job.opts.incremental;
    use_speculation = job.opts.speculate;
    deadline_seconds = job.opts.deadline;
    preflight = false;  (* done at submission time *)
    jobs = 1;  (* parallelism lives at the job level here *)
    cancel = Some job.cancel;
    progress = Some (fun p -> post_event d (E_progress (job.id, p)));
    resume;
  }

let base_outcome job =
  {
    Protocol.verdict = "unknown";
    frame = -1;
    trace = [];
    cached = false;
    runtime = 0.0;
    queue_wait = job.sched_wait;
    resumed_iterations = 0;
    iterations = 0;
    classes = 0;
    sat_calls = 0;
    conflicts = 0;
    propagations = 0;
    restarts = 0;
    reused_clauses = 0;
    shared_clauses = 0;
    spec_rounds = 0;
    spec_merges = 0;
    refuted_assumptions = 0;
    spec_by_sim = 0;
    spec_by_bdd = 0;
    spec_by_sat = 0;
    eq_pct = 0.0;
    cert = None;
    reason = None;
  }

let outcome_of_stats o (s : Scorr.Verify.stats) =
  {
    o with
    Protocol.iterations = s.Scorr.Verify.iterations;
    classes = s.classes;
    sat_calls = s.sat_calls;
    conflicts = s.conflicts;
    propagations = s.propagations;
    restarts = s.restarts;
    reused_clauses = s.reused_clauses;
    shared_clauses = s.shared_clauses;
    spec_rounds = s.spec_rounds;
    spec_merges = s.spec_merges;
    refuted_assumptions = s.refuted_assumptions;
    spec_by_sim = s.spec_by_sim;
    spec_by_bdd = s.spec_by_bdd;
    spec_by_sat = s.spec_by_sat;
    eq_pct = s.eq_pct;
  }

let run_job d job =
  let proceed =
    locked d.mu (fun () ->
        if job.cancel_requested || job.state <> Queued then false
        else begin
          job.state <- Running;
          job.sched_wait <- Scorr.Clock.since job.submitted_at;
          true
        end)
  in
  if proceed then begin
    (* warm start: the portfolio manages its own rung checkpoints, so the
       cache probe only serves the direct methods *)
    let warm =
      if job.opts.meth = "auto" then None
      else
        Cache.best_checkpoint d.cache ~spec_digest:job.spec_digest ~impl_digest:job.impl_digest
          ~candidates:"all" ~induction:(effective_induction job.opts) ~seed:job.opts.seed
    in
    let resumed_iterations =
      match warm with Some cp -> cp.Scorr.Checkpoint.iterations | None -> 0
    in
    if resumed_iterations > 0 then begin
      locked d.mu (fun () -> d.n_warm_starts <- d.n_warm_starts + 1);
      logf d "%s: warm start from a checkpoint at %d iterations" job.id resumed_iterations
    end;
    let t0 = Scorr.Clock.now () in
    let attempt resume =
      let options = scorr_options d job ~resume in
      if job.opts.meth = "auto" then
        (options, Scorr.portfolio ~options job.spec job.impl, None)
      else
        let (verdict, _, _) as run = Scorr.Verify.run_with_relation ~options job.spec job.impl in
        (options, verdict, Some run)
    in
    let result =
      match attempt warm with
      | r -> Ok (r, resumed_iterations)
      (* a checkpoint the probe accepted but validation refused (e.g. a
         racing overwrite): fall back to a cold run rather than failing *)
      | exception Scorr.Checkpoint.Incompatible _ when warm <> None ->
        (match attempt None with
        | r -> Ok (r, 0)
        | exception exn -> Error (Printexc.to_string exn))
      | exception exn -> Error (Printexc.to_string exn)
    in
    let runtime = Scorr.Clock.since t0 in
    let outcome =
      match result with
      | Error msg ->
        { (base_outcome job) with runtime; reason = Some ("error: " ^ msg) }
      | Ok ((options, verdict, run), resumed_iterations) -> (
        let o =
          { (base_outcome job) with runtime; queue_wait = job.sched_wait; resumed_iterations }
        in
        match verdict with
        | Scorr.Equivalent stats ->
          let o = { (outcome_of_stats o stats) with verdict = "equivalent" } in
          (* reuse the certificate machinery: persist an independently
             checkable proof next to the cached verdict *)
          let cert =
            match run with
            | None -> None
            | Some run -> (
              match Cert.Certificate.of_run ~options ~spec:job.spec ~impl:job.impl run with
              | Ok cert -> Some (Cert.Certificate.to_string cert)
              | Error _ -> None)
          in
          let entry =
            Cache.store d.cache ~spec_digest:job.spec_digest ~impl_digest:job.impl_digest
              ~opts_key:job.opts_key ?cert
              {
                Cache.v_verdict = "equivalent";
                v_frame = -1;
                v_trace = [];
                v_iterations = o.iterations;
                v_classes = o.classes;
                v_sat_calls = o.sat_calls;
                v_eq_pct = o.eq_pct;
                v_cert = None;
              }
          in
          { o with cert = entry.Cache.v_cert }
        | Scorr.Not_equivalent { frame; trace; stats } ->
          let trace = match trace with Some t -> Protocol.trace_to_strings t | None -> [] in
          let o = { (outcome_of_stats o stats) with verdict = "not_equivalent"; frame; trace } in
          ignore
            (Cache.store d.cache ~spec_digest:job.spec_digest ~impl_digest:job.impl_digest
               ~opts_key:job.opts_key
               {
                 Cache.v_verdict = "not_equivalent";
                 v_frame = frame;
                 v_trace = trace;
                 v_iterations = o.iterations;
                 v_classes = o.classes;
                 v_sat_calls = o.sat_calls;
                 v_eq_pct = o.eq_pct;
                 v_cert = None;
               });
          o
        | Scorr.Unknown stats ->
          let o = outcome_of_stats o stats in
          let cancelled = job.cancel_requested || Scorr.Deadline.cancelled job.cancel in
          if cancelled then { o with verdict = "cancelled"; reason = Some "cancelled" }
          else
            {
              o with
              verdict = "unknown";
              reason =
                (match stats.Scorr.Verify.exhausted with
                | Some why -> Some why
                | None -> Some "incomplete");
            })
    in
    (* every direct run with a relation leaves a checkpoint behind — an
       inconclusive one for its own resumption, a conclusive one so other
       option sets over the same pair can warm-start from the fixed point *)
    (match result with
    | Ok ((options, _, Some run), _) -> (
      match Scorr.Verify.checkpoint_of_run ~options ~spec:job.spec ~impl:job.impl run with
      | Ok cp ->
        Cache.store_checkpoint d.cache ~spec_digest:job.spec_digest ~impl_digest:job.impl_digest
          ~opts_key:job.opts_key cp
      | Error _ -> ())
    | _ -> ());
    post_event d (E_done (job.id, outcome))
  end

let worker d () =
  let rec loop () =
    match Jobq.pop d.queue with
    | None -> ()
    | Some job ->
      (try run_job d job
       with exn ->
         (* a worker must survive anything a job throws at it *)
         post_event d
           (E_done
              ( job.id,
                {
                  (base_outcome job) with
                  Protocol.reason = Some ("error: " ^ Printexc.to_string exn);
                } )));
      loop ()
  in
  loop ()

(* --- client connections ----------------------------------------------------------- *)

type conn = { fd : Unix.file_descr; buf : Buffer.t }

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

(* [send] returns false when the client is gone; the caller drops it. *)
let send resp fd =
  let line = Protocol.response_to_line resp ^ "\n" in
  try
    write_all fd line 0 (String.length line);
    true
  with Unix.Unix_error _ -> false

let drop_client d fd =
  locked d.mu (fun () ->
      Hashtbl.iter
        (fun _ job ->
          job.watchers <- List.filter (fun w -> w <> fd) job.watchers;
          job.waiters <- List.filter (fun w -> w <> fd) job.waiters)
        d.jobs);
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Deliver a response to a set of fds, returning the survivors. *)
let broadcast d resp fds =
  List.filter
    (fun fd ->
      if send resp fd then true
      else begin
        drop_client d fd;
        false
      end)
    fds

(* --- request handling -------------------------------------------------------------- *)

let cancelled_outcome job ~reason =
  { (base_outcome job) with Protocol.verdict = "cancelled"; reason = Some reason }

let find_job d id = locked d.mu (fun () -> Hashtbl.find_opt d.jobs id)

let handle_submit d conn ~spec ~impl ~opts ~watch =
  let valid_opts =
    match (opts.Protocol.meth, opts.Protocol.engine) with
    | ("scorr" | "auto"), ("bdd" | "sat") -> Ok ()
    | ("scorr" | "auto"), e -> Error (Printf.sprintf "unknown engine %S" e)
    | m, _ -> Error (Printf.sprintf "unknown method %S" m)
  in
  match valid_opts with
  | Error msg -> ignore (send (Protocol.Error_resp msg) conn.fd)
  | Ok () -> (
    match (load_circuit ~subject:"spec" spec, load_circuit ~subject:"impl" impl) with
    | Error msg, _ | _, Error msg -> ignore (send (Protocol.Error_resp msg) conn.fd)
    | Ok spec, Ok impl -> (
      let spec_digest = Scorr.Checkpoint.fingerprint spec in
      let impl_digest = Scorr.Checkpoint.fingerprint impl in
      let opts_key = Cache.options_key opts in
      let job =
        locked d.mu (fun () ->
            d.next_id <- d.next_id + 1;
            {
              id = Printf.sprintf "job-%d" d.next_id;
              spec;
              impl;
              spec_digest;
              impl_digest;
              opts;
              opts_key;
              cancel = Scorr.Deadline.flag ();
              submitted_at = Scorr.Clock.now ();
              state = Queued;
              sched_wait = 0.0;
              cancel_requested = false;
              outcome = None;
              watchers = [];
              waiters = [];
            })
      in
      match Cache.find d.cache ~spec_digest ~impl_digest ~opts_key with
      | Some entry ->
        (* conclusive verdict on file: answer without queueing *)
        let outcome =
          {
            (base_outcome job) with
            Protocol.verdict = entry.Cache.v_verdict;
            frame = entry.v_frame;
            trace = entry.v_trace;
            cached = true;
            iterations = entry.v_iterations;
            classes = entry.v_classes;
            sat_calls = entry.v_sat_calls;
            eq_pct = entry.v_eq_pct;
            cert = entry.v_cert;
          }
        in
        locked d.mu (fun () ->
            job.state <- Done;
            job.outcome <- Some outcome;
            Hashtbl.replace d.jobs job.id job;
            d.order <- job.id :: d.order;
            d.n_submitted <- d.n_submitted + 1;
            d.n_cached <- d.n_cached + 1;
            d.n_done <- d.n_done + 1);
        logf d "%s: cache hit (%s)" job.id entry.Cache.v_verdict;
        if send (Protocol.Submitted { job = job.id; cached = true }) conn.fd && watch then
          ignore (send (Protocol.Job_result { job = job.id; outcome }) conn.fd)
      | None ->
        if Jobq.push d.queue job then begin
          locked d.mu (fun () ->
              Hashtbl.replace d.jobs job.id job;
              d.order <- job.id :: d.order;
              d.n_submitted <- d.n_submitted + 1;
              if watch then job.watchers <- conn.fd :: job.watchers);
          logf d "%s: queued (%s %s)" job.id job.spec_digest job.impl_digest;
          ignore (send (Protocol.Submitted { job = job.id; cached = false }) conn.fd)
        end
        else
          ignore
            (send
               (Protocol.Error_resp
                  (Printf.sprintf "queue full (%d jobs)" d.cfg.queue_capacity))
               conn.fd)))

let handle_status d conn id =
  match find_job d id with
  | None -> ignore (send (Protocol.Error_resp (Printf.sprintf "unknown job %S" id)) conn.fd)
  | Some job ->
    let state, pos =
      locked d.mu (fun () ->
          let pos =
            if job.state = Queued then
              match Jobq.position d.queue (fun j -> j.id = id) with Some p -> p | None -> -1
            else -1
          in
          (state_string job.state, pos))
    in
    ignore (send (Protocol.Job_status { job = id; state; queue_pos = pos }) conn.fd)

let handle_result d conn id ~wait =
  match find_job d id with
  | None -> ignore (send (Protocol.Error_resp (Printf.sprintf "unknown job %S" id)) conn.fd)
  | Some job -> (
    let outcome = locked d.mu (fun () -> job.outcome) in
    match outcome with
    | Some outcome -> ignore (send (Protocol.Job_result { job = id; outcome }) conn.fd)
    | None ->
      if wait then locked d.mu (fun () -> job.waiters <- conn.fd :: job.waiters)
      else
        ignore
          (send
             (Protocol.Job_status
                { job = id; state = locked d.mu (fun () -> state_string job.state); queue_pos = -1 })
             conn.fd))

let finish_job d job outcome =
  let watchers, waiters =
    locked d.mu (fun () ->
        job.state <- (if outcome.Protocol.verdict = "cancelled" then Cancelled else Done);
        job.outcome <- Some outcome;
        (if outcome.Protocol.verdict = "cancelled" then d.n_cancelled <- d.n_cancelled + 1
         else d.n_done <- d.n_done + 1);
        let ws = (job.watchers, job.waiters) in
        job.watchers <- [];
        job.waiters <- [];
        ws)
  in
  let resp = Protocol.Job_result { job = job.id; outcome } in
  ignore (broadcast d resp watchers);
  ignore (broadcast d resp waiters);
  logf d "%s: %s%s" job.id outcome.Protocol.verdict
    (if outcome.Protocol.cached then " (cached)" else "")

let handle_cancel d conn id =
  match find_job d id with
  | None -> ignore (send (Protocol.Error_resp (Printf.sprintf "unknown job %S" id)) conn.fd)
  | Some job ->
    let state = locked d.mu (fun () -> job.state) in
    let reply =
      match state with
      | Queued ->
        if Jobq.remove d.queue (fun j -> j.id = id) then begin
          finish_job d job (cancelled_outcome job ~reason:"cancelled before start");
          "cancelled"
        end
        else begin
          (* a worker picked it up while we looked: cancel the run *)
          locked d.mu (fun () -> job.cancel_requested <- true);
          Scorr.Deadline.cancel job.cancel;
          "cancelling"
        end
      | Running ->
        locked d.mu (fun () -> job.cancel_requested <- true);
        Scorr.Deadline.cancel job.cancel;
        "cancelling"
      | Done -> "done"
      | Cancelled -> "cancelled"
    in
    ignore (send (Protocol.Cancelled { job = id; state = reply }) conn.fd)

let handle_stats d conn =
  let cache_stats = Cache.stats d.cache in
  let report =
    locked d.mu (fun () ->
        let running =
          Hashtbl.fold (fun _ j acc -> if j.state = Running then acc + 1 else acc) d.jobs 0
        in
        {
          Protocol.uptime = Scorr.Clock.since d.started_at;
          jobs_submitted = d.n_submitted;
          jobs_done = d.n_done;
          jobs_cached = d.n_cached;
          jobs_cancelled = d.n_cancelled;
          queue_len = Jobq.length d.queue;
          running;
          workers = d.cfg.workers;
          cache_entries = cache_stats.Cache.entries;
          cache_hits = cache_stats.Cache.hits;
          cache_misses = cache_stats.Cache.misses;
          cache_evictions = cache_stats.Cache.evictions;
          warm_starts = d.n_warm_starts;
          jobs =
            List.rev_map
              (fun id ->
                let j = Hashtbl.find d.jobs id in
                {
                  Protocol.js_job = id;
                  js_state = state_string j.state;
                  js_sched_wait = j.sched_wait;
                })
              d.order;
        })
  in
  ignore (send (Protocol.Stats_report report) conn.fd)

let handle_request d conn = function
  | Protocol.Submit { spec; impl; opts; watch } -> handle_submit d conn ~spec ~impl ~opts ~watch
  | Protocol.Status id -> handle_status d conn id
  | Protocol.Result { job; wait } -> handle_result d conn job ~wait
  | Protocol.Cancel id -> handle_cancel d conn id
  | Protocol.Stats -> handle_stats d conn
  | Protocol.Shutdown ->
    ignore (send Protocol.Bye conn.fd);
    logf d "shutdown requested";
    d.stop <- true

let handle_line d conn line =
  if String.trim line <> "" then
    match Protocol.decode_request line with
    | Ok req -> handle_request d conn req
    | Error msg -> ignore (send (Protocol.Error_resp msg) conn.fd)

(* --- event delivery ---------------------------------------------------------------- *)

let deliver_events d =
  List.iter
    (fun ev ->
      match ev with
      | E_progress (id, p) -> (
        match find_job d id with
        | None -> ()
        | Some job ->
          let watchers = locked d.mu (fun () -> job.watchers) in
          let resp =
            Protocol.Progress
              {
                job = id;
                round = p.Scorr.Verify.p_round;
                iteration = p.Scorr.Verify.p_iteration;
                classes = p.Scorr.Verify.p_classes;
                engine = p.Scorr.Verify.p_engine;
              }
          in
          let survivors = broadcast d resp watchers in
          locked d.mu (fun () -> job.watchers <- survivors))
      | E_done (id, outcome) -> (
        match find_job d id with
        | None -> ()
        | Some job -> finish_job d job outcome))
    (take_events d)

(* --- listeners and the select loop -------------------------------------------------- *)

let make_unix_listener path =
  (* a stale socket file from a crashed daemon would make bind fail;
     only ever remove an actual socket, never a user's file *)
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> failwith (Printf.sprintf "%s exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  fd

let make_tcp_listener port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 16;
  fd

let run cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Atomic.set stop_requested false;
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set stop_requested true)) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> Atomic.set stop_requested true)) in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_w;
  let d =
    {
      cfg;
      cache = Cache.create ~capacity:cfg.cache_capacity ~dir:cfg.cache_dir ();
      queue = Jobq.create ~capacity:cfg.queue_capacity;
      mu = Mutex.create ();
      jobs = Hashtbl.create 64;
      order = [];
      next_id = 0;
      n_submitted = 0;
      n_done = 0;
      n_cached = 0;
      n_cancelled = 0;
      n_warm_starts = 0;
      ev_mu = Mutex.create ();
      events = [];
      wake_r;
      wake_w;
      started_at = Scorr.Clock.now ();
      stop = false;
    }
  in
  let unix_listener = make_unix_listener cfg.socket_path in
  let tcp_listener = Option.map make_tcp_listener cfg.tcp_port in
  let listeners = unix_listener :: Option.to_list tcp_listener in
  let workers = List.init (max 1 cfg.workers) (fun _ -> Domain.spawn (fun () -> worker d ())) in
  let conns = Hashtbl.create 16 in
  logf d "listening on %s%s (%d workers, cache %s)" cfg.socket_path
    (match cfg.tcp_port with Some p -> Printf.sprintf " and 127.0.0.1:%d" p | None -> "")
    (max 1 cfg.workers) cfg.cache_dir;
  let accept listener =
    match Unix.accept listener with
    | fd, _ -> Hashtbl.replace conns fd { fd; buf = Buffer.create 256 }
    | exception Unix.Unix_error _ -> ()
  in
  let read_client conn =
    let bytes = Bytes.create 65536 in
    match Unix.read conn.fd bytes 0 (Bytes.length bytes) with
    | exception Unix.Unix_error _ ->
      Hashtbl.remove conns conn.fd;
      drop_client d conn.fd
    | 0 ->
      Hashtbl.remove conns conn.fd;
      drop_client d conn.fd
    | n ->
      Buffer.add_subbytes conn.buf bytes 0 n;
      (* process every complete line in the buffer *)
      let text = Buffer.contents conn.buf in
      let rec consume start =
        match String.index_from_opt text start '\n' with
        | None ->
          Buffer.clear conn.buf;
          Buffer.add_string conn.buf (String.sub text start (String.length text - start))
        | Some nl ->
          handle_line d conn (String.sub text start (nl - start));
          consume (nl + 1)
      in
      consume 0
  in
  let drain_wake () =
    let bytes = Bytes.create 256 in
    match Unix.read d.wake_r bytes 0 (Bytes.length bytes) with
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  (* main loop: listeners + connected clients + the worker wake pipe *)
  while not (d.stop || Atomic.get stop_requested) do
    let fds = d.wake_r :: (listeners @ Hashtbl.fold (fun fd _ acc -> fd :: acc) conns []) in
    (match Unix.select fds [] [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
      List.iter
        (fun fd ->
          if fd = d.wake_r then drain_wake ()
          else if List.mem fd listeners then accept fd
          else
            match Hashtbl.find_opt conns fd with
            | Some conn -> read_client conn
            | None -> ())
        ready);
    deliver_events d
  done;
  logf d "shutting down";
  (* graceful shutdown: stop accepting, refuse the queue, cancel every
     unfinished job, join the workers, deliver the final results *)
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  let unfinished =
    locked d.mu (fun () ->
        Hashtbl.fold (fun _ j acc -> if j.state = Queued || j.state = Running then j :: acc else acc)
          d.jobs [])
  in
  List.iter
    (fun job ->
      if Jobq.remove d.queue (fun j -> j.id = job.id) then
        finish_job d job (cancelled_outcome job ~reason:"daemon shutdown")
      else begin
        locked d.mu (fun () -> job.cancel_requested <- true);
        Scorr.Deadline.cancel job.cancel
      end)
    unfinished;
  Jobq.close d.queue;
  List.iter Domain.join workers;
  deliver_events d;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) conns;
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  Unix.close d.wake_r;
  Unix.close d.wake_w;
  Sys.set_signal Sys.sigterm prev_term;
  Sys.set_signal Sys.sigint prev_int;
  0
