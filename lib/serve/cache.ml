(* Fingerprint-keyed result store of the serve daemon.

   A cache key is [(spec_md5, impl_md5, canonical option string)].  The
   option string covers exactly the options that can change a conclusive
   verdict's *derivation* (method, engine, induction depth, seed,
   analysis) and deliberately excludes the deadline: a conclusive verdict
   is budget-independent, so a pair proved under a 10 s budget answers
   the same submission under any other budget.  Only conclusive verdicts
   (equivalent / not equivalent) are cached — an Unknown is a property of
   the budget, not the pair, and caching it would pin a transient failure.

   Inconclusive runs still contribute: their final partition is persisted
   as a checkpoint under the same key, and a later submission for the
   same fingerprints warm-starts from the most refined compatible
   checkpoint (probed with {!Scorr.Checkpoint.compatible} — same
   candidate set and seed, induction depth no shallower than the
   checkpoint requires).

   Layout on disk, one directory per key under the cache root:

   {v
   <root>/<spec8><impl8>-<md5(optkey)8>/
     verdict       line-oriented verdict record (conclusive runs only)
     cert          equivalence certificate (equivalent verdicts with a relation)
     checkpoint    most refined partition reached (inconclusive runs)
   v}

   The in-memory layer is a bounded LRU of verdict records; the disk
   layer is the persistent source of truth that survives daemon
   restarts.  Everything is guarded by one mutex — entries are small and
   the daemon's verification work happens elsewhere. *)

type verdict_entry = {
  v_verdict : string;  (* "equivalent" | "not_equivalent" *)
  v_frame : int;  (* -1 when not refuted *)
  v_trace : string list;  (* witness input bits per frame *)
  v_iterations : int;
  v_classes : int;
  v_sat_calls : int;
  v_eq_pct : float;
  v_cert : string option;  (* path of the persisted certificate *)
}

type stats = {
  entries : int;  (* in-memory LRU occupancy *)
  hits : int;
  misses : int;
  evictions : int;
}

type slot = { mutable entry : verdict_entry; mutable last_used : int }

type t = {
  dir : string;
  capacity : int;
  mu : Mutex.t;
  table : (string, slot) Hashtbl.t;
  mutable tick : int;  (* LRU clock: bumped on every touch *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(capacity = 128) ~dir () =
  mkdir_p dir;
  {
    dir;
    capacity = max 1 capacity;
    mu = Mutex.create ();
    table = Hashtbl.create 64;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

(* Canonical option string: order-fixed, deadline-free (see above). *)
let options_key (o : Protocol.verify_opts) =
  (* incremental/speculate on/off prove the same verdict but report
     different solver-work counters, so the runs must not share a cache
     entry *)
  Printf.sprintf "m=%s e=%s k=%d seed=%d analysis=%b incr=%b spec=%b" o.meth o.engine
    (max 1 o.induction) o.seed o.analysis o.incremental o.speculate

let key ~spec_digest ~impl_digest ~opts_key =
  spec_digest ^ ":" ^ impl_digest ^ ":" ^ opts_key

(* One filesystem directory per key; fingerprints are already hex MD5s,
   the option string is digested to keep the name short and shell-safe. *)
let entry_dir t ~spec_digest ~impl_digest ~opts_key =
  let short s n = if String.length s > n then String.sub s 0 n else s in
  Filename.concat t.dir
    (Printf.sprintf "%s%s-%s" (short spec_digest 8) (short impl_digest 8)
       (short (Digest.to_hex (Digest.string opts_key)) 8))

let verdict_path dir = Filename.concat dir "verdict"
let cert_path dir = Filename.concat dir "cert"
let checkpoint_path dir = Filename.concat dir "checkpoint"

(* --- verdict record disk format ------------------------------------------------ *)

exception Malformed of string

let write_file path text =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc text);
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let entry_to_string ~spec_digest ~impl_digest ~opts_key e =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "seqver-cache 1\n";
  Buffer.add_string buf (Printf.sprintf "spec-md5 %s\n" spec_digest);
  Buffer.add_string buf (Printf.sprintf "impl-md5 %s\n" impl_digest);
  Buffer.add_string buf (Printf.sprintf "options %s\n" opts_key);
  Buffer.add_string buf (Printf.sprintf "verdict %s\n" e.v_verdict);
  Buffer.add_string buf (Printf.sprintf "frame %d\n" e.v_frame);
  Buffer.add_string buf (Printf.sprintf "iterations %d\n" e.v_iterations);
  Buffer.add_string buf (Printf.sprintf "classes %d\n" e.v_classes);
  Buffer.add_string buf (Printf.sprintf "sat-calls %d\n" e.v_sat_calls);
  Buffer.add_string buf (Printf.sprintf "eq-pct %.6f\n" e.v_eq_pct);
  List.iter (fun frame -> Buffer.add_string buf (Printf.sprintf "trace %s\n" frame)) e.v_trace;
  (match e.v_cert with
  | Some _ -> Buffer.add_string buf "cert yes\n"
  | None -> ());
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let entry_of_string ~spec_digest ~impl_digest ~opts_key dir text =
  let fail fmt = Printf.ksprintf (fun msg -> raise (Malformed msg)) fmt in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  let fields = Hashtbl.create 16 in
  let traces = ref [] in
  let saw_end = ref false in
  List.iter
    (fun line ->
      match String.index_opt line ' ' with
      | _ when line = "end" -> saw_end := true
      | None -> fail "malformed line %S" line
      | Some i ->
        let k = String.sub line 0 i and v = String.sub line (i + 1) (String.length line - i - 1) in
        if k = "trace" then traces := v :: !traces else Hashtbl.replace fields k v)
    lines;
  if not !saw_end then fail "truncated verdict record (no end marker)";
  let field k = match Hashtbl.find_opt fields k with Some v -> v | None -> fail "missing %s" k in
  let int_field k = try int_of_string (field k) with Failure _ -> fail "bad integer in %s" k in
  if field "seqver-cache" <> "1" then fail "unsupported cache version %s" (field "seqver-cache");
  (* a record written for different fingerprints or options is a hash
     collision in the directory name, not an answer *)
  if field "spec-md5" <> spec_digest || field "impl-md5" <> impl_digest then
    fail "fingerprint mismatch: record is for %s/%s" (field "spec-md5") (field "impl-md5");
  if field "options" <> opts_key then fail "option-set mismatch: record is for %S" (field "options");
  let cert =
    match Hashtbl.find_opt fields "cert" with
    | Some "yes" when Sys.file_exists (cert_path dir) -> Some (cert_path dir)
    | _ -> None
  in
  {
    v_verdict = field "verdict";
    v_frame = int_field "frame";
    v_trace = List.rev !traces;
    v_iterations = int_field "iterations";
    v_classes = int_field "classes";
    v_sat_calls = int_field "sat-calls";
    v_eq_pct = (try float_of_string (field "eq-pct") with Failure _ -> fail "bad eq-pct");
    v_cert = cert;
  }

(* --- LRU ------------------------------------------------------------------------ *)

let touch t slot =
  t.tick <- t.tick + 1;
  slot.last_used <- t.tick

let evict_if_full t =
  if Hashtbl.length t.table >= t.capacity then begin
    let victim = ref None in
    Hashtbl.iter
      (fun k slot ->
        match !victim with
        | Some (_, lu) when lu <= slot.last_used -> ()
        | _ -> victim := Some (k, slot.last_used))
      t.table;
    match !victim with
    | Some (k, _) ->
      Hashtbl.remove t.table k;
      t.evictions <- t.evictions + 1
    | None -> ()
  end

let insert t k entry =
  match Hashtbl.find_opt t.table k with
  | Some slot ->
    slot.entry <- entry;
    touch t slot
  | None ->
    evict_if_full t;
    let slot = { entry; last_used = 0 } in
    touch t slot;
    Hashtbl.replace t.table k slot

(* --- public operations ---------------------------------------------------------- *)

(* Memory first, then disk (promoting a disk hit into the LRU so a
   restarted daemon re-warms itself from its own store). *)
let find t ~spec_digest ~impl_digest ~opts_key =
  locked t (fun () ->
      let k = key ~spec_digest ~impl_digest ~opts_key in
      match Hashtbl.find_opt t.table k with
      | Some slot ->
        touch t slot;
        t.hits <- t.hits + 1;
        Some slot.entry
      | None ->
        let dir = entry_dir t ~spec_digest ~impl_digest ~opts_key in
        let vp = verdict_path dir in
        if Sys.file_exists vp then begin
          match entry_of_string ~spec_digest ~impl_digest ~opts_key dir (read_file vp) with
          | entry ->
            insert t k entry;
            t.hits <- t.hits + 1;
            Some entry
          | exception (Malformed _ | Sys_error _) ->
            (* unreadable record: treat as a miss, let a fresh run overwrite it *)
            t.misses <- t.misses + 1;
            None
        end
        else begin
          t.misses <- t.misses + 1;
          None
        end)

let store t ~spec_digest ~impl_digest ~opts_key ?cert entry =
  locked t (fun () ->
      let dir = entry_dir t ~spec_digest ~impl_digest ~opts_key in
      mkdir_p dir;
      let entry =
        match cert with
        | None -> entry
        | Some cert_text ->
          write_file (cert_path dir) cert_text;
          { entry with v_cert = Some (cert_path dir) }
      in
      write_file (verdict_path dir) (entry_to_string ~spec_digest ~impl_digest ~opts_key entry);
      insert t (key ~spec_digest ~impl_digest ~opts_key) entry;
      entry)

let store_checkpoint t ~spec_digest ~impl_digest ~opts_key cp =
  locked t (fun () ->
      let dir = entry_dir t ~spec_digest ~impl_digest ~opts_key in
      mkdir_p dir;
      write_file (checkpoint_path dir) (Scorr.Checkpoint.to_string cp))

(* Warm-start probe: scan every persisted checkpoint whose directory name
   starts with this fingerprint pair (any option set — compatibility is
   decided by {!Scorr.Checkpoint.compatible}, not the directory name) and
   return the most refined compatible one. *)
let best_checkpoint t ~spec_digest ~impl_digest ~candidates ~induction ~seed =
  locked t (fun () ->
      let short s = if String.length s > 8 then String.sub s 0 8 else s in
      let prefix = short spec_digest ^ short impl_digest ^ "-" in
      let dirs = try Sys.readdir t.dir with Sys_error _ -> [||] in
      Array.fold_left
        (fun best name ->
          if not (String.length name > String.length prefix
                  && String.sub name 0 (String.length prefix) = prefix)
          then best
          else
            let cp_path = checkpoint_path (Filename.concat t.dir name) in
            if not (Sys.file_exists cp_path) then best
            else
              match Scorr.Checkpoint.parse_file cp_path with
              | exception (Scorr.Checkpoint.Parse_error _ | Sys_error _) -> best
              | cp -> (
                match
                  Scorr.Checkpoint.compatible ~spec_digest ~impl_digest ~candidates ~induction
                    ~seed cp
                with
                | Error _ -> best
                | Ok () -> (
                  match best with
                  | Some b when b.Scorr.Checkpoint.iterations >= cp.Scorr.Checkpoint.iterations ->
                    best
                  | _ -> Some cp)))
        None dirs)

let stats t =
  locked t (fun () ->
      { entries = Hashtbl.length t.table; hits = t.hits; misses = t.misses; evictions = t.evictions })
