(* Bounded FIFO job queue between the daemon's accept loop and its worker
   domains.

   [push] never blocks — a full queue refuses the job and the daemon
   reports the rejection to the client instead of stalling the accept
   loop.  [pop] blocks the calling worker until a job or [close];
   [remove] supports cancellation of still-queued jobs.  The list-based
   representation keeps removal trivial; daemon queues are tens of
   entries, not thousands. *)

type 'a t = {
  capacity : int;
  mu : Mutex.t;
  nonempty : Condition.t;
  mutable items : 'a list;  (* FIFO order: head = next to pop *)
  mutable closed : bool;
}

let create ~capacity =
  {
    capacity = max 1 capacity;
    mu = Mutex.create ();
    nonempty = Condition.create ();
    items = [];
    closed = false;
  }

let locked q f =
  Mutex.lock q.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock q.mu) f

let length q = locked q (fun () -> List.length q.items)

let push q x =
  locked q (fun () ->
      if q.closed || List.length q.items >= q.capacity then false
      else begin
        q.items <- q.items @ [ x ];
        Condition.signal q.nonempty;
        true
      end)

let pop q =
  locked q (fun () ->
      let rec wait () =
        match q.items with
        | x :: rest ->
          q.items <- rest;
          Some x
        | [] ->
          if q.closed then None
          else begin
            Condition.wait q.nonempty q.mu;
            wait ()
          end
      in
      wait ())

(* Remove the first queued item satisfying [pred]; [false] when none does
   (the job is already running, finished, or unknown). *)
let remove q pred =
  locked q (fun () ->
      let rec go acc = function
        | [] -> false
        | x :: rest when pred x ->
          q.items <- List.rev_append acc rest;
          true
        | x :: rest -> go (x :: acc) rest
      in
      go [] q.items)

(* Position of the first match among queued items (0 = next to run). *)
let position q pred =
  locked q (fun () ->
      let rec go i = function
        | [] -> None
        | x :: _ when pred x -> Some i
        | _ :: rest -> go (i + 1) rest
      in
      go 0 q.items)

let close q =
  locked q (fun () ->
      q.closed <- true;
      Condition.broadcast q.nonempty)
