(* Minimal single-line JSON for the serve protocol.

   The repo deliberately carries no external JSON dependency, and the
   wire format is one JSON value per line, so this is a small recursive
   printer/parser over an explicit value type.  Two properties matter to
   the protocol and its cram tests: the printer never emits a newline
   (line framing is the message framing), and floats are always printed
   in plain fixed-point ([%.6f], no exponents), so shell scripts can
   extract and compare them with sed/awk. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

(* --- printing ----------------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* non-finite values have no JSON spelling; null keeps the line parseable *)
    if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6f" f)
    else Buffer.add_string buf "null"
  | String s -> escape_string buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------------ *)

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "expected '%c' at offset %d, found '%c'" ch c.pos x
  | None -> fail "expected '%c' at offset %d, found end of input" ch c.pos

let expect_word c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail "malformed literal at offset %d" c.pos

(* UTF-8 encode one code point; \uXXXX escapes outside the BMP surrogate
   mechanism are passed through as-is (the protocol only ships ASCII). *)
let add_code_point buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail "unterminated string at offset %d" c.pos
    | Some '"' ->
      advance c;
      Buffer.contents buf
    | Some '\\' ->
      advance c;
      (match peek c with
      | None -> fail "unterminated escape at offset %d" c.pos
      | Some e ->
        advance c;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if c.pos + 4 > String.length c.text then fail "truncated \\u escape";
          let hex = String.sub c.text c.pos 4 in
          c.pos <- c.pos + 4;
          let cp =
            try int_of_string ("0x" ^ hex)
            with Failure _ -> fail "bad \\u escape \"%s\"" hex
          in
          add_code_point buf cp
        | e -> fail "bad escape '\\%c' at offset %d" e c.pos));
      loop ()
    | Some ch when Char.code ch < 0x20 -> fail "raw control character in string at offset %d" c.pos
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      loop ()
  in
  loop ()

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let consume () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') ->
      advance c;
      true
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance c;
      true
    | _ -> false
  in
  while consume () do
    ()
  done;
  let s = String.sub c.text start (c.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail "malformed number %S at offset %d" s start
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> fail "malformed number %S at offset %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input at offset %d" c.pos
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws c;
        expect c '"';
        let key = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (key, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ()
        | Some '}' -> advance c
        | _ -> fail "expected ',' or '}' at offset %d" c.pos
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements ()
        | Some ']' -> advance c
        | _ -> fail "expected ',' or ']' at offset %d" c.pos
      in
      elements ();
      List (List.rev !items)
    end
  | Some '"' ->
    advance c;
    String (parse_string_body c)
  | Some 't' -> expect_word c "true" (Bool true)
  | Some 'f' -> expect_word c "false" (Bool false)
  | Some 'n' -> expect_word c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail "unexpected character '%c' at offset %d" ch c.pos

let of_string text =
  let c = { text; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length text then fail "trailing garbage at offset %d" c.pos;
  v

(* --- accessors ----------------------------------------------------------------- *)

let member key = function
  | Obj fields -> ( match List.assoc_opt key fields with Some v -> v | None -> Null)
  | _ -> Null

let to_bool ?(default = false) = function
  | Bool b -> b
  | Null -> default
  | v -> fail "expected a boolean, found %s" (to_string v)

let to_int ?default v =
  match (v, default) with
  | Int i, _ -> i
  | Null, Some d -> d
  | v, _ -> fail "expected an integer, found %s" (to_string v)

let to_float ?default v =
  match (v, default) with
  | Float f, _ -> f
  | Int i, _ -> float_of_int i
  | Null, Some d -> d
  | v, _ -> fail "expected a number, found %s" (to_string v)

let to_str ?default v =
  match (v, default) with
  | String s, _ -> s
  | Null, Some d -> d
  | v, _ -> fail "expected a string, found %s" (to_string v)

let to_list = function
  | List xs -> xs
  | Null -> []
  | v -> fail "expected a list, found %s" (to_string v)
