(* Bounded model checking by SAT unrolling: an exact complement to the
   sound-but-incomplete fixed point.  The machine is unrolled frame by
   frame from its initial state inside one incremental solver; at every
   depth each PO is checked for a satisfying 0 (for product machines built
   by {!Scorr.Product}, the "outputs_agree" PO is 0 exactly when some
   output pair differs).  A hit yields a concrete input trace. *)

type counterexample = {
  depth : int; (* frame at which the property fails *)
  inputs : bool array array; (* inputs.(t).(i): PI i at frame t, t <= depth *)
  output : string; (* name of the failing PO *)
}

type result =
  | No_counterexample of int (* clean up to this depth (inclusive) *)
  | Counterexample of counterexample
  | Budget of string

(* Check that every PO of [aig] is 1 in all frames up to [max_depth].
   POs listed in [ignore_outputs] are skipped. *)
let check ?(max_depth = 20) ?(max_sat_calls = max_int) ?(ignore_outputs = []) aig =
  let solver = Sat.create () in
  let n_pis = Aig.num_pis aig in
  let n_latches = Aig.num_latches aig in
  let pos =
    List.filter (fun (name, _) -> not (List.mem name ignore_outputs)) (Aig.pos aig)
  in
  let pi_frames = ref [] in
  (* latch variables of the current frame; frame 0 is the initial state *)
  let latch_vars =
    ref
      (Array.init n_latches (fun i ->
           let v = Sat.new_var solver in
           Sat.add_clause solver [ Sat.Lit.make v (Aig.latch_init aig i) ];
           v))
  in
  let calls = ref 0 in
  let exception Found of counterexample in
  let exception Out_of_budget in
  try
    for depth = 0 to max_depth do
      let x_vars = Array.init n_pis (fun _ -> Sat.new_var solver) in
      pi_frames := x_vars :: !pi_frames;
      let lit_of =
        Aig.Cnf.encode solver aig
          ~pi_var:(fun i -> x_vars.(i))
          ~latch_var:(fun i -> !latch_vars.(i))
      in
      (* property checks at this depth *)
      List.iter
        (fun (name, l) ->
          let po = lit_of l in
          incr calls;
          if !calls > max_sat_calls then raise Out_of_budget;
          match Sat.solve ~assumptions:[ Sat.Lit.negate po ] solver with
          | Sat.Unsat -> ()
          | Sat.Sat ->
            let frames = List.rev !pi_frames in
            let inputs =
              Array.of_list
                (List.map (fun xs -> Array.map (fun v -> Sat.value solver v) xs) frames)
            in
            raise (Found { depth; inputs; output = name }))
        pos;
      (* advance the state *)
      latch_vars :=
        Array.init n_latches (fun i ->
            let v = Sat.new_var solver in
            let next = lit_of (Aig.latch_next aig i) in
            Sat.add_clause solver [ Sat.Lit.neg v; next ];
            Sat.add_clause solver [ Sat.Lit.pos v; Sat.Lit.negate next ];
            v)
    done;
    No_counterexample max_depth
  with
  | Found cex -> Counterexample cex
  | Out_of_budget -> Budget "sat calls"

(* Counterexample replay lives in [Cert.Witness]: convert with
   [Cert.Witness.of_bmc] and validate with [Cert.Witness.refutes], which
   shares one simulation-based validator across BMC, induction and the
   signal-correspondence verdicts. *)
