(** Symbolic state-space traversal — the conventional sequential
    equivalence checking algorithm the paper improves on, used here as the
    Table 1 baseline and as the source of reachable-state don't-cares. *)

(** Symbolic transition systems: BDD next-state functions over an
    inputs-then-interleaved-state variable layout, plus the partitioned
    image operator with early quantification. *)
module Trans : sig
  type t = {
    m : Bdd.manager;
    aig : Aig.t;
    n_pis : int;
    n_latches : int;
    pi_vars : int array;
    cs_vars : int array;  (** current-state variables *)
    ns_vars : int array;  (** next-state variables *)
    next_fns : Bdd.t array;  (** over (pi, cs) *)
    init : Bdd.t;  (** the initial-state cube over cs *)
    outputs : (string * Bdd.t) list;
    bdd_of_lit : int -> Bdd.t;
  }

  val make : ?node_limit:int -> ?latch_order:int array -> Aig.t -> t
  (** [latch_order] places latch [order.(p)]'s variable pair at position
      [p]: pass an interleaving order for product machines.  With
      [node_limit], construction may raise {!Bdd.Limit_exceeded}. *)

  val image : t -> Bdd.t -> Bdd.t
  (** Successors of a state set (over cs), via the partitioned relational
      product with early quantification. *)

  val image_with : t -> next_fns:Bdd.t array -> Bdd.t -> Bdd.t
  (** {!image} with substituted next-state functions (see {!Fundep}). *)

  val has_bad_state : t -> Bdd.t -> Bdd.t -> bool
  val property_all_outputs_one : t -> Bdd.t
end

(** Breadth-first reachability with budgets and an optional property. *)
module Traversal : sig
  type budget = { max_iterations : int; max_live_nodes : int; max_seconds : float }

  val default_budget : budget

  type stats = {
    iterations : int;
    peak_nodes : int;
    dependencies_found : int;
    seconds : float;
  }

  type outcome =
    | Fixpoint of Bdd.t  (** the exact reachable set (over cs) *)
    | Property_violation of int  (** depth of the first failure *)
    | Budget_exceeded of string

  type result = { outcome : outcome; stats : stats }

  val run : ?budget:budget -> ?use_fundep:bool -> ?property:Bdd.t -> Trans.t -> result
  (** Traverse from the initial state; [property] (over pi, cs) must hold
      on every reached state and input.  [use_fundep] compresses each
      frontier through functional-dependency detection [6] before taking
      the image. *)

  val check_equivalence : ?budget:budget -> ?use_fundep:bool -> Trans.t -> result
  (** {!run} with the property "all outputs are 1" — for product machines
      whose outputs are pairwise XNORs. *)

  val count_states : Trans.t -> Bdd.t -> float
end

(** Functional dependencies between state variables [6]. *)
module Fundep : sig
  type dependency = { var : int; fn : Bdd.t }

  val detect : Bdd.manager -> Bdd.t -> candidates:int list -> dependency list * Bdd.t
  (** Variables functionally determined by the rest within a set, their
      dependency functions (free of every dependent variable) and the
      compressed set. *)

  val substitution : Bdd.manager -> nvars:int -> dependency list -> Bdd.t option array
  val reconstruct : Bdd.manager -> Bdd.t -> dependency list -> Bdd.t
end

(** Approximate (over-approximated) reachability after Cho et al. [4]:
    per-block traversal with all other state variables free. *)
module Approx : sig
  val partition_latches : Trans.t -> k:int -> int list list
  val block_reachable : ?max_iterations:int -> Trans.t -> int list -> Bdd.t

  val upper_bound : ?block_size:int -> Trans.t -> Bdd.t
  (** Always contains the exact reachable set (property-tested), so it is
      safe as a care set for the paper's don't-care extension. *)
end

(** Bounded model checking by incremental SAT unrolling: exact refutation
    up to a depth, with a concrete input trace. *)
module Bmc : sig
  type counterexample = {
    depth : int;
    inputs : bool array array;  (** [inputs.(t).(i)]: PI [i] at frame [t] *)
    output : string;  (** name of the failing PO *)
  }

  type result =
    | No_counterexample of int  (** every PO is 1 up to this depth *)
    | Counterexample of counterexample
    | Budget of string

  val check :
    ?max_depth:int -> ?max_sat_calls:int -> ?ignore_outputs:string list -> Aig.t -> result
  (** Check that every PO holds (is 1) in all frames up to [max_depth].
      Counterexamples are validated by [Cert.Witness]: convert with
      [Cert.Witness.of_bmc] and replay with [Cert.Witness.refutes]. *)
end

(** Plain k-induction on the outputs: the monolithic modern baseline
    (sound; incomplete without uniqueness constraints). *)
module Induction : sig
  type outcome =
    | Proved of int  (** the k at which induction closed *)
    | Refuted of Bmc.counterexample
    | Unknown of string

  val check : ?max_k:int -> ?max_sat_calls:int -> Aig.t -> outcome
end
