(* Analysis-backed lint rules: findings that need the static-analysis
   layer (reachability closed through latch next-states, SAT-discharged
   reduction) rather than the purely local scans in [Aig_check].

   Rule catalog (id, severity):
     unobservable-latch  Warning  latch no output depends on, even through
                                  other latches (dead state)
     reducible-logic     Info     strashing/rewriting/FRAIG merging would
                                  shrink the and graph

   These run opt-in (`seqver lint --analysis`): reducible-logic discharges
   SAT obligations, which is too heavy for the always-on rule set, and the
   pair only makes sense on structurally sound circuits. *)

module Diag = Netlist.Diag

let node_ref id = (id, None)

let unobservable aig d acc =
  List.fold_left
    (fun acc i ->
      Diag.makef
        ~nets:[ node_ref (Aig.latch_node aig i) ]
        "unobservable-latch" Diag.Warning
        "latch %d (node n%d) reaches no output, even through other latches \
         (unobservable state)"
        i (Aig.latch_node aig i)
      :: acc)
    acc d.Analysis.Diag.unobservable_latches

let reducible aig acc =
  let _, s = Analysis.Reduce.run aig in
  let removed = s.Analysis.Reduce.ands_before - s.Analysis.Reduce.ands_after in
  if removed > 0 then
    Diag.makef "reducible-logic" Diag.Info
      "structural reduction removes %d of %d and node(s) (%d rewrites, %d proven merges)"
      removed s.Analysis.Reduce.ands_before s.Analysis.Reduce.rewrites
      s.Analysis.Reduce.fraig_merges
    :: acc
  else acc

(* Only called on circuits that passed the error-level [Aig_check] rules;
   both rules assume a structurally sound graph. *)
let run aig =
  let d = Analysis.Diag.run aig in
  [] |> unobservable aig d |> reducible aig
