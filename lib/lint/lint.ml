(* Circuit lint: diagnostics, renderers and preflight gating.

   The rules live next to the representations they inspect —
   [Netlist.Check] for gate-level circuits, [Aig_check] here for AIGs —
   and share the [Netlist.Diag] data model.  This facade adds the
   user-facing surface: human and JSON reports, the exit-code policy of
   `seqver lint`, and the preflight hook the verification pipeline uses to
   reject structurally broken circuits before spending SAT effort on
   them. *)

module Diag = Netlist.Diag
module Aig_check = Aig_check
module Aig_ternary = Aig_ternary
module Analysis_rules = Analysis_rules

(* --- running the rules ----------------------------------------------------- *)

let check_netlist ?ternary_steps c = Netlist.Check.run ?ternary_steps c

(* [analysis] adds the [Analysis_rules] catalog (unobservable-latch,
   reducible-logic).  Opt-in: reducible-logic runs the SAT-discharged
   reduction, and both rules assume a structurally sound graph, so they
   only run when the error-level rules all passed. *)
let check_aig ?ternary_steps ?(analysis = false) aig =
  let diags = Aig_check.run ?ternary_steps aig in
  if analysis && Diag.errors diags = [] then
    Aig_check.sort_report (Analysis_rules.run aig @ diags)
  else diags

(* --- human report ----------------------------------------------------------- *)

let summary_line ~subject diags =
  if diags = [] then Printf.sprintf "%s: clean" subject
  else
    Printf.sprintf "%s: %d error(s), %d warning(s), %d info" subject
      (Diag.count Diag.Error diags)
      (Diag.count Diag.Warning diags)
      (Diag.count Diag.Info diags)

let render ~subject diags =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (summary_line ~subject diags);
  Buffer.add_char buf '\n';
  List.iter
    (fun d ->
      Buffer.add_string buf "  ";
      Buffer.add_string buf (Diag.to_string d);
      Buffer.add_char buf '\n')
    diags;
  Buffer.contents buf

(* --- JSON report ------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | ch when Char.code ch < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let json_of_diag d =
  let nets =
    String.concat ","
      (List.map
         (fun (net, name) ->
           match name with
           | Some n -> Printf.sprintf {|{"net":%d,"name":"%s"}|} net (json_escape n)
           | None -> Printf.sprintf {|{"net":%d,"name":null}|} net)
         d.Diag.nets)
  in
  Printf.sprintf {|{"rule":"%s","severity":"%s","message":"%s","nets":[%s]}|}
    (json_escape d.Diag.rule)
    (Diag.severity_name d.Diag.severity)
    (json_escape d.Diag.message)
    nets

(* Schema: {"subject": string, "diagnostics": [{"rule": string,
   "severity": "error"|"warning"|"info", "message": string,
   "nets": [{"net": int, "name": string|null}]}]} *)
let to_json ~subject diags =
  Printf.sprintf {|{"subject":"%s","diagnostics":[%s]}|} (json_escape subject)
    (String.concat "," (List.map json_of_diag diags))

(* --- exit-code policy ------------------------------------------------------- *)

(* `seqver lint`: 0 clean (or only advisory findings without [--strict]),
   1 worst finding is a warning under [--strict], 2 errors under
   [--strict].  Parse failures are always exit 2 (handled by the CLI). *)
let exit_code ~strict diags =
  if not strict then 0
  else
    match Diag.worst diags with
    | Some Diag.Error -> 2
    | Some Diag.Warning -> 1
    | Some Diag.Info | None -> 0

(* --- preflight --------------------------------------------------------------- *)

exception Rejected of string
(** Raised by the preflight checks with a rendered multi-diagnostic
    report; the verification pipeline refuses to run on circuits with
    error-level defects. *)

let preflight_netlist ~subject c =
  match Netlist.Check.errors c with
  | [] -> ()
  | errs -> raise (Rejected (render ~subject errs))

let preflight_aig ~subject aig =
  match Aig_check.errors aig with
  | [] -> ()
  | errs -> raise (Rejected (render ~subject errs))
