(* X-valued (ternary) simulation of AIGs, started from the defined initial
   state with every primary input held at X.  Ascending node ids are a
   topological order (AND fanins reference earlier nodes), so one array
   pass per frame evaluates the whole graph.

   Two consumers: the stuck-latch lint rule, and the signal-correspondence
   seeding in the core library — per-node ternary signatures over the first
   frames of the walk separate nodes that provably differ on some reachable
   ternary state, which refines the initial partition without any SAT
   calls (the spirit of ABC's `scorr` ternary initialization). *)

type v = F | T | X

let v_not = function F -> T | T -> F | X -> X
let v_and a b = match (a, b) with F, _ | _, F -> F | T, T -> T | _ -> X
let of_bool b = if b then T else F
let to_string = function F -> "0" | T -> "1" | X -> "x"

let lit_val values l =
  let v = values.(Aig.node_of_lit l) in
  if Aig.lit_is_compl l then v_not v else v

(* One combinational frame under all-X inputs and the given latch
   valuation (by latch index); returns one value per node id.  Requires a
   well-formed AIG (latches closed, fanins backward): run [Aig_check]
   first. *)
let eval aig ~latch =
  let n = Aig.num_nodes aig in
  let values = Array.make n X in
  values.(0) <- F;
  for id = 1 to n - 1 do
    values.(id) <-
      (match Aig.node aig id with
      | Aig.Const -> F
      | Aig.Pi _ -> X
      | Aig.Latch i -> latch i
      | Aig.And (a, b) -> v_and (lit_val values a) (lit_val values b))
  done;
  values

let next_state aig values =
  Array.init (Aig.num_latches aig) (fun i -> lit_val values (Aig.latch_next aig i))

let initial_state aig =
  Array.init (Aig.num_latches aig) (fun i -> of_bool (Aig.latch_init aig i))

let state_key state =
  String.concat "" (Array.to_list (Array.map to_string state))

(* Latches provably stuck at a constant.  Two phases:
   1. walk the ternary state sequence from the initial state for at most
      [max_steps] steps (stopping early when a state repeats), taking the
      meet over every visited state;
   2. prune the candidates to an inductively closed subset: from the state
      "facts at their constants, everything else X", one ternary step must
      reproduce every fact.  Pruning repeats until stable.
   Phase 2 makes the result sound even when the walk is cut off before the
   state sequence revisits a state: the surviving facts hold initially
   (phase 1) and are preserved by every transition (phase 2). *)
let stuck_latches ?(max_steps = 64) aig =
  let n_l = Aig.num_latches aig in
  if n_l = 0 then []
  else begin
    let step lookup = next_state aig (eval aig ~latch:lookup) in
    let init = initial_state aig in
    let seen = Hashtbl.create 64 in
    let meet = Array.copy init in
    let state = ref init in
    (try
       for _ = 1 to max_steps do
         let k = state_key !state in
         if Hashtbl.mem seen k then raise Exit;
         Hashtbl.add seen k ();
         state := step (fun i -> !state.(i));
         for i = 0 to n_l - 1 do
           if meet.(i) <> !state.(i) then meet.(i) <- X
         done
       done
     with Exit -> ());
    let rec prune facts =
      let latch_val = Array.make n_l X in
      List.iter (fun (i, b) -> latch_val.(i) <- of_bool b) facts;
      let next = step (fun i -> latch_val.(i)) in
      let kept = List.filter (fun (i, b) -> next.(i) = of_bool b) facts in
      if List.length kept = List.length facts then facts else prune kept
    in
    prune
      (List.filter_map
         (fun i ->
           match meet.(i) with
           | F -> Some (i, false)
           | T -> Some (i, true)
           | X -> None)
         (List.init n_l (fun i -> i)))
  end

(* Per-node ternary signatures over the first frames of the walk, packed
   as (mask, value) int pairs: bit k of [mask] is set when the node had a
   definite value on frame k, and bit k of [value] holds that value.  Two
   nodes whose signatures are definitely unequal on some frame
   ([mask_a land mask_b land (val_a lxor val_b) <> 0]) differ on a
   reachable state of every real run, so they can never be sequentially
   equivalent — a sound reason to split them apart when seeding the
   signal-correspondence partition. *)
let signatures ?(max_steps = 62) aig =
  let max_steps = min max_steps 62 in
  let n = Aig.num_nodes aig in
  let masks = Array.make n 0 in
  let vals = Array.make n 0 in
  let seen = Hashtbl.create 64 in
  let state = ref (initial_state aig) in
  (try
     for k = 0 to max_steps - 1 do
       let st = !state in
       let key = state_key st in
       if Hashtbl.mem seen key then raise Exit;
       Hashtbl.add seen key ();
       let values = eval aig ~latch:(fun i -> st.(i)) in
       for id = 0 to n - 1 do
         match values.(id) with
         | X -> ()
         | F -> masks.(id) <- masks.(id) lor (1 lsl k)
         | T ->
           masks.(id) <- masks.(id) lor (1 lsl k);
           vals.(id) <- vals.(id) lor (1 lsl k)
       done;
       state := next_state aig values
     done
   with Exit -> ());
  Array.init n (fun id -> (masks.(id), vals.(id)))
