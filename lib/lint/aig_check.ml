(* Static-analysis rules over AIGs: the AIG half of the lint subsystem
   (the netlist half is [Netlist.Check]).  Same reporting contract: every
   rule reports ALL its findings.

   Rule catalog (id, severity):
     unclosed-latch    Error    latch whose next-state was never set
     dangling-literal  Error    literal referencing a node outside the graph
     and-order         Error    AND node referencing a later node (not topo)
     dead-node         Info     AND node outside every output's cone
     const-output      Info     output tied to constant true/false
     stuck-latch       Info     latch provably constant (ternary simulation)

   Diagnostics carry node ids in the [nets] field (AIG nodes are unnamed;
   the labels render as [nNN]). *)

module Diag = Netlist.Diag

let node_ref id = (id, None)

(* --- unclosed-latch ------------------------------------------------------- *)

let unclosed_latches aig acc =
  let acc = ref acc in
  for i = 0 to Aig.num_latches aig - 1 do
    if Aig.latch_next aig i < 0 then
      acc :=
        Diag.makef
          ~nets:[ node_ref (Aig.latch_node aig i) ]
          "unclosed-latch" Diag.Error
          "latch %d (node n%d) has no next-state function" i (Aig.latch_node aig i)
        :: !acc
  done;
  !acc

(* --- dangling-literal ----------------------------------------------------- *)

let in_range aig l = l >= 0 && Aig.node_of_lit l < Aig.num_nodes aig

let dangling aig acc =
  let acc = ref acc in
  let flag id what l =
    acc :=
      Diag.makef ~nets:[ node_ref id ] "dangling-literal" Diag.Error
        "%s references literal %d outside the graph (%d nodes)" what l (Aig.num_nodes aig)
      :: !acc
  in
  for id = 1 to Aig.num_nodes aig - 1 do
    match Aig.node aig id with
    | Aig.And (a, b) ->
      if not (in_range aig a) then flag id (Printf.sprintf "and node n%d" id) a;
      if not (in_range aig b) then flag id (Printf.sprintf "and node n%d" id) b
    | Aig.Const | Aig.Pi _ | Aig.Latch _ -> ()
  done;
  for i = 0 to Aig.num_latches aig - 1 do
    let next = Aig.latch_next aig i in
    if next >= 0 && not (in_range aig next) then
      flag (Aig.latch_node aig i) (Printf.sprintf "latch %d" i) next
  done;
  List.iter
    (fun (name, l) ->
      if not (in_range aig l) then flag 0 (Printf.sprintf "output '%s'" name) l)
    (Aig.pos aig);
  !acc

(* --- and-order ------------------------------------------------------------ *)

let and_order aig acc =
  let acc = ref acc in
  for id = 1 to Aig.num_nodes aig - 1 do
    match Aig.node aig id with
    | Aig.And (a, b) ->
      let bad l = in_range aig l && Aig.node_of_lit l >= id in
      if bad a || bad b then
        acc :=
          Diag.makef ~nets:[ node_ref id ] "and-order" Diag.Error
            "and node n%d references a later node (ids are not a topological order)" id
        :: !acc
    | Aig.Const | Aig.Pi _ | Aig.Latch _ -> ()
  done;
  !acc

(* --- dead-node ------------------------------------------------------------ *)

(* Reachability from the POs where a reached latch pulls in its next-state
   cone — the same notion [Aig.cleanup] garbage-collects.  Only AND nodes
   are reported: PIs are interface, latches without fanout are reported by
   cleanup statistics, and dead ANDs are what strashing normally prevents. *)
let dead_nodes aig acc =
  let n = Aig.num_nodes aig in
  let reachable = Array.make n false in
  reachable.(0) <- true;
  let rec mark id =
    if id >= 0 && id < n && not reachable.(id) then begin
      reachable.(id) <- true;
      match Aig.node aig id with
      | Aig.And (a, b) ->
        mark (Aig.node_of_lit a);
        mark (Aig.node_of_lit b)
      | Aig.Latch i ->
        let next = Aig.latch_next aig i in
        if next >= 0 then mark (Aig.node_of_lit next)
      | Aig.Const | Aig.Pi _ -> ()
    end
  in
  List.iter (fun (_, l) -> mark (Aig.node_of_lit l)) (Aig.pos aig);
  let acc = ref acc in
  for id = 1 to n - 1 do
    match Aig.node aig id with
    | Aig.And _ when not reachable.(id) ->
      acc :=
        Diag.makef ~nets:[ node_ref id ] "dead-node" Diag.Info
          "and node n%d feeds no output (dead logic)" id
        :: !acc
    | _ -> ()
  done;
  !acc

(* --- const-output --------------------------------------------------------- *)

let const_outputs aig acc =
  List.fold_left
    (fun acc (name, l) ->
      if l = Aig.lit_false || l = Aig.lit_true then
        Diag.makef "const-output" Diag.Info "output '%s' is constant %s" name
          (if l = Aig.lit_true then "true" else "false")
        :: acc
      else acc)
    acc (Aig.pos aig)

(* --- stuck-latch (ternary simulation) ------------------------------------- *)

let stuck_latches ?max_steps aig acc =
  List.fold_left
    (fun acc (i, value) ->
      Diag.makef
        ~nets:[ node_ref (Aig.latch_node aig i) ]
        "stuck-latch" Diag.Info
        "latch %d is stuck at %d (ternary simulation from the initial state)" i
        (if value then 1 else 0)
      :: acc)
    acc
    (Aig_ternary.stuck_latches ?max_steps aig)

(* --- driver --------------------------------------------------------------- *)

let errors aig =
  [] |> unclosed_latches aig |> dangling aig |> and_order aig |> Diag.errors

let sort_report diags =
  List.sort
    (fun a b ->
      match
        compare (Diag.severity_rank b.Diag.severity) (Diag.severity_rank a.Diag.severity)
      with
      | 0 -> compare (a.Diag.rule, a.Diag.nets) (b.Diag.rule, b.Diag.nets)
      | n -> n)
    diags

let run ?(ternary_steps = 64) aig =
  let diags =
    [] |> unclosed_latches aig |> dangling aig |> and_order aig |> dead_nodes aig
    |> const_outputs aig
  in
  let diags =
    if ternary_steps > 0 && Diag.errors diags = [] then
      stuck_latches ~max_steps:ternary_steps aig diags
    else diags
  in
  sort_report diags
