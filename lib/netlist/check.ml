(* Static-analysis rules over gate-level circuits: the netlist half of the
   lint subsystem (the AIG half lives in the lint library).  Every rule
   reports ALL its findings, so a single run diagnoses every defect of a
   malformed circuit instead of aborting at the first.

   Rule catalog (id, severity):
     multiply-driven   Error    one name driven by several distinct nets
     undriven-net      Error    net referenced but never driven
     unclosed-latch    Error    latch whose data input was never set
     bad-arity         Error    gate with an impossible fanin count
     comb-cycle        Error    combinational cycle, with a witness path
     output-collision  Error    one output name bound to different nets
                       Warning  the same output listed twice
     dead-net          Warning  logic outside every output's cone of influence
     unused-input      Info     primary input feeding no output
     const-gate        Info     gate that always evaluates to a constant
     stuck-latch       Info     latch provably constant (ternary simulation) *)

let named c net = (net, Circuit.name_of c net)
let label c net = Diag.net_label (named c net)

(* --- multiply-driven ------------------------------------------------------ *)

(* Each net has exactly one driver by construction, so a multiply-driven
   signal of the source file manifests as one NAME naming several nets
   (the lenient parser modes materialize every driver). *)
let multiply_driven c acc =
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun (net, name) ->
      Hashtbl.replace by_name name (net :: (Option.value ~default:[] (Hashtbl.find_opt by_name name))))
    (Circuit.names c);
  Hashtbl.fold
    (fun name nets acc ->
      match nets with
      | [] | [ _ ] -> acc
      | nets ->
        let nets = List.sort compare nets in
        Diag.makef
          ~nets:(List.map (named c) nets)
          "multiply-driven" Diag.Error "signal '%s' is driven by %d distinct nets (%s)"
          name (List.length nets)
          (String.concat ", " (List.map (Printf.sprintf "n%d") nets))
        :: acc)
    by_name acc

(* --- undriven-net --------------------------------------------------------- *)

let undriven c acc =
  let is_input = Array.make (Circuit.num_nets c) false in
  List.iter (fun net -> is_input.(net) <- true) (Circuit.inputs c);
  let acc = ref acc in
  for net = 0 to Circuit.num_nets c - 1 do
    match Circuit.node c net with
    | Circuit.Input when not is_input.(net) ->
      acc :=
        Diag.makef ~nets:[ named c net ] "undriven-net" Diag.Error
          "net %s is referenced but has no driver" (label c net)
        :: !acc
    | _ -> ()
  done;
  !acc

(* --- unclosed-latch ------------------------------------------------------- *)

let unclosed_latches c acc =
  List.fold_left
    (fun acc l ->
      if Circuit.latch_data c l < 0 then
        Diag.makef ~nets:[ named c l ] "unclosed-latch" Diag.Error
          "latch %s has no data input (set_latch_data was never called)" (label c l)
        :: acc
      else acc)
    acc (Circuit.latches c)

(* --- bad-arity ------------------------------------------------------------ *)

let bad_arity c acc =
  let acc = ref acc in
  let flag net fn n expected =
    let fn_name =
      match fn with
      | Circuit.And -> "and" | Circuit.Or -> "or" | Circuit.Nand -> "nand"
      | Circuit.Nor -> "nor" | Circuit.Xor -> "xor" | Circuit.Xnor -> "xnor"
      | Circuit.Not -> "not" | Circuit.Buf -> "buf"
      | Circuit.Const0 -> "const0" | Circuit.Const1 -> "const1"
    in
    acc :=
      Diag.makef ~nets:[ named c net ] "bad-arity" Diag.Error
        "%s gate %s has %d fanins (expected %s)" fn_name (label c net) n expected
      :: !acc
  in
  for net = 0 to Circuit.num_nets c - 1 do
    match Circuit.node c net with
    | Circuit.Gate (((Circuit.Not | Circuit.Buf) as fn), fanins) ->
      if Array.length fanins <> 1 then flag net fn (Array.length fanins) "1"
    | Circuit.Gate (((Circuit.Const0 | Circuit.Const1) as fn), fanins) ->
      if Array.length fanins <> 0 then flag net fn (Array.length fanins) "0"
    | Circuit.Gate (fn, [||]) -> flag net fn 0 ">= 1"
    | Circuit.Gate _ | Circuit.Input | Circuit.Latch _ -> ()
  done;
  !acc

(* --- comb-cycle ----------------------------------------------------------- *)

(* Depth-first search over the combinational edges; a back edge closes a
   cycle, and the DFS path gives an explicit witness.  Every distinct back
   edge is reported (completed nodes are never re-entered, so the same
   cycle is not reported twice). *)
let comb_cycles c acc =
  let n = Circuit.num_nets c in
  let state = Array.make n 0 in
  (* 0 = unvisited, 1 = on stack, 2 = done *)
  let acc = ref acc in
  let rec visit path net =
    match state.(net) with
    | 2 -> ()
    | 1 ->
      (* [net] is on the current path: the cycle is the path segment from
         its previous occurrence back to here *)
      let rec upto = function
        | [] -> []
        | x :: rest -> if x = net then [ x ] else x :: upto rest
      in
      let cycle = net :: List.rev (upto path) in
      acc :=
        Diag.makef
          ~nets:(List.map (named c) (List.tl cycle))
          "comb-cycle" Diag.Error "combinational cycle: %s"
          (String.concat " -> " (List.map (label c) cycle))
        :: !acc
    | _ ->
      state.(net) <- 1;
      (match Circuit.node c net with
      | Circuit.Gate (_, fanins) -> Array.iter (visit (net :: path)) fanins
      | Circuit.Input | Circuit.Latch _ -> ());
      state.(net) <- 2
  in
  for net = 0 to n - 1 do
    visit [] net
  done;
  !acc

(* --- output-collision ----------------------------------------------------- *)

let output_collisions c acc =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (name, net) ->
      Hashtbl.replace by_name name
        (net :: Option.value ~default:[] (Hashtbl.find_opt by_name name)))
    (Circuit.outputs c);
  Hashtbl.fold
    (fun name nets acc ->
      match List.sort_uniq compare nets with
      | [] -> acc
      | [ net ] ->
        if List.length nets > 1 then
          Diag.makef ~nets:[ named c net ] "output-collision" Diag.Warning
            "output '%s' is listed %d times" name (List.length nets)
          :: acc
        else acc
      | distinct ->
        Diag.makef
          ~nets:(List.map (named c) distinct)
          "output-collision" Diag.Error "output '%s' is bound to %d different nets" name
          (List.length distinct)
        :: acc)
    by_name acc

(* --- dead-net / unused-input ---------------------------------------------- *)

(* Cone of influence: everything transitively feeding an output, where a
   live latch also pulls in its data cone.  Gates and latches outside it
   are dead logic; inputs outside it are merely unused (the interface may
   be fixed externally, hence only Info). *)
let coi c =
  let live = Array.make (Circuit.num_nets c) false in
  let rec mark net =
    if not live.(net) then begin
      live.(net) <- true;
      match Circuit.node c net with
      | Circuit.Gate (_, fanins) -> Array.iter mark fanins
      | Circuit.Latch _ ->
        let d = Circuit.latch_data c net in
        if d >= 0 then mark d
      | Circuit.Input -> ()
    end
  in
  List.iter (fun (_, net) -> mark net) (Circuit.outputs c);
  live

let dead_nets c acc =
  let live = coi c in
  let acc = ref acc in
  for net = 0 to Circuit.num_nets c - 1 do
    if not live.(net) then
      match Circuit.node c net with
      | Circuit.Gate _ ->
        acc :=
          Diag.makef ~nets:[ named c net ] "dead-net" Diag.Warning
            "gate %s feeds no output (dead logic)" (label c net)
          :: !acc
      | Circuit.Latch _ ->
        acc :=
          Diag.makef ~nets:[ named c net ] "dead-net" Diag.Warning
            "latch %s feeds no output (dead state)" (label c net)
          :: !acc
      | Circuit.Input -> ()
  done;
  List.fold_left
    (fun acc net ->
      if live.(net) then acc
      else
        Diag.makef ~nets:[ named c net ] "unused-input" Diag.Info
          "input %s feeds no output" (label c net)
        :: acc)
    !acc (Circuit.inputs c)

(* --- const-gate ----------------------------------------------------------- *)

let const_gates c acc =
  let is_const0 net =
    match Circuit.node c net with Circuit.Gate (Circuit.Const0, _) -> true | _ -> false
  in
  let is_const1 net =
    match Circuit.node c net with Circuit.Gate (Circuit.Const1, _) -> true | _ -> false
  in
  let is_const net = is_const0 net || is_const1 net in
  let acc = ref acc in
  for net = 0 to Circuit.num_nets c - 1 do
    match Circuit.node c net with
    | Circuit.Gate ((Circuit.Const0 | Circuit.Const1), _) | Circuit.Input | Circuit.Latch _ ->
      ()
    | Circuit.Gate (fn, fanins) ->
      let foldable =
        (Array.length fanins > 0 && Array.for_all is_const fanins)
        || (match fn with
           | Circuit.And | Circuit.Nand -> Array.exists is_const0 fanins
           | Circuit.Or | Circuit.Nor -> Array.exists is_const1 fanins
           | _ -> false)
      in
      if foldable then
        acc :=
          Diag.makef ~nets:[ named c net ] "const-gate" Diag.Info
            "gate %s always evaluates to a constant (foldable)" (label c net)
          :: !acc
  done;
  !acc

(* --- stuck-latch (ternary simulation) ------------------------------------- *)

let stuck_latches ?max_steps c acc =
  List.fold_left
    (fun acc (l, value) ->
      Diag.makef ~nets:[ named c l ] "stuck-latch" Diag.Info
        "latch %s is stuck at %d (ternary simulation from the initial state)"
        (label c l) (if value then 1 else 0)
      :: acc)
    acc
    (Ternary.stuck_latches ?max_steps c)

(* --- driver --------------------------------------------------------------- *)

(* Structural (error-level) rules only: the basis of [Netlist.validate]. *)
let errors c =
  []
  |> multiply_driven c
  |> undriven c
  |> unclosed_latches c
  |> bad_arity c
  |> comb_cycles c
  |> output_collisions c
  |> Diag.errors

(* The full catalog.  The ternary rule needs a well-formed circuit, so it
   only runs when no error-level diagnostic fired; [ternary_steps = 0]
   disables it. *)
let run ?(ternary_steps = 64) c =
  let diags =
    []
    |> multiply_driven c
    |> undriven c
    |> unclosed_latches c
    |> bad_arity c
    |> comb_cycles c
    |> output_collisions c
    |> dead_nets c
    |> const_gates c
  in
  let diags =
    if ternary_steps > 0 && Diag.errors diags = [] then
      stuck_latches ~max_steps:ternary_steps c diags
    else diags
  in
  (* stable report order: severity first, then rule id, then nets *)
  List.sort
    (fun a b ->
      match compare (Diag.severity_rank b.Diag.severity) (Diag.severity_rank a.Diag.severity) with
      | 0 -> compare (a.Diag.rule, a.Diag.nets) (b.Diag.rule, b.Diag.nets)
      | n -> n)
    diags

let validate c =
  match errors c with
  | [] -> Ok ()
  | errs -> Error (String.concat "; " (List.map Diag.to_string errs))
