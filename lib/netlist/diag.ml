(* Diagnostics data model shared by the circuit lint rules (netlist- and
   AIG-level): a rule identifier, a severity, a human message and the
   affected nets.  The renderers (human report, JSON) live in the lint
   library; this module only defines the data and its one-line printer so
   [Netlist.validate] can be built on top without a dependency cycle. *)

type severity = Error | Warning | Info

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"
let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0

type t = {
  rule : string; (* stable identifier, e.g. "multiply-driven" *)
  severity : severity;
  message : string;
  nets : (int * string option) list; (* affected nets with their names *)
}

let make ?(nets = []) rule severity message = { rule; severity; message; nets }

let makef ?nets rule severity fmt =
  Printf.ksprintf (fun message -> make ?nets rule severity message) fmt

(* "q3" for a named net, "n17" for an anonymous one. *)
let net_label (net, name) =
  match name with Some n -> n | None -> Printf.sprintf "n%d" net

let pp ppf d =
  Format.fprintf ppf "%s[%s]: %s" (severity_name d.severity) d.rule d.message;
  match d.nets with
  | [] -> ()
  | nets ->
    Format.fprintf ppf " [%s]" (String.concat " " (List.map net_label nets))

let to_string d = Format.asprintf "%a" pp d

(* The highest severity present, or [None] for a clean report. *)
let worst diags =
  List.fold_left
    (fun acc d ->
      match acc with
      | Some s when severity_rank s >= severity_rank d.severity -> acc
      | _ -> Some d.severity)
    None diags

let count severity diags = List.length (List.filter (fun d -> d.severity = severity) diags)
let errors diags = List.filter (fun d -> d.severity = Error) diags
