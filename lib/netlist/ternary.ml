(* X-valued (ternary) simulation of circuits, started from the defined
   initial state with every primary input held at X.  A latch whose value
   stays a definite constant over the reachable ternary states is stuck at
   that constant on every real run: the facts are sound invariants usable
   both as lint diagnostics and as seed information for the signal
   correspondence fixed point (ABC's `scorr -c` ternary init, and the
   structural reduction spirit of FRAIG-BMC). *)

type v = F | T | X

let v_not = function F -> T | T -> F | X -> X
let v_and a b = match (a, b) with F, _ | _, F -> F | T, T -> T | _ -> X
let v_or a b = match (a, b) with T, _ | _, T -> T | F, F -> F | _ -> X
let v_xor a b = match (a, b) with X, _ | _, X -> X | _ -> if a = b then F else T
let of_bool b = if b then T else F
let to_string = function F -> "0" | T -> "1" | X -> "x"

let gate_eval fn (values : v array) (fanins : int array) =
  let fold f init = Array.fold_left (fun acc i -> f acc values.(i)) init fanins in
  match fn with
  | Circuit.And -> fold v_and T
  | Circuit.Or -> fold v_or F
  | Circuit.Nand -> v_not (fold v_and T)
  | Circuit.Nor -> v_not (fold v_or F)
  | Circuit.Xor -> fold v_xor F
  | Circuit.Xnor -> v_not (fold v_xor F)
  | Circuit.Not -> v_not values.(fanins.(0))
  | Circuit.Buf -> values.(fanins.(0))
  | Circuit.Const0 -> F
  | Circuit.Const1 -> T

(* Evaluate the combinational logic under all-X inputs and the given latch
   valuation; returns one value per net.  Requires a well-formed circuit
   (acyclic, latches closed): run the structural checks first. *)
let eval_comb c ~latch =
  let values = Array.make (Circuit.num_nets c) X in
  List.iter (fun l -> values.(l) <- latch l) (Circuit.latches c);
  List.iter
    (fun net ->
      match Circuit.node c net with
      | Circuit.Gate (fn, fanins) -> values.(net) <- gate_eval fn values fanins
      | Circuit.Input | Circuit.Latch _ -> ())
    (Circuit.topo_order c);
  values

(* Latches provably stuck at a constant.  Two phases:
   1. walk the ternary state sequence from the initial state (all inputs
      X) for at most [max_steps] steps, taking the meet over every visited
      state: a latch definite and unchanging across the walk is a
      candidate fact;
   2. prune the candidates to an inductively closed subset: from the state
      "facts at their constants, everything else X", one ternary step must
      reproduce every fact.  Pruning repeats until stable.
   Phase 2 makes the result sound even when the walk is cut off before the
   state sequence revisits a state: the surviving facts hold initially
   (phase 1) and are preserved by every transition (phase 2). *)
let stuck_latches ?(max_steps = 64) c =
  let latches = Circuit.latches c in
  if latches = [] then []
  else begin
    let step lookup =
      let values = eval_comb c ~latch:lookup in
      List.map (fun l -> (l, values.(Circuit.latch_data c l))) latches
    in
    let step_assoc state = step (fun l -> List.assoc l state) in
    let init = List.map (fun l -> (l, of_bool (Circuit.latch_init c l))) latches in
    let key state = String.concat "" (List.map (fun (_, v) -> to_string v) state) in
    let seen = Hashtbl.create 64 in
    let meet = ref init in
    let state = ref init in
    (try
       for _ = 1 to max_steps do
         let k = key !state in
         if Hashtbl.mem seen k then raise Exit;
         Hashtbl.add seen k ();
         state := step_assoc !state;
         meet :=
           List.map2
             (fun (l, m) (_, v) -> (l, if m = v then m else X))
             !meet !state
       done
     with Exit -> ());
    let rec prune facts =
      let next =
        step (fun l ->
            match List.assoc_opt l facts with Some b -> of_bool b | None -> X)
      in
      (* a latch's fact survives only if one step from the facts alone
         reproduces it; non-fact latches were already X in the source
         state, so [next] is exactly the inductive-step valuation *)
      let kept =
        List.filter (fun (l, b) -> List.assoc l next = of_bool b) facts
      in
      if List.length kept = List.length facts then facts else prune kept
    in
    prune
      (List.filter_map
         (fun (l, v) -> match v with F -> Some (l, false) | T -> Some (l, true) | X -> None)
         !meet)
  end
