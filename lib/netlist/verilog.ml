(* Structural Verilog I/O.

   Writer: one module with wire declarations, continuous assignments for
   the gates, and per-register always-blocks; [to_string] wraps a plain
   circuit with a generated clock/reset (reset loads the initial values,
   the historical format), [design_to_string] keeps a clocked design's
   enables, resets and gated clocks as [if]-nests and sensitivity lists.
   All emitted labels go through one uniquifying table per call, so
   sanitization collisions ([a.b] vs [a_b]), user signals shadowing the
   generated [clock]/[reset] ports, names colliding with the [n<net>]
   fallback of unnamed nets, and Verilog keywords are all suffixed apart.

   Reader: the structural subset the writer emits — input/output/wire/reg
   declarations, assigns over the writer's operator set plus [?:],
   [initial] one-bit constants, and [always @(posedge clk)] /
   [always @(posedge clk or posedge rst)] blocks of non-blocking
   assignments under [if (rst)] / [if (en)] nests.  The result is a
   {!Clocking.t}; writer output round-trips textually.  [~lenient]
   materializes semantic defects (undefined signals become undriven nets,
   registers without an always-block stay unclosed) so the lint rules can
   report them, mirroring {!Blif.parse_string}; syntactic damage
   (unclosed module, non-subset constructs) raises {!Parse_error} in both
   modes. *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- identifiers --------------------------------------------------------- *)

let keywords =
  [
    "module"; "endmodule"; "input"; "output"; "inout"; "wire"; "reg";
    "assign"; "always"; "initial"; "posedge"; "negedge"; "or"; "and";
    "nand"; "nor"; "xor"; "xnor"; "not"; "buf"; "if"; "else"; "begin";
    "end"; "case"; "endcase"; "parameter"; "localparam";
  ]

let sanitize name =
  let s =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      name
  in
  if s = "" then "n"
  else match s.[0] with '0' .. '9' -> "n_" ^ s | _ -> s

(* One label table per emitted module: [claim] returns a fresh label,
   appending [_1], [_2], … until it collides with nothing claimed before
   (keywords are pre-claimed). *)
let label_table () =
  let used = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace used k ()) keywords;
  let claim base =
    let base = sanitize base in
    let rec go cand i =
      if Hashtbl.mem used cand then go (Printf.sprintf "%s_%d" base i) (i + 1)
      else begin
        Hashtbl.replace used cand ();
        cand
      end
    in
    go base 1
  in
  claim

(* --- writer -------------------------------------------------------------- *)

let operator = function
  | Circuit.And | Circuit.Nand -> " & "
  | Circuit.Or | Circuit.Nor -> " | "
  | Circuit.Xor | Circuit.Xnor -> " ^ "
  | Circuit.Not | Circuit.Buf | Circuit.Const0 | Circuit.Const1 -> ""

(* [virtual_reset] is the historical plain-circuit format: a generated
   reset input loads every register's initial value; the design must then
   carry only default specs.  Without it, specs drive the sensitivity
   lists and [if]-nests, and initial values unexplained by a reset branch
   are emitted as [initial] statements. *)
let emit d ~virtual_reset =
  let c = Clocking.circuit d in
  let inputs = Circuit.inputs c in
  let outputs = Circuit.outputs c in
  let latches = Circuit.latches c in
  if virtual_reset && not (Clocking.is_plain d) then
    invalid_arg "Verilog: virtual reset requires a plain design";
  let closed = List.filter (fun l -> Circuit.latch_data c l >= 0) latches in
  let uses_primary =
    List.exists (fun l -> (Clocking.spec d l).clock_gate = None) closed
  in
  (* user-visible names claim labels first, so they survive collisions
     with the generated clock/reset ports and with the [n<net>] fallback
     of unnamed nets; only genuinely colliding user names get suffixed *)
  let claim = label_table () in
  let net_labels = Array.make (Circuit.num_nets c) "" in
  for net = 0 to Circuit.num_nets c - 1 do
    match Circuit.name_of c net with
    | Some n -> net_labels.(net) <- claim n
    | None -> ()
  done;
  let out_labels =
    List.map
      (fun (name, net) ->
        if Circuit.name_of c net = Some name then net_labels.(net)
        else claim name)
      outputs
  in
  let clock = if uses_primary then claim (Clocking.clock_name d) else "" in
  let vreset = if virtual_reset && closed <> [] then claim "reset" else "" in
  for net = 0 to Circuit.num_nets c - 1 do
    if net_labels.(net) = "" then
      net_labels.(net) <- claim (Printf.sprintf "n%d" net)
  done;
  let lbl net = net_labels.(net) in
  (* a derived clock driven by a primary input needs a wire alias, or the
     reader could not tell it apart from the primary clock *)
  let gate_alias = Hashtbl.create 4 in
  List.iter
    (fun l ->
      match (Clocking.spec d l).clock_gate with
      | Some g
        when (match Circuit.node c g with
             | Circuit.Input -> true
             | Circuit.Gate _ | Circuit.Latch _ -> false)
             && not (Hashtbl.mem gate_alias g) ->
        Hashtbl.replace gate_alias g (claim (lbl g ^ "_gate"))
      | _ -> ())
    closed;
  let clock_label l =
    match (Clocking.spec d l).clock_gate with
    | None -> clock
    | Some g -> (
      match Hashtbl.find_opt gate_alias g with Some a -> a | None -> lbl g)
  in
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ports =
    (if uses_primary then [ clock ] else [])
    @ (if vreset <> "" then [ vreset ] else [])
    @ List.map lbl inputs @ out_labels
  in
  pr "// generated by seqver from %s\n" (Circuit.model c);
  let module_name =
    let m = sanitize (Circuit.model c) in
    if List.mem m keywords then "m_" ^ m else m
  in
  pr "module %s(%s);\n" module_name (String.concat ", " ports);
  if uses_primary then pr "  input %s;\n" clock;
  if vreset <> "" then pr "  input %s;\n" vreset;
  List.iter (fun net -> pr "  input %s;\n" (lbl net)) inputs;
  List.iter (fun l -> pr "  output %s;\n" l) out_labels;
  List.iter (fun latch -> pr "  reg %s;\n" (lbl latch)) latches;
  for net = 0 to Circuit.num_nets c - 1 do
    match Circuit.node c net with
    | Circuit.Gate _ -> pr "  wire %s;\n" (lbl net)
    | Circuit.Input | Circuit.Latch _ -> ()
  done;
  Hashtbl.iter (fun _ alias -> pr "  wire %s;\n" alias) gate_alias;
  (* initial values not implied by a reset branch *)
  if not virtual_reset then
    List.iter
      (fun l ->
        let implied =
          match (Clocking.spec d l).reset with
          | Some (_, _, rval) -> rval
          | None -> false
        in
        if Circuit.latch_init c l <> implied then
          pr "  initial %s = 1'b%d;\n" (lbl l)
            (if Circuit.latch_init c l then 1 else 0))
      latches;
  for net = 0 to Circuit.num_nets c - 1 do
    match Circuit.node c net with
    | Circuit.Gate (fn, fanins) -> (
      let ins = Array.to_list (Array.map lbl fanins) in
      let target = lbl net in
      match fn with
      | Circuit.Const0 -> pr "  assign %s = 1'b0;\n" target
      | Circuit.Const1 -> pr "  assign %s = 1'b1;\n" target
      | Circuit.Not -> pr "  assign %s = ~%s;\n" target (List.nth ins 0)
      | Circuit.Buf -> pr "  assign %s = %s;\n" target (List.nth ins 0)
      | Circuit.And | Circuit.Or | Circuit.Xor ->
        pr "  assign %s = %s;\n" target (String.concat (operator fn) ins)
      | Circuit.Nand | Circuit.Nor | Circuit.Xnor -> (
        (* a one-input negated gate is just an inverter; emit the form
           the reader canonicalizes to, keeping round trips textual *)
        match ins with
        | [ x ] -> pr "  assign %s = ~%s;\n" target x
        | _ -> pr "  assign %s = ~(%s);\n" target (String.concat (operator fn) ins)))
    | Circuit.Input | Circuit.Latch _ -> ()
  done;
  Hashtbl.iter (fun g alias -> pr "  assign %s = %s;\n" alias (lbl g)) gate_alias;
  List.iter2
    (fun (_, net) out -> if out <> lbl net then pr "  assign %s = %s;\n" out (lbl net))
    outputs out_labels;
  (* one always block per closed register *)
  List.iter
    (fun l ->
      let q = lbl l in
      let d_lbl = lbl (Circuit.latch_data c l) in
      let s = Clocking.spec d l in
      let reset =
        if virtual_reset then Some (Clocking.Sync, vreset, Circuit.latch_init c l)
        else
          Option.map (fun (kind, net, rval) -> (kind, lbl net, rval)) s.reset
      in
      let sens =
        match reset with
        | Some (Clocking.Async, rst, _) ->
          Printf.sprintf "posedge %s or posedge %s" (clock_label l) rst
        | Some (Clocking.Sync, _, _) | None ->
          Printf.sprintf "posedge %s" (clock_label l)
      in
      pr "  always @(%s) begin\n" sens;
      (match (reset, s.enable) with
      | None, None -> pr "    %s <= %s;\n" q d_lbl
      | None, Some en -> pr "    if (%s) %s <= %s;\n" (lbl en) q d_lbl
      | Some (_, rst, rval), None ->
        pr "    if (%s) %s <= 1'b%d;\n" rst q (if rval then 1 else 0);
        pr "    else %s <= %s;\n" q d_lbl
      | Some (_, rst, rval), Some en ->
        pr "    if (%s) %s <= 1'b%d;\n" rst q (if rval then 1 else 0);
        pr "    else if (%s) %s <= %s;\n" (lbl en) q d_lbl);
      pr "  end\n")
    closed;
  pr "endmodule\n";
  Buffer.contents buf

let design_to_string d = emit d ~virtual_reset:false
let to_string c = emit (Clocking.of_circuit c) ~virtual_reset:true

let to_file path c =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string c))

(* --- tokenizer ----------------------------------------------------------- *)

type tok =
  | Id of string
  | Const of bool
  | Sym of char  (* ( ) , ; = @ ~ & | ^ ? : *)
  | NonBlocking  (* <= *)
  | Eof

let tok_to_string = function
  | Id s -> s
  | Const b -> if b then "1'b1" else "1'b0"
  | Sym c -> String.make 1 c
  | NonBlocking -> "<="
  | Eof -> "<end of input>"

type lexer = {
  text : string;
  mutable pos : int;
  mutable line : int;
  mutable tok : tok;  (* current lookahead *)
}

let is_id_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true
  | _ -> false

let rec lex_raw lx =
  let n = String.length lx.text in
  if lx.pos >= n then Eof
  else
    let c = lx.text.[lx.pos] in
    match c with
    | ' ' | '\t' | '\r' ->
      lx.pos <- lx.pos + 1;
      lex_raw lx
    | '\n' ->
      lx.pos <- lx.pos + 1;
      lx.line <- lx.line + 1;
      lex_raw lx
    | '/' when lx.pos + 1 < n && lx.text.[lx.pos + 1] = '/' ->
      (match String.index_from_opt lx.text lx.pos '\n' with
      | Some i -> lx.pos <- i
      | None -> lx.pos <- n);
      lex_raw lx
    | '/' when lx.pos + 1 < n && lx.text.[lx.pos + 1] = '*' ->
      let rec skip i =
        if i + 1 >= n then parse_error "line %d: unterminated comment" lx.line
        else if lx.text.[i] = '\n' then (
          lx.line <- lx.line + 1;
          skip (i + 1))
        else if lx.text.[i] = '*' && lx.text.[i + 1] = '/' then i + 2
        else skip (i + 1)
      in
      lx.pos <- skip (lx.pos + 2);
      lex_raw lx
    | '<' when lx.pos + 1 < n && lx.text.[lx.pos + 1] = '=' ->
      lx.pos <- lx.pos + 2;
      NonBlocking
    | '(' | ')' | ',' | ';' | '=' | '@' | '~' | '&' | '|' | '^' | '?' | ':' ->
      lx.pos <- lx.pos + 1;
      Sym c
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
      let start = lx.pos in
      while lx.pos < n && is_id_char lx.text.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      Id (String.sub lx.text start (lx.pos - start))
    | '0' .. '9' ->
      (* only one-bit binary constants are in the subset *)
      let start = lx.pos in
      while
        lx.pos < n
        && (is_id_char lx.text.[lx.pos] || lx.text.[lx.pos] = '\'')
      do
        lx.pos <- lx.pos + 1
      done;
      (match String.sub lx.text start (lx.pos - start) with
      | "1'b0" -> Const false
      | "1'b1" -> Const true
      | s -> parse_error "line %d: unsupported constant %S" lx.line s)
    | c -> parse_error "line %d: unexpected character %C" lx.line c

let advance lx = lx.tok <- lex_raw lx

let make_lexer text =
  let lx = { text; pos = 0; line = 1; tok = Eof } in
  advance lx;
  lx

let expect lx tok what =
  if lx.tok <> tok then
    parse_error "line %d: expected %s in %s, got %S" lx.line
      (tok_to_string tok) what (tok_to_string lx.tok);
  advance lx

let expect_id lx what =
  match lx.tok with
  | Id s when not (List.mem s keywords) ->
    advance lx;
    s
  | t -> parse_error "line %d: expected identifier in %s, got %S" lx.line what
           (tok_to_string t)

(* --- raw syntax ---------------------------------------------------------- *)

type expr =
  | Eid of string
  | Econst of bool
  | Enot of expr
  | Ebin of Circuit.gate_fn * expr list  (* And / Or / Xor chains *)
  | Emux of expr * expr * expr  (* cond ? t : e *)

type stmt =
  | Sassign of string * expr  (* q <= e *)
  | Sif of expr * stmt list * stmt list

type item =
  | Dinput of string list
  | Doutput of string list
  | Dwire of string list
  | Dreg of string list
  | Dassign of string * expr * int  (* target, rhs, line *)
  | Dinitial of string * bool
  | Dalways of { posedges : string list; body : stmt list; line : int }

(* precedence (tightest first): ~, &, ^, |, ?: — the Verilog order *)
let rec parse_expr lx = parse_mux lx

and parse_mux lx =
  let cond = parse_or lx in
  match lx.tok with
  | Sym '?' ->
    advance lx;
    let t = parse_mux lx in
    expect lx (Sym ':') "conditional expression";
    let e = parse_mux lx in
    Emux (cond, t, e)
  | _ -> cond

and parse_or lx =
  let first = parse_xor lx in
  let rec more acc =
    match lx.tok with
    | Sym '|' ->
      advance lx;
      more (parse_xor lx :: acc)
    | _ -> List.rev acc
  in
  match more [ first ] with [ e ] -> e | es -> Ebin (Circuit.Or, es)

and parse_xor lx =
  let first = parse_and lx in
  let rec more acc =
    match lx.tok with
    | Sym '^' ->
      advance lx;
      more (parse_and lx :: acc)
    | _ -> List.rev acc
  in
  match more [ first ] with [ e ] -> e | es -> Ebin (Circuit.Xor, es)

and parse_and lx =
  let first = parse_unary lx in
  let rec more acc =
    match lx.tok with
    | Sym '&' ->
      advance lx;
      more (parse_unary lx :: acc)
    | _ -> List.rev acc
  in
  match more [ first ] with [ e ] -> e | es -> Ebin (Circuit.And, es)

and parse_unary lx =
  match lx.tok with
  | Sym '~' ->
    advance lx;
    Enot (parse_unary lx)
  | Sym '(' ->
    advance lx;
    let e = parse_expr lx in
    expect lx (Sym ')') "parenthesized expression";
    e
  | Const b ->
    advance lx;
    Econst b
  | Id s when not (List.mem s keywords) ->
    advance lx;
    Eid s
  | t ->
    parse_error "line %d: expected expression, got %S" lx.line (tok_to_string t)

let rec parse_stmt lx =
  match lx.tok with
  | Id "begin" ->
    advance lx;
    let rec body acc =
      match lx.tok with
      | Id "end" ->
        advance lx;
        List.rev acc
      | Eof -> parse_error "line %d: unterminated begin block" lx.line
      | _ -> body (List.rev_append (parse_stmt lx) acc)
    in
    body []
  | Id "if" ->
    advance lx;
    expect lx (Sym '(') "if condition";
    let cond = parse_expr lx in
    expect lx (Sym ')') "if condition";
    let then_ = parse_stmt lx in
    let else_ =
      match lx.tok with
      | Id "else" ->
        advance lx;
        parse_stmt lx
      | _ -> []
    in
    [ Sif (cond, then_, else_) ]
  | _ ->
    let target = expect_id lx "non-blocking assignment" in
    expect lx NonBlocking "non-blocking assignment";
    let e = parse_expr lx in
    expect lx (Sym ';') "non-blocking assignment";
    [ Sassign (target, e) ]

let parse_id_list lx what =
  let rec go acc =
    let id = expect_id lx what in
    match lx.tok with
    | Sym ',' ->
      advance lx;
      go (id :: acc)
    | _ ->
      expect lx (Sym ';') what;
      List.rev (id :: acc)
  in
  go []

let parse_items lx =
  let rec go acc =
    match lx.tok with
    | Id "endmodule" ->
      advance lx;
      List.rev acc
    | Eof -> parse_error "line %d: unclosed module (missing endmodule)" lx.line
    | Id "input" ->
      advance lx;
      go (Dinput (parse_id_list lx "input declaration") :: acc)
    | Id "output" ->
      advance lx;
      go (Doutput (parse_id_list lx "output declaration") :: acc)
    | Id "wire" ->
      advance lx;
      go (Dwire (parse_id_list lx "wire declaration") :: acc)
    | Id "reg" ->
      advance lx;
      go (Dreg (parse_id_list lx "reg declaration") :: acc)
    | Id "assign" ->
      let line = lx.line in
      advance lx;
      let target = expect_id lx "assign" in
      expect lx (Sym '=') "assign";
      let e = parse_expr lx in
      expect lx (Sym ';') "assign";
      go (Dassign (target, e, line) :: acc)
    | Id "initial" ->
      advance lx;
      let target = expect_id lx "initial" in
      expect lx (Sym '=') "initial";
      let v =
        match lx.tok with
        | Const b ->
          advance lx;
          b
        | t ->
          parse_error "line %d: initial value must be 1'b0/1'b1, got %S"
            lx.line (tok_to_string t)
      in
      expect lx (Sym ';') "initial";
      go (Dinitial (target, v) :: acc)
    | Id "always" ->
      let line = lx.line in
      advance lx;
      expect lx (Sym '@') "always block";
      expect lx (Sym '(') "sensitivity list";
      let rec posedges acc =
        (match lx.tok with
        | Id "posedge" -> advance lx
        | Id "negedge" ->
          parse_error "line %d: negedge sensitivity is outside the subset"
            lx.line
        | t ->
          parse_error
            "line %d: expected posedge in sensitivity list, got %S" lx.line
            (tok_to_string t));
        let id = expect_id lx "sensitivity list" in
        match lx.tok with
        | Id "or" ->
          advance lx;
          posedges (id :: acc)
        | _ ->
          expect lx (Sym ')') "sensitivity list";
          List.rev (id :: acc)
      in
      let posedges = posedges [] in
      let body = parse_stmt lx in
      go (Dalways { posedges; body; line } :: acc)
    | Id kw when List.mem kw keywords ->
      parse_error "line %d: construct %S is outside the structural subset"
        lx.line kw
    | t ->
      parse_error "line %d: unexpected %S in module body" lx.line
        (tok_to_string t)
  in
  go []

let parse_module lx =
  (match lx.tok with
  | Id "module" -> advance lx
  | t ->
    parse_error "line %d: expected module, got %S" lx.line (tok_to_string t));
  let name =
    match lx.tok with
    | Id s ->
      advance lx;
      s
    | t ->
      parse_error "line %d: expected module name, got %S" lx.line
        (tok_to_string t)
  in
  (* port list: names are redundant with the declarations, which drive
     elaboration order *)
  (match lx.tok with
  | Sym '(' ->
    advance lx;
    let rec ports () =
      match lx.tok with
      | Sym ')' -> advance lx
      | Id _ ->
        ignore (expect_id lx "port list");
        (match lx.tok with Sym ',' -> advance lx | _ -> ());
        ports ()
      | t ->
        parse_error "line %d: unexpected %S in port list" lx.line
          (tok_to_string t)
    in
    ports ();
    expect lx (Sym ';') "module header"
  | Sym ';' -> advance lx
  | t ->
    parse_error "line %d: expected port list, got %S" lx.line (tok_to_string t));
  let items = parse_items lx in
  (match lx.tok with
  | Eof -> ()
  | t ->
    parse_error "line %d: trailing %S after endmodule" lx.line (tok_to_string t));
  (name, items)

(* --- elaboration --------------------------------------------------------- *)

(* Flatten an always body into (target, path condition, rhs) records in
   textual order; the path condition is the conjunction of if-branches
   taken, innermost last. *)
let flatten_body body =
  let records = ref [] in
  let rec walk conds stmts =
    List.iter
      (fun stmt ->
        match stmt with
        | Sassign (q, e) -> records := (q, List.rev conds, e) :: !records
        | Sif (c, t, f) ->
          walk ((c, true) :: conds) t;
          walk ((c, false) :: conds) f)
      stmts
  in
  walk [] body;
  List.rev !records

(* Does one register's record list start with a reset branch?  With an
   asynchronous sensitivity item the leading [if] must test it; a
   synchronous reset is a leading [if (r) q <= constant] that the other
   paths are guarded against ([else …]) — a plain [if (en) q <= 1'b1]
   with no else stays an enable, not a reset. *)
let recognize_reset async_id mine =
  match (async_id, mine) with
  | Some r, (_, [ (Eid r', true) ], Econst v) :: _ when r' = r ->
    Some (Clocking.Async, r, v)
  | Some _, _ -> None
  | None, (_, [ (Eid r', true) ], Econst v) :: rest
    when List.exists
           (fun (_, conds, _) ->
             match conds with (Eid r'', false) :: _ -> r'' = r' | _ -> false)
           rest ->
    Some (Clocking.Sync, r', v)
  | None, _ -> None

let records_of q records = List.filter (fun (q', _, _) -> q' = q) records

let parse_string ?(lenient = false) text =
  let lx = make_lexer text in
  let model, items = parse_module lx in
  let design = Clocking.create model in
  let c = Clocking.circuit design in
  let mem tbl x = Hashtbl.mem tbl x in
  let inputs_d = Hashtbl.create 16
  and outputs_d = Hashtbl.create 16
  and wires_d = Hashtbl.create 16
  and regs_d = Hashtbl.create 16 in
  let declare tbl what name =
    if mem tbl name then
      if lenient then ()
      else parse_error "duplicate %s declaration of %s" what name
    else Hashtbl.replace tbl name ()
  in
  List.iter
    (function
      | Dinput l -> List.iter (declare inputs_d "input") l
      | Doutput l -> List.iter (declare outputs_d "output") l
      | Dwire l -> List.iter (declare wires_d "wire") l
      | Dreg l -> List.iter (declare regs_d "reg") l
      | Dassign _ | Dinitial _ | Dalways _ -> ())
    items;
  Hashtbl.iter
    (fun name () ->
      if mem wires_d name || mem regs_d name then
        parse_error "%s declared both input and wire/reg" name)
    inputs_d;
  Hashtbl.iter
    (fun name () ->
      if mem regs_d name then parse_error "%s declared both wire and reg" name)
    wires_d;
  (* classify the always blocks: with two posedge items the one tested by
     the leading [if] is the asynchronous reset, the other is the clock *)
  let always_info =
    List.filter_map
      (function
        | Dalways { posedges; body; line } ->
          let clock_id, async_id =
            match posedges with
            | [ clk ] -> (clk, None)
            | [ a; b ] -> (
              let top_cond =
                match body with Sif (Eid r, _, _) :: _ -> Some r | _ -> None
              in
              match top_cond with
              | Some r when r = a -> (b, Some r)
              | Some r when r = b -> (a, Some r)
              | _ ->
                parse_error
                  "line %d: two-edge sensitivity requires a leading if on \
                   one of the edges"
                  line)
            | _ ->
              parse_error "line %d: more than two posedge items" line
          in
          Some (clock_id, async_id, body, line)
        | _ -> None)
      items
  in
  let primary_clocks =
    List.sort_uniq compare
      (List.filter_map
         (fun (clk, _, _, _) -> if mem inputs_d clk then Some clk else None)
         always_info)
  in
  (match primary_clocks with
  | [] | [ _ ] -> ()
  | cs ->
    parse_error "multiple primary clocks are outside the subset: %s"
      (String.concat ", " cs));
  let clock_id =
    match primary_clocks with
    | [ clk ] ->
      Clocking.set_clock_name design clk;
      Some clk
    | _ -> None
  in
  (* registers: initial value must be known before the latch is created,
     so fold reset branches and [initial]s over the raw syntax first *)
  let init_tbl = Hashtbl.create 16 in
  List.iter
    (fun (_, async_id, body, _) ->
      let records = flatten_body body in
      let targets =
        List.sort_uniq compare (List.map (fun (q, _, _) -> q) records)
      in
      List.iter
        (fun q ->
          match recognize_reset async_id (records_of q records) with
          | Some (_, _, v) when not (Hashtbl.mem init_tbl q) ->
            Hashtbl.replace init_tbl q v
          | _ -> ())
        targets)
    always_info;
  List.iter
    (function
      | Dinitial (q, v) ->
        if not (mem regs_d q) then
          if lenient then ()
          else parse_error "initial value for non-reg %s" q
        else Hashtbl.replace init_tbl q v
      | _ -> ())
    items;
  (* net construction: inputs in declaration order (the clock is not a
     net), then registers in declaration order, then gates on demand in
     textual assign order *)
  let env = Hashtbl.create 64 in
  List.iter
    (function
      | Dinput l ->
        List.iter
          (fun name ->
            if Some name <> clock_id && not (Hashtbl.mem env name) then
              Hashtbl.replace env name (Circuit.add_input ~name c))
          l
      | _ -> ())
    items;
  List.iter
    (function
      | Dreg l ->
        List.iter
          (fun name ->
            if not (Hashtbl.mem env name) then
              let init =
                match Hashtbl.find_opt init_tbl name with
                | Some v -> v
                | None -> false
              in
              Hashtbl.replace env name (Circuit.add_latch ~name c ~init))
          l
      | _ -> ())
    items;
  let assign_tbl = Hashtbl.create 64 in
  let out_alias = Hashtbl.create 16 in
  List.iter
    (function
      | Dassign (target, e, line) ->
        if mem regs_d target then
          parse_error "line %d: continuous assignment to reg %s" line target
        else if mem inputs_d target then
          parse_error "line %d: continuous assignment to input %s" line target
        else if
          mem wires_d target
          || (not (mem outputs_d target))
          (* undeclared target: treat as an implicit wire *)
        then begin
          if (not (mem wires_d target)) && not lenient then
            parse_error "line %d: assignment to undeclared signal %s" line
              target;
          if Hashtbl.mem assign_tbl target then (
            if not lenient then
              parse_error "line %d: multiple drivers for %s" line target)
          else Hashtbl.replace assign_tbl target (e, line)
        end
        else if Hashtbl.mem out_alias target then (
          if not lenient then
            parse_error "line %d: multiple drivers for output %s" line target)
        else Hashtbl.replace out_alias target e
      | _ -> ())
    items;
  (* memoized on-demand elaboration; [busy] breaks combinational cycles
     through an undriven net in lenient mode, mirroring BLIF recovery *)
  let busy = Hashtbl.create 16 in
  let rec resolve name =
    match Hashtbl.find_opt env name with
    | Some net -> net
    | None ->
      if Hashtbl.mem busy name then
        if lenient then begin
          let net = Circuit.add_undriven ~name c in
          Hashtbl.replace env name net;
          net
        end
        else parse_error "combinational cycle through %s" name
      else begin
        Hashtbl.replace busy name ();
        let net =
          match Hashtbl.find_opt assign_tbl name with
          | Some (e, _) -> elab_named name e
          | None -> (
            match Hashtbl.find_opt out_alias name with
            | Some (Eid src) -> resolve src
            | Some e -> elab e
            | None ->
              if lenient then Circuit.add_undriven ~name c
              else parse_error "undefined signal %s" name)
        in
        Hashtbl.remove busy name;
        (* a cycle in lenient mode may have bound [name] already *)
        (match Hashtbl.find_opt env name with
        | Some net -> net
        | None ->
          Hashtbl.replace env name net;
          net)
      end
  and elab e =
    match e with
    | Eid name -> resolve name
    | Econst b -> Circuit.add_gate c (if b then Circuit.Const1 else Circuit.Const0) []
    | Enot (Ebin (Circuit.And, es)) -> Circuit.add_gate c Circuit.Nand (List.map elab es)
    | Enot (Ebin (Circuit.Or, es)) -> Circuit.add_gate c Circuit.Nor (List.map elab es)
    | Enot (Ebin (Circuit.Xor, es)) -> Circuit.add_gate c Circuit.Xnor (List.map elab es)
    | Enot e -> Circuit.add_gate c Circuit.Not [ elab e ]
    | Ebin (fn, es) -> Circuit.add_gate c fn (List.map elab es)
    | Emux (s, t, f) ->
      let s = elab s in
      Circuit.bmux c ~sel:s ~t1:(elab t) ~t0:(elab f)
  (* like [elab] but names the top gate after the wire it drives, so the
     writer's one-assign-one-gate shape survives a round trip *)
  and elab_named name e =
    match e with
    | Eid src -> Circuit.add_gate ~name c Circuit.Buf [ resolve src ]
    | Econst b ->
      Circuit.add_gate ~name c (if b then Circuit.Const1 else Circuit.Const0) []
    | Enot (Ebin (Circuit.And, es)) ->
      Circuit.add_gate ~name c Circuit.Nand (List.map elab es)
    | Enot (Ebin (Circuit.Or, es)) ->
      Circuit.add_gate ~name c Circuit.Nor (List.map elab es)
    | Enot (Ebin (Circuit.Xor, es)) ->
      Circuit.add_gate ~name c Circuit.Xnor (List.map elab es)
    | Enot e -> Circuit.add_gate ~name c Circuit.Not [ elab e ]
    | Ebin (fn, es) -> Circuit.add_gate ~name c fn (List.map elab es)
    | Emux _ ->
      let net = elab e in
      Circuit.set_name c net name;
      net
  in
  (* elaborate the assigns in textual order so gate nets get the same
     relative numbering the writer emitted them with *)
  List.iter
    (function
      | Dassign (target, _, _)
        when Hashtbl.mem assign_tbl target && not (Hashtbl.mem env target) ->
        ignore (resolve target)
      | _ -> ())
    items;
  (* always blocks: set register specs and close the feedback *)
  let assigned = Hashtbl.create 16 in
  List.iter
    (fun (clock_lbl, async_id, body, line) ->
      let clock_gate =
        if Some clock_lbl = clock_id then None
        else if mem inputs_d clock_lbl then None (* sole primary clock *)
        else Some (resolve clock_lbl)
      in
      let records = flatten_body body in
      let targets =
        List.sort_uniq compare (List.map (fun (q, _, _) -> q) records)
      in
      List.iter
        (fun q ->
          if not (mem regs_d q) then
            parse_error "line %d: non-blocking assignment to non-reg %s" line q;
          let qnet = resolve q in
          if Hashtbl.mem assigned q then (
            if not lenient then
              parse_error "line %d: register %s driven by several always \
                           blocks" line q)
          else begin
            Hashtbl.replace assigned q ();
            let mine = records_of q records in
            (* recognized register shapes; anything else is synthesized
               as a priority-mux chain holding the register otherwise *)
            let reset_raw = recognize_reset async_id mine in
            (match (async_id, reset_raw) with
            | Some _, None ->
              parse_error
                "line %d: async-reset block must start with if (<reset>) \
                 %s <= constant"
                line q
            | _ -> ());
            let reset =
              Option.map (fun (k, r, v) -> (k, resolve r, v)) reset_raw
            in
            (* strip the satisfied reset prefix from remaining paths *)
            let rest =
              match reset_raw with
              | None -> mine
              | Some _ ->
                List.map
                  (fun (q', conds, e) ->
                    match conds with
                    | (Eid _, false) :: tl -> (q', tl, e)
                    | _ ->
                      parse_error
                        "line %d: register %s mixes reset and non-reset \
                         paths" line q)
                  (List.tl mine)
            in
            let enable, data =
              match rest with
              | [] -> (None, qnet)  (* reset-only: hold otherwise *)
              | [ (_, [], e) ] -> (None, elab e)
              | [ (_, [ (Eid en, true) ], e) ] -> (Some (resolve en), elab e)
              | [ (_, [ (cond, true) ], e) ] -> (Some (elab cond), elab e)
              | _ ->
                (* general fallback: priority-mux chain, later textual
                   assignments winning, holding the register otherwise *)
                let chain =
                  List.fold_left
                    (fun acc (_, conds, e) ->
                      let cond =
                        List.fold_left
                          (fun acc (ce, pos) ->
                            let cnet = elab ce in
                            let cnet =
                              if pos then cnet else Circuit.bnot c cnet
                            in
                            match acc with
                            | None -> Some cnet
                            | Some a -> Some (Circuit.band c a cnet))
                          None conds
                      in
                      match cond with
                      | None -> elab e
                      | Some sel -> Circuit.bmux c ~sel ~t1:(elab e) ~t0:acc)
                    qnet rest
                in
                (None, chain)
            in
            Circuit.set_latch_data c qnet ~data;
            Clocking.set_spec design qnet { clock_gate; enable; reset }
          end)
        targets)
    always_info;
  (* registers never driven by an always block stay unclosed in lenient
     mode (the unclosed-latch lint rule reports them) *)
  if not lenient then
    Hashtbl.iter
      (fun name () ->
        if not (Hashtbl.mem assigned name) then
          parse_error "register %s is never assigned" name)
      regs_d;
  (* outputs, in declaration order *)
  List.iter
    (function
      | Doutput l ->
        List.iter (fun name -> Circuit.add_output c name (resolve name)) l
      | _ -> ())
    items;
  design

let parse_file ?lenient path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  try parse_string ?lenient text
  with Parse_error msg -> raise (Parse_error (Printf.sprintf "%s: %s" path msg))
