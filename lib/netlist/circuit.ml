(* Gate-level sequential circuits: the external representation in which
   benchmarks are written and exchanged (BLIF).  Nets are dense integer
   ids; each net is driven by exactly one node.  Latches are D flip-flops
   with an explicit initial value, matching the paper's FSM model with a
   specified initial state. *)

type gate_fn =
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Not
  | Buf
  | Const0
  | Const1

type node =
  | Input
  | Gate of gate_fn * int array
  | Latch of { mutable data : int; init : bool }

type t = {
  model : string;
  mutable nodes : node array;
  mutable n_nodes : int;
  mutable rev_inputs : int list;
  mutable rev_latches : int list;
  mutable rev_outputs : (string * int) list;
  net_name : (int, string) Hashtbl.t;
  name_net : (string, int) Hashtbl.t;
}

let create model =
  {
    model;
    nodes = Array.make 64 Input;
    n_nodes = 0;
    rev_inputs = [];
    rev_latches = [];
    rev_outputs = [];
    net_name = Hashtbl.create 64;
    name_net = Hashtbl.create 64;
  }

let model t = t.model
let num_nets t = t.n_nodes
let node t net = t.nodes.(net)

let set_name t net name =
  Hashtbl.replace t.net_name net name;
  Hashtbl.replace t.name_net name net

let name_of t net = Hashtbl.find_opt t.net_name net
let net_of_name t name = Hashtbl.find_opt t.name_net name

let names t =
  List.sort compare (Hashtbl.fold (fun net name acc -> (net, name) :: acc) t.net_name [])

let fresh t node =
  if t.n_nodes = Array.length t.nodes then begin
    let bigger = Array.make (2 * t.n_nodes) Input in
    Array.blit t.nodes 0 bigger 0 t.n_nodes;
    t.nodes <- bigger
  end;
  t.nodes.(t.n_nodes) <- node;
  t.n_nodes <- t.n_nodes + 1;
  t.n_nodes - 1

let add_input ?name t =
  let net = fresh t Input in
  (match name with Some n -> set_name t net n | None -> ());
  t.rev_inputs <- net :: t.rev_inputs;
  net

(* A net that is referenced but has no driver: the node looks like an
   input but is deliberately NOT registered as a primary input, which is
   exactly what the undriven-net lint rule detects.  Used by the lenient
   parser modes to keep elaborating malformed files so that the checker
   can report every defect at once. *)
let add_undriven ?name t =
  let net = fresh t Input in
  (match name with Some n -> set_name t net n | None -> ());
  net

(* Replace the driver of a net in place, bypassing the construction-time
   arity and range checks.  For parser recovery and for seeding defective
   circuits in lint tests; the result may be ill-formed (that is the
   point) and must be re-checked before simulation or conversion. *)
let unsafe_set_node t net node =
  if net < 0 || net >= t.n_nodes then invalid_arg "Circuit.unsafe_set_node: bad net";
  t.nodes.(net) <- node

let add_gate ?name t fn fanins =
  (match fn with
  | Not | Buf ->
    if List.length fanins <> 1 then invalid_arg "Circuit.add_gate: unary gate arity"
  | Const0 | Const1 ->
    if fanins <> [] then invalid_arg "Circuit.add_gate: constant gate arity"
  | And | Or | Nand | Nor | Xor | Xnor ->
    if fanins = [] then invalid_arg "Circuit.add_gate: empty fanin");
  List.iter
    (fun f -> if f < 0 || f >= t.n_nodes then invalid_arg "Circuit.add_gate: bad fanin")
    fanins;
  let net = fresh t (Gate (fn, Array.of_list fanins)) in
  (match name with Some n -> set_name t net n | None -> ());
  net

let add_latch ?name t ~init =
  let net = fresh t (Latch { data = -1; init }) in
  (match name with Some n -> set_name t net n | None -> ());
  t.rev_latches <- net :: t.rev_latches;
  net

let set_latch_data t latch ~data =
  if data < 0 || data >= t.n_nodes then invalid_arg "Circuit.set_latch_data: bad net";
  match t.nodes.(latch) with
  | Latch l -> l.data <- data
  | Input | Gate _ -> invalid_arg "Circuit.set_latch_data: not a latch"

let add_output t name net =
  if net < 0 || net >= t.n_nodes then invalid_arg "Circuit.add_output: bad net";
  t.rev_outputs <- (name, net) :: t.rev_outputs

let inputs t = List.rev t.rev_inputs
let latches t = List.rev t.rev_latches
let outputs t = List.rev t.rev_outputs

let latch_data t latch =
  match t.nodes.(latch) with
  | Latch l -> l.data
  | Input | Gate _ -> invalid_arg "Circuit.latch_data: not a latch"

let latch_init t latch =
  match t.nodes.(latch) with
  | Latch l -> l.init
  | Input | Gate _ -> invalid_arg "Circuit.latch_init: not a latch"

(* Convenience constructors *)
let band t a b = add_gate t And [ a; b ]
let bor t a b = add_gate t Or [ a; b ]
let bxor t a b = add_gate t Xor [ a; b ]
let bnot t a = add_gate t Not [ a ]
let bmux t ~sel ~t1 ~t0 =
  (* sel ? t1 : t0 *)
  bor t (band t sel t1) (band t (bnot t sel) t0)

let const0 t = add_gate t Const0 []
let const1 t = add_gate t Const1 []

(* Topological order of the combinational part: inputs, constants and latch
   outputs are sources; gates appear after all their fanins.
   @raise Failure on a combinational cycle. *)
let topo_order t =
  let state = Array.make t.n_nodes 0 in
  (* 0 = unvisited, 1 = on stack, 2 = done *)
  let order = ref [] in
  let rec visit net =
    match state.(net) with
    | 2 -> ()
    | 1 -> failwith "Circuit.topo_order: combinational cycle"
    | _ ->
      state.(net) <- 1;
      (match t.nodes.(net) with
      | Input | Latch _ -> ()
      | Gate (_, fanins) -> Array.iter visit fanins);
      state.(net) <- 2;
      order := net :: !order
  in
  for net = 0 to t.n_nodes - 1 do
    visit net
  done;
  List.rev !order

let pp_stats ppf t =
  let n_gates =
    let count = ref 0 in
    for net = 0 to t.n_nodes - 1 do
      match t.nodes.(net) with Gate _ -> incr count | Input | Latch _ -> ()
    done;
    !count
  in
  Format.fprintf ppf "%s: %d inputs, %d outputs, %d latches, %d gates" t.model
    (List.length (inputs t))
    (List.length (outputs t))
    (List.length (latches t))
    n_gates
