(* Reader/writer for the BLIF subset used by the ISCAS'89-era tools:
   .model/.inputs/.outputs/.names (SOP covers)/.latch/.end.  This is the
   exchange format in which circuits enter and leave the tool. *)

type cover = { row_inputs : string list; rows : (string * char) list }
(* rows: input plane (chars '0'/'1'/'-') and the output bit *)

type raw = {
  raw_model : string;
  raw_inputs : string list;
  raw_outputs : string list;
  raw_latches : (string * string * bool) list; (* data, out, init *)
  raw_names : (string * cover) list; (* target, cover *)
}

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- lexing ------------------------------------------------------------- *)

let logical_lines text =
  (* join continuation lines ending in backslash, drop comments *)
  let lines = String.split_on_char '\n' text in
  let rec join acc pending = function
    | [] -> List.rev (if pending = "" then acc else pending :: acc)
    | line :: rest ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.trim line in
      if String.length line > 0 && line.[String.length line - 1] = '\\' then
        join acc (pending ^ String.sub line 0 (String.length line - 1) ^ " ") rest
      else if pending <> "" then join ((pending ^ line) :: acc) "" rest
      else if line = "" then join acc "" rest
      else join (line :: acc) "" rest
  in
  join [] "" lines

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

(* --- raw parsing -------------------------------------------------------- *)

let parse_raw text =
  let model = ref "" in
  let inputs = ref [] in
  let outputs = ref [] in
  let latches = ref [] in
  let names = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some (target, row_inputs, rows) ->
      names := (target, { row_inputs; rows = List.rev rows }) :: !names;
      current := None
    | None -> ()
  in
  let handle line =
    match tokens line with
    | [] -> ()
    | ".model" :: rest ->
      flush ();
      model := (match rest with m :: _ -> m | [] -> "top")
    | ".inputs" :: rest ->
      flush ();
      inputs := !inputs @ rest
    | ".outputs" :: rest ->
      flush ();
      outputs := !outputs @ rest
    | ".latch" :: rest ->
      flush ();
      (match rest with
      | [ data; out ] -> latches := (data, out, false) :: !latches
      | [ data; out; init ] -> latches := (data, out, init = "1") :: !latches
      | [ data; out; _ty; _ctrl; init ] -> latches := (data, out, init = "1") :: !latches
      | _ -> parse_error "malformed .latch: %s" line)
    | ".names" :: rest ->
      flush ();
      (match List.rev rest with
      | target :: rev_ins -> current := Some (target, List.rev rev_ins, [])
      | [] -> parse_error "empty .names")
    | ".end" :: _ -> flush ()
    | (".exdc" | ".clock" | ".area" | ".delay") :: _ -> flush ()
    | tok :: _ when String.length tok > 0 && tok.[0] = '.' ->
      parse_error "unsupported construct: %s" line
    | toks -> (
      (* a cover row for the current .names *)
      match !current with
      | None -> parse_error "cover row outside .names: %s" line
      | Some (target, row_inputs, rows) ->
        let plane, out_bit =
          match (toks, row_inputs) with
          | [ out ], [] -> ("", out)
          | [ plane; out ], _ -> (plane, out)
          | _ -> parse_error "malformed cover row: %s" line
        in
        if String.length plane <> List.length row_inputs then
          parse_error "cover row width mismatch: %s" line;
        if out_bit <> "0" && out_bit <> "1" then
          parse_error "cover output must be 0/1: %s" line;
        current := Some (target, row_inputs, (plane, out_bit.[0]) :: rows))
  in
  List.iter handle (logical_lines text);
  flush ();
  {
    raw_model = (if !model = "" then "top" else !model);
    raw_inputs = !inputs;
    raw_outputs = !outputs;
    raw_latches = List.rev !latches;
    raw_names = List.rev !names;
  }

(* --- elaboration to Circuit.t ------------------------------------------- *)

let elaborate ?(lenient = false) raw =
  let c = Circuit.create raw.raw_model in
  let env : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace env n (Circuit.add_input ~name:n c)) raw.raw_inputs;
  let latch_nets =
    List.map
      (fun (_, out, init) ->
        let net = Circuit.add_latch ~name:out c ~init in
        Hashtbl.replace env out net;
        net)
      raw.raw_latches
  in
  let defs : (string, cover) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (target, cover) -> Hashtbl.replace defs target cover) raw.raw_names;
  (* duplicate definitions: strict mode rejects them (they used to be
     dropped silently); lenient mode materializes every driver below so
     the multiply-driven lint rule can report them *)
  let definition_count = Hashtbl.create 64 in
  let count name =
    Hashtbl.replace definition_count name
      (1 + Option.value ~default:0 (Hashtbl.find_opt definition_count name))
  in
  List.iter count raw.raw_inputs;
  List.iter (fun (_, out, _) -> count out) raw.raw_latches;
  List.iter (fun (target, _) -> count target) raw.raw_names;
  let duplicates =
    List.sort compare
      (Hashtbl.fold
         (fun name n acc -> if n > 1 then name :: acc else acc)
         definition_count [])
  in
  if duplicates <> [] && not lenient then
    parse_error "multiple drivers for signal(s): %s" (String.concat ", " duplicates);
  (* build gates on demand, in dependency order *)
  let building : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let cycle_patches = ref [] in
  let built : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec net_of name =
    match Hashtbl.find_opt env name with
    | Some net -> net
    | None -> (
      if Hashtbl.mem building name then begin
        if not lenient then parse_error "combinational cycle at %s" name;
        (* break the cycle with a placeholder, patched to a buffer of the
           real net afterwards so the cycle survives for the lint rules *)
        let placeholder = Circuit.add_undriven c in
        cycle_patches := (placeholder, name) :: !cycle_patches;
        placeholder
      end
      else begin
      Hashtbl.replace building name ();
      match Hashtbl.find_opt defs name with
      | None ->
        if not lenient then parse_error "undefined signal: %s" name;
        let net = Circuit.add_undriven ~name c in
        Hashtbl.replace env name net;
        net
      | Some cover ->
        let fanins = List.map net_of cover.row_inputs in
        let net = build_cover c fanins cover in
        Circuit.set_name c net name;
        Hashtbl.replace env name net;
        Hashtbl.replace built name ();
        Hashtbl.remove building name;
        net
      end)
  and build_cover c fanins cover =
    match cover.rows with
    | [] -> Circuit.const0 c
    | rows ->
      let out_polarity =
        (* BLIF requires all rows to share the output bit *)
        match rows with (_, b) :: _ -> b | [] -> '1'
      in
      if List.exists (fun (_, b) -> b <> out_polarity) rows then
        parse_error "mixed-polarity cover";
      let term (plane, _) =
        if plane = "" then Circuit.const1 c
        else begin
          let lits = ref [] in
          String.iteri
            (fun i ch ->
              let fanin = List.nth fanins i in
              match ch with
              | '1' -> lits := fanin :: !lits
              | '0' -> lits := Circuit.bnot c fanin :: !lits
              | '-' -> ()
              | _ -> parse_error "bad cover char %c" ch)
            plane;
          match !lits with
          | [] -> Circuit.const1 c
          | [ l ] -> l
          | ls -> Circuit.add_gate c Circuit.And ls
        end
      in
      let sum =
        match List.map term rows with
        | [ t ] -> t
        | ts -> Circuit.add_gate c Circuit.Or ts
      in
      if out_polarity = '1' then sum else Circuit.bnot c sum
  in
  List.iter (fun (name, _) -> ignore (net_of name)) raw.raw_names;
  (* lenient: materialize the shadowed drivers of duplicated names too, so
     every driver exists as a net sharing the name (what the
     multiply-driven lint rule reports).  [net_of] built at most one cover
     per name — the one [defs] retained, and only when the name was not
     already an input or latch. *)
  if lenient then
    List.iter
      (fun (target, cover) ->
        let is_the_built_one =
          Hashtbl.mem built target
          && (match Hashtbl.find_opt defs target with
             | Some kept -> kept == cover
             | None -> false)
        in
        if not is_the_built_one then begin
          let fanins = List.map net_of cover.row_inputs in
          let net = build_cover c fanins cover in
          Circuit.set_name c net target
        end)
      raw.raw_names;
  List.iter2
    (fun (data, _, _) lnet ->
      (* lenient: a latch whose data signal has no definition stays
         unclosed; the unclosed-latch rule reports it *)
      if (not lenient) || Hashtbl.mem env data || Hashtbl.mem defs data then
        Circuit.set_latch_data c lnet ~data:(net_of data))
    raw.raw_latches latch_nets;
  List.iter (fun name -> Circuit.add_output c name (net_of name)) raw.raw_outputs;
  (* close the cycles broken during elaboration through a buffer *)
  List.iter
    (fun (placeholder, name) ->
      match Hashtbl.find_opt env name with
      | Some net ->
        Circuit.unsafe_set_node c placeholder (Circuit.Gate (Circuit.Buf, [| net |]))
      | None -> ())
    !cycle_patches;
  c

let parse_string ?lenient text = elaborate ?lenient (parse_raw text)

let parse_file ?lenient path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse_string ?lenient text

(* --- printing ------------------------------------------------------------ *)

let net_label c net =
  match Circuit.name_of c net with Some n -> n | None -> Printf.sprintf "n%d" net

let to_string c =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr ".model %s\n" (Circuit.model c);
  pr ".inputs %s\n" (String.concat " " (List.map (net_label c) (Circuit.inputs c)));
  pr ".outputs %s\n" (String.concat " " (List.map fst (Circuit.outputs c)));
  List.iter
    (fun latch ->
      pr ".latch %s %s %d\n"
        (net_label c (Circuit.latch_data c latch))
        (net_label c latch)
        (if Circuit.latch_init c latch then 1 else 0))
    (Circuit.latches c);
  (* emit output aliases when an output name differs from its net's label *)
  List.iter
    (fun (name, net) ->
      if name <> net_label c net then pr ".names %s %s\n1 1\n" (net_label c net) name)
    (Circuit.outputs c);
  let emit_gate net fn fanins =
    let ins = Array.to_list (Array.map (net_label c) fanins) in
    let target = net_label c net in
    let n = Array.length fanins in
    let all c = String.make n c in
    match fn with
    | Circuit.And -> pr ".names %s %s\n%s 1\n" (String.concat " " ins) target (all '1')
    | Circuit.Nand -> pr ".names %s %s\n%s 0\n" (String.concat " " ins) target (all '1')
    | Circuit.Or ->
      pr ".names %s %s\n" (String.concat " " ins) target;
      for i = 0 to n - 1 do
        let row = Bytes.make n '-' in
        Bytes.set row i '1';
        pr "%s 1\n" (Bytes.to_string row)
      done
    | Circuit.Nor -> pr ".names %s %s\n%s 1\n" (String.concat " " ins) target (all '0')
    | Circuit.Xor | Circuit.Xnor ->
      (* enumerate parity rows; callers keep xor arity small *)
      if n > 16 then failwith "Blif.to_string: xor arity too large";
      pr ".names %s %s\n" (String.concat " " ins) target;
      let want = if fn = Circuit.Xor then 1 else 0 in
      for bits = 0 to (1 lsl n) - 1 do
        let parity = ref 0 in
        let row = Bytes.make n '0' in
        for i = 0 to n - 1 do
          if bits land (1 lsl i) <> 0 then begin
            Bytes.set row i '1';
            parity := !parity lxor 1
          end
        done;
        if !parity = want then pr "%s 1\n" (Bytes.to_string row)
      done
    | Circuit.Not -> pr ".names %s %s\n0 1\n" (List.nth ins 0) target
    | Circuit.Buf -> pr ".names %s %s\n1 1\n" (List.nth ins 0) target
    | Circuit.Const0 -> pr ".names %s\n" target
    | Circuit.Const1 -> pr ".names %s\n1\n" target
  in
  for net = 0 to Circuit.num_nets c - 1 do
    match Circuit.node c net with
    | Circuit.Gate (fn, fanins) -> emit_gate net fn fanins
    | Circuit.Input | Circuit.Latch _ -> ()
  done;
  pr ".end\n";
  Buffer.contents buf

let to_file path c =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string c))
