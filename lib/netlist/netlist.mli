(** Gate-level sequential circuits.

    The external circuit representation: multi-input gates over named nets,
    D flip-flops with explicit initial values (the paper's Mealy FSM with a
    specified initial state), BLIF I/O and 64-way bit-parallel simulation.

    Circuits are built imperatively: allocate nets with [add_*], then close
    latch feedback with {!set_latch_data}.  {!validate} checks that the
    result is well-formed. *)

type gate_fn =
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Not
  | Buf
  | Const0
  | Const1

type node = Input | Gate of gate_fn * int array | Latch of { mutable data : int; init : bool }

type t
(** A circuit under construction or completed; nets are dense ints. *)

val create : string -> t
(** [create model_name] is an empty circuit. *)

val model : t -> string
val num_nets : t -> int
val node : t -> int -> node

(** {1 Construction} *)

val add_input : ?name:string -> t -> int
val add_gate : ?name:string -> t -> gate_fn -> int list -> int

val add_latch : ?name:string -> t -> init:bool -> int
(** Allocate a latch output net; its data input is closed later with
    {!set_latch_data}. *)

val add_undriven : ?name:string -> t -> int
(** A net that is referenced but has no driver — not a primary input.
    Used by the lenient parser modes to keep elaborating malformed files;
    the [undriven-net] lint rule reports such nets. *)

val unsafe_set_node : t -> int -> node -> unit
(** Replace the driver of a net in place, bypassing the construction-time
    arity and range checks.  For parser recovery and for seeding defective
    circuits in lint tests; the result may be ill-formed and must be
    re-checked ({!validate}, {!Check.run}) before simulation or
    conversion. *)

val set_latch_data : t -> int -> data:int -> unit
val add_output : t -> string -> int -> unit

val band : t -> int -> int -> int
val bor : t -> int -> int -> int
val bxor : t -> int -> int -> int
val bnot : t -> int -> int
val bmux : t -> sel:int -> t1:int -> t0:int -> int
val const0 : t -> int
val const1 : t -> int

(** {1 Naming} *)

val set_name : t -> int -> string -> unit
val name_of : t -> int -> string option
val net_of_name : t -> string -> int option

val names : t -> (int * string) list
(** All (net, name) bindings, sorted by net.  Several nets may share one
    name (a multiply-driven signal of the source file); the name table
    lookup {!net_of_name} then answers the most recent binding. *)

(** {1 Structure} *)

val inputs : t -> int list
(** Primary inputs in declaration order. *)

val latches : t -> int list
(** Latch output nets in declaration order. *)

val outputs : t -> (string * int) list
val latch_data : t -> int -> int
val latch_init : t -> int -> bool

val topo_order : t -> int list
(** All nets, gates after their fanins.
    @raise Failure on a combinational cycle. *)

val validate : t -> (unit, string) result
(** Well-formedness, built on the lint rules ({!Check.errors}): [Error]
    carries {e every} error-level diagnostic, not just the first. *)

val pp_stats : Format.formatter -> t -> unit

(** {1 Diagnostics} *)

(** The diagnostics data model shared by the netlist- and AIG-level lint
    rules (renderers live in the [lint] library). *)
module Diag : sig
  type severity = Error | Warning | Info

  type t = {
    rule : string;  (** stable identifier, e.g. ["multiply-driven"] *)
    severity : severity;
    message : string;
    nets : (int * string option) list;  (** affected nets with names *)
  }

  val make : ?nets:(int * string option) list -> string -> severity -> string -> t
  val makef :
    ?nets:(int * string option) list ->
    string -> severity -> ('a, unit, string, t) format4 -> 'a

  val severity_name : severity -> string
  val severity_rank : severity -> int
  val net_label : int * string option -> string
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
  val worst : t list -> severity option
  val count : severity -> t list -> int
  val errors : t list -> t list
end

(** Netlist-level static analysis: the rule catalog is documented in the
    README ([seqver lint]) and in [check.ml]. *)
module Check : sig
  val run : ?ternary_steps:int -> t -> Diag.t list
  (** All diagnostics of all rules, sorted by severity then rule id.  The
      ternary stuck-latch rule only runs on circuits without error-level
      defects; [ternary_steps = 0] disables it. *)

  val errors : t -> Diag.t list
  (** Only the structural error-level rules (the basis of {!validate}). *)
end

(** X-valued simulation from the initial state (all inputs X). *)
module Ternary : sig
  type v = F | T | X

  val stuck_latches : ?max_steps:int -> t -> (int * bool) list
  (** Latches provably stuck at a constant on every reachable state: the
      facts hold initially and are closed under one ternary step (sound
      invariants).  Requires a well-formed circuit. *)
end

(** {1 BLIF I/O} *)

module Blif : sig
  exception Parse_error of string

  val parse_string : ?lenient:bool -> string -> t
  (** With [~lenient:true] (default false), structurally malformed input
      is materialized instead of rejected so the lint rules can report
      every defect: undefined signals become undriven nets, a latch whose
      data signal is undefined stays unclosed, duplicate definitions all
      build (one name, several nets) and combinational cycles are closed
      through a buffer.  Strict mode additionally rejects duplicate
      definitions, which were previously dropped silently. *)

  val parse_file : ?lenient:bool -> string -> t
  val to_string : t -> string
  val to_file : string -> t -> unit
end

(** {1 ISCAS'89 .bench I/O} *)

module Bench : sig
  exception Parse_error of string

  val parse_string : ?model:string -> ?lenient:bool -> string -> t
  (** DFF initial values are taken as 0 (the .bench convention).
      [~lenient] recovers from undefined signals, duplicate definitions
      and combinational cycles exactly like {!Blif.parse_string}. *)

  val parse_file : ?lenient:bool -> string -> t
  val to_string : t -> string
  val to_file : string -> t -> unit
end

(** {1 Clocked registers: enables, resets, gated clocks}

    A clocked design is a circuit plus one spec per latch describing how
    that register is really clocked.  {!Clocking.lower} normalizes every
    spec away — the clk2fflogic move — producing a plain always-enabled
    circuit whose step function equals the reference semantics
    implemented directly by {!Clocking.simulate}, so the whole
    verification pipeline applies unchanged. *)

module Clocking : sig
  type reset_kind = Sync | Async

  type spec = {
    clock_gate : int option;
        (** derived-clock net: the register captures on the 0→1 edge of
            this net, sampled against its previous step's value (taken
            as 0 before the first step).  [None] = the primary clock. *)
    enable : int option;  (** capture only when this net is 1 *)
    reset : (reset_kind * int * bool) option;
        (** reset kind, controlling net, and the value the register is
            reset to.  A synchronous reset applies on the clock trigger
            and wins over the enable; an asynchronous reset dominates
            immediately — every fanout of the register sees the reset
            value in the same cycle. *)
  }

  type clocked := t

  type t
  (** A circuit plus per-latch register specs. *)

  val create : string -> t
  val of_circuit : ?clock_name:string -> clocked -> t
  (** Wrap a plain circuit; every latch gets the default (always-on,
      primary-clock, no-reset) spec. *)

  val circuit : t -> clocked
  (** The underlying circuit; build combinational logic and close latch
      feedback ({!set_latch_data}) directly on it. *)

  val clock_name : t -> string
  val set_clock_name : t -> string -> unit

  val default_spec : spec
  val spec : t -> int -> spec
  val set_spec : t -> int -> spec -> unit

  val is_plain : t -> bool
  (** No latch carries a non-default spec. *)

  val add_reg :
    ?name:string ->
    ?clock_gate:int ->
    ?enable:int ->
    ?reset:reset_kind * int * bool ->
    t ->
    init:bool ->
    int
  (** Allocate a register with a spec; spec nets may be allocated after
      the register (feedback is real) and are range-checked at
      {!validate}/{!lower} time. *)

  val validate : t -> (unit, string) result

  val simulate : t -> int64 array list -> (string * int64) list list
  (** Direct 64-lane reference simulation of the multi-clock semantics,
      independent of {!lower}; same calling convention as {!Sim.run}. *)

  exception Lower_error of string

  val lower : t -> clocked
  (** Rewrite every spec-bearing register into a plain always-enabled
      latch plus mux feedback logic (plus one shadow latch per distinct
      gate net holding its previous value).  Net names are preserved.
      @raise Lower_error if an async reset cone passes through its own
      register's output. *)
end

(** {1 Structural Verilog I/O} *)

module Verilog : sig
  exception Parse_error of string

  val to_string : t -> string
  (** One module with assigns for the gates and a clocked always-block
      with reset-to-initial-value for the latches.  Emitted labels are
      uniquified: sanitization collisions, user signals shadowing the
      generated [clock]/[reset] ports, and names colliding with the
      [n<net>] fallback are all suffixed apart. *)

  val to_file : string -> t -> unit

  val design_to_string : Clocking.t -> string
  (** Like {!to_string} but keeps enables, resets and gated clocks as
      [always @(posedge …)] blocks with [if (reset)] / [if (enable)]
      nests instead of baking the reset mux into the data logic. *)

  val parse_string : ?lenient:bool -> string -> Clocking.t
  (** Read the structural subset the writer emits: one module,
      input/output/wire/reg declarations, [assign]s over the writer's
      operator set ([~ & | ^], [~(...)] forms, constants), and
      [always @(posedge clk)] / [always @(posedge clk or posedge rst)]
      blocks whose bodies are non-blocking assignments under optional
      [if (rst) … else if (en) …] nests.  A reset branch assigning a
      constant becomes the register's reset spec and initial value; a
      posedge net that is not a module input becomes a gated-clock spec.
      With [~lenient:true], undefined signals become undriven nets and
      registers without an always-block stay unclosed, mirroring
      {!Blif.parse_string}; strict mode raises {!Parse_error}. *)

  val parse_file : ?lenient:bool -> string -> Clocking.t
end

(** {1 Bit-parallel simulation} *)

module Sim : sig
  type circuit := t

  type t
  (** Simulator state: 64 parallel patterns per net. *)

  val create : circuit -> t

  val reset : t -> unit
  (** Load every latch with its initial value (all 64 patterns alike). *)

  val eval_comb : t -> int64 array -> unit
  (** Evaluate combinational logic under the given input words (one word
      per primary input, in declaration order). *)

  val value : t -> int -> int64
  (** Word of a net after {!eval_comb}. *)

  val step : t -> unit
  (** Clock edge: latches capture their data inputs. *)

  val output_values : t -> (string * int64) list

  val run : circuit -> int64 array list -> (string * int64) list list
  (** Reset, then evaluate/step through the frames; outputs per frame. *)

  val random_stimuli : seed:int -> n_inputs:int -> n_frames:int -> int64 array list
end
