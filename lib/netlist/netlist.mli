(** Gate-level sequential circuits.

    The external circuit representation: multi-input gates over named nets,
    D flip-flops with explicit initial values (the paper's Mealy FSM with a
    specified initial state), BLIF I/O and 64-way bit-parallel simulation.

    Circuits are built imperatively: allocate nets with [add_*], then close
    latch feedback with {!set_latch_data}.  {!validate} checks that the
    result is well-formed. *)

type gate_fn =
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor
  | Not
  | Buf
  | Const0
  | Const1

type node = Input | Gate of gate_fn * int array | Latch of { mutable data : int; init : bool }

type t
(** A circuit under construction or completed; nets are dense ints. *)

val create : string -> t
(** [create model_name] is an empty circuit. *)

val model : t -> string
val num_nets : t -> int
val node : t -> int -> node

(** {1 Construction} *)

val add_input : ?name:string -> t -> int
val add_gate : ?name:string -> t -> gate_fn -> int list -> int

val add_latch : ?name:string -> t -> init:bool -> int
(** Allocate a latch output net; its data input is closed later with
    {!set_latch_data}. *)

val add_undriven : ?name:string -> t -> int
(** A net that is referenced but has no driver — not a primary input.
    Used by the lenient parser modes to keep elaborating malformed files;
    the [undriven-net] lint rule reports such nets. *)

val unsafe_set_node : t -> int -> node -> unit
(** Replace the driver of a net in place, bypassing the construction-time
    arity and range checks.  For parser recovery and for seeding defective
    circuits in lint tests; the result may be ill-formed and must be
    re-checked ({!validate}, {!Check.run}) before simulation or
    conversion. *)

val set_latch_data : t -> int -> data:int -> unit
val add_output : t -> string -> int -> unit

val band : t -> int -> int -> int
val bor : t -> int -> int -> int
val bxor : t -> int -> int -> int
val bnot : t -> int -> int
val bmux : t -> sel:int -> t1:int -> t0:int -> int
val const0 : t -> int
val const1 : t -> int

(** {1 Naming} *)

val set_name : t -> int -> string -> unit
val name_of : t -> int -> string option
val net_of_name : t -> string -> int option

val names : t -> (int * string) list
(** All (net, name) bindings, sorted by net.  Several nets may share one
    name (a multiply-driven signal of the source file); the name table
    lookup {!net_of_name} then answers the most recent binding. *)

(** {1 Structure} *)

val inputs : t -> int list
(** Primary inputs in declaration order. *)

val latches : t -> int list
(** Latch output nets in declaration order. *)

val outputs : t -> (string * int) list
val latch_data : t -> int -> int
val latch_init : t -> int -> bool

val topo_order : t -> int list
(** All nets, gates after their fanins.
    @raise Failure on a combinational cycle. *)

val validate : t -> (unit, string) result
(** Well-formedness, built on the lint rules ({!Check.errors}): [Error]
    carries {e every} error-level diagnostic, not just the first. *)

val pp_stats : Format.formatter -> t -> unit

(** {1 Diagnostics} *)

(** The diagnostics data model shared by the netlist- and AIG-level lint
    rules (renderers live in the [lint] library). *)
module Diag : sig
  type severity = Error | Warning | Info

  type t = {
    rule : string;  (** stable identifier, e.g. ["multiply-driven"] *)
    severity : severity;
    message : string;
    nets : (int * string option) list;  (** affected nets with names *)
  }

  val make : ?nets:(int * string option) list -> string -> severity -> string -> t
  val makef :
    ?nets:(int * string option) list ->
    string -> severity -> ('a, unit, string, t) format4 -> 'a

  val severity_name : severity -> string
  val severity_rank : severity -> int
  val net_label : int * string option -> string
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
  val worst : t list -> severity option
  val count : severity -> t list -> int
  val errors : t list -> t list
end

(** Netlist-level static analysis: the rule catalog is documented in the
    README ([seqver lint]) and in [check.ml]. *)
module Check : sig
  val run : ?ternary_steps:int -> t -> Diag.t list
  (** All diagnostics of all rules, sorted by severity then rule id.  The
      ternary stuck-latch rule only runs on circuits without error-level
      defects; [ternary_steps = 0] disables it. *)

  val errors : t -> Diag.t list
  (** Only the structural error-level rules (the basis of {!validate}). *)
end

(** X-valued simulation from the initial state (all inputs X). *)
module Ternary : sig
  type v = F | T | X

  val stuck_latches : ?max_steps:int -> t -> (int * bool) list
  (** Latches provably stuck at a constant on every reachable state: the
      facts hold initially and are closed under one ternary step (sound
      invariants).  Requires a well-formed circuit. *)
end

(** {1 BLIF I/O} *)

module Blif : sig
  exception Parse_error of string

  val parse_string : ?lenient:bool -> string -> t
  (** With [~lenient:true] (default false), structurally malformed input
      is materialized instead of rejected so the lint rules can report
      every defect: undefined signals become undriven nets, a latch whose
      data signal is undefined stays unclosed, duplicate definitions all
      build (one name, several nets) and combinational cycles are closed
      through a buffer.  Strict mode additionally rejects duplicate
      definitions, which were previously dropped silently. *)

  val parse_file : ?lenient:bool -> string -> t
  val to_string : t -> string
  val to_file : string -> t -> unit
end

(** {1 ISCAS'89 .bench I/O} *)

module Bench : sig
  exception Parse_error of string

  val parse_string : ?model:string -> ?lenient:bool -> string -> t
  (** DFF initial values are taken as 0 (the .bench convention).
      [~lenient] recovers from undefined signals, duplicate definitions
      and combinational cycles exactly like {!Blif.parse_string}. *)

  val parse_file : ?lenient:bool -> string -> t
  val to_string : t -> string
  val to_file : string -> t -> unit
end

(** {1 Structural Verilog (write-only)} *)

module Verilog : sig
  val to_string : t -> string
  (** One module with assigns for the gates and a clocked always-block
      with reset-to-initial-value for the latches. *)

  val to_file : string -> t -> unit
end

(** {1 Bit-parallel simulation} *)

module Sim : sig
  type circuit := t

  type t
  (** Simulator state: 64 parallel patterns per net. *)

  val create : circuit -> t

  val reset : t -> unit
  (** Load every latch with its initial value (all 64 patterns alike). *)

  val eval_comb : t -> int64 array -> unit
  (** Evaluate combinational logic under the given input words (one word
      per primary input, in declaration order). *)

  val value : t -> int -> int64
  (** Word of a net after {!eval_comb}. *)

  val step : t -> unit
  (** Clock edge: latches capture their data inputs. *)

  val output_values : t -> (string * int64) list

  val run : circuit -> int64 array list -> (string * int64) list list
  (** Reset, then evaluate/step through the frames; outputs per frame. *)

  val random_stimuli : seed:int -> n_inputs:int -> n_frames:int -> int64 array list
end
