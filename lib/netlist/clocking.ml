(* Register-spec layer: clock enables, synchronous/asynchronous resets and
   gated/derived clocks on top of the plain always-enabled latch model.

   A clocked design is a {!Circuit.t} plus one spec per latch saying how
   that register is really clocked.  [lower] normalizes every spec away —
   the clk2fflogic move — so the whole downstream pipeline (AIG
   conversion, the fixed-point engines, certificates, the serve cache)
   applies unchanged; [simulate] is the direct multi-clock reference
   semantics the lowering is checked against (qcheck property in
   test_clocking.ml).

   Reference semantics, per global step t (one edge of the implicit
   primary clock); all combinational values are evaluated from the
   current latch states and inputs first:

     trigger  = 1                    for a primary-clocked register
              = gate_t & ~gate_{t-1} for a gated/derived clock (the gate
                                     net's previous sampled value; taken
                                     as 0 before the first step)
     capture  = trigger & (enable, 1 when none)

     sync reset:   q_{t+1} = trigger ? (rst ? rval : (en ? d : q_t)) : q_t
     async reset:  fanout sees  visible = rst ? rval : q_t   (same cycle)
                   q_{t+1} = rst ? rval : (capture ? d : q_t)
     no reset:     q_{t+1} = capture ? d : q_t

   [lower] builds exactly these equations as mux feedback logic: one
   always-enabled latch per register, one shadow latch per distinct gate
   net holding its previous value, and for async resets every fanout of
   the register is rewired to the [visible] mux. *)

type reset_kind = Sync | Async

type spec = {
  clock_gate : int option;  (* derived-clock net; None = primary clock *)
  enable : int option;      (* capture only when this net is 1 *)
  reset : (reset_kind * int * bool) option;  (* kind, net, reset value *)
}

let default_spec = { clock_gate = None; enable = None; reset = None }

type t = {
  circuit : Circuit.t;
  specs : (int, spec) Hashtbl.t;  (* latch net -> spec; absent = default *)
  mutable clock_name : string;    (* primary clock label for Verilog I/O *)
}

let create model =
  { circuit = Circuit.create model; specs = Hashtbl.create 16; clock_name = "clock" }

let of_circuit ?(clock_name = "clock") circuit =
  { circuit; specs = Hashtbl.create 16; clock_name }

let circuit t = t.circuit
let clock_name t = t.clock_name
let set_clock_name t name = t.clock_name <- name

let spec t latch =
  match Hashtbl.find_opt t.specs latch with Some s -> s | None -> default_spec

let set_spec t latch s =
  (match Circuit.node t.circuit latch with
  | Circuit.Latch _ -> ()
  | Circuit.Input | Circuit.Gate _ -> invalid_arg "Clocking.set_spec: not a latch");
  if s = default_spec then Hashtbl.remove t.specs latch
  else Hashtbl.replace t.specs latch s

let is_plain t = Hashtbl.length t.specs = 0

(* Allocate a register with a spec; its data input is closed later with
   {!Circuit.set_latch_data} on [circuit t].  Spec nets may be allocated
   after the register (feedback through enables and gates is real), so
   they are only range-checked at [validate]/[lower] time. *)
let add_reg ?name ?clock_gate ?enable ?reset t ~init =
  let q = Circuit.add_latch ?name t.circuit ~init in
  set_spec t q { clock_gate; enable; reset };
  q

(* --- validation ---------------------------------------------------------- *)

let validate t =
  let n = Circuit.num_nets t.circuit in
  let problems = ref [] in
  let check_net what latch net =
    if net < 0 || net >= n then
      problems :=
        Printf.sprintf "register %s: %s net %d out of range"
          (Diag.net_label (latch, Circuit.name_of t.circuit latch))
          what net
        :: !problems
  in
  Hashtbl.iter
    (fun latch s ->
      (match Circuit.node t.circuit latch with
      | Circuit.Latch _ -> ()
      | Circuit.Input | Circuit.Gate _ ->
        problems := Printf.sprintf "spec on non-latch net %d" latch :: !problems);
      Option.iter (check_net "clock-gate" latch) s.clock_gate;
      Option.iter (check_net "enable" latch) s.enable;
      Option.iter (fun (_, net, _) -> check_net "reset" latch net) s.reset)
    t.specs;
  match !problems with
  | [] -> Check.validate t.circuit
  | ps -> Error (String.concat "; " (List.sort compare ps))

(* --- direct reference simulation ----------------------------------------- *)

(* 64-lane bit-parallel interpreter of the reference semantics above,
   deliberately independent of [lower]: it keeps per-register state plus
   one past-value word per gated clock and applies the update equations
   wordwise.  The only shared code is the combinational [Sim.gate_eval].

   Combinational values are computed by memoized recursion so that an
   async-reset register's visible value can depend on a reset cone
   computed from this frame's inputs (and vice versa for gates reading
   the visible value) in any declaration order; the one true cycle —
   a register's own reset cone passing through its output — is rejected,
   matching [lower]. *)
let mux_w sel a b = Int64.(logor (logand sel a) (logand (lognot sel) b))

let simulate t stimuli =
  let c = t.circuit in
  let n = Circuit.num_nets c in
  let inputs = Circuit.inputs c in
  let latches = Circuit.latches c in
  let values = Array.make n 0L in
  let computed = Array.make n false in
  let visiting = Array.make n false in
  let state = Hashtbl.create 16 in
  let gate_past = Hashtbl.create 4 in
  List.iter
    (fun l ->
      Hashtbl.replace state l (if Circuit.latch_init c l then -1L else 0L);
      match (spec t l).clock_gate with
      | Some g -> Hashtbl.replace gate_past g 0L
      | None -> ())
    latches;
  let rec eval net =
    if computed.(net) then values.(net)
    else begin
      if visiting.(net) then
        failwith
          (Printf.sprintf
             "Clocking.simulate: async-reset cone of %s passes through the \
              register itself"
             (Diag.net_label (net, Circuit.name_of c net)));
      visiting.(net) <- true;
      let w =
        match Circuit.node c net with
        | Circuit.Input -> values.(net) (* frame word, or 0 if undriven *)
        | Circuit.Gate (fn, fanins) ->
          Array.iter (fun f -> ignore (eval f)) fanins;
          Sim.gate_eval fn values fanins
        | Circuit.Latch _ -> (
          let q = Hashtbl.find state net in
          match (spec t net).reset with
          | Some (Async, rst, rval) ->
            mux_w (eval rst) (if rval then -1L else 0L) q
          | Some (Sync, _, _) | None -> q)
      in
      visiting.(net) <- false;
      values.(net) <- w;
      computed.(net) <- true;
      w
    end
  in
  List.map
    (fun frame ->
      if List.length inputs <> Array.length frame then
        invalid_arg "Clocking.simulate: wrong number of input words";
      Array.fill computed 0 n false;
      List.iteri
        (fun i net ->
          values.(net) <- frame.(i);
          computed.(net) <- true)
        inputs;
      let outs =
        List.map (fun (name, net) -> (name, eval net)) (Circuit.outputs c)
      in
      (* sequential update: every register applies its equation from the
         same pre-step snapshot *)
      let next =
        List.map
          (fun l ->
            let s = spec t l in
            let q = Hashtbl.find state l in
            let data = Circuit.latch_data c l in
            if data < 0 then (l, q) (* unclosed latch of a lenient parse *)
            else
              let d = eval data in
              let trigger =
                match s.clock_gate with
                | None -> -1L
                | Some g ->
                  Int64.(logand (eval g) (lognot (Hashtbl.find gate_past g)))
              in
              let capture =
                match s.enable with
                | None -> trigger
                | Some en -> Int64.logand trigger (eval en)
              in
              let next =
                match s.reset with
                | None -> mux_w capture d q
                | Some (Sync, rst, rval) ->
                  let rv = if rval then -1L else 0L in
                  mux_w trigger (mux_w (eval rst) rv (mux_w capture d q)) q
                | Some (Async, rst, rval) ->
                  let rv = if rval then -1L else 0L in
                  (* fanout already saw [visible]; the stored state follows
                     the same dominance: reset wins over any capture *)
                  mux_w (eval rst) rv (mux_w capture d (eval l))
              in
              (l, next))
          latches
      in
      let past_next =
        Hashtbl.fold (fun g _ acc -> (g, eval g) :: acc) gate_past []
      in
      List.iter (fun (l, w) -> Hashtbl.replace state l w) next;
      List.iter (fun (g, w) -> Hashtbl.replace gate_past g w) past_next;
      outs)
    stimuli

(* --- lowering ------------------------------------------------------------ *)

exception Lower_error of string

(* clk2fflogic: rewrite every spec-bearing register into a plain
   always-enabled latch plus mux feedback logic implementing the
   reference equations, and one shadow latch per distinct gate net
   holding its previous sampled value (initial 0, matching the
   reference simulator's pre-first-step convention).

   Exactness: the lowered circuit's step function equals the reference
   step function on every lane of every state/input word (the qcheck
   property), and its initial state maps register inits unchanged with
   shadow latches at 0 — the same initial snapshot.  Two clocked designs
   are therefore sequentially equivalent iff their lowerings are, so
   proving the lowered product with the unchanged fixed-point engines
   decides the original question. *)
let lower t =
  let c = t.circuit in
  let out = Circuit.create (Circuit.model c) in
  let n = Circuit.num_nets c in
  let map = Array.make n (-1) in
  let carry_name net net' =
    (match Circuit.name_of c net with
    | Some name -> Circuit.set_name out net' name
    | None -> ());
    net'
  in
  let c0 = lazy (Circuit.const0 out) and c1 = lazy (Circuit.const1 out) in
  let const b = if b then Lazy.force c1 else Lazy.force c0 in
  (* inputs and latch shells first, in declaration order *)
  List.iter (fun net -> map.(net) <- carry_name net (Circuit.add_input out)) (Circuit.inputs c);
  let latch_shell = Hashtbl.create 16 in
  List.iter
    (fun l ->
      let q = carry_name l (Circuit.add_latch out ~init:(Circuit.latch_init c l)) in
      Hashtbl.replace latch_shell l q)
    (Circuit.latches c);
  (* one shadow latch per distinct gate net, allocated up front so the
     trigger logic below can reference it *)
  let shadows = Hashtbl.create 4 in
  List.iter
    (fun l ->
      match (spec t l).clock_gate with
      | Some g when not (Hashtbl.mem shadows g) ->
        let name =
          match Circuit.name_of c g with
          | Some n -> Printf.sprintf "%s_past" n
          | None -> Printf.sprintf "gate%d_past" g
        in
        Hashtbl.replace shadows g (Circuit.add_latch ~name out ~init:false)
      | _ -> ())
    (Circuit.latches c);
  (* map old nets to lowered nets on demand.  A latch maps to its
     [visible] value — for async resets a mux over the reset cone, which
     may itself pass through other latches' visible values; [visiting]
     rejects the degenerate combinational cycle where a register's reset
     cone passes through its own output. *)
  let visiting = Array.make n false in
  let rec map_net net =
    if map.(net) >= 0 then map.(net)
    else begin
      if visiting.(net) then
        raise
          (Lower_error
             (Printf.sprintf
                "async-reset cone of %s passes through the register itself"
                (Diag.net_label (net, Circuit.name_of c net))));
      visiting.(net) <- true;
      let net' =
        match Circuit.node c net with
        | Circuit.Input ->
          (* an undriven net of a lenient parse: keep it undriven *)
          carry_name net (Circuit.add_undriven out)
        | Circuit.Gate (fn, fanins) ->
          let fanins' = Array.to_list (Array.map map_net fanins) in
          carry_name net (Circuit.add_gate out fn fanins')
        | Circuit.Latch _ -> (
          let q = Hashtbl.find latch_shell net in
          match (spec t net).reset with
          | Some (Async, rst, rval) ->
            let rst' = map_net rst in
            let rv = const rval in
            Circuit.bmux out ~sel:rst' ~t1:rv ~t0:q
          | Some (Sync, _, _) | None -> q)
      in
      visiting.(net) <- false;
      map.(net) <- net';
      net'
    end
  in
  (* close every register's feedback with the reference update equation *)
  List.iter
    (fun l ->
      let s = spec t l in
      let q = Hashtbl.find latch_shell l in
      let d_old = Circuit.latch_data c l in
      if d_old < 0 then () (* unclosed latch of a lenient parse: keep it *)
      else begin
        let d = map_net d_old in
        let trigger =
          match s.clock_gate with
          | None -> None
          | Some g ->
            let g' = map_net g in
            let past = Hashtbl.find shadows g in
            Some (Circuit.band out g' (Circuit.bnot out past))
        in
        let capture =
          match (trigger, s.enable) with
          | None, None -> None
          | Some trig, None -> Some trig
          | None, Some en -> Some (map_net en)
          | Some trig, Some en -> Some (Circuit.band out trig (map_net en))
        in
        (* holding value when not captured: the shell state, except for
           async resets where fanout (and thus the hold) is the visible
           mux *)
        let captured_over hold =
          match capture with
          | None -> d
          | Some cap -> Circuit.bmux out ~sel:cap ~t1:d ~t0:hold
        in
        let next =
          match s.reset with
          | None -> captured_over q
          | Some (Sync, rst, rval) ->
            let rst' = map_net rst in
            let rv = const rval in
            let after_reset =
              Circuit.bmux out ~sel:rst' ~t1:rv ~t0:(captured_over q)
            in
            (match trigger with
            | None -> after_reset  (* primary clock: trigger is constant 1 *)
            | Some trig -> Circuit.bmux out ~sel:trig ~t1:after_reset ~t0:q)
          | Some (Async, rst, rval) ->
            let rst' = map_net rst in
            let rv = const rval in
            (* capture falls back to the visible value, and reset
               dominates everything; only materialize the visible mux
               when something actually holds through it *)
            let captured =
              match capture with
              | None -> d
              | Some cap -> Circuit.bmux out ~sel:cap ~t1:d ~t0:(map_net l)
            in
            Circuit.bmux out ~sel:rst' ~t1:rv ~t0:captured
        in
        Circuit.set_latch_data out q ~data:next
      end)
    (Circuit.latches c);
  (* shadow latches sample their gate nets *)
  Hashtbl.iter
    (fun g past -> Circuit.set_latch_data out past ~data:(map_net g))
    shadows;
  List.iter
    (fun (name, net) -> Circuit.add_output out name (map_net net))
    (Circuit.outputs c);
  out
