(* Reader/writer for the ISCAS'89 ".bench" netlist format — the format in
   which the paper's benchmark circuits are traditionally distributed:

     INPUT(G0)
     OUTPUT(G17)
     G10 = DFF(G14)
     G11 = NOT(G0)
     G17 = NAND(G10, G11)

   DFF initial values are not representable in .bench; they are taken as 0
   on input (the usual convention) and initial-1 latches are emitted
   through an inverter pair with a warning comment on output. *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type raw_gate = { target : string; func : string; args : string list }

let parse_raw text =
  let inputs = ref [] and outputs = ref [] and gates = ref [] in
  let handle line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let line = String.trim line in
    if line = "" then ()
    else begin
      let upper = String.uppercase_ascii line in
      let bracketed prefix =
        (* e.g. INPUT(G0) *)
        let start = String.length prefix + 1 in
        match String.index_opt line ')' with
        | Some stop when stop > start -> Some (String.trim (String.sub line start (stop - start)))
        | _ -> None
      in
      if String.length upper >= 6 && String.sub upper 0 6 = "INPUT(" then
        match bracketed "INPUT" with
        | Some name -> inputs := name :: !inputs
        | None -> parse_error "malformed INPUT: %s" line
      else if String.length upper >= 7 && String.sub upper 0 7 = "OUTPUT(" then
        match bracketed "OUTPUT" with
        | Some name -> outputs := name :: !outputs
        | None -> parse_error "malformed OUTPUT: %s" line
      else
        match String.index_opt line '=' with
        | None -> parse_error "expected assignment: %s" line
        | Some eq ->
          let target = String.trim (String.sub line 0 eq) in
          let rhs = String.trim (String.sub line (eq + 1) (String.length line - eq - 1)) in
          (match (String.index_opt rhs '(', String.rindex_opt rhs ')') with
          | Some op, Some cp when cp > op ->
            let func = String.uppercase_ascii (String.trim (String.sub rhs 0 op)) in
            let args =
              String.sub rhs (op + 1) (cp - op - 1)
              |> String.split_on_char ','
              |> List.map String.trim
              |> List.filter (fun s -> s <> "")
            in
            gates := { target; func; args } :: !gates
          | _ -> parse_error "malformed gate: %s" line)
    end
  in
  List.iter handle (String.split_on_char '\n' text);
  (List.rev !inputs, List.rev !outputs, List.rev !gates)

let gate_fn_of_func line = function
  | "AND" -> Circuit.And
  | "OR" -> Circuit.Or
  | "NAND" -> Circuit.Nand
  | "NOR" -> Circuit.Nor
  | "XOR" -> Circuit.Xor
  | "XNOR" -> Circuit.Xnor
  | "NOT" | "INV" -> Circuit.Not
  | "BUF" | "BUFF" -> Circuit.Buf
  | func -> parse_error "unsupported gate %s in: %s" func line

let parse_string ?(model = "bench") ?(lenient = false) text =
  let inputs, outputs, gates = parse_raw text in
  let c = Circuit.create model in
  let env : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace env n (Circuit.add_input ~name:n c)) inputs;
  let defs : (string, raw_gate) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun g -> Hashtbl.replace defs g.target g) gates;
  (* duplicate definitions: strict mode rejects them, lenient mode
     materializes every driver so the multiply-driven lint rule can
     report them *)
  let definition_count = Hashtbl.create 64 in
  let count name =
    Hashtbl.replace definition_count name
      (1 + Option.value ~default:0 (Hashtbl.find_opt definition_count name))
  in
  List.iter count inputs;
  List.iter (fun g -> count g.target) gates;
  let duplicates =
    List.sort compare
      (Hashtbl.fold
         (fun name n acc -> if n > 1 then name :: acc else acc)
         definition_count [])
  in
  if duplicates <> [] && not lenient then
    parse_error "multiple drivers for signal(s): %s" (String.concat ", " duplicates);
  (* DFF outputs are nets available from the start; each duplicate DFF
     definition allocates its own latch *)
  let dffs =
    List.filter_map
      (fun g ->
        if g.func = "DFF" then begin
          let net = Circuit.add_latch ~name:g.target c ~init:false in
          Hashtbl.replace env g.target net;
          Some (g, net)
        end
        else None)
      gates
  in
  let building = Hashtbl.create 16 in
  let cycle_patches = ref [] in
  let built : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec net_of name =
    match Hashtbl.find_opt env name with
    | Some net -> net
    | None ->
      if Hashtbl.mem building name then begin
        if not lenient then parse_error "combinational cycle at %s" name;
        (* break the cycle with a placeholder, patched to a buffer of the
           real net afterwards so the cycle survives for the lint rules *)
        let placeholder = Circuit.add_undriven c in
        cycle_patches := (placeholder, name) :: !cycle_patches;
        placeholder
      end
      else begin
        Hashtbl.replace building name ();
        match Hashtbl.find_opt defs name with
        | None ->
          if not lenient then parse_error "undefined signal %s" name;
          let net = Circuit.add_undriven ~name c in
          Hashtbl.replace env name net;
          net
        | Some g ->
          let net = build_gate g in
          Hashtbl.replace env name net;
          Hashtbl.replace built name ();
          Hashtbl.remove building name;
          net
      end
  and build_gate g =
    let fn = gate_fn_of_func (g.target ^ " = " ^ g.func) g.func in
    let fanins = List.map net_of g.args in
    match Circuit.add_gate ~name:g.target c fn fanins with
    | net -> net
    | exception Invalid_argument _ when lenient ->
      (* impossible fanin count (e.g. NOT with two arguments): materialize
         it anyway for the bad-arity lint rule *)
      let net = Circuit.add_undriven ~name:g.target c in
      Circuit.unsafe_set_node c net (Circuit.Gate (fn, Array.of_list fanins));
      net
  in
  List.iter (fun g -> if g.func <> "DFF" then ignore (net_of g.target)) gates;
  (* lenient: materialize the shadowed drivers of duplicated names too;
     [net_of] built at most one gate per name — the one [defs] retained,
     and only when the name was not already an input or DFF *)
  if lenient then
    List.iter
      (fun g ->
        if g.func <> "DFF" then begin
          let is_the_built_one =
            Hashtbl.mem built g.target
            && (match Hashtbl.find_opt defs g.target with
               | Some kept -> kept == g
               | None -> false)
          in
          if not is_the_built_one then ignore (build_gate g)
        end)
      gates;
  List.iter
    (fun (g, lnet) ->
      match g.args with
      | [ d ] ->
        (* lenient: a DFF whose data signal has no definition stays
           unclosed; the unclosed-latch rule reports it *)
        if (not lenient) || Hashtbl.mem env d || Hashtbl.mem defs d then
          Circuit.set_latch_data c lnet ~data:(net_of d)
      | _ -> if not lenient then parse_error "DFF takes one argument: %s" g.target)
    dffs;
  List.iter (fun name -> Circuit.add_output c name (net_of name)) outputs;
  (* close the cycles broken during elaboration through a buffer *)
  List.iter
    (fun (placeholder, name) ->
      match Hashtbl.find_opt env name with
      | Some net ->
        Circuit.unsafe_set_node c placeholder (Circuit.Gate (Circuit.Buf, [| net |]))
      | None -> ())
    !cycle_patches;
  c

let parse_file ?lenient path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse_string ~model:(Filename.remove_extension (Filename.basename path)) ?lenient text

let net_label c net =
  match Circuit.name_of c net with Some n -> n | None -> Printf.sprintf "n%d" net

let to_string c =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "# %s\n" (Circuit.model c);
  List.iter (fun net -> pr "INPUT(%s)\n" (net_label c net)) (Circuit.inputs c);
  List.iter (fun (name, _) -> pr "OUTPUT(%s)\n" name) (Circuit.outputs c);
  (* output aliases for named outputs that differ from their net's label *)
  List.iter
    (fun (name, net) ->
      if name <> net_label c net then pr "%s = BUFF(%s)\n" name (net_label c net))
    (Circuit.outputs c);
  List.iter
    (fun latch ->
      if Circuit.latch_init c latch then
        pr "# warning: latch %s has initial value 1, not representable in .bench\n"
          (net_label c latch);
      pr "%s = DFF(%s)\n" (net_label c latch) (net_label c (Circuit.latch_data c latch)))
    (Circuit.latches c);
  for net = 0 to Circuit.num_nets c - 1 do
    match Circuit.node c net with
    | Circuit.Gate (fn, fanins) ->
      let ins = String.concat ", " (Array.to_list (Array.map (net_label c) fanins)) in
      let func =
        match fn with
        | Circuit.And -> "AND"
        | Circuit.Or -> "OR"
        | Circuit.Nand -> "NAND"
        | Circuit.Nor -> "NOR"
        | Circuit.Xor -> "XOR"
        | Circuit.Xnor -> "XNOR"
        | Circuit.Not -> "NOT"
        | Circuit.Buf -> "BUFF"
        | Circuit.Const0 | Circuit.Const1 -> ""
      in
      (match fn with
      | Circuit.Const0 ->
        (* no constants in .bench: x & !x *)
        let label = net_label c net in
        (match Circuit.inputs c with
        | first :: _ ->
          pr "%s_not = NOT(%s)\n" label (net_label c first);
          pr "%s = AND(%s, %s_not)\n" label (net_label c first) label
        | [] -> parse_error "cannot emit constant without inputs")
      | Circuit.Const1 ->
        let label = net_label c net in
        (match Circuit.inputs c with
        | first :: _ ->
          pr "%s_not = NOT(%s)\n" label (net_label c first);
          pr "%s = OR(%s, %s_not)\n" label (net_label c first) label
        | [] -> parse_error "cannot emit constant without inputs")
      | _ -> pr "%s = %s(%s)\n" (net_label c net) func ins)
    | Circuit.Input | Circuit.Latch _ -> ()
  done;
  Buffer.contents buf

let to_file path c =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string c))
