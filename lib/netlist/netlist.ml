(* Public API of the netlist library; see netlist.mli. *)

include Circuit
module Diag = Diag
module Check = Check
module Ternary = Ternary
module Blif = Blif
module Bench = Bench
module Verilog = Verilog
module Sim = Sim
module Clocking = Clocking

(* Well-formedness, reimplemented on top of the lint rules: every
   error-level diagnostic is reported, not just the first. *)
let validate = Check.validate
