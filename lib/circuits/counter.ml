(* Counters: the deep-state-space workloads (the paper's s838-style
   circuits, whose 2^n-deep product state space defeats traversal while
   signal correspondence is immediate). *)

(* n-bit binary up-counter with enable and synchronous reset.
   Outputs: all counter bits plus a carry-out. *)
let binary ?(name = "counter") n =
  let c = Netlist.create (Printf.sprintf "%s%d" name n) in
  let en = Netlist.add_input ~name:"en" c in
  let rst = Netlist.add_input ~name:"rst" c in
  let bits = List.init n (fun i -> Netlist.add_latch ~name:(Printf.sprintf "q%d" i) c ~init:false) in
  let nrst = Netlist.bnot c rst in
  let carry = ref en in
  List.iteri
    (fun i q ->
      let sum = Netlist.bxor c q !carry in
      let d = Netlist.band c nrst sum in
      Netlist.set_latch_data c q ~data:d;
      Netlist.add_output c (Printf.sprintf "count%d" i) q;
      carry := Netlist.band c q !carry)
    bits;
  Netlist.add_output c "carry" !carry;
  c

(* Gray-code counter: q' = binary_to_gray(binary+1) tracked via an
   internal binary counter... implemented directly: a binary counter with
   gray-coded outputs, so the outputs walk a Gray sequence. *)
let gray ?(name = "gray") n =
  let c = Netlist.create (Printf.sprintf "%s%d" name n) in
  let en = Netlist.add_input ~name:"en" c in
  let rst = Netlist.add_input ~name:"rst" c in
  let bits = List.init n (fun i -> Netlist.add_latch ~name:(Printf.sprintf "b%d" i) c ~init:false) in
  let nrst = Netlist.bnot c rst in
  let carry = ref en in
  List.iteri
    (fun i q ->
      let sum = Netlist.bxor c q !carry in
      let d = Netlist.band c nrst sum in
      Netlist.set_latch_data c q ~data:d;
      (* the carry out of the last bit feeds nothing: don't build it *)
      if i < n - 1 then carry := Netlist.band c q !carry)
    bits;
  let arr = Array.of_list bits in
  for i = 0 to n - 1 do
    let g = if i = n - 1 then arr.(i) else Netlist.bxor c arr.(i) arr.(i + 1) in
    Netlist.add_output c (Printf.sprintf "g%d" i) g
  done;
  c

(* Modulo-k counter over ceil(log2 k) bits with one-hot phase outputs:
   states k..2^n-1 are unreachable, which makes this the canonical
   workload for the reachable-don't-care extension. *)
let modulo ?(name = "mod") k =
  let n =
    let rec bits v acc = if v <= 1 then acc else bits ((v + 1) / 2) (acc + 1) in
    max 1 (bits k 0)
  in
  let c = Netlist.create (Printf.sprintf "%s%d" name k) in
  let en = Netlist.add_input ~name:"en" c in
  let bits_l = List.init n (fun i -> Netlist.add_latch ~name:(Printf.sprintf "b%d" i) c ~init:false) in
  let arr = Array.of_list bits_l in
  (* wrap = (count = k-1) *)
  let eq_const value =
    let lits =
      List.init n (fun i ->
          if (value lsr i) land 1 = 1 then arr.(i) else Netlist.bnot c arr.(i))
    in
    Netlist.add_gate c Netlist.And lits
  in
  let wrap = Netlist.band c en (eq_const (k - 1)) in
  let nwrap = Netlist.bnot c wrap in
  let carry = ref en in
  List.iteri
    (fun i q ->
      let sum = Netlist.bxor c q !carry in
      let d = Netlist.band c nwrap sum in
      Netlist.set_latch_data c q ~data:d;
      (* the carry out of the last bit feeds nothing: don't build it *)
      if i < n - 1 then carry := Netlist.band c q !carry)
    bits_l;
  for v = 0 to k - 1 do
    Netlist.add_output c (Printf.sprintf "phase%d" v) (eq_const v)
  done;
  c

(* One-hot ring counter with k phases and an enable: the re-encoded twin
   of [modulo k]. *)
let ring ?(name = "ring") k =
  let c = Netlist.create (Printf.sprintf "%s%d" name k) in
  let en = Netlist.add_input ~name:"en" c in
  let regs =
    List.init k (fun i -> Netlist.add_latch ~name:(Printf.sprintf "r%d" i) c ~init:(i = 0))
  in
  let arr = Array.of_list regs in
  let nen = Netlist.bnot c en in
  for i = 0 to k - 1 do
    let prev = arr.((i + k - 1) mod k) in
    let d = Netlist.bor c (Netlist.band c en prev) (Netlist.band c nen arr.(i)) in
    Netlist.set_latch_data c arr.(i) ~data:d;
    Netlist.add_output c (Printf.sprintf "phase%d" i) arr.(i)
  done;
  c
