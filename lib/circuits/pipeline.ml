(* A small pipelined datapath: registered inputs, an ALU stage and a
   registered output — the kind of structure where retiming moves
   registers across the ALU. *)

(* [width]-bit two-operand ALU pipeline.
   op=00: and, 01: or, 10: xor, 11: add (ripple carry).
   Stage 1 registers operands and op; stage 2 registers the result. *)
let alu ?(name = "alu") width =
  let c = Netlist.create (Printf.sprintf "%s%d" name width) in
  let a = List.init width (fun i -> Netlist.add_input ~name:(Printf.sprintf "a%d" i) c) in
  let b = List.init width (fun i -> Netlist.add_input ~name:(Printf.sprintf "b%d" i) c) in
  let op0 = Netlist.add_input ~name:"op0" c in
  let op1 = Netlist.add_input ~name:"op1" c in
  let reg ?name net =
    let q = Netlist.add_latch ?name c ~init:false in
    Netlist.set_latch_data c q ~data:net;
    q
  in
  let ra = List.map (fun n -> reg n) a in
  let rb = List.map (fun n -> reg n) b in
  let rop0 = reg ~name:"rop0" op0 in
  let rop1 = reg ~name:"rop1" op1 in
  (* ALU over registered operands *)
  let and_r = List.map2 (fun x y -> Netlist.band c x y) ra rb in
  let or_r = List.map2 (fun x y -> Netlist.bor c x y) ra rb in
  let xor_r = List.map2 (fun x y -> Netlist.bxor c x y) ra rb in
  let add_r =
    (* ripple carry with carry-in 0: bit 0 has no carry term, and the
       carry out of the last bit feeds nothing, so neither is built *)
    let carry = ref None in
    List.mapi
      (fun i (x, y) ->
        let xy = Netlist.bxor c x y in
        let s = match !carry with None -> xy | Some cin -> Netlist.bxor c xy cin in
        if i < width - 1 then begin
          let cout =
            match !carry with
            | None -> Netlist.band c x y
            | Some cin -> Netlist.bor c (Netlist.band c x y) (Netlist.band c cin xy)
          in
          carry := Some cout
        end;
        s)
      (List.combine ra rb)
  in
  let result =
    List.map2
      (fun (a_, o_) (x_, d_) ->
        (* mux4: op1 ? (op0 ? add : xor) : (op0 ? or : and) *)
        let hi = Netlist.bmux c ~sel:rop0 ~t1:d_ ~t0:x_ in
        let lo = Netlist.bmux c ~sel:rop0 ~t1:o_ ~t0:a_ in
        Netlist.bmux c ~sel:rop1 ~t1:hi ~t0:lo)
      (List.combine and_r or_r)
      (List.combine xor_r add_r)
  in
  List.iteri
    (fun i r ->
      let q = reg ~name:(Printf.sprintf "rout%d" i) r in
      Netlist.add_output c (Printf.sprintf "res%d" i) q)
    result;
  c
