(* Registered designs exercising the clock-enable / gated-clock / reset
   front end.  Builders return the raw [Netlist.Clocking] design so the
   tests can compare the reference simulator against the lowered form;
   the suite wraps them through [Clocking.lower] into plain netlists. *)

module Clocking = Netlist.Clocking

(* The snippet-2 pair: a clock-enabled register sampled by a plain
   register (spec) against the same front register sampled by a second
   clock-enabled register whose enable is the one-cycle-delayed enable
   (impl).  The two agree because whenever the delayed enable is low the
   front register held its value, so holding the back register equals
   re-sampling it.  Proving the pair needs the mux invariant
   [mux(e', back, forth) = back] on top of plain latch correspondence,
   which makes it the canonical non-inductive-register-pairing test. *)

let ffde_spec ?(name = "ffde_spec") () =
  let d = Clocking.create name in
  let c = Clocking.circuit d in
  let i = Netlist.add_input ~name:"i" c in
  let e = Netlist.add_input ~name:"e" c in
  let back = Clocking.add_reg ~name:"back" ~enable:e d ~init:false in
  Netlist.set_latch_data c back ~data:i;
  let forth = Clocking.add_reg ~name:"forth" d ~init:false in
  Netlist.set_latch_data c forth ~data:back;
  Netlist.add_output c "o" forth;
  d

let ffde_impl ?(name = "ffde_impl") () =
  let d = Clocking.create name in
  let c = Clocking.circuit d in
  let i = Netlist.add_input ~name:"i" c in
  let e = Netlist.add_input ~name:"e" c in
  let back = Clocking.add_reg ~name:"back" ~enable:e d ~init:false in
  Netlist.set_latch_data c back ~data:i;
  (* the delayed enable starts at 1 so the very first sample is taken,
     matching the spec's always-on forth register *)
  let ed = Clocking.add_reg ~name:"ed" d ~init:true in
  Netlist.set_latch_data c ed ~data:e;
  let forth = Clocking.add_reg ~name:"forth" ~enable:ed d ~init:false in
  Netlist.set_latch_data c forth ~data:back;
  Netlist.add_output c "o" forth;
  d

(* Both halves of the pair in one circuit (shared inputs, one output per
   half) so the suite's spec-vs-retimed check also crosses the two
   register disciplines. *)
let ffde_pair ?(name = "ffde") () =
  let d = Clocking.create name in
  let c = Clocking.circuit d in
  let i = Netlist.add_input ~name:"i" c in
  let e = Netlist.add_input ~name:"e" c in
  let back1 = Clocking.add_reg ~name:"back1" ~enable:e d ~init:false in
  Netlist.set_latch_data c back1 ~data:i;
  let forth1 = Clocking.add_reg ~name:"forth1" d ~init:false in
  Netlist.set_latch_data c forth1 ~data:back1;
  let back2 = Clocking.add_reg ~name:"back2" ~enable:e d ~init:false in
  Netlist.set_latch_data c back2 ~data:i;
  let ed = Clocking.add_reg ~name:"ed" d ~init:true in
  Netlist.set_latch_data c ed ~data:e;
  let forth2 = Clocking.add_reg ~name:"forth2" ~enable:ed d ~init:false in
  Netlist.set_latch_data c forth2 ~data:back2;
  Netlist.add_output c "o1" forth1;
  Netlist.add_output c "o2" forth2;
  d

(* Ripple clock divider: stage 0 toggles on the primary clock (under an
   enable input), every later stage toggles on the rising edge of the
   previous stage's output — a chain of derived clocks. *)
let gated_divider ?(name = "gclk_div") ~stages () =
  if stages < 1 then invalid_arg "Clocked.gated_divider: stages < 1";
  let d = Clocking.create (Printf.sprintf "%s%d" name stages) in
  let c = Clocking.circuit d in
  let en = Netlist.add_input ~name:"en" c in
  let t0 = Clocking.add_reg ~name:"t0" ~enable:en d ~init:false in
  Netlist.set_latch_data c t0 ~data:(Netlist.bnot c t0);
  Netlist.add_output c "d0" t0;
  let prev = ref t0 in
  for s = 1 to stages - 1 do
    let t =
      Clocking.add_reg ~name:(Printf.sprintf "t%d" s) ~clock_gate:!prev d ~init:false
    in
    Netlist.set_latch_data c t ~data:(Netlist.bnot c t);
    Netlist.add_output c (Printf.sprintf "d%d" s) t;
    prev := t
  done;
  d

(* The structural twin of [lower (gated_divider ~stages)]: every derived
   clock is modelled by hand as a shadow register plus a rising-edge
   capture mux on the primary clock.  Equivalent to the gated version by
   construction; used to pin down the lowering semantics in tests. *)
let gated_divider_flat ?(name = "gclk_flat") ~stages () =
  if stages < 1 then invalid_arg "Clocked.gated_divider_flat: stages < 1";
  let c = Netlist.create (Printf.sprintf "%s%d" name stages) in
  let en = Netlist.add_input ~name:"en" c in
  let t0 = Netlist.add_latch ~name:"t0" c ~init:false in
  Netlist.set_latch_data c t0 ~data:(Netlist.bxor c t0 en);
  Netlist.add_output c "d0" t0;
  let prev = ref t0 in
  for s = 1 to stages - 1 do
    let past = Netlist.add_latch ~name:(Printf.sprintf "p%d" s) c ~init:false in
    Netlist.set_latch_data c past ~data:!prev;
    let tick = Netlist.band c !prev (Netlist.bnot c past) in
    let t = Netlist.add_latch ~name:(Printf.sprintf "t%d" s) c ~init:false in
    Netlist.set_latch_data c t ~data:(Netlist.bxor c t tick);
    Netlist.add_output c (Printf.sprintf "d%d" s) t;
    prev := t
  done;
  c

(* n-bit up-counter whose registers carry a real reset spec instead of
   the gate-level reset masking of [Counter.binary].  [kind] selects the
   synchronous or asynchronous discipline; the async variant makes every
   fanout see the reset value in the reset cycle itself. *)
let reset_counter ?(name = "rstctr") ~kind ~bits () =
  if bits < 1 then invalid_arg "Clocked.reset_counter: bits < 1";
  let d = Clocking.create (Printf.sprintf "%s%d" name bits) in
  let c = Clocking.circuit d in
  let en = Netlist.add_input ~name:"en" c in
  let rst = Netlist.add_input ~name:"rst" c in
  let regs =
    List.init bits (fun i ->
        Clocking.add_reg
          ~name:(Printf.sprintf "q%d" i)
          ~enable:en ~reset:(kind, rst, false) d ~init:false)
  in
  let carry = ref (Netlist.const1 c) in
  List.iteri
    (fun i q ->
      Netlist.set_latch_data c q ~data:(Netlist.bxor c q !carry);
      Netlist.add_output c (Printf.sprintf "count%d" i) q;
      if i < bits - 1 then carry := Netlist.band c q !carry)
    regs;
  d
