(* The benchmark suite standing in for the retimed/optimized ISCAS'89
   circuits of Table 1 (see DESIGN.md for the substitution rationale):
   shallow controllers, deep counters, register-rich datapaths and
   composite designs, each paired with implementations produced by the
   library's own synthesis pipeline. *)

type entry = { name : string; description : string; build : unit -> Netlist.t }

let suite =
  [ { name = "ctr8"; description = "8-bit binary counter";
      build = (fun () -> Counter.binary 8) };
    { name = "ctr16"; description = "16-bit binary counter";
      build = (fun () -> Counter.binary 16) };
    { name = "ctr32"; description = "32-bit binary counter (s838-style depth)";
      build = (fun () -> Counter.binary 32) };
    { name = "gray12"; description = "12-bit Gray-output counter";
      build = (fun () -> Counter.gray 12) };
    { name = "mod10"; description = "mod-10 phase counter";
      build = (fun () -> Counter.modulo 10) };
    { name = "lfsr16"; description = "16-bit LFSR (taps 15,13,12,10)";
      build = (fun () -> Lfsr.fibonacci ~taps:[ 15; 13; 12; 10 ] 16) };
    { name = "crc16"; description = "serial CRC-16 (0x8005)";
      build = (fun () -> Lfsr.crc ~poly:0x8005 16) };
    { name = "crc32"; description = "serial CRC-32 (0x04C11DB7)";
      build = (fun () -> Lfsr.crc ~poly:0x04C11DB7 32) };
    { name = "shift24"; description = "24-stage shift register with parity";
      build = (fun () -> Lfsr.shift ~probe:[ 3; 11; 23 ] 24) };
    { name = "traffic"; description = "traffic-light controller";
      build = (fun () -> Fsm.traffic ()) };
    { name = "det-bin"; description = "sequence detector (binary encoding)";
      build = (fun () -> Fsm.detector ~onehot:false [ true; false; true; true ]) };
    { name = "alu4"; description = "4-bit two-stage ALU pipeline";
      build = (fun () -> Pipeline.alu 4) };
    { name = "alu8"; description = "8-bit two-stage ALU pipeline";
      build = (fun () -> Pipeline.alu 8) };
    { name = "arb4"; description = "4-channel round-robin arbiter";
      build = (fun () -> Arbiter.round_robin 4) };
    { name = "arb6"; description = "6-channel round-robin arbiter";
      build = (fun () -> Arbiter.round_robin 6) };
    { name = "bus"; description = "bus controller (timer+token+history)";
      build = (fun () -> Composite.bus_controller ~timer_bits:6 ~channels:4 ~history:8 ()) };
    { name = "tx"; description = "transmitter (FSM+shift+CRC)";
      build = (fun () -> Composite.transmitter ~payload_bits:16 ~crc_bits:8 ~poly:0x07 ()) };
    { name = "ffde"; description = "clock-enable pair (delayed-enable resample)";
      build = (fun () -> Netlist.Clocking.lower (Clocked.ffde_pair ())) };
    { name = "gclk-div"; description = "4-stage gated-clock ripple divider";
      build = (fun () -> Netlist.Clocking.lower (Clocked.gated_divider ~stages:4 ())) };
    { name = "rst-sync"; description = "6-bit counter with synchronous reset regs";
      build = (fun () -> Netlist.Clocking.lower (Clocked.reset_counter ~kind:Netlist.Clocking.Sync ~bits:6 ())) };
    { name = "rst-async"; description = "6-bit counter with asynchronous reset regs";
      build = (fun () -> Netlist.Clocking.lower (Clocked.reset_counter ~kind:Netlist.Clocking.Async ~bits:6 ())) };
  ]

let find name = List.find_opt (fun e -> e.name = name) suite

(* Synthesis recipes applied to a specification to obtain the
   implementation under verification:
   - [Retime_only]: backward + forward register moves (the paper's "[14]
     circuits" analogue; expected high signal-correspondence percentage);
   - [Retime_opt]: retiming plus cut rewriting and fraiging (the
     "+ script.rugged" analogue; fewer surviving correspondences). *)
type recipe = Retime_only | Retime_opt

let recipe_name = function Retime_only -> "retime" | Retime_opt -> "retime+opt"

let implementation ~recipe ~seed spec_aig =
  match recipe with
  | Retime_only -> Transform.Retime.backward ~max_steps:1 spec_aig
  | Retime_opt ->
    let a = Transform.Retime.backward ~max_steps:1 spec_aig in
    let a = Transform.Opt.rewrite ~seed ~p:0.6 a in
    let a = Transform.Retime.forward ~max_steps:2 a in
    let a, _ = Transform.Fraig.sweep ~seed a in
    let a = Transform.Opt.rewrite ~seed:(seed + 1) ~p:0.4 a in
    Transform.Opt.latch_sweep a

let aig_of entry =
  let netlist = entry.build () in
  let aig, _ = Aig.of_netlist netlist in
  aig
