(* Control-dominated finite state machines in several encodings — the
   shallow ISCAS'89-style circuits of the suite. *)

(* A traffic-light controller: two roads, a sensor input, timer built from
   a small counter.  States: GREEN_NS (0), YELLOW_NS (1), GREEN_EW (2),
   YELLOW_EW (3); binary-encoded. *)
let traffic ?(name = "traffic") () =
  let c = Netlist.create name in
  let car_ew = Netlist.add_input ~name:"car_ew" c in
  let timer_done = Netlist.add_input ~name:"timer_done" c in
  let s0 = Netlist.add_latch ~name:"s0" c ~init:false in
  let s1 = Netlist.add_latch ~name:"s1" c ~init:false in
  let ns0 = Netlist.bnot c s0 in
  let ns1 = Netlist.bnot c s1 in
  let green_ns = Netlist.band c ns1 ns0 in
  let yellow_ns = Netlist.band c ns1 s0 in
  let green_ew = Netlist.band c s1 ns0 in
  let yellow_ew = Netlist.band c s1 s0 in
  (* transitions: GREEN_NS -> YELLOW_NS when car_ew; YELLOW_NS -> GREEN_EW
     when timer_done; GREEN_EW -> YELLOW_EW when timer_done; YELLOW_EW ->
     GREEN_NS when timer_done *)
  let adv_g_ns = Netlist.band c green_ns car_ew in
  let adv = Netlist.band c (Netlist.bnot c green_ns) timer_done in
  let advance = Netlist.bor c adv_g_ns adv in
  (* next state = state + 1 (mod 4) when advance, else state *)
  let n0 = Netlist.bmux c ~sel:advance ~t1:(Netlist.bnot c s0) ~t0:s0 in
  let n1 = Netlist.bmux c ~sel:advance ~t1:(Netlist.bxor c s1 s0) ~t0:s1 in
  Netlist.set_latch_data c s0 ~data:n0;
  Netlist.set_latch_data c s1 ~data:n1;
  Netlist.add_output c "light_ns_green" green_ns;
  Netlist.add_output c "light_ns_yellow" yellow_ns;
  Netlist.add_output c "light_ew_green" green_ew;
  Netlist.add_output c "light_ew_yellow" yellow_ew;
  c

(* Sequence detector for a given bit pattern over a serial input, Mealy
   output; [onehot] selects the encoding so the same behaviour exists in
   two structurally different versions. *)
let detector ?(name = "detect") ~onehot pattern =
  let k = List.length pattern in
  if k = 0 then invalid_arg "Fsm.detector: empty pattern";
  let c =
    Netlist.create (Printf.sprintf "%s_%s" name (if onehot then "onehot" else "bin"))
  in
  let din = Netlist.add_input ~name:"din" c in
  let ndin = Netlist.bnot c din in
  (* states 0..k: how many pattern bits matched so far; state k emits *)
  let n_states = k + 1 in
  if onehot then begin
    let regs =
      List.init n_states (fun i ->
          Netlist.add_latch ~name:(Printf.sprintf "h%d" i) c ~init:(i = 0))
    in
    let arr = Array.of_list regs in
    (* transition: from state i, on matching bit go to i+1 else restart
       (to 1 if din matches pattern head, else 0) *)
    let head_match = if List.nth pattern 0 then din else ndin in
    let to_state = Array.make n_states [] in
    for i = 0 to k - 1 do
      let want = List.nth pattern i in
      let bit = if want then din else ndin in
      let go = Netlist.band c arr.(i) bit in
      to_state.(i + 1) <- go :: to_state.(i + 1);
      (* mismatch: fall back to 1 when the new bit restarts the pattern,
         else to 0 *)
      let miss = Netlist.band c arr.(i) (Netlist.bnot c bit) in
      if i <> 0 then begin
        to_state.(1) <- Netlist.band c miss head_match :: to_state.(1);
        to_state.(0) <- Netlist.band c miss (Netlist.bnot c head_match) :: to_state.(0)
      end
      else to_state.(0) <- miss :: to_state.(0)
    done;
    (* accepting state behaves like state 0 for the next symbol *)
    to_state.(1) <- Netlist.band c arr.(k) head_match :: to_state.(1);
    to_state.(0) <- Netlist.band c arr.(k) (Netlist.bnot c head_match) :: to_state.(0);
    Array.iteri
      (fun i q ->
        let d =
          match to_state.(i) with
          | [] -> Netlist.const0 c
          | [ x ] -> x
          | xs -> Netlist.add_gate c Netlist.Or xs
        in
        Netlist.set_latch_data c q ~data:d)
      arr;
    Netlist.add_output c "found" arr.(k);
    c
  end
  else begin
    (* binary encoding over ceil(log2 (k+1)) bits, built from the one-hot
       transition structure by encoding each state's next-state value *)
    let nbits =
      let rec go v acc = if v <= 1 then acc else go ((v + 1) / 2) (acc + 1) in
      max 1 (go n_states 0)
    in
    let regs =
      List.init nbits (fun i -> Netlist.add_latch ~name:(Printf.sprintf "e%d" i) c ~init:false)
    in
    let arr = Array.of_list regs in
    let in_state v =
      let lits =
        List.init nbits (fun i ->
            if (v lsr i) land 1 = 1 then arr.(i) else Netlist.bnot c arr.(i))
      in
      Netlist.add_gate c Netlist.And lits
    in
    let head_match = if List.nth pattern 0 then din else ndin in
    (* per-bit sum-of-products over the one-hot transition structure *)
    let bit_terms = Array.make nbits [] in
    let add_transition ~from ~target ~cond =
      for b = 0 to nbits - 1 do
        if (target lsr b) land 1 = 1 then
          bit_terms.(b) <- Netlist.band c (in_state from) cond :: bit_terms.(b)
      done
    in
    for i = 0 to k - 1 do
      let want = List.nth pattern i in
      let bit = if want then din else ndin in
      add_transition ~from:i ~target:(i + 1) ~cond:bit;
      if i <> 0 then begin
        let miss = Netlist.bnot c bit in
        add_transition ~from:i ~target:1 ~cond:(Netlist.band c miss head_match)
      end
    done;
    add_transition ~from:k ~target:1 ~cond:head_match;
    for b = 0 to nbits - 1 do
      let d =
        match bit_terms.(b) with
        | [] -> Netlist.const0 c
        | [ x ] -> x
        | xs -> Netlist.add_gate c Netlist.Or xs
      in
      Netlist.set_latch_data c arr.(b) ~data:d
    done;
    Netlist.add_output c "found" (in_state k);
    c
  end
