(** Parameterized benchmark circuits: the synthetic suite standing in for
    the ISCAS'89 benchmarks of the paper's Table 1 (see DESIGN.md for the
    substitution rationale).  All builders return well-formed netlists
    ([Netlist.validate] holds). *)

(** Counters: deep state spaces and re-encodable phase generators. *)
module Counter : sig
  val binary : ?name:string -> int -> Netlist.t
  (** n-bit binary up-counter with enable and synchronous reset; outputs
      the count bits and a carry — the s838-style deep circuit. *)

  val gray : ?name:string -> int -> Netlist.t
  (** Binary core with Gray-coded outputs. *)

  val modulo : ?name:string -> int -> Netlist.t
  (** Modulo-k counter on ceil(log2 k) bits with one-hot phase outputs;
      states k..2^n-1 are unreachable (don't-care workload). *)

  val ring : ?name:string -> int -> Netlist.t
  (** One-hot ring counter with the same phase outputs as [modulo]. *)
end

(** Shift-register-shaped datapaths. *)
module Lfsr : sig
  val fibonacci : ?name:string -> taps:int list -> int -> Netlist.t
  val crc : ?name:string -> poly:int -> int -> Netlist.t
  val shift : ?name:string -> probe:int list -> int -> Netlist.t
end

(** Control-dominated FSMs. *)
module Fsm : sig
  val traffic : ?name:string -> unit -> Netlist.t
  (** A four-state traffic-light controller. *)

  val detector : ?name:string -> onehot:bool -> bool list -> Netlist.t
  (** Serial pattern detector; [onehot] selects the state encoding, so the
      same behaviour exists in two structurally different versions. *)
end

(** Pipelined datapaths. *)
module Pipeline : sig
  val alu : ?name:string -> int -> Netlist.t
  (** Two-stage pipelined ALU (and/or/xor/add) over [width]-bit operands. *)
end

(** Round-robin arbitration. *)
module Arbiter : sig
  val round_robin : ?name:string -> int -> Netlist.t
end

(** Composite system-level blocks (the larger suite rows). *)
module Composite : sig
  val bus_controller :
    ?name:string -> timer_bits:int -> channels:int -> history:int -> unit -> Netlist.t
  (** Timer + round-robin token + grant logic + history parity alarm. *)

  val transmitter :
    ?name:string -> payload_bits:int -> crc_bits:int -> poly:int -> unit -> Netlist.t
  (** Busy FSM + payload shift register + streaming CRC. *)
end

(** The paper's Fig. 2 running example (reconstruction). *)
module Fig2 : sig
  val specification : unit -> Netlist.t
  val implementation : unit -> Netlist.t

  val pair : unit -> Aig.t * Aig.t
  (** Both sides, already converted to AIGs. *)
end

(** Registered designs with clock enables, derived clocks and resets,
    built on the {!Netlist.Clocking} front end.  The [Clocking.t]
    builders return the raw multi-clock design; feed them through
    [Clocking.lower] for the plain-netlist pipeline. *)
module Clocked : sig
  val ffde_spec : ?name:string -> unit -> Netlist.Clocking.t
  (** Clock-enabled register sampled every cycle by a plain register. *)

  val ffde_impl : ?name:string -> unit -> Netlist.Clocking.t
  (** The same front register sampled by a second clock-enabled register
      whose enable is the one-cycle-delayed enable (initially on).
      Equivalent to {!ffde_spec}, but only via a mux invariant — plain
      register pairing is not inductive for this pair. *)

  val ffde_pair : ?name:string -> unit -> Netlist.Clocking.t
  (** Both halves in one circuit with shared inputs (outputs [o1]/[o2]). *)

  val gated_divider : ?name:string -> stages:int -> unit -> Netlist.Clocking.t
  (** Ripple clock divider: each stage toggles on the rising edge of the
      previous stage — a chain of derived clocks. *)

  val gated_divider_flat : ?name:string -> stages:int -> unit -> Netlist.t
  (** Hand-built structural twin of [lower (gated_divider ~stages)]:
      shadow registers plus rising-edge capture muxes on the primary
      clock. *)

  val reset_counter :
    ?name:string -> kind:Netlist.Clocking.reset_kind -> bits:int -> unit -> Netlist.Clocking.t
  (** Up-counter with enable whose registers carry a real sync/async
      reset spec. *)
end

(** The Table 1 suite and the synthesis recipes that produce the
    implementations under verification. *)
module Suite : sig
  type entry = { name : string; description : string; build : unit -> Netlist.t }

  val suite : entry list
  val find : string -> entry option

  type recipe = Retime_only | Retime_opt

  val recipe_name : recipe -> string

  val implementation : recipe:recipe -> seed:int -> Aig.t -> Aig.t
  (** Apply the recipe to a specification: [Retime_only] moves registers,
      [Retime_opt] additionally rewrites, fraigs and sweeps. *)

  val aig_of : entry -> Aig.t
end
