(* Public API of the benchmark circuit library. *)

module Counter = Counter
module Lfsr = Lfsr
module Fsm = Fsm
module Pipeline = Pipeline
module Arbiter = Arbiter
module Composite = Composite
module Fig2 = Fig2
module Clocked = Clocked
module Suite = Suite
