(* DIMACS CNF reading/writing, for interop and for test fixtures. *)

type cnf = { nvars : int; clauses : int list list }
(* clauses hold DIMACS integers (1-based, sign = polarity) *)

let parse_string text =
  let nvars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ "p"; "cnf"; nv; _nc ] -> nvars := int_of_string nv
        | _ -> failwith "Dimacs.parse: malformed problem line"
      end
      else
        String.split_on_char ' ' line
        |> List.filter (fun s -> s <> "")
        |> List.iter (fun tok ->
               let i = int_of_string tok in
               if i = 0 then begin
                 clauses := List.rev !current :: !clauses;
                 current := []
               end
               else begin
                 nvars := max !nvars (abs i);
                 current := i :: !current
               end))
    lines;
  if !current <> [] then clauses := List.rev !current :: !clauses;
  { nvars = !nvars; clauses = List.rev !clauses }

let to_string { nvars; clauses } =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" nvars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let load_into solver { nvars; clauses } =
  Solver.ensure_vars solver nvars;
  List.iter
    (fun clause -> Solver.add_clause solver (List.map Lit.of_int clause))
    clauses

(* --- DRAT traces ---------------------------------------------------------- *)

(* A proof trace in (textual) DRAT format: clause additions, each required
   to be RUP with respect to the clauses present when it is introduced,
   and advisory clause deletions.  Literals are DIMACS integers. *)

type drat_step = Add of int list | Delete of int list

let drat_to_string steps =
  let buf = Buffer.create 256 in
  List.iter
    (fun step ->
      let lits =
        match step with
        | Add lits -> lits
        | Delete lits ->
          Buffer.add_string buf "d ";
          lits
      in
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) lits;
      Buffer.add_string buf "0\n")
    steps;
  Buffer.contents buf

let drat_parse_string text =
  let steps = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else begin
        let deletion = String.length line >= 1 && line.[0] = 'd' in
        let body = if deletion then String.sub line 1 (String.length line - 1) else line in
        let lits =
          String.split_on_char ' ' body
          |> List.filter (fun s -> s <> "")
          |> List.map (fun tok ->
                 match int_of_string_opt tok with
                 | Some i -> i
                 | None -> failwith ("Dimacs.drat_parse: bad literal " ^ tok))
        in
        match List.rev lits with
        | 0 :: rev_lits ->
          let lits = List.rev rev_lits in
          steps := (if deletion then Delete lits else Add lits) :: !steps
        | _ -> failwith "Dimacs.drat_parse: missing 0 terminator"
      end)
    (String.split_on_char '\n' text);
  List.rev !steps

(* --- RUP replay checker --------------------------------------------------- *)

(* An independent unit-propagation engine over DIMACS clauses, sharing no
   code with the CDCL solver: occurrence lists, a top-level trail, and a
   scratch mark for reverse-unit-propagation probes.  [replay] verifies
   every [Add] of a trace against the clauses accumulated so far; [holds]
   then decides whether a clause is forced by unit propagation — the
   per-obligation conclusion the certificate checker needs. *)
module Rup = struct
  type rclause = { rlits : int array; mutable deleted : bool }

  type t = {
    mutable nv : int; (* highest variable seen *)
    mutable assign : int array; (* 1-based var -> 0 unknown / 1 true / -1 false *)
    mutable occ : rclause list array; (* clauses containing the indexed literal *)
    mutable trail : int array;
    mutable trail_size : int;
    mutable qhead : int;
    mutable contra : bool; (* top-level conflict: everything is implied *)
    index : (int list, rclause list ref) Hashtbl.t; (* sorted lits -> clauses *)
  }

  let create () =
    {
      nv = 0;
      assign = Array.make 4 0;
      occ = Array.make 8 [];
      trail = Array.make 4 0;
      trail_size = 0;
      qhead = 0;
      contra = false;
      index = Hashtbl.create 64;
    }

  let grow a n dummy =
    if Array.length a >= n then a
    else begin
      let b = Array.make (max n (2 * Array.length a)) dummy in
      Array.blit a 0 b 0 (Array.length a);
      b
    end

  let ensure_var t v =
    if v > t.nv then begin
      t.nv <- v;
      t.assign <- grow t.assign (v + 1) 0;
      t.occ <- grow t.occ (2 * (v + 1)) [];
      t.trail <- grow t.trail (v + 1) 0
    end

  let lidx l = (2 * abs l) + if l < 0 then 1 else 0
  let value t l = if l > 0 then t.assign.(l) else - t.assign.(-l)

  let assert_lit t l =
    (* caller has checked [l] is not false *)
    t.assign.(abs l) <- (if l > 0 then 1 else -1);
    t.trail.(t.trail_size) <- l;
    t.trail_size <- t.trail_size + 1

  (* Status of a clause under the current assignment. *)
  let scan t c =
    let sat = ref false and n_un = ref 0 and unassigned = ref 0 in
    Array.iter
      (fun l ->
        match value t l with
        | 1 -> sat := true
        | 0 ->
          incr n_un;
          unassigned := l
        | _ -> ())
      c.rlits;
    if !sat then `Sat else if !n_un = 0 then `Conflict else if !n_un = 1 then `Unit !unassigned else `Open

  (* Propagate to fixpoint; [true] iff a conflict was found. *)
  let propagate t =
    let conflict = ref false in
    while (not !conflict) && t.qhead < t.trail_size do
      let p = t.trail.(t.qhead) in
      t.qhead <- t.qhead + 1;
      (* every clause containing ~p may have become unit or conflicting *)
      let rec visit = function
        | [] -> ()
        | c :: rest ->
          if not c.deleted then begin
            match scan t c with
            | `Conflict -> conflict := true
            | `Unit l -> assert_lit t l
            | `Sat | `Open -> ()
          end;
          if not !conflict then visit rest
      in
      visit t.occ.(lidx (-p))
    done;
    !conflict

  let undo_to t mark =
    for i = t.trail_size - 1 downto mark do
      t.assign.(abs t.trail.(i)) <- 0
    done;
    t.trail_size <- mark;
    t.qhead <- mark

  (* Is clause [lits] forced by unit propagation from the current set?
     Assert the negation of every literal and propagate; leaves the
     top-level state untouched. *)
  let holds t lits =
    t.contra
    ||
    (* a variable the clause set never mentioned has no occurrences:
       asserting its negation propagates nothing, so the probe still
       works — but the arrays must cover it *)
    (List.iter (fun l -> ensure_var t (abs l)) lits;
     let mark = t.trail_size in
    let rec install = function
      | [] -> false (* no conflict while installing *)
      | l :: rest -> (
        match value t l with
        | 1 -> true (* a literal is already forced true: clause implied *)
        | -1 -> install rest
        | _ ->
          assert_lit t (-l);
          install rest)
    in
    let confl = install lits || propagate t in
    undo_to t mark;
    confl)

  (* Install [lits] as a clause of the current set (for inputs, and for
     trace additions after [holds] has justified them). *)
  let add t lits =
    List.iter (fun l -> ensure_var t (abs l)) lits;
    if not t.contra then begin
      let lits = List.sort_uniq compare lits in
      if List.exists (fun l -> List.mem (-l) lits) lits then () (* tautology *)
      else begin
        let c = { rlits = Array.of_list lits; deleted = false } in
        (match Hashtbl.find_opt t.index lits with
        | Some r -> r := c :: !r
        | None -> Hashtbl.add t.index lits (ref [ c ]));
        List.iter (fun l -> t.occ.(lidx l) <- c :: t.occ.(lidx l)) lits;
        match scan t c with
        | `Conflict -> t.contra <- true
        | `Unit l ->
          assert_lit t l;
          if propagate t then t.contra <- true
        | `Sat | `Open -> ()
      end
    end

  let delete t lits =
    let lits = List.sort_uniq compare lits in
    match Hashtbl.find_opt t.index lits with
    | Some r -> (
      match List.find_opt (fun c -> not c.deleted) !r with
      | Some c -> c.deleted <- true
      | None -> ())
    | None -> () (* advisory: deleting an absent clause is a no-op *)

  let add_input t lits = add t lits

  (* Verify and install every step of [trace].  [Error] identifies the
     first addition that is not RUP. *)
  let replay t trace =
    let rec go i = function
      | [] -> Ok ()
      | Add lits :: rest ->
        if holds t lits then begin
          add t lits;
          go (i + 1) rest
        end
        else
          Error
            (Printf.sprintf "trace step %d: clause {%s} is not RUP" i
               (String.concat " " (List.map string_of_int lits)))
      | Delete lits :: rest ->
        delete t lits;
        go (i + 1) rest
    in
    go 0 trace
end
