(* Public API of the SAT library; see sat.mli. *)

module Lit = Lit

type t = Solver.t
type result = Solver.result = Sat | Unsat
type proof_step = Solver.proof_step = Step_add of Lit.t list | Step_delete of Lit.t list

let create = Solver.create
let new_var = Solver.new_var
let ensure_vars = Solver.ensure_vars
let add_clause = Solver.add_clause
let solve = Solver.solve
let solve_under_assumptions = Solver.solve_under_assumptions
let failed_assumptions = Solver.failed_assumptions
let release = Solver.release
let export_learnts = Solver.export_learnts
let import_clause = Solver.import_clause
let set_proof_logger = Solver.set_proof_logger
let set_input_logger = Solver.set_input_logger
let value = Solver.model_value

let value_lit s l =
  let v = Solver.model_value s (Lit.var l) in
  if Lit.sign l then v else not v

let model = Solver.model
let is_consistent = Solver.is_consistent
let num_vars = Solver.num_vars
let num_clauses = Solver.num_clauses
let num_learnts = Solver.num_learnts
let num_conflicts = Solver.num_conflicts
let num_decisions = Solver.num_decisions
let num_propagations = Solver.num_propagations
let num_restarts = Solver.num_restarts

module Dimacs = Dimacs
