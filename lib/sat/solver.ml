(* A CDCL SAT solver: two-watched-literal propagation, first-UIP conflict
   analysis, VSIDS decision heuristic with an indexed binary heap, phase
   saving, Luby restarts and activity-based learned-clause reduction.

   This is the "combinational verification technique based on the
   introduction of extra variables representing intermediate signals" that
   the paper names as future work; the scorr engine can use it instead of
   BDDs for the refinement checks.

   Invariant relied on by the parallel sweep scheduler: ALL mutable
   state is confined to the record [t] below — no module-level
   references, caches or scratch buffers — so independent instances can
   run concurrently in separate domains without synchronization.  Keep
   it that way: any new scratch state belongs in [t]. *)

type clause = {
  mutable lits : int array;
  learned : bool;
  mutable act : float;
  mutable lbd : int; (* literal block distance at learn time; 0 for problem clauses *)
  act_tag : int; (* activation variable guarding this clause, or -1 *)
}

type result = Sat | Unsat

type proof_step = Step_add of int list | Step_delete of int list
(* DRAT-style trace events over packed literals: learned-clause additions
   (including the final clause an assumption-refuted solve implies) and
   clause deletions (learned-clause reduction, activation release). *)

(* lbool encoding: 0 = false, 1 = true, -1 = unknown *)
let l_undef = -1

type t = {
  mutable nvars : int;
  mutable clauses : clause list;
  mutable learnts : clause list;
  mutable n_learnts : int;
  mutable watches : clause list array; (* indexed by literal *)
  mutable assign : int array; (* per var: lbool *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable polarity : bool array; (* saved phase *)
  mutable activity : float array;
  mutable trail : int array; (* literals in assignment order *)
  mutable trail_size : int;
  mutable trail_lim : int array; (* trail size at each decision level *)
  mutable n_levels : int;
  mutable qhead : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable ok : bool;
  mutable seen : bool array; (* scratch for analyze *)
  (* VSIDS heap: heap of vars ordered by activity, with position index *)
  mutable heap : int array;
  mutable heap_size : int;
  mutable heap_pos : int array; (* -1 when not in heap *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable n_clauses : int; (* |clauses|, maintained so the hot path is O(1) *)
  mutable failed : int list;
      (* after an assumption-refuted solve: the failed-assumption core, a
         subset of the assumptions whose conjunction the clauses refute;
         [] after a globally unsat or Sat answer *)
  mutable proof : (proof_step -> unit) option;
  mutable on_input : (int list -> unit) option;
      (* observes every problem clause exactly as given to [add_clause]
         (activation guard included, before normalization) — the proof
         checker reconstructs the raw CNF through this *)
}

let create () =
  {
    nvars = 0;
    clauses = [];
    learnts = [];
    n_learnts = 0;
    watches = Array.make 2 [];
    assign = Array.make 1 l_undef;
    level = Array.make 1 0;
    reason = Array.make 1 None;
    polarity = Array.make 1 false;
    activity = Array.make 1 0.0;
    trail = Array.make 1 0;
    trail_size = 0;
    trail_lim = Array.make 16 0;
    n_levels = 0;
    qhead = 0;
    var_inc = 1.0;
    cla_inc = 1.0;
    ok = true;
    seen = Array.make 1 false;
    heap = Array.make 1 0;
    heap_size = 0;
    heap_pos = Array.make 1 (-1);
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    n_clauses = 0;
    failed = [];
    proof = None;
    on_input = None;
  }

let set_proof_logger s f = s.proof <- f
let set_input_logger s f = s.on_input <- f

let log_proof s step = match s.proof with Some f -> f step | None -> ()

let grow_array a n dummy =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) dummy in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

(* --- VSIDS heap -------------------------------------------------------- *)

let heap_less s v w = s.activity.(v) > s.activity.(w)

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less s s.heap.(i) s.heap.(p) then begin
      let tmp = s.heap.(i) in
      s.heap.(i) <- s.heap.(p);
      s.heap.(p) <- tmp;
      s.heap_pos.(s.heap.(i)) <- i;
      s.heap_pos.(s.heap.(p)) <- p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_size && heap_less s s.heap.(l) s.heap.(!best) then best := l;
  if r < s.heap_size && heap_less s s.heap.(r) s.heap.(!best) then best := r;
  if !best <> i then begin
    let tmp = s.heap.(i) in
    s.heap.(i) <- s.heap.(!best);
    s.heap.(!best) <- tmp;
    s.heap_pos.(s.heap.(i)) <- i;
    s.heap_pos.(s.heap.(!best)) <- !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    s.heap <- grow_array s.heap (s.heap_size + 1) 0;
    s.heap.(s.heap_size) <- v;
    s.heap_pos.(v) <- s.heap_size;
    s.heap_size <- s.heap_size + 1;
    heap_up s s.heap_pos.(v)
  end

let heap_pop s =
  let v = s.heap.(0) in
  s.heap_size <- s.heap_size - 1;
  s.heap.(0) <- s.heap.(s.heap_size);
  s.heap_pos.(s.heap.(0)) <- 0;
  s.heap_pos.(v) <- -1;
  if s.heap_size > 0 then heap_down s 0;
  v

(* --- variables --------------------------------------------------------- *)

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  s.watches <- grow_array s.watches (2 * s.nvars) [];
  s.assign <- grow_array s.assign s.nvars l_undef;
  s.level <- grow_array s.level s.nvars 0;
  s.reason <- grow_array s.reason s.nvars None;
  s.polarity <- grow_array s.polarity s.nvars false;
  s.activity <- grow_array s.activity s.nvars 0.0;
  s.trail <- grow_array s.trail s.nvars 0;
  s.seen <- grow_array s.seen s.nvars false;
  s.heap_pos <- grow_array s.heap_pos s.nvars (-1);
  s.assign.(v) <- l_undef;
  s.reason.(v) <- None;
  s.polarity.(v) <- false;
  s.activity.(v) <- 0.0;
  s.heap_pos.(v) <- -1;
  heap_insert s v;
  v

let ensure_vars s n =
  while s.nvars < n do
    ignore (new_var s)
  done

let value_var s v = s.assign.(v)

let value_lit s l =
  let a = s.assign.(Lit.var l) in
  if a = l_undef then l_undef else a lxor (l land 1)

(* --- activities -------------------------------------------------------- *)

let var_decay = 1.0 /. 0.95
let cla_decay = 1.0 /. 0.999

let bump_var s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let bump_clause s c =
  c.act <- c.act +. s.cla_inc;
  if c.act > 1e20 then begin
    List.iter (fun c -> c.act <- c.act *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

(* --- assignment / trail ------------------------------------------------ *)

let decision_level s = s.n_levels

let enqueue s l reason =
  let v = Lit.var l in
  s.assign.(v) <- (if Lit.sign l then 1 else 0);
  s.polarity.(v) <- Lit.sign l;
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.trail.(s.trail_size) <- l;
  s.trail_size <- s.trail_size + 1

let new_decision_level s =
  s.trail_lim <- grow_array s.trail_lim (s.n_levels + 1) 0;
  s.trail_lim.(s.n_levels) <- s.trail_size;
  s.n_levels <- s.n_levels + 1

let cancel_until s lvl =
  if decision_level s > lvl then begin
    for i = s.trail_size - 1 downto s.trail_lim.(lvl) do
      let v = Lit.var s.trail.(i) in
      s.assign.(v) <- l_undef;
      s.reason.(v) <- None;
      heap_insert s v
    done;
    s.trail_size <- s.trail_lim.(lvl);
    s.qhead <- s.trail_size;
    s.n_levels <- lvl
  end

(* --- watched literals --------------------------------------------------- *)

let attach s c =
  s.watches.(Lit.negate c.lits.(0)) <- c :: s.watches.(Lit.negate c.lits.(0));
  s.watches.(Lit.negate c.lits.(1)) <- c :: s.watches.(Lit.negate c.lits.(1))

(* Propagate all enqueued facts; returns the conflicting clause if any.
   The watch list of a true literal [p] contains clauses in which [~p] is
   watched (we index watches by the literal whose truth triggers a visit). *)
let propagate s =
  let conflict = ref None in
  while !conflict = None && s.qhead < s.trail_size do
    let p = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let ws = s.watches.(p) in
    s.watches.(p) <- [];
    let rec visit = function
      | [] -> ()
      | c :: rest -> (
        let false_lit = Lit.negate p in
        if c.lits.(0) = false_lit then begin
          c.lits.(0) <- c.lits.(1);
          c.lits.(1) <- false_lit
        end;
        if value_lit s c.lits.(0) = 1 then begin
          (* clause already satisfied: keep the watch *)
          s.watches.(p) <- c :: s.watches.(p);
          visit rest
        end
        else begin
          (* look for a new literal to watch *)
          let n = Array.length c.lits in
          let rec find i =
            if i >= n then -1 else if value_lit s c.lits.(i) <> 0 then i else find (i + 1)
          in
          let i = find 2 in
          if i >= 0 then begin
            c.lits.(1) <- c.lits.(i);
            c.lits.(i) <- false_lit;
            s.watches.(Lit.negate c.lits.(1)) <- c :: s.watches.(Lit.negate c.lits.(1));
            visit rest
          end
          else begin
            (* unit or conflicting *)
            s.watches.(p) <- c :: s.watches.(p);
            if value_lit s c.lits.(0) = 0 then begin
              (* conflict: restore remaining watches and stop *)
              s.qhead <- s.trail_size;
              conflict := Some c;
              List.iter (fun c -> s.watches.(p) <- c :: s.watches.(p)) rest
            end
            else begin
              enqueue s c.lits.(0) (Some c);
              visit rest
            end
          end
        end)
    in
    visit ws
  done;
  !conflict

(* --- clause addition ---------------------------------------------------- *)

exception Trivially_sat

(* [act >= 0] guards the clause with activation variable [act]: the stored
   clause is [~act \/ lits] and {!release}[ act] retires it.  Activation
   variables must only ever be assumed positively (never asserted by a
   clause), so no level-0 fact can depend on a guarded clause. *)
let add_clause ?(act = -1) s lits =
  if s.ok then begin
    let lits = if act >= 0 then Lit.neg act :: lits else lits in
    (match s.on_input with Some f -> f lits | None -> ());
    if decision_level s > 0 then cancel_until s 0;
    (* normalize: sort, drop duplicates, detect tautology and false lits *)
    let lits = List.sort_uniq compare lits in
    try
      let lits =
        List.filter
          (fun l ->
            if List.mem (Lit.negate l) lits then raise Trivially_sat;
            match value_lit s l with
            | 1 -> raise Trivially_sat
            | 0 -> false
            | _ -> true)
          lits
      in
      match lits with
      | [] -> s.ok <- false
      | [ l ] ->
        enqueue s l None;
        if propagate s <> None then s.ok <- false
      | _ ->
        let c = { lits = Array.of_list lits; learned = false; act = 0.0; lbd = 0; act_tag = act } in
        s.clauses <- c :: s.clauses;
        s.n_clauses <- s.n_clauses + 1;
        attach s c
    with Trivially_sat -> ()
  end

(* --- conflict analysis (first UIP) -------------------------------------- *)

let analyze s confl =
  let learnt = ref [] in
  let path_c = ref 0 in
  let p = ref (-1) in
  let index = ref (s.trail_size - 1) in
  let confl = ref (Some confl) in
  let continue = ref true in
  while !continue do
    let c = match !confl with Some c -> c | None -> assert false in
    if c.learned then bump_clause s c;
    let start = if !p = -1 then 0 else 1 in
    for i = start to Array.length c.lits - 1 do
      let q = c.lits.(i) in
      let v = Lit.var q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        bump_var s v;
        if s.level.(v) >= decision_level s then incr path_c
        else learnt := q :: !learnt
      end
    done;
    (* next literal to expand: most recent seen literal on the trail *)
    while not s.seen.(Lit.var s.trail.(!index)) do
      decr index
    done;
    p := s.trail.(!index);
    decr index;
    let v = Lit.var !p in
    s.seen.(v) <- false;
    confl := s.reason.(v);
    decr path_c;
    if !path_c <= 0 then continue := false
  done;
  let learnt = Lit.negate !p :: !learnt in
  (* clear seen flags *)
  List.iter (fun q -> s.seen.(Lit.var q) <- false) learnt;
  (* backtrack level: highest level among the non-asserting literals *)
  let bt_level =
    List.fold_left
      (fun acc q -> if Lit.negate q = !p then acc else max acc s.level.(Lit.var q))
      0 learnt
  in
  (Array.of_list learnt, bt_level)

(* Distinct decision levels among the literals — measured before
   backtracking, while the levels that produced the clause are current. *)
let compute_lbd s lits =
  let levels = ref [] in
  Array.iter
    (fun q ->
      let lv = s.level.(Lit.var q) in
      if lv > 0 && not (List.mem lv !levels) then levels := lv :: !levels)
    lits;
  List.length !levels

let record_learnt s lits bt_level =
  let lbd = compute_lbd s lits in
  log_proof s (Step_add (Array.to_list lits));
  cancel_until s bt_level;
  if Array.length lits = 1 then begin
    enqueue s lits.(0) None
  end
  else begin
    (* ensure lits.(1) is at the backtrack level so watches stay valid *)
    let hi = ref 1 in
    for i = 2 to Array.length lits - 1 do
      if s.level.(Lit.var lits.(i)) > s.level.(Lit.var lits.(!hi)) then hi := i
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!hi);
    lits.(!hi) <- tmp;
    let c = { lits; learned = true; act = 0.0; lbd; act_tag = -1 } in
    bump_clause s c;
    s.learnts <- c :: s.learnts;
    s.n_learnts <- s.n_learnts + 1;
    attach s c;
    enqueue s lits.(0) (Some c)
  end

(* --- learned clause reduction ------------------------------------------- *)

let locked s c =
  Array.length c.lits > 0
  &&
  let v = Lit.var c.lits.(0) in
  match s.reason.(v) with Some r -> r == c && s.assign.(v) <> l_undef | None -> false

let detach s c =
  let remove l = s.watches.(l) <- List.filter (fun c' -> c' != c) s.watches.(l) in
  remove (Lit.negate c.lits.(0));
  remove (Lit.negate c.lits.(1))

let reduce_db s =
  let sorted = List.sort (fun a b -> compare a.act b.act) s.learnts in
  let n = List.length sorted in
  let to_drop = n / 2 in
  let dropped = ref 0 in
  let keep =
    List.filter
      (fun c ->
        if !dropped < to_drop && (not (locked s c)) && Array.length c.lits > 2 then begin
          detach s c;
          log_proof s (Step_delete (Array.to_list c.lits));
          incr dropped;
          false
        end
        else true)
      sorted
  in
  s.learnts <- keep;
  s.n_learnts <- List.length keep

(* --- activation release -------------------------------------------------- *)

(* Retire activation variable [g]: the guarded problem clauses and every
   learnt mentioning [~g] are permanently satisfied once [~g] holds, so
   they are detached and dropped (activation-aware garbage collection)
   before the retiring unit is asserted. *)
let release s g =
  if s.ok then begin
    cancel_until s 0;
    let ng = Lit.neg g in
    let drop c =
      detach s c;
      log_proof s (Step_delete (Array.to_list c.lits));
      (* a dropped clause may linger as the reason of a level-0 fact;
         level-0 reasons are never dereferenced, but clear it anyway *)
      if Array.length c.lits > 0 then begin
        let v = Lit.var c.lits.(0) in
        match s.reason.(v) with Some r when r == c -> s.reason.(v) <- None | _ -> ()
      end
    in
    s.clauses <-
      List.filter
        (fun c ->
          if c.act_tag = g then begin
            drop c;
            s.n_clauses <- s.n_clauses - 1;
            false
          end
          else true)
        s.clauses;
    s.learnts <-
      List.filter
        (fun c ->
          if Array.exists (fun l -> l = ng) c.lits then begin
            drop c;
            s.n_learnts <- s.n_learnts - 1;
            false
          end
          else true)
        s.learnts;
    add_clause s [ ng ]
  end

(* --- search -------------------------------------------------------------- *)

(* Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let luby y x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  y ** float_of_int !seq

let pick_branch_var s =
  let rec go () =
    if s.heap_size = 0 then -1
    else
      let v = heap_pop s in
      if s.assign.(v) = l_undef then v else go ()
  in
  go ()

exception Found of result

(* Failed-assumption core: the assumption [a] is falsified by unit
   propagation from the clauses and the assumptions installed so far.
   Walk the implication graph backwards from [a]; every decision reached
   is an assumption (assumptions are installed before any branch
   decision), and together with [a] they form a subset of the assumptions
   whose conjunction the clauses already refute. *)
let analyze_final s a =
  s.failed <- [ a ];
  if decision_level s > 0 then begin
    s.seen.(Lit.var a) <- true;
    for i = s.trail_size - 1 downto s.trail_lim.(0) do
      let v = Lit.var s.trail.(i) in
      if s.seen.(v) then begin
        (match s.reason.(v) with
        | None -> s.failed <- s.trail.(i) :: s.failed
        | Some c ->
          for j = 1 to Array.length c.lits - 1 do
            let u = Lit.var c.lits.(j) in
            if s.level.(u) > 0 then s.seen.(u) <- true
          done);
        s.seen.(v) <- false
      end
    done;
    s.seen.(Lit.var a) <- false
  end

(* Search until a restart is due ([budget] conflicts), Sat, or Unsat.
   [assumptions] are re-installed as the first decisions after every
   restart or deep backjump. *)
let search s assumptions budget =
  let conflicts_here = ref 0 in
  try
    while true do
      match propagate s with
      | Some confl ->
        s.conflicts <- s.conflicts + 1;
        incr conflicts_here;
        if decision_level s = 0 then begin
          (* a contradiction at level 0 is independent of assumptions and
             decisions: the instance itself is unsatisfiable, permanently *)
          s.ok <- false;
          s.failed <- [];
          raise (Found Unsat)
        end;
        let learnt, bt = analyze s confl in
        record_learnt s learnt bt;
        s.var_inc <- s.var_inc *. var_decay;
        s.cla_inc <- s.cla_inc *. cla_decay
      | None ->
        if !conflicts_here >= budget then begin
          cancel_until s 0;
          raise Exit
        end;
        if s.n_learnts > 4000 + (2 * s.n_clauses) then reduce_db s;
        (* install pending assumptions as decisions *)
        if decision_level s < List.length assumptions then begin
          let a = List.nth assumptions (decision_level s) in
          match value_lit s a with
          | 0 ->
            (* assumption contradicted: extract the failed core *)
            analyze_final s a;
            raise (Found Unsat)
          | 1 -> new_decision_level s (* dummy level, already true *)
          | _ ->
            new_decision_level s;
            enqueue s a None
        end
        else begin
          let v = pick_branch_var s in
          if v < 0 then raise (Found Sat)
          else begin
            s.decisions <- s.decisions + 1;
            new_decision_level s;
            enqueue s (Lit.make v s.polarity.(v)) None
          end
        end
    done;
    assert false
  with
  | Exit -> None
  | Found r -> Some r

let solve ?(assumptions = []) s =
  s.failed <- [];
  if not s.ok then Unsat
  else begin
    cancel_until s 0;
    match propagate s with
    | Some _ ->
      s.ok <- false;
      log_proof s (Step_add []);
      Unsat
    | None ->
      let restart = ref 0 in
      let rec loop () =
        let budget = int_of_float (100.0 *. luby 2.0 !restart) in
        if !restart > 0 then s.restarts <- s.restarts + 1;
        incr restart;
        match search s assumptions budget with
        | Some r -> r
        | None -> loop ()
      in
      let r = loop () in
      (* keep the model readable after Sat; always reusable afterwards *)
      if r = Unsat then begin
        cancel_until s 0;
        (* the refutation implies the negation of the failed core (the
           empty clause when the instance is unsatisfiable outright) *)
        log_proof s (Step_add (List.map Lit.negate s.failed))
      end;
      r
  end

let solve_under_assumptions s assumptions = solve ~assumptions s
let failed_assumptions s = s.failed

let model_value s v =
  match s.assign.(v) with
  | 1 -> true
  | 0 -> false
  | _ -> false (* unconstrained variable: any value works *)

let model s = Array.init s.nvars (fun v -> model_value s v)

let after_solve_cleanup s = cancel_until s 0

(* --- learned-clause exchange --------------------------------------------- *)

(* Learnt clauses confined to variables below [limit_var] were derived from
   clauses over those variables alone: selector and activation variables
   occur only negatively in the problem clauses, so resolution can never
   eliminate them — any derivation that touches a guarded clause leaves its
   guard literal in the resolvent.  Such clauses are consequences of the
   shared base encoding and are sound to import into any solver holding an
   identical copy of it. *)
let export_learnts s ~limit_var ~max_size ~max_lbd =
  List.filter_map
    (fun c ->
      if
        Array.length c.lits <= max_size
        && c.lbd <= max_lbd
        && Array.for_all (fun l -> Lit.var l < limit_var) c.lits
      then Some (Array.to_list c.lits)
      else None)
    s.learnts

(* Install a clause known to be entailed (an import from a sibling solver):
   stored as a learnt so reduction can drop it again. *)
let import_clause s lits =
  if s.ok then begin
    if decision_level s > 0 then cancel_until s 0;
    List.iter (fun l -> if Lit.var l >= s.nvars then ensure_vars s (Lit.var l + 1)) lits;
    let lits = List.sort_uniq compare lits in
    try
      let lits =
        List.filter
          (fun l ->
            if List.mem (Lit.negate l) lits then raise Trivially_sat;
            match value_lit s l with
            | 1 -> raise Trivially_sat
            | 0 -> false
            | _ -> true)
          lits
      in
      match lits with
      | [] -> s.ok <- false
      | [ l ] ->
        log_proof s (Step_add [ l ]);
        enqueue s l None;
        if propagate s <> None then s.ok <- false
      | _ ->
        log_proof s (Step_add lits);
        let c = { lits = Array.of_list lits; learned = true; act = 0.0; lbd = List.length lits; act_tag = -1 } in
        s.learnts <- c :: s.learnts;
        s.n_learnts <- s.n_learnts + 1;
        attach s c
    with Trivially_sat -> ()
  end

let num_vars s = s.nvars
let num_clauses s = s.n_clauses
let num_learnts s = s.n_learnts
let num_conflicts s = s.conflicts
let num_decisions s = s.decisions
let num_propagations s = s.propagations
let num_restarts s = s.restarts
let is_consistent s = s.ok
