(** A CDCL SAT solver.

    Two-watched-literal propagation, first-UIP clause learning, VSIDS
    branching, phase saving, Luby restarts and learned-clause reduction —
    the combinational engine "based on the introduction of extra variables
    representing intermediate signals" that the paper lists as future work.

    Typical use: create a solver, allocate variables, add clauses, then call
    {!solve} (optionally under assumptions, which enables incremental
    equivalence queries without copying the clause database).

    Domain safety: the solver keeps {e no} global mutable state — every
    clause, watch list, trail and heuristic counter lives inside its
    {!t} — so distinct instances may be driven concurrently from
    distinct domains (the parallel sweep scheduler relies on this).  A
    single instance is not thread-safe and must stay confined to one
    domain at a time. *)

(** Literals packed as ints ([2v] positive, [2v+1] negative). *)
module Lit : sig
  type t = int

  val make : int -> bool -> t
  (** [make v sign]: positive literal of [v] when [sign]. *)

  val pos : int -> t
  val neg : int -> t

  val var : t -> int
  val negate : t -> t

  val sign : t -> bool
  (** [true] iff the literal is positive. *)

  val to_int : t -> int
  (** DIMACS integer (1-based, sign = polarity). *)

  val of_int : int -> t
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end

type t
(** A solver instance (mutable). *)

type result = Sat | Unsat

val create : unit -> t

val new_var : t -> int
(** Allocate and return a fresh variable index. *)

val ensure_vars : t -> int -> unit
(** Make sure variables [0 .. n-1] exist. *)

val add_clause : t -> Lit.t list -> unit
(** Add a clause (at decision level 0).  Tautologies are dropped; an empty
    clause makes the instance permanently inconsistent. *)

val solve : ?assumptions:Lit.t list -> t -> result
(** Solve under optional assumptions.  Assumptions are temporary: they hold
    for this call only.  After [Sat] the model is readable with {!value} /
    {!model}. *)

val value : t -> int -> bool
(** Model value of a variable after a [Sat] answer (arbitrary but fixed for
    unconstrained variables). *)

val value_lit : t -> Lit.t -> bool
(** Model value of a literal: {!value} of its variable, complemented for
    negative literals. *)

val model : t -> bool array

val is_consistent : t -> bool
(** [false] once an empty clause has been derived at level 0. *)

(** {1 Statistics} *)

val num_vars : t -> int
val num_clauses : t -> int
val num_learnts : t -> int
val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int

(** {1 DIMACS} *)

module Dimacs : sig
  type cnf = { nvars : int; clauses : int list list }

  val parse_string : string -> cnf
  val to_string : cnf -> string
  val load_into : t -> cnf -> unit
end
