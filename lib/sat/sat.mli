(** A CDCL SAT solver.

    Two-watched-literal propagation, first-UIP clause learning, VSIDS
    branching, phase saving, Luby restarts and learned-clause reduction —
    the combinational engine "based on the introduction of extra variables
    representing intermediate signals" that the paper lists as future work.

    Typical use: create a solver, allocate variables, add clauses, then call
    {!solve} (optionally under assumptions, which enables incremental
    equivalence queries without copying the clause database).

    Domain safety: the solver keeps {e no} global mutable state — every
    clause, watch list, trail and heuristic counter lives inside its
    {!t} — so distinct instances may be driven concurrently from
    distinct domains (the parallel sweep scheduler relies on this).  A
    single instance is not thread-safe and must stay confined to one
    domain at a time. *)

(** Literals packed as ints ([2v] positive, [2v+1] negative). *)
module Lit : sig
  type t = int

  val make : int -> bool -> t
  (** [make v sign]: positive literal of [v] when [sign]. *)

  val pos : int -> t
  val neg : int -> t

  val var : t -> int
  val negate : t -> t

  val sign : t -> bool
  (** [true] iff the literal is positive. *)

  val to_int : t -> int
  (** DIMACS integer (1-based, sign = polarity). *)

  val of_int : int -> t
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end

type t
(** A solver instance (mutable). *)

type result = Sat | Unsat

type proof_step = Step_add of Lit.t list | Step_delete of Lit.t list
(** One DRAT trace event: a learned-clause addition (each RUP with respect
    to the clauses live when it was derived; the final addition of an
    assumption-refuted solve is the negated failed core) or an advisory
    clause deletion (learned-clause reduction, activation release). *)

val create : unit -> t

val new_var : t -> int
(** Allocate and return a fresh variable index. *)

val ensure_vars : t -> int -> unit
(** Make sure variables [0 .. n-1] exist. *)

val add_clause : ?act:int -> t -> Lit.t list -> unit
(** Add a clause (at decision level 0).  Tautologies are dropped; an empty
    clause makes the instance permanently inconsistent.

    [?act] guards the clause with an activation variable: the stored clause
    is [~act \/ lits], so it only bites while [act] is assumed, and
    {!release} retires it for good.  Activation variables must never be
    forced true by a clause — only assumed — so that no permanent (level-0)
    fact can come to depend on a guarded clause. *)

val solve : ?assumptions:Lit.t list -> t -> result
(** Solve under optional assumptions.  Assumptions are temporary: they hold
    for this call only.  After [Sat] the model is readable with {!value} /
    {!model}; after [Unsat] under assumptions, {!failed_assumptions} is the
    failed core. *)

val solve_under_assumptions : t -> Lit.t list -> result
(** [solve_under_assumptions s a = solve ~assumptions:a s]. *)

val failed_assumptions : t -> Lit.t list
(** After an [Unsat] answer: a subset of the assumptions whose conjunction
    the clauses refute (the failed core), or [[]] when the instance is
    unsatisfiable regardless of assumptions.  Reset by every {!solve}. *)

val release : t -> int -> unit
(** Retire activation variable [g]: assert [~g] permanently, first
    dropping every clause guarded by [g] and every learned clause
    mentioning [~g] (activation-aware garbage collection — the retired
    selector's clauses do not keep burdening propagation). *)

val export_learnts : t -> limit_var:int -> max_size:int -> max_lbd:int -> Lit.t list list
(** Learned clauses suitable for sharing with a solver holding an
    identical copy of the encoding over variables [0 .. limit_var - 1]:
    every literal's variable is below [limit_var] (selector and activation
    variables occur only negatively in problem clauses, so any derivation
    that used a guarded clause keeps its guard literal — clauses passing
    the filter were derived from the shared base encoding alone), at most
    [max_size] literals, literal block distance at most [max_lbd]. *)

val import_clause : t -> Lit.t list -> unit
(** Install a clause known to be entailed (an {!export_learnts} result
    from a sibling solver).  Stored as a learned clause, so the regular
    reduction may drop it again. *)

val set_proof_logger : t -> (proof_step -> unit) option -> unit
(** Stream DRAT trace events ({!proof_step}) to the callback: learned
    clauses as they are recorded, deletions as clauses are dropped, and on
    every [Unsat] answer a final addition of the negated failed core (the
    empty clause when unconditionally unsatisfiable). *)

val set_input_logger : t -> (Lit.t list -> unit) option -> unit
(** Observe every problem clause exactly as handed to {!add_clause}
    (activation guard included, before normalization) — an independent
    checker reconstructs the raw CNF through this. *)

val value : t -> int -> bool
(** Model value of a variable after a [Sat] answer (arbitrary but fixed for
    unconstrained variables). *)

val value_lit : t -> Lit.t -> bool
(** Model value of a literal: {!value} of its variable, complemented for
    negative literals. *)

val model : t -> bool array

val is_consistent : t -> bool
(** [false] once an empty clause has been derived at level 0. *)

(** {1 Statistics} *)

val num_vars : t -> int
val num_clauses : t -> int
val num_learnts : t -> int
val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int
val num_restarts : t -> int

(** {1 DIMACS and DRAT} *)

module Dimacs : sig
  type cnf = { nvars : int; clauses : int list list }

  val parse_string : string -> cnf
  val to_string : cnf -> string
  val load_into : t -> cnf -> unit

  type drat_step = Add of int list | Delete of int list
  (** One line of a textual DRAT proof trace, literals as DIMACS
      integers: an addition (required to be RUP against the clauses in
      force when it appears) or an advisory deletion ([d] prefix). *)

  val drat_to_string : drat_step list -> string
  val drat_parse_string : string -> drat_step list
  (** @raise Failure on malformed input. *)

  (** Reverse-unit-propagation replay: an independent unit-propagation
      engine (occurrence lists, no CDCL machinery shared with the solver)
      that verifies each trace addition against the accumulated clause
      set and then answers implication queries. *)
  module Rup : sig
    type t

    val create : unit -> t

    val add_input : t -> int list -> unit
    (** Install a problem clause (trusted, not checked). *)

    val replay : t -> drat_step list -> (unit, string) Stdlib.result
    (** Verify every [Add] is RUP, installing it; apply deletions.
        [Error] names the first addition that fails. *)

    val holds : t -> int list -> bool
    (** Is the clause forced by unit propagation from the current set?
        (Asserting the negation of every literal propagates to a
        conflict.)  Leaves the state untouched. *)
  end
end
