(* The verification method of the paper (outline in Fig. 4):

     1. build the product machine;
     2. partition the candidate signals by random sequential simulation
        (Section 4) and by the exact initial-state condition (Eq. 2);
     3. run the greatest fixed-point iteration (Eq. 3) to the maximum
        signal correspondence relation;
     4. if all output pairs correspond, the circuits are sequentially
        equivalent (Theorem 1);
     5. otherwise extend the candidate set by forward retiming with lag 1
        (Fig. 3) and, if it grew, recompute the fixed point.

   The method is sound but incomplete: "Unknown" is a possible answer.
   Genuine counterexamples are still produced when the circuits differ on
   a simulated run from the initial state or on the initial frame. *)

type engine_kind = Bdd_engine | Sat_engine

type candidate_set = All_signals | Registers_only

(* One streamed progress observation of a running fixed point: enough for
   a watcher (the serve daemon's clients, a progress bar) to see the
   iteration count, the classes still standing, and which portfolio rung
   is doing the work — without touching the engine's internals. *)
type progress = {
  p_round : int; (* retiming rounds completed *)
  p_iteration : int; (* refinement iterations completed, all rounds *)
  p_classes : int; (* classes currently in the partition *)
  p_engine : string; (* rung label: "bdd", "sat-k1", "sat-k2", ... *)
}

type options = {
  engine : engine_kind;
  candidates : candidate_set;
  preflight : bool; (* lint-reject broken circuits before verifying *)
  use_sim_seed : bool;
  sim_frames : int;
  use_ternary_seed : bool; (* split the partition by ternary signatures *)
  use_batched_sweeps : bool; (* batched class solves + pool + dirty cache *)
  use_incremental : bool;
      (* persistent SAT solvers across the whole fixed point, with
         activation-released staging, failed-core pruning and cross-lane
         clause sharing; [false] re-encodes every obligation into a
         throwaway solver (the A/B baseline).  BDD engine: ignored. *)
  use_speculation : bool;
      (* speculative reduction: merge every candidate class onto its
         representative, discharge the assumption obligations on the
         REDUCED product through the per-class hybrid dispatcher, and
         rebuild on refutation.  Reaches the same greatest fixed point as
         the plain sweeps (exact counterexample replay — see
         specreduce.ml); only drives depth-1 induction, so [sat_unroll]
         > 1 falls back to the plain loop. *)
  use_analysis : bool;
      (* static-analysis steering: semantics-preserving pre-reduction (in
         {!portfolio}, when not resuming), the zero-cost PI-support
         prefilter inside both engines, a level-seeded BDD variable order,
         and the analysis-ordered portfolio ladder with its skip rules *)
  use_fundep : bool;
  use_retime : bool;
  max_retime_rounds : int;
  use_reach_dontcare : bool;
  reach_block_size : int;
  node_limit : int;
  max_sat_calls : int;
  sat_unroll : int; (* induction depth k of the SAT engine; 1 = the paper *)
  presim_frames : int;
  bmc_depth : int; (* exhaustive refutation depth before the fixed point *)
  seed : int;
  jobs : int; (* worker domains for Eq.(3) sweeps (SAT engine) *)
  deadline_seconds : float; (* wall-clock budget; <= 0 means none *)
  max_iterations : int; (* abort after this many refinement iterations; 0 = none *)
  checkpoint_path : string option; (* write partial state here on aborts *)
  checkpoint_every : int; (* also checkpoint every N iterations; 0 = aborts only *)
  resume : Checkpoint.t option; (* seed the fixed point from a prior run *)
  progress : (progress -> unit) option;
      (* called after the initial refinement and after every fixed-point
         iteration, from whatever domain runs the verification; None (the
         default) costs nothing *)
  cancel : Deadline.flag option;
      (* external cancellation: when set, the flag is attached to every
         deadline this run (and every portfolio rung of it) polls, so
         whoever holds the flag can abort the run within one class solve
         — the serve daemon's per-job cancel *)
}

(* The default worker count honours SEQVER_JOBS so whole test suites can
   be pushed through the multicore path without plumbing options. *)
let default_jobs () =
  match Sys.getenv_opt "SEQVER_JOBS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n when n >= 1 -> n | _ -> 1)
  | None -> 1

(* SEQVER_SPECULATE pushes whole suites through the speculation path the
   same way — verdicts and final partitions are unchanged by design. *)
let default_speculation () =
  match Sys.getenv_opt "SEQVER_SPECULATE" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let default_options =
  {
    engine = Bdd_engine;
    candidates = All_signals;
    preflight = true;
    use_sim_seed = true;
    sim_frames = 16;
    use_ternary_seed = true;
    use_batched_sweeps = true;
    use_incremental = true;
    use_speculation = default_speculation ();
    use_analysis = false;
    use_fundep = true;
    use_retime = true;
    max_retime_rounds = 4;
    use_reach_dontcare = false;
    reach_block_size = 8;
    node_limit = 2_000_000;
    max_sat_calls = 200_000;
    sat_unroll = 1;
    presim_frames = 64;
    bmc_depth = 4;
    seed = 17;
    jobs = default_jobs ();
    deadline_seconds = 0.0;
    max_iterations = 0;
    checkpoint_path = None;
    checkpoint_every = 0;
    resume = None;
    progress = None;
    cancel = None;
  }

(* The option projections a checkpoint must reproduce on resume. *)
let engine_string options =
  match options.engine with Bdd_engine -> "bdd" | Sat_engine -> "sat"

let candidates_string options =
  match options.candidates with All_signals -> "all" | Registers_only -> "registers"

(* The induction depth actually driving the fixed point: the BDD engine
   is the paper's one-frame Equation (3) regardless of [sat_unroll]. *)
let effective_induction options =
  match options.engine with Bdd_engine -> 1 | Sat_engine -> max 1 options.sat_unroll

(* Does this run verify the FRAIG-reduced pair instead of the circuits as
   given?  Speculation combined with the analysis layer pre-reduces both
   sides once (semantics-preserving: PIs and POs are preserved exactly,
   so verdicts and witness traces carry back to the originals verbatim) —
   the same transform the portfolio applies, which is what lets a single
   engine configuration close pairs whose unreduced product has spurious
   unreachable-state counterexamples (dead latches widen the induction
   hypothesis space).  Skipped when resuming: checkpoint fingerprints
   bind to the circuits as given.  Certificates emitted from such a run
   record the reduction (see Cert.Certificate), so they still check
   against the original circuit files. *)
let prereduces options =
  options.use_speculation && options.use_analysis && options.resume = None

(* Rung label for progress streaming and portfolio displays. *)
let rung_label options =
  match options.engine with
  | Bdd_engine -> "bdd"
  | Sat_engine -> Printf.sprintf "sat-k%d" (max 1 options.sat_unroll)

type stats = {
  iterations : int; (* refinement iterations, all rounds *)
  retime_rounds : int; (* times the retiming extension was invoked *)
  candidates : int; (* |F| of the last round *)
  classes : int; (* classes of the final relation *)
  peak_bdd_nodes : int;
  sat_calls : int;
  pool_lanes : int; (* counterexample patterns accumulated in the pool *)
  resim_splits : int; (* classes created by bit-parallel pattern replay *)
  batched_solves : int; (* one-per-class disjunctive solves / key scans *)
  cache_hits : int; (* classes skipped by the stability (UNSAT) cache *)
  static_splits : int; (* classes split by the PI-support prefilter, no solver *)
  spec_rounds : int; (* speculative reductions built (0 = speculation off/unused) *)
  spec_merges : int; (* candidate members merged onto representatives, all rounds *)
  refuted_assumptions : int; (* speculation obligations a discharge refuted *)
  spec_by_sim : int; (* obligations settled by each dispatcher engine *)
  spec_by_bdd : int;
  spec_by_sat : int;
  domains : int; (* worker lanes of the sweep scheduler *)
  lane_solves : int list; (* sweep tasks completed per lane *)
  steals : int; (* tasks claimed from another lane's segment *)
  sched_wait_seconds : float; (* coordinator idle time awaiting workers *)
  conflicts : int; (* SAT conflicts, summed over every solver of the run *)
  propagations : int; (* SAT propagations, likewise *)
  restarts : int; (* SAT restarts, likewise *)
  encoded_vars : int; (* SAT variables created, across every solver *)
  reused_clauses : int;
      (* clauses already in place when a solve was issued — the encoding
         and learning work the incremental mode did NOT redo (0 when
         [use_incremental] is off: throwaway solvers start empty) *)
  shared_clauses : int; (* learned clauses imported across sweep lanes *)
  core_prunes : int; (* class re-solves skipped by failed-core transfer *)
  eq_pct : float; (* % of spec signals with an impl correspondence *)
  seconds : float;
  phase_seconds : (string * float) list; (* wall time per verification phase *)
  exhausted : string option;
      (* Some reason when an Unknown came from a blown budget ("deadline",
         "sat calls", "bdd nodes", "iterations") rather than from the
         method's incompleteness *)
}

type verdict =
  | Equivalent of stats
  | Not_equivalent of { frame : int; trace : bool array array option; stats : stats }
  | Unknown of stats

let verdict_stats = function
  | Equivalent s -> s
  | Not_equivalent { stats; _ } -> stats
  | Unknown s -> s

(* --- engine dispatch -------------------------------------------------------- *)

type engine_ops = {
  refine_initial : Partition.t -> unit;
  refine_once : Partition.t -> bool;
  pool : Simpool.t;
      (* the engine's counterexample pool, shared with the speculation
         dispatcher so its replayed patterns flow through one buffer *)
  peak_bdd : unit -> int;
  n_sat_calls : unit -> int;
  sweep_counters : unit -> int * int * int * int * int;
      (* (pool lanes, resim splits, batched solves, cache hits,
         static prefilter splits) *)
  sched_stats : unit -> Parsweep.stats;
  profile : unit -> Engine_sat.profile;
      (* solver-work counters; the BDD engine reports zeros *)
  pool_patterns : unit -> (bool array * bool array) list;
      (* pending counterexample lanes, for checkpointing *)
  pool_add : (bool array * bool array) list -> unit;
      (* re-seed checkpointed counterexample lanes on resume *)
  shutdown : unit -> unit; (* join the engine's worker domains *)
}

exception Budget of string

(* A state-variable order placing correspondence candidates adjacently,
   derived from simulation signatures of the latch outputs. *)
let latch_order_from_sim ~seed product pol =
  let aig = product.Product.aig in
  let n = Aig.num_latches aig in
  let n_spec = product.Product.spec.Product.n_latches in
  let sigs = Simseed.signatures ~seed ~n_frames:8 product pol in
  let key i = sigs.(Aig.latch_node aig i) in
  (* keep the creation order (which respects each circuit's natural
     bit-ordering), but pull likely-corresponding latches — those with
     equal simulation signatures — next to the first member of their
     group.  Within a group, specification and implementation members are
     interleaved: groups of many indistinguishable latches (e.g. the high
     bits of wide counters under short simulation) otherwise place one
     whole side before the other, which makes the cross-side equalities of
     the output miter and of Q exponential. *)
  let placed = Array.make n false in
  let order = ref [] in
  for i = 0 to n - 1 do
    if not placed.(i) then begin
      let ki = key i in
      let group = List.filter (fun j -> (not placed.(j)) && key j = ki) (List.init n Fun.id) in
      List.iter (fun j -> placed.(j) <- true) group;
      let spec_side = List.filter (fun j -> j < n_spec) group in
      let impl_side = List.filter (fun j -> j >= n_spec) group in
      let rec zip a b =
        match (a, b) with
        | [], rest | rest, [] -> rest
        | x :: a, y :: b -> x :: y :: zip a b
      in
      order := List.rev_append (zip spec_side impl_side) !order
    end
  done;
  Array.of_list (List.rev !order)

(* Structural state-variable order: walk the output pairs and interleave
   the specification latches of each output's cone with the implementation
   latches of its partner's cone.  Latch-to-latch signature matching (the
   simulation order above) fails when corresponding state lives in a GATE
   of the other circuit — e.g. after backward retiming — while the output
   miters always connect both sides. *)
let latch_order_from_outputs ?levels product =
  let aig = product.Product.aig in
  let n = Aig.num_latches aig in
  let n_spec = product.Product.spec.Product.n_latches in
  (* [levels], when given (static analysis on), sorts each cone's latches
     by the combinational depth of their next-state functions: latches fed
     by shallow logic sit earlier in the order, which groups the "close to
     the inputs" state bits both circuits agree on before the deep ones *)
  let sort_latches ls =
    match levels with
    | None -> List.sort compare ls
    | Some lv ->
      let key i = (lv.(Aig.node_of_lit (Aig.latch_next aig i)), i) in
      List.sort (fun a b -> compare (key a) (key b)) ls
  in
  let cone_latches lit =
    let seen = Hashtbl.create 64 in
    let acc = ref [] in
    let rec go id =
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        match Aig.node aig id with
        | Aig.Latch i ->
          acc := i :: !acc;
          go (Aig.node_of_lit (Aig.latch_next aig i))
        | Aig.And (a, b) ->
          go (Aig.node_of_lit a);
          go (Aig.node_of_lit b)
        | Aig.Const | Aig.Pi _ -> ()
      end
    in
    go (Aig.node_of_lit lit);
    sort_latches !acc
  in
  let placed = Array.make n false in
  let order = ref [] in
  let rec zip a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | x :: a, y :: b -> x :: y :: zip a b
  in
  let take latches =
    let fresh = List.filter (fun i -> not placed.(i)) latches in
    List.iter (fun i -> placed.(i) <- true) fresh;
    fresh
  in
  List.iter
    (fun (_, ls, li) ->
      let sp = take (List.filter (fun i -> i < n_spec) (cone_latches ls)) in
      let im = take (List.filter (fun i -> i >= n_spec) (cone_latches li)) in
      order := List.rev_append (zip sp im) !order)
    product.Product.outputs;
  (* leftovers (latches unreachable from the outputs), sides interleaved *)
  let rest = List.filter (fun i -> not placed.(i)) (List.init n Fun.id) in
  let sp = List.filter (fun i -> i < n_spec) rest in
  let im = List.filter (fun i -> i >= n_spec) rest in
  order := List.rev_append (zip sp im) !order;
  Array.of_list (List.rev !order)

let make_engine (options : options) deadline product pol =
  let add_patterns pool ps =
    List.iter
      (fun (pi, latch) ->
        Simpool.add pool ~pi:(fun i -> pi.(i)) ~latch:(fun i -> latch.(i)))
      ps
  in
  match options.engine with
  | Bdd_engine ->
    ignore pol;
    (* The variable order stays the structural output-cone interleave even
       in analysis mode: keying each cone's latches by next-state level or
       cone size (the [?levels] variant below) was measured on the suite
       and blows the lfsr16 peak up 10x — depth-sorted sides lose the
       cross-side adjacency the interleave provides.  Analysis still
       shapes the BDD run through the pre-reduced circuits and the static
       prefilter. *)
    let latch_order = latch_order_from_outputs product in
    let care_of =
      if not options.use_reach_dontcare then None
      else
        Some
          (fun m s_vars ->
            let trans = Reach.Trans.make product.Product.aig in
            let ub = Reach.Approx.upper_bound ~block_size:options.reach_block_size trans in
            match Bdd.Reorder.copy_to ~dst:m [ ub ] with
            | [ ub' ] ->
              let perm =
                Array.to_list
                  (Array.mapi (fun i cs -> (cs, s_vars.(i))) trans.Reach.Trans.cs_vars)
              in
              Bdd.rename m ub' perm
            | _ -> assert false)
    in
    let ctx =
      Engine_bdd.make ~use_fundep:options.use_fundep ~latch_order ?care_of
        ~node_limit:options.node_limit ~deadline ~static_filter:options.use_analysis
        product
    in
    let wrap f x =
      try f x with
      | Engine_bdd.Budget_exceeded msg -> raise (Budget msg)
      | Bdd.Limit_exceeded -> raise (Budget "bdd nodes")
    in
    let refine_once =
      if options.use_batched_sweeps then Engine_bdd.refine_once ctx
      else Engine_bdd.refine_once_pairwise ctx
    in
    {
      refine_initial = wrap (Engine_bdd.refine_initial ctx);
      refine_once = (fun p -> wrap refine_once p);
      pool = ctx.Engine_bdd.pool;
      peak_bdd = (fun () -> ctx.Engine_bdd.peak_nodes);
      n_sat_calls = (fun () -> 0);
      sweep_counters =
        (fun () ->
          ( Simpool.total_lanes ctx.Engine_bdd.pool,
            Simpool.resim_splits ctx.Engine_bdd.pool,
            ctx.Engine_bdd.n_batched,
            ctx.Engine_bdd.n_cache_hits,
            ctx.Engine_bdd.n_static ));
      sched_stats = (fun () -> Engine_bdd.sched_stats ctx);
      profile =
        (fun () ->
          {
            Engine_sat.pr_conflicts = 0;
            pr_propagations = 0;
            pr_restarts = 0;
            pr_encoded_vars = 0;
            pr_reused_clauses = 0;
            pr_shared_clauses = 0;
            pr_core_prunes = 0;
          });
      pool_patterns = (fun () -> Simpool.snapshot ctx.Engine_bdd.pool);
      pool_add = (fun ps -> add_patterns ctx.Engine_bdd.pool ps);
      shutdown = (fun () -> Engine_bdd.shutdown ctx);
    }
  | Sat_engine ->
    let ctx =
      Engine_sat.make ~max_sat_calls:options.max_sat_calls ~k:options.sat_unroll
        ~jobs:options.jobs ~deadline ~static_filter:options.use_analysis
        ~incremental:options.use_incremental product
    in
    let wrap f x = try f x with Engine_sat.Budget_exceeded msg -> raise (Budget msg) in
    let refine_initial, refine_once =
      if options.use_batched_sweeps then
        (Engine_sat.refine_initial ctx, Engine_sat.refine_once ctx)
      else (Engine_sat.refine_initial_pairwise ctx, Engine_sat.refine_once_pairwise ctx)
    in
    {
      refine_initial = wrap refine_initial;
      refine_once = (fun p -> wrap refine_once p);
      pool = ctx.Engine_sat.pool;
      peak_bdd = (fun () -> 0);
      n_sat_calls = (fun () -> Atomic.get ctx.Engine_sat.sat_calls);
      sweep_counters =
        (fun () ->
          ( Simpool.total_lanes ctx.Engine_sat.pool,
            Simpool.resim_splits ctx.Engine_sat.pool,
            ctx.Engine_sat.n_batched,
            ctx.Engine_sat.n_cache_hits,
            ctx.Engine_sat.n_static ));
      sched_stats = (fun () -> Engine_sat.sched_stats ctx);
      profile = (fun () -> Engine_sat.profile ctx);
      pool_patterns = (fun () -> Simpool.snapshot ctx.Engine_sat.pool);
      pool_add = (fun ps -> add_patterns ctx.Engine_sat.pool ps);
      shutdown = (fun () -> Engine_sat.shutdown ctx);
    }

(* --- candidate selection ------------------------------------------------------ *)

let candidate_nodes (options : options) product =
  let aig = product.Product.aig in
  let keep id =
    match Aig.node aig id with
    | Aig.Const -> true
    | Aig.Latch _ -> true
    | Aig.Pi _ | Aig.And _ -> options.candidates = All_signals
  in
  List.filter keep (Product.candidate_nodes product)

(* --- statistics ---------------------------------------------------------------- *)

let equivalence_percentage product partition =
  let aig = product.Product.aig in
  let total = ref 0 and matched = ref 0 in
  for id = 1 to Aig.num_nodes aig - 1 do
    if Product.node_is_spec product id && not (Product.node_is_helper product id) then begin
      match Aig.node aig id with
      | Aig.And _ | Aig.Latch _ ->
        incr total;
        if
          Partition.is_candidate partition id
          && List.exists
               (fun w -> Product.node_is_impl product w)
               (Partition.members partition (Partition.class_of partition id))
        then incr matched
      | Aig.Const | Aig.Pi _ -> ()
    end
  done;
  if !total = 0 then 100.0 else 100.0 *. float_of_int !matched /. float_of_int !total

(* --- sound refutation by simulation ---------------------------------------------- *)

let simulate_difference ~seed ~n_frames spec impl =
  let n_pis = Aig.num_pis spec in
  let frames = Aig.Sim.random_frames ~seed ~n_pis ~n_frames in
  let o1, _ = Aig.Sim.run spec frames and o2, _ = Aig.Sim.run impl frames in
  (* locate the first frame and bit position where any output pair differs *)
  let diff_bit f1 f2 =
    List.fold_left
      (fun acc (name, w1) ->
        match acc with
        | Some _ -> acc
        | None -> (
          match List.assoc_opt name f2 with
          | Some w2 when w1 <> w2 ->
            let d = Int64.logxor w1 w2 in
            let rec bit i =
              if Int64.logand (Int64.shift_right_logical d i) 1L = 1L then i else bit (i + 1)
            in
            Some (bit 0)
          | _ -> None))
      None f1
  in
  let rec scan i frames_seen = function
    | [], [] -> None
    | f1 :: r1, f2 :: r2 -> (
      match diff_bit f1 f2 with
      | Some bit ->
        let trace =
          Array.of_list
            (List.rev_map
               (fun words ->
                 Array.map
                   (fun w -> Int64.logand (Int64.shift_right_logical w bit) 1L = 1L)
                   words)
               frames_seen)
        in
        Some (i, trace)
      | None -> scan (i + 1) frames_seen (r1, r2))
    | _, _ -> None
  and scan0 () =
    let rec go i seen frames o1 o2 =
      match (frames, o1, o2) with
      | words :: frames, f1 :: r1, f2 :: r2 -> (
        let seen = words :: seen in
        match diff_bit f1 f2 with
        | Some bit ->
          let trace =
            Array.of_list
              (List.rev_map
                 (fun ws ->
                   Array.map
                     (fun w -> Int64.logand (Int64.shift_right_logical w bit) 1L = 1L)
                     ws)
                 seen)
          in
          Some (i, trace)
        | None -> go (i + 1) seen frames r1 r2)
      | _ -> None
    in
    go 0 [] frames o1 o2
  in
  ignore scan;
  scan0 ()

(* --- initial-frame disproofs -------------------------------------------------------- *)

(* When the exact initial refinement separates an output pair, the
   circuits differ within the first frames the refinement inspected (one
   frame for the BDD engine, [sat_unroll] for the SAT engine).  Derive the
   concrete witness with a bounded refutation over exactly that window so
   the verdict never ships without a trace. *)
let initial_disproof (options : options) product =
  let k =
    match options.engine with Bdd_engine -> 1 | Sat_engine -> max 1 options.sat_unroll
  in
  match Reach.Bmc.check ~max_depth:(k - 1) product.Product.aig with
  | Reach.Bmc.Counterexample cex -> (cex.Reach.Bmc.depth, Some cex.Reach.Bmc.inputs)
  | Reach.Bmc.No_counterexample _ | Reach.Bmc.Budget _ -> (0, None)

(* --- outputs proved? (Theorem 1) --------------------------------------------------- *)

(* With all signals as candidates, the output functions are themselves
   members of F, so Theorem 1 reduces to a class-membership test. *)
let outputs_in_same_class product partition =
  List.for_all
    (fun (_, ls, li) -> Partition.lits_equal partition ls li)
    product.Product.outputs

(* With registers only ([5]/[9]), equivalence of the outputs is a
   combinational check under the proven register correspondence: tie the
   corresponding state variables together and compare the output pairs
   with SAT. *)
let outputs_proved_by_tying product partition =
  let aig = product.Product.aig in
  let solver = Sat.create () in
  let latch_vars = Array.init (Aig.num_latches aig) (fun _ -> Sat.new_var solver) in
  let pi_vars = Array.init (Aig.num_pis aig) (fun _ -> Sat.new_var solver) in
  let lit_of =
    Aig.Cnf.encode solver aig ~pi_var:(fun i -> pi_vars.(i))
      ~latch_var:(fun i -> latch_vars.(i))
  in
  (* assert the correspondence condition Q over the state variables *)
  let norm_sat_lit id =
    (* SAT literal of the normalized function of a latch or const node *)
    lit_of (Partition.norm_lit partition id)
  in
  List.iter
    (fun cls ->
      match Partition.members partition cls with
      | [] | [ _ ] -> ()
      | rep :: rest ->
        let is_latch_or_const id =
          match Aig.node aig id with
          | Aig.Latch _ | Aig.Const -> true
          | Aig.Pi _ | Aig.And _ -> false
        in
        if is_latch_or_const rep then
          List.iter
            (fun id ->
              if is_latch_or_const id then begin
                let a = norm_sat_lit rep and b = norm_sat_lit id in
                Sat.add_clause solver [ Sat.Lit.negate a; b ];
                Sat.add_clause solver [ a; Sat.Lit.negate b ]
              end)
            rest)
    (Partition.multi_member_classes partition);
  List.for_all
    (fun (_, ls, li) ->
      let a = lit_of ls and b = lit_of li in
      if a = b then true
      else begin
        let s = Sat.new_var solver in
        let sl = Sat.Lit.pos s and ns = Sat.Lit.neg s in
        Sat.add_clause solver [ ns; a; b ];
        Sat.add_clause solver [ ns; Sat.Lit.negate a; Sat.Lit.negate b ];
        let r = Sat.solve ~assumptions:[ sl ] solver in
        Sat.add_clause solver [ ns ];
        r = Sat.Unsat
      end)
    product.Product.outputs

let outputs_proved (options : options) product partition =
  match options.candidates with
  | All_signals -> outputs_in_same_class product partition
  | Registers_only -> outputs_proved_by_tying product partition

(* --- main entry --------------------------------------------------------------------- *)

(* Full entry point: the verdict plus, when a fixed point was computed,
   the product machine and the final correspondence relation — the
   checker's certificate ("show your work"). *)
let run_with_relation ?(options = default_options) spec impl =
  (* preflight: refuse to spend BDD/SAT effort on structurally broken
     circuits — every error-level lint finding is reported at once
     (raises [Lint.Rejected] with the rendered report) *)
  if options.preflight then begin
    Lint.preflight_aig ~subject:"specification" spec;
    Lint.preflight_aig ~subject:"implementation" impl
  end;
  let spec, impl =
    if prereduces options then
      ( fst (Analysis.Reduce.run ~seed:options.seed spec),
        fst (Analysis.Reduce.run ~seed:options.seed impl) )
    else (spec, impl)
  in
  let start = Clock.now () in
  let deadline =
    let d = Deadline.make ~seconds:options.deadline_seconds in
    match options.cancel with None -> d | Some f -> Deadline.with_flag f d
  in
  (* reject an incompatible checkpoint before spending any effort: the
     fingerprints, candidate set, seed and induction depth must all allow
     the resumed run to reach the same greatest fixed point *)
  (match options.resume with
  | None -> ()
  | Some cp ->
    Checkpoint.validate ~spec ~impl
      ~candidates:(candidates_string options)
      ~induction:(effective_induction options) ~seed:options.seed cp);
  let product = Product.make spec impl in
  let iterations = ref 0 in
  let retime_rounds = ref 0 in
  let peak_bdd = ref 0 in
  let sat_calls = ref 0 in
  let pool_lanes = ref 0 in
  let resim_splits = ref 0 in
  let batched_solves = ref 0 in
  let cache_hits = ref 0 in
  let static_splits = ref 0 in
  let spec_rounds = ref 0 in
  let spec_merges = ref 0 in
  let refuted_assumptions = ref 0 in
  let spec_by_sim = ref 0 in
  let spec_by_bdd = ref 0 in
  let spec_by_sat = ref 0 in
  let domains = ref 1 in
  let lane_solves = ref [||] in
  let steals = ref 0 in
  let sched_wait = ref 0.0 in
  let conflicts = ref 0 in
  let propagations = ref 0 in
  let restarts = ref 0 in
  let encoded_vars = ref 0 in
  let reused_clauses = ref 0 in
  let shared_clauses = ref 0 in
  let core_prunes = ref 0 in
  (* per-phase wall clock, accumulated across retiming rounds; the
     exception-safe [Clock.measure] keeps the elapsed time of phases that
     abort on a blown budget *)
  let phases = ref [] in
  let phase name f =
    Clock.measure
      ~record:(fun dt ->
        phases :=
          match List.assoc_opt name !phases with
          | Some acc -> (name, acc +. dt) :: List.remove_assoc name !phases
          | None -> !phases @ [ (name, dt) ])
      f
  in
  let exhausted = ref None in
  (* pending counterexample lanes of the aborted engine, captured by the
     per-round finalizer so budget aborts can checkpoint them *)
  let pool_pending = ref [] in
  let notify partition =
    match options.progress with
    | None -> ()
    | Some f ->
      f
        {
          p_round = !retime_rounds;
          p_iteration = !iterations;
          p_classes = Partition.n_classes partition;
          p_engine = rung_label options;
        }
  in
  let spec_digest = lazy (Checkpoint.fingerprint spec) in
  let impl_digest = lazy (Checkpoint.fingerprint impl) in
  let mk_stats partition =
    {
      iterations = !iterations;
      retime_rounds = !retime_rounds;
      candidates =
        (match partition with
        | Some p ->
          List.length
            (List.filter
               (fun id -> Partition.is_candidate p id)
               (Product.candidate_nodes product))
        | None -> 0);
      classes = (match partition with Some p -> Partition.n_classes p | None -> 0);
      peak_bdd_nodes = !peak_bdd;
      sat_calls = !sat_calls;
      pool_lanes = !pool_lanes;
      resim_splits = !resim_splits;
      batched_solves = !batched_solves;
      cache_hits = !cache_hits;
      static_splits = !static_splits;
      spec_rounds = !spec_rounds;
      spec_merges = !spec_merges;
      refuted_assumptions = !refuted_assumptions;
      spec_by_sim = !spec_by_sim;
      spec_by_bdd = !spec_by_bdd;
      spec_by_sat = !spec_by_sat;
      domains = !domains;
      lane_solves = Array.to_list !lane_solves;
      steals = !steals;
      sched_wait_seconds = !sched_wait;
      conflicts = !conflicts;
      propagations = !propagations;
      restarts = !restarts;
      encoded_vars = !encoded_vars;
      reused_clauses = !reused_clauses;
      shared_clauses = !shared_clauses;
      core_prunes = !core_prunes;
      eq_pct = (match partition with Some p -> equivalence_percentage product p | None -> 0.0);
      seconds = Clock.since start;
      phase_seconds = !phases;
      exhausted = !exhausted;
    }
  in
  let checkpoint_of ~round ~patterns partition =
    Checkpoint.of_partition ~spec_digest:(Lazy.force spec_digest)
      ~impl_digest:(Lazy.force impl_digest) ~engine:(engine_string options)
      ~candidates:(candidates_string options)
      ~induction:(effective_induction options) ~seed:options.seed ~retime_rounds:round
      ~iterations:!iterations ~patterns product.Product.aig partition
  in
  let write_checkpoint ~round ~patterns partition =
    match options.checkpoint_path with
    | None -> ()
    | Some path -> Checkpoint.to_file path (checkpoint_of ~round ~patterns partition)
  in
  let relation = ref None in
  let finish verdict = (verdict, product, !relation) in
  finish
  @@
  match
    phase "refute" (fun () ->
        simulate_difference ~seed:options.seed ~n_frames:options.presim_frames spec impl)
  with
  | Some (frame, trace) -> Not_equivalent { frame; trace = Some trace; stats = mk_stats None }
  | None ->
  (* exhaustive refutation up to a small depth: catches corner-case
     differences random simulation misses and yields a concrete trace *)
  match
    phase "refute" (fun () ->
        if options.bmc_depth <= 0 then Reach.Bmc.No_counterexample (-1)
        else Reach.Bmc.check ~max_depth:options.bmc_depth product.Product.aig)
  with
  | Reach.Bmc.Counterexample cex ->
    Not_equivalent
      {
        frame = cex.Reach.Bmc.depth;
        trace = Some cex.Reach.Bmc.inputs;
        stats = mk_stats None;
      }
  | Reach.Bmc.No_counterexample _ | Reach.Bmc.Budget _ ->
    let start_round =
      (* resume: replay the checkpointed retiming augmentations (they are
         deterministic functions of the product machine) and pick the
         iteration up at the round that was interrupted *)
      match options.resume with
      | None -> 0
      | Some cp ->
        for _ = 1 to cp.Checkpoint.retime_rounds do
          ignore (Retime_aug.augment product)
        done;
        if Aig.num_nodes product.Product.aig <> cp.Checkpoint.product_nodes then
          raise
            (Checkpoint.Incompatible
               (Printf.sprintf
                  "product-machine shape mismatch: checkpoint has %d nodes, rebuilt \
                   product has %d"
                  cp.Checkpoint.product_nodes
                  (Aig.num_nodes product.Product.aig)));
        List.iter
          (fun (pi, latch) ->
            if
              Array.length pi <> Aig.num_pis product.Product.aig
              || Array.length latch <> Aig.num_latches product.Product.aig
            then raise (Checkpoint.Incompatible "pattern width mismatch"))
          cp.Checkpoint.patterns;
        retime_rounds := cp.Checkpoint.retime_rounds;
        iterations := cp.Checkpoint.iterations;
        cp.Checkpoint.retime_rounds
    in
    let rec round n =
      let pol = Product.reference_values ~seed:options.seed product in
      let partition =
        Partition.create
          ~n_nodes:(Aig.num_nodes product.Product.aig)
          ~candidates:(candidate_nodes options product)
          ~pol
      in
      if options.use_sim_seed then
        phase "seed" (fun () ->
            ignore
              (Simseed.refine ~seed:options.seed ~n_frames:options.sim_frames product partition));
      relation := Some partition;
      let outcome =
        try
          let engine =
            try make_engine options deadline product pol with
            | Engine_bdd.Budget_exceeded msg | Engine_sat.Budget_exceeded msg ->
              raise (Budget msg)
            | Bdd.Limit_exceeded -> raise (Budget "bdd nodes")
          in
          (* idempotent so the finalizer below can back-fill the counters
             on exceptional exits (budget aborts, node-limit overruns)
             without double-counting the normal paths — an engine's
             counters must be folded in exactly once per round, whatever
             the exit *)
          let recorded = ref false in
          let record_stats () =
            if not !recorded then begin
              recorded := true;
              peak_bdd := max !peak_bdd (engine.peak_bdd ());
              sat_calls := !sat_calls + engine.n_sat_calls ();
              let lanes, resim, batched, hits, statics = engine.sweep_counters () in
              pool_lanes := !pool_lanes + lanes;
              resim_splits := !resim_splits + resim;
              batched_solves := !batched_solves + batched;
              cache_hits := !cache_hits + hits;
              static_splits := !static_splits + statics;
              let st = engine.sched_stats () in
              domains := max !domains st.Parsweep.domains;
              steals := !steals + st.Parsweep.steals;
              sched_wait := !sched_wait +. st.Parsweep.wait_seconds;
              let tasks = st.Parsweep.lane_tasks in
              if Array.length !lane_solves < Array.length tasks then begin
                let grown = Array.make (Array.length tasks) 0 in
                Array.blit !lane_solves 0 grown 0 (Array.length !lane_solves);
                lane_solves := grown
              end;
              Array.iteri (fun i n -> !lane_solves.(i) <- !lane_solves.(i) + n) tasks;
              let pr = engine.profile () in
              conflicts := !conflicts + pr.Engine_sat.pr_conflicts;
              propagations := !propagations + pr.Engine_sat.pr_propagations;
              restarts := !restarts + pr.Engine_sat.pr_restarts;
              encoded_vars := !encoded_vars + pr.Engine_sat.pr_encoded_vars;
              reused_clauses := !reused_clauses + pr.Engine_sat.pr_reused_clauses;
              shared_clauses := !shared_clauses + pr.Engine_sat.pr_shared_clauses;
              core_prunes := !core_prunes + pr.Engine_sat.pr_core_prunes;
              pool_pending := engine.pool_patterns ()
            end
          in
          Fun.protect
            ~finally:(fun () ->
              record_stats ();
              engine.shutdown ())
            (fun () ->
              phase "initial" (fun () -> engine.refine_initial partition);
              notify partition;
              (* conclusive check: before any Eq.3 refinement, a split output
                 pair reflects a genuine difference at (or simulated from) the
                 initial state.  Only available when the outputs themselves are
                 candidates. *)
              if
                options.candidates = All_signals
                && not (outputs_in_same_class product partition)
              then begin
                record_stats ();
                let frame, trace = initial_disproof options product in
                `Done (Not_equivalent { frame; trace; stats = mk_stats (Some partition) })
              end
              else begin
                (* ternary-simulation seeding: exact splits by X-valued
                   signatures from the initial state; placed after the
                   conclusive check above so it can only sharpen the fixed
                   point, never distort the initial-frame refutation *)
                if options.use_ternary_seed then
                  phase "seed" (fun () -> ignore (Ternseed.refine product partition));
                (* resume: fast-forward the partition to the checkpointed
                   classes and replay the buffered counterexample lanes.
                   Placed after the deterministic seeding phases (which the
                   original run went through too) and after the conclusive
                   initial-frame check above, so a checkpoint can sharpen
                   the fixed point but never fabricate a refutation. *)
                (match options.resume with
                | Some cp when n = start_round ->
                  phase "seed" (fun () ->
                      ignore (Checkpoint.seed_partition cp partition);
                      engine.pool_add cp.Checkpoint.patterns)
                | Some _ | None -> ());
                let poll () =
                  if Deadline.expired deadline then raise (Budget "deadline");
                  if options.max_iterations > 0 && !iterations >= options.max_iterations
                  then raise (Budget "iterations")
                in
                (* Speculative fixed point: merge all candidates, discharge
                   the assumption obligations on the reduced product via the
                   per-class dispatcher, refine and rebuild on refutation.
                   Returns true when it converged (no obligation refuted —
                   the partition is Eq.(3)-stable at the configured
                   induction depth, and exact replay makes it THE greatest
                   fixed point, so the plain loop is skipped); false falls
                   back to the plain per-class sweeps.  The SAT route
                   unrolls to [effective_induction] frames of Q-hat
                   assumptions, matching what the plain sweep would
                   assume, so the fixed points coincide at every k. *)
                let speculative_fixpoint partition =
                  (* start from the sharpest partition: replay whatever the
                     seeding phases or a resume buffered in the pool *)
                  if Simpool.lanes engine.pool > 0 then
                    ignore (Simpool.flush engine.pool partition);
                  let prefer =
                    match options.engine with
                    | Bdd_engine -> Dispatch.Bdd
                    | Sat_engine -> Dispatch.Sat
                  in
                  let config =
                    {
                      (Dispatch.default_config ~prefer) with
                      Dispatch.bdd_node_limit = options.node_limit;
                      unroll = effective_induction options;
                      jobs = options.jobs;
                      seed = options.seed;
                    }
                  in
                  let spec_calls = Atomic.make 0 in
                  let check_budget () =
                    let used = Atomic.fetch_and_add spec_calls 1 in
                    if
                      options.max_sat_calls > 0
                      && engine.n_sat_calls () + used >= options.max_sat_calls
                    then raise (Budget "sat calls")
                  in
                  let dispatch =
                    Dispatch.create ~config
                      ~latch_order:(latch_order_from_outputs product)
                      ~check_budget ~product ~pool:engine.pool ~deadline ()
                  in
                  let harvest () =
                    let c = Dispatch.counters dispatch in
                    sat_calls := !sat_calls + c.Dispatch.c_sat_solves;
                    conflicts := !conflicts + c.Dispatch.c_conflicts;
                    propagations := !propagations + c.Dispatch.c_propagations;
                    restarts := !restarts + c.Dispatch.c_restarts;
                    encoded_vars := !encoded_vars + c.Dispatch.c_vars;
                    peak_bdd := max !peak_bdd c.Dispatch.c_peak_nodes;
                    spec_by_sim := !spec_by_sim + c.Dispatch.c_by_sim;
                    spec_by_bdd := !spec_by_bdd + c.Dispatch.c_by_bdd;
                    spec_by_sat := !spec_by_sat + c.Dispatch.c_by_sat
                  in
                  Fun.protect
                    ~finally:(fun () ->
                      harvest ();
                      Dispatch.shutdown dispatch)
                    (fun () ->
                      (* every productive round splits >= 1 class, and
                         classes are bounded by the candidate count, so
                         this terminates; a round that refutes without
                         splitting would violate the exact-replay
                         invariant, and we fall back rather than spin *)
                      let rec go () =
                        poll ();
                        let sr = Specreduce.build product partition in
                        incr spec_rounds;
                        spec_merges := !spec_merges + sr.Specreduce.n_merges;
                        if Array.length sr.Specreduce.obligations = 0 then true
                        else begin
                          let refuted, splits =
                            try Dispatch.discharge dispatch partition sr
                            with Dispatch.Budget_exceeded why -> raise (Budget why)
                          in
                          refuted_assumptions := !refuted_assumptions + refuted;
                          incr iterations;
                          notify partition;
                          if
                            options.checkpoint_every > 0
                            && !iterations mod options.checkpoint_every = 0
                          then
                            write_checkpoint ~round:n
                              ~patterns:(engine.pool_patterns ())
                              partition;
                          if refuted = 0 then true
                          else if splits = 0 then false
                          else go ()
                        end
                      in
                      go ())
                in
                let use_spec = options.use_speculation in
                phase "fixpoint" (fun () ->
                    poll ();
                    let converged = use_spec && speculative_fixpoint partition in
                    if not converged then
                      while engine.refine_once partition do
                        incr iterations;
                        notify partition;
                        poll ();
                        if
                          options.checkpoint_every > 0
                          && !iterations mod options.checkpoint_every = 0
                        then
                          write_checkpoint ~round:n
                            ~patterns:(engine.pool_patterns ())
                            partition
                      done);
                incr iterations;
                record_stats ();
                if phase "outputs" (fun () -> outputs_proved options product partition) then
                  `Done (Equivalent (mk_stats (Some partition)))
                else if options.use_retime && n < options.max_retime_rounds then begin
                  incr retime_rounds;
                  let added = Retime_aug.augment product in
                  if added > 0 then `Retime
                  else `Done (Unknown (mk_stats (Some partition)))
                end
                else `Done (Unknown (mk_stats (Some partition)))
              end)
        with Budget why ->
          exhausted := Some why;
          write_checkpoint ~round:n ~patterns:!pool_pending partition;
          `Done (Unknown (mk_stats (Some partition)))
      in
      (* the retiming extension restarts with a fresh engine; recursing
         outside the finalizer keeps at most one engine's worker domains
         alive at a time *)
      match outcome with `Done verdict -> verdict | `Retime -> round (n + 1)
    in
    round start_round

let run ?options spec impl =
  let verdict, _, _ = run_with_relation ?options spec impl in
  verdict

(* Snapshot a finished (or aborted) run as an in-memory checkpoint, so a
   later run — possibly a cheaper engine, see {!portfolio} — can pick the
   refinement up where this one left off. *)
let checkpoint_of_run ~(options : options) ~spec ~impl (verdict, product, relation) =
  match relation with
  | None -> Error "the run produced no correspondence relation to checkpoint"
  | Some partition ->
    let stats = verdict_stats verdict in
    Ok
      (Checkpoint.of_partition ~spec_digest:(Checkpoint.fingerprint spec)
         ~impl_digest:(Checkpoint.fingerprint impl) ~engine:(engine_string options)
         ~candidates:(candidates_string options)
         ~induction:(effective_induction options) ~seed:options.seed
         ~retime_rounds:stats.retime_rounds ~iterations:stats.iterations ~patterns:[]
         product.Product.aig partition)

(* Register correspondence only ([5], [9]): the special case whose
   generalization to all signals is the paper's contribution. *)
let register_correspondence ?(options = default_options) spec impl =
  run ~options:{ options with candidates = Registers_only } spec impl

(* Human-readable dump of the multi-member classes of the final relation:
   each entry tags the node with its side, id, kind and polarity. *)
let pp_relation ppf (product, partition) =
  let aig = product.Product.aig in
  let describe id =
    let side =
      match (Product.node_is_spec product id, Product.node_is_impl product id) with
      | true, true -> "shared"
      | true, false -> "spec"
      | false, true -> "impl"
      | false, false -> if Product.node_is_helper product id then "retime" else "miter"
    in
    let kind =
      match Aig.node aig id with
      | Aig.Const -> "const"
      | Aig.Pi i -> Printf.sprintf "pi%d" i
      | Aig.Latch i -> Printf.sprintf "latch%d" i
      | Aig.And _ -> Printf.sprintf "and%d" id
    in
    Printf.sprintf "%s%s:%s" (if Partition.polarity partition id then "~" else "") side kind
  in
  let classes = Partition.multi_member_classes partition in
  Format.fprintf ppf "signal correspondence relation: %d classes (%d with partners)@."
    (Partition.n_classes partition) (List.length classes);
  List.iter
    (fun cls ->
      Format.fprintf ppf "  {%s}@."
        (String.concat ", " (List.map describe (Partition.members partition cls))))
    classes

(* Portfolio mode: what a production deployment runs.  Strategies are
   tried in increasing cost order until one returns a conclusive verdict;
   every strategy is sound, so the first conclusive answer stands.  The
   budget-limited BDD engine comes first (the paper), then the SAT engine,
   then its k-inductive strengthenings.

   With a deadline set, the portfolio degrades gracefully instead of
   returning a bare Unknown: the remaining wall clock is split evenly over
   the remaining rungs (one extra rung is held in reserve), each rung that
   runs out of time leaves an in-memory checkpoint of its partition, later
   rungs whose induction depth the checkpoint can soundly seed resume from
   it, and the reserved final rung re-runs the paper's BDD engine from the
   most refined partition any strategy reached.

   With [use_analysis] set, the ladder is steered statically and
   dynamically (see {!Analysis.Steer}): both circuits are pre-reduced once
   (semantics-preserving, so verdicts and traces carry back to the
   originals; skipped when resuming, because checkpoint fingerprints bind
   to the circuits as given), the rung order follows the shape metrics,
   rungs whose induction depth an already COMPLETED fixed point covers are
   skipped (the gfp at a given depth is engine-independent), and once a
   BDD rung blows its node budget no further BDD rung runs. *)
let portfolio ?(options = default_options) ?(max_unroll = 3) spec impl =
  let spec, impl, plan =
    if not options.use_analysis then (spec, impl, None)
    else begin
      let spec, impl =
        match options.resume with
        | Some _ -> (spec, impl)
        | None ->
          let spec', _ = Analysis.Reduce.run ~seed:options.seed spec in
          let impl', _ = Analysis.Reduce.run ~seed:options.seed impl in
          (spec', impl')
      in
      let ms = Analysis.Metrics.summary spec and mi = Analysis.Metrics.summary impl in
      let plan =
        Analysis.Steer.plan ~max_unroll
          ~product_latches:(ms.Analysis.Metrics.latches + mi.Analysis.Metrics.latches)
          ~levels:(max ms.Analysis.Metrics.levels mi.Analysis.Metrics.levels)
          ()
      in
      (spec, impl, Some plan)
    end
  in
  let strategies =
    match plan with
    | None ->
      { options with engine = Bdd_engine }
      :: List.concat_map
           (fun k -> [ { options with engine = Sat_engine; sat_unroll = k } ])
           (List.init max_unroll (fun i -> i + 1))
    | Some plan ->
      List.map
        (fun r ->
          match r.Analysis.Steer.engine with
          | Analysis.Steer.Bdd -> { options with engine = Bdd_engine; sat_unroll = 1 }
          | Analysis.Steer.Sat ->
            { options with engine = Sat_engine; sat_unroll = r.Analysis.Steer.induction })
        plan.Analysis.Steer.rungs
  in
  (* dynamic skip state (analysis mode only): the deepest induction whose
     fixed point some rung COMPLETED, and whether a BDD rung aborted on
     the node budget *)
  let completed_depth = ref 0 in
  let bdd_exhausted = ref false in
  let note_unknown opts (stats : stats) =
    if plan <> None then
      match stats.exhausted with
      | None -> completed_depth := max !completed_depth (effective_induction opts)
      | Some "bdd nodes" -> if opts.engine = Bdd_engine then bdd_exhausted := true
      | Some _ -> ()
  in
  let skip_rung opts =
    plan <> None
    && (effective_induction opts <= !completed_depth
       || (!bdd_exhausted && opts.engine = Bdd_engine))
  in
  if options.deadline_seconds <= 0.0 then
    let rec try_all last = function
      | [] -> (match last with Some v -> v | None -> assert false)
      | opts :: rest ->
        if skip_rung opts && last <> None then try_all last rest
        else (
          match run ~options:opts spec impl with
          | (Equivalent _ | Not_equivalent _) as verdict -> verdict
          | Unknown stats as verdict ->
            note_unknown opts stats;
            try_all (Some verdict) rest)
    in
    try_all None strategies
  else begin
    let t0 = Clock.now () in
    let remaining () = options.deadline_seconds -. Clock.since t0 in
    let ckpt = ref options.resume in
    let budget_hit = ref false in
    (* a checkpoint of induction depth kc soundly seeds runs of effective
       depth k <= kc only (gfp(kc) is a subset of gfp(k)) *)
    let seedable opts =
      match !ckpt with
      | Some cp when cp.Checkpoint.induction >= effective_induction opts -> Some cp
      | Some _ | None -> None
    in
    let run_rung ~slice opts =
      let opts = { opts with deadline_seconds = slice; resume = seedable opts } in
      let ((verdict, _, _) as result) = run_with_relation ~options:opts spec impl in
      (match verdict with
      | Unknown stats ->
        if stats.exhausted <> None then budget_hit := true;
        note_unknown opts stats;
        (match checkpoint_of_run ~options:opts ~spec ~impl result with
        | Ok cp -> ckpt := Some cp
        | Error _ -> ())
      | Equivalent _ | Not_equivalent _ -> ());
      verdict
    in
    let n = List.length strategies in
    let rec try_all i last = function
      | [] -> (
        (* degradation rung: nothing was conclusive, so spend whatever
           time is left re-running the BDD engine seeded from the most
           refined partition instead of reporting a bare Unknown *)
        let fallback = { options with engine = Bdd_engine; sat_unroll = 1 } in
        let finished = match last with Some v -> v | None -> assert false in
        if
          (not !budget_hit) || remaining () <= 0.001 || seedable fallback = None
          || skip_rung fallback
        then finished
        else
          match run_rung ~slice:(remaining ()) fallback with
          | (Equivalent _ | Not_equivalent _) as verdict -> verdict
          | Unknown _ as verdict -> verdict)
      | opts :: rest ->
        let rem = remaining () in
        if (i > 0 && rem <= 0.001) || (skip_rung opts && last <> None) then
          try_all (i + 1) last rest
        else begin
          (* an equal share of what is left, keeping one share in reserve
             for the degradation rung *)
          let slice = max 0.001 (rem /. float_of_int (n + 1 - i)) in
          match run_rung ~slice opts with
          | (Equivalent _ | Not_equivalent _) as verdict -> verdict
          | Unknown _ as verdict -> try_all (i + 1) (Some verdict) rest
        end
    in
    try_all 0 None strategies
  end
