(* Speculative reduction (ABC-style SRM over the product machine).

   Assume every candidate equivalence of the current partition at once:
   rebuild the product with each non-representative class member REPLACED
   by (the polarity-adjusted image of) its representative, so every
   fanout reads the representative's signal.  Each merge carries one
   assumption obligation — "the member's own function still equals the
   representative's signal in the reduced machine" — and the one-frame
   induction step Eq.(3) is discharged on this reduced machine instead of
   the full product.  Structural hashing plus the two-level rewrite rules
   ([Analysis.Reduce.smart_and]) collapse most member functions onto
   their representative outright (the FRAIG effect): those obligations
   are structurally true and never reach a solver, which is where the
   speedup comes from.

   Soundness / exactness.  Write Q for the conjunction of the partition's
   candidate equivalences over the ORIGINAL product and Q-hat for the
   conjunction of the (non-trivial) obligations over the reduced machine.
   By induction over the topological order, any frame-1 valuation of
   (inputs, latches) satisfying Q-hat makes every reduced node equal to
   its original counterpart — a merged fanin read is exactly the equality
   Q grants — so at such valuations the reduced transition function, the
   reduced obligations at frame 2, and the original Eq.(3) instances all
   coincide with their original-product counterparts.  Hence discharging
   "Q-hat at frame 1 implies each obligation at frame 2" on the reduced
   machine proves exactly Eq.(3) for the partition, and any counterexample
   model yields a genuine Eq.(3) witness of the original product (replayed
   through [Simpool] after re-simulating the ORIGINAL transition function
   — never the speculative one).  The fixed point reached by
   refine-on-refutation is therefore the same greatest fixed point the
   plain per-class sweeps compute.

   The reduced AIG deliberately skips [Aig.cleanup]: obligation literals
   must stay valid node references even when the merge makes them dead. *)

type obligation = {
  ob_class : int;  (* partition class id at build time *)
  ob_member : int;  (* original product node merged away *)
  ob_rep : int;  (* its class representative (original node) *)
  ob_mem_lit : int;  (* reduced literal: the member's own function *)
  ob_rep_lit : int;  (* reduced literal: what fanouts read instead *)
}

type t = {
  raig : Aig.t;  (* the speculatively reduced product *)
  map : int array;  (* original node id -> reduced literal of its positive literal *)
  partition_version : int;
  obligations : obligation array;  (* the strashing survivors, ascending member id *)
  n_merges : int;  (* members merged onto representatives *)
  n_trivial : int;  (* merges discharged structurally *)
  strash_rewrites : int;  (* two-level identities fired during rebuild *)
}

(* Reduced image of an original literal. *)
let tr t l = t.map.(Aig.node_of_lit l) lxor (l land 1)

let build product partition =
  let aig = product.Product.aig in
  let n = Aig.num_nodes aig in
  (* member node -> representative node, for every merge candidate *)
  let rep_tbl = Hashtbl.create 256 in
  List.iter
    (fun (rep, mem) -> Hashtbl.replace rep_tbl mem rep)
    (Partition.constraint_pairs partition);
  let raig = Aig.create () in
  let pi_lits = Array.init (Aig.num_pis aig) (fun _ -> Aig.add_pi raig) in
  let latch_lits =
    Array.init (Aig.num_latches aig) (fun i -> Aig.add_latch raig ~init:(Aig.latch_init aig i))
  in
  let map = Array.make (max n 1) 0 in
  let tr l = map.(Aig.node_of_lit l) lxor (l land 1) in
  let rewrites = ref 0 in
  let obligations = ref [] in
  let n_merges = ref 0 and n_trivial = ref 0 in
  for id = 0 to n - 1 do
    (* the node's own function over the (already merged) fanin images *)
    let shadow =
      match Aig.node aig id with
      | Aig.Const -> 0
      | Aig.Pi i -> pi_lits.(i)
      | Aig.Latch i -> latch_lits.(i)
      | Aig.And (a, b) -> Analysis.Reduce.smart_and rewrites raig (tr a) (tr b)
    in
    match Hashtbl.find_opt rep_tbl id with
    | None -> map.(id) <- shadow
    | Some rep ->
      (* representatives are class minima, so [map.(rep)] is already set *)
      incr n_merges;
      let pol_diff = Partition.polarity partition id <> Partition.polarity partition rep in
      let rep_img = map.(rep) lxor (if pol_diff then 1 else 0) in
      map.(id) <- rep_img;
      if shadow = rep_img then incr n_trivial
      else
        obligations :=
          {
            ob_class = Partition.class_of partition rep;
            ob_member = id;
            ob_rep = rep;
            ob_mem_lit = shadow;
            ob_rep_lit = rep_img;
          }
          :: !obligations
  done;
  List.iteri
    (fun i lit -> Aig.set_latch_next raig lit ~next:(tr (Aig.latch_next aig i)))
    (Array.to_list latch_lits);
  List.iter (fun (name, l) -> Aig.add_po raig name (tr l)) (Aig.pos aig);
  {
    raig;
    map;
    partition_version = Partition.version partition;
    obligations = Array.of_list (List.rev !obligations);
    n_merges = !n_merges;
    n_trivial = !n_trivial;
    strash_rewrites = !rewrites;
  }

(* Is an obligation still live?  Mid-round Simpool flushes refine the
   partition; an obligation whose pair has already been separated (or
   re-polarized) needs no solver time. *)
let obligation_live partition ob =
  Partition.lits_equal partition
    (Partition.norm_lit partition ob.ob_member)
    (Partition.norm_lit partition ob.ob_rep)

let broadcast b = if b then -1L else 0L

(* Does the full candidate relation Q of [partition] hold on the ORIGINAL
   product at the given frame-1 valuation?  Used to vet counterexamples
   found without the Q-hat assumptions (the BDD screen) before their
   successor state is replayed into the pool, and to certify simulation
   states as Q-reachable. *)
let q_holds product partition ~pi ~latch =
  let aig = product.Product.aig in
  let pi_words = Array.map broadcast pi in
  let latch_words = Array.map broadcast latch in
  let values = Aig.Sim.eval_comb aig ~pi_words ~latch_words in
  List.for_all
    (fun cls ->
      match Partition.members partition cls with
      | [] | [ _ ] -> true
      | rep :: rest ->
        let v = Aig.Sim.lit_word values (Partition.norm_lit partition rep) in
        List.for_all
          (fun m -> Aig.Sim.lit_word values (Partition.norm_lit partition m) = v)
          rest)
    (Partition.multi_member_classes partition)

(* Original-product successor state of a frame-1 valuation: the exact
   replay rule.  Counterexample states always step through the ORIGINAL
   transition function — stepping the speculative one would justify
   splits with states the real machine cannot reach under Q. *)
let step_original product ~pi ~latch =
  let aig = product.Product.aig in
  let pi_words = Array.map broadcast pi in
  let latch_words = Array.map broadcast latch in
  let _, next = Aig.Sim.step aig ~pi_words ~latch_words in
  Array.map (fun w -> Int64.equal (Int64.logand w 1L) 1L) next
