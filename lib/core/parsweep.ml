(* Work-stealing domain pool for sweep scheduling.

   The refinement engines face an embarrassingly parallel inner loop —
   one independent combinational check per equivalence class and round —
   but each worker needs expensive private state (a SAT solver holding
   the unrolled product CNF) that must be built once and reused across
   every round of every sweep.  This pool owns that shape:

   - [create ~jobs ~init] starts [jobs - 1] persistent worker domains
     (plus the caller, who participates as lane 0); each lane builds its
     private state lazily with [init lane] inside its own domain, so
     solver construction itself is parallel and no state ever crosses a
     domain boundary;

   - [map pool ~f tasks] shards the task array into contiguous
     per-lane segments claimed by atomic cursors; a lane that drains its
     segment steals from the most loaded victim, so an unlucky shard of
     hard classes cannot serialize the round;

   - results are written into per-task slots and returned in task order
     — the caller observes a deterministic, sequential-looking result
     array no matter which lane computed what;

   - a task that raises is recorded (keeping the failure of the
     smallest task index when several lanes fail) and re-raised in the
     caller after the batch completes, so worker domains never die and
     the pool stays usable;

   - at [jobs = 1] everything runs inline in the caller with no domains,
     locks or atomics — the degenerate pool is the engines' sequential
     code path (and the only one the shared-mutable BDD engine uses).

   Synchronization is a single mutex + two condition variables
   (work-ready, work-done).  Workers only ever read the frozen snapshot
   the coordinator published before broadcasting, and the coordinator
   only reads results after every lane has checked in, so the mutex
   hand-off establishes all the happens-before edges the OCaml memory
   model needs. *)

type stats = {
  domains : int;  (* lanes, including the coordinator's lane 0 *)
  lane_tasks : int array;  (* tasks completed per lane, lifetime *)
  steals : int;  (* tasks claimed from another lane's segment *)
  wait_seconds : float;  (* coordinator idle time awaiting stragglers *)
}

type 'w batch = {
  run : 'w -> int -> unit;  (* execute one task slot with a lane's state *)
  next : int Atomic.t array;  (* per-lane segment cursors *)
  hi : int array;  (* per-lane segment ends (exclusive) *)
}

type 'w t = {
  jobs : int;
  init : int -> 'w;
  mutable state0 : 'w option;  (* the coordinator's lane, built lazily *)
  lock : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable batch : 'w batch option;
  mutable generation : int;
  mutable outstanding : int;  (* spawned lanes still busy on the batch *)
  mutable stop : bool;
  mutable failure : (int * exn * Printexc.raw_backtrace) option;
  lane_tasks : int array;
  steals : int Atomic.t;
  mutable wait_seconds : float;
  mutable domains : unit Domain.t array;
  mutable shut : bool;
  states : 'w option array;
      (* every lane's lazily built state, published at init time; the
         coordinator may only read these between batches — the work-done
         hand-off under the mutex gives the happens-before edge *)
}

let jobs t = t.jobs

(* Keep the failure with the smallest task index: with a single lane the
   first failing task wins, so multi-lane runs re-raise the same
   exception a sequential run would have surfaced. *)
let record_failure t idx e bt =
  Mutex.lock t.lock;
  (match t.failure with
  | Some (i, _, _) when i <= idx -> ()
  | _ -> t.failure <- Some (idx, e, bt));
  Mutex.unlock t.lock

(* Drain the lane's own segment, then steal from the most loaded victim
   until no segment has work left. *)
let run_lane t b state lane =
  let run_task victim =
    let idx = Atomic.fetch_and_add b.next.(victim) 1 in
    if idx >= b.hi.(victim) then false
    else begin
      if victim <> lane then Atomic.incr t.steals;
      (try b.run state idx
       with e -> record_failure t idx e (Printexc.get_raw_backtrace ()));
      t.lane_tasks.(lane) <- t.lane_tasks.(lane) + 1;
      true
    end
  in
  while run_task lane do () done;
  let lanes = Array.length b.hi in
  let exhausted = ref false in
  while not !exhausted do
    let victim = ref (-1) and best = ref 0 in
    for j = 0 to lanes - 1 do
      let remaining = b.hi.(j) - Atomic.get b.next.(j) in
      if remaining > !best then begin
        victim := j;
        best := remaining
      end
    done;
    if !victim < 0 then exhausted := true
    else ignore (run_task !victim) (* a lost claim race just rescans *)
  done

let run_lane_safely t b state_of lane =
  match (try Ok (state_of ()) with e -> Error (e, Printexc.get_raw_backtrace ())) with
  | Ok state -> run_lane t b state lane
  | Error (e, bt) ->
    (* [init] failed: report it unless a real task failure outranks it *)
    record_failure t max_int e bt

let worker_loop t lane =
  let state = ref None in
  let state_of () =
    match !state with
    | Some s -> s
    | None ->
      let s = t.init lane in
      state := Some s;
      t.states.(lane) <- Some s;
      s
  in
  let rec loop seen =
    Mutex.lock t.lock;
    while t.generation = seen && not t.stop do
      Condition.wait t.work_ready t.lock
    done;
    if t.stop then Mutex.unlock t.lock
    else begin
      let seen = t.generation in
      let b = match t.batch with Some b -> b | None -> assert false in
      Mutex.unlock t.lock;
      run_lane_safely t b state_of lane;
      Mutex.lock t.lock;
      t.outstanding <- t.outstanding - 1;
      if t.outstanding = 0 then Condition.signal t.work_done;
      Mutex.unlock t.lock;
      loop seen
    end
  in
  loop 0

let create ~jobs ~init =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      init;
      state0 = None;
      lock = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      batch = None;
      generation = 0;
      outstanding = 0;
      stop = false;
      failure = None;
      lane_tasks = Array.make jobs 0;
      steals = Atomic.make 0;
      wait_seconds = 0.0;
      domains = [||];
      shut = false;
      states = Array.make jobs None;
    }
  in
  if jobs > 1 then
    t.domains <-
      Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let state0 t =
  match t.state0 with
  | Some s -> s
  | None ->
    let s = t.init 0 in
    t.state0 <- Some s;
    t.states.(0) <- Some s;
    s

(* The states built so far, in lane order.  Only valid between batches:
   no [map] may be in flight, and the caller must be the coordinator —
   the batch hand-off under the mutex is what makes the workers' writes
   visible here. *)
let initialized_states t =
  Array.to_list t.states |> List.filter_map (fun s -> s)

let map t ~f tasks =
  if t.shut then invalid_arg "Parsweep.map: pool is shut down";
  let n = Array.length tasks in
  if n = 0 then [||]
  else if t.jobs = 1 then begin
    (* inline path: no domains, natural exception propagation *)
    let s = state0 t in
    Array.map
      (fun x ->
        let y = f s x in
        t.lane_tasks.(0) <- t.lane_tasks.(0) + 1;
        y)
      tasks
  end
  else begin
    let results = Array.make n None in
    let run state idx = results.(idx) <- Some (f state tasks.(idx)) in
    let lanes = t.jobs in
    let b =
      {
        run;
        next = Array.init lanes (fun j -> Atomic.make (j * n / lanes));
        hi = Array.init lanes (fun j -> (j + 1) * n / lanes);
      }
    in
    Mutex.lock t.lock;
    t.failure <- None;
    t.batch <- Some b;
    t.generation <- t.generation + 1;
    t.outstanding <- lanes - 1;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.lock;
    run_lane_safely t b (fun () -> state0 t) 0;
    let t0 = Clock.now () in
    Mutex.lock t.lock;
    while t.outstanding > 0 do
      Condition.wait t.work_done t.lock
    done;
    t.batch <- None;
    let failure = t.failure in
    t.failure <- None;
    Mutex.unlock t.lock;
    t.wait_seconds <- t.wait_seconds +. Clock.since t0;
    (match failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let stats t =
  {
    domains = t.jobs;
    lane_tasks = Array.copy t.lane_tasks;
    steals = Atomic.get t.steals;
    wait_seconds = t.wait_seconds;
  }

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    if Array.length t.domains > 0 then begin
      Mutex.lock t.lock;
      t.stop <- true;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.lock;
      Array.iter Domain.join t.domains;
      t.domains <- [||]
    end
  end
