(* Equivalence classes over the candidate signals of a product machine.

   Each candidate node carries a normalization polarity fixed by the
   reference valuation (paper Section 3): the normalized function of node
   [v] is [f_v] itself when the reference value is 1 and its complement
   otherwise, so all class members agree (value 1) at the reference point
   and antivalent signals share a class.

   Refinement only ever splits classes, mirroring the greatest fixed-point
   iteration; the number of classes is monotonically non-decreasing and
   bounded by |F|, which bounds the iteration count (paper Theorem 2). *)

type t = {
  class_of : int array; (* node id -> class id, or -1 for non-candidates *)
  pol : bool array; (* node id -> true when normalization complements *)
  mutable members : int list array; (* class id -> member node ids, sorted *)
  mutable n_classes : int;
  mutable version : int; (* bumped once per refinement event that splits *)
  mutable touched : int array; (* class id -> version of last membership change *)
  mutable moved : (int * int) list; (* (version, node) journal, newest first *)
  mutable n_moved : int;
}

let create ~n_nodes ~candidates ~pol =
  let class_of = Array.make n_nodes (-1) in
  List.iter (fun id -> class_of.(id) <- 0) candidates;
  let members = Array.make (max 16 n_nodes) [] in
  members.(0) <- List.sort_uniq compare candidates;
  {
    class_of;
    pol;
    members;
    n_classes = 1;
    version = 0;
    touched = Array.make (max 16 n_nodes) 0;
    moved = [];
    n_moved = 0;
  }

let n_classes t = t.n_classes
let class_of t id = t.class_of.(id)
let polarity t id = t.pol.(id)
let members t cls = t.members.(cls)
let is_candidate t id = t.class_of.(id) >= 0
let version t = t.version
let touched_version t cls = t.touched.(cls)

(* Nodes that changed class since [v]; [None] when the journal segment is
   too long to be worth scanning (callers treat that as "anything may have
   moved"). *)
let moved_since ?(limit = 1024) t v =
  let rec go acc n = function
    | (ver, id) :: rest when ver > v ->
      if n >= limit then None else go (id :: acc) (n + 1) rest
    | _ -> Some acc
  in
  go [] 0 t.moved

(* A refinement event: bump the version once, then record each node that
   changed class and mark the affected classes. *)
let begin_event t = t.version <- t.version + 1

let record_move t id =
  t.moved <- (t.version, id) :: t.moved;
  t.n_moved <- t.n_moved + 1

let mark_touched t cls = t.touched.(cls) <- t.version

(* Normalized literal of a candidate: value 1 at the reference point. *)
let norm_lit t id = Aig.lit_of_node id lor (if t.pol.(id) then 1 else 0)

let representative t cls =
  match t.members.(cls) with
  | rep :: _ -> rep
  | [] -> invalid_arg "Partition.representative: empty class"

let fresh_class t =
  if t.n_classes = Array.length t.members then begin
    let bigger = Array.make (2 * t.n_classes) [] in
    Array.blit t.members 0 bigger 0 t.n_classes;
    t.members <- bigger;
    let bigger_touched = Array.make (2 * t.n_classes) 0 in
    Array.blit t.touched 0 bigger_touched 0 t.n_classes;
    t.touched <- bigger_touched
  end;
  t.n_classes <- t.n_classes + 1;
  t.touched.(t.n_classes - 1) <- t.version;
  t.n_classes - 1

(* Split every class by a key function on its members; members sharing a
   key stay together.  The subgroup containing the old representative
   keeps the class id.  Returns the number of classes created. *)
let refine_by_key t key =
  let created = ref 0 in
  let bumped = ref false in
  let bump () =
    if not !bumped then begin
      begin_event t;
      bumped := true
    end
  in
  for cls = 0 to t.n_classes - 1 do
    match t.members.(cls) with
    | [] | [ _ ] -> ()
    | rep :: _ as mems ->
      let groups = Hashtbl.create 8 in
      let order = ref [] in
      List.iter
        (fun id ->
          let k = key id in
          match Hashtbl.find_opt groups k with
          | Some l -> Hashtbl.replace groups k (id :: l)
          | None ->
            order := k :: !order;
            Hashtbl.replace groups k [ id ])
        mems;
      if Hashtbl.length groups > 1 then begin
        bump ();
        mark_touched t cls;
        let rep_key = key rep in
        List.iter
          (fun k ->
            let group = List.rev (Hashtbl.find groups k) in
            let target = if k = rep_key then cls else fresh_class t in
            if k <> rep_key then begin
              incr created;
              List.iter (fun id -> record_move t id) group
            end;
            t.members.(target) <- group;
            List.iter (fun id -> t.class_of.(id) <- target) group)
          (List.rev !order)
      end
  done;
  !created

(* Split one class using a pairwise test against subgroup representatives:
   a member joins the first subgroup whose representative it matches.
   Returns true if the class split. *)
let refine_class t cls ~equal =
  match t.members.(cls) with
  | [] | [ _ ] -> false
  | mems ->
    let subgroups = ref [] in
    (* (rep, members rev) list, in discovery order *)
    List.iter
      (fun id ->
        let rec place = function
          | [] -> subgroups := !subgroups @ [ (id, ref [ id ]) ]
          | (rep, group) :: rest -> if equal rep id then group := id :: !group else place rest
        in
        place !subgroups)
      mems;
    match !subgroups with
    | [] | [ _ ] -> false
    | (_, first) :: rest ->
      begin_event t;
      mark_touched t cls;
      t.members.(cls) <- List.rev !first;
      List.iter
        (fun (_, group) ->
          let target = fresh_class t in
          let group = List.rev !group in
          t.members.(target) <- group;
          List.iter
            (fun id ->
              record_move t id;
              t.class_of.(id) <- target)
            group)
        rest;
      true

(* Are two candidate literals provably equal under the current partition?
   Same class and consistent relative polarity. *)
let lits_equal t la lb =
  let na = Aig.node_of_lit la and nb = Aig.node_of_lit lb in
  t.class_of.(na) >= 0
  && t.class_of.(na) = t.class_of.(nb)
  &&
  let pa = Aig.lit_is_compl la <> t.pol.(na) in
  let pb = Aig.lit_is_compl lb <> t.pol.(nb) in
  pa = pb

(* All (representative, member) pairs of every multi-member class: the
   equality constraints whose conjunction is the correspondence condition
   Q (Definition 1). *)
let constraint_pairs t =
  let acc = ref [] in
  for cls = 0 to t.n_classes - 1 do
    match t.members.(cls) with
    | [] | [ _ ] -> ()
    | rep :: rest -> List.iter (fun id -> acc := (rep, id) :: !acc) rest
  done;
  !acc

let multi_member_classes t =
  let acc = ref [] in
  for cls = t.n_classes - 1 downto 0 do
    match t.members.(cls) with
    | [] | [ _ ] -> ()
    | _ -> acc := cls :: !acc
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "partition: %d classes@." t.n_classes;
  for cls = 0 to t.n_classes - 1 do
    match t.members.(cls) with
    | [] | [ _ ] -> ()
    | mems ->
      Format.fprintf ppf "  class %d: %s@." cls
        (String.concat " "
           (List.map
              (fun id -> Printf.sprintf "%s%d" (if t.pol.(id) then "~" else "") id)
              mems))
  done
