(* Ternary-simulation seeding of the signal-correspondence partition.

   X-valued simulation of the product machine from its defined initial
   state (all inputs X) yields, per node, a signature of definite values
   over the first frames of the walk — packed as (mask, value) int pairs
   by [Lint.Aig_ternary.signatures].  Two signals whose signatures are
   definitely unequal on some frame take different values at that frame of
   EVERY real run, so they cannot be sequentially equivalent: splitting
   them apart is exact, costs no BDD or SAT effort, and the greatest fixed
   point then needs fewer refinement iterations.  This complements the
   random-simulation seeding of Section 4: ternary simulation follows the
   unique input-independent part of the state sequence (reset sequences,
   stuck and self-feeding registers), which random patterns only sample.

   Soundness placement: the driver applies this only after the conclusive
   initial-state output check, so an (impossible) over-split could only
   degrade Equivalent to Unknown, never manufacture a wrong verdict. *)

let refine ?max_steps product partition =
  let aig = product.Product.aig in
  let sigs = Lint.Aig_ternary.signatures ?max_steps aig in
  let norm id =
    let mask, value = sigs.(id) in
    (* complementing a ternary value flips the defined bits only *)
    if Partition.polarity partition id then (mask, value lxor mask) else (mask, value)
  in
  let compatible a b =
    let ma, va = norm a in
    let mb, vb = norm b in
    ma land mb land (va lxor vb) = 0
  in
  let split = ref 0 in
  List.iter
    (fun cls -> if Partition.refine_class partition cls ~equal:compatible then incr split)
    (Partition.multi_member_classes partition);
  !split

(* Latches of the product machine provably stuck at a constant on every
   reachable state (by latch index): the facts behind the [stuck-latch]
   lint diagnostic, exposed here for instrumentation. *)
let stuck_constants ?max_steps product =
  Lint.Aig_ternary.stuck_latches ?max_steps product.Product.aig
