(* Counterexample pattern pool: every SAT/BDD counterexample is one
   (state, input) valuation of the product machine.  Instead of spending a
   full partition walk on each model, the valuations are packed as bit
   lanes into a 64-wide pattern buffer; one bit-parallel [Aig.Sim] pass
   then splits *all* classes against *all* accumulated patterns at once,
   so every solver model keeps paying off across later sweep iterations.

   Soundness: a lane is only ever added for a valuation witnessed by a run
   that conforms to the correspondence condition of some partition coarser
   than (or equal to) the current one — an Eq.(3) witness — or by a run
   from the initial state within the base-case window — an Eq.(2) witness.
   Both kinds can never separate signals of the greatest fixed point, so
   flushing is an exact accelerator: the final relation is unchanged. *)

type t = {
  aig : Aig.t;
  n_pis : int;
  n_latches : int;
  pi_words : int64 array;
  latch_words : int64 array;
  mutable lanes : int; (* filled bit lanes of the current buffer, 0..64 *)
  mutable total_lanes : int; (* lanes ever added *)
  mutable flushes : int;
  mutable resim_splits : int; (* classes created by flushes *)
}

let create aig =
  {
    aig;
    n_pis = Aig.num_pis aig;
    n_latches = Aig.num_latches aig;
    pi_words = Array.make (Aig.num_pis aig) 0L;
    latch_words = Array.make (Aig.num_latches aig) 0L;
    lanes = 0;
    total_lanes = 0;
    flushes = 0;
    resim_splits = 0;
  }

let lanes t = t.lanes
let total_lanes t = t.total_lanes
let flushes t = t.flushes
let resim_splits t = t.resim_splits
let is_full t = t.lanes >= 64

(* Pack one counterexample valuation into the next free lane.  [pi] and
   [latch] read the model by input / latch index. *)
let add t ~pi ~latch =
  if is_full t then invalid_arg "Simpool.add: pool is full";
  let bit = Int64.shift_left 1L t.lanes in
  for i = 0 to t.n_pis - 1 do
    if pi i then t.pi_words.(i) <- Int64.logor t.pi_words.(i) bit
  done;
  for i = 0 to t.n_latches - 1 do
    if latch i then t.latch_words.(i) <- Int64.logor t.latch_words.(i) bit
  done;
  t.lanes <- t.lanes + 1;
  t.total_lanes <- t.total_lanes + 1

(* One bit-parallel pass over the product AIG: split every class by the
   normalized valuation of its members on all buffered patterns (unused
   lanes are masked out — an empty lane is *not* a witness).  Returns the
   number of classes created and resets the buffer. *)
let flush t partition =
  if t.lanes = 0 then 0
  else begin
    let mask =
      if t.lanes >= 64 then -1L else Int64.sub (Int64.shift_left 1L t.lanes) 1L
    in
    let values =
      Aig.Sim.eval_comb t.aig ~pi_words:t.pi_words ~latch_words:t.latch_words
    in
    let created =
      Partition.refine_by_key partition (fun id ->
          Int64.logand (Aig.Sim.lit_word values (Partition.norm_lit partition id)) mask)
    in
    Array.fill t.pi_words 0 t.n_pis 0L;
    Array.fill t.latch_words 0 t.n_latches 0L;
    t.lanes <- 0;
    t.flushes <- t.flushes + 1;
    t.resim_splits <- t.resim_splits + created;
    created
  end

(* Pending lanes as concrete (input, state) valuations, oldest first —
   the checkpoint image of the buffer.  Re-adding the snapshot to a
   fresh pool replays exactly the witnesses that had not yet been
   flushed when the run was interrupted. *)
let snapshot t =
  List.init t.lanes (fun lane ->
      let bit w = Int64.logand (Int64.shift_right_logical w lane) 1L = 1L in
      ( Array.init t.n_pis (fun i -> bit t.pi_words.(i)),
        Array.init t.n_latches (fun i -> bit t.latch_words.(i)) ))
