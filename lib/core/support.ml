(* Structural support cones of the product machine, closed through latch
   next-state functions: cone(v) is the set of nodes reachable from v by
   walking AND fanins and from each latch into its next-state cone, to a
   fixed point.  Stored as one bitset row per node.

   The cones drive the dirty-class scheduler: a class proven stable at
   partition version V only needs re-examination when a later split moved
   a node that its members structurally depend on (or that depends on
   them).  The check is a heuristic over-approximation direction-wise, so
   engines confirm a zero-split sweep with a strict pass before reporting
   the fixed point. *)

type t = {
  n : int;
  words : int; (* words per row *)
  table : int64 array; (* n rows of [words] int64s *)
  pis : int array; (* PI node ids, for the input-support projections *)
}

let set_bit t row id =
  let idx = (row * t.words) + (id lsr 6) in
  t.table.(idx) <- Int64.logor t.table.(idx) (Int64.shift_left 1L (id land 63))

let test_bit t row id =
  Int64.logand t.table.((row * t.words) + (id lsr 6)) (Int64.shift_left 1L (id land 63))
  <> 0L

(* row_dst |= row_src; returns whether row_dst changed *)
let union_into t dst src =
  if dst = src then false
  else begin
    let changed = ref false in
    let db = dst * t.words and sb = src * t.words in
    for w = 0 to t.words - 1 do
      let v = Int64.logor t.table.(db + w) t.table.(sb + w) in
      if v <> t.table.(db + w) then begin
        t.table.(db + w) <- v;
        changed := true
      end
    done;
    !changed
  end

let make aig =
  let n = Aig.num_nodes aig in
  let words = (n + 63) / 64 in
  let t =
    { n; words; table = Array.make (n * words) 0L; pis = Array.of_list (Aig.pis aig) }
  in
  for id = 0 to n - 1 do
    set_bit t id id
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for id = 0 to n - 1 do
      match Aig.node aig id with
      | Aig.Const | Aig.Pi _ -> ()
      | Aig.And (a, b) ->
        if union_into t id (Aig.node_of_lit a) then changed := true;
        if union_into t id (Aig.node_of_lit b) then changed := true
      | Aig.Latch i ->
        if union_into t id (Aig.node_of_lit (Aig.latch_next aig i)) then changed := true
    done
  done;
  t

let in_cone t ~node ~of_ = node < t.n && of_ < t.n && test_bit t of_ node

(* Cone cardinality: the number of nodes a signal structurally depends on
   (closed through latches), i.e. the population count of its row. *)
let cone_size t row =
  let popcount w =
    let open Int64 in
    let w = sub w (logand (shift_right_logical w 1) 0x5555555555555555L) in
    let w =
      add (logand w 0x3333333333333333L) (logand (shift_right_logical w 2) 0x3333333333333333L)
    in
    let w = logand (add w (shift_right_logical w 4)) 0x0f0f0f0f0f0f0f0fL in
    to_int (shift_right_logical (mul w 0x0101010101010101L) 56)
  in
  let acc = ref 0 in
  let base = row * t.words in
  for w = 0 to t.words - 1 do
    acc := !acc + popcount t.table.(base + w)
  done;
  !acc

let max_cone_size t =
  let m = ref 0 in
  for row = 0 to t.n - 1 do
    m := max !m (cone_size t row)
  done;
  !m

(* --- static candidate prefilter ------------------------------------------------ *)

(* Projection of a cone onto the primary inputs.  Structural PI support
   over-approximates semantic support, so two signals with disjoint
   non-empty PI supports can only be equivalent if both are semantically
   input-free; splitting such a pair from a candidate class costs zero
   solver calls and preserves verdict soundness (splits never fabricate an
   equivalence).  Signals with EMPTY structural support — autonomous
   counters, stuck constants — are never split from anything: they are
   exactly the candidates whose equivalences live beyond the inputs'
   reach. *)
let pi_nonempty t row = Array.exists (fun pi -> test_bit t row pi) t.pis

let pi_compatible t a b =
  a >= t.n || b >= t.n
  || (not (pi_nonempty t a))
  || (not (pi_nonempty t b))
  || Array.exists (fun pi -> test_bit t a pi && test_bit t b pi) t.pis

(* Split one class by PI-support compatibility with each subgroup's
   representative; [true] when the class split. *)
let prefilter_class t partition cls =
  Partition.refine_class partition cls ~equal:(fun rep id -> pi_compatible t rep id)

(* Must class [cls], proven stable at partition version [proved_at], be
   re-examined?  Yes when its own membership changed since, or when any
   node moved since then is structurally coupled to a member (either
   direction of the cone relation). *)
let suspect t partition cls ~proved_at =
  Partition.touched_version partition cls > proved_at
  ||
  match Partition.moved_since partition proved_at with
  | None -> true (* journal segment too long to scan: assume dirty *)
  | Some moved ->
    let mems = Partition.members partition cls in
    List.exists
      (fun d ->
        List.exists
          (fun m -> in_cone t ~node:d ~of_:m || in_cone t ~node:m ~of_:d)
          mems)
      moved
