(* Structural support cones of the product machine, closed through latch
   next-state functions: cone(v) is the set of nodes reachable from v by
   walking AND fanins and from each latch into its next-state cone, to a
   fixed point.  Stored as one bitset row per node.

   The cones drive the dirty-class scheduler: a class proven stable at
   partition version V only needs re-examination when a later split moved
   a node that its members structurally depend on (or that depends on
   them).  The check is a heuristic over-approximation direction-wise, so
   engines confirm a zero-split sweep with a strict pass before reporting
   the fixed point. *)

type t = {
  n : int;
  words : int; (* words per row *)
  table : int64 array; (* n rows of [words] int64s *)
}

let set_bit t row id =
  let idx = (row * t.words) + (id lsr 6) in
  t.table.(idx) <- Int64.logor t.table.(idx) (Int64.shift_left 1L (id land 63))

let test_bit t row id =
  Int64.logand t.table.((row * t.words) + (id lsr 6)) (Int64.shift_left 1L (id land 63))
  <> 0L

(* row_dst |= row_src; returns whether row_dst changed *)
let union_into t dst src =
  if dst = src then false
  else begin
    let changed = ref false in
    let db = dst * t.words and sb = src * t.words in
    for w = 0 to t.words - 1 do
      let v = Int64.logor t.table.(db + w) t.table.(sb + w) in
      if v <> t.table.(db + w) then begin
        t.table.(db + w) <- v;
        changed := true
      end
    done;
    !changed
  end

let make aig =
  let n = Aig.num_nodes aig in
  let words = (n + 63) / 64 in
  let t = { n; words; table = Array.make (n * words) 0L } in
  for id = 0 to n - 1 do
    set_bit t id id
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for id = 0 to n - 1 do
      match Aig.node aig id with
      | Aig.Const | Aig.Pi _ -> ()
      | Aig.And (a, b) ->
        if union_into t id (Aig.node_of_lit a) then changed := true;
        if union_into t id (Aig.node_of_lit b) then changed := true
      | Aig.Latch i ->
        if union_into t id (Aig.node_of_lit (Aig.latch_next aig i)) then changed := true
    done
  done;
  t

let in_cone t ~node ~of_ = node < t.n && of_ < t.n && test_bit t of_ node

(* Must class [cls], proven stable at partition version [proved_at], be
   re-examined?  Yes when its own membership changed since, or when any
   node moved since then is structurally coupled to a member (either
   direction of the cone relation). *)
let suspect t partition cls ~proved_at =
  Partition.touched_version partition cls > proved_at
  ||
  match Partition.moved_since partition proved_at with
  | None -> true (* journal segment too long to scan: assume dirty *)
  | Some moved ->
    let mems = Partition.members partition cls in
    List.exists
      (fun d ->
        List.exists
          (fun m -> in_cone t ~node:d ~of_:m || in_cone t ~node:m ~of_:d)
          mems)
      moved
