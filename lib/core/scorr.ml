(* Public API of the signal-correspondence library; see scorr.mli. *)

module Product = Product
module Partition = Partition
module Clock = Clock
module Deadline = Deadline
module Parsweep = Parsweep
module Simpool = Simpool
module Support = Support
module Simseed = Simseed
module Ternseed = Ternseed
module Specreduce = Specreduce
module Dispatch = Dispatch
module Engine_bdd = Engine_bdd
module Engine_sat = Engine_sat
module Retime_aug = Retime_aug
module Checkpoint = Checkpoint
module Verify = Verify

type options = Verify.options
type stats = Verify.stats
type verdict = Verify.verdict =
  | Equivalent of stats
  | Not_equivalent of { frame : int; trace : bool array array option; stats : stats }
  | Unknown of stats

let default_options = Verify.default_options
let check = Verify.run
let register_correspondence = Verify.register_correspondence
let portfolio = Verify.portfolio
let verdict_stats = Verify.verdict_stats
