(* Per-class hybrid engine dispatcher for speculative reduction.

   Each assumption obligation of a speculatively reduced product
   ([Specreduce.t]) is routed to one of three discharge engines:

   - simulation-refutation: a bit-parallel forward walk of the ORIGINAL
     product from the initial state, restricted to states certified to
     satisfy the current candidate relation Q (the BMC-style disproof
     pass — bounded, concrete, built for free on the strengthened
     partition);
   - BDD: an unconstrained two-frame validity check of the obligation on
     the reduced circuit — valid without the Q-hat assumptions is valid
     with them a fortiori, and a counterexample is vetted against Q on
     the original product before it may refute anything;
   - incremental SAT: the exact workhorse — a (k+1)-frame encoding of the
     reduced circuit with the Q-hat assumptions clause-guarded at frames
     1..k and the obligation's difference activated at frame k+1 (k =
     [config.unroll], the verifier's induction depth; k = 1 is the
     paper's Eq.(3)), living in the persistent per-lane solvers (one
     [Sat.t] per [Parsweep] lane, each round's encoding guarded by an
     activation literal that is released when the reduction is rebuilt,
     so retired clauses are GC'd).

   Routing combines static shape (cone size and level depth of the
   obligation's representative) with the online EMA cost model of
   [Analysis.Steer.Cost]; an engine that exhausts its budget on a class
   (BDD node blowup) is banned for that class and the obligation falls
   back to SAT, which is never banned and guarantees progress.

   Counterexample replay discipline (the soundness-critical invariant):
   a pattern enters the shared [Simpool] only as (delta_orig(s, x1), x2)
   where (s, x1) is known to satisfy Q on the ORIGINAL product — SAT
   models by the assumed Q-hat (exactness lemma in specreduce.ml), BDD
   models by an explicit [Specreduce.q_holds] check, simulation states by
   construction of the walk.  The successor state is always computed with
   the original transition function, never the speculative one. *)

exception Budget_exceeded of string

type engine = Sim | Bdd | Sat

let engine_name = function Sim -> "sim" | Bdd -> "bdd" | Sat -> "sat"

let steer_engine = function
  | Bdd -> Analysis.Steer.Bdd
  | Sat -> Analysis.Steer.Sat
  | Sim -> invalid_arg "Dispatch.steer_engine: sim has no cost-model key"

type config = {
  prefer : engine;  (* options.engine bias: the tie-break default *)
  bdd_cone_limit : int;  (* static routing threshold on cone size *)
  bdd_level_limit : int;  (* static routing threshold on level depth *)
  bdd_node_limit : int;  (* per-round BDD manager budget *)
  unroll : int;  (* induction depth k of the SAT route; >= 1 *)
  jobs : int;
  seed : int;
}

let default_config ~prefer =
  {
    prefer;
    bdd_cone_limit = 1024;
    bdd_level_limit = Analysis.Steer.bdd_level_limit;
    bdd_node_limit = 1_000_000;
    unroll = 1;
    jobs = 1;
    seed = 0;
  }

(* One persistent solver per Parsweep lane.  A round's (k+1)-frame
   encoding of the reduced circuit is guarded by [l_act]; switching
   rounds releases it, which garbage-collects the stale clauses (and any
   learnt clause mentioning them) while the solver itself — heuristic
   state included — lives on. *)
type lane = {
  l_solver : Sat.t;
  mutable l_round : int;  (* round id currently encoded; -1 = none *)
  mutable l_act : int;  (* activation variable of that encoding *)
  mutable l_enck : int -> Sat.Lit.t;  (* frame-(k+1) image of a reduced literal *)
  mutable l_s : int array;  (* frame-1 latch variables *)
  mutable l_xs : int array array;  (* input variables, one row per frame *)
}

type round = { rd_id : int; rd_sr : Specreduce.t }

type counters = {
  c_rounds : int;
  c_sat_solves : int;
  c_conflicts : int;
  c_propagations : int;
  c_restarts : int;
  c_vars : int;  (* SAT variables created, summed over the lane solvers *)
  c_bdd_checks : int;
  c_peak_nodes : int;
  c_by_sim : int;  (* obligations settled by each engine *)
  c_by_bdd : int;
  c_by_sat : int;
  c_refuted : int;
}

type t = {
  cfg : config;
  product : Product.t;
  pool : Simpool.t;  (* the verifier's shared counterexample pool *)
  deadline : Deadline.t;
  check_budget : unit -> unit;  (* caller's SAT-call budget gate *)
  cost : Analysis.Steer.Cost.t;
  support : Support.t;  (* cones of the ORIGINAL product *)
  levels : int array;  (* levels of the ORIGINAL product *)
  latch_pos : int array;  (* latch index -> BDD variable position *)
  sched : lane Parsweep.t;
  rng : Random.State.t;
  survivors : (int, unit) Hashtbl.t;  (* classes the sim screen failed on *)
  mutable round : round option;
  mutable round_ctr : int;
  mutable hist : bool array list;  (* certified Q-states, newest first *)
  mutable hist_len : int;
  mutable rounds : int;
  mutable sat_solves : int;
  mutable bdd_checks : int;
  mutable peak_nodes : int;
  mutable by_sim : int;
  mutable by_bdd : int;
  mutable by_sat : int;
  mutable refuted : int;
}

let hist_cap = 128

let initial_state aig =
  Array.init (Aig.num_latches aig) (fun i -> Aig.latch_init aig i)

let create ?(config = default_config ~prefer:Bdd) ?latch_order
    ?(check_budget = fun () -> ()) ~product ~pool ~deadline () =
  let aig = product.Product.aig in
  let n_latches = Aig.num_latches aig in
  let latch_pos =
    match latch_order with
    | Some order -> order
    | None -> Array.init n_latches (fun i -> i)
  in
  {
    cfg = config;
    product;
    pool;
    deadline;
    check_budget;
    cost = Analysis.Steer.Cost.create ();
    support = Support.make aig;
    levels = (Analysis.Metrics.make aig).Analysis.Metrics.level;
    latch_pos;
    sched = Parsweep.create ~jobs:config.jobs ~init:(fun _ ->
        {
          l_solver = Sat.create ();
          l_round = -1;
          l_act = -1;
          l_enck = (fun _ -> invalid_arg "Dispatch: no round encoded");
          l_s = [||];
          l_xs = [||];
        });
    rng = Random.State.make [| config.seed; 0x5bec |];
    survivors = Hashtbl.create 64;
    round = None;
    round_ctr = 0;
    hist = [ initial_state aig ];
    hist_len = 1;
    rounds = 0;
    sat_solves = 0;
    bdd_checks = 0;
    peak_nodes = 0;
    by_sim = 0;
    by_bdd = 0;
    by_sat = 0;
    refuted = 0;
  }

let poll t =
  if Deadline.expired t.deadline then raise (Budget_exceeded "deadline")

(* ------------------------------------------------------------------ *)
(* Routing                                                            *)

let mark_sim_survivor t ~cls = Hashtbl.replace t.survivors cls ()
let sim_survivor t ~cls = Hashtbl.mem t.survivors cls

let observe t ~cls ~engine seconds =
  match engine with
  | Sim -> ()
  | e -> Analysis.Steer.Cost.observe t.cost ~cls ~engine:(steer_engine e) seconds

let ban t ~cls ~engine =
  match engine with
  | Sim -> mark_sim_survivor t ~cls
  | e -> Analysis.Steer.Cost.note_exhausted t.cost ~cls ~engine:(steer_engine e)

(* Proving-engine choice (sim aside): static cone/level thresholds give
   the default — the caller's engine preference biases the thresholds
   (a SAT-preferring run still sends small shallow cones to BDD, just
   fewer of them) — then the cost model overrides once it has data, and
   bans always win.  SAT is never banned, so the fallback path
   terminates there. *)
let route_prove t ~cls ~cone ~level =
  let cone_limit, level_limit =
    if t.cfg.prefer = Sat then
      (t.cfg.bdd_cone_limit / 4, t.cfg.bdd_level_limit / 2)
    else (t.cfg.bdd_cone_limit, t.cfg.bdd_level_limit)
  in
  let static_default =
    if cone <= cone_limit && level <= level_limit then Analysis.Steer.Bdd
    else Analysis.Steer.Sat
  in
  match Analysis.Steer.Cost.prefer t.cost ~cls ~default:static_default with
  | Some Analysis.Steer.Bdd -> Bdd
  | Some Analysis.Steer.Sat | None -> Sat

(* Full routing rule, exposed for tests: simulation first while the class
   has never survived a screen and certified states exist; then the
   proving engines. *)
let route t ~cls ~cone ~level =
  if t.hist_len > 0 && not (sim_survivor t ~cls) then Sim
  else route_prove t ~cls ~cone ~level

let route_obligation t ob =
  let cls = ob.Specreduce.ob_class in
  route_prove t ~cls
    ~cone:(Support.cone_size t.support ob.Specreduce.ob_rep)
    ~level:
      (max
         t.levels.(ob.Specreduce.ob_rep)
         t.levels.(ob.Specreduce.ob_member))

(* ------------------------------------------------------------------ *)
(* Pattern replay into the shared pool                                *)

let add_pattern t partition ~splits ~latch ~pi =
  if Simpool.is_full t.pool then splits := !splits + Simpool.flush t.pool partition;
  Simpool.add t.pool ~pi:(fun i -> pi.(i)) ~latch:(fun i -> latch.(i))

(* SAT/BDD counterexamples: [xs] holds one row of input values per
   encoded frame, and the valuation satisfies Q on the original product
   at every frame but the last (SAT models by the assumed Q-hat — the
   frame-local exactness lemma in specreduce.ml — BDD models by the
   explicit vetting, with only two frames).  Each such frame's successor
   under the ORIGINAL transition function is therefore a certified
   state; the pool pattern is the last one together with the free
   last-frame inputs. *)
let replay_cex t partition ~splits ~s ~xs =
  let frames = Array.length xs in
  let state = ref s in
  for i = 0 to frames - 2 do
    state := Specreduce.step_original t.product ~pi:xs.(i) ~latch:!state
  done;
  add_pattern t partition ~splits ~latch:!state ~pi:xs.(frames - 1)

(* ------------------------------------------------------------------ *)
(* Simulation screen: the forward walk                                *)

let bit w j = Int64.equal (Int64.logand (Int64.shift_right_logical w j) 1L) 1L

(* One bit-parallel pass of the original product over up to 64 lanes of
   (certified Q-state, random inputs).  Returns the node-word array, the
   per-lane packed states/inputs, the number of lanes, and the next-state
   words (for extending the walk). *)
let sim_frame t =
  let aig = t.product.Product.aig in
  let n_pis = Aig.num_pis aig and n_latches = Aig.num_latches aig in
  let states = Array.of_list t.hist in
  let lanes = 64 in
  let latch_words =
    Array.init n_latches (fun i ->
        let w = ref 0L in
        for j = 0 to lanes - 1 do
          if states.(j mod Array.length states).(i) then
            w := Int64.logor !w (Int64.shift_left 1L j)
        done;
        !w)
  in
  let pi_words =
    Array.init n_pis (fun _ ->
        Int64.logor
          (Random.State.int64 t.rng Int64.max_int)
          (Int64.shift_left (Random.State.int64 t.rng 2L) 63))
  in
  let values, next = Aig.Sim.step aig ~pi_words ~latch_words in
  (values, pi_words, latch_words, next)

(* Lanes where every multi-member class agrees, i.e. the valuation
   satisfies Q: their successor states are certified for future walks. *)
let q_lanes_mask partition values =
  let mask = ref (-1L) in
  List.iter
    (fun cls ->
      match Partition.members partition cls with
      | [] | [ _ ] -> ()
      | rep :: rest ->
        let w = Aig.Sim.lit_word values (Partition.norm_lit partition rep) in
        List.iter
          (fun m ->
            let d =
              Int64.logxor w (Aig.Sim.lit_word values (Partition.norm_lit partition m))
            in
            mask := Int64.logand !mask (Int64.lognot d))
          rest)
    (Partition.multi_member_classes partition);
  !mask

let lowest_bit w =
  let rec go j = if j >= 64 then None else if bit w j then Some j else go (j + 1) in
  go 0

(* Screen every live obligation against one simulation frame.  Refuted
   obligations are counted per class; each distinct witnessing lane is
   replayed once.  Certified successor states extend the walk history. *)
let sim_screen t partition obligations ~splits =
  poll t;
  let values, pi_words, latch_words, next = sim_frame t in
  let refuted_lanes = Hashtbl.create 8 in
  let surviving = ref [] in
  let n_refuted = ref 0 in
  Array.iter
    (fun ob ->
      let dm = Aig.Sim.lit_word values (Partition.norm_lit partition ob.Specreduce.ob_member)
      and dr = Aig.Sim.lit_word values (Partition.norm_lit partition ob.Specreduce.ob_rep) in
      match lowest_bit (Int64.logxor dm dr) with
      | Some j ->
        incr n_refuted;
        t.by_sim <- t.by_sim + 1;
        Hashtbl.replace refuted_lanes j ()
      | None ->
        mark_sim_survivor t ~cls:ob.Specreduce.ob_class;
        surviving := ob :: !surviving)
    obligations;
  Hashtbl.iter
    (fun j () ->
      let latch = Array.map (fun w -> bit w j) latch_words in
      let pi = Array.map (fun w -> bit w j) pi_words in
      add_pattern t partition ~splits ~latch ~pi)
    refuted_lanes;
  (* extend the walk with certified successors *)
  let qmask = q_lanes_mask partition values in
  (match lowest_bit qmask with
  | None -> ()
  | Some j ->
    let s2 = Array.map (fun w -> bit w j) next in
    t.hist <- s2 :: t.hist;
    t.hist_len <- t.hist_len + 1;
    if t.hist_len > hist_cap then begin
      t.hist <- List.filteri (fun i _ -> i < hist_cap) t.hist;
      t.hist_len <- hist_cap
    end);
  (!n_refuted, List.rev !surviving)

(* ------------------------------------------------------------------ *)
(* BDD route                                                          *)

exception Bdd_blowup

(* Per-round BDD state: frame-1 node functions over (state, input)
   variables, next-state functions, and frame-2 node functions over the
   fresh-input variables composed with the next-state functions — the
   same lazy construction as the BDD sweep engine, on the reduced
   circuit. *)
type bdd_round = {
  br_man : Bdd.manager;
  br_cur : Bdd.t option array;
  br_nxt : Bdd.t option array;
  br_delta : Bdd.t option array;
  mutable br_dead : bool;
}

let bdd_state t raig =
  let n_latches = Aig.num_latches raig in
  let man = Bdd.create () in
  Bdd.set_node_limit man (2 * t.cfg.bdd_node_limit);
  {
    br_man = man;
    br_cur = Array.make (Aig.num_nodes raig) None;
    br_nxt = Array.make (Aig.num_nodes raig) None;
    br_delta = Array.make n_latches None;
    br_dead = false;
  }

let bdd_check_limit t man =
  let live = Bdd.live_nodes man in
  if live > t.peak_nodes then t.peak_nodes <- live;
  if live > t.cfg.bdd_node_limit then raise Bdd_blowup

let bdd_build t br raig =
  let n_latches = Aig.num_latches raig and n_pis = Aig.num_pis raig in
  let man = br.br_man in
  let rec cur id =
    match br.br_cur.(id) with
    | Some b -> b
    | None ->
      let b =
        match Aig.node raig id with
        | Aig.Const -> Bdd.zero
        | Aig.Pi i -> Bdd.var man (n_latches + i)
        | Aig.Latch i -> Bdd.var man t.latch_pos.(i)
        | Aig.And (a, b) ->
          bdd_check_limit t man;
          Bdd.mk_and man (cur_lit a) (cur_lit b)
      in
      br.br_cur.(id) <- Some b;
      b
  and cur_lit l =
    let b = cur (Aig.node_of_lit l) in
    if l land 1 = 1 then Bdd.mk_not man b else b
  in
  let delta i =
    match br.br_delta.(i) with
    | Some b -> b
    | None ->
      let b = cur_lit (Aig.latch_next raig i) in
      br.br_delta.(i) <- Some b;
      b
  in
  let rec nxt id =
    match br.br_nxt.(id) with
    | Some b -> b
    | None ->
      let b =
        match Aig.node raig id with
        | Aig.Const -> Bdd.zero
        | Aig.Pi i -> Bdd.var man (n_latches + n_pis + i)
        | Aig.Latch i -> delta i
        | Aig.And (a, b) ->
          bdd_check_limit t man;
          Bdd.mk_and man (nxt_lit a) (nxt_lit b)
      in
      br.br_nxt.(id) <- Some b;
      b
  and nxt_lit l =
    let b = nxt (Aig.node_of_lit l) in
    if l land 1 = 1 then Bdd.mk_not man b else b
  in
  nxt_lit

type bdd_result =
  | Bdd_discharged
  | Bdd_maybe of bool array * bool array * bool array  (* unvetted (s, x1, x2) *)
  | Bdd_out  (* node budget blown *)

let bdd_solve t br raig ob =
  poll t;
  t.bdd_checks <- t.bdd_checks + 1;
  let n_latches = Aig.num_latches raig and n_pis = Aig.num_pis raig in
  try
    let nxt_lit = bdd_build t br raig in
    let diff =
      Bdd.mk_xor br.br_man
        (nxt_lit ob.Specreduce.ob_mem_lit)
        (nxt_lit ob.Specreduce.ob_rep_lit)
    in
    bdd_check_limit t br.br_man;
    if Bdd.is_false diff then Bdd_discharged
    else
      match Bdd.any_sat diff with
      | None -> Bdd_discharged
      | Some assignment ->
        let s = Array.make n_latches false in
        let x1 = Array.make n_pis false and x2 = Array.make n_pis false in
        let pos_to_latch = Array.make n_latches 0 in
        Array.iteri (fun i p -> pos_to_latch.(p) <- i) t.latch_pos;
        List.iter
          (fun (v, b) ->
            if v < n_latches then s.(pos_to_latch.(v)) <- b
            else if v < n_latches + n_pis then x1.(v - n_latches) <- b
            else x2.(v - n_latches - n_pis) <- b)
          assignment;
        Bdd_maybe (s, x1, x2)
  with Bdd_blowup | Bdd.Limit_exceeded ->
    br.br_dead <- true;
    Bdd_out

(* ------------------------------------------------------------------ *)
(* SAT route: persistent per-lane solvers                             *)

let ensure_round t lane =
  match t.round with
  | None -> invalid_arg "Dispatch: no active round"
  | Some rd ->
    if lane.l_round <> rd.rd_id then begin
      let solver = lane.l_solver in
      if lane.l_act >= 0 then Sat.release solver lane.l_act;
      let raig = rd.rd_sr.Specreduce.raig in
      let n_pis = Aig.num_pis raig and n_latches = Aig.num_latches raig in
      let act = Sat.new_var solver in
      let k = max 1 t.cfg.unroll in
      let s = Array.init n_latches (fun _ -> Sat.new_var solver) in
      let x1 = Array.init n_pis (fun _ -> Sat.new_var solver) in
      let enc1 =
        Aig.Cnf.encode ~act solver raig
          ~pi_var:(fun i -> x1.(i))
          ~latch_var:(fun i -> s.(i))
      in
      (* frames 2..k+1: each frame's state variables are tied to the
         next-state functions of the previous frame; the Q-hat
         assumptions hold at frames 1..k, guarded by the round literal *)
      let assume enc =
        Array.iter
          (fun ob ->
            let a = enc ob.Specreduce.ob_mem_lit
            and b = enc ob.Specreduce.ob_rep_lit in
            Sat.add_clause ~act solver [ Sat.Lit.negate a; b ];
            Sat.add_clause ~act solver [ a; Sat.Lit.negate b ])
          rd.rd_sr.Specreduce.obligations
      in
      assume enc1;
      let xs = Array.make (k + 1) x1 in
      let rec unroll frame enc =
        if frame > k + 1 then enc
        else begin
          let sf = Array.init n_latches (fun _ -> Sat.new_var solver) in
          let xf = Array.init n_pis (fun _ -> Sat.new_var solver) in
          xs.(frame - 1) <- xf;
          for i = 0 to n_latches - 1 do
            let nl = enc (Aig.latch_next raig i) in
            let v = Sat.Lit.pos sf.(i) in
            Sat.add_clause ~act solver [ Sat.Lit.negate v; nl ];
            Sat.add_clause ~act solver [ v; Sat.Lit.negate nl ]
          done;
          let encf =
            Aig.Cnf.encode ~act solver raig
              ~pi_var:(fun i -> xf.(i))
              ~latch_var:(fun i -> sf.(i))
          in
          if frame <= k then assume encf;
          unroll (frame + 1) encf
        end
      in
      let enck = unroll 2 enc1 in
      lane.l_round <- rd.rd_id;
      lane.l_act <- act;
      lane.l_enck <- enck;
      lane.l_s <- s;
      lane.l_xs <- xs
    end

type sat_result =
  | Sat_discharged of float
  | Sat_refuted of bool array * bool array array * float  (* (s, per-frame inputs) *)

let sat_solve t lane ob =
  poll t;
  t.check_budget ();
  ensure_round t lane;
  let solver = lane.l_solver in
  let start = Clock.now () in
  let d = Sat.new_var solver in
  let a2 = lane.l_enck ob.Specreduce.ob_mem_lit
  and b2 = lane.l_enck ob.Specreduce.ob_rep_lit in
  (* d -> (a2 XOR b2): the obligation fails at the last frame *)
  Sat.add_clause ~act:d solver [ a2; b2 ];
  Sat.add_clause ~act:d solver [ Sat.Lit.negate a2; Sat.Lit.negate b2 ];
  let result =
    match Sat.solve solver ~assumptions:[ Sat.Lit.pos lane.l_act; Sat.Lit.pos d ] with
    | Sat.Unsat -> Sat_discharged (Clock.since start)
    | Sat.Sat ->
      let read = Array.map (fun v -> Sat.value solver v) in
      Sat_refuted (read lane.l_s, Array.map read lane.l_xs, Clock.since start)
  in
  Sat.release solver d;
  result

(* ------------------------------------------------------------------ *)
(* The per-round discharge driver                                     *)

(* Discharge every obligation of [sr] against [partition], replaying
   counterexamples through the shared pool.  Returns (refuted, splits):
   the number of failed assumptions and the number of classes the
   replayed patterns created.  The caller rebuilds the reduction while
   [refuted > 0]. *)
let discharge t partition sr =
  t.round_ctr <- t.round_ctr + 1;
  t.round <- Some { rd_id = t.round_ctr; rd_sr = sr };
  t.rounds <- t.rounds + 1;
  let splits = ref 0 in
  let refuted = ref 0 in
  (* 1. simulation screen: refute what one frame of certified patterns
     can, sort the survivors to the proving engines *)
  let n_sim, surviving = sim_screen t partition sr.Specreduce.obligations ~splits in
  refuted := !refuted + n_sim;
  let bdd_obs, sat_obs =
    List.partition (fun ob -> route_obligation t ob = Bdd) surviving
  in
  (* 2. BDD screen (coordinator-serial): unconstrained validity on the
     reduced circuit; counterexamples must pass the Q check on the
     original product before they refute, otherwise the obligation
     escalates to SAT *)
  let sat_obs = ref sat_obs in
  let br = lazy (bdd_state t sr.Specreduce.raig) in
  List.iter
    (fun ob ->
      if Specreduce.obligation_live partition ob then begin
        let br = Lazy.force br in
        if br.br_dead then sat_obs := ob :: !sat_obs
        else begin
          let start = Clock.now () in
          match bdd_solve t br sr.Specreduce.raig ob with
          | Bdd_discharged ->
            t.by_bdd <- t.by_bdd + 1;
            observe t ~cls:ob.Specreduce.ob_class ~engine:Bdd (Clock.since start)
          | Bdd_maybe (s, x1, x2) ->
            observe t ~cls:ob.Specreduce.ob_class ~engine:Bdd (Clock.since start);
            if Specreduce.q_holds t.product partition ~pi:x1 ~latch:s then begin
              t.by_bdd <- t.by_bdd + 1;
              incr refuted;
              replay_cex t partition ~splits ~s ~xs:[| x1; x2 |]
            end
            else sat_obs := ob :: !sat_obs
          | Bdd_out ->
            ban t ~cls:ob.Specreduce.ob_class ~engine:Bdd;
            sat_obs := ob :: !sat_obs
        end
      end)
    bdd_obs;
  (* 3. SAT (parallel over the persistent lanes): exact discharge under
     the Q-hat assumptions.  The partition is only read here on the
     coordinator — staleness is filtered before the batch, and no flush
     happens during it. *)
  let sat_obs =
    Array.of_list
      (List.filter (Specreduce.obligation_live partition) (List.rev !sat_obs))
  in
  let results = Parsweep.map t.sched ~f:(fun lane ob -> sat_solve t lane ob) sat_obs in
  Array.iteri
    (fun i result ->
      let ob = sat_obs.(i) in
      t.sat_solves <- t.sat_solves + 1;
      t.by_sat <- t.by_sat + 1;
      match result with
      | Sat_discharged dt -> observe t ~cls:ob.Specreduce.ob_class ~engine:Sat dt
      | Sat_refuted (s, xs, dt) ->
        observe t ~cls:ob.Specreduce.ob_class ~engine:Sat dt;
        incr refuted;
        replay_cex t partition ~splits ~s ~xs)
    results;
  (* 4. flush whatever the round buffered *)
  if Simpool.lanes t.pool > 0 then splits := !splits + Simpool.flush t.pool partition;
  t.refuted <- t.refuted + !refuted;
  (!refuted, !splits)

(* ------------------------------------------------------------------ *)

let counters t =
  let solvers = List.map (fun l -> l.l_solver) (Parsweep.initialized_states t.sched) in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 solvers in
  {
    c_rounds = t.rounds;
    c_sat_solves = t.sat_solves;
    c_conflicts = sum Sat.num_conflicts;
    c_propagations = sum Sat.num_propagations;
    c_restarts = sum Sat.num_restarts;
    c_vars = sum Sat.num_vars;
    c_bdd_checks = t.bdd_checks;
    c_peak_nodes = t.peak_nodes;
    c_by_sim = t.by_sim;
    c_by_bdd = t.by_bdd;
    c_by_sat = t.by_sat;
    c_refuted = t.refuted;
  }

let shutdown t = Parsweep.shutdown t.sched
