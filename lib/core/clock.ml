(* Monotonic-safe wall clock shared by the verifier and the benchmark
   driver.  [Unix.gettimeofday] can step backwards under NTP adjustment;
   feeding such a step into a phase timer yields a negative duration that
   silently corrupts accumulated statistics.  [now] clamps the reading to
   be non-decreasing across the whole process — including concurrent
   readers in worker domains — so every interval measured against it is
   >= 0.  During a backward step the clock holds its last value until
   real time catches up, which under-reports the affected interval by at
   most the step size; that bias is the price of never going negative. *)

let last = Atomic.make 0.0

let rec clamp t =
  let prev = Atomic.get last in
  if t <= prev then prev
  else if Atomic.compare_and_set last prev t then t
  else clamp t

let now () = clamp (Unix.gettimeofday ())
let since t0 = now () -. t0

(* Exception-safe timing: the elapsed time is delivered through [record]
   on *every* exit, normal or exceptional.  A phase that raises — a
   budget or deadline abort, typically — still reports how long it ran,
   so the aborted phase is never the one missing from the accumulated
   statistics. *)
let measure ~record f =
  let t0 = now () in
  Fun.protect ~finally:(fun () -> record (since t0)) f

let timed f =
  let dt = ref 0.0 in
  let result = measure ~record:(fun d -> dt := d) f in
  (result, !dt)
