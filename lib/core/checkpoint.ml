(* Resumable checkpoints of the greatest fixed-point iteration.

   Van Eijk's refinement is monotone: every round only splits classes,
   and every split is justified against the correspondence condition of
   a partition coarser than (or equal to) the current one, so no split
   ever separates two signals equal in the greatest fixed point.  A
   partially refined partition therefore sits between the initial
   partition and the (unique) greatest fixed point, and re-running the
   iteration from it converges to exactly the same fixed point as an
   uninterrupted run — a checkpoint is a sound, lossless resume point.

   A checkpoint records what that argument needs to hold on re-entry:

   - MD5 fingerprints of both circuits (the partition is meaningless on
     any other pair — a resume against a mutated AIG must be refused);
   - the options that shape the iteration's semantics: candidate set,
     induction depth k, and the polarity-normalization seed (class
     members are stored as normalized literals, so the reference
     valuation must be reproducible);
   - the deterministic product-machine state: retiming augmentation
     rounds to replay and the resulting node count (shape check);
   - the partition itself, as one line of sorted normalized literals
     per multi-member class (singleton classes are implied);
   - the counterexample patterns still buffered in the {!Simpool} when
     the run was interrupted, so no witnessed split is lost.

   A checkpoint with induction depth [kc] may seed any run with
   effective depth [k <= kc]: the k-inductive fixed points grow with k
   (gfp(k) is contained in gfp(kc)), so every recorded split separates
   signals unequal in gfp(kc) and a fortiori in gfp(k) — the seeded run
   still converges to its own gfp exactly.

   The text format follows {!Cert.Certificate}: line-oriented,
   versioned header, [end] marker. *)

type t = {
  spec_digest : string; (* MD5 of the canonical AIGER text *)
  impl_digest : string;
  engine : string; (* informational: which engine was interrupted *)
  candidates : string; (* "all" | "registers" *)
  induction : int; (* k of the interrupted run; 1 = the paper *)
  seed : int; (* polarity-normalization / simulation seed *)
  retime_rounds : int; (* augmentation rounds to replay on the product *)
  product_nodes : int; (* product size after replay (shape check) *)
  iterations : int; (* refinement iterations completed before the cut *)
  classes : int list list; (* normalized literals, each class sorted *)
  patterns : (bool array * bool array) list; (* pending pool lanes: (pis, latches) *)
}

exception Parse_error of string

exception Incompatible of string
(** Raised by resume validation: fingerprint/shape/option mismatch. *)

let fingerprint aig = Digest.to_hex (Digest.string (Aig.Aiger.to_string aig))

let n_classes cp = List.length cp.classes

let n_constraints cp =
  List.fold_left (fun acc cls -> acc + max 0 (List.length cls - 1)) 0 cp.classes

let n_patterns cp = List.length cp.patterns

(* --- construction ------------------------------------------------------------- *)

(* Snapshot a partition (and the engine's pending pool lanes) mid-run.
   [product_aig] is the product machine *after* [retime_rounds]
   augmentations — the machine the normalized literals live on. *)
let of_partition ~spec_digest ~impl_digest ~engine ~candidates ~induction ~seed
    ~retime_rounds ~iterations ~patterns product_aig partition =
  {
    spec_digest;
    impl_digest;
    engine;
    candidates;
    induction;
    seed;
    retime_rounds;
    product_nodes = Aig.num_nodes product_aig;
    iterations;
    classes =
      List.map
        (fun cls ->
          List.sort compare
            (List.map (Partition.norm_lit partition) (Partition.members partition cls)))
        (Partition.multi_member_classes partition);
    patterns;
  }

(* --- resume ------------------------------------------------------------------- *)

(* Fingerprint and option compatibility, phrased over digests so callers
   that already hold fingerprints — the serve daemon's warm-start cache
   probing many stored checkpoints against one submission — need not
   re-canonicalize the circuits per probe.  [induction] is the resuming
   run's effective depth; a checkpoint of a deeper run is accepted (see
   the module comment), a shallower one is not — its splits need not hold
   at the deeper fixed point. *)
let compatible ~spec_digest ~impl_digest ~candidates ~induction ~seed cp =
  let refuse fmt = Printf.ksprintf (fun msg -> Error msg) fmt in
  let expect subject expected got k =
    if got <> expected then
      refuse "%s fingerprint mismatch: checkpoint has %s, circuit is %s" subject expected
        got
    else k ()
  in
  expect "specification" cp.spec_digest spec_digest @@ fun () ->
  expect "implementation" cp.impl_digest impl_digest @@ fun () ->
  if cp.candidates <> candidates then
    refuse "candidate-set mismatch: checkpoint has %s, run uses %s" cp.candidates
      candidates
  else if cp.induction < induction then
    refuse
      "induction mismatch: a depth-%d checkpoint cannot seed a depth-%d run (its splits \
       are only sound at depth <= %d)"
      cp.induction induction cp.induction
  else if cp.seed <> seed then
    refuse "seed mismatch: checkpoint normalized with seed %d, run uses %d" cp.seed seed
  else if cp.retime_rounds < 0 || cp.retime_rounds > 64 then
    refuse "implausible retime rounds %d" cp.retime_rounds
  else Ok ()

(* Raising variant, before any engine work is spent on a resume. *)
let validate ~spec ~impl ~candidates ~induction ~seed cp =
  match
    compatible ~spec_digest:(fingerprint spec) ~impl_digest:(fingerprint impl)
      ~candidates ~induction ~seed cp
  with
  | Ok () -> ()
  | Error msg -> raise (Incompatible msg)

let refuse fmt = Printf.ksprintf (fun msg -> raise (Incompatible msg)) fmt

(* Refine [partition] to the checkpointed classes.  Nodes sharing a
   checkpoint class stay together; every node the checkpoint left in a
   singleton class is isolated.  The checkpointed partition is a
   refinement of the partition at this point of the pipeline (both were
   produced by the same deterministic seeding), so this only ever
   splits — [refine_by_key] never merges — and the polarity check below
   catches any divergence. *)
let seed_partition cp partition =
  let cls_of = Hashtbl.create 256 in
  List.iteri
    (fun i cls ->
      List.iter
        (fun lit ->
          let id = Aig.node_of_lit lit in
          if Partition.is_candidate partition id && Partition.norm_lit partition id <> lit
          then refuse "literal %d: polarity differs from the resumed run" lit;
          if not (Partition.is_candidate partition id) then
            refuse "literal %d is not a candidate of the resumed run" lit;
          Hashtbl.replace cls_of id i)
        cls)
    cp.classes;
  Partition.refine_by_key partition (fun id ->
      match Hashtbl.find_opt cls_of id with
      | Some i -> i
      | None -> -id - 1 (* checkpoint singleton: isolate the node *))

(* --- serialization ------------------------------------------------------------ *)

(* Text format (in the style of the certificate format):

     seqver-checkpoint 1
     spec-md5 <32 hex chars>
     impl-md5 <32 hex chars>
     engine sat
     candidates all
     induction 1
     seed 17
     retime-rounds 0
     product-nodes 420
     iterations 3
     classes 2
     class 4 6 12
     class 9 13
     patterns 1
     pattern 0110 10010
     end

   A pattern line carries the input bits then the state bits of one
   pending pool lane; "-" stands for an empty vector.                     *)

let bits_to_string bits =
  if Array.length bits = 0 then "-"
  else String.init (Array.length bits) (fun i -> if bits.(i) then '1' else '0')

let to_string cp =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "seqver-checkpoint 1\n";
  Buffer.add_string buf (Printf.sprintf "spec-md5 %s\n" cp.spec_digest);
  Buffer.add_string buf (Printf.sprintf "impl-md5 %s\n" cp.impl_digest);
  Buffer.add_string buf (Printf.sprintf "engine %s\n" cp.engine);
  Buffer.add_string buf (Printf.sprintf "candidates %s\n" cp.candidates);
  Buffer.add_string buf (Printf.sprintf "induction %d\n" cp.induction);
  Buffer.add_string buf (Printf.sprintf "seed %d\n" cp.seed);
  Buffer.add_string buf (Printf.sprintf "retime-rounds %d\n" cp.retime_rounds);
  Buffer.add_string buf (Printf.sprintf "product-nodes %d\n" cp.product_nodes);
  Buffer.add_string buf (Printf.sprintf "iterations %d\n" cp.iterations);
  Buffer.add_string buf (Printf.sprintf "classes %d\n" (List.length cp.classes));
  List.iter
    (fun cls ->
      Buffer.add_string buf "class";
      List.iter (fun l -> Buffer.add_string buf (Printf.sprintf " %d" l)) cls;
      Buffer.add_char buf '\n')
    cp.classes;
  Buffer.add_string buf (Printf.sprintf "patterns %d\n" (List.length cp.patterns));
  List.iter
    (fun (pi, latch) ->
      Buffer.add_string buf
        (Printf.sprintf "pattern %s %s\n" (bits_to_string pi) (bits_to_string latch)))
    cp.patterns;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

let bits_of_string s =
  if s = "-" then [||]
  else
    Array.init (String.length s) (fun i ->
        match s.[i] with
        | '0' -> false
        | '1' -> true
        | c -> fail "pattern: expected 0/1, got %C" c)

let parse_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let field key = function
    | [] -> fail "unexpected end of checkpoint (expected %s)" key
    | line :: rest -> (
      match String.index_opt line ' ' with
      | Some sp when String.sub line 0 sp = key ->
        (String.sub line (sp + 1) (String.length line - sp - 1), rest)
      | _ -> fail "expected field %s, got %S" key line)
  in
  let int_field key lines =
    let v, lines = field key lines in
    match int_of_string_opt (String.trim v) with
    | Some n -> (n, lines)
    | None -> fail "field %s: expected an integer, got %S" key v
  in
  let version, lines = int_field "seqver-checkpoint" lines in
  if version <> 1 then fail "unsupported checkpoint version %d" version;
  let spec_digest, lines = field "spec-md5" lines in
  let impl_digest, lines = field "impl-md5" lines in
  let engine, lines = field "engine" lines in
  let candidates, lines = field "candidates" lines in
  let induction, lines = int_field "induction" lines in
  let seed, lines = int_field "seed" lines in
  let retime_rounds, lines = int_field "retime-rounds" lines in
  let product_nodes, lines = int_field "product-nodes" lines in
  let iterations, lines = int_field "iterations" lines in
  let n, lines = int_field "classes" lines in
  if n < 0 then fail "negative class count %d" n;
  let parse_class line =
    String.split_on_char ' ' line
    |> List.filter (fun s -> s <> "")
    |> List.map (fun s ->
           match int_of_string_opt s with
           | Some l -> l
           | None -> fail "class member: expected a literal, got %S" s)
  in
  let rec read_classes i acc lines =
    if i = n then (List.rev acc, lines)
    else
      match lines with
      | [] -> fail "unexpected end of checkpoint (expected %d more class(es))" (n - i)
      | line :: rest ->
        if String.length line > 6 && String.sub line 0 6 = "class " then
          read_classes (i + 1)
            (parse_class (String.sub line 6 (String.length line - 6)) :: acc)
            rest
        else fail "expected a class line, got %S" line
  in
  let classes, lines = read_classes 0 [] lines in
  let np, lines = int_field "patterns" lines in
  if np < 0 then fail "negative pattern count %d" np;
  let parse_pattern line =
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ pi; latch ] -> (bits_of_string pi, bits_of_string latch)
    | _ -> fail "pattern line: expected two bit vectors, got %S" line
  in
  let rec read_patterns i acc lines =
    if i = np then (List.rev acc, lines)
    else
      match lines with
      | [] -> fail "unexpected end of checkpoint (expected %d more pattern(s))" (np - i)
      | line :: rest ->
        if String.length line > 8 && String.sub line 0 8 = "pattern " then
          read_patterns (i + 1)
            (parse_pattern (String.sub line 8 (String.length line - 8)) :: acc)
            rest
        else fail "expected a pattern line, got %S" line
  in
  let patterns, lines = read_patterns 0 [] lines in
  (match lines with
  | [ "end" ] -> ()
  | [] -> fail "missing end marker"
  | line :: _ -> fail "trailing content after patterns: %S" line);
  {
    spec_digest;
    impl_digest;
    engine;
    candidates;
    induction;
    seed;
    retime_rounds;
    product_nodes;
    iterations;
    classes;
    patterns;
  }

let to_file path cp =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string cp))

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse_string text
