(* BDD-based refinement engine, faithful to the paper's implementation:
   current-state functions f_v(s, x_t) and next-state functions
   nu_v(s, x_t, x_{t+1}) = f_v(delta(s, x_t), x_{t+1}) are represented as
   BDDs over input and state variables (no intermediate-signal variables);
   the correspondence condition Q is a BDD whose complement acts as a
   don't-care set, optionally strengthened by an upper bound of the
   reachable state space and compressed through functional-dependency
   substitution of state variables (Section 4). *)

exception Budget_exceeded of string

type ctx = {
  p : Product.t;
  m : Bdd.manager;
  n_pis : int;
  n_latches : int;
  x1 : int array; (* current-frame input variables *)
  s : int array; (* state variables *)
  x2 : int array; (* next-frame input variables *)
  cur : int -> Bdd.t; (* f_v over (x1, s), by literal *)
  delta : Bdd.t array; (* next-state function of each latch, over (x1, s) *)
  nxt : int -> Bdd.t; (* nu_v over (s, x1, x2), by literal *)
  ini : int -> Bdd.t; (* f_v(s0, x1), by literal *)
  use_fundep : bool;
  care : Bdd.t; (* over s: upper bound of reachable states (or one) *)
  node_limit : int;
  deadline : Deadline.t; (* wall-clock budget, polled with every [note] *)
  mutable peak_nodes : int;
  pool : Simpool.t; (* accumulated counterexample patterns *)
  support : Support.t Lazy.t; (* structural cones for dirty scheduling *)
  proved_at : (int, int) Hashtbl.t; (* class -> version proven stable *)
  mutable n_batched : int; (* batched class scans performed *)
  mutable n_cache_hits : int; (* classes skipped by the stability cache *)
  static_filter : bool; (* split PI-support-incompatible candidates for free *)
  mutable n_static : int; (* classes split by the static prefilter *)
  sched : unit Parsweep.t;
      (* single-lane scheduler: BDD hash-consing is shared-mutable, so
         class scans stay serial, but the sweep runs through the same
         snapshot/solve/merge protocol as the SAT engine *)
}

let note ctx =
  if Deadline.expired ctx.deadline then raise (Budget_exceeded "deadline");
  let live = Bdd.live_nodes ctx.m in
  if live > ctx.peak_nodes then ctx.peak_nodes <- live;
  if live > ctx.node_limit then raise (Budget_exceeded "bdd nodes");
  (* operation caches are unbounded; keep memory proportional to the
     unique table *)
  if Bdd.memo_entries ctx.m > (4 * live) + 1_000_000 then Bdd.clear_caches ctx.m

(* [latch_order], when given, lists product latch indices in the order
   their state variables should be placed (correspondence candidates
   adjacent); [care_of] may compute a reachable upper bound over the state
   variables once they exist. *)
let make ?(use_fundep = true) ?latch_order ?care_of ?(node_limit = max_int)
    ?(deadline = Deadline.none) ?(static_filter = false) p =
  let aig = p.Product.aig in
  let m = Bdd.create () in
  if node_limit < max_int then Bdd.set_node_limit m (2 * node_limit);
  let n_pis = Aig.num_pis aig in
  let n_latches = Aig.num_latches aig in
  let x1 = Array.init n_pis (fun i -> i) in
  let s =
    let positions = Array.make n_latches (-1) in
    (match latch_order with
    | Some order -> Array.iteri (fun pos i -> positions.(i) <- pos) order
    | None ->
      for i = 0 to n_latches - 1 do
        positions.(i) <- i
      done);
    Array.init n_latches (fun i -> n_pis + positions.(i))
  in
  let x2 = Array.init n_pis (fun i -> n_pis + n_latches + i) in
  let cur =
    Engines.Aig_bdd.build m aig
      ~pi_var:(fun i -> Bdd.var m x1.(i))
      ~latch_var:(fun i -> Bdd.var m s.(i))
  in
  let delta = Array.init n_latches (fun i -> cur (Aig.latch_next aig i)) in
  (* nu functions are built lazily: only signals that share a class ever
     need their next-state function, and after simulation seeding most
     classes are small *)
  let nxt =
    let memo : (int, Bdd.t) Hashtbl.t = Hashtbl.create 1024 in
    let rec node_fn id =
      match Hashtbl.find_opt memo id with
      | Some f -> f
      | None ->
        let f =
          match Aig.node aig id with
          | Aig.Const -> Bdd.zero
          | Aig.Pi i -> Bdd.var m x2.(i)
          | Aig.Latch i -> delta.(i)
          | Aig.And (a, b) -> Bdd.mk_and m (lit_fn a) (lit_fn b)
        in
        Hashtbl.add memo id f;
        f
    and lit_fn l =
      let f = node_fn (Aig.node_of_lit l) in
      if Aig.lit_is_compl l then Bdd.mk_not m f else f
    in
    lit_fn
  in
  let ini =
    Engines.Aig_bdd.build m aig
      ~pi_var:(fun i -> Bdd.var m x1.(i))
      ~latch_var:(fun i -> if Aig.latch_init aig i then Bdd.one else Bdd.zero)
  in
  let care = match care_of with Some f -> f m s | None -> Bdd.one in
  let ctx =
    { p; m; n_pis; n_latches; x1; s; x2; cur; delta; nxt; ini; use_fundep; care;
      node_limit; deadline; peak_nodes = 0; pool = Simpool.create aig;
      support = lazy (Support.make aig); proved_at = Hashtbl.create 256;
      n_batched = 0; n_cache_hits = 0; static_filter; n_static = 0;
      sched = Parsweep.create ~jobs:1 ~init:(fun _ -> ()) }
  in
  note ctx;
  ctx

let shutdown ctx = Parsweep.shutdown ctx.sched
let sched_stats ctx = Parsweep.stats ctx.sched

(* Zero-cost static refinement: split candidates whose structural PI
   supports are non-empty and disjoint — such pairs can only be equivalent
   if semantically input-free, which their structure contradicts.  Runs
   before each pass so pairs arising from earlier splits are caught;
   [Partition.refine_class] bumps the version and records moves, so the
   suspect/strict protocol covers these splits like any other. *)
let static_prefilter ctx partition =
  if not ctx.static_filter then 0
  else begin
    let support = Lazy.force ctx.support in
    List.fold_left
      (fun acc cls ->
        if Support.prefilter_class support partition cls then begin
          ctx.n_static <- ctx.n_static + 1;
          acc + 1
        end
        else acc)
      0
      (Partition.multi_member_classes partition)
  end

let norm ctx f pol = if pol then Bdd.mk_not ctx.m f else f

(* normalized functions of a node *)
let norm_cur ctx partition id = norm ctx (ctx.cur (Aig.lit_of_node id)) (Partition.polarity partition id)
let norm_nxt ctx partition id = norm ctx (ctx.nxt (Aig.lit_of_node id)) (Partition.polarity partition id)
let norm_ini ctx partition id = norm ctx (ctx.ini (Aig.lit_of_node id)) (Partition.polarity partition id)

(* Exact initial-state partition T0 (Equation 2): group by the canonical
   BDD of the normalized function at s0 — hash-consing makes equality a
   key comparison. *)
let refine_initial ctx partition =
  ignore (static_prefilter ctx partition);
  ignore (Partition.refine_by_key partition (fun id -> Bdd.id (norm_ini ctx partition id)));
  note ctx

(* Functional-dependency substitution (Section 4): replace a state
   variable by an equivalent function from its class, enabling the
   correspondence condition to be applied as a smaller don't-care set.
   Greedy and cycle-free: a chosen function is composed with the
   substitutions selected so far and rejected if it still mentions the
   variable being replaced. *)
let fundep_subst ?(max_fn_size = 8) ctx partition =
  let nvars = Bdd.nvars ctx.m in
  let subst = Array.make nvars None in
  let any = ref false in
  for i = 0 to ctx.n_latches - 1 do
    let node = Aig.latch_node ctx.p.Product.aig i in
    if Partition.is_candidate partition node then begin
      let cls = Partition.class_of partition node in
      let others = List.filter (fun w -> w <> node) (Partition.members partition cls) in
      let si = ctx.s.(i) in
      (* keep substitutions cheap: large replacement functions make the
         later compositions of the nu functions explode, so probe sizes
         with an early-abort bound *)
      let bounded_size f =
        match Bdd.size_at_most f max_fn_size with Some n -> n | None -> max_int
      in
      let try_target w =
        let g_w = norm_cur ctx partition w in
        let h = if Partition.polarity partition node then Bdd.mk_not ctx.m g_w else g_w in
        if bounded_size h > max_fn_size then None
        else begin
          let h' = if !any then Bdd.vector_compose ctx.m h subst else h in
          if bounded_size h' > max_fn_size || List.mem si (Bdd.support h') then None
          else Some h'
        end
      in
      (* prefer single-node replacements (other state variables or
         constants): these are plain renames *)
      let by_size =
        let keyed =
          List.map (fun w -> (bounded_size (norm_cur ctx partition w), w)) others
        in
        List.map snd (List.sort compare (List.filter (fun (k, _) -> k <= max_fn_size) keyed))
      in
      match List.find_map try_target by_size with
      | Some h' ->
        subst.(si) <- Some h';
        any := true
      | None -> ()
    end
  done;
  if !any then Some subst else None

let rec balanced_and m = function
  | [] -> Bdd.one
  | [ f ] -> f
  | fs ->
    let rec split k acc = function
      | rest when k = 0 -> (acc, rest)
      | [] -> (acc, [])
      | f :: rest -> split (k - 1) (f :: acc) rest
    in
    let left, right = split (List.length fs / 2) [] fs in
    Bdd.mk_and m (balanced_and m left) (balanced_and m right)

(* The correspondence condition of the current partition (Definition 1),
   with substitution applied, conjoined with the reachable care set.
   Substituted functions are shared per node, not per pair. *)
let correspondence_condition ?(memo = Hashtbl.create 256) ctx partition subst =
  let apply f = match subst with Some s -> Bdd.vector_compose ctx.m f s | None -> f in
  let cur_of id =
    match Hashtbl.find_opt memo id with
    | Some f -> f
    | None ->
      let f = apply (norm_cur ctx partition id) in
      Hashtbl.add memo id f;
      f
  in
  let constraints =
    List.filter_map
      (fun (rep, id) ->
        note ctx;
        let frep = cur_of rep and fid = cur_of id in
        if Bdd.equal frep fid then None else Some (Bdd.mk_iff ctx.m frep fid))
      (Partition.constraint_pairs partition)
  in
  let result = Bdd.mk_and ctx.m (balanced_and ctx.m constraints) (apply ctx.care) in
  note ctx;
  result

(* Per-sweep builder of the Q-simplified nu functions.  As described in
   Section 4, the complement of the correspondence condition is used as a
   don't-care set while the next-state functions are *built*: whenever an
   intermediate result grows beyond a bound, it is simplified with
   Coudert–Madre restrict against Q.  The simplified functions agree with
   the exact nu on every state satisfying Q, which is all the comparison
   needs. *)
let nu_builder ~clamp_size ctx partition q subst =
  let m = ctx.m in
  let apply f = match subst with Some s -> Bdd.vector_compose m f s | None -> f in
  let clamp f =
    match Bdd.size_at_most f clamp_size with
    | Some _ -> f
    | None ->
      note ctx;
      Bdd.restrict m f ~care:q
  in
  let aig = ctx.p.Product.aig in
  let memo = Hashtbl.create 256 in
  let rec nu_node id =
    match Hashtbl.find_opt memo id with
    | Some f -> f
    | None ->
      let f =
        match Aig.node aig id with
        | Aig.Const -> Bdd.zero
        | Aig.Pi i -> Bdd.var m ctx.x2.(i)
        | Aig.Latch i ->
          clamp (apply ctx.delta.(i))
        | Aig.And (a, b) -> clamp (Bdd.mk_and m (nu_lit a) (nu_lit b))
      in
      Hashtbl.add memo id f;
      f
  and nu_lit l =
    let f = nu_node (Aig.node_of_lit l) in
    if Aig.lit_is_compl l then Bdd.mk_not m f else f
  in
  fun id ->
    let f = nu_node id in
    if Partition.polarity partition id then Bdd.mk_not m f else f

(* One application of Equation (3): split classes whose members' next-state
   functions differ on some state satisfying Q.  Returns true when any
   class split.  Legacy pairwise comparison within each class; kept for
   benchmarking and the equal-fixed-point cross-check. *)
let refine_once_pairwise ?(clamp_size = 2_000) ctx partition =
  if static_prefilter ctx partition > 0 then true
  else
  let m = ctx.m in
  let subst = if ctx.use_fundep then fundep_subst ctx partition else None in
  let q = correspondence_condition ctx partition subst in
  if Bdd.is_false q then false
  else begin
    let nu_of = nu_builder ~clamp_size ctx partition q subst in
    let changed = ref false in
    List.iter
      (fun cls ->
        note ctx;
        let equal rep id =
          let frep = nu_of rep and fid = nu_of id in
          Bdd.equal frep fid
          || Bdd.is_false (Bdd.mk_and m q (Bdd.mk_xor m frep fid))
        in
        if Partition.refine_class partition cls ~equal then changed := true)
      (Partition.multi_member_classes partition);
    note ctx;
    !changed
  end

(* Extract one counterexample pattern from a pair of class members whose
   nu functions differ modulo Q: a satisfying assignment of
   Q /\ (nu_a xor nu_b) over (x1, s, x2), converted into the *next* frame's
   (state, input) valuation — state' = delta(s, x1), inputs = x2 — which is
   exactly the frame whose node values separate the pair.

   The assignment lives in the SUBSTITUTED variable space: Q and the nu
   functions were built by one simultaneous [vector_compose], so a model V
   of the composed BDD corresponds to the original-space point sigma(V)
   where each substituted variable reads as its substitution function
   evaluated at V's PLAIN values (one level — substitution images may
   themselves mention substituted variables, which stay free there). *)
let counterexample_valuation ctx subst q nu_a nu_b =
  let m = ctx.m in
  let d = Bdd.mk_and m q (Bdd.mk_xor m nu_a nu_b) in
  match Bdd.any_sat d with
  | None -> None
  | Some assignment ->
    let env = Hashtbl.create 16 in
    List.iter (fun (v, b) -> Hashtbl.replace env v b) assignment;
    let base v = match Hashtbl.find_opt env v with Some b -> b | None -> false in
    let lookup v =
      match subst with
      | Some s when v < Array.length s -> (
        match s.(v) with Some h -> Bdd.eval h base | None -> base v)
      | _ -> base v
    in
    Some
      ( Array.init ctx.n_pis (fun i -> lookup ctx.x2.(i)),
        Array.init ctx.n_latches (fun i -> Bdd.eval ctx.delta.(i) lookup) )

(* The per-class scan outcome, mirroring the SAT engine's round shape:
   the sweep freezes the suspect classes, scans each through the
   (single-lane) scheduler, and merges outcomes serially in ascending
   class order. *)
type outcome =
  | O_stable
  | O_split of (int, int) Hashtbl.t * (bool array * bool array) option
      (* member -> canonical key; witness valuation for the pattern pool *)

(* One batched sweep: each suspect class is refined in a single scan by
   the canonical key [Bdd.id (nu /\ Q)] — members are Q-equivalent iff
   their conjunctions with Q are the same BDD — instead of a quadratic
   pairwise comparison.  Split classes contribute one counterexample
   pattern to the pool, flushed at the start of the next sweep (and when
   full) so cheap bit-parallel simulation pre-splits classes before any
   further BDD work.  [trust] enables the cone-based dirty skip; the
   strict confirmation pass re-proves stale classes at the current
   version. *)
let sweep ~clamp_size ctx partition ~trust =
  let splits = ref (Simpool.flush ctx.pool partition > 0) in
  (* zero-cost splits first, so the frozen Q and the task list already see
     the statically refined partition *)
  if static_prefilter ctx partition > 0 then splits := true;
  let vq = Partition.version partition in
  let subst = if ctx.use_fundep then fundep_subst ctx partition else None in
  let q = correspondence_condition ctx partition subst in
  if Bdd.is_false q then !splits
  else begin
    let nu_of = nu_builder ~clamp_size ctx partition q subst in
    let tasks =
      List.filter_map
        (fun cls ->
          let skip =
            match Hashtbl.find_opt ctx.proved_at cls with
            | Some v ->
              v >= vq
              || (trust
                 && not
                      (Support.suspect (Lazy.force ctx.support) partition cls
                         ~proved_at:v))
            | None -> false
          in
          if skip then begin
            ctx.n_cache_hits <- ctx.n_cache_hits + 1;
            None
          end
          else
            match Partition.members partition cls with
            | [] | [ _ ] -> None
            | mems -> Some (cls, mems))
        (Partition.multi_member_classes partition)
      |> Array.of_list
    in
    (* the scan runs in the caller (single lane) — it mutates the shared
       hash-consed manager and must never cross a domain boundary *)
    let scan () (_cls, mems) =
      note ctx;
      ctx.n_batched <- ctx.n_batched + 1;
      let keys = Hashtbl.create 8 in
      let key id =
        match Hashtbl.find_opt keys id with
        | Some k -> k
        | None ->
          let k = Bdd.id (Bdd.mk_and ctx.m (nu_of id) q) in
          note ctx;
          Hashtbl.add keys id k;
          k
      in
      let rep = List.hd mems in
      let rep_key = key rep in
      match List.find_opt (fun id -> key id <> rep_key) mems with
      | None -> O_stable
      | Some other ->
        let cex = counterexample_valuation ctx subst q (nu_of rep) (nu_of other) in
        List.iter (fun id -> ignore (key id)) mems;
        O_split (keys, cex)
    in
    let outcomes = Parsweep.map ctx.sched ~f:scan tasks in
    Array.iteri
      (fun i outcome ->
        let cls, _ = tasks.(i) in
        match outcome with
        | O_stable -> Hashtbl.replace ctx.proved_at cls vq
        | O_split (keys, cex) ->
          (match cex with
          | Some (pi, latch) ->
            if Simpool.is_full ctx.pool then
              splits := Simpool.flush ctx.pool partition > 0 || !splits;
            Simpool.add ctx.pool ~pi:(fun i -> pi.(i)) ~latch:(fun i -> latch.(i))
          | None -> ());
          let key id = Hashtbl.find keys id in
          if Partition.refine_class partition cls ~equal:(fun a b -> key a = key b)
          then splits := true)
      outcomes;
    note ctx;
    !splits
  end

(* One refinement iteration: a trusting sweep over suspect classes,
   confirmed by a strict pass when quiescent so the reported fixed point
   never rests on the cone heuristic. *)
let refine_once ?(clamp_size = 2_000) ctx partition =
  if sweep ~clamp_size ctx partition ~trust:true then true
  else sweep ~clamp_size ctx partition ~trust:false
