(* SAT-based refinement engine: the paper's future-work variant built on
   "extra variables representing intermediate signals" (Tseitin encoding).

   The product machine is unrolled into [k]+1 time frames sharing one
   solver: frame 1 starts from a free state, each later frame feeds the
   latches with the previous frame's next-state values.  The
   correspondence condition Q is assumed in frames 1..k through equality
   selector literals, and candidate pairs are compared in frame k+1 —
   [k] = 1 is exactly the paper's Equation (3); larger [k] is the
   k-inductive strengthening (signals must stay equal for k steps before
   the relation is required to propagate), which proves strictly more
   pairs at higher cost.  The base case adapts accordingly: classes must
   agree on the first k frames reachable from the initial state.

   Because everything is assumption-based, the clause database and all
   learned clauses persist across every query of every iteration.

   The hot loop is organised around three cooperating optimisations:

   - batched disjunctive sweeps: one solve per multi-member class (assume
     Q, assert the OR of the class's difference selectors through a fresh
     staging selector) instead of one solve per candidate pair, so a
     sweep costs O(#classes) queries rather than O(sum of class sizes);

   - a counterexample pattern pool ({!Simpool}): each model's last-frame
     state+input valuation is packed as a bit lane and applied to *all*
     classes at once by one bit-parallel simulation pass when the lane
     buffer fills or a hit class is about to be re-solved;

   - dirty-class scheduling with an UNSAT cache: a class proven stable at
     partition version V is skipped while no later split moved a node in
     its structural support cone ({!Support}); because that test is a
     heuristic, a zero-split sweep is confirmed by a strict pass that
     re-proves every stale class at the current version before the fixed
     point is reported.

   The legacy one-query-per-pair scan is kept as
   [refine_once_pairwise] / [refine_initial_pairwise]: it computes the
   same fixed point (property-tested) and anchors the benchmark
   comparison.

   Eq.(3) sweeps are scheduled through a {!Parsweep} pool: the class
   checks of one round are independent given a frozen partition
   snapshot, so they are sharded across worker domains, each owning a
   private copy of the unrolled product CNF (deterministic construction
   gives every lane identical variable numbering) plus private selector
   tables and Q cache.  Workers never touch the partition: tasks carry
   the frozen normalized member literals, and the coordinator applies
   verdicts and pools witness valuations serially in ascending class
   order.  Every split is justified by a run conforming to the frozen
   (coarser-or-equal) partition's Q, so the greatest fixed point reached
   is the same for every worker count — only which lane found which
   witness varies. *)

exception Budget_exceeded of string

(* Private per-lane solving state: a full copy of the k+1-frame
   unrolling with its own selector tables and Q-assumption cache.  Lane
   0 aliases the context's primary solver (the coordinator participates
   in its own pool), so a 1-job context allocates nothing extra. *)
type wstate = {
  w_solver : Sat.t;
  w_frames : (int -> Sat.Lit.t) array;
  w_eq_sel : (int * int * int, int) Hashtbl.t;
  w_diff_sel : (int * int, int) Hashtbl.t;
  w_sel_pair : (int, int * int) Hashtbl.t;
      (* selector variable -> the (la, lb) equality it asserts, for
         mapping failed-assumption cores back to constraint pairs *)
  mutable w_q : (int * Sat.Lit.t list) option; (* per-version Q selectors *)
}

(* Aggregated solver-work profile of a context: live persistent solvers
   are harvested on demand, the throwaway solvers of the non-incremental
   mode accumulate into the context's atomics as they are discarded. *)
type profile = {
  pr_conflicts : int;
  pr_propagations : int;
  pr_restarts : int;
  pr_encoded_vars : int; (* SAT variables created, across every solver *)
  pr_reused_clauses : int; (* clauses already in place when a solve was issued *)
  pr_shared_clauses : int; (* learned clauses imported across sweep lanes *)
  pr_core_prunes : int; (* class re-solves skipped by failed-core transfer *)
}

type ctx = {
  p : Product.t;
  k : int; (* induction depth; 1 = the paper *)
  solver : Sat.t; (* the k+1-frame unrolling *)
  frames : (int -> Sat.Lit.t) array; (* frames.(i) for i = 0..k: lit maps *)
  solver0 : Sat.t; (* the initialized unrolling: frames 0..k-1 from s0 *)
  init_frames : (int -> Sat.Lit.t) array;
  eq_sel : (int * int * int, int) Hashtbl.t; (* (frame, la, lb) selectors *)
  diff_sel : (int * int, int) Hashtbl.t; (* last-frame difference selectors *)
  diff_sel0 : (int * int * int, int) Hashtbl.t; (* (frame, la, lb) *)
  sat_calls : int Atomic.t;
      (* shared across lanes: every solve reserves a slot *before* it is
         issued, so the call budget is enforced per solve, not per
         round, and a parallel round overshoots by at most the [jobs]
         solves already in flight *)
  max_sat_calls : int;
  deadline : Deadline.t; (* wall-clock budget, polled per class solve *)
  pool : Simpool.t; (* accumulated counterexample patterns *)
  pi_nodes : int array; (* PI node ids by input index *)
  support : Support.t Lazy.t; (* structural cones for dirty scheduling *)
  proved_at : (int, int) Hashtbl.t; (* class -> version proven stable *)
  init_clean : (int, int) Hashtbl.t; (* class -> frames proven clean from s0 *)
  mutable q_cache : (int * Sat.Lit.t list) option; (* per-version Q selectors *)
  mutable n_batched : int; (* batched class solves issued *)
  mutable n_cache_hits : int; (* classes skipped by the UNSAT cache *)
  jobs : int; (* worker lanes for Eq.(3) sweeps *)
  sched : wstate Parsweep.t; (* persistent pool; lane 0 = primary solver *)
  static_filter : bool; (* split support-disjoint members before solving *)
  mutable n_static : int; (* classes split by the static prefilter *)
  incremental : bool;
      (* true: persistent solvers, activation-released staging, failed-core
         pruning and cross-lane clause sharing; false: every class solve
         re-encodes into a throwaway solver (the A/B baseline) *)
  base_vars : int;
      (* variables of the shared k+1-frame unrolling — identical in every
         lane by determinism, and the horizon below which learned clauses
         are sound to exchange *)
  acc_conflicts : int Atomic.t; (* counters of discarded throwaway solvers *)
  acc_propagations : int Atomic.t;
  acc_restarts : int Atomic.t;
  acc_vars : int Atomic.t;
  reused_clauses : int Atomic.t;
  mutable shared_clauses : int;
  mutable core_prunes : int;
  shared_seen : (Sat.Lit.t list, unit) Hashtbl.t;
      (* canonical forms of clauses already broadcast between lanes *)
  stable_cores : (int, int array * (int * int) list) Hashtbl.t;
      (* class -> (member literals at proof time, failed-core pairs): an
         UNSAT proof transfers to any later version in which the member
         list is unchanged and every core equality still holds *)
}

(* Chain [n] frames of [aig] inside [solver].  [first_latch_var] supplies
   the frame-0 latch variables; later frames capture the previous frame's
   next-state values through fresh tied variables. *)
let unroll solver aig ~n ~first_latch_var =
  let n_latches = Aig.num_latches aig in
  let frames = Array.make n (fun _ -> 0) in
  let latch_vars = ref first_latch_var in
  for i = 0 to n - 1 do
    let this_latch = !latch_vars in
    let x_vars = Array.init (Aig.num_pis aig) (fun _ -> Sat.new_var solver) in
    let lit_of =
      Aig.Cnf.encode solver aig ~pi_var:(fun j -> x_vars.(j)) ~latch_var:this_latch
    in
    frames.(i) <- lit_of;
    (* tie the next frame's state to this frame's next-state functions *)
    let next_latch =
      Array.init n_latches (fun j ->
          let v = Sat.new_var solver in
          let next = lit_of (Aig.latch_next aig j) in
          Sat.add_clause solver [ Sat.Lit.neg v; next ];
          Sat.add_clause solver [ Sat.Lit.pos v; Sat.Lit.negate next ];
          v)
    in
    latch_vars := fun j -> next_latch.(j)
  done;
  frames

let make ?(max_sat_calls = max_int) ?(k = 1) ?(jobs = 1) ?(deadline = Deadline.none)
    ?(static_filter = false) ?(incremental = true) p =
  if k < 1 then invalid_arg "Engine_sat.make: k must be >= 1";
  let aig = p.Product.aig in
  let solver = Sat.create () in
  let s_vars = Array.init (Aig.num_latches aig) (fun _ -> Sat.new_var solver) in
  let frames = unroll solver aig ~n:(k + 1) ~first_latch_var:(fun i -> s_vars.(i)) in
  let base_vars = Sat.num_vars solver in
  let solver0 = Sat.create () in
  let s0_vars =
    Array.init (Aig.num_latches aig) (fun i ->
        let v = Sat.new_var solver0 in
        Sat.add_clause solver0 [ Sat.Lit.make v (Aig.latch_init aig i) ];
        v)
  in
  let init_frames = unroll solver0 aig ~n:k ~first_latch_var:(fun i -> s0_vars.(i)) in
  let eq_sel = Hashtbl.create 256 in
  let diff_sel = Hashtbl.create 256 in
  (* Lane 0 reuses the primary solver (the coordinator works inside its
     own pool); other lanes build a private copy of the unrolling inside
     their own domain.  [unroll] is deterministic, so every lane's frame
     maps use identical variable numbering.  The non-incremental baseline
     never touches lane state — its lanes get an empty placeholder rather
     than an unrolling nothing would reuse. *)
  let fresh_lane () =
    if not incremental then
      {
        w_solver = Sat.create ();
        w_frames = [||];
        w_eq_sel = Hashtbl.create 1;
        w_diff_sel = Hashtbl.create 1;
        w_sel_pair = Hashtbl.create 1;
        w_q = None;
      }
    else begin
      let s = Sat.create () in
      let vars = Array.init (Aig.num_latches aig) (fun _ -> Sat.new_var s) in
      let fr = unroll s aig ~n:(k + 1) ~first_latch_var:(fun i -> vars.(i)) in
      {
        w_solver = s;
        w_frames = fr;
        w_eq_sel = Hashtbl.create 256;
        w_diff_sel = Hashtbl.create 256;
        w_sel_pair = Hashtbl.create 256;
        w_q = None;
      }
    end
  in
  let sched =
    Parsweep.create ~jobs ~init:(fun lane ->
        if lane = 0 then
          { w_solver = solver; w_frames = frames; w_eq_sel = eq_sel;
            w_diff_sel = diff_sel; w_sel_pair = Hashtbl.create 256; w_q = None }
        else fresh_lane ())
  in
  {
    p;
    k;
    solver;
    frames;
    solver0;
    init_frames;
    eq_sel;
    diff_sel;
    diff_sel0 = Hashtbl.create 256;
    sat_calls = Atomic.make 0;
    max_sat_calls;
    deadline;
    pool = Simpool.create aig;
    pi_nodes = Array.of_list (Aig.pis aig);
    support = lazy (Support.make aig);
    proved_at = Hashtbl.create 256;
    init_clean = Hashtbl.create 256;
    q_cache = None;
    n_batched = 0;
    n_cache_hits = 0;
    jobs = max 1 jobs;
    sched;
    static_filter;
    n_static = 0;
    incremental;
    base_vars;
    acc_conflicts = Atomic.make 0;
    acc_propagations = Atomic.make 0;
    acc_restarts = Atomic.make 0;
    acc_vars = Atomic.make 0;
    reused_clauses = Atomic.make 0;
    shared_clauses = 0;
    core_prunes = 0;
    shared_seen = Hashtbl.create 256;
    stable_cores = Hashtbl.create 256;
  }

let shutdown ctx = Parsweep.shutdown ctx.sched
let sched_stats ctx = Parsweep.stats ctx.sched

(* The context's solver-work profile.  Persistent solvers are read live —
   the primary pair plus every initialized worker lane (lane 0 aliases
   the primary solver and is skipped) — and the discarded throwaway
   solvers of the non-incremental baseline have already been folded into
   the accumulators.  Coordinator-only, between rounds. *)
let profile ctx =
  let lane_solvers =
    List.filter_map
      (fun w -> if w.w_solver == ctx.solver then None else Some w.w_solver)
      (Parsweep.initialized_states ctx.sched)
  in
  let solvers = ctx.solver :: ctx.solver0 :: lane_solvers in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 solvers in
  {
    pr_conflicts = Atomic.get ctx.acc_conflicts + sum Sat.num_conflicts;
    pr_propagations = Atomic.get ctx.acc_propagations + sum Sat.num_propagations;
    pr_restarts = Atomic.get ctx.acc_restarts + sum Sat.num_restarts;
    pr_encoded_vars = Atomic.get ctx.acc_vars + sum Sat.num_vars;
    pr_reused_clauses = Atomic.get ctx.reused_clauses;
    pr_shared_clauses = ctx.shared_clauses;
    pr_core_prunes = ctx.core_prunes;
  }

(* Fold a throwaway solver's counters into the accumulators before it is
   dropped; runs on worker lanes, hence the atomics. *)
let retire_throwaway ctx s =
  ignore (Atomic.fetch_and_add ctx.acc_conflicts (Sat.num_conflicts s));
  ignore (Atomic.fetch_and_add ctx.acc_propagations (Sat.num_propagations s));
  ignore (Atomic.fetch_and_add ctx.acc_restarts (Sat.num_restarts s));
  ignore (Atomic.fetch_and_add ctx.acc_vars (Sat.num_vars s))

let norm_key la lb = if la <= lb then (la, lb) else (lb, la)

(* selector literal sel with sel -> (a <-> b) *)
let equality_selector solver table key a b =
  match Hashtbl.find_opt table key with
  | Some v -> Sat.Lit.pos v
  | None ->
    let v = Sat.new_var solver in
    let sl = Sat.Lit.pos v and ns = Sat.Lit.neg v in
    Sat.add_clause solver [ ns; Sat.Lit.negate a; b ];
    Sat.add_clause solver [ ns; a; Sat.Lit.negate b ];
    Hashtbl.replace table key v;
    sl

(* selector literal sel with sel -> (a <> b) *)
let difference_selector solver table key a b =
  match Hashtbl.find_opt table key with
  | Some v -> Sat.Lit.pos v
  | None ->
    let v = Sat.new_var solver in
    let sl = Sat.Lit.pos v and ns = Sat.Lit.neg v in
    Sat.add_clause solver [ ns; a; b ];
    Sat.add_clause solver [ ns; Sat.Lit.negate a; Sat.Lit.negate b ];
    Hashtbl.replace table key v;
    sl

(* Reserve one solve against the shared budgets; called from worker
   lanes as well as the coordinator.  The deadline check reads the
   shared cancellation flag, so once any lane sees expiry every other
   lane aborts at its next class solve.  A refused reservation is
   backed out so [sat_calls] keeps counting solves actually issued. *)
let check_budget ctx =
  if Deadline.expired ctx.deadline then raise (Budget_exceeded "deadline");
  if Atomic.fetch_and_add ctx.sat_calls 1 >= ctx.max_sat_calls then begin
    Atomic.decr ctx.sat_calls;
    raise (Budget_exceeded "sat calls")
  end

(* Split every class according to a model's valuation of [frame_lit]. *)
let bulk_split partition frame_lit solver =
  ignore
    (Partition.refine_by_key partition (fun id ->
         Sat.value_lit solver (frame_lit (Partition.norm_lit partition id))))

(* Pack the model's valuation of one frame (its state and inputs) into the
   pattern pool; a later flush replays it against every class at once. *)
let pool_model ctx solver lit_of =
  let aig = ctx.p.Product.aig in
  Simpool.add ctx.pool
    ~pi:(fun i -> Sat.value_lit solver (lit_of (Aig.lit_of_node ctx.pi_nodes.(i))))
    ~latch:(fun i ->
      Sat.value_lit solver (lit_of (Aig.lit_of_node (Aig.latch_node aig i))))

(* Static candidate prefilter: split members whose PI support (closed
   through latches) is non-empty and disjoint from their subgroup
   representative's — zero solver calls.  Run once per pass so splits by
   other means re-expose new disjoint representative pairs.  Applied by
   the batched AND the pairwise scans, so both compute the same fixed
   point whatever the [static_filter] setting. *)
let static_prefilter ctx partition =
  if not ctx.static_filter then 0
  else begin
    let support = Lazy.force ctx.support in
    List.fold_left
      (fun acc cls ->
        if Support.prefilter_class support partition cls then begin
          ctx.n_static <- ctx.n_static + 1;
          acc + 1
        end
        else acc)
      0
      (Partition.multi_member_classes partition)
  end

(* --- legacy pairwise scans (kept for benchmarking and cross-checks) -------- *)

(* Initial-state refinement: classes must agree on every input in each of
   the first k frames from s0 (Equation 2 for k = 1). *)
let refine_initial_pairwise ctx partition =
  ignore (static_prefilter ctx partition);
  let rec clean_pass () =
    let violated =
      List.find_map
        (fun cls ->
          match Partition.members partition cls with
          | [] | [ _ ] -> None
          | rep :: rest ->
            let check_frame frame =
              let lit_of = ctx.init_frames.(frame) in
              let a = lit_of (Partition.norm_lit partition rep) in
              List.find_map
                (fun id ->
                  let b = lit_of (Partition.norm_lit partition id) in
                  if a = b then None
                  else begin
                    let la, lb =
                      norm_key (Partition.norm_lit partition rep)
                        (Partition.norm_lit partition id)
                    in
                    let dsel =
                      difference_selector ctx.solver0 ctx.diff_sel0 (frame, la, lb) a b
                    in
                    check_budget ctx;
                    match Sat.solve ~assumptions:[ dsel ] ctx.solver0 with
                    | Sat.Unsat -> None
                    | Sat.Sat -> Some frame
                  end)
                rest
            in
            let rec frames frame =
              if frame >= ctx.k then None
              else match check_frame frame with Some f -> Some f | None -> frames (frame + 1)
            in
            frames 0)
        (Partition.multi_member_classes partition)
    in
    match violated with
    | Some frame ->
      bulk_split partition ctx.init_frames.(frame) ctx.solver0;
      clean_pass ()
    | None -> ()
  in
  clean_pass ()

(* The Q assumptions of the current partition: one equality selector per
   (representative, member) pair and per assumed frame 1..k. *)
let q_assumptions ctx partition =
  List.concat_map
    (fun (rep, id) ->
      let la = Partition.norm_lit partition rep and lb = Partition.norm_lit partition id in
      List.filter_map
        (fun frame ->
          let lit_of = ctx.frames.(frame) in
          let a = lit_of la and b = lit_of lb in
          if a = b then None
          else
            let ka, kb = norm_key la lb in
            Some (equality_selector ctx.solver ctx.eq_sel (frame, ka, kb) a b))
        (List.init ctx.k (fun i -> i)))
    (Partition.constraint_pairs partition)

(* Q selectors are rebuilt only when the partition version moved: within a
   sweep (and across the trust/strict passes of one version) the cached
   list is reused by every class solve on the primary solver. *)
let q_of ctx partition =
  let v = Partition.version partition in
  match ctx.q_cache with
  | Some (v', q) when v' = v -> q
  | _ ->
    let q = q_assumptions ctx partition in
    ctx.q_cache <- Some (v, q);
    q

(* One refinement event (Equation 3 generalized to k frames): find a pair
   whose frame-(k+1) values differ on some run conforming to Q for k
   frames; split all classes with the witness.  Returns false when a full
   scan finds no violation. *)
let refine_once_pairwise ctx partition =
  if static_prefilter ctx partition > 0 then true
  else
  let q = q_of ctx partition in
  let last = ctx.frames.(ctx.k) in
  let violated =
    List.find_map
      (fun cls ->
        match Partition.members partition cls with
        | [] | [ _ ] -> None
        | rep :: rest ->
          let a = last (Partition.norm_lit partition rep) in
          List.find_map
            (fun id ->
              let b = last (Partition.norm_lit partition id) in
              if a = b then None
              else begin
                let key =
                  norm_key (Partition.norm_lit partition rep) (Partition.norm_lit partition id)
                in
                let dsel = difference_selector ctx.solver ctx.diff_sel key a b in
                check_budget ctx;
                match Sat.solve ~assumptions:(dsel :: q) ctx.solver with
                | Sat.Unsat -> None
                | Sat.Sat -> Some ()
              end)
            rest)
      (Partition.multi_member_classes partition)
  in
  match violated with
  | Some () ->
    bulk_split partition last ctx.solver;
    true
  | None -> false

(* --- batched sweeps ----------------------------------------------------------- *)

(* Exact initial-state refinement (Equation 2), batched: one staged solve
   per (class, frame) asserting the OR of the class's difference
   selectors.  Counterexamples are pooled and applied in bit-parallel
   batches between passes.  An UNSAT answer here is permanent — solver0
   has no removable assumptions and class member sets only shrink — so
   proven (class, frame) prefixes are cached in [init_clean].

   Incremental mode stages the OR through an activation-guarded clause on
   the persistent initialized solver and {!Sat.release}s the guard after
   the answer; the baseline re-encodes an initialized (frame+1)-frame
   unrolling into a throwaway solver per obligation. *)
let refine_initial ctx partition =
  let aig = ctx.p.Product.aig in
  let progress = ref true in
  while !progress do
    progress := false;
    if static_prefilter ctx partition > 0 then progress := true;
    List.iter
      (fun cls ->
        let clean =
          match Hashtbl.find_opt ctx.init_clean cls with Some f -> f | None -> 0
        in
        if clean >= ctx.k then ctx.n_cache_hits <- ctx.n_cache_hits + 1
        else begin
          let rec frames frame =
            if frame < ctx.k then begin
              match Partition.members partition cls with
              | [] | [ _ ] -> ()
              | rep :: rest ->
                let lit_of = ctx.init_frames.(frame) in
                let la = Partition.norm_lit partition rep in
                let a = lit_of la in
                let diffs =
                  List.filter_map
                    (fun id ->
                      let lb = Partition.norm_lit partition id in
                      if a = lit_of lb then None else Some lb)
                    rest
                in
                (match diffs with
                | [] ->
                  Hashtbl.replace ctx.init_clean cls (frame + 1);
                  frames (frame + 1)
                | diffs ->
                  check_budget ctx;
                  ctx.n_batched <- ctx.n_batched + 1;
                  let answer =
                    if ctx.incremental then begin
                      ignore
                        (Atomic.fetch_and_add ctx.reused_clauses
                           (Sat.num_clauses ctx.solver0));
                      let dsels =
                        List.map
                          (fun lb ->
                            let ka, kb = norm_key la lb in
                            difference_selector ctx.solver0 ctx.diff_sel0
                              (frame, ka, kb) a (lit_of lb))
                          diffs
                      in
                      let g = Sat.new_var ctx.solver0 in
                      Sat.add_clause ~act:g ctx.solver0 dsels;
                      let answer =
                        Sat.solve ~assumptions:[ Sat.Lit.pos g ] ctx.solver0
                      in
                      (* read the model before releasing the staging
                         guard: the release backtracks the trail *)
                      (match answer with
                      | Sat.Unsat -> ()
                      | Sat.Sat -> pool_model ctx ctx.solver0 lit_of);
                      Sat.release ctx.solver0 g;
                      answer
                    end
                    else begin
                      let s = Sat.create () in
                      let svars =
                        Array.init (Aig.num_latches aig) (fun i ->
                            let v = Sat.new_var s in
                            Sat.add_clause s [ Sat.Lit.make v (Aig.latch_init aig i) ];
                            v)
                      in
                      let fr =
                        unroll s aig ~n:(frame + 1) ~first_latch_var:(fun i -> svars.(i))
                      in
                      let lof = fr.(frame) in
                      let fa = lof la in
                      let ds =
                        List.map
                          (fun lb ->
                            let fb = lof lb in
                            let v = Sat.new_var s in
                            Sat.add_clause s [ Sat.Lit.neg v; fa; fb ];
                            Sat.add_clause s
                              [ Sat.Lit.neg v; Sat.Lit.negate fa; Sat.Lit.negate fb ];
                            Sat.Lit.pos v)
                          diffs
                      in
                      Sat.add_clause s ds;
                      let answer = Sat.solve s in
                      (match answer with
                      | Sat.Unsat -> ()
                      | Sat.Sat -> pool_model ctx s lof);
                      retire_throwaway ctx s;
                      answer
                    end
                  in
                  (match answer with
                  | Sat.Unsat ->
                    Hashtbl.replace ctx.init_clean cls (frame + 1);
                    frames (frame + 1)
                  | Sat.Sat ->
                    (* the violating frame is pooled; the end-of-pass flush
                       splits the witnessed pair, so the next pass makes
                       progress here *)
                    progress := true;
                    if Simpool.is_full ctx.pool then
                      ignore (Simpool.flush ctx.pool partition)))
            end
          in
          frames clean
        end)
      (Partition.multi_member_classes partition);
    if Simpool.flush ctx.pool partition > 0 then progress := true
  done

(* A sweep task: one suspect class, frozen at round start as its
   polarity-normalized member literals (representative first), so worker
   lanes never read the shared partition. *)
type task = { t_cls : int; t_lits : int array }

type outcome =
  | O_trivial (* all members share one frame-k literal: stable for free *)
  | O_stable of (int * int) list
      (* UNSAT: no Eq.(3) violation under the frozen Q; the payload is
         the failed-assumption core mapped back to normalized constraint
         pairs — the only Q equalities the refutation used *)
  | O_witness of bool array * bool array
      (* (inputs, state) valuation of the last frame of a violating run *)

(* Per-lane Q selectors for one partition version, built from the frozen
   (rep, member) normalized-literal pairs the coordinator captured.
   Every selector is remembered in [w_sel_pair] so failed-assumption
   cores can be mapped back to the pairs they mention. *)
let lane_q ctx w ~version ~pairs =
  match w.w_q with
  | Some (v, q) when v = version -> q
  | _ ->
    let q =
      List.concat_map
        (fun (la, lb) ->
          List.filter_map
            (fun frame ->
              let lit_of = w.w_frames.(frame) in
              let a = lit_of la and b = lit_of lb in
              if a = b then None
              else begin
                let ka, kb = norm_key la lb in
                let sl = equality_selector w.w_solver w.w_eq_sel (frame, ka, kb) a b in
                Hashtbl.replace w.w_sel_pair (Sat.Lit.var sl) (ka, kb);
                Some sl
              end)
            (List.init ctx.k (fun i -> i)))
        pairs
    in
    w.w_q <- Some (version, q);
    q

(* One staged-OR class solve on a lane's private persistent solver;
   read-only with respect to all shared state.  The staging guard is an
   activation variable released after the answer, so the retired OR
   clause (and any learned clause mentioning it) is garbage-collected
   instead of burdening propagation forever. *)
let solve_class ctx w ~version ~pairs task =
  let last = w.w_frames.(ctx.k) in
  let la = task.t_lits.(0) in
  let a = last la in
  let dsels = ref [] in
  for i = Array.length task.t_lits - 1 downto 1 do
    let lb = task.t_lits.(i) in
    let b = last lb in
    if a <> b then begin
      let ka, kb = norm_key la lb in
      dsels := difference_selector w.w_solver w.w_diff_sel (ka, kb) a b :: !dsels
    end
  done;
  match !dsels with
  | [] -> O_trivial
  | dsels ->
    (* per-solve budget poll, on the lane: bounds call-count overshoot
       by the solves in flight and lands deadline aborts within one
       class solve *)
    check_budget ctx;
    ignore (Atomic.fetch_and_add ctx.reused_clauses (Sat.num_clauses w.w_solver));
    let q = lane_q ctx w ~version ~pairs in
    let g = Sat.new_var w.w_solver in
    Sat.add_clause ~act:g w.w_solver dsels;
    let answer = Sat.solve ~assumptions:(Sat.Lit.pos g :: q) w.w_solver in
    (* read the model / failed core before releasing the staging guard:
       the release backtracks the trail *)
    let out =
      match answer with
      | Sat.Unsat ->
        let core =
          List.filter_map
            (fun l -> Hashtbl.find_opt w.w_sel_pair (Sat.Lit.var l))
            (Sat.failed_assumptions w.w_solver)
        in
        O_stable core
      | Sat.Sat ->
        let aig = ctx.p.Product.aig in
        let pi =
          Array.map
            (fun nd -> Sat.value_lit w.w_solver (last (Aig.lit_of_node nd)))
            ctx.pi_nodes
        in
        let latch =
          Array.init (Aig.num_latches aig) (fun i ->
              Sat.value_lit w.w_solver (last (Aig.lit_of_node (Aig.latch_node aig i))))
        in
        O_witness (pi, latch)
    in
    Sat.release w.w_solver g;
    out

(* The non-incremental baseline: the same class obligation re-encoded
   from scratch into a throwaway solver — a fresh k+1-frame unrolling
   with the frozen Q as hard equality clauses on frames 0..k-1 and the
   class's difference OR as a hard clause — solved without assumptions,
   its counters folded into the accumulators, then dropped.  The trivial
   exit reads the persistent frame maps (pure lookups), mirroring the
   incremental path's zero-cost case and its budget accounting. *)
let solve_class_fresh ctx ~pairs task =
  let aig = ctx.p.Product.aig in
  let last0 = ctx.frames.(ctx.k) in
  let la = task.t_lits.(0) in
  let a0 = last0 la in
  let nontrivial = ref false in
  for i = 1 to Array.length task.t_lits - 1 do
    if last0 task.t_lits.(i) <> a0 then nontrivial := true
  done;
  if not !nontrivial then O_trivial
  else begin
    check_budget ctx;
    let s = Sat.create () in
    let vars = Array.init (Aig.num_latches aig) (fun _ -> Sat.new_var s) in
    let fr = unroll s aig ~n:(ctx.k + 1) ~first_latch_var:(fun i -> vars.(i)) in
    List.iter
      (fun (pa, pb) ->
        for frame = 0 to ctx.k - 1 do
          let lit_of = fr.(frame) in
          let a = lit_of pa and b = lit_of pb in
          if a <> b then begin
            Sat.add_clause s [ Sat.Lit.negate a; b ];
            Sat.add_clause s [ a; Sat.Lit.negate b ]
          end
        done)
      pairs;
    let last = fr.(ctx.k) in
    let a = last la in
    let ds = ref [] in
    for i = Array.length task.t_lits - 1 downto 1 do
      let b = last task.t_lits.(i) in
      if a <> b then begin
        let v = Sat.new_var s in
        Sat.add_clause s [ Sat.Lit.neg v; a; b ];
        Sat.add_clause s [ Sat.Lit.neg v; Sat.Lit.negate a; Sat.Lit.negate b ];
        ds := Sat.Lit.pos v :: !ds
      end
    done;
    Sat.add_clause s !ds;
    let answer = Sat.solve s in
    let out =
      match answer with
      | Sat.Unsat -> O_stable []
      | Sat.Sat ->
        let pi =
          Array.map (fun nd -> Sat.value_lit s (last (Aig.lit_of_node nd))) ctx.pi_nodes
        in
        let latch =
          Array.init (Aig.num_latches aig) (fun i ->
              Sat.value_lit s (last (Aig.lit_of_node (Aig.latch_node aig i))))
        in
        O_witness (pi, latch)
    in
    retire_throwaway ctx s;
    out
  end

(* Cross-lane learned-clause exchange, run by the coordinator at the
   sweep merge point (no batch in flight).  Each lane exports its short,
   low-LBD learned clauses over the shared base encoding — selector and
   activation variables occur only negatively in problem clauses, so a
   learned clause confined to base variables was derived from the base
   encoding alone and holds in every lane — deduplicated against
   everything already broadcast, and imported into every other lane. *)
let share_clauses ctx =
  match Parsweep.initialized_states ctx.sched with
  | [] | [ _ ] -> ()
  | lanes ->
    List.iter
      (fun src ->
        List.iter
          (fun c ->
            let key = List.sort compare c in
            if not (Hashtbl.mem ctx.shared_seen key) then begin
              Hashtbl.replace ctx.shared_seen key ();
              List.iter
                (fun dst ->
                  if dst != src then begin
                    Sat.import_clause dst.w_solver c;
                    ctx.shared_clauses <- ctx.shared_clauses + 1
                  end)
                lanes
            end)
          (Sat.export_learnts src.w_solver ~limit_var:ctx.base_vars ~max_size:8
             ~max_lbd:4))
      lanes

(* One batched sweep round of Equation (3).  The partition is frozen
   into tasks, solved across the pool's lanes, and the outcomes applied
   serially in ascending class order: UNSAT marks the class proven at
   the round's version, a witness valuation joins the pattern pool and
   is replayed bit-parallel against every class.  [trust] enables the
   cone-based dirty skip; a strict pass re-proves every class whose
   certificate is older than the current partition version.  Returns
   whether any class split.

   Soundness and schedule-independence: every pooled witness is a run
   conforming to the Q of a partition coarser than (or equal to) the one
   being split, so no split ever separates two signals equal in the
   greatest fixed point; since splits are also the only state change,
   every worker count converges to the same fixed point.  An UNSAT
   certificate is recorded at the frozen version and re-examined by the
   strict pass whenever the partition moved on, exactly as in the
   sequential schedule.  Budgets are enforced per class solve: every
   lane reserves a slot on the shared call counter (and polls the
   shared deadline flag) before issuing a solve, so a parallel round
   overshoots [max_sat_calls] by at most [jobs] in-flight solves.  The
   exception of the smallest aborting task index is re-raised by the
   coordinator once the round's remaining tasks have drained — each of
   them aborts at its own first poll. *)
let sweep ctx partition ~trust =
  let splits = ref 0 in
  let flush () = splits := !splits + Simpool.flush ctx.pool partition in
  flush ();
  if Deadline.expired ctx.deadline then raise (Budget_exceeded "deadline");
  if Atomic.get ctx.sat_calls >= ctx.max_sat_calls then
    raise (Budget_exceeded "sat calls");
  (* zero-cost splits first, so the frozen Q and the round's tasks see the
     statically refined partition *)
  splits := !splits + static_prefilter ctx partition;
  let vq = Partition.version partition in
  let pairs =
    List.map
      (fun (rep, id) ->
        (Partition.norm_lit partition rep, Partition.norm_lit partition id))
      (Partition.constraint_pairs partition)
  in
  let tasks =
    List.filter_map
      (fun cls ->
        let skip =
          match Hashtbl.find_opt ctx.proved_at cls with
          | Some v ->
            v >= vq
            || (trust
               && not (Support.suspect (Lazy.force ctx.support) partition cls ~proved_at:v))
          | None -> false
        in
        if skip then begin
          ctx.n_cache_hits <- ctx.n_cache_hits + 1;
          None
        end
        else
          match Partition.members partition cls with
          | [] | [ _ ] -> None
          | members ->
            let lits = Array.of_list (List.map (Partition.norm_lit partition) members) in
            (* Failed-core transfer: an UNSAT proof recorded for exactly
               these member literals whose core equalities all still hold
               in the current partition refutes the obligation at this
               version too — Q entails every equality between co-classed
               pairs — so the class is re-proved without a solve.  A
               proof, not a heuristic: valid in strict passes as well. *)
            let pruned =
              ctx.incremental
              && (match Hashtbl.find_opt ctx.stable_cores cls with
                 | Some (old_lits, core) ->
                   old_lits = lits
                   && List.for_all
                        (fun (la, lb) -> Partition.lits_equal partition la lb)
                        core
                 | None -> false)
            in
            if pruned then begin
              ctx.core_prunes <- ctx.core_prunes + 1;
              Hashtbl.replace ctx.proved_at cls vq;
              None
            end
            else Some { t_cls = cls; t_lits = lits })
      (Partition.multi_member_classes partition)
    |> Array.of_list
  in
  let outcomes =
    Parsweep.map ctx.sched
      ~f:(fun w task ->
        if ctx.incremental then solve_class ctx w ~version:vq ~pairs task
        else solve_class_fresh ctx ~pairs task)
      tasks
  in
  if ctx.incremental then share_clauses ctx;
  Array.iteri
    (fun i outcome ->
      let cls = tasks.(i).t_cls in
      match outcome with
      | O_trivial -> Hashtbl.replace ctx.proved_at cls vq
      | O_stable core ->
        ctx.n_batched <- ctx.n_batched + 1;
        Hashtbl.replace ctx.proved_at cls vq;
        if ctx.incremental then
          Hashtbl.replace ctx.stable_cores cls (tasks.(i).t_lits, core)
      | O_witness (pi, latch) ->
        ctx.n_batched <- ctx.n_batched + 1;
        if Simpool.is_full ctx.pool then flush ();
        Simpool.add ctx.pool ~pi:(fun i -> pi.(i)) ~latch:(fun i -> latch.(i)))
    outcomes;
  flush ();
  !splits > 0

(* One refinement iteration: a trusting sweep over suspect classes; when
   it is quiescent, a strict confirmation sweep that re-examines every
   class not proven at the current version, so the reported fixed point
   never rests on the cone heuristic. *)
let refine_once ctx partition =
  if sweep ctx partition ~trust:true then true else sweep ctx partition ~trust:false
