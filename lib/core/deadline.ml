(* Wall-clock deadline budgets, built on the monotonic-safe {!Clock}.

   A deadline is an absolute expiry instant plus a shared cancellation
   flag.  The flag is what makes the poll cheap and cooperative across
   worker domains: the first lane that observes [Clock.now () > at] sets
   it, and every other lane's next poll sees the flag without touching
   the wall clock again.  Engines poll inside rounds — once per class
   solve — so an abort lands within one class-solve of the expiry
   instead of one whole refinement round.

   Expiry never raises here: callers test {!expired} and raise their own
   budget exception, so the abort path stays uniform with the call-count
   and node-count budgets.

   A deadline can also carry an {e external} cancellation flag — a shared
   atomic owned by someone outside the run, e.g. the serve daemon's
   per-job cancel.  The flag is deliberately separate from the internal
   [cancelled] latch: a portfolio rung whose time slice expires latches
   only its own deadline, while a job-level cancel must reach every rung
   the job will ever start.  Each rung therefore builds a fresh deadline
   for its slice and attaches the same external flag to all of them. *)

type flag = bool Atomic.t

let flag () : flag = Atomic.make false
let cancel (f : flag) = Atomic.set f true
let cancelled (f : flag) = Atomic.get f

type t = {
  at : float; (* absolute Clock time of expiry; [infinity] = no deadline *)
  cancelled : bool Atomic.t; (* set once by whichever lane sees expiry first *)
  ext : flag option; (* external cancellation, e.g. a daemon job cancel *)
}

let none = { at = infinity; cancelled = Atomic.make false; ext = None }

(* [make ~seconds] starts the budget now; non-positive means unlimited. *)
let make ~seconds =
  if seconds <= 0.0 then none
  else { at = Clock.now () +. seconds; cancelled = Atomic.make false; ext = None }

let with_flag f t = { t with ext = Some f }

let active t = t.at < infinity || t.ext <> None

(* The external flag is read, never written: setting the internal latch
   from it would conflate "this slice ran out" with "the job was
   cancelled" on deadlines that share structure (notably [none]). *)
let expired t =
  Atomic.get t.cancelled
  || (match t.ext with Some f -> Atomic.get f | None -> false)
  || (t.at < infinity
     && Clock.now () > t.at
     &&
     (Atomic.set t.cancelled true;
      true))

let remaining t = if t.at = infinity then infinity else max 0.0 (t.at -. Clock.now ())
