(* Wall-clock deadline budgets, built on the monotonic-safe {!Clock}.

   A deadline is an absolute expiry instant plus a shared cancellation
   flag.  The flag is what makes the poll cheap and cooperative across
   worker domains: the first lane that observes [Clock.now () > at] sets
   it, and every other lane's next poll sees the flag without touching
   the wall clock again.  Engines poll inside rounds — once per class
   solve — so an abort lands within one class-solve of the expiry
   instead of one whole refinement round.

   Expiry never raises here: callers test {!expired} and raise their own
   budget exception, so the abort path stays uniform with the call-count
   and node-count budgets. *)

type t = {
  at : float; (* absolute Clock time of expiry; [infinity] = no deadline *)
  cancelled : bool Atomic.t; (* set once by whichever lane sees expiry first *)
}

let none = { at = infinity; cancelled = Atomic.make false }

(* [make ~seconds] starts the budget now; non-positive means unlimited. *)
let make ~seconds =
  if seconds <= 0.0 then none
  else { at = Clock.now () +. seconds; cancelled = Atomic.make false }

let active t = t.at < infinity

let expired t =
  Atomic.get t.cancelled
  || (t.at < infinity
     && Clock.now () > t.at
     &&
     (Atomic.set t.cancelled true;
      true))

let remaining t = if t.at = infinity then infinity else max 0.0 (t.at -. Clock.now ())
