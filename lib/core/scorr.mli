(** Sequential equivalence checking without state space traversal.

    The paper's method (van Eijk, DATE'98): prove two sequential circuits
    equivalent by computing the {e maximum signal correspondence relation}
    — the greatest equivalence relation over the (polarity-normalized)
    signals of the product machine that holds in the initial state and is
    inductive over one time frame — using only combinational techniques.

    Typical use:
    {[
      let spec, _ = Aig.of_netlist (Netlist.Blif.parse_file "spec.blif") in
      let impl, _ = Aig.of_netlist (Netlist.Blif.parse_file "impl.blif") in
      match Scorr.check spec impl with
      | Scorr.Equivalent stats -> ...
      | Scorr.Not_equivalent { frame; _ } -> ...
      | Scorr.Unknown _ -> ...      (* sound incompleteness *)
    ]} *)

(** The product machine (shared inputs, union of latches) and per-signal
    provenance used for the equivalence-percentage statistic. *)
module Product : sig
  type side = { n_latches : int; latch_offset : int; lit_in_product : int -> int }

  type t = {
    aig : Aig.t;
    spec : side;
    impl : side;
    is_spec : bool array;
    is_impl : bool array;
    outputs : (string * int * int) list;  (** name, spec literal, impl literal *)
    n_original_nodes : int;
  }

  val make : Aig.t -> Aig.t -> t
  (** Pair two circuits over shared inputs; outputs are matched by name.
      A PO ["outputs_agree"] is added so {!Reach} can traverse the same
      machine.
      @raise Invalid_argument on interface mismatch. *)

  val candidate_nodes : t -> int list
  val node_is_spec : t -> int -> bool
  val node_is_impl : t -> int -> bool
  val node_is_helper : t -> int -> bool
  (** Nodes added by retiming augmentation (excluded from statistics). *)

  val reference_values : ?seed:int -> t -> bool array
  (** Valuation of all signals at the initial state under one fixed input
      vector: the polarity normalization point of Section 3. *)
end

(** Equivalence classes over candidate signals, refined monotonically. *)
module Partition : sig
  type t

  val create : n_nodes:int -> candidates:int list -> pol:bool array -> t
  val n_classes : t -> int
  val class_of : t -> int -> int
  val polarity : t -> int -> bool
  val members : t -> int -> int list
  val is_candidate : t -> int -> bool

  val norm_lit : t -> int -> int
  (** Polarity-normalized literal of a candidate node. *)

  val representative : t -> int -> int

  val refine_by_key : t -> (int -> 'k) -> int
  (** Split classes by a key; returns the number of classes created. *)

  val refine_class : t -> int -> equal:(int -> int -> bool) -> bool
  val lits_equal : t -> int -> int -> bool
  (** Are two literals provably equal under the relation (same class,
      consistent polarity)? *)

  val constraint_pairs : t -> (int * int) list
  (** The (representative, member) pairs whose equalities form Q. *)

  val multi_member_classes : t -> int list

  val version : t -> int
  (** Monotone counter bumped by every refinement event that splits a
      class.  Drives the dirty-class scheduling of the engines. *)

  val touched_version : t -> int -> int
  (** Version at which a class last changed membership (creation counts). *)

  val moved_since : ?limit:int -> t -> int -> int list option
  (** Nodes moved to a new class by events after the given version;
      [None] when more than [limit] entries would need scanning (callers
      should then assume everything moved). *)

  val pp : Format.formatter -> t -> unit
end

(** Monotonic-safe wall clock: [Unix.gettimeofday] clamped to be
    non-decreasing process-wide (including across domains), so intervals
    measured against it are never negative. *)
module Clock : sig
  val now : unit -> float
  val since : float -> float
  (** Seconds elapsed since an earlier {!now} reading (>= 0). *)

  val measure : record:(float -> unit) -> (unit -> 'a) -> 'a
  (** Run a thunk and deliver its wall time to [record] on {e every} exit,
      including exceptional ones — a phase that aborts on a blown budget
      still reports the time it consumed. *)

  val timed : (unit -> 'a) -> 'a * float
  (** Run a thunk and return its result with its wall time.  Exception-safe
      via {!measure}, though the elapsed time is only observable on normal
      returns. *)
end

(** Wall-clock deadline budgets: an absolute expiry instant plus a shared
    cancellation flag, so the first worker lane that observes expiry
    cancels every other lane's next poll without further clock reads.
    Expiry never raises here — engines test {!Deadline.expired} and raise
    their own budget exception, keeping the abort path uniform with the
    call-count and node-count budgets. *)
module Deadline : sig
  type t

  type flag
  (** An external cancellation flag: a shared atomic owned by someone
      outside the run (e.g. the serve daemon's per-job cancel).  Kept
      separate from the deadline's internal expiry latch so a portfolio
      rung whose time slice expires does not masquerade as a job-level
      cancel, and one flag can reach every rung a job will ever start. *)

  val flag : unit -> flag
  val cancel : flag -> unit
  (** Request cancellation; every deadline carrying the flag reports
      {!expired} from its next poll on. *)

  val cancelled : flag -> bool

  val none : t
  (** Never expires. *)

  val make : seconds:float -> t
  (** A deadline [seconds] from now; non-positive yields {!none}. *)

  val with_flag : flag -> t -> t
  (** Attach an external cancellation flag to a deadline. *)

  val active : t -> bool
  val expired : t -> bool
  (** Polled by the engines once per class solve, so an abort lands
      within one class-solve of the expiry. *)

  val remaining : t -> float
  (** Seconds left ([infinity] for {!none}, clamped at 0). *)
end

(** Work-stealing domain pool scheduling the engines' sweep rounds.

    A pool of [jobs] lanes: lane 0 is the calling domain (the
    coordinator participates in its own batches), lanes 1.. are
    persistent worker domains.  Each lane lazily builds private state
    with [init lane] inside its own domain and reuses it across every
    {!map}.  At [jobs = 1] everything runs inline with no domains, locks
    or atomics — the degenerate pool is the sequential code path. *)
module Parsweep : sig
  type stats = {
    domains : int;  (** lanes, including the coordinator's lane 0 *)
    lane_tasks : int array;  (** tasks completed per lane, lifetime *)
    steals : int;  (** tasks claimed from another lane's segment *)
    wait_seconds : float;  (** coordinator idle time awaiting stragglers *)
  }

  type 'w t

  val create : jobs:int -> init:(int -> 'w) -> 'w t
  (** Spawn [jobs - 1] worker domains ([jobs] is clamped to >= 1).
      [init] runs lazily, once per lane, inside the lane's domain. *)

  val jobs : _ t -> int

  val map : 'w t -> f:('w -> 'a -> 'b) -> 'a array -> 'b array
  (** Run [f] over every task and return the results in task order,
      whatever lane computed them.  Tasks are sharded into contiguous
      per-lane segments; a drained lane steals from the most loaded one.
      A task that raises does not kill its lane: the exception of the
      smallest failing task index is re-raised here after the batch
      completes, and the pool remains usable. *)

  val initialized_states : 'w t -> 'w list
  (** The lane states built so far, in lane order.  Coordinator-only,
      and only between batches: the batch hand-off is what makes the
      workers' lazily built states visible.  The SAT engine walks these
      at merge points to exchange learned clauses and harvest solver
      counters. *)

  val stats : _ t -> stats
  val shutdown : _ t -> unit
  (** Join the worker domains; idempotent.  Subsequent {!map} calls
      raise [Invalid_argument]. *)
end

(** Counterexample pattern pool: solver/BDD counterexamples packed as bit
    lanes of a 64-wide simulation buffer, replayed against every class at
    once by one bit-parallel pass. *)
module Simpool : sig
  type t

  val create : Aig.t -> t
  val lanes : t -> int
  (** Filled lanes of the current buffer (0..64). *)

  val total_lanes : t -> int
  val flushes : t -> int
  val resim_splits : t -> int
  (** Classes created by flushes so far. *)

  val is_full : t -> bool

  val add : t -> pi:(int -> bool) -> latch:(int -> bool) -> unit
  (** Pack one (input, state) valuation into the next free lane.
      @raise Invalid_argument when the pool {!is_full}. *)

  val flush : t -> Partition.t -> int
  (** Split every class by the members' values on all buffered patterns
      (unused lanes masked out); resets the buffer and returns the number
      of classes created. *)

  val snapshot : t -> (bool array * bool array) list
  (** The (input, state) valuations of the currently buffered lanes, in
      insertion order — the patterns a checkpoint must preserve so no
      witnessed split is lost across an interruption. *)
end

(** Structural support cones of the product machine, closed through latch
    next-state functions; drives the engines' dirty-class scheduling and
    the static candidate prefilter. *)
module Support : sig
  type t

  val make : Aig.t -> t
  val in_cone : t -> node:int -> of_:int -> bool

  val cone_size : t -> int -> int
  (** Number of nodes the signal structurally depends on (closed through
      latches), itself included. *)

  val max_cone_size : t -> int

  val pi_compatible : t -> int -> int -> bool
  (** May the two nodes be equivalent, judged by structural PI support?
      [false] exactly when both supports are non-empty and disjoint. *)

  val prefilter_class : t -> Partition.t -> int -> bool
  (** Split one class by PI-support compatibility with each subgroup's
      representative; [true] when the class split.  Costs no solver or
      BDD work and never fabricates an equivalence. *)

  val suspect : t -> Partition.t -> int -> proved_at:int -> bool
  (** Must the class be re-examined after being proven stable at partition
      version [proved_at]?  Conservative in the direction engines handle:
      a [false] answer is confirmed by a strict sweep before the fixed
      point is reported. *)
end

(** Random sequential simulation seeding (Section 4). *)
module Simseed : sig
  val signatures : ?seed:int -> ?n_frames:int -> Product.t -> bool array -> int64 list array
  val refine : ?seed:int -> ?n_frames:int -> Product.t -> Partition.t -> int
end

(** Ternary (X-valued) simulation seeding: exact partition splits by the
    input-independent part of the state sequence from the initial state. *)
module Ternseed : sig
  val refine : ?max_steps:int -> Product.t -> Partition.t -> int
  (** Split classes whose members have definitely-unequal ternary
      signatures; returns the number of classes split.  Sound and exact:
      split signals differ at a fixed frame of every run. *)

  val stuck_constants : ?max_steps:int -> Product.t -> (int * bool) list
  (** Product-machine latches (by index) provably stuck at a constant. *)
end

(** Speculative reduction (ABC-style SRM): the product machine rebuilt
    with every candidate class merged onto its representative, one
    assumption obligation per merge that structural hashing did not
    discharge outright.  Exactness argument in specreduce.ml. *)
module Specreduce : sig
  type obligation = {
    ob_class : int;  (** partition class id at build time *)
    ob_member : int;  (** original product node merged away *)
    ob_rep : int;  (** its class representative (original node) *)
    ob_mem_lit : int;  (** reduced literal: the member's own function *)
    ob_rep_lit : int;  (** reduced literal: what fanouts read instead *)
  }

  type t = {
    raig : Aig.t;  (** the speculatively reduced product (never cleaned up) *)
    map : int array;  (** original node id -> reduced literal of its positive literal *)
    partition_version : int;
    obligations : obligation array;  (** strashing survivors, ascending member id *)
    n_merges : int;  (** members merged onto representatives *)
    n_trivial : int;  (** merges discharged structurally *)
    strash_rewrites : int;  (** two-level identities fired during rebuild *)
  }

  val build : Product.t -> Partition.t -> t
  val tr : t -> int -> int
  (** Reduced image of an original-product literal. *)

  val obligation_live : Partition.t -> obligation -> bool
  (** Has the obligation's pair survived the refinements since build? *)

  val q_holds : Product.t -> Partition.t -> pi:bool array -> latch:bool array -> bool
  (** Does the full candidate relation Q hold on the ORIGINAL product at
      this valuation?  The vetting gate for counterexamples obtained
      without the Q-hat assumptions. *)

  val step_original : Product.t -> pi:bool array -> latch:bool array -> bool array
  (** Successor state under the ORIGINAL transition function — the only
      way counterexample states may enter the pattern pool. *)
end

(** Per-class hybrid engine dispatcher for discharging speculation
    obligations: simulation screen, BDD validity route, and persistent
    per-lane incremental SAT, steered by cone/level thresholds and the
    online {!Analysis.Steer.Cost} model. *)
module Dispatch : sig
  exception Budget_exceeded of string

  type engine = Sim | Bdd | Sat

  val engine_name : engine -> string

  type config = {
    prefer : engine;  (** the caller's engine bias: the tie-break default *)
    bdd_cone_limit : int;  (** static routing threshold on cone size *)
    bdd_level_limit : int;  (** static routing threshold on level depth *)
    bdd_node_limit : int;  (** per-round BDD manager budget *)
    unroll : int;
        (** induction depth k of the SAT route (>= 1): Q-hat is assumed
            at frames 1..k and obligations are checked at frame k+1 *)
    jobs : int;  (** Parsweep lanes carrying the persistent SAT solvers *)
    seed : int;
  }

  val default_config : prefer:engine -> config

  type counters = {
    c_rounds : int;
    c_sat_solves : int;
    c_conflicts : int;
    c_propagations : int;
    c_restarts : int;
    c_vars : int;  (** SAT variables created, summed over the lane solvers *)
    c_bdd_checks : int;
    c_peak_nodes : int;
    c_by_sim : int;  (** obligations settled by each engine *)
    c_by_bdd : int;
    c_by_sat : int;
    c_refuted : int;
  }

  type t

  val create :
    ?config:config ->
    ?latch_order:int array ->
    ?check_budget:(unit -> unit) ->
    product:Product.t ->
    pool:Simpool.t ->
    deadline:Deadline.t ->
    unit ->
    t
  (** [check_budget] is called before every solver-backed discharge (from
      whatever lane runs it) and may raise to abort the round;
      [latch_order] seeds the BDD variable order (default: latch index). *)

  val route : t -> cls:int -> cone:int -> level:int -> engine
  (** The routing rule: simulation first while certified walk states
      exist and the class never survived a screen; then the proving
      engines by cost-model preference, static cone/level thresholds and
      exhaustion bans (SAT is never banned — the fallback terminus). *)

  val observe : t -> cls:int -> engine:engine -> float -> unit
  (** Feed one solve time into the cost model (ignored for [Sim]). *)

  val ban : t -> cls:int -> engine:engine -> unit
  (** Exhaustion: never route this class to this engine again ([Sim]
      marks the class a sim-survivor instead). *)

  val mark_sim_survivor : t -> cls:int -> unit
  val sim_survivor : t -> cls:int -> bool

  val discharge : t -> Partition.t -> Specreduce.t -> int * int
  (** Discharge every obligation, replaying counterexamples through the
      shared pool: [(refuted, splits)].  The caller rebuilds the
      reduction while [refuted > 0]; [refuted > 0] with [splits = 0]
      signals a broken replay invariant and demands a fallback. *)

  val counters : t -> counters
  val shutdown : t -> unit
end

(** BDD refinement engine (the paper's own implementation style). *)
module Engine_bdd : sig
  exception Budget_exceeded of string

  type ctx = {
    p : Product.t;
    m : Bdd.manager;
    n_pis : int;
    n_latches : int;
    x1 : int array;
    s : int array;
    x2 : int array;
    cur : int -> Bdd.t;
    delta : Bdd.t array;
    nxt : int -> Bdd.t;
    ini : int -> Bdd.t;
    use_fundep : bool;
    care : Bdd.t;
    node_limit : int;
    deadline : Deadline.t;  (** wall-clock budget, polled per class scan *)
    mutable peak_nodes : int;
    pool : Simpool.t;
    support : Support.t Lazy.t;
    proved_at : (int, int) Hashtbl.t;
    mutable n_batched : int;  (** batched class scans performed *)
    mutable n_cache_hits : int;  (** classes skipped by the stability cache *)
    static_filter : bool;
        (** split PI-support-incompatible candidates for free before every
            pass (see {!Support.prefilter_class}) *)
    mutable n_static : int;  (** classes split by the static prefilter *)
    sched : unit Parsweep.t;
        (** single-lane scheduler: hash-consing is shared-mutable, so
            class scans stay serial but follow the same
            snapshot/solve/merge protocol as the SAT engine *)
  }

  val make :
    ?use_fundep:bool ->
    ?latch_order:int array ->
    ?care_of:(Bdd.manager -> int array -> Bdd.t) ->
    ?node_limit:int ->
    ?deadline:Deadline.t ->
    ?static_filter:bool ->
    Product.t ->
    ctx

  val shutdown : ctx -> unit
  val sched_stats : ctx -> Parsweep.stats

  val refine_initial : ctx -> Partition.t -> unit
  (** Equation (2): exact initial-state partition. *)

  val refine_once : ?clamp_size:int -> ctx -> Partition.t -> bool
  (** Equation (3): one refinement iteration with batched class scans,
      pooled counterexamples and dirty-class scheduling; [true] when a
      class split.  [clamp_size] bounds intermediate nu sizes before the
      complement of Q is applied as a don't-care set (Section 4). *)

  val refine_once_pairwise : ?clamp_size:int -> ctx -> Partition.t -> bool
  (** The legacy one-comparison-per-pair pass; computes the same fixed
      point (property-tested) and anchors the benchmark comparison. *)

  val correspondence_condition :
    ?memo:(int, Bdd.t) Hashtbl.t -> ctx -> Partition.t -> Bdd.t option array option -> Bdd.t
  val fundep_subst : ?max_fn_size:int -> ctx -> Partition.t -> Bdd.t option array option

  val norm_cur : ctx -> Partition.t -> int -> Bdd.t
  (** Normalized current-state function of a candidate node. *)

  val norm_nxt : ctx -> Partition.t -> int -> Bdd.t
  val norm_ini : ctx -> Partition.t -> int -> Bdd.t
end

(** SAT refinement engine with counterexample-driven bulk splitting and an
    optional k-inductive unrolling (the paper's future-work direction). *)
module Engine_sat : sig
  exception Budget_exceeded of string

  type wstate
  (** Private per-lane solving state: a copy of the unrolled product CNF
      with its own selector tables and Q cache.  Lane 0 aliases the
      context's primary solver. *)

  type profile = {
    pr_conflicts : int;
    pr_propagations : int;
    pr_restarts : int;
    pr_encoded_vars : int;  (** SAT variables created, across every solver *)
    pr_reused_clauses : int;
        (** clauses already in place when a solve was issued (0 in
            non-incremental mode: throwaway solvers start empty) *)
    pr_shared_clauses : int;  (** learned clauses imported across sweep lanes *)
    pr_core_prunes : int;  (** class re-solves skipped by failed-core transfer *)
  }
  (** Aggregated solver-work profile of a context: persistent solvers are
      read live, discarded throwaway solvers of the non-incremental mode
      have been folded into accumulators as they were dropped. *)

  type ctx = {
    p : Product.t;
    k : int;  (** induction depth; 1 = the paper's Equation (3) *)
    solver : Sat.t;  (** the k+1-frame unrolling *)
    frames : (int -> Sat.Lit.t) array;
    solver0 : Sat.t;  (** frames 0..k-1 from the initial state *)
    init_frames : (int -> Sat.Lit.t) array;
    eq_sel : (int * int * int, int) Hashtbl.t;
    diff_sel : (int * int, int) Hashtbl.t;
    diff_sel0 : (int * int * int, int) Hashtbl.t;
    sat_calls : int Atomic.t;
        (** shared across worker lanes; every solve reserves a slot before
            it is issued (see {!refine_once}) *)
    max_sat_calls : int;
    deadline : Deadline.t;  (** wall-clock budget, polled per class solve *)
    pool : Simpool.t;
    pi_nodes : int array;
    support : Support.t Lazy.t;
    proved_at : (int, int) Hashtbl.t;
    init_clean : (int, int) Hashtbl.t;
    mutable q_cache : (int * Sat.Lit.t list) option;
    mutable n_batched : int;  (** batched class solves issued *)
    mutable n_cache_hits : int;  (** classes skipped by the UNSAT cache *)
    jobs : int;  (** worker lanes for Eq.(3) sweeps *)
    sched : wstate Parsweep.t;
    static_filter : bool;
        (** split PI-support-incompatible candidates for free before every
            pass (see {!Support.prefilter_class}) *)
    mutable n_static : int;  (** classes split by the static prefilter *)
    incremental : bool;
        (** [true]: persistent solvers, activation-released staging,
            failed-core pruning and cross-lane clause sharing; [false]:
            every class solve re-encodes into a throwaway solver (the A/B
            baseline) *)
    base_vars : int;
        (** variables of the shared k+1-frame unrolling — identical in
            every lane by determinism, and the horizon below which learned
            clauses are sound to exchange *)
    acc_conflicts : int Atomic.t;
        (** counters harvested from discarded throwaway solvers *)
    acc_propagations : int Atomic.t;
    acc_restarts : int Atomic.t;
    acc_vars : int Atomic.t;
    reused_clauses : int Atomic.t;
    mutable shared_clauses : int;
    mutable core_prunes : int;
    shared_seen : (Sat.Lit.t list, unit) Hashtbl.t;
        (** canonical forms of clauses already broadcast between lanes *)
    stable_cores : (int, int array * (int * int) list) Hashtbl.t;
        (** class -> (member literals at proof time, failed-core pairs):
            an UNSAT proof transfers to any later version in which the
            member list is unchanged and every core equality still holds *)
  }

  val make :
    ?max_sat_calls:int ->
    ?k:int ->
    ?jobs:int ->
    ?deadline:Deadline.t ->
    ?static_filter:bool ->
    ?incremental:bool ->
    Product.t ->
    ctx
  (** [jobs] worker lanes solve the Eq.(3) sweep rounds; each lane > 0
      owns a private copy of the unrolled product CNF built inside its
      own domain.  Default 1 (sequential, no domains spawned).
      [incremental] (default [true]) keeps every solver alive across all
      rounds and iterations; [false] selects the re-encode-per-obligation
      baseline used for A/B comparison. *)

  val shutdown : ctx -> unit
  (** Join the sweep pool's worker domains; idempotent. *)

  val sched_stats : ctx -> Parsweep.stats

  val profile : ctx -> profile
  (** Solver-work counters accumulated so far.  Coordinator-only, between
      rounds (reads the pool's lane states). *)

  val refine_initial : ctx -> Partition.t -> unit
  (** Equation (2) batched: one staged disjunctive solve per (class,
      frame), counterexamples pooled and replayed bit-parallel. *)

  val refine_once : ctx -> Partition.t -> bool
  (** Equation (3) batched: the suspect classes of a round are frozen
      into snapshot tasks, solved across the pool's lanes (one staged
      disjunctive solve each, on the lane's private solver), and the
      outcomes merged serially in ascending class order — pooled
      counterexamples, dirty-class scheduling and the trust/strict
      confirmation protocol as before.  The fixed point reached is
      schedule-independent: the same for every worker count as for the
      sequential sweep (property-tested).  Budgets are enforced {e per
      class solve}: every lane reserves a slot in the shared atomic call
      counter (and polls the shared deadline flag) before issuing a
      solve, so a parallel round overshoots [max_sat_calls] by at most
      the [jobs] solves already in flight. *)

  val refine_initial_pairwise : ctx -> Partition.t -> unit
  val refine_once_pairwise : ctx -> Partition.t -> bool
  (** The legacy one-query-per-pair scans; same fixed point
      (property-tested), kept for benchmarking. *)
end

(** Candidate-set extension by forward retiming with lag 1 (Fig. 3). *)
module Retime_aug : sig
  val augment : Product.t -> int
  (** Add the combinational logic of every applicable lag-1 forward move;
      returns the number of new signals. *)
end

(** Resumable checkpoints of the greatest fixed-point iteration.

    The refinement is monotone and every split is sound with respect to
    the greatest fixed point, so a partially refined partition sits
    between the initial partition and the (unique) fixed point; re-running
    the iteration from it converges to exactly the same fixed point as an
    uninterrupted run.  A checkpoint with induction depth [kc] may seed
    any run with effective depth [k <= kc], since gfp(kc) ⊆ gfp(k).

    The line-oriented text format mirrors {!Cert.Certificate}: versioned
    header, key/value fields, one [class] line of sorted normalized
    literals per multi-member class, the pending counterexample pool
    lanes, an [end] marker. *)
module Checkpoint : sig
  type t = {
    spec_digest : string;  (** MD5 of the canonical AIGER text *)
    impl_digest : string;
    engine : string;  (** informational: which engine was interrupted *)
    candidates : string;  (** ["all"] | ["registers"] *)
    induction : int;  (** k of the interrupted run; 1 = the paper *)
    seed : int;  (** polarity-normalization / simulation seed *)
    retime_rounds : int;  (** augmentation rounds to replay on the product *)
    product_nodes : int;  (** product size after replay (shape check) *)
    iterations : int;  (** refinement iterations completed before the cut *)
    classes : int list list;  (** normalized literals, each class sorted *)
    patterns : (bool array * bool array) list;
        (** pending pool lanes: (inputs, state) *)
  }

  exception Parse_error of string

  exception Incompatible of string
  (** Raised by resume validation: fingerprint/shape/option mismatch. *)

  val fingerprint : Aig.t -> string
  (** MD5 hex digest of the circuit's canonical AIGER text. *)

  val n_classes : t -> int
  val n_constraints : t -> int
  val n_patterns : t -> int

  val of_partition :
    spec_digest:string ->
    impl_digest:string ->
    engine:string ->
    candidates:string ->
    induction:int ->
    seed:int ->
    retime_rounds:int ->
    iterations:int ->
    patterns:(bool array * bool array) list ->
    Aig.t ->
    Partition.t ->
    t
  (** Snapshot a partition mid-run; the [Aig.t] is the product machine
      {e after} [retime_rounds] augmentations. *)

  val compatible :
    spec_digest:string ->
    impl_digest:string ->
    candidates:string ->
    induction:int ->
    seed:int ->
    t ->
    (unit, string) result
  (** The non-raising compatibility probe behind {!validate}, keyed on
      digests so callers holding only fingerprints (the serve cache, the
      [checkpoint inspect] diagnostic) can test a checkpoint without the
      circuits in hand.  [Error msg] carries the human-readable mismatch,
      fingerprint mismatches reporting both MD5s. *)

  val validate :
    spec:Aig.t -> impl:Aig.t -> candidates:string -> induction:int -> seed:int -> t -> unit
  (** Fingerprint and option validation before any engine work is spent.
      [induction] is the resuming run's effective depth; a checkpoint of
      a deeper run is accepted, a shallower one is refused.
      @raise Incompatible on any mismatch. *)

  val seed_partition : t -> Partition.t -> int
  (** Refine a freshly seeded partition to the checkpointed classes;
      returns the number of classes created.
      @raise Incompatible on polarity or candidacy divergence. *)

  val to_string : t -> string
  val parse_string : string -> t
  (** @raise Parse_error on malformed or truncated input. *)

  val to_file : string -> t -> unit
  val parse_file : string -> t
end

(** The full verification method (Fig. 4). *)
module Verify : sig
  type engine_kind = Bdd_engine | Sat_engine
  type candidate_set = All_signals | Registers_only

  type progress = {
    p_round : int;  (** retiming round the iteration belongs to *)
    p_iteration : int;  (** refinement iterations completed so far *)
    p_classes : int;  (** equivalence classes remaining *)
    p_engine : string;  (** engine rung label, e.g. ["bdd"], ["sat-k2"] *)
  }
  (** One snapshot of the fixed-point iteration, delivered to
      [options.progress] after the initial refinement and after every
      completed iteration — the serve daemon streams these to watching
      clients. *)

  type options = {
    engine : engine_kind;
    candidates : candidate_set;
    preflight : bool;
        (** Lint the circuits first; raise [Lint.Rejected] with a full
            report when either has error-level defects.  Default true. *)
    use_sim_seed : bool;
    sim_frames : int;
    use_ternary_seed : bool;
        (** Seed the partition with {!Ternseed.refine}.  Default true. *)
    use_batched_sweeps : bool;
        (** Use the batched class solves, counterexample pattern pool and
            dirty-class scheduling (default true); [false] selects the
            legacy pairwise scans, which compute the same fixed point. *)
    use_incremental : bool;
        (** Keep the SAT engine's solvers alive across the whole fixed
            point — persistent clause databases, activation-released
            staging, failed-core pruning and cross-lane learned-clause
            sharing (default true); [false] re-encodes every class
            obligation into a throwaway solver, the A/B baseline.  The
            fixed point and verdict are identical either way
            (property-tested).  The BDD engine ignores it. *)
    use_speculation : bool;
        (** Speculative reduction (default false, overridable via the
            SEQVER_SPECULATE environment variable): merge every candidate
            class onto its representative ({!Specreduce}), discharge one
            assumption obligation per surviving merge on the REDUCED
            product through the per-class hybrid dispatcher
            ({!Dispatch}), and rebuild on refutation.  Exact
            counterexample replay makes the fixed point, verdict and
            final partition identical to the plain sweeps
            (property-tested).  Drives depth-1 induction only;
            [sat_unroll > 1] falls back to the plain loop. *)
    use_analysis : bool;
        (** Static-analysis steering (default false): the engines run the
            zero-cost PI-support prefilter before every pass, the BDD
            variable order is seeded from combinational levels, and
            {!portfolio} pre-reduces the circuits and orders its rung
            ladder by the shape metrics (see {!Analysis}). *)
    use_fundep : bool;
    use_retime : bool;
    max_retime_rounds : int;
    use_reach_dontcare : bool;
    reach_block_size : int;
    node_limit : int;
    max_sat_calls : int;
    sat_unroll : int;  (** SAT-engine induction depth; 1 = the paper *)
    presim_frames : int;
    bmc_depth : int;  (** exhaustive refutation depth (0 disables) *)
    seed : int;
    jobs : int;
        (** Worker domains for the SAT engine's Eq.(3) sweep rounds; the
            BDD engine ignores it (hash-consing is shared-mutable).  The
            fixed point and verdict are identical for every value.
            Default 1, overridable via the SEQVER_JOBS environment
            variable. *)
    deadline_seconds : float;
        (** Wall-clock budget for the whole run; engines poll a shared
            cancellation flag once per class solve, so the abort lands
            within one class-solve of the expiry.  [<= 0] (the default)
            means no deadline. *)
    max_iterations : int;
        (** Abort (Unknown, ["iterations"]) after this many refinement
            iterations; 0 (the default) = unlimited.  Deterministic, which
            the deadline is not — the interruption point the resume
            property tests use. *)
    checkpoint_path : string option;
        (** Write the partial partition here whenever a budget or deadline
            aborts the fixed point.  Default [None]. *)
    checkpoint_every : int;
        (** Additionally checkpoint every N refinement iterations; 0 (the
            default) writes on aborts only. *)
    resume : Checkpoint.t option;
        (** Seed the fixed point from a prior run's checkpoint.  Validated
            against the circuits and options ({!Checkpoint.validate})
            before any engine work; the resumed run provably reaches the
            same verdict and final partition as an uninterrupted one. *)
    progress : (progress -> unit) option;
        (** Called (on the verifying domain) after the initial refinement
            and after every fixed-point iteration.  Default [None]. *)
    cancel : Deadline.flag option;
        (** External cancellation: when set, the flag is attached to the
            run's deadline (even an unlimited one), so {!Deadline.cancel}
            from another domain aborts the run within one class solve —
            the verdict is [Unknown] with [exhausted = Some "deadline"].
            Default [None]. *)
  }

  val default_options : options

  type stats = {
    iterations : int;
    retime_rounds : int;
    candidates : int;
    classes : int;
    peak_bdd_nodes : int;
    sat_calls : int;
    pool_lanes : int;  (** counterexample patterns accumulated in the pool *)
    resim_splits : int;  (** classes created by bit-parallel pattern replay *)
    batched_solves : int;  (** one-per-class disjunctive solves / key scans *)
    cache_hits : int;  (** classes skipped by the stability (UNSAT) cache *)
    static_splits : int;
        (** classes split by the PI-support prefilter at zero solver cost *)
    spec_rounds : int;
        (** speculative reductions built; 0 when speculation was off or
            never engaged (deep induction, immediate convergence) *)
    spec_merges : int;
        (** candidate members merged onto representatives, summed over
            the speculation rounds *)
    refuted_assumptions : int;
        (** speculation obligations refuted by a discharge engine — each
            fed the pool and refined the partition *)
    spec_by_sim : int;
        (** obligations settled by the dispatcher's simulation screen *)
    spec_by_bdd : int;  (** … by the BDD route *)
    spec_by_sat : int;  (** … by the incremental-SAT route *)
    domains : int;  (** worker lanes of the sweep scheduler *)
    lane_solves : int list;  (** sweep tasks completed per lane *)
    steals : int;  (** tasks claimed from another lane's segment *)
    sched_wait_seconds : float;
        (** coordinator idle time awaiting worker lanes *)
    conflicts : int;  (** SAT conflicts, summed over every solver of the run *)
    propagations : int;  (** SAT propagations, likewise *)
    restarts : int;  (** SAT restarts, likewise *)
    encoded_vars : int;  (** SAT variables created, across every solver *)
    reused_clauses : int;
        (** clauses already in place when a solve was issued — the work
            incremental mode did not redo (0 with [use_incremental] off) *)
    shared_clauses : int;  (** learned clauses imported across sweep lanes *)
    core_prunes : int;
        (** class re-solves skipped by failed-assumption-core transfer *)
    eq_pct : float;
    seconds : float;  (** wall-clock time of the whole run *)
    phase_seconds : (string * float) list;
        (** wall time per phase ([refute], [seed], [initial], [fixpoint],
            [outputs]), accumulated across retiming rounds *)
    exhausted : string option;
        (** [Some reason] when an [Unknown] verdict came from a blown
            budget (["deadline"], ["sat calls"], ["bdd nodes"],
            ["iterations"]) rather than from the method's incompleteness *)
  }

  type verdict =
    | Equivalent of stats
    | Not_equivalent of {
        frame : int;
        trace : bool array array option;
            (** input vectors of a witnessing run.  Every refutation path
                (presimulation, bounded refutation, and the initial-frame
                class split) derives a concrete trace, so this is [Some]
                in practice; [None] survives only as a defensive case. *)
        stats : stats;
      }
    | Unknown of stats

  val verdict_stats : verdict -> stats
  val run : ?options:options -> Aig.t -> Aig.t -> verdict

  val latch_order_from_outputs : ?levels:int array -> Product.t -> int array
  (** Structural state-variable order interleaving the two sides along the
      output-pair cones (exposed for instrumentation and tests).
      [levels], when given (per-node combinational depths of the product),
      sorts each cone's latches by the depth of their next-state logic. *)

  val prereduces : options -> bool
  (** Will this run verify the FRAIG-reduced pair instead of the circuits
      as given?  True when speculation and the analysis layer are both on
      for a non-resumed run: both sides are pre-reduced once
      (semantics-preserving, so verdicts and witness traces carry back to
      the originals), the transform the portfolio applies.  Certificate
      emitters must record it so checking can replay the reduction. *)

  val run_with_relation :
    ?options:options -> Aig.t -> Aig.t -> verdict * Product.t * Partition.t option
  (** Like {!run}, also returning the product machine and (when a fixed
      point was computed) the final correspondence relation — the
      checker's certificate.  When [prereduces options] holds, the product
      and relation are over the FRAIG-reduced pair, not the circuits as
      given. *)

  val pp_relation : Format.formatter -> Product.t * Partition.t -> unit
  (** Print the multi-member classes of a relation with side/kind tags. *)

  val register_correspondence : ?options:options -> Aig.t -> Aig.t -> verdict

  val checkpoint_of_run :
    options:options ->
    spec:Aig.t ->
    impl:Aig.t ->
    verdict * Product.t * Partition.t option ->
    (Checkpoint.t, string) result
  (** Snapshot a finished or aborted {!run_with_relation} result as an
      in-memory checkpoint (pending pool lanes are not included), so a
      later run can resume from its partition. *)

  val portfolio : ?options:options -> ?max_unroll:int -> Aig.t -> Aig.t -> verdict
  (** Production mode: BDD engine first, then the SAT engine with
      induction depths 1..[max_unroll]; the first conclusive verdict
      wins.  All strategies are sound.

      With [deadline_seconds] set, the remaining wall clock is split
      evenly over the remaining rungs (holding one share in reserve);
      each rung that runs out of time leaves an in-memory checkpoint of
      its partition, later rungs of compatible induction depth resume
      from it, and the reserved final rung re-runs the BDD engine from
      the most refined partition reached instead of returning a bare
      [Unknown].

      With [use_analysis] set, both circuits are first reduced by
      {!Analysis.Reduce.run} (semantics-preserving, so verdicts and
      traces carry back to the originals; skipped when resuming), the
      rung order follows {!Analysis.Steer.plan}, rungs whose induction
      depth an already completed fixed point covers are skipped, and
      after a BDD rung exhausts its node budget no further BDD rung
      runs. *)
end

(** {1 Convenience} *)

type options = Verify.options
type stats = Verify.stats

type verdict = Verify.verdict =
  | Equivalent of stats
  | Not_equivalent of { frame : int; trace : bool array array option; stats : stats }
  | Unknown of stats

val default_options : options

val check : ?options:options -> Aig.t -> Aig.t -> verdict
(** Prove sequential equivalence of two circuits.  Sound for all three
    verdicts; [Unknown] reflects the method's incompleteness or an
    exceeded resource budget. *)

val register_correspondence : ?options:options -> Aig.t -> Aig.t -> verdict
(** The restricted method of [5]/[9]: correspondence over registers only,
    outputs checked combinationally under the tied registers. *)

val portfolio : ?options:options -> ?max_unroll:int -> Aig.t -> Aig.t -> verdict
(** {!Verify.portfolio}: escalate through engines until conclusive. *)

val verdict_stats : verdict -> stats
