(* Tseitin encoding of AIG combinational logic into a SAT solver: one SAT
   variable per AND node plus the caller-supplied variables for PIs and
   latch outputs.  The "extra variables representing intermediate signals"
   of the paper's future-work section. *)

(* Encode the combinational structure of [t].  [pi_var i] / [latch_var i]
   give the SAT variable of input i / latch i (created by the caller, so
   several unrollings can share or rename them).  When [act] is given, every
   emitted clause is guarded by that activation variable, so releasing it
   retracts the whole encoding from a persistent solver.  Returns a function
   from AIG literal to SAT literal. *)
let encode ?act solver t ~pi_var ~latch_var =
  let add cl = Sat.add_clause ?act solver cl in
  let n = Graph.num_nodes t in
  let var_of = Array.make n (-1) in
  (* constant node: a frozen variable forced to false once per solver *)
  let const_var = Sat.new_var solver in
  add [ Sat.Lit.neg const_var ];
  var_of.(0) <- const_var;
  let sat_lit l =
    let v = var_of.(Graph.node_of_lit l) in
    Sat.Lit.make v (not (Graph.lit_is_compl l))
  in
  for id = 1 to n - 1 do
    match Graph.node t id with
    | Graph.Const -> ()
    | Graph.Pi i -> var_of.(id) <- pi_var i
    | Graph.Latch i -> var_of.(id) <- latch_var i
    | Graph.And (a, b) ->
      let v = Sat.new_var solver in
      var_of.(id) <- v;
      let la = sat_lit a and lb = sat_lit b in
      let lv = Sat.Lit.pos v in
      (* v <-> a & b *)
      add [ Sat.Lit.negate lv; la ];
      add [ Sat.Lit.negate lv; lb ];
      add [ lv; Sat.Lit.negate la; Sat.Lit.negate lb ]
  done;
  sat_lit

(* Fresh SAT variables for each PI and latch, then encode. *)
let encode_fresh solver t =
  let pi_vars = Array.init (Graph.num_pis t) (fun _ -> Sat.new_var solver) in
  let latch_vars = Array.init (Graph.num_latches t) (fun _ -> Sat.new_var solver) in
  let lit_of =
    encode solver t ~pi_var:(fun i -> pi_vars.(i)) ~latch_var:(fun i -> latch_vars.(i))
  in
  (pi_vars, latch_vars, lit_of)
