(** And-Inverter Graphs with latches.

    The internal representation of all algorithms in this library.
    Literals follow the AIGER convention: literal [2n] is node [n],
    [2n+1] its complement; literal [0] is the constant false.  Structural
    hashing guarantees that no two distinct AND nodes share (normalized)
    fanins, and AND fanins always reference earlier nodes, so ascending
    node ids are a topological order. *)

type node =
  | Const
  | Pi of int  (** primary input (index) *)
  | Latch of int  (** latch output (index) *)
  | And of int * int  (** fanin literals, fst <= snd *)

type t
(** A mutable AIG. *)

(** {1 Literals} *)

val lit_of_node : int -> int
val node_of_lit : int -> int
val lit_is_compl : int -> bool
val lit_not : int -> int
val lit_false : int
val lit_true : int

(** {1 Construction} *)

val create : unit -> t
val add_pi : t -> int
(** Fresh primary input; returns its (positive) literal. *)

val add_latch : t -> init:bool -> int
(** Fresh latch; returns its output literal.  Close the feedback loop with
    {!set_latch_next}. *)

val set_latch_next : t -> int -> next:int -> unit
(** [set_latch_next t latch_lit ~next] sets the next-state function. *)

val mk_and : t -> int -> int -> int
(** Structurally hashed AND with constant/idempotence/complement folding. *)

val mk_or : t -> int -> int -> int
val mk_xor : t -> int -> int -> int
val mk_xnor : t -> int -> int -> int
val mk_mux : t -> sel:int -> t1:int -> t0:int -> int
val mk_ands : t -> int list -> int
val mk_ors : t -> int list -> int
val add_po : t -> string -> int -> unit

(** {1 Accessors} *)

val num_nodes : t -> int
val num_pis : t -> int
val num_latches : t -> int
val num_ands : t -> int
val node : t -> int -> node
val pis : t -> int list
(** PI node ids in index order. *)

val pos : t -> (string * int) list
(** Named output literals in declaration order. *)

val latch_ids : t -> int list
val latch_node : t -> int -> int
val latch_next : t -> int -> int
val latch_init : t -> int -> bool
val pi_index : t -> int -> int
val latch_index : t -> int -> int
val validate : t -> (unit, string) result
val pp_stats : Format.formatter -> t -> unit

(** {1 Copying and cleanup} *)

val copy_into :
  t -> src:t -> pi_lit:(int -> int) -> latch_lit:(int -> int) -> (int -> int)
(** Import the combinational structure of [src] into the first AIG, mapping
    its PIs and latch outputs through the given functions.  Returns a
    translator from [src] literals to destination literals.  Latch
    next-state functions and POs are not transferred — used to build product
    machines and time-frame unrollings. *)

val cleanup : t -> t * (int -> int)
(** Drop nodes unreachable from the POs, latch logic and interface; returns
    the compacted AIG and a literal translator. *)

(** {1 Simulation} *)

module Sim : sig
  val eval_comb : t -> pi_words:int64 array -> latch_words:int64 array -> int64 array
  (** 64 parallel patterns: word per node id. *)

  val lit_word : int64 array -> int -> int64
  (** Value of a literal given the node-word array. *)

  val initial_latch_words : t -> int64 array
  val step : t -> pi_words:int64 array -> latch_words:int64 array -> int64 array * int64 array
  (** Evaluate and clock: (node words, next latch words). *)

  val run : t -> int64 array list -> (string * int64) list list * int64 array
  val random_frames : seed:int -> n_pis:int -> n_frames:int -> int64 array list
end

(** {1 SAT encoding} *)

module Cnf : sig
  val encode :
    ?act:int -> Sat.t -> t -> pi_var:(int -> int) -> latch_var:(int -> int) -> int -> Sat.Lit.t
  (** Tseitin-encode the combinational logic; PIs/latches use the supplied
      SAT variables.  Returns AIG-literal → SAT-literal.  With [act], every
      clause is guarded by the activation variable so [Sat.release] retracts
      the encoding from a persistent solver. *)

  val encode_fresh : Sat.t -> t -> int array * int array * (int -> Sat.Lit.t)
  (** Fresh variables for PIs and latches: [(pi_vars, latch_vars, lit_of)]. *)
end

(** {1 AIGER I/O (ASCII aag)} *)

module Aiger : sig
  exception Parse_error of string

  val to_string : t -> string
  (** ASCII (aag). *)

  val parse_string : string -> t
  val to_file : string -> t -> unit
  val parse_file : string -> t

  val to_binary_string : t -> string
  (** Binary (aig): varint-delta-encoded ANDs, topologically renumbered. *)

  val parse_binary_string : string -> t
end

(** {1 Netlist conversion} *)

val of_netlist : Netlist.t -> t * (int -> int)
(** Convert a gate-level circuit; the function maps netlist nets to AIG
    literals. *)
