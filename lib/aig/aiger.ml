(* ASCII AIGER (aag) reading and writing.  Node ids are renumbered on
   output into the canonical AIGER layout (PIs, then latches, then ANDs),
   so any AIG can be exported. *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let to_string t =
  (* renumber: PIs, latches, then and nodes in topological (id) order *)
  let n = Graph.num_nodes t in
  let new_id = Array.make n (-1) in
  new_id.(0) <- 0;
  let counter = ref 0 in
  let assign id =
    incr counter;
    new_id.(id) <- !counter
  in
  List.iter assign (Graph.pis t);
  List.iter assign (Graph.latch_ids t);
  let ands = ref [] in
  for id = 1 to n - 1 do
    match Graph.node t id with
    | Graph.And _ ->
      assign id;
      ands := id :: !ands
    | Graph.Const | Graph.Pi _ | Graph.Latch _ -> ()
  done;
  let ands = List.rev !ands in
  let tr l = (2 * new_id.(Graph.node_of_lit l)) lor (l land 1) in
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n_pis = Graph.num_pis t
  and n_latches = Graph.num_latches t
  and pos = Graph.pos t in
  pr "aag %d %d %d %d %d\n" !counter n_pis n_latches (List.length pos)
    (List.length ands);
  List.iter (fun id -> pr "%d\n" (2 * new_id.(id))) (Graph.pis t);
  for i = 0 to n_latches - 1 do
    pr "%d %d %d\n"
      (2 * new_id.(Graph.latch_node t i))
      (tr (Graph.latch_next t i))
      (if Graph.latch_init t i then 1 else 0)
  done;
  List.iter (fun (_, l) -> pr "%d\n" (tr l)) pos;
  List.iter
    (fun id ->
      match Graph.node t id with
      | Graph.And (a, b) -> pr "%d %d %d\n" (2 * new_id.(id)) (tr a) (tr b)
      | Graph.Const | Graph.Pi _ | Graph.Latch _ -> assert false)
    ands;
  (* symbol table: output names *)
  List.iteri (fun i (name, _) -> pr "o%d %s\n" i name) pos;
  Buffer.contents buf

let parse_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let header, rest =
    match lines with [] -> parse_error "empty aag" | h :: rest -> (h, rest)
  in
  let m, i, l, o, a =
    match String.split_on_char ' ' header |> List.filter (fun s -> s <> "") with
    | [ "aag"; m; i; l; o; a ] ->
      (int_of_string m, int_of_string i, int_of_string l, int_of_string o, int_of_string a)
    | _ -> parse_error "bad aag header: %s" header
  in
  let ints line =
    String.split_on_char ' ' line
    |> List.filter (fun s -> s <> "")
    |> List.map int_of_string
  in
  let t = Graph.create () in
  (* literal translation table indexed by aag node id *)
  let map = Array.make (m + 1) (-1) in
  map.(0) <- 0;
  let take k rest =
    let rec go k acc rest =
      if k = 0 then (List.rev acc, rest)
      else
        match rest with
        | [] -> parse_error "truncated aag"
        | line :: rest -> go (k - 1) (line :: acc) rest
    in
    go k [] rest
  in
  let pi_lines, rest = take i rest in
  List.iter
    (fun line ->
      match ints line with
      | [ lit ] ->
        if lit land 1 = 1 then parse_error "complemented pi definition";
        map.(lit / 2) <- Graph.add_pi t
      | _ -> parse_error "bad pi line: %s" line)
    pi_lines;
  let latch_lines, rest = take l rest in
  let latch_nexts =
    List.map
      (fun line ->
        match ints line with
        | [ lit; next ] ->
          let lat = Graph.add_latch t ~init:false in
          map.(lit / 2) <- lat;
          (lat, next)
        | [ lit; next; init ] ->
          let lat = Graph.add_latch t ~init:(init = 1) in
          map.(lit / 2) <- lat;
          (lat, next)
        | _ -> parse_error "bad latch line: %s" line)
      latch_lines
  in
  let po_lines, rest = take o rest in
  let and_lines, rest = take a rest in
  let tr l =
    let id = l / 2 in
    if id > m || map.(id) < 0 then parse_error "undefined literal %d" l;
    map.(id) lxor (l land 1)
  in
  List.iter
    (fun line ->
      match ints line with
      | [ lhs; a; b ] ->
        if lhs land 1 = 1 then parse_error "complemented and definition";
        map.(lhs / 2) <- Graph.mk_and t (tr a) (tr b)
      | _ -> parse_error "bad and line: %s" line)
    and_lines;
  List.iter (fun (lat, next) -> Graph.set_latch_next t lat ~next:(tr next)) latch_nexts;
  (* symbol table: pick up output names; default o<i> *)
  let names = Hashtbl.create 8 in
  List.iter
    (fun line ->
      if String.length line > 1 && line.[0] = 'o' then
        match String.index_opt line ' ' with
        | Some sp ->
          let idx = int_of_string (String.sub line 1 (sp - 1)) in
          Hashtbl.replace names idx (String.sub line (sp + 1) (String.length line - sp - 1))
        | None -> ())
    rest;
  List.iteri
    (fun idx line ->
      match ints line with
      | [ lit ] ->
        let name =
          match Hashtbl.find_opt names idx with
          | Some n -> n
          | None -> Printf.sprintf "o%d" idx
        in
        Graph.add_po t name (tr lit)
      | _ -> parse_error "bad output line: %s" line)
    po_lines;
  t

let to_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t))

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse_string text

(* --- binary AIGER (aig) ---------------------------------------------------- *)

(* The binary format stores each AND as two 7-bit varints: with the nodes
   renumbered so definitions are topological (PIs, latches, ANDs in
   order), the i-th AND defines literal lhs = 2*(I+L+i+1) and encodes
   lhs - rhs0 and rhs0 - rhs1 with rhs0 >= rhs1 < lhs. *)

let write_varint buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let byte = !n land 0x7f in
    n := !n lsr 7;
    if !n <> 0 then Buffer.add_char buf (Char.chr (byte lor 0x80))
    else begin
      Buffer.add_char buf (Char.chr byte);
      continue := false
    end
  done

let to_binary_string t =
  let n = Graph.num_nodes t in
  let new_id = Array.make n (-1) in
  new_id.(0) <- 0;
  let counter = ref 0 in
  let assign id =
    incr counter;
    new_id.(id) <- !counter
  in
  List.iter assign (Graph.pis t);
  List.iter assign (Graph.latch_ids t);
  let ands = ref [] in
  for id = 1 to n - 1 do
    match Graph.node t id with
    | Graph.And _ ->
      assign id;
      ands := id :: !ands
    | Graph.Const | Graph.Pi _ | Graph.Latch _ -> ()
  done;
  let ands = List.rev !ands in
  let tr l = (2 * new_id.(Graph.node_of_lit l)) lor (l land 1) in
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n_pis = Graph.num_pis t
  and n_latches = Graph.num_latches t
  and pos = Graph.pos t in
  pr "aig %d %d %d %d %d\n" !counter n_pis n_latches (List.length pos)
    (List.length ands);
  for i = 0 to n_latches - 1 do
    pr "%d %d\n" (tr (Graph.latch_next t i)) (if Graph.latch_init t i then 1 else 0)
  done;
  List.iter (fun (_, l) -> pr "%d\n" (tr l)) pos;
  List.iter
    (fun id ->
      match Graph.node t id with
      | Graph.And (a, b) ->
        let lhs = 2 * new_id.(id) in
        let r0 = tr a and r1 = tr b in
        let rhs0 = max r0 r1 and rhs1 = min r0 r1 in
        write_varint buf (lhs - rhs0);
        write_varint buf (rhs0 - rhs1)
      | Graph.Const | Graph.Pi _ | Graph.Latch _ -> assert false)
    ands;
  List.iteri (fun i (name, _) -> pr "o%d %s\n" i name) pos;
  Buffer.contents buf

let parse_binary_string text =
  let pos = ref 0 in
  let len = String.length text in
  let read_line () =
    match String.index_from_opt text !pos '\n' with
    | Some nl ->
      let line = String.sub text !pos (nl - !pos) in
      pos := nl + 1;
      line
    | None -> parse_error "unexpected end of binary aig"
  in
  let header = read_line () in
  let m, i, l, o, a =
    match String.split_on_char ' ' header |> List.filter (fun s -> s <> "") with
    | [ "aig"; m; i; l; o; a ] ->
      (int_of_string m, int_of_string i, int_of_string l, int_of_string o, int_of_string a)
    | _ -> parse_error "bad aig header: %s" header
  in
  if m <> i + l + a then parse_error "binary aig requires M = I + L + A";
  let t = Graph.create () in
  (* literal (in our graph) for each aiger variable *)
  let lit_of_var = Array.make (m + 1) (-1) in
  lit_of_var.(0) <- 0;
  for v = 1 to i do
    lit_of_var.(v) <- Graph.add_pi t
  done;
  let latch_info =
    List.init l (fun j ->
        let line = read_line () in
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ next ] -> (j, int_of_string next, false)
        | [ next; init ] -> (j, int_of_string next, init = "1")
        | _ -> parse_error "bad binary latch line: %s" line)
  in
  List.iter
    (fun (j, _, init) -> lit_of_var.(i + 1 + j) <- Graph.add_latch t ~init)
    latch_info;
  let po_lits = List.init o (fun _ -> int_of_string (read_line ())) in
  (* binary and section *)
  let read_varint () =
    let shift = ref 0 and value = ref 0 and continue = ref true in
    while !continue do
      if !pos >= len then parse_error "truncated varint";
      let byte = Char.code text.[!pos] in
      incr pos;
      value := !value lor ((byte land 0x7f) lsl !shift);
      shift := !shift + 7;
      if byte land 0x80 = 0 then continue := false
    done;
    !value
  in
  let tr l =
    let v = l / 2 in
    if v > m || lit_of_var.(v) < 0 then parse_error "undefined literal %d" l;
    lit_of_var.(v) lxor (l land 1)
  in
  for j = 0 to a - 1 do
    let lhs = 2 * (i + l + 1 + j) in
    let d0 = read_varint () in
    let d1 = read_varint () in
    let rhs0 = lhs - d0 in
    let rhs1 = rhs0 - d1 in
    if rhs0 < 0 || rhs1 < 0 then parse_error "bad deltas for and %d" j;
    lit_of_var.(lhs / 2) <- Graph.mk_and t (tr rhs0) (tr rhs1)
  done;
  List.iter
    (fun (j, next, _) ->
      Graph.set_latch_next t lit_of_var.(i + 1 + j) ~next:(tr next))
    latch_info;
  (* symbol table *)
  let names = Hashtbl.create 8 in
  (try
     while !pos < len do
       let line = read_line () in
       if String.length line > 1 && line.[0] = 'o' then
         match String.index_opt line ' ' with
         | Some sp ->
           let idx = int_of_string (String.sub line 1 (sp - 1)) in
           Hashtbl.replace names idx
             (String.sub line (sp + 1) (String.length line - sp - 1))
         | None -> ()
     done
   with Parse_error _ -> ());
  List.iteri
    (fun idx lit ->
      let name =
        match Hashtbl.find_opt names idx with
        | Some n -> n
        | None -> Printf.sprintf "o%d" idx
      in
      Graph.add_po t name (tr lit))
    po_lits;
  t
