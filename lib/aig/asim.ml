(* Bit-parallel (64 patterns per word) simulation of AIGs, both purely
   combinational evaluation and clocked sequential runs.  This is the
   engine behind the random-simulation seeding of the fixed-point
   iteration (paper Section 4) and behind fraiging. *)

let lit_word values l =
  let w = values.(Graph.node_of_lit l) in
  if Graph.lit_is_compl l then Int64.lognot w else w

(* Evaluate all nodes given one word per PI and one word per latch output.
   Returns the full node-value array (words per node id). *)
let eval_comb t ~pi_words ~latch_words =
  let values = Array.make (Graph.num_nodes t) 0L in
  for id = 0 to Graph.num_nodes t - 1 do
    values.(id) <-
      (match Graph.node t id with
      | Graph.Const -> 0L
      | Graph.Pi i -> pi_words.(i)
      | Graph.Latch i -> latch_words.(i)
      | Graph.And (a, b) -> Int64.logand (lit_word values a) (lit_word values b))
  done;
  values

let initial_latch_words t =
  Array.init (Graph.num_latches t) (fun i ->
      if Graph.latch_init t i then -1L else 0L)

(* One clocked step: evaluate, then capture next-state words. *)
let step t ~pi_words ~latch_words =
  let values = eval_comb t ~pi_words ~latch_words in
  let next =
    Array.init (Graph.num_latches t) (fun i -> lit_word values (Graph.latch_next t i))
  in
  (values, next)

(* Run a sequence of input frames from the initial state; returns per-frame
   output words and the final state. *)
let run t frames =
  let state = ref (initial_latch_words t) in
  let outs =
    List.map
      (fun pi_words ->
        let values, next = step t ~pi_words ~latch_words:!state in
        state := next;
        List.map (fun (name, l) -> (name, lit_word values l)) (Graph.pos t))
      frames
  in
  (outs, !state)

(* Uniform 64-bit pattern words.  [Random.State.int64 rng Int64.max_int]
   draws from [0, 2^63 - 1): bit 63 would never be set, leaving simulation
   lane 63 constant-0 on every input; [bits64] covers the full word. *)
let random_frames ~seed ~n_pis ~n_frames =
  let rng = Random.State.make [| seed; 0x5e41 |] in
  List.init n_frames (fun _ -> Array.init n_pis (fun _ -> Random.State.bits64 rng))
