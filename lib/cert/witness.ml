(* Replayable counterexample witnesses: the structured form of every
   "Not_equivalent" answer.  A witness is a frame-indexed sequence of
   primary-input vectors plus the frame at which the disproof lands; it
   unifies [Reach.Bmc.counterexample] and the raw trace of
   [Scorr.Verify.verdict], and is validated by simulating the *original*
   circuits — never by trusting the engine that produced it. *)

type t = {
  frame : int; (* frame at which the disproof lands *)
  inputs : bool array array; (* inputs.(t).(i): PI i at frame t *)
  output : string option; (* failing output name, when known *)
}

exception Parse_error of string

let make ?output inputs =
  if Array.length inputs = 0 then invalid_arg "Witness.make: empty trace";
  { frame = Array.length inputs - 1; inputs; output }

let of_trace ?output inputs = make ?output inputs

let of_bmc (cex : Reach.Bmc.counterexample) =
  {
    frame = cex.Reach.Bmc.depth;
    inputs = cex.Reach.Bmc.inputs;
    output = Some cex.Reach.Bmc.output;
  }

let n_frames w = Array.length w.inputs
let n_pis w = if Array.length w.inputs = 0 then 0 else Array.length w.inputs.(0)

(* --- validation ------------------------------------------------------------- *)

type replay_error =
  | No_frames
  | Frame_out_of_range of { failing_frame : int; frames : int }
  | Width_mismatch of { subject : string; expected : int; got : int; frame : int }
  | Unknown_output of string
  | No_failure (* the witness replays cleanly: nothing is disproved *)

let explain_error = function
  | No_frames -> "witness has no input frames"
  | Frame_out_of_range { failing_frame; frames } ->
    Printf.sprintf "failing frame %d is outside the witness's %d frame(s)" failing_frame
      frames
  | Width_mismatch { subject; expected; got; frame } ->
    Printf.sprintf
      "PI vector of frame %d has %d bit(s) but the %s has %d primary input(s)" frame got
      subject expected
  | Unknown_output name -> Printf.sprintf "circuit has no output named %s" name
  | No_failure -> "replay shows no output mismatch: the witness disproves nothing"

(* Structural admission: the witness must name a frame it contains and
   every PI vector must match the circuit's input width — mismatches are
   diagnosed, never truncated or padded. *)
let check_shape ~subject aig w =
  if Array.length w.inputs = 0 then Error No_frames
  else if w.frame < 0 || w.frame >= Array.length w.inputs then
    Error (Frame_out_of_range { failing_frame = w.frame; frames = Array.length w.inputs })
  else begin
    let expected = Aig.num_pis aig in
    let bad = ref None in
    Array.iteri
      (fun t fr ->
        if !bad = None && Array.length fr <> expected then
          bad := Some (Width_mismatch { subject; expected; got = Array.length fr; frame = t }))
      w.inputs;
    match !bad with Some e -> Error e | None -> Ok ()
  end

(* Named output values of [aig] at every frame of the witness (shape must
   already have been checked). *)
let simulate aig w =
  let state = ref (Aig.Sim.initial_latch_words aig) in
  Array.map
    (fun frame ->
      let pi_words = Array.map (fun b -> if b then -1L else 0L) frame in
      let values, next = Aig.Sim.step aig ~pi_words ~latch_words:!state in
      state := next;
      List.map
        (fun (name, l) -> (name, Int64.logand (Aig.Sim.lit_word values l) 1L = 1L))
        (Aig.pos aig))
    w.inputs

type mismatch = { at_frame : int; output : string; spec_value : bool; impl_value : bool }

(* Replay the witness on both circuits and locate the first frame at which
   an output pair (matched by name) disagrees. *)
let replay ~spec ~impl w =
  match check_shape ~subject:"specification" spec w with
  | Error e -> Error e
  | Ok () -> (
    match check_shape ~subject:"implementation" impl w with
    | Error e -> Error e
    | Ok () ->
      let o_spec = simulate spec w and o_impl = simulate impl w in
      let found = ref None in
      for t = 0 to w.frame do
        if !found = None then
          List.iter
            (fun (name, v1) ->
              if !found = None then
                match List.assoc_opt name o_impl.(t) with
                | Some v2 when v1 <> v2 ->
                  found := Some { at_frame = t; output = name; spec_value = v1; impl_value = v2 }
                | _ -> ())
            o_spec.(t)
      done;
      (match !found with Some m -> Ok m | None -> Error No_failure))

(* Single-circuit property form (the BMC convention: every PO must be 1):
   the witness claims its named output — or any output, when unnamed — is
   0 at the failing frame. *)
let po_failure aig w =
  match check_shape ~subject:"circuit" aig w with
  | Error e -> Error e
  | Ok () -> (
    let outs = simulate aig w in
    let at_frame = outs.(w.frame) in
    match w.output with
    | Some name -> (
      match List.assoc_opt name at_frame with
      | None -> Error (Unknown_output name)
      | Some true -> Error No_failure
      | Some false -> Ok name)
    | None -> (
      match List.find_opt (fun (_, v) -> not v) at_frame with
      | Some (name, _) -> Ok name
      | None -> Error No_failure))

let refutes aig w = match po_failure aig w with Ok _ -> true | Error _ -> false

(* --- shrinking --------------------------------------------------------------- *)

(* Greedy minimization preserving the disproof: truncate to the earliest
   mismatching frame, then flip input bits toward 0 one at a time, keeping
   each flip only if the replay still finds a mismatch. *)
let shrink ~spec ~impl w =
  match replay ~spec ~impl w with
  | Error _ -> w
  | Ok m ->
    let truncate (m : mismatch) w =
      { frame = m.at_frame; inputs = Array.sub w.inputs 0 (m.at_frame + 1);
        output = Some m.output }
    in
    let w = ref (truncate m w) in
    Array.iteri
      (fun t frame ->
        Array.iteri
          (fun i bit ->
            if bit then begin
              frame.(i) <- false;
              match replay ~spec ~impl !w with
              | Ok _ -> ()
              | Error _ -> frame.(i) <- true
            end)
          frame;
        ignore t)
      !w.inputs;
    (* bit flips may have moved the first mismatch earlier *)
    (match replay ~spec ~impl !w with Ok m -> w := truncate m !w | Error _ -> ());
    !w

(* --- renderers ---------------------------------------------------------------- *)

let bits_of_row row = String.init (Array.length row) (fun i -> if row.(i) then '1' else '0')

(* One row per signal, one column per frame — the text waveform.  When a
   circuit is supplied (and the witness fits it), its output values are
   appended as extra rows. *)
let to_waveform ?spec ?impl w =
  let n = Array.length w.inputs in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "witness: %d frame(s), disproof at frame %d%s\n" n w.frame
       (match w.output with Some o -> Printf.sprintf " (output %s)" o | None -> ""));
  let row label values =
    Buffer.add_string buf (Printf.sprintf "  %-14s %s\n" label values)
  in
  for i = 0 to n_pis w - 1 do
    row (Printf.sprintf "pi%d" i)
      (String.init n (fun t -> if w.inputs.(t).(i) then '1' else '0'))
  done;
  let side label aig =
    match check_shape ~subject:label aig w with
    | Error _ -> ()
    | Ok () ->
      let outs = simulate aig w in
      List.iter
        (fun (name, _) ->
          row
            (Printf.sprintf "%s %s" label name)
            (String.init n (fun t -> if List.assoc name outs.(t) then '1' else '0')))
        outs.(0)
  in
  (match spec with Some a -> side "spec" a | None -> ());
  (match impl with Some a -> side "impl" a | None -> ());
  Buffer.contents buf

(* VCD identifier codes: printable ASCII 33..126, base-94. *)
let vcd_id i =
  let rec go acc i =
    let acc = String.make 1 (Char.chr (33 + (i mod 94))) ^ acc in
    if i < 94 then acc else go acc ((i / 94) - 1)
  in
  go "" i

let to_vcd ?spec ?impl w =
  let buf = Buffer.create 512 in
  let signals = ref [] in
  (* (id, name, value-at-frame) in declaration order *)
  let declare name value_at = signals := (name, value_at) :: !signals in
  for i = 0 to n_pis w - 1 do
    declare (Printf.sprintf "pi%d" i) (fun t -> w.inputs.(t).(i))
  done;
  let side label aig =
    match check_shape ~subject:label aig w with
    | Error _ -> ()
    | Ok () ->
      let outs = simulate aig w in
      List.iter
        (fun (name, _) ->
          declare (Printf.sprintf "%s_%s" label name) (fun t -> List.assoc name outs.(t)))
        outs.(0)
  in
  (match spec with Some a -> side "spec" a | None -> ());
  (match impl with Some a -> side "impl" a | None -> ());
  let signals = List.rev !signals in
  Buffer.add_string buf "$timescale 1 ns $end\n$scope module witness $end\n";
  List.iteri
    (fun i (name, _) ->
      Buffer.add_string buf (Printf.sprintf "$var wire 1 %s %s $end\n" (vcd_id i) name))
    signals;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  for t = 0 to Array.length w.inputs - 1 do
    Buffer.add_string buf (Printf.sprintf "#%d\n" t);
    List.iteri
      (fun i (_, value_at) ->
        Buffer.add_string buf
          (Printf.sprintf "%c%s\n" (if value_at t then '1' else '0') (vcd_id i)))
      signals
  done;
  Buffer.contents buf

(* --- serialization ------------------------------------------------------------- *)

(* Text format:

     seqver-witness 1
     pis 2
     frames 3
     failing-frame 2
     output carry          (optional)
     frame 0 01
     frame 1 11
     frame 2 10
     end                                                                 *)

let to_string w =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "seqver-witness 1\n";
  Buffer.add_string buf (Printf.sprintf "pis %d\n" (n_pis w));
  Buffer.add_string buf (Printf.sprintf "frames %d\n" (n_frames w));
  Buffer.add_string buf (Printf.sprintf "failing-frame %d\n" w.frame);
  (match w.output with
  | Some o -> Buffer.add_string buf (Printf.sprintf "output %s\n" o)
  | None -> ());
  Array.iteri
    (fun t row -> Buffer.add_string buf (Printf.sprintf "frame %d %s\n" t (bits_of_row row)))
    w.inputs;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

let parse_int what s =
  match int_of_string_opt (String.trim s) with
  | Some n -> n
  | None -> fail "%s: expected an integer, got %S" what s

let parse_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let expect_prefix what prefix = function
    | [] -> fail "unexpected end of witness (expected %s)" what
    | line :: rest ->
      let n = String.length prefix in
      if String.length line >= n && String.sub line 0 n = prefix then
        (String.sub line n (String.length line - n), rest)
      else fail "expected %s, got %S" what line
  in
  let version, lines = expect_prefix "header" "seqver-witness " lines in
  if parse_int "version" version <> 1 then fail "unsupported witness version %s" version;
  let pis, lines = expect_prefix "pis" "pis " lines in
  let pis = parse_int "pis" pis in
  let frames, lines = expect_prefix "frames" "frames " lines in
  let frames = parse_int "frames" frames in
  let failing, lines = expect_prefix "failing-frame" "failing-frame " lines in
  let failing = parse_int "failing-frame" failing in
  let output, lines =
    match lines with
    | line :: rest
      when String.length line >= 7 && String.sub line 0 7 = "output " ->
      (Some (String.sub line 7 (String.length line - 7)), rest)
    | _ -> (None, lines)
  in
  if pis < 0 then fail "negative PI count %d" pis;
  if frames <= 0 then fail "witness must contain at least one frame (got %d)" frames;
  if failing < 0 || failing >= frames then
    fail "failing-frame %d outside the declared %d frame(s)" failing frames;
  let inputs = Array.make frames [||] in
  let rec read_frames t lines =
    if t = frames then lines
    else begin
      let rest, lines = expect_prefix "frame" "frame " lines in
      match String.index_opt rest ' ' with
      | None ->
        (* a frame of width 0 has no bits after the index *)
        if parse_int "frame index" rest <> t then fail "frame lines out of order at %d" t;
        if pis <> 0 then fail "frame %d has 0 bit(s), declared pis is %d" t pis;
        inputs.(t) <- [||];
        read_frames (t + 1) lines
      | Some sp ->
        let idx = parse_int "frame index" (String.sub rest 0 sp) in
        if idx <> t then fail "frame lines out of order: expected %d, got %d" t idx;
        let bits = String.trim (String.sub rest (sp + 1) (String.length rest - sp - 1)) in
        if String.length bits <> pis then
          fail "frame %d has %d bit(s), declared pis is %d" t (String.length bits) pis;
        inputs.(t) <-
          Array.init pis (fun i ->
              match bits.[i] with
              | '0' -> false
              | '1' -> true
              | c -> fail "frame %d: invalid bit %C" t c);
        read_frames (t + 1) lines
    end
  in
  let lines = read_frames 0 lines in
  (match lines with
  | [ "end" ] -> ()
  | [] -> fail "missing end marker"
  | line :: _ -> fail "trailing content after frames: %S" line);
  { frame = failing; inputs; output }

let to_file path w =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string w))

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse_string text
