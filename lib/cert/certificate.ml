(* Equivalence certificates: the exportable, independently checkable form
   of an "Equivalent" verdict.

   Van Eijk's maximum signal correspondence relation is an inductive
   invariant of the product machine: it holds in the initial state and is
   preserved by one step of the transition function (k steps for the
   k-inductive SAT engine).  A certificate records exactly that relation —
   the equivalence classes of polarity-normalized product-machine
   literals — plus fingerprints of the two circuits and the shape of the
   product it was computed on.  The checker re-validates all three
   conditions of the proof with cheap combinational queries in a fresh
   SAT solver, never reusing the fixed-point engine that produced the
   relation:

     (a) every class equality holds in the first k frames from the
         initial state, for all inputs;
     (b) the conjunction Q of all class equalities over k consecutive
         frames forces them in the next frame (k-step induction);
     (c) every output pair is equal on all states satisfying Q.

   (a) + (b) make Q an invariant of every reachable state; (c) then gives
   sequential equivalence (paper Theorem 1, generalized to the
   register-correspondence tying check of [5]/[9]). *)

type t = {
  spec_digest : string; (* MD5 of the canonical AIGER text *)
  impl_digest : string;
  engine : string; (* informational: which engine computed the relation *)
  candidates : string; (* "all" | "registers" *)
  induction : int; (* k: 1 = the paper's Equation (3) *)
  retime_rounds : int; (* augmentation rounds to replay on the product *)
  prereduce : int option;
      (* reduction seed when the relation is over the FRAIG-reduced pair:
         checking replays the (deterministic) reduction on the originals,
         re-proving its merge obligations, before rebuilding the product *)
  product_nodes : int; (* product size after augmentation (shape check) *)
  classes : int list list; (* normalized literals, each class sorted *)
  proof : Sat.Dimacs.drat_step list list option;
      (* optional DRAT trace: one segment per non-trivial checker
         obligation, in the checker's deterministic traversal order, so
         a proof-mode check can replay the refutations by reverse unit
         propagation instead of trusting a SAT solver *)
}

exception Parse_error of string

let fingerprint aig = Digest.to_hex (Digest.string (Aig.Aiger.to_string aig))

(* Digest-only identity test, for callers (the serve result cache) that
   hold fingerprints but not the circuits; [check] remains the soundness
   gate for anything beyond identity. *)
let matches_digests ~spec_digest ~impl_digest cert =
  String.equal cert.spec_digest spec_digest && String.equal cert.impl_digest impl_digest

let n_classes cert = List.length cert.classes

let n_constraints cert =
  List.fold_left (fun acc cls -> acc + max 0 (List.length cls - 1)) 0 cert.classes

(* --- emission ----------------------------------------------------------------- *)

type emit_error =
  | Not_proved of string (* the verdict was not Equivalent *)
  | Unsupported of string (* the relation is not self-certifying *)

let explain_emit_error = function
  | Not_proved what -> Printf.sprintf "no certificate: verdict was %s" what
  | Unsupported why -> Printf.sprintf "relation is not self-certifying: %s" why

(* Build a certificate from the result of [Scorr.Verify.run_with_relation]
   under the options that produced it. *)
let of_run ~(options : Scorr.Verify.options) ~spec ~impl (verdict, product, relation) =
  match (verdict, relation) with
  | Scorr.Equivalent stats, Some partition ->
    if options.Scorr.Verify.use_reach_dontcare then
      (* with reachability don't-cares the class equalities may hold only
         inside the reachable care set, so Q alone need not be inductive *)
      Error (Unsupported "computed under reachability don't-cares")
    else
      Ok
        {
          spec_digest = fingerprint spec;
          impl_digest = fingerprint impl;
          engine =
            (match options.Scorr.Verify.engine with
            | Scorr.Verify.Bdd_engine -> "bdd"
            | Scorr.Verify.Sat_engine -> "sat");
          candidates =
            (match options.Scorr.Verify.candidates with
            | Scorr.Verify.All_signals -> "all"
            | Scorr.Verify.Registers_only -> "registers");
          induction =
            (match options.Scorr.Verify.engine with
            | Scorr.Verify.Bdd_engine -> 1
            | Scorr.Verify.Sat_engine -> options.Scorr.Verify.sat_unroll);
          retime_rounds = stats.Scorr.Verify.retime_rounds;
          prereduce =
            (if Scorr.Verify.prereduces options then Some options.Scorr.Verify.seed
             else None);
          product_nodes = Aig.num_nodes product.Scorr.Product.aig;
          classes =
            List.map
              (fun cls ->
                List.sort compare
                  (List.map
                     (Scorr.Partition.norm_lit partition)
                     (Scorr.Partition.members partition cls)))
              (Scorr.Partition.multi_member_classes partition);
          proof = None;
        }
  | Scorr.Not_equivalent _, _ -> Error (Not_proved "Not_equivalent")
  | Scorr.Unknown _, _ -> Error (Not_proved "Unknown")
  | Scorr.Equivalent _, None -> Error (Not_proved "Equivalent without a relation")

(* --- independent checking ------------------------------------------------------- *)

type check_error =
  | Fingerprint_mismatch of { subject : string; expected : string; got : string }
  | Shape_mismatch of { expected : int; got : int }
  | Bad_literal of int
  | Bad_header of string
  | Not_initial of { lit_a : int; lit_b : int; frame : int }
  | Not_inductive of { lit_a : int; lit_b : int }
  | Output_unproved of string
  | Reduction_invalid of { subject : string; failed : int }
  | Proof_missing
  | Proof_invalid of string

let explain_check_error = function
  | Fingerprint_mismatch { subject; expected; got } ->
    Printf.sprintf "%s fingerprint mismatch: certificate has %s, circuit is %s" subject
      expected got
  | Shape_mismatch { expected; got } ->
    Printf.sprintf "product-machine shape mismatch: certificate says %d nodes, rebuilt %d"
      expected got
  | Bad_literal l -> Printf.sprintf "literal %d outside the product machine" l
  | Bad_header what -> Printf.sprintf "malformed certificate: %s" what
  | Not_initial { lit_a; lit_b; frame } ->
    Printf.sprintf "class equality %d = %d does not hold at frame %d from the initial state"
      lit_a lit_b frame
  | Not_inductive { lit_a; lit_b } ->
    Printf.sprintf "class equality %d = %d is not %s" lit_a lit_b "preserved by the relation (induction fails)"
  | Output_unproved name ->
    Printf.sprintf "output pair %s is not proved equal under the relation" name
  | Reduction_invalid { subject; failed } ->
    Printf.sprintf "pre-reduction replay on the %s left %d merge obligation(s) unproved"
      subject failed
  | Proof_missing -> "proof-mode check requested but the certificate carries no proof"
  | Proof_invalid why -> Printf.sprintf "proof trace rejected: %s" why

exception Check_failed of check_error

(* Chain [n] time frames of [aig] in [solver]; [first_latch_var] supplies
   the frame-0 state variables, later frames capture the previous frame's
   next-state values.  Deliberately re-implemented here (mirroring
   [Engine_sat]) so the checker shares no state with any engine. *)
let unroll solver aig ~n ~first_latch_var =
  let n_latches = Aig.num_latches aig in
  let frames = Array.make n (fun _ -> 0) in
  let latch_vars = ref first_latch_var in
  for i = 0 to n - 1 do
    let this_latch = !latch_vars in
    let x_vars = Array.init (Aig.num_pis aig) (fun _ -> Sat.new_var solver) in
    let lit_of =
      Aig.Cnf.encode solver aig ~pi_var:(fun j -> x_vars.(j)) ~latch_var:this_latch
    in
    frames.(i) <- lit_of;
    let next_latch =
      Array.init n_latches (fun j ->
          let v = Sat.new_var solver in
          let next = lit_of (Aig.latch_next aig j) in
          Sat.add_clause solver [ Sat.Lit.neg v; next ];
          Sat.add_clause solver [ Sat.Lit.pos v; Sat.Lit.negate next ];
          v)
    in
    latch_vars := (fun j -> next_latch.(j))
  done;
  frames

(* The (representative, member) literal pairs whose equalities form Q. *)
let constraint_pairs cert =
  List.concat_map
    (function [] | [ _ ] -> [] | rep :: rest -> List.map (fun l -> (rep, l)) rest)
    cert.classes

(* The checker's obligation walk, shared by all three discharge modes.
   [on_solver] sees each of the two fresh solvers as it is created (to
   attach proof or input loggers); [discharge solver sl] must decide
   whether the staged selector literal [sl] — whose two guard clauses
   [~sl \/ a \/ b] and [~sl \/ ~a \/ ~b] are already installed — is
   refutable, i.e. whether a <-> b is valid.  The walk is deterministic:
   a proof produced by one run is replayable by any later run over the
   same certificate and circuits, obligation by obligation. *)
let run_check ~spec ~impl ~on_solver ~discharge cert =
  try
    let expect subject expected aig =
      let got = fingerprint aig in
      if got <> expected then
        raise (Check_failed (Fingerprint_mismatch { subject; expected; got }))
    in
    expect "specification" cert.spec_digest spec;
    expect "implementation" cert.impl_digest impl;
    if cert.induction < 1 then
      raise (Check_failed (Bad_header (Printf.sprintf "induction depth %d" cert.induction)));
    if cert.retime_rounds < 0 || cert.retime_rounds > 64 then
      raise
        (Check_failed (Bad_header (Printf.sprintf "retime rounds %d" cert.retime_rounds)));
    (* pre-reduced relations: replay the deterministic reduction on the
       originals, but do not trust it — every merge it performed is
       re-proved on the original circuit with a fresh solver *)
    let spec, impl =
      match cert.prereduce with
      | None -> (spec, impl)
      | Some seed ->
        let reduce subject aig =
          let reduced, rstats = Analysis.Reduce.run ~seed aig in
          (match
             Analysis.Reduce.check_obligations aig rstats.Analysis.Reduce.obligations
           with
          | [] -> ()
          | bad ->
            raise
              (Check_failed (Reduction_invalid { subject; failed = List.length bad })));
          reduced
        in
        (reduce "specification" spec, reduce "implementation" impl)
    in
    (* rebuild the product the relation was computed on: the construction
       and the augmentation are both deterministic *)
    let product = Scorr.Product.make spec impl in
    for _ = 1 to cert.retime_rounds do
      ignore (Scorr.Retime_aug.augment product)
    done;
    let aig = product.Scorr.Product.aig in
    if Aig.num_nodes aig <> cert.product_nodes then
      raise
        (Check_failed
           (Shape_mismatch { expected = cert.product_nodes; got = Aig.num_nodes aig }));
    List.iter
      (fun l ->
        if l < 0 || Aig.node_of_lit l >= Aig.num_nodes aig then
          raise (Check_failed (Bad_literal l)))
      (List.concat cert.classes);
    (* Is [a <-> b] valid under the solver's clauses?  One staged
       obligation; the selector is retired afterwards so the clause set
       stays clean. *)
    let equality_valid solver a b =
      a = b
      ||
      let s = Sat.new_var solver in
      let sl = Sat.Lit.pos s and ns = Sat.Lit.neg s in
      Sat.add_clause solver [ ns; a; b ];
      Sat.add_clause solver [ ns; Sat.Lit.negate a; Sat.Lit.negate b ];
      let r = discharge solver sl in
      Sat.add_clause solver [ ns ];
      r
    in
    let k = cert.induction in
    let pairs = constraint_pairs cert in
    (* (a) base case: every equality holds in the first k frames from the
       initial state, for all input sequences *)
    let solver0 = Sat.create () in
    on_solver solver0;
    let s0 =
      Array.init (Aig.num_latches aig) (fun i ->
          let v = Sat.new_var solver0 in
          Sat.add_clause solver0 [ Sat.Lit.make v (Aig.latch_init aig i) ];
          v)
    in
    let frames0 = unroll solver0 aig ~n:k ~first_latch_var:(fun i -> s0.(i)) in
    for t = 0 to k - 1 do
      List.iter
        (fun (la, lb) ->
          if not (equality_valid solver0 (frames0.(t) la) (frames0.(t) lb)) then
            raise (Check_failed (Not_initial { lit_a = la; lit_b = lb; frame = t })))
        pairs
    done;
    (* (b) induction: from a free state, Q over frames 0..k-1 forces every
       equality in frame k *)
    let solver = Sat.create () in
    on_solver solver;
    let s =
      Array.init (Aig.num_latches aig) (fun _ -> Sat.new_var solver)
    in
    let frames = unroll solver aig ~n:(k + 1) ~first_latch_var:(fun i -> s.(i)) in
    for t = 0 to k - 1 do
      List.iter
        (fun (la, lb) ->
          let a = frames.(t) la and b = frames.(t) lb in
          if a <> b then begin
            Sat.add_clause solver [ Sat.Lit.negate a; b ];
            Sat.add_clause solver [ a; Sat.Lit.negate b ]
          end)
        pairs
    done;
    List.iter
      (fun (la, lb) ->
        if not (equality_valid solver (frames.(k) la) (frames.(k) lb)) then
          raise (Check_failed (Not_inductive { lit_a = la; lit_b = lb })))
      pairs;
    (* (c) Theorem 1: each output pair is equal on all Q-states — membership
       in a common class for all-signals relations, the combinational tying
       check for register-correspondence ones; both reduce to a query in
       the Q-constrained frame 0 *)
    List.iter
      (fun (name, ls, li) ->
        if not (equality_valid solver (frames.(0) ls) (frames.(0) li)) then
          raise (Check_failed (Output_unproved name)))
      product.Scorr.Product.outputs;
    Ok ()
  with Check_failed e -> Error e

(* Plain mode: each obligation is one assumption-guarded SAT query. *)
let check_solving ~spec ~impl cert =
  run_check ~spec ~impl ~on_solver:(fun _ -> ())
    ~discharge:(fun solver sl -> Sat.solve ~assumptions:[ sl ] solver = Sat.Unsat)
    cert

let drat_of_step = function
  | Sat.Step_add lits -> Sat.Dimacs.Add (List.map Sat.Lit.to_int lits)
  | Sat.Step_delete lits -> Sat.Dimacs.Delete (List.map Sat.Lit.to_int lits)

(* Proof-replay mode: no SAT solving at all.  Each checker solver is
   shadowed by an independent reverse-unit-propagation engine fed every
   problem clause through the input logger (the solvers are used purely
   as deterministic CNF encoders).  Per obligation, the next trace
   segment is replayed — every addition verified RUP against the
   accumulated clauses — and the obligation is discharged iff the
   negated selector is then forced by unit propagation. *)
let check_replaying ~spec ~impl cert segments =
  let rups = ref [] in
  let remaining = ref segments in
  let on_solver s =
    let rup = Sat.Dimacs.Rup.create () in
    rups := (s, rup) :: !rups;
    Sat.set_input_logger s
      (Some (fun lits -> Sat.Dimacs.Rup.add_input rup (List.map Sat.Lit.to_int lits)))
  in
  let discharge s sl =
    let rup = List.assq s !rups in
    match !remaining with
    | [] -> raise (Check_failed (Proof_invalid "fewer proof segments than obligations"))
    | seg :: rest ->
      remaining := rest;
      (match Sat.Dimacs.Rup.replay rup seg with
      | Error msg -> raise (Check_failed (Proof_invalid msg))
      | Ok () -> ());
      Sat.Dimacs.Rup.holds rup [ -Sat.Lit.to_int sl ]
  in
  match run_check ~spec ~impl ~on_solver ~discharge cert with
  | Error _ as e -> e
  | Ok () ->
    if !remaining <> [] then
      Error (Proof_invalid "more proof segments than obligations")
    else Ok ()

let check ?(use_proof = false) ~spec ~impl cert =
  if not use_proof then check_solving ~spec ~impl cert
  else
    match cert.proof with
    | None -> Error Proof_missing
    | Some segments -> check_replaying ~spec ~impl cert segments

(* Run the solving checker while streaming each solver's DRAT events,
   cutting one segment per discharged obligation; the returned
   certificate embeds the trace.  Solvers persist across the obligations
   of one phase, so a segment's refutation may resolve with learned
   clauses recorded in earlier segments — replay feeds the segments to
   the same accumulating engine in the same order, which is exactly why
   the traversal order is part of the format. *)
let prove ~spec ~impl cert =
  let segments = ref [] in
  let current = ref [] in
  let on_solver s =
    Sat.set_proof_logger s (Some (fun step -> current := drat_of_step step :: !current))
  in
  let discharge solver sl =
    current := [];
    let r = Sat.solve ~assumptions:[ sl ] solver = Sat.Unsat in
    if r then segments := List.rev !current :: !segments;
    r
  in
  match run_check ~spec ~impl ~on_solver ~discharge cert with
  | Error _ as e -> e
  | Ok () -> Ok { cert with proof = Some (List.rev !segments) }

(* --- serialization -------------------------------------------------------------- *)

(* Text format:

     seqver-cert 1
     spec-md5 <32 hex chars>
     impl-md5 <32 hex chars>
     engine bdd
     candidates all
     induction 1
     retime-rounds 0
     prereduced 42        (optional: FRAIG pre-reduction seed)
     product-nodes 420
     classes 2
     class 4 6 12
     class 9 13
     end

   A trace-backed certificate inserts, between the class lines and the
   end marker, a proof section — one [segment] per checker obligation,
   each followed by its DRAT lines (DIMACS literals, "d"-prefixed
   deletions):

     proof 2
     segment 3
     5 -2 0
     d 5 -2 0
     -9 0
     segment 1
     -12 0
     end                                                                 *)

let to_string cert =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "seqver-cert 1\n";
  Buffer.add_string buf (Printf.sprintf "spec-md5 %s\n" cert.spec_digest);
  Buffer.add_string buf (Printf.sprintf "impl-md5 %s\n" cert.impl_digest);
  Buffer.add_string buf (Printf.sprintf "engine %s\n" cert.engine);
  Buffer.add_string buf (Printf.sprintf "candidates %s\n" cert.candidates);
  Buffer.add_string buf (Printf.sprintf "induction %d\n" cert.induction);
  Buffer.add_string buf (Printf.sprintf "retime-rounds %d\n" cert.retime_rounds);
  (match cert.prereduce with
  | None -> ()
  | Some seed -> Buffer.add_string buf (Printf.sprintf "prereduced %d\n" seed));
  Buffer.add_string buf (Printf.sprintf "product-nodes %d\n" cert.product_nodes);
  Buffer.add_string buf (Printf.sprintf "classes %d\n" (List.length cert.classes));
  List.iter
    (fun cls ->
      Buffer.add_string buf "class";
      List.iter (fun l -> Buffer.add_string buf (Printf.sprintf " %d" l)) cls;
      Buffer.add_char buf '\n')
    cert.classes;
  (match cert.proof with
  | None -> ()
  | Some segments ->
    Buffer.add_string buf (Printf.sprintf "proof %d\n" (List.length segments));
    List.iter
      (fun seg ->
        Buffer.add_string buf (Printf.sprintf "segment %d\n" (List.length seg));
        Buffer.add_string buf (Sat.Dimacs.drat_to_string seg))
      segments);
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

let parse_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let field key = function
    | [] -> fail "unexpected end of certificate (expected %s)" key
    | line :: rest -> (
      match String.index_opt line ' ' with
      | Some sp when String.sub line 0 sp = key ->
        (String.sub line (sp + 1) (String.length line - sp - 1), rest)
      | _ -> fail "expected field %s, got %S" key line)
  in
  let int_field key lines =
    let v, lines = field key lines in
    match int_of_string_opt (String.trim v) with
    | Some n -> (n, lines)
    | None -> fail "field %s: expected an integer, got %S" key v
  in
  let version, lines = int_field "seqver-cert" lines in
  if version <> 1 then fail "unsupported certificate version %d" version;
  let spec_digest, lines = field "spec-md5" lines in
  let impl_digest, lines = field "impl-md5" lines in
  let engine, lines = field "engine" lines in
  let candidates, lines = field "candidates" lines in
  let induction, lines = int_field "induction" lines in
  let retime_rounds, lines = int_field "retime-rounds" lines in
  let prereduce, lines =
    match lines with
    | line :: _ when String.length line > 11 && String.sub line 0 11 = "prereduced " ->
      let seed, lines = int_field "prereduced" lines in
      (Some seed, lines)
    | _ -> (None, lines)
  in
  let product_nodes, lines = int_field "product-nodes" lines in
  let n, lines = int_field "classes" lines in
  if n < 0 then fail "negative class count %d" n;
  let parse_class line =
    String.split_on_char ' ' line
    |> List.filter (fun s -> s <> "")
    |> List.map (fun s ->
           match int_of_string_opt s with
           | Some l -> l
           | None -> fail "class member: expected a literal, got %S" s)
  in
  let rec read_classes i acc lines =
    if i = n then (List.rev acc, lines)
    else
      match lines with
      | [] -> fail "unexpected end of certificate (expected %d more class(es))" (n - i)
      | line :: rest ->
        if line = "class" then read_classes (i + 1) ([] :: acc) rest
        else if String.length line > 6 && String.sub line 0 6 = "class " then
          read_classes (i + 1)
            (parse_class (String.sub line 6 (String.length line - 6)) :: acc)
            rest
        else fail "expected a class line, got %S" line
  in
  let classes, lines = read_classes 0 [] lines in
  (* optional proof section (certificates without one parse as before) *)
  let proof, lines =
    match lines with
    | line :: _ when String.length line >= 6 && String.sub line 0 6 = "proof " ->
      let nseg, lines = int_field "proof" lines in
      if nseg < 0 then fail "negative proof segment count %d" nseg;
      let rec read_steps j acc lines =
        if j = 0 then (List.rev acc, lines)
        else
          match lines with
          | [] -> fail "unexpected end of certificate (expected %d more proof line(s))" j
          | line :: rest -> (
            match Sat.Dimacs.drat_parse_string line with
            | [ step ] -> read_steps (j - 1) (step :: acc) rest
            | _ -> fail "expected one DRAT step per line, got %S" line
            | exception Failure msg -> fail "bad DRAT line %S: %s" line msg)
      in
      let rec read_segments i acc lines =
        if i = 0 then (List.rev acc, lines)
        else
          match lines with
          | [] -> fail "unexpected end of certificate (expected %d more segment(s))" i
          | _ ->
            let nsteps, lines = int_field "segment" lines in
            if nsteps < 0 then fail "negative proof step count %d" nsteps;
            let steps, lines = read_steps nsteps [] lines in
            read_segments (i - 1) (steps :: acc) lines
      in
      let segments, lines = read_segments nseg [] lines in
      (Some segments, lines)
    | _ -> (None, lines)
  in
  (match lines with
  | [ "end" ] -> ()
  | [] -> fail "missing end marker"
  | line :: _ -> fail "trailing content after classes: %S" line);
  {
    spec_digest;
    impl_digest;
    engine;
    candidates;
    induction;
    retime_rounds;
    prereduce;
    product_nodes;
    classes;
    proof;
  }

let to_file path cert =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string cert))

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse_string text
