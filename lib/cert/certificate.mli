(** Equivalence certificates.

    An [Equivalent] verdict of {!Scorr.Verify} rests on a long fixed-point
    computation; the maximum signal correspondence relation it computes is
    an {e inductive invariant} of the product machine, so it can be
    exported and re-validated independently with cheap combinational
    checks.  A certificate records that relation (equivalence classes of
    polarity-normalized product-machine literals), fingerprints of the two
    circuits, and the options needed to rebuild the product; {!check}
    re-proves the three conditions of the theorem — base case, induction
    step, output coverage — with fresh SAT queries that share nothing with
    the engine that found the relation. *)

type t = {
  spec_digest : string;  (** MD5 of the canonical AIGER text *)
  impl_digest : string;
  engine : string;  (** informational: "bdd" or "sat" *)
  candidates : string;  (** "all" or "registers" *)
  induction : int;  (** k: 1 = the paper's Equation (3) *)
  retime_rounds : int;  (** augmentation rounds to replay on the product *)
  prereduce : int option;
      (** when the relation was computed on the FRAIG-reduced pair
          (speculative runs with the analysis layer on), the reduction
          seed: checking replays {!Analysis.Reduce.run} on the original
          circuits — re-proving every merge obligation with a fresh
          solver — before rebuilding the product *)
  product_nodes : int;  (** product size after augmentation (shape check) *)
  classes : int list list;  (** normalized literals, each class sorted *)
  proof : Sat.Dimacs.drat_step list list option;
      (** optional DRAT trace: one segment per non-trivial checker
          obligation, in the checker's deterministic traversal order —
          produced by {!prove}, consumed by {!check} in proof mode *)
}

exception Parse_error of string

val fingerprint : Aig.t -> string
(** MD5 hex digest of the circuit's canonical AIGER text. *)

val matches_digests : spec_digest:string -> impl_digest:string -> t -> bool
(** Was this certificate emitted for exactly these circuit fingerprints?
    Identity only — {!check} remains the independent soundness gate. *)

val n_classes : t -> int
val n_constraints : t -> int
(** Number of pairwise equalities in Q (class sizes minus class count). *)

(** {1 Emission} *)

type emit_error =
  | Not_proved of string  (** the verdict was not [Equivalent] *)
  | Unsupported of string  (** the relation is not self-certifying *)

val explain_emit_error : emit_error -> string

val of_run :
  options:Scorr.Verify.options ->
  spec:Aig.t ->
  impl:Aig.t ->
  Scorr.verdict * Scorr.Product.t * Scorr.Partition.t option ->
  (t, emit_error) result
(** Certificate of a {!Scorr.Verify.run_with_relation} result, under the
    options that produced it.  Fails on non-[Equivalent] verdicts and on
    relations computed under reachability don't-cares (those hold only
    inside the care set, so Q alone need not be inductive). *)

(** {1 Independent checking} *)

type check_error =
  | Fingerprint_mismatch of { subject : string; expected : string; got : string }
  | Shape_mismatch of { expected : int; got : int }
  | Bad_literal of int
  | Bad_header of string
  | Not_initial of { lit_a : int; lit_b : int; frame : int }
  | Not_inductive of { lit_a : int; lit_b : int }
  | Output_unproved of string
  | Reduction_invalid of { subject : string; failed : int }
      (** replaying the pre-reduction left merge obligations unproved *)
  | Proof_missing  (** proof-mode check, but the certificate has no trace *)
  | Proof_invalid of string  (** a trace step failed RUP verification *)

val explain_check_error : check_error -> string

val check : ?use_proof:bool -> spec:Aig.t -> impl:Aig.t -> t -> (unit, check_error) result
(** Re-validate the certificate against the two circuits without trusting
    the fixed-point loop: fingerprints, product shape, the base case in
    the first [induction] frames from the initial state, the k-step
    induction from a free state, and coverage of every output pair.

    With [use_proof] (default [false]), no SAT solving happens at all:
    the certificate must embed a DRAT trace ({!prove}), and every
    obligation is discharged by replaying its trace segment through an
    independent reverse-unit-propagation engine
    ({!Sat.Dimacs.Rup}) against the reconstructed CNF — each traced
    clause is verified RUP before use, and the obligation passes only if
    unit propagation then forces the staged selector false.  Mutated or
    truncated traces are rejected ([Proof_invalid]). *)

val prove : spec:Aig.t -> impl:Aig.t -> t -> (t, check_error) result
(** Run the solving checker while recording a DRAT trace of every
    refutation; on success, returns the certificate with [proof] filled
    (one segment per obligation, in traversal order). *)

(** {1 Serialization (text format)} *)

val to_string : t -> string
val parse_string : string -> t
(** @raise Parse_error on malformed input. *)

val to_file : string -> t -> unit
val parse_file : string -> t
