(** Replayable counterexample witnesses.

    A witness packages the concrete input trace behind a
    ["Not_equivalent"] verdict: frame-indexed primary-input vectors plus
    the frame at which the disproof lands.  It unifies
    {!Reach.Bmc.counterexample} and the raw [bool array array] trace of
    {!Scorr.Verify.verdict}, and is validated by {e simulating the
    original circuits} — the verdict of the engine that produced it is
    never trusted. *)

type t = {
  frame : int;  (** frame at which the disproof lands *)
  inputs : bool array array;  (** [inputs.(t).(i)]: PI [i] at frame [t] *)
  output : string option;  (** failing output name, when known *)
}

exception Parse_error of string

val make : ?output:string -> bool array array -> t
(** Witness failing at the last frame of the trace.
    @raise Invalid_argument on an empty trace. *)

val of_trace : ?output:string -> bool array array -> t
(** Alias of {!make}: adapt the trace of a {!Scorr.Verify.verdict}. *)

val of_bmc : Reach.Bmc.counterexample -> t

val n_frames : t -> int
val n_pis : t -> int

(** {1 Validation by replay} *)

type replay_error =
  | No_frames
  | Frame_out_of_range of { failing_frame : int; frames : int }
  | Width_mismatch of { subject : string; expected : int; got : int; frame : int }
  | Unknown_output of string
  | No_failure  (** replays cleanly: the witness disproves nothing *)

val explain_error : replay_error -> string

val check_shape : subject:string -> Aig.t -> t -> (unit, replay_error) result
(** Reject (with a diagnostic, never an exception or a silent truncation)
    witnesses whose PI vector width or failing-frame index does not match
    the circuit. *)

type mismatch = { at_frame : int; output : string; spec_value : bool; impl_value : bool }

val replay : spec:Aig.t -> impl:Aig.t -> t -> (mismatch, replay_error) result
(** Simulate both circuits over the witness inputs and return the first
    frame at which an output pair (matched by name) disagrees. *)

val po_failure : Aig.t -> t -> (string, replay_error) result
(** Single-circuit property form (the BMC convention: every PO must be 1):
    the name of the witness's output — or of any output, when unnamed —
    that evaluates to 0 at the failing frame. *)

val refutes : Aig.t -> t -> bool
(** [po_failure] as a plain test. *)

val shrink : spec:Aig.t -> impl:Aig.t -> t -> t
(** Greedy minimization preserving the disproof: drop trailing frames
    beyond the earliest mismatch, then flip input bits toward 0.  Returns
    the witness unchanged if it does not replay. *)

(** {1 Renderers} *)

val to_waveform : ?spec:Aig.t -> ?impl:Aig.t -> t -> string
(** Text waveform, one row per signal and one column per frame; supplied
    circuits contribute their output values as extra rows. *)

val to_vcd : ?spec:Aig.t -> ?impl:Aig.t -> t -> string
(** Value-change-dump rendering of the same signals. *)

(** {1 Serialization (text format)} *)

val to_string : t -> string
val parse_string : string -> t
(** @raise Parse_error on malformed input. *)

val to_file : string -> t -> unit
val parse_file : string -> t
