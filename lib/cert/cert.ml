(* The trust layer of the checker: exportable equivalence certificates and
   replayable counterexample witnesses.

   Both halves follow the same principle — every verdict should be
   re-checkable without re-running (or trusting) the engine that produced
   it.  [Certificate] re-validates an "Equivalent" answer by re-proving
   that the exported signal correspondence relation is an inductive
   invariant covering all output pairs; [Witness] re-validates a
   "Not_equivalent" answer by simulating the original circuits over the
   recorded input trace. *)

module Witness = Witness
module Certificate = Certificate
