#!/usr/bin/env bash
# serve-self: end-to-end self-check of the verification service.
#
# Starts a daemon on a private socket, submits two suite pairs twice
# (the second submission of each must be answered from the result
# cache), cancels an in-flight job, shuts the daemon down gracefully,
# and fails if the daemon leaks its socket file.
#
# Usage: serve_self.sh path/to/seqver

set -eu

SEQVER=$1
WORK=$(mktemp -d "${TMPDIR:-/tmp}/seqver-serve-self.XXXXXX")
SERVE_PID=

cleanup() {
  status=$?
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  if [ "$status" -ne 0 ] && [ -f "$WORK/serve.log" ]; then
    echo "serve-self: daemon log:" >&2
    cat "$WORK/serve.log" >&2
  fi
  rm -rf "$WORK"
  exit "$status"
}
trap cleanup EXIT

fail() {
  echo "serve-self: $*" >&2
  exit 1
}

SOCK=$WORK/serve.sock
"$SEQVER" serve --socket "$SOCK" --cache-dir "$WORK/cache" --workers 2 \
  > "$WORK/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 100); do
  test -S "$SOCK" && break
  sleep 0.1
done
test -S "$SOCK" || fail "daemon never created $SOCK"

# Two suite pairs, each submitted twice: fresh run, then a cache hit.
jobs=0
for name in ctr8 lfsr16; do
  "$SEQVER" gen "$name" -o "$WORK/$name.blif"
  "$SEQVER" opt "$WORK/$name.blif" "$WORK/$name-impl.aag" \
    --recipe retime+opt --seed 3 > /dev/null

  "$SEQVER" submit "$WORK/$name.blif" "$WORK/$name-impl.aag" \
    --socket "$SOCK" --json > "$WORK/$name-1.json"
  grep -q '"verdict":"equivalent"' "$WORK/$name-1.json" \
    || fail "$name: first submission not proved equivalent"
  grep -q '"cached":false' "$WORK/$name-1.json" \
    || fail "$name: first submission unexpectedly cached"

  "$SEQVER" submit "$WORK/$name.blif" "$WORK/$name-impl.aag" \
    --socket "$SOCK" --json > "$WORK/$name-2.json"
  grep -q '"cached":true' "$WORK/$name-2.json" \
    || fail "$name: resubmission missed the cache"
  grep -q '"verdict":"equivalent"' "$WORK/$name-2.json" \
    || fail "$name: cached verdict changed"

  jobs=$((jobs + 2))
  echo "serve-self: $name verified fresh + cached"
done

# Cancel an in-flight job: job ids are sequential, so the next
# submission is job-$((jobs + 1)).  ctr32 is slow enough that the
# cancel lands while the job is queued or running; the client exits 3.
"$SEQVER" gen ctr32 -o "$WORK/ctr32.blif"
"$SEQVER" opt "$WORK/ctr32.blif" "$WORK/ctr32-impl.aag" \
  --recipe retime+opt --seed 3 > /dev/null
"$SEQVER" submit "$WORK/ctr32.blif" "$WORK/ctr32-impl.aag" \
  --socket "$SOCK" --json > "$WORK/ctr32.json" 2>&1 &
CLIENT_PID=$!
sleep 0.3
"$SEQVER" submit --cancel "job-$((jobs + 1))" --socket "$SOCK" > /dev/null
client_rc=0
wait "$CLIENT_PID" || client_rc=$?
test "$client_rc" -eq 3 || fail "cancelled client exited $client_rc, want 3"
grep -q '"verdict":"cancelled"' "$WORK/ctr32.json" \
  || fail "cancelled job did not report a cancelled verdict"
echo "serve-self: cancel delivered"

# Graceful shutdown: the daemon acknowledges, exits 0, and leaves no
# socket files behind.
"$SEQVER" submit --shutdown --socket "$SOCK" > /dev/null
serve_rc=0
wait "$SERVE_PID" || serve_rc=$?
SERVE_PID=
test "$serve_rc" -eq 0 || fail "daemon exited $serve_rc, want 0"

leaked=$(find "$WORK" -name '*.sock' | wc -l)
test "$leaked" -eq 0 || fail "daemon leaked $leaked socket file(s)"
echo "serve-self: graceful shutdown, no leaked sockets"
