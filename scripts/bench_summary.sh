#!/usr/bin/env bash
# bench-summary: tabulate a bench --json file.
#
# Rows in BENCH_scorr.json are keyed by (run, circuit, engine): several
# bench targets measure the same (circuit, engine) pair under different
# options (e.g. ablation-engine and ablation-incremental both emit
# "sat" rows), so grouping by circuit/engine alone double-counts.  This
# script prints one line per (run, circuit, engine) key and fails if
# any key appears twice — the invariant the "run" field exists to keep.
#
# Usage: bench_summary.sh [BENCH_scorr.json]

set -eu

JSON=${1:-BENCH_scorr.json}
[ -f "$JSON" ] || { echo "bench-summary: no such file: $JSON" >&2; exit 2; }

command -v jq >/dev/null || { echo "bench-summary: jq not found" >&2; exit 2; }

dups=$(jq -r '.[] | "\(.run // "unknown")/\(.circuit)/\(.engine)"' "$JSON" \
  | sort | uniq -d)
if [ -n "$dups" ]; then
  echo "bench-summary: duplicate (run, circuit, engine) keys:" >&2
  echo "$dups" >&2
  exit 1
fi

printf '%-22s %-9s %-12s %-8s %9s %10s %8s\n' \
  run circuit engine verdict seconds conflicts eq_pct
jq -r '.[] |
  [(.run // "unknown"), .circuit, .engine, .verdict,
   (.seconds | tostring), ((.conflicts // 0) | tostring),
   ((.eq_pct // 0) | tostring)] | @tsv' "$JSON" \
| while IFS=$'\t' read -r run circuit engine verdict seconds conflicts eq; do
    printf '%-22s %-9s %-12s %-8s %9s %10s %8s\n' \
      "$run" "$circuit" "$engine" "$verdict" "$seconds" "$conflicts" "$eq"
  done
