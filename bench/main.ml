(* Benchmark harness regenerating the paper's evaluation (see DESIGN.md
   experiment index):

     table1             Table 1: symbolic traversal vs the proposed method
     eqpct              the 85% / 54% average-equivalence claim (C1)
     ablation-fundep    functional dependencies on/off (C2)
     ablation-sim       simulation seeding on/off (A1)
     ablation-retime    retiming extension on/off (A2)
     ablation-engine    BDD vs SAT refinement engine (A3)
     ablation-speculation  speculative reduction + per-class dispatch on/off (E4)
     ablation-dontcare  reachable don't-cares on re-encoded FSMs (A4)
     micro              Bechamel microbenchmarks of the substrates (B1)
     all                everything above

   Run with:  dune exec bench/main.exe -- [--json FILE] [--smoke] [target ...]

   --json FILE      append one JSON record per measured run to FILE
   --smoke          small-suite, tight-budget mode for CI: only quick circuits,
                    nonzero exit when any verdict regresses from "proved"
   --filter RE      only bench suite circuits whose name matches RE
                    (OCaml Str regexp: alternation is backslash-pipe)
   --no-incremental run every scorr target with throwaway per-class SAT
                    solvers (the ablation-incremental target always A/Bs
                    both modes regardless of this flag)
   --speculate      run every scorr target with speculative reduction and
                    the per-class dispatcher (the ablation-speculation
                    target always A/Bs both modes regardless)
   --seed N         PRNG seed for simulation seeding (Scorr options.seed)
   -j N             run ablation-engine circuit jobs across N worker domains
   --sweep-jobs N   worker domains inside each SAT sweep (Scorr options.jobs)
   --deadline S     wall-clock budget per measured run (Scorr deadline;
                    0 = none); timed-out rows report verdict "unknown" and
                    the exhausted reason
   --serve SOCK     client mode: submit the suite through a verification
                    daemon instead of running in-process.  Connects to an
                    existing daemon on SOCK, or hosts one for the duration
                    of the run when no socket exists there.  Each pair is
                    submitted twice — the fresh run and the cache hit —
                    and the JSON rows carry "cached" / "queue_wait"
                    columns from the service *)

let impl_seed = 11
let line = String.make 100 '-'

(* Wall clock, not [Sys.time]: the processor time the latter reports hides
   time spent blocked and saturates against multi-threaded runtimes; every
   figure this harness prints is meant to be wall time.  Scorr.Clock is
   additionally monotonic-safe, so a stepped system clock can never produce
   a negative duration in a report. *)
let timed = Scorr.Clock.timed

let verdict_name = function
  | Scorr.Equivalent _ -> "proved"
  | Scorr.Not_equivalent _ -> "REFUTED"
  | Scorr.Unknown _ -> "unknown"

(* --- machine-readable results (hand-rolled JSON; no external deps) ---------- *)

let json_file : string option ref = ref None
let smoke = ref false
let smoke_failures : string list ref = ref []
let json_rows : string list ref = ref []
let filter_re : Str.regexp option ref = ref None
let seed_flag = ref Scorr.default_options.Scorr.Verify.seed

(* Job-level workers default to the hardware; note that with more than
   one worker the per-row wall times of ablation-engine contend for
   cores and are only comparable within the same -j. *)
let jobs = ref (Domain.recommended_domain_count ())
let sweep_jobs = ref 1
let deadline_flag = ref 0.0
let no_incremental = ref false
let speculate_flag = ref false
let serve_socket : string option ref = ref None

let name_matches name =
  match !filter_re with
  | None -> true
  | Some re -> ( try ignore (Str.search_forward re name 0); true with Not_found -> false)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Static-shape columns: one [Analysis] pass over the (spec, impl) pair,
   shared by every engine row of that circuit.  [strash_merges] counts
   the and nodes the structural-reduction pass would eliminate (two-level
   rewrites plus SAT-proven FRAIG merges) across both sides. *)
let shape_fragment spec impl =
  let ms = Analysis.Metrics.summary spec and mi = Analysis.Metrics.summary impl in
  let merges aig =
    let _, s = Analysis.Reduce.run aig in
    s.Analysis.Reduce.rewrites + s.Analysis.Reduce.fraig_merges
  in
  Printf.sprintf
    "\"ands\": %d, \"latches\": %d, \"levels\": %d, \"max_cone\": %d, \
     \"strash_merges\": %d"
    (ms.Analysis.Metrics.ands + mi.Analysis.Metrics.ands)
    (ms.Analysis.Metrics.latches + mi.Analysis.Metrics.latches)
    (max ms.Analysis.Metrics.levels mi.Analysis.Metrics.levels)
    (max ms.Analysis.Metrics.max_cone mi.Analysis.Metrics.max_cone)
    (merges spec + merges impl)

(* Record one measured verification run; also the smoke-mode verdict gate.
   [run] names the bench target that produced the row: several targets
   measure the same (circuit, engine) pair under different options, so
   consumers must key rows on (run, circuit, engine), never on
   (circuit, engine) alone.  [cached] / [queue_wait] are service
   columns: in-process rows report false / 0, serve-mode rows carry
   what the daemon measured. *)
let record ?(cached = false) ?(queue_wait = 0.0) ~run ~circuit ~engine ~shape verdict seconds =
  let s = Scorr.verdict_stats verdict in
  let name = verdict_name verdict in
  if !smoke && name <> "proved" then
    smoke_failures := Printf.sprintf "%s/%s: %s" circuit engine name :: !smoke_failures;
  (* peak_nodes is a BDD measurement: a row whose run never built a BDD
     reports null, not a real-looking 0 *)
  let peak =
    if engine = "bdd" || s.Scorr.Verify.peak_bdd_nodes > 0 then
      string_of_int s.Scorr.Verify.peak_bdd_nodes
    else "null"
  in
  json_rows :=
    Printf.sprintf
      "{\"run\": \"%s\", \"circuit\": \"%s\", \"engine\": \"%s\", \"verdict\": \"%s\", \
       \"seconds\": %.3f, \"sat_calls\": %d, \"peak_nodes\": %s, \
       \"iterations\": %d, \"retime_rounds\": %d, \"pool_lanes\": %d, \
       \"resim_splits\": %d, \"batched_solves\": %d, \"cache_hits\": %d, \
       \"static_splits\": %d, \"conflicts\": %d, \"propagations\": %d, \
       \"restarts\": %d, \"reused_clauses\": %d, \"shared_clauses\": %d, \
       \"core_prunes\": %d, \"spec_rounds\": %d, \"spec_merges\": %d, \
       \"refuted_assumptions\": %d, \"spec_by_sim\": %d, \"spec_by_bdd\": %d, \
       \"spec_by_sat\": %d, %s, \
       \"jobs\": %d, \"domains\": %d, \"steals\": %d, \"sched_wait\": %.3f, \
       \"deadline\": %.3f, \"exhausted\": %s, \"eq_pct\": %.1f, \
       \"cached\": %b, \"queue_wait\": %.3f}"
      (json_escape run) (json_escape circuit) (json_escape engine) name seconds
      s.Scorr.Verify.sat_calls peak s.iterations s.retime_rounds
      s.pool_lanes s.resim_splits s.batched_solves s.cache_hits
      s.static_splits s.conflicts s.propagations s.restarts s.reused_clauses
      s.shared_clauses s.core_prunes s.spec_rounds s.spec_merges
      s.refuted_assumptions s.spec_by_sim s.spec_by_bdd s.spec_by_sat shape
      !sweep_jobs s.domains s.steals s.sched_wait_seconds !deadline_flag
      (match s.exhausted with
      | Some why -> Printf.sprintf "\"%s\"" (json_escape why)
      | None -> "null")
      s.eq_pct cached queue_wait
    :: !json_rows

let write_json () =
  match !json_file with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc "[\n";
    output_string oc (String.concat ",\n" (List.rev !json_rows));
    output_string oc "\n]\n";
    close_out oc;
    Printf.printf "wrote %d records to %s\n" (List.length !json_rows) path

(* Per-run resource budgets, standing in for the paper's 100 MB / 3600 s. *)
let traversal_budget =
  { Reach.Traversal.max_iterations = 100_000; max_live_nodes = 1_500_000; max_seconds = 30.0 }

(* A function, not a constant: --seed, --sweep-jobs and --deadline are
   parsed after module initialisation. *)
let scorr_options () =
  {
    Scorr.default_options with
    Scorr.Verify.node_limit = 1_500_000;
    seed = !seed_flag;
    jobs = !sweep_jobs;
    deadline_seconds = !deadline_flag;
    use_incremental = not !no_incremental;
    use_speculation =
      !speculate_flag || Scorr.default_options.Scorr.Verify.use_speculation;
  }

let suite_pairs recipe =
  List.filter_map
    (fun e ->
      if not (name_matches e.Circuits.Suite.name) then None
      else
        let spec = Circuits.Suite.aig_of e in
        let impl = Circuits.Suite.implementation ~recipe ~seed:impl_seed spec in
        Some (e, spec, impl))
    Circuits.Suite.suite

(* --- Table 1 ------------------------------------------------------------- *)

let run_traversal ?(use_fundep = true) spec impl =
  let product = Scorr.Product.make spec impl in
  let t0 = Scorr.Clock.now () in
  match
    Reach.Trans.make ~node_limit:traversal_budget.Reach.Traversal.max_live_nodes
      ~latch_order:(Scorr.Verify.latch_order_from_outputs product)
      product.Scorr.Product.aig
  with
  | exception Bdd.Limit_exceeded ->
    ("limit:nodes", Scorr.Clock.since t0, traversal_budget.Reach.Traversal.max_live_nodes, 0)
  | trans ->
    let result =
      Reach.Traversal.check_equivalence ~budget:traversal_budget ~use_fundep trans
    in
    let st = result.Reach.Traversal.stats in
    let status =
      match result.Reach.Traversal.outcome with
      | Reach.Traversal.Fixpoint _ -> "proved"
      | Reach.Traversal.Property_violation _ -> "REFUTED"
      | Reach.Traversal.Budget_exceeded what -> "limit:" ^ what
    in
    (status, st.Reach.Traversal.seconds, st.peak_nodes, st.iterations)

let table1 () =
  Printf.printf
    "Table 1: retimed and optimized circuits — traversal vs signal correspondence\n";
  Printf.printf
    "(per-run budgets: %.0fs / %d BDD nodes, mirroring the paper's 3600s / 100MB)\n\n"
    traversal_budget.Reach.Traversal.max_seconds traversal_budget.max_live_nodes;
  Printf.printf "%-9s %9s | %-11s %8s %9s %6s | %-8s %8s %9s %4s %4s %5s\n" "circuit"
    "regs" "traversal" "time(s)" "nodes" "#its" "proposed" "time(s)" "nodes" "#its" "(rt)"
    "eqs%";
  print_endline line;
  List.iter
    (fun (e, spec, impl) ->
      let regs = Printf.sprintf "%d/%d" (Aig.num_latches spec) (Aig.num_latches impl) in
      let tstatus, ttime, tnodes, tits = run_traversal spec impl in
      let v, _ = timed (fun () -> Scorr.check ~options:(scorr_options ()) spec impl) in
      let s = Scorr.verdict_stats v in
      Printf.printf "%-9s %9s | %-11s %8.2f %9d %6d | %-8s %8.2f %9d %4d (%2d) %5.0f\n%!"
        e.Circuits.Suite.name regs tstatus ttime tnodes tits (verdict_name v)
        s.Scorr.Verify.seconds s.peak_bdd_nodes s.iterations s.retime_rounds s.eq_pct)
    (suite_pairs Circuits.Suite.Retime_opt);
  print_endline line;
  print_endline
    "shape to compare with the paper: traversal exceeds its budget on deep/large\n\
     circuits while the proposed method proves every pair with modest BDD work."

(* --- C1: average equivalence percentage ------------------------------------ *)

let eqpct () =
  Printf.printf "C1: percentage of spec signals with an implementation correspondence\n";
  Printf.printf "(paper: 85%% for retimed-only circuits, 54%% after script.rugged)\n\n";
  Printf.printf "%-9s %14s %14s\n" "circuit" "retime-only" "retime+opt";
  print_endline (String.make 40 '-');
  let totals = [| 0.0; 0.0 |] in
  let count = ref 0 in
  List.iter
    (fun e ->
      let spec = Circuits.Suite.aig_of e in
      let pct recipe =
        let impl = Circuits.Suite.implementation ~recipe ~seed:impl_seed spec in
        let v = Scorr.check ~options:(scorr_options ()) spec impl in
        (Scorr.verdict_stats v).Scorr.Verify.eq_pct
      in
      let p_r = pct Circuits.Suite.Retime_only in
      let p_o = pct Circuits.Suite.Retime_opt in
      totals.(0) <- totals.(0) +. p_r;
      totals.(1) <- totals.(1) +. p_o;
      incr count;
      Printf.printf "%-9s %13.0f%% %13.0f%%\n%!" e.Circuits.Suite.name p_r p_o)
    Circuits.Suite.suite;
  print_endline (String.make 40 '-');
  Printf.printf "%-9s %13.0f%% %13.0f%%\n" "average"
    (totals.(0) /. float_of_int !count)
    (totals.(1) /. float_of_int !count)

(* --- C2: functional dependencies ---------------------------------------------- *)

let ablation_fundep () =
  Printf.printf "C2: functional dependencies on/off (for the traversal and for Q)\n\n";
  Printf.printf "%-9s | %-11s %8s | %-11s %8s | %-8s %8s | %-8s %8s\n" "circuit"
    "trav+fd" "time" "trav-fd" "time" "scorr+fd" "time" "scorr-fd" "time";
  print_endline line;
  let entries = [ "ctr8"; "ctr16"; "gray12"; "crc16"; "traffic"; "arb4"; "alu4" ] in
  List.iter
    (fun name ->
      match Circuits.Suite.find name with
      | None -> ()
      | Some e ->
        let spec = Circuits.Suite.aig_of e in
        let impl =
          Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_opt ~seed:impl_seed
            spec
        in
        let t1, tt1, _, _ = run_traversal ~use_fundep:true spec impl in
        let t0, tt0, _, _ = run_traversal ~use_fundep:false spec impl in
        let sc use_fundep =
          let options = { (scorr_options ()) with Scorr.Verify.use_fundep } in
          let v, t = timed (fun () -> Scorr.check ~options spec impl) in
          (verdict_name v, t)
        in
        let s1, st1 = sc true in
        let s0, st0 = sc false in
        Printf.printf "%-9s | %-11s %8.2f | %-11s %8.2f | %-8s %8.2f | %-8s %8.2f\n%!" name
          t1 tt1 t0 tt0 s1 st1 s0 st0)
    entries

(* --- A1: simulation seeding ----------------------------------------------------- *)

let ablation_sim () =
  Printf.printf "A1: random-simulation seeding of the fixed point (Section 4)\n\n";
  Printf.printf "%-9s | %-8s %6s %8s | %-8s %6s %8s\n" "circuit" "seeded" "#its" "time"
    "unseeded" "#its" "time";
  print_endline line;
  List.iter
    (fun (e, spec, impl) ->
      let run use_sim_seed =
        let options = { (scorr_options ()) with Scorr.Verify.use_sim_seed } in
        let v, t = timed (fun () -> Scorr.check ~options spec impl) in
        (verdict_name v, (Scorr.verdict_stats v).Scorr.Verify.iterations, t)
      in
      let v1, i1, t1 = run true in
      let v0, i0, t0 = run false in
      Printf.printf "%-9s | %-8s %6d %8.2f | %-8s %6d %8.2f\n%!" e.Circuits.Suite.name v1 i1
        t1 v0 i0 t0)
    (List.filter
       (fun (e, _, _) ->
         List.mem e.Circuits.Suite.name
           [ "ctr8"; "gray12"; "crc16"; "traffic"; "arb4"; "det-bin"; "mod10" ])
       (suite_pairs Circuits.Suite.Retime_opt))

(* --- A2: retiming extension ------------------------------------------------------- *)

let ablation_retime () =
  Printf.printf "A2: candidate extension by forward retiming with lag 1 (Fig. 3)\n\n";
  Printf.printf "%-9s | %-8s %5s | %-8s\n" "circuit" "with" "(rt)" "without";
  print_endline (String.make 44 '-');
  List.iter
    (fun (e, spec, impl) ->
      let run use_retime =
        let options = { (scorr_options ()) with Scorr.Verify.use_retime } in
        Scorr.check ~options spec impl
      in
      let v1 = run true and v0 = run false in
      Printf.printf "%-9s | %-8s (%2d) | %-8s\n%!" e.Circuits.Suite.name (verdict_name v1)
        (Scorr.verdict_stats v1).Scorr.Verify.retime_rounds (verdict_name v0))
    (suite_pairs Circuits.Suite.Retime_only)

(* --- A3: engines --------------------------------------------------------------------- *)

let smoke_circuits = [ "ctr8"; "gray12"; "traffic"; "mod10"; "arb4" ]

(* The -j flag parallelises this target at the job level: each (circuit,
   engine-triple) job runs whole verifications in a worker domain with
   fully private managers, and the coordinator records and prints results
   in suite order, so the table and the JSON are byte-identical for every
   worker count. *)
let ablation_engine () =
  Printf.printf
    "A3: BDD refinement (the paper) vs SAT refinement (the paper's future work),\n\
     the batched sweeps + counterexample pool vs the legacy pairwise scans,\n\
     and the analysis-steered portfolio (pre-reduction + engine-rung plan)\n\n";
  Printf.printf "%-9s | %-8s %7s %8s | %-8s %7s %7s %5s %5s %5s | %-8s %7s %7s | %-8s %7s %7s\n"
    "circuit" "bdd" "time" "nodes" "sat" "time" "calls" "pool" "resim" "hits" "sat-pair"
    "time" "calls" "auto" "time" "solves";
  print_endline line;
  let pairs =
    Array.of_list
      (List.filter
         (fun (e, _, _) ->
           if !smoke then List.mem e.Circuits.Suite.name smoke_circuits
           else not (List.mem e.Circuits.Suite.name [ "ctr32"; "crc32" ]))
         (suite_pairs Circuits.Suite.Retime_opt))
  in
  let job () (_, spec, impl) =
    let budgeted options =
      if !smoke then
        { options with Scorr.Verify.max_sat_calls = 50_000; node_limit = 500_000 }
      else options
    in
    let run options = timed (fun () -> Scorr.check ~options:(budgeted options) spec impl) in
    let bdd = run (scorr_options ()) in
    let sat =
      run { (scorr_options ()) with Scorr.Verify.engine = Scorr.Verify.Sat_engine }
    in
    let pairwise =
      run
        {
          (scorr_options ()) with
          Scorr.Verify.engine = Scorr.Verify.Sat_engine;
          use_batched_sweeps = false;
        }
    in
    let auto =
      let options = budgeted { (scorr_options ()) with Scorr.Verify.use_analysis = true } in
      timed (fun () -> Scorr.portfolio ~options spec impl)
    in
    (bdd, sat, pairwise, auto)
  in
  let pool = Scorr.Parsweep.create ~jobs:!jobs ~init:(fun _ -> ()) in
  let results = Scorr.Parsweep.map pool ~f:job pairs in
  Scorr.Parsweep.shutdown pool;
  Array.iteri
    (fun i ((vb, tb), (vs, ts), (vp, tp), (va, ta)) ->
      let e, spec, impl = pairs.(i) in
      let name = e.Circuits.Suite.name in
      let shape = shape_fragment spec impl in
      record ~run:"ablation-engine" ~circuit:name ~engine:"bdd" ~shape vb tb;
      record ~run:"ablation-engine" ~circuit:name ~engine:"sat" ~shape vs ts;
      record ~run:"ablation-engine" ~circuit:name ~engine:"sat-pairwise" ~shape vp tp;
      record ~run:"ablation-engine" ~circuit:name ~engine:"auto" ~shape va ta;
      let sb = Scorr.verdict_stats vs
      and sp = Scorr.verdict_stats vp
      and sa = Scorr.verdict_stats va in
      Printf.printf
        "%-9s | %-8s %7.2f %8d | %-8s %7.2f %7d %5d %5d %5d | %-8s %7.2f %7d | %-8s %7.2f \
         %7d\n\
         %!"
        name (verdict_name vb) tb (Scorr.verdict_stats vb).Scorr.Verify.peak_bdd_nodes
        (verdict_name vs) ts sb.Scorr.Verify.sat_calls sb.pool_lanes sb.resim_splits
        sb.cache_hits (verdict_name vp) tp sp.Scorr.Verify.sat_calls (verdict_name va) ta
        sa.Scorr.Verify.batched_solves)
    results

(* --- A4: reachable don't-cares -------------------------------------------------------- *)

let ablation_dontcare () =
  Printf.printf
    "A4: strengthening Q with an approximate reachable state space (Section 3 ext.)\n\n";
  let pairs =
    [ ("mod5/ring5",
       (fun () -> fst (Aig.of_netlist (Circuits.Counter.modulo 5))),
       fun () -> fst (Aig.of_netlist (Circuits.Counter.ring 5)));
      ("mod10/ring10",
       (fun () -> fst (Aig.of_netlist (Circuits.Counter.modulo 10))),
       fun () -> fst (Aig.of_netlist (Circuits.Counter.ring 10)));
      ("det bin/onehot",
       (fun () ->
         fst (Aig.of_netlist (Circuits.Fsm.detector ~onehot:false [ true; false; true; true ]))),
       fun () ->
         fst (Aig.of_netlist (Circuits.Fsm.detector ~onehot:true [ true; false; true; true ])));
    ]
  in
  Printf.printf "%-16s | %-8s %8s %9s | %-8s %8s %9s\n" "pair" "plain" "time" "nodes"
    "with-dc" "time" "nodes";
  print_endline line;
  List.iter
    (fun (name, mk_spec, mk_impl) ->
      let spec = mk_spec () and impl = mk_impl () in
      let run use_reach_dontcare =
        let options =
          { (scorr_options ()) with Scorr.Verify.use_reach_dontcare; reach_block_size = 12 }
        in
        timed (fun () -> Scorr.check ~options spec impl)
      in
      let v0, t0 = run false in
      let v1, t1 = run true in
      Printf.printf "%-16s | %-8s %8.2f %9d | %-8s %8.2f %9d\n%!" name (verdict_name v0) t0
        (Scorr.verdict_stats v0).Scorr.Verify.peak_bdd_nodes (verdict_name v1) t1
        (Scorr.verdict_stats v1).Scorr.Verify.peak_bdd_nodes)
    pairs

(* --- E1: k-inductive SAT unrolling (extension) ----------------------------------------- *)

let ablation_unroll () =
  Printf.printf
    "E1 (extension): k-inductive unrolling of the SAT engine (k=1 is the paper)\n\n";
  Printf.printf "%-9s | %-8s %8s %7s | %-8s %8s %7s | %-8s %8s %7s\n" "circuit" "k=1"
    "time" "calls" "k=2" "time" "calls" "k=3" "time" "calls";
  print_endline line;
  List.iter
    (fun (e, spec, impl) ->
      let run k =
        let options =
          { (scorr_options ()) with Scorr.Verify.engine = Scorr.Verify.Sat_engine; sat_unroll = k }
        in
        timed (fun () -> Scorr.check ~options spec impl)
      in
      let cells =
        List.map
          (fun k ->
            let v, t = run k in
            Printf.sprintf "%-8s %8.2f %7d" (verdict_name v) t
              (Scorr.verdict_stats v).Scorr.Verify.sat_calls)
          [ 1; 2; 3 ]
      in
      Printf.printf "%-9s | %s\n%!" e.Circuits.Suite.name (String.concat " | " cells))
    (List.filter
       (fun (e, _, _) ->
         List.mem e.Circuits.Suite.name
           [ "ctr8"; "gray12"; "crc16"; "crc32"; "traffic"; "mod10"; "arb4"; "bus" ])
       (suite_pairs Circuits.Suite.Retime_opt))

(* --- E2: persistent incremental SAT ----------------------------------------------------- *)

(* A/B of the incremental machinery: one persistent activation-guarded
   solver per sweep lane, learned-clause sharing at merge points and
   failed-core proof transfer, against a throwaway solver per class
   obligation.  Verdicts must agree; the point of the table is the
   reduction in solver work (conflicts, wall time). *)
let ablation_incremental () =
  Printf.printf
    "E2 (extension): persistent incremental SAT across the fixed point vs a\n\
     throwaway solver per class obligation (identical verdicts by construction)\n\n";
  Printf.printf "%-9s | %-8s %7s %9s %7s %7s | %-9s %7s %9s | %7s %7s\n" "circuit"
    "incr" "time" "conflicts" "prunes" "shared" "throwaway" "time" "conflicts" "t-ratio"
    "c-ratio";
  print_endline line;
  let circuits = if !smoke then [ "ctr8"; "lfsr16"; "mod10" ] else [ "ctr16"; "gray12"; "lfsr16" ] in
  List.iter
    (fun (e, spec, impl) ->
      let name = e.Circuits.Suite.name in
      let run incr =
        let options =
          {
            (scorr_options ()) with
            Scorr.Verify.engine = Scorr.Verify.Sat_engine;
            use_incremental = incr;
          }
        in
        let options =
          if !smoke then { options with Scorr.Verify.max_sat_calls = 50_000 } else options
        in
        timed (fun () -> Scorr.check ~options spec impl)
      in
      let vi, ti = run true in
      let vf, tf = run false in
      let shape = shape_fragment spec impl in
      record ~run:"ablation-incremental" ~circuit:name ~engine:"sat" ~shape vi ti;
      record ~run:"ablation-incremental" ~circuit:name ~engine:"sat-noincr" ~shape vf tf;
      let si = Scorr.verdict_stats vi and sf = Scorr.verdict_stats vf in
      let ratio num den = if num > 0.0 then den /. num else Float.nan in
      Printf.printf "%-9s | %-8s %7.2f %9d %7d %7d | %-9s %7.2f %9d | %6.1fx %6.1fx\n%!"
        name (verdict_name vi) ti si.Scorr.Verify.conflicts si.core_prunes si.shared_clauses
        (verdict_name vf) tf sf.Scorr.Verify.conflicts (ratio ti tf)
        (ratio (float_of_int si.Scorr.Verify.conflicts) (float_of_int sf.Scorr.Verify.conflicts)))
    (List.filter
       (fun (e, _, _) -> List.mem e.Circuits.Suite.name circuits)
       (suite_pairs Circuits.Suite.Retime_opt))

(* --- E4: speculative reduction ----------------------------------------------------------- *)

(* A/B of speculative reduction: merge every candidate class onto its
   representative, discharge the assumption obligations on the reduced
   product through the per-class dispatcher (simulation screen, BDD,
   persistent incremental SAT), refine and rebuild on refutation —
   against the plain per-class sweep.  Verdicts and final partitions
   are identical by construction (the refinement loop reaches the same
   greatest fixed point); the table shows the wall-time and conflict
   reduction per engine, plus how the dispatcher split the obligations. *)
let ablation_speculation () =
  Printf.printf
    "E4 (extension): speculative reduction + per-class engine dispatch vs the\n\
     plain per-class sweep (identical verdicts by construction)\n\n";
  Printf.printf "%-9s %-4s | %-8s %8s %9s | %-8s %8s %9s %7s %11s | %7s %7s\n" "circuit"
    "eng" "plain" "time" "conflicts" "spec" "time" "conflicts" "merges" "sim/bdd/sat"
    "t-ratio" "c-ratio";
  print_endline line;
  let circuits =
    if !smoke then [ "ctr8"; "gray12"; "arb4" ] else [ "arb6"; "ctr16"; "gray12"; "bus"; "tx" ]
  in
  List.iter
    (fun (e, spec, impl) ->
      let name = e.Circuits.Suite.name in
      let shape = shape_fragment spec impl in
      List.iter
        (fun (engine, tag) ->
          let run use_speculation =
            (* both arms run the static-analysis layer, so the A/B isolates
               speculation itself: the plain arm gets the support
               prefilter, the speculative arm additionally pre-reduces
               (Verify.prereduces) and dispatches per class.  bus's
               depth-1 gfp does not imply output equality — depth-2
               induction closes it, at the same depth in both arms so
               the comparison stays engine-for-engine fair *)
            let options =
              { (scorr_options ()) with Scorr.Verify.engine; use_speculation;
                use_analysis = true;
                (* one lane in both arms: the plain sweep gains from solver
                   partitioning at -j>1 while every dispatcher lane re-encodes
                   the reduced product, so multi-lane runs on few cores would
                   skew the A/B without measuring speculation at all *)
                jobs = 1;
                sat_unroll = (if name = "bus" then 2 else 1) }
            in
            let options =
              if !smoke then
                { options with Scorr.Verify.max_sat_calls = 50_000; node_limit = 500_000 }
              else options
            in
            timed (fun () -> Scorr.check ~options spec impl)
          in
          let vp, tp = run false in
          let vs, ts = run true in
          record ~run:"ablation-speculation" ~circuit:name ~engine:tag ~shape vp tp;
          record ~run:"ablation-speculation" ~circuit:name ~engine:(tag ^ "-spec") ~shape vs
            ts;
          let sp = Scorr.verdict_stats vp and ss = Scorr.verdict_stats vs in
          let ratio num den = if num > 0.0 then den /. num else Float.nan in
          Printf.printf
            "%-9s %-4s | %-8s %8.2f %9d | %-8s %8.2f %9d %7d %3d/%3d/%3d | %6.1fx %6.1fx\n%!"
            name tag (verdict_name vp) tp sp.Scorr.Verify.conflicts (verdict_name vs) ts
            ss.Scorr.Verify.conflicts ss.spec_merges ss.spec_by_sim ss.spec_by_bdd
            ss.spec_by_sat (ratio ts tp)
            (ratio (float_of_int ss.Scorr.Verify.conflicts)
               (float_of_int sp.Scorr.Verify.conflicts)))
        [ (Scorr.Verify.Bdd_engine, "bdd"); (Scorr.Verify.Sat_engine, "sat") ])
    (List.filter
       (fun (e, _, _) -> List.mem e.Circuits.Suite.name circuits)
       (suite_pairs Circuits.Suite.Retime_opt))

(* --- E3: plain output k-induction baseline ---------------------------------------------- *)

let ablation_induction () =
  Printf.printf
    "E3 (context): plain k-induction on the outputs vs signal correspondence\n";
  Printf.printf
    "(output equality is rarely inductive by itself: the signal-level relation is the point)\n\n";
  Printf.printf "%-9s | %-10s %8s | %-8s %8s\n" "circuit" "k-induct" "time" "scorr" "time";
  print_endline line;
  List.iter
    (fun (e, spec, impl) ->
      let product = Scorr.Product.make spec impl in
      let (ind, ti) =
        timed (fun () ->
            Reach.Induction.check ~max_k:6 ~max_sat_calls:5_000 product.Scorr.Product.aig)
      in
      let ind_name =
        match ind with
        | Reach.Induction.Proved k -> Printf.sprintf "proved@%d" k
        | Reach.Induction.Refuted _ -> "REFUTED"
        | Reach.Induction.Unknown _ -> "unknown"
      in
      let v, ts = timed (fun () -> Scorr.check ~options:(scorr_options ()) spec impl) in
      Printf.printf "%-9s | %-10s %8.2f | %-8s %8.2f\n%!" e.Circuits.Suite.name ind_name ti
        (verdict_name v) ts)
    (List.filter
       (fun (e, _, _) ->
         List.mem e.Circuits.Suite.name
           [ "ctr8"; "gray12"; "crc16"; "traffic"; "mod10"; "arb4"; "alu4"; "det-bin" ])
       (suite_pairs Circuits.Suite.Retime_opt))

(* --- S1: verification service round-trips ---------------------------------------------- *)

(* A serve-mode row reports what the daemon measured, not in-process
   engine internals: runtime, queue wait, cache status, and the run
   counters the protocol carries. *)
let record_serve ~circuit ~shape (o : Serve.Protocol.outcome) =
  let name =
    match o.Serve.Protocol.verdict with
    | "equivalent" -> "proved"
    | "not_equivalent" -> "REFUTED"
    | _ -> "unknown"
  in
  if !smoke && name <> "proved" then
    smoke_failures := Printf.sprintf "%s/serve: %s" circuit name :: !smoke_failures;
  json_rows :=
    Printf.sprintf
      "{\"run\": \"serve\", \"circuit\": \"%s\", \"engine\": \"serve\", \"verdict\": \"%s\", \
       \"seconds\": %.3f, \"sat_calls\": %d, \"iterations\": %d, \
       \"resumed_iterations\": %d, %s, \"deadline\": %.3f, \"eq_pct\": %.1f, \
       \"cached\": %b, \"queue_wait\": %.3f}"
      (json_escape circuit) name o.Serve.Protocol.runtime o.Serve.Protocol.sat_calls
      o.Serve.Protocol.iterations o.Serve.Protocol.resumed_iterations shape !deadline_flag
      o.Serve.Protocol.eq_pct o.Serve.Protocol.cached o.Serve.Protocol.queue_wait
    :: !json_rows;
  name

let serve_bench socket =
  Printf.printf
    "S1: verification service round-trips — each pair submitted twice:\n\
     a fresh run, then an exact resubmission answered from the result cache\n\n";
  (* reuse a daemon already listening on [socket]; otherwise host one in
     a domain for the duration of the run *)
  let own_daemon =
    if Sys.file_exists socket then None
    else begin
      let cache_dir = Filename.temp_file "seqver-bench-cache" "" in
      Sys.remove cache_dir;
      let cfg =
        { Serve.Daemon.default_config with Serve.Daemon.socket_path = socket; cache_dir }
      in
      Some (Domain.spawn (fun () -> Serve.Daemon.run cfg))
    end
  in
  let rec connect tries =
    match Serve.Client.connect ~socket () with
    | client -> client
    | exception Serve.Client.Error _ when tries > 0 ->
      Unix.sleepf 0.05;
      connect (tries - 1)
  in
  let client = connect 100 in
  Fun.protect
    ~finally:(fun () ->
      (match own_daemon with
      | Some d ->
        ignore (Serve.Client.request client Serve.Protocol.Shutdown);
        ignore (Domain.join d)
      | None -> ());
      Serve.Client.close client)
    (fun () ->
      Printf.printf "%-9s | %-8s %8s %8s | %-8s %8s | %7s\n" "circuit" "fresh" "time"
        "q-wait" "cached" "time" "speedup";
      print_endline line;
      let opts =
        {
          Serve.Protocol.default_opts with
          Serve.Protocol.seed = !seed_flag;
          deadline = !deadline_flag;
        }
      in
      List.iter
        (fun (e, spec, impl) ->
          let name = e.Circuits.Suite.name in
          let submit () =
            let aag a = Serve.Protocol.Aag (Aig.Aiger.to_string a) in
            snd (Serve.Client.submit_and_wait client ~spec:(aag spec) ~impl:(aag impl) ~opts ())
          in
          let shape = shape_fragment spec impl in
          let fresh = submit () in
          let hit = submit () in
          let v1 = record_serve ~circuit:name ~shape fresh in
          let v2 = record_serve ~circuit:name ~shape hit in
          if not hit.Serve.Protocol.cached then
            smoke_failures :=
              Printf.sprintf "%s/serve: resubmission missed the cache" name :: !smoke_failures;
          let speedup =
            if hit.Serve.Protocol.runtime > 0.0 then
              Printf.sprintf "%6.0fx" (fresh.Serve.Protocol.runtime /. hit.Serve.Protocol.runtime)
            else "   inf"
          in
          Printf.printf "%-9s | %-8s %8.3f %8.4f | %-8s %8.3f | %7s\n%!" name v1
            fresh.Serve.Protocol.runtime fresh.Serve.Protocol.queue_wait v2
            hit.Serve.Protocol.runtime speedup)
        (List.filter
           (fun (e, _, _) ->
             (not !smoke) || List.mem e.Circuits.Suite.name smoke_circuits)
           (suite_pairs Circuits.Suite.Retime_opt)))

(* --- B1: microbenchmarks ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let bdd_image =
    Test.make ~name:"bdd: counter image step"
      (Staged.stage (fun () ->
           let a, _ = Aig.of_netlist (Circuits.Counter.binary 12) in
           let trans = Reach.Trans.make a in
           ignore (Reach.Trans.image trans trans.Reach.Trans.init)))
  in
  let bdd_build =
    Test.make ~name:"bdd: build alu4 outputs"
      (Staged.stage (fun () ->
           let a, _ = Aig.of_netlist (Circuits.Pipeline.alu 4) in
           let m = Bdd.create () in
           let bdd_of = Engines.Aig_bdd.build_default m a in
           List.iter (fun (_, l) -> ignore (bdd_of l)) (Aig.pos a)))
  in
  let sat_php =
    Test.make ~name:"sat: pigeonhole 5/4"
      (Staged.stage (fun () ->
           let s = Sat.create () in
           let var p h = (p * 4) + h in
           Sat.ensure_vars s 20;
           for p = 0 to 4 do
             Sat.add_clause s (List.init 4 (fun h -> Sat.Lit.pos (var p h)))
           done;
           for h = 0 to 3 do
             for p1 = 0 to 4 do
               for p2 = p1 + 1 to 4 do
                 Sat.add_clause s [ Sat.Lit.neg (var p1 h); Sat.Lit.neg (var p2 h) ]
               done
             done
           done;
           ignore (Sat.solve s)))
  in
  let aig_sim =
    Test.make ~name:"aig: 64x64 frames of crc32"
      (Staged.stage
         (let a, _ = Aig.of_netlist (Circuits.Lfsr.crc ~poly:0x04C11DB7 32) in
          let frames = Aig.Sim.random_frames ~seed:1 ~n_pis:1 ~n_frames:64 in
          fun () -> ignore (Aig.Sim.run a frames)))
  in
  let scorr_small =
    Test.make ~name:"scorr: traffic retime+opt"
      (Staged.stage
         (let spec = Circuits.Suite.aig_of (Option.get (Circuits.Suite.find "traffic")) in
          let impl =
            Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_opt ~seed:3 spec
          in
          fun () -> ignore (Scorr.check spec impl)))
  in
  let tests =
    Test.make_grouped ~name:"seqver" [ bdd_build; bdd_image; sat_php; aig_sim; scorr_small ]
  in
  Printf.printf "B1: substrate microbenchmarks (Bechamel, monotonic clock)\n\n";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 2.0) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-34s %14.0f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-34s (no estimate)\n" name)
    (List.sort compare rows)

(* --- driver ---------------------------------------------------------------------------------- *)

let targets =
  [ ("table1", table1); ("eqpct", eqpct); ("ablation-fundep", ablation_fundep);
    ("ablation-sim", ablation_sim); ("ablation-retime", ablation_retime);
    ("ablation-engine", ablation_engine); ("ablation-dontcare", ablation_dontcare);
    ("ablation-unroll", ablation_unroll); ("ablation-incremental", ablation_incremental);
    ("ablation-speculation", ablation_speculation);
    ("ablation-induction", ablation_induction);
    ("micro", micro) ]

let () =
  let run name =
    match List.assoc_opt name targets with
    | Some f ->
      f ();
      print_newline ()
    | None ->
      Printf.eprintf "unknown bench target %s; available: %s all\n" name
        (String.concat " " (List.map fst targets));
      exit 1
  in
  (* flags first, then target names *)
  let int_arg flag s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ ->
      Printf.eprintf "bench: %s expects a positive integer, got %s\n" flag s;
      exit 1
  in
  let rec parse_flags = function
    | "--json" :: path :: rest ->
      json_file := Some path;
      parse_flags rest
    | "--smoke" :: rest ->
      smoke := true;
      parse_flags rest
    | "--filter" :: re :: rest ->
      filter_re := Some (Str.regexp re);
      parse_flags rest
    | "--seed" :: n :: rest ->
      seed_flag := int_arg "--seed" n;
      parse_flags rest
    | ("-j" | "--jobs") :: n :: rest ->
      jobs := int_arg "-j" n;
      parse_flags rest
    | "--sweep-jobs" :: n :: rest ->
      sweep_jobs := int_arg "--sweep-jobs" n;
      parse_flags rest
    | "--no-incremental" :: rest ->
      no_incremental := true;
      parse_flags rest
    | "--speculate" :: rest ->
      speculate_flag := true;
      parse_flags rest
    | "--deadline" :: v :: rest ->
      (match float_of_string_opt v with
      | Some s when s >= 0.0 -> deadline_flag := s
      | _ ->
        Printf.eprintf "bench: --deadline expects a non-negative float, got %s\n" v;
        exit 1);
      parse_flags rest
    | "--serve" :: sock :: rest ->
      serve_socket := Some sock;
      parse_flags rest
    | rest -> rest
  in
  let names = parse_flags (List.tl (Array.to_list Sys.argv)) in
  (match (!serve_socket, names) with
  | Some socket, _ ->
    (* client mode: the daemon is the engine; targets don't apply *)
    serve_bench socket;
    print_newline ()
  | None, ([] | [ "all" ]) ->
    List.iter
      (fun (_, f) ->
        f ();
        print_newline ())
      targets
  | None, names -> List.iter run names);
  write_json ();
  match !smoke_failures with
  | [] -> ()
  | fails ->
    Printf.eprintf "smoke: %d verdict(s) regressed from proved:\n" (List.length fails);
    List.iter (Printf.eprintf "  %s\n") (List.rev fails);
    exit 1
