(* Tests of the serve subsystem: JSON/protocol round-trips and
   malformed-line rejection, the bounded job queue, the fingerprint-keyed
   result cache (hit/miss/eviction, disk persistence, warm-start probe),
   and the daemon end to end over a real Unix socket — including the
   qcheck property that a cached verdict equals a fresh re-run's. *)

let aig_pair ?(n_inputs = 3) ?(n_latches = 5) ?(n_gates = 25) seed =
  let c = Test_util.random_circuit ~n_inputs ~n_latches ~n_gates seed in
  let spec, _ = Aig.of_netlist c in
  let impl = Transform.Opt.rewrite ~seed spec in
  (spec, impl)

let suite_pair name =
  let spec = Circuits.Suite.aig_of (Option.get (Circuits.Suite.find name)) in
  let impl = Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_opt ~seed:5 spec in
  (spec, impl)

(* A pair that is genuinely inequivalent: one latch initialized false
   vs. true, output = latch, so the outputs differ at frame 0. *)
let inequivalent_pair () =
  let build init =
    let a = Aig.create () in
    let i = Aig.add_pi a in
    let l = Aig.add_latch a ~init in
    Aig.set_latch_next a l ~next:i;
    Aig.add_po a "out" l;
    a
  in
  (build false, build true)

let temp_dir () =
  let path = Filename.temp_file "seqver-serve" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

(* --- json ---------------------------------------------------------------------- *)

let test_json_round_trip () =
  let v =
    Serve.Json.Obj
      [
        ("null", Serve.Json.Null);
        ("flag", Serve.Json.Bool true);
        ("n", Serve.Json.Int (-42));
        ("x", Serve.Json.Float 1.5);
        ("s", Serve.Json.String "with \"quotes\", a \\ and a \nnewline");
        ("xs", Serve.Json.List [ Serve.Json.Int 1; Serve.Json.String "two"; Serve.Json.Null ]);
        ("nested", Serve.Json.Obj [ ("empty", Serve.Json.List []) ]);
      ]
  in
  let text = Serve.Json.to_string v in
  Alcotest.(check bool) "single line" false (String.contains text '\n');
  Alcotest.(check bool) "round trips" true (Serve.Json.of_string text = v)

let test_json_floats_plain () =
  (* cram scripts extract floats with sed: no exponents allowed *)
  let text = Serve.Json.to_string (Serve.Json.Float 1.5e-5) in
  Alcotest.(check string) "fixed-point" "0.000015" text;
  Alcotest.(check bool) "no exponent" false (String.contains text 'e')

let test_json_rejects_malformed () =
  let rejected s =
    match Serve.Json.of_string s with
    | exception Serve.Json.Parse_error _ -> true
    | _ -> false
  in
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "rejects %S" s) true (rejected s))
    [
      "";
      "{";
      "{\"a\":}";
      "[1,]";
      "\"unterminated";
      "{\"a\":1} trailing";
      "nulle";
      "{'single':1}";
    ]

(* --- protocol ------------------------------------------------------------------- *)

let requests =
  [
    Serve.Protocol.Submit
      {
        spec = Serve.Protocol.Path "spec.blif";
        impl = Serve.Protocol.Aag "aag 0 0 0 0 0\n";
        opts = { Serve.Protocol.default_opts with engine = "sat"; induction = 2; deadline = 1.5 };
        watch = true;
      };
    Serve.Protocol.Submit
      {
        spec = Serve.Protocol.Path "spec.blif";
        impl = Serve.Protocol.Path "impl.aag";
        opts = { Serve.Protocol.default_opts with engine = "sat"; incremental = false };
        watch = false;
      };
    Serve.Protocol.Status "job-1";
    Serve.Protocol.Result { job = "job-2"; wait = true };
    Serve.Protocol.Cancel "job-3";
    Serve.Protocol.Stats;
    Serve.Protocol.Shutdown;
  ]

let sample_outcome =
  {
    Serve.Protocol.verdict = "not_equivalent";
    frame = 1;
    trace = [ "010"; "111" ];
    cached = true;
    runtime = 0.25;
    queue_wait = 0.125;
    resumed_iterations = 3;
    iterations = 7;
    classes = 11;
    sat_calls = 13;
    conflicts = 17;
    propagations = 19_000;
    restarts = 2;
    reused_clauses = 23;
    shared_clauses = 5;
    spec_rounds = 2;
    spec_merges = 29;
    refuted_assumptions = 3;
    spec_by_sim = 1;
    spec_by_bdd = 4;
    spec_by_sat = 6;
    eq_pct = 87.5;
    cert = Some "cache/x/cert";
    reason = Some "because";
  }

let responses =
  [
    Serve.Protocol.Submitted { job = "job-1"; cached = false };
    Serve.Protocol.Job_status { job = "job-1"; state = "queued"; queue_pos = 2 };
    Serve.Protocol.Progress
      { job = "job-1"; round = 1; iteration = 4; classes = 9; engine = "sat-k2" };
    Serve.Protocol.Job_result { job = "job-1"; outcome = sample_outcome };
    Serve.Protocol.Job_result
      {
        job = "job-2";
        outcome =
          {
            sample_outcome with
            Serve.Protocol.verdict = "equivalent";
            frame = -1;
            trace = [];
            cert = None;
            reason = None;
          };
      };
    Serve.Protocol.Cancelled { job = "job-1"; state = "cancelling" };
    Serve.Protocol.Stats_report
      {
        Serve.Protocol.uptime = 12.5;
        jobs_submitted = 4;
        jobs_done = 2;
        jobs_cached = 1;
        jobs_cancelled = 1;
        queue_len = 1;
        running = 1;
        workers = 2;
        cache_entries = 3;
        cache_hits = 1;
        cache_misses = 3;
        cache_evictions = 0;
        warm_starts = 1;
        jobs =
          [
            { Serve.Protocol.js_job = "job-1"; js_state = "done"; js_sched_wait = 0.5 };
            { Serve.Protocol.js_job = "job-2"; js_state = "running"; js_sched_wait = 0.25 };
          ];
      };
    Serve.Protocol.Bye;
    Serve.Protocol.Error_resp "queue full (64 jobs)";
  ]

let test_request_round_trip () =
  List.iter
    (fun req ->
      let line = Serve.Protocol.request_to_line req in
      Alcotest.(check bool) "one line" false (String.contains line '\n');
      match Serve.Protocol.decode_request line with
      | Ok req' -> Alcotest.(check bool) ("round trips: " ^ line) true (req = req')
      | Error msg -> Alcotest.fail (Printf.sprintf "decode of %s failed: %s" line msg))
    requests

let test_response_round_trip () =
  List.iter
    (fun resp ->
      let line = Serve.Protocol.response_to_line resp in
      Alcotest.(check bool) "one line" false (String.contains line '\n');
      match Serve.Protocol.decode_response line with
      | Ok resp' -> Alcotest.(check bool) ("round trips: " ^ line) true (resp = resp')
      | Error msg -> Alcotest.fail (Printf.sprintf "decode of %s failed: %s" line msg))
    responses

let test_protocol_rejects_malformed () =
  let rejected line =
    match Serve.Protocol.decode_request line with Ok _ -> false | Error _ -> true
  in
  List.iter
    (fun line -> Alcotest.(check bool) (Printf.sprintf "rejects %S" line) true (rejected line))
    [
      "not json at all";
      "{}";
      "{\"req\":\"frobnicate\"}";
      "{\"req\":\"submit\"}";
      "{\"req\":\"submit\",\"spec\":{},\"impl\":{\"path\":\"b\"}}";
      "{\"req\":\"submit\",\"spec\":{\"path\":\"a\",\"aag\":\"x\"},\"impl\":{\"path\":\"b\"}}";
      "{\"req\":\"status\"}";
      "{\"req\":\"result\",\"job\":42}";
      "[1,2,3]";
    ];
  match Serve.Protocol.decode_response "{\"resp\":\"nope\"}" with
  | Ok _ -> Alcotest.fail "unknown response accepted"
  | Error _ -> ()

let test_trace_strings () =
  let trace = [| [| true; false; true |]; [| false; false; true |] |] in
  let strings = Serve.Protocol.trace_to_strings trace in
  Alcotest.(check (list string)) "encoded" [ "101"; "001" ] strings;
  Alcotest.(check bool) "decodes back" true (Serve.Protocol.trace_of_strings strings = trace)

(* --- job queue ------------------------------------------------------------------- *)

let test_jobq () =
  let q = Serve.Jobq.create ~capacity:3 in
  Alcotest.(check bool) "push 1" true (Serve.Jobq.push q 1);
  Alcotest.(check bool) "push 2" true (Serve.Jobq.push q 2);
  Alcotest.(check bool) "push 3" true (Serve.Jobq.push q 3);
  Alcotest.(check bool) "bounded" false (Serve.Jobq.push q 4);
  Alcotest.(check int) "length" 3 (Serve.Jobq.length q);
  Alcotest.(check (option int)) "position" (Some 1) (Serve.Jobq.position q (fun x -> x = 2));
  Alcotest.(check bool) "remove queued" true (Serve.Jobq.remove q (fun x -> x = 2));
  Alcotest.(check bool) "remove gone" false (Serve.Jobq.remove q (fun x -> x = 2));
  Alcotest.(check (option int)) "fifo" (Some 1) (Serve.Jobq.pop q);
  Alcotest.(check (option int)) "fifo skips removed" (Some 3) (Serve.Jobq.pop q);
  Alcotest.(check bool) "push after drain" true (Serve.Jobq.push q 5);
  Serve.Jobq.close q;
  Alcotest.(check bool) "closed refuses" false (Serve.Jobq.push q 6);
  Alcotest.(check (option int)) "drains after close" (Some 5) (Serve.Jobq.pop q);
  Alcotest.(check (option int)) "empty after close" None (Serve.Jobq.pop q)

let test_jobq_blocking_pop () =
  let q = Serve.Jobq.create ~capacity:4 in
  let consumer = Domain.spawn (fun () -> Serve.Jobq.pop q) in
  (* the consumer blocks until the producer pushes *)
  Unix.sleepf 0.05;
  Alcotest.(check bool) "push wakes consumer" true (Serve.Jobq.push q 7);
  Alcotest.(check (option int)) "consumer got it" (Some 7) (Domain.join consumer)

(* --- cache ------------------------------------------------------------------------ *)

let entry ?(verdict = "equivalent") ?(iterations = 5) () =
  {
    Serve.Cache.v_verdict = verdict;
    v_frame = (if verdict = "not_equivalent" then 1 else -1);
    v_trace = (if verdict = "not_equivalent" then [ "01"; "10" ] else []);
    v_iterations = iterations;
    v_classes = 4;
    v_sat_calls = 9;
    v_eq_pct = 75.0;
    v_cert = None;
  }

let digest_of s = Digest.to_hex (Digest.string s)

let test_cache_hit_miss () =
  let dir = temp_dir () in
  let cache = Serve.Cache.create ~dir () in
  let spec_digest = digest_of "spec" and impl_digest = digest_of "impl" in
  let opts_key = Serve.Cache.options_key Serve.Protocol.default_opts in
  Alcotest.(check bool) "miss" true
    (Serve.Cache.find cache ~spec_digest ~impl_digest ~opts_key = None);
  let e = Serve.Cache.store cache ~spec_digest ~impl_digest ~opts_key (entry ()) in
  Alcotest.(check bool) "hit" true
    (Serve.Cache.find cache ~spec_digest ~impl_digest ~opts_key = Some e);
  (* a different option set is a different key *)
  let opts_key' =
    Serve.Cache.options_key { Serve.Protocol.default_opts with engine = "sat" }
  in
  Alcotest.(check bool) "other options miss" true
    (Serve.Cache.find cache ~spec_digest ~impl_digest ~opts_key:opts_key' = None);
  (* the deadline is not part of the key: conclusive verdicts are
     budget-independent *)
  Alcotest.(check string) "deadline-free key" opts_key
    (Serve.Cache.options_key { Serve.Protocol.default_opts with deadline = 42.0 });
  (* a fresh instance over the same directory answers from disk *)
  let cache2 = Serve.Cache.create ~dir () in
  (match Serve.Cache.find cache2 ~spec_digest ~impl_digest ~opts_key with
  | Some e' -> Alcotest.(check bool) "persisted entry equal" true (e = e')
  | None -> Alcotest.fail "entry did not survive a restart");
  let s = Serve.Cache.stats cache in
  Alcotest.(check int) "hits" 1 s.Serve.Cache.hits;
  Alcotest.(check int) "misses" 2 s.Serve.Cache.misses

let test_cache_not_equivalent_trace () =
  let dir = temp_dir () in
  let cache = Serve.Cache.create ~dir () in
  let spec_digest = digest_of "s" and impl_digest = digest_of "i" in
  let opts_key = Serve.Cache.options_key Serve.Protocol.default_opts in
  let e =
    Serve.Cache.store cache ~spec_digest ~impl_digest ~opts_key (entry ~verdict:"not_equivalent" ())
  in
  let fresh = Serve.Cache.create ~dir () in
  match Serve.Cache.find fresh ~spec_digest ~impl_digest ~opts_key with
  | Some e' ->
    Alcotest.(check string) "verdict" "not_equivalent" e'.Serve.Cache.v_verdict;
    Alcotest.(check int) "frame" e.Serve.Cache.v_frame e'.Serve.Cache.v_frame;
    Alcotest.(check (list string)) "trace" e.Serve.Cache.v_trace e'.Serve.Cache.v_trace
  | None -> Alcotest.fail "trace entry did not persist"

let test_cache_eviction () =
  let dir = temp_dir () in
  let cache = Serve.Cache.create ~capacity:2 ~dir () in
  let opts_key = Serve.Cache.options_key Serve.Protocol.default_opts in
  let digests i = (digest_of (Printf.sprintf "spec%d" i), digest_of (Printf.sprintf "impl%d" i)) in
  List.iter
    (fun i ->
      let spec_digest, impl_digest = digests i in
      ignore (Serve.Cache.store cache ~spec_digest ~impl_digest ~opts_key (entry ~iterations:i ())))
    [ 1; 2; 3 ];
  let s = Serve.Cache.stats cache in
  Alcotest.(check int) "capacity bound" 2 s.Serve.Cache.entries;
  Alcotest.(check int) "one eviction" 1 s.Serve.Cache.evictions;
  (* the evicted entry is gone from memory but still answered from disk *)
  let spec_digest, impl_digest = digests 1 in
  match Serve.Cache.find cache ~spec_digest ~impl_digest ~opts_key with
  | Some e -> Alcotest.(check int) "reloaded from disk" 1 e.Serve.Cache.v_iterations
  | None -> Alcotest.fail "evicted entry lost entirely"

(* Warm-start probe over real checkpoints from an interrupted run. *)
let test_cache_best_checkpoint () =
  let spec, impl = suite_pair "ctr16" in
  let interrupted max_iterations =
    let options =
      {
        Scorr.default_options with
        Scorr.Verify.engine = Scorr.Verify.Sat_engine;
        max_iterations;
        use_retime = false;
      }
    in
    let run = Scorr.Verify.run_with_relation ~options spec impl in
    match Scorr.Verify.checkpoint_of_run ~options ~spec ~impl run with
    | Ok cp -> cp
    | Error msg -> Alcotest.fail ("no checkpoint: " ^ msg)
  in
  let cp1 = interrupted 1 and cp2 = interrupted 2 in
  let dir = temp_dir () in
  let cache = Serve.Cache.create ~dir () in
  let spec_digest = cp2.Scorr.Checkpoint.spec_digest
  and impl_digest = cp2.Scorr.Checkpoint.impl_digest in
  Serve.Cache.store_checkpoint cache ~spec_digest ~impl_digest
    ~opts_key:(Serve.Cache.options_key Serve.Protocol.default_opts)
    cp1;
  Serve.Cache.store_checkpoint cache ~spec_digest ~impl_digest
    ~opts_key:(Serve.Cache.options_key { Serve.Protocol.default_opts with engine = "sat" })
    cp2;
  let seed = cp2.Scorr.Checkpoint.seed in
  (match
     Serve.Cache.best_checkpoint cache ~spec_digest ~impl_digest ~candidates:"all" ~induction:1
       ~seed
   with
  | Some cp ->
    Alcotest.(check int) "most refined wins" cp2.Scorr.Checkpoint.iterations
      cp.Scorr.Checkpoint.iterations
  | None -> Alcotest.fail "no compatible checkpoint found");
  (* a different seed normalizes polarities differently: refused *)
  Alcotest.(check bool) "seed mismatch refused" true
    (Serve.Cache.best_checkpoint cache ~spec_digest ~impl_digest ~candidates:"all" ~induction:1
       ~seed:(seed + 1)
    = None);
  (* a deeper run cannot be seeded by these depth-1 checkpoints *)
  Alcotest.(check bool) "deeper run refused" true
    (Serve.Cache.best_checkpoint cache ~spec_digest ~impl_digest ~candidates:"all" ~induction:2
       ~seed
    = None);
  (* a different pair never matches *)
  Alcotest.(check bool) "other pair refused" true
    (Serve.Cache.best_checkpoint cache ~spec_digest:(digest_of "other") ~impl_digest
       ~candidates:"all" ~induction:1 ~seed
    = None)

(* --- daemon end to end ------------------------------------------------------------ *)

let aag aig = Serve.Protocol.Aag (Aig.Aiger.to_string aig)

let rec connect_retry path tries =
  match Serve.Client.connect ~socket:path () with
  | client -> client
  | exception Serve.Client.Error _ when tries > 0 ->
    Unix.sleepf 0.05;
    connect_retry path (tries - 1)

let with_daemon ?(workers = 2) f =
  let dir = temp_dir () in
  let socket = Filename.concat dir "d.sock" in
  let cfg =
    {
      Serve.Daemon.default_config with
      Serve.Daemon.socket_path = socket;
      workers;
      cache_dir = Filename.concat dir "cache";
    }
  in
  let daemon = Domain.spawn (fun () -> Serve.Daemon.run cfg) in
  Fun.protect
    ~finally:(fun () ->
      (try
         let c = connect_retry socket 2 in
         ignore (Serve.Client.request c Serve.Protocol.Shutdown);
         Serve.Client.close c
       with _ -> ());
      ignore (Domain.join daemon))
    (fun () ->
      let client = connect_retry socket 100 in
      Fun.protect ~finally:(fun () -> Serve.Client.close client) (fun () -> f ~socket ~client))

let submit client spec impl opts =
  snd (Serve.Client.submit_and_wait client ~spec:(aag spec) ~impl:(aag impl) ~opts ())

let test_daemon_end_to_end () =
  with_daemon (fun ~socket ~client ->
      let spec, impl = suite_pair "ctr8" in
      let opts = Serve.Protocol.default_opts in
      let progress = ref 0 in
      let _, o1 =
        Serve.Client.submit_and_wait
          ~on_progress:(fun ~round:_ ~iteration:_ ~classes:_ ~engine:_ -> incr progress)
          client ~spec:(aag spec) ~impl:(aag impl) ~opts ()
      in
      Alcotest.(check string) "verdict" "equivalent" o1.Serve.Protocol.verdict;
      Alcotest.(check bool) "first run not cached" false o1.Serve.Protocol.cached;
      Alcotest.(check bool) "progress streamed" true (!progress > 0);
      (* the persisted certificate validates independently *)
      (match o1.Serve.Protocol.cert with
      | None -> Alcotest.fail "no certificate persisted"
      | Some path ->
        let cert = Cert.Certificate.parse_file path in
        Alcotest.(check bool) "cert fingerprints" true
          (Cert.Certificate.matches_digests
             ~spec_digest:(Scorr.Checkpoint.fingerprint spec)
             ~impl_digest:(Scorr.Checkpoint.fingerprint impl)
             cert);
        (match Cert.Certificate.check ~spec ~impl cert with
        | Ok () -> ()
        | Error e -> Alcotest.fail (Cert.Certificate.explain_check_error e)));
      (* exact resubmission: cache hit with the identical verdict *)
      let o2 = submit client spec impl opts in
      Alcotest.(check bool) "second run cached" true o2.Serve.Protocol.cached;
      Alcotest.(check string) "same verdict" o1.Serve.Protocol.verdict o2.Serve.Protocol.verdict;
      Alcotest.(check int) "same iterations" o1.Serve.Protocol.iterations
        o2.Serve.Protocol.iterations;
      (* modified options over the same pair: a miss, but warm-started
         from the first run's checkpoint *)
      let o3 = submit client spec impl { opts with Serve.Protocol.engine = "sat" } in
      Alcotest.(check bool) "sat run not cached" false o3.Serve.Protocol.cached;
      Alcotest.(check string) "sat verdict" "equivalent" o3.Serve.Protocol.verdict;
      Alcotest.(check bool) "warm started" true (o3.Serve.Protocol.resumed_iterations > 0);
      (* a refuted pair caches its frame and trace *)
      let nspec, nimpl = inequivalent_pair () in
      let o4 = submit client nspec nimpl opts in
      Alcotest.(check string) "refuted" "not_equivalent" o4.Serve.Protocol.verdict;
      Alcotest.(check bool) "has frame" true (o4.Serve.Protocol.frame >= 0);
      Alcotest.(check bool) "has trace" true (o4.Serve.Protocol.trace <> []);
      let o5 = submit client nspec nimpl opts in
      Alcotest.(check bool) "refutation cached" true o5.Serve.Protocol.cached;
      Alcotest.(check int) "same frame" o4.Serve.Protocol.frame o5.Serve.Protocol.frame;
      Alcotest.(check (list string)) "same trace" o4.Serve.Protocol.trace o5.Serve.Protocol.trace;
      (* stats: counters and the per-job sched_wait list *)
      (match Serve.Client.request client Serve.Protocol.Stats with
      | Serve.Protocol.Stats_report s ->
        Alcotest.(check int) "submitted" 5 s.Serve.Protocol.jobs_submitted;
        Alcotest.(check int) "cached" 2 s.Serve.Protocol.jobs_cached;
        Alcotest.(check int) "warm starts" 1 s.Serve.Protocol.warm_starts;
        Alcotest.(check int) "per-job stats" 5 (List.length s.Serve.Protocol.jobs);
        List.iter
          (fun j ->
            Alcotest.(check string) ("done: " ^ j.Serve.Protocol.js_job) "done"
              j.Serve.Protocol.js_state;
            Alcotest.(check bool) "sched wait sane" true (j.Serve.Protocol.js_sched_wait >= 0.0))
          s.Serve.Protocol.jobs
      | _ -> Alcotest.fail "no stats report");
      (* unknown job ids are protocol errors, not crashes *)
      (match Serve.Client.request client (Serve.Protocol.Status "job-99") with
      | Serve.Protocol.Error_resp _ -> ()
      | _ -> Alcotest.fail "unknown job accepted");
      Alcotest.(check bool) "socket live" true (Sys.file_exists socket));
  ()

let test_daemon_cancel_queued () =
  (* one worker: the first (slow) job occupies it, the second sits in
     the queue and is cancelled before it ever starts *)
  with_daemon ~workers:1 (fun ~socket:_ ~client ->
      let slow_spec, slow_impl = suite_pair "ctr16" in
      let quick_spec, quick_impl = suite_pair "ctr8" in
      Serve.Client.send client
        (Serve.Protocol.Submit
           { spec = aag slow_spec; impl = aag slow_impl; opts = Serve.Protocol.default_opts; watch = false });
      Serve.Client.send client
        (Serve.Protocol.Submit
           { spec = aag quick_spec; impl = aag quick_impl; opts = Serve.Protocol.default_opts; watch = false });
      let job1 =
        match Serve.Client.next client with
        | Serve.Protocol.Submitted { job; cached = false } -> job
        | _ -> Alcotest.fail "first submission not accepted"
      in
      let job2 =
        match Serve.Client.next client with
        | Serve.Protocol.Submitted { job; cached = false } -> job
        | _ -> Alcotest.fail "second submission not accepted"
      in
      (match Serve.Client.request client (Serve.Protocol.Cancel job2) with
      | Serve.Protocol.Cancelled _ -> ()
      | _ -> Alcotest.fail "cancel refused");
      (match Serve.Client.request client (Serve.Protocol.Result { job = job2; wait = true }) with
      | Serve.Protocol.Job_result { outcome; _ } ->
        Alcotest.(check string) "cancelled verdict" "cancelled" outcome.Serve.Protocol.verdict
      | _ -> Alcotest.fail "no result for the cancelled job");
      (* the slow job is unaffected *)
      match Serve.Client.request client (Serve.Protocol.Result { job = job1; wait = true }) with
      | Serve.Protocol.Job_result { outcome; _ } ->
        Alcotest.(check string) "slow job completes" "equivalent" outcome.Serve.Protocol.verdict
      | _ -> Alcotest.fail "no result for the slow job")

(* The qcheck property: for random circuit pairs, the daemon's verdict
   equals a fresh in-process run's, the resubmission returns the same
   verdict, and conclusive verdicts come back cached. *)
let test_cached_equals_fresh () =
  with_daemon (fun ~socket:_ ~client ->
      let prop seed =
        let spec, impl = aig_pair ~n_latches:4 ~n_gates:15 seed in
        let opts = Serve.Protocol.default_opts in
        (* mirror the daemon's option mapping for the same protocol opts *)
        let fresh_options =
          {
            Scorr.default_options with
            Scorr.Verify.engine = Scorr.Verify.Bdd_engine;
            sat_unroll = max 1 opts.Serve.Protocol.induction;
            seed = opts.Serve.Protocol.seed;
            use_analysis = opts.Serve.Protocol.analysis;
            deadline_seconds = opts.Serve.Protocol.deadline;
            preflight = false;
            jobs = 1;
          }
        in
        let fresh =
          match Scorr.check ~options:fresh_options spec impl with
          | Scorr.Equivalent _ -> "equivalent"
          | Scorr.Not_equivalent _ -> "not_equivalent"
          | Scorr.Unknown _ -> "unknown"
        in
        let o1 = submit client spec impl opts in
        let o2 = submit client spec impl opts in
        String.equal o1.Serve.Protocol.verdict fresh
        && String.equal o2.Serve.Protocol.verdict fresh
        && o2.Serve.Protocol.cached = (fresh <> "unknown")
      in
      QCheck.Test.check_exn
        (QCheck.Test.make ~count:8 ~name:"daemon verdict = fresh verdict (and caches)"
           QCheck.(int_range 0 9999)
           prop))

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "floats are plain" `Quick test_json_floats_plain;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects_malformed;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request round trip" `Quick test_request_round_trip;
          Alcotest.test_case "response round trip" `Quick test_response_round_trip;
          Alcotest.test_case "rejects malformed lines" `Quick test_protocol_rejects_malformed;
          Alcotest.test_case "trace bit strings" `Quick test_trace_strings;
        ] );
      ( "jobq",
        [
          Alcotest.test_case "fifo, bounds, remove, close" `Quick test_jobq;
          Alcotest.test_case "blocking pop" `Quick test_jobq_blocking_pop;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit, miss, persistence" `Quick test_cache_hit_miss;
          Alcotest.test_case "refutation entries" `Quick test_cache_not_equivalent_trace;
          Alcotest.test_case "lru eviction" `Quick test_cache_eviction;
          Alcotest.test_case "warm-start probe" `Quick test_cache_best_checkpoint;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "end to end" `Slow test_daemon_end_to_end;
          Alcotest.test_case "cancel a queued job" `Slow test_daemon_cancel_queued;
          Alcotest.test_case "cached = fresh (qcheck)" `Slow test_cached_equals_fresh;
        ] );
    ]
