(* Lint tests: every rule with a seeded-defect (positive) and a clean
   (negative) case, the lenient parser recovery paths, the ternary
   stuck-latch facts, the renderers/exit codes and the preflight gating
   of the verification pipeline. *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let rules diags = List.sort_uniq compare (List.map (fun d -> d.Netlist.Diag.rule) diags)
let has_rule rule diags = List.exists (fun d -> d.Netlist.Diag.rule = rule) diags

let net_names diags rule =
  List.concat_map
    (fun d ->
      if d.Netlist.Diag.rule = rule then
        List.filter_map (fun (_, name) -> name) d.Netlist.Diag.nets
      else [])
    diags

(* a clean reference circuit: 4-bit counter *)
let clean_counter () = Circuits.Suite.(match find "ctr8" with Some e -> e.build () | None -> assert false)

let check_clean name c =
  let diags = Netlist.Check.run c in
  Alcotest.(check (list string)) (name ^ " clean") [] (rules diags)

(* --- netlist rules: positive + negative ----------------------------------- *)

let test_multiply_driven () =
  let c =
    Netlist.Blif.parse_string ~lenient:true
      ".model m\n.inputs a b\n.outputs f\n.names a f\n1 1\n.names b f\n1 1\n.end\n"
  in
  let diags = Netlist.Check.run c in
  Alcotest.(check bool) "fires" true (has_rule "multiply-driven" diags);
  Alcotest.(check (list string)) "names f" [ "f"; "f" ] (net_names diags "multiply-driven");
  (* strict mode rejects the same text *)
  (match
     Netlist.Blif.parse_string
       ".model m\n.inputs a b\n.outputs f\n.names a f\n1 1\n.names b f\n1 1\n.end\n"
   with
  | exception Netlist.Blif.Parse_error msg ->
    Alcotest.(check bool) "strict names signal" true
      (String.length msg > 0
      && contains msg "multiple drivers" && contains msg "f")
  | _ -> Alcotest.fail "strict parse should reject duplicate drivers");
  check_clean "counter" (clean_counter ())

and test_undriven () =
  let c =
    Netlist.Blif.parse_string ~lenient:true
      ".model m\n.inputs a\n.outputs f\n.names a ghost f\n11 1\n.end\n"
  in
  let diags = Netlist.Check.run c in
  Alcotest.(check bool) "fires" true (has_rule "undriven-net" diags);
  Alcotest.(check (list string)) "names ghost" [ "ghost" ] (net_names diags "undriven-net");
  check_clean "counter" (clean_counter ())

and test_unclosed_latch () =
  let c = Netlist.create "m" in
  let q = Netlist.add_latch ~name:"q" c ~init:false in
  Netlist.add_output c "o" q;
  let diags = Netlist.Check.run c in
  Alcotest.(check bool) "fires" true (has_rule "unclosed-latch" diags);
  Alcotest.(check (list string)) "names q" [ "q" ] (net_names diags "unclosed-latch");
  (* the same defect through the lenient BLIF path (undefined data) *)
  let c2 =
    Netlist.Blif.parse_string ~lenient:true
      ".model m\n.inputs a\n.outputs q\n.latch nowhere q 0\n.end\n"
  in
  Alcotest.(check bool) "blif fires" true
    (has_rule "unclosed-latch" (Netlist.Check.run c2));
  check_clean "counter" (clean_counter ())

and test_bad_arity () =
  let c = Netlist.create "m" in
  let a = Netlist.add_input ~name:"a" c in
  let b = Netlist.add_input ~name:"b" c in
  let g = Netlist.add_gate ~name:"g" c Netlist.Buf [ a ] in
  Netlist.unsafe_set_node c g (Netlist.Gate (Netlist.Not, [| a; b |]));
  Netlist.add_output c "o" g;
  let diags = Netlist.Check.run c in
  Alcotest.(check bool) "fires" true (has_rule "bad-arity" diags);
  Alcotest.(check (list string)) "names g" [ "g" ] (net_names diags "bad-arity");
  check_clean "counter" (clean_counter ())

and test_comb_cycle () =
  let c =
    Netlist.Blif.parse_string ~lenient:true
      ".model m\n.inputs a\n.outputs x\n.names y a x\n11 1\n.names x a y\n11 1\n.end\n"
  in
  let diags = Netlist.Check.run c in
  Alcotest.(check bool) "fires" true (has_rule "comb-cycle" diags);
  let witness =
    List.find (fun d -> d.Netlist.Diag.rule = "comb-cycle") diags
  in
  (* the message carries an explicit cycle path "... -> ..." *)
  Alcotest.(check bool) "witness path" true (contains witness.Netlist.Diag.message " -> ");
  (match Netlist.Blif.parse_string ".model m\n.inputs a\n.outputs x\n.names y a x\n11 1\n.names x a y\n11 1\n.end\n" with
  | exception Netlist.Blif.Parse_error _ -> ()
  | _ -> Alcotest.fail "strict parse should reject the cycle");
  check_clean "counter" (clean_counter ())

and test_output_collision () =
  let c = Netlist.create "m" in
  let a = Netlist.add_input ~name:"a" c in
  let b = Netlist.add_input ~name:"b" c in
  Netlist.add_output c "o" a;
  Netlist.add_output c "o" b;
  let diags = Netlist.Check.run c in
  Alcotest.(check bool) "error on distinct nets" true
    (List.exists
       (fun d -> d.Netlist.Diag.rule = "output-collision" && d.Netlist.Diag.severity = Netlist.Diag.Error)
       diags);
  let c2 = Netlist.create "m" in
  let a2 = Netlist.add_input ~name:"a" c2 in
  Netlist.add_output c2 "o" a2;
  Netlist.add_output c2 "o" a2;
  let diags2 = Netlist.Check.run c2 in
  Alcotest.(check bool) "warning on repeated listing" true
    (List.exists
       (fun d -> d.Netlist.Diag.rule = "output-collision" && d.Netlist.Diag.severity = Netlist.Diag.Warning)
       diags2);
  check_clean "counter" (clean_counter ())

and test_dead_and_unused () =
  let c = Netlist.create "m" in
  let a = Netlist.add_input ~name:"a" c in
  let b = Netlist.add_input ~name:"b" c in
  let live = Netlist.add_gate ~name:"live" c Netlist.Buf [ a ] in
  let _dead = Netlist.add_gate ~name:"dead" c Netlist.And [ a; b ] in
  Netlist.add_output c "o" live;
  let diags = Netlist.Check.run c in
  Alcotest.(check (list string)) "dead gate" [ "dead" ] (net_names diags "dead-net");
  Alcotest.(check (list string)) "unused input" [ "b" ] (net_names diags "unused-input");
  check_clean "counter" (clean_counter ())

and test_const_gate () =
  let c = Netlist.create "m" in
  let a = Netlist.add_input ~name:"a" c in
  let zero = Netlist.const0 c in
  let g = Netlist.add_gate ~name:"g" c Netlist.And [ a; zero ] in
  Netlist.add_output c "o" g;
  let diags = Netlist.Check.run c in
  Alcotest.(check (list string)) "foldable" [ "g" ] (net_names diags "const-gate");
  check_clean "counter" (clean_counter ())

and test_stuck_latch_rule () =
  (* q holds its own value from init 0: stuck at 0.  t toggles. *)
  let c = Netlist.create "m" in
  let q = Netlist.add_latch ~name:"q" c ~init:false in
  Netlist.set_latch_data c q ~data:q;
  let t = Netlist.add_latch ~name:"t" c ~init:false in
  Netlist.set_latch_data c t ~data:(Netlist.bnot c t);
  Netlist.add_output c "o" (Netlist.bxor c q t);
  let diags = Netlist.Check.run c in
  Alcotest.(check (list string)) "stuck q only" [ "q" ] (net_names diags "stuck-latch")

(* --- ternary simulation ----------------------------------------------------- *)

let test_ternary_facts () =
  let c = Netlist.create "m" in
  let en = Netlist.add_input ~name:"en" c in
  (* r: reset-style register fed by (en and r): stays 0 from init 0 *)
  let r = Netlist.add_latch ~name:"r" c ~init:false in
  Netlist.set_latch_data c r ~data:(Netlist.band c en r);
  (* f: free register fed by the input: X after one frame *)
  let f = Netlist.add_latch ~name:"f" c ~init:true in
  Netlist.set_latch_data c f ~data:en;
  Netlist.add_output c "o" (Netlist.bxor c r f);
  let facts = Netlist.Ternary.stuck_latches c in
  Alcotest.(check (list (pair int bool))) "r stuck at 0" [ (r, false) ] facts;
  (* inductive pruning: a pair of registers swapping 0/1 values is NOT
     stuck even though each is definite on every visited frame *)
  let c2 = Netlist.create "m2" in
  let x = Netlist.add_latch ~name:"x" c2 ~init:false in
  let y = Netlist.add_latch ~name:"y" c2 ~init:true in
  Netlist.set_latch_data c2 x ~data:y;
  Netlist.set_latch_data c2 y ~data:x;
  Netlist.add_output c2 "o" (Netlist.bxor c2 x y);
  Alcotest.(check (list (pair int bool))) "swap not stuck" [] (Netlist.Ternary.stuck_latches c2)

let test_aig_ternary_signatures () =
  let aig = Aig.create () in
  let pi = Aig.add_pi aig in
  let stuck = Aig.add_latch aig ~init:false in
  Aig.set_latch_next aig stuck ~next:stuck;
  let toggle = Aig.add_latch aig ~init:false in
  Aig.set_latch_next aig toggle ~next:(Aig.lit_not toggle);
  let free = Aig.add_latch aig ~init:false in
  Aig.set_latch_next aig free ~next:pi;
  Aig.add_po aig "o" stuck;
  let sigs = Lint.Aig_ternary.signatures ~max_steps:8 aig in
  let sig_of lit = sigs.(Aig.node_of_lit lit) in
  (* the stuck latch is definite 0 on both visited frames (0 and 0 -> the
     walk stops when the all-same state repeats) *)
  let m_stuck, v_stuck = sig_of stuck in
  Alcotest.(check bool) "stuck definite" true (m_stuck land 1 = 1);
  Alcotest.(check int) "stuck value 0" 0 (v_stuck land m_stuck);
  (* the toggling latch alternates 0,1,... *)
  let m_tog, v_tog = sig_of toggle in
  Alcotest.(check bool) "toggle frame0+1 definite" true (m_tog land 3 = 3);
  Alcotest.(check int) "toggle values 0,1" 2 (v_tog land 3);
  (* the input-fed latch is definite only on the initial frame *)
  let m_free, _ = sig_of free in
  Alcotest.(check int) "free mask init only" 1 m_free;
  (* stuck-latch facts agree *)
  Alcotest.(check (list (pair int bool))) "facts" [ (0, false) ]
    (Lint.Aig_ternary.stuck_latches aig)

(* --- AIG rules --------------------------------------------------------------- *)

let test_aig_rules () =
  (* unclosed latch *)
  let a1 = Aig.create () in
  let l = Aig.add_latch a1 ~init:false in
  Aig.add_po a1 "o" l;
  Alcotest.(check bool) "unclosed fires" true (has_rule "unclosed-latch" (Lint.check_aig a1));
  (* dangling literal through an out-of-range next-state *)
  let a2 = Aig.create () in
  let l2 = Aig.add_latch a2 ~init:false in
  Aig.set_latch_next a2 l2 ~next:9999;
  Aig.add_po a2 "o" l2;
  Alcotest.(check bool) "dangling fires" true (has_rule "dangling-literal" (Lint.check_aig a2));
  (* constant output and a dead AND node *)
  let a3 = Aig.create () in
  let pi = Aig.add_pi a3 in
  let pi2 = Aig.add_pi a3 in
  let _dead = Aig.mk_and a3 pi pi2 in
  Aig.add_po a3 "o" Aig.lit_true;
  let diags = Lint.check_aig a3 in
  Alcotest.(check bool) "const-output fires" true (has_rule "const-output" diags);
  Alcotest.(check bool) "dead-node fires" true (has_rule "dead-node" diags);
  (* stuck latch *)
  let a4 = Aig.create () in
  let pi4 = Aig.add_pi a4 in
  let l4 = Aig.add_latch a4 ~init:false in
  Aig.set_latch_next a4 l4 ~next:(Aig.mk_and a4 l4 pi4);
  Aig.add_po a4 "o" l4;
  Alcotest.(check bool) "stuck fires" true (has_rule "stuck-latch" (Lint.check_aig a4));
  (* a clean AIG from a clean circuit *)
  let aig, _ = Aig.of_netlist (clean_counter ()) in
  Alcotest.(check (list string)) "clean" [] (rules (Lint.check_aig aig))

(* --- validate: all errors, not the first -------------------------------------- *)

let test_validate_reports_all () =
  let c =
    Netlist.Blif.parse_string ~lenient:true
      ".model m\n.inputs a\n.outputs f\n.latch nowhere q 0\n.names a f\n1 1\n.names q f\n1 1\n.end\n"
  in
  match Netlist.validate c with
  | Ok () -> Alcotest.fail "should be invalid"
  | Error msg ->
    Alcotest.(check bool) "mentions multiply-driven" true (contains msg "multiply-driven");
    Alcotest.(check bool) "mentions unclosed-latch" true (contains msg "unclosed-latch")

(* --- renderers and exit codes -------------------------------------------------- *)

let test_render_and_json () =
  let d1 = Netlist.Diag.make ~nets:[ (3, Some "f\"oo") ] "r1" Netlist.Diag.Error "broken \"here\"" in
  let d2 = Netlist.Diag.make "r2" Netlist.Diag.Warning "meh" in
  let human = Lint.render ~subject:"t" [ d1; d2 ] in
  Alcotest.(check bool) "summary" true (contains human "1 error(s), 1 warning(s)");
  Alcotest.(check bool) "lists rule" true (contains human "error[r1]");
  let json = Lint.to_json ~subject:"t" [ d1; d2 ] in
  Alcotest.(check bool) "escapes quotes" true (contains json {|broken \"here\"|});
  Alcotest.(check bool) "net name escaped" true (contains json {|"name":"f\"oo"|});
  Alcotest.(check bool) "severity written" true (contains json {|"severity":"warning"|});
  Alcotest.(check string) "clean render" "t: clean\n" (Lint.render ~subject:"t" []);
  (* exit-code policy *)
  Alcotest.(check int) "non-strict always 0" 0 (Lint.exit_code ~strict:false [ d1 ]);
  Alcotest.(check int) "strict errors 2" 2 (Lint.exit_code ~strict:true [ d1; d2 ]);
  Alcotest.(check int) "strict warnings 1" 1 (Lint.exit_code ~strict:true [ d2 ]);
  Alcotest.(check int) "strict clean 0" 0 (Lint.exit_code ~strict:true []);
  let info = Netlist.Diag.make "r3" Netlist.Diag.Info "fyi" in
  Alcotest.(check int) "strict info 0" 0 (Lint.exit_code ~strict:true [ info ])

(* --- preflight gating of the verifier ------------------------------------------- *)

let test_preflight_rejects () =
  let good, _ = Aig.of_netlist (clean_counter ()) in
  let bad = Aig.create () in
  let _pi = Aig.add_pi bad in
  let l = Aig.add_latch bad ~init:false in
  ignore l;
  (* mirror the good interface: same PI count, an output of the same name *)
  Aig.add_po bad "carry" Aig.lit_false;
  match Scorr.check good bad with
  | exception Lint.Rejected report ->
    Alcotest.(check bool) "report names the rule" true (contains report "unclosed-latch")
  | _ -> Alcotest.fail "preflight should reject the unclosed latch"

let test_preflight_can_be_disabled () =
  (* with preflight off nothing raises; the verifier still answers on two
     clean circuits *)
  let aig, _ = Aig.of_netlist (clean_counter ()) in
  let options = { Scorr.default_options with Scorr.Verify.preflight = false } in
  match Scorr.check ~options aig aig with
  | Scorr.Equivalent _ -> ()
  | _ -> Alcotest.fail "self-equivalence expected"

(* --- ternary seeding of the partition -------------------------------------------- *)

let test_ternseed_refine () =
  (* two circuits whose registers the ternary walk distinguishes: a stuck
     register vs a toggling one, same interface *)
  let mk toggling =
    let aig = Aig.create () in
    let _pi = Aig.add_pi aig in
    let l = Aig.add_latch aig ~init:false in
    Aig.set_latch_next aig l ~next:(if toggling then Aig.lit_not l else l);
    Aig.add_po aig "o" Aig.lit_false;
    aig
  in
  let product = Scorr.Product.make (mk false) (mk true) in
  let aig = product.Scorr.Product.aig in
  let pol = Scorr.Product.reference_values ~seed:1 product in
  let partition =
    Scorr.Partition.create ~n_nodes:(Aig.num_nodes aig)
      ~candidates:(Scorr.Product.candidate_nodes product) ~pol
  in
  let splits = Scorr.Ternseed.refine product partition in
  Alcotest.(check bool) "split happened" true (splits > 0);
  (* the stuck (spec) and toggling (impl) latch must now be apart *)
  let spec_l = Aig.latch_node aig 0 and impl_l = Aig.latch_node aig 1 in
  Alcotest.(check bool) "latches separated" false
    (Scorr.Partition.class_of partition spec_l = Scorr.Partition.class_of partition impl_l);
  Alcotest.(check (list (pair int bool))) "stuck constant known" [ (0, false) ]
    (Scorr.Ternseed.stuck_constants product)

(* --- lenient .bench recovery ------------------------------------------------------ *)

let test_bench_lenient () =
  let text = "INPUT(a)\nOUTPUT(f)\nq = DFF(nowhere)\nf = AND(a, ghost)\nf = NOT(a)\n" in
  (match Netlist.Bench.parse_string text with
  | exception Netlist.Bench.Parse_error _ -> ()
  | _ -> Alcotest.fail "strict .bench should reject");
  let c = Netlist.Bench.parse_string ~lenient:true text in
  let diags = Netlist.Check.run c in
  Alcotest.(check bool) "multiply-driven" true (has_rule "multiply-driven" diags);
  Alcotest.(check bool) "undriven" true (has_rule "undriven-net" diags);
  Alcotest.(check bool) "unclosed" true (has_rule "unclosed-latch" diags)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "multiply-driven" `Quick test_multiply_driven;
          Alcotest.test_case "undriven-net" `Quick test_undriven;
          Alcotest.test_case "unclosed-latch" `Quick test_unclosed_latch;
          Alcotest.test_case "bad-arity" `Quick test_bad_arity;
          Alcotest.test_case "comb-cycle witness" `Quick test_comb_cycle;
          Alcotest.test_case "output-collision" `Quick test_output_collision;
          Alcotest.test_case "dead-net and unused-input" `Quick test_dead_and_unused;
          Alcotest.test_case "const-gate" `Quick test_const_gate;
          Alcotest.test_case "stuck-latch" `Quick test_stuck_latch_rule;
          Alcotest.test_case "aig rules" `Quick test_aig_rules;
        ] );
      ( "ternary",
        [
          Alcotest.test_case "netlist facts are inductive" `Quick test_ternary_facts;
          Alcotest.test_case "aig signatures" `Quick test_aig_ternary_signatures;
          Alcotest.test_case "partition seeding" `Quick test_ternseed_refine;
        ] );
      ( "surface",
        [
          Alcotest.test_case "validate reports all errors" `Quick test_validate_reports_all;
          Alcotest.test_case "render and json" `Quick test_render_and_json;
          Alcotest.test_case "preflight rejects" `Quick test_preflight_rejects;
          Alcotest.test_case "preflight off" `Quick test_preflight_can_be_disabled;
          Alcotest.test_case "lenient .bench" `Quick test_bench_lenient;
        ] );
    ]
