(* Unit tests of the work-stealing domain pool behind the parallel sweep
   scheduler: result ordering, failure propagation, stats accounting and
   lifecycle, at one lane (inline path) and several (worker domains). *)

let squares n = Array.init n (fun i -> i * i)

let test_map_ordering jobs () =
  let pool = Scorr.Parsweep.create ~jobs ~init:(fun lane -> lane) in
  let r = Scorr.Parsweep.map pool ~f:(fun _ x -> x * x) (Array.init 100 Fun.id) in
  (* a second batch reuses the same (persistent) domains *)
  let r2 = Scorr.Parsweep.map pool ~f:(fun _ x -> x * x) (Array.init 37 Fun.id) in
  Scorr.Parsweep.shutdown pool;
  Alcotest.(check (array int)) "results in task order" (squares 100) r;
  Alcotest.(check (array int)) "second batch too" (squares 37) r2

let test_empty_tasks () =
  let pool = Scorr.Parsweep.create ~jobs:3 ~init:(fun _ -> ()) in
  let r = Scorr.Parsweep.map pool ~f:(fun () _ -> Alcotest.fail "ran a task") [||] in
  Scorr.Parsweep.shutdown pool;
  Alcotest.(check int) "no results" 0 (Array.length r)

exception Boom of int

let test_exception_propagation jobs () =
  let pool = Scorr.Parsweep.create ~jobs ~init:(fun _ -> ()) in
  (* of several failing tasks the smallest index must win, so the error
     surfaced to the caller does not depend on lane scheduling *)
  (match
     Scorr.Parsweep.map pool
       ~f:(fun () i -> if i mod 7 = 3 then raise (Boom i) else i)
       (Array.init 50 Fun.id)
   with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> Alcotest.(check int) "smallest failing index" 3 i);
  (* a failed batch must not poison the pool *)
  let r = Scorr.Parsweep.map pool ~f:(fun () i -> i + 1) (Array.init 10 Fun.id) in
  Scorr.Parsweep.shutdown pool;
  Alcotest.(check (array int)) "pool reusable after failure" (Array.init 10 succ) r

let test_init_failure_propagates () =
  (* lane-state init runs lazily inside the worker; its failure must also
     reach the caller rather than wedge the batch *)
  let pool =
    Scorr.Parsweep.create ~jobs:2 ~init:(fun lane -> if lane > 0 then raise (Boom lane))
  in
  (match Scorr.Parsweep.map pool ~f:(fun _ i -> i) (Array.init 64 Fun.id) with
  | _ -> () (* a tiny task list may finish on lane 0 before lane 1 wakes *)
  | exception Boom 1 -> ());
  Scorr.Parsweep.shutdown pool

let test_stats_accounting () =
  let n = 200 in
  let pool = Scorr.Parsweep.create ~jobs:4 ~init:(fun _ -> ()) in
  ignore (Scorr.Parsweep.map pool ~f:(fun () i -> Sys.opaque_identity (i * i)) (Array.init n Fun.id));
  let s = Scorr.Parsweep.stats pool in
  Scorr.Parsweep.shutdown pool;
  Alcotest.(check int) "domains" 4 s.Scorr.Parsweep.domains;
  Alcotest.(check int) "lane count" 4 (Array.length s.lane_tasks);
  Alcotest.(check int) "every task counted exactly once" n
    (Array.fold_left ( + ) 0 s.lane_tasks);
  Alcotest.(check bool) "steal count non-negative" true (s.steals >= 0);
  Alcotest.(check bool) "wait time non-negative" true (s.wait_seconds >= 0.0)

let test_jobs_clamped () =
  let pool = Scorr.Parsweep.create ~jobs:(-3) ~init:(fun _ -> ()) in
  Alcotest.(check int) "non-positive jobs become one lane" 1
    (Scorr.Parsweep.jobs pool);
  Scorr.Parsweep.shutdown pool

let test_shutdown_lifecycle () =
  let pool = Scorr.Parsweep.create ~jobs:2 ~init:(fun _ -> ()) in
  Scorr.Parsweep.shutdown pool;
  Scorr.Parsweep.shutdown pool (* idempotent *);
  Alcotest.check_raises "map after shutdown rejected"
    (Invalid_argument "Parsweep.map: pool is shut down") (fun () ->
      ignore (Scorr.Parsweep.map pool ~f:(fun () i -> i) [| 0 |]))

let suite =
  [ Alcotest.test_case "map ordering, one lane" `Quick (test_map_ordering 1);
    Alcotest.test_case "map ordering, three lanes" `Quick (test_map_ordering 3);
    Alcotest.test_case "empty task list" `Quick test_empty_tasks;
    Alcotest.test_case "exception propagation, one lane" `Quick
      (test_exception_propagation 1);
    Alcotest.test_case "exception propagation, three lanes" `Quick
      (test_exception_propagation 3);
    Alcotest.test_case "init failure propagates" `Quick test_init_failure_propagates;
    Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
    Alcotest.test_case "jobs clamped to one" `Quick test_jobs_clamped;
    Alcotest.test_case "shutdown lifecycle" `Quick test_shutdown_lifecycle;
  ]

let () = Alcotest.run "parsweep" [ ("parsweep", suite) ]
