The lint subcommand runs the static-analysis rules over a circuit and
reports every diagnostic in one pass.  A file with a multiply-driven
signal AND a latch whose data input is never defined shows both errors
together, plus the downstream dead-logic warnings:

  $ cat > bad.blif <<'EOF'
  > .model bad
  > .inputs a b
  > .outputs f
  > .latch nowhere q 0
  > .names a b f
  > 11 1
  > .names a f
  > 0 1
  > .end
  > EOF

  $ seqver lint bad.blif
  bad.blif: 2 error(s), 2 warning(s), 1 info
    error[multiply-driven]: signal 'f' is driven by 2 distinct nets (n3, n4) [f f]
    error[unclosed-latch]: latch q has no data input (set_latch_data was never called) [q]
    warning[dead-net]: latch q feeds no output (dead state) [q]
    warning[dead-net]: gate f feeds no output (dead logic) [f]
    info[unused-input]: input b feeds no output [b]

Without --strict the exit code is 0 (report-only); with --strict the
worst severity drives the exit code: errors exit 2, warnings exit 1,
info-level findings still exit 0.

  $ seqver lint --strict bad.blif
  bad.blif: 2 error(s), 2 warning(s), 1 info
    error[multiply-driven]: signal 'f' is driven by 2 distinct nets (n3, n4) [f f]
    error[unclosed-latch]: latch q has no data input (set_latch_data was never called) [q]
    warning[dead-net]: latch q feeds no output (dead state) [q]
    warning[dead-net]: gate f feeds no output (dead logic) [f]
    info[unused-input]: input b feeds no output [b]
  [2]

  $ cat > warn.blif <<'EOF'
  > .model warn
  > .inputs a b
  > .outputs f
  > .names a f
  > 1 1
  > .names a b g
  > 11 1
  > .end
  > EOF

  $ seqver lint --strict warn.blif
  warn.blif: 0 error(s), 1 warning(s), 1 info
    warning[dead-net]: gate g feeds no output (dead logic) [g]
    info[unused-input]: input b feeds no output [b]
  [1]

--json emits one object per subject with the machine-readable schema:

  $ seqver lint --json bad.blif
  [{"subject":"bad.blif","diagnostics":[{"rule":"multiply-driven","severity":"error","message":"signal 'f' is driven by 2 distinct nets (n3, n4)","nets":[{"net":3,"name":"f"},{"net":4,"name":"f"}]},{"rule":"unclosed-latch","severity":"error","message":"latch q has no data input (set_latch_data was never called)","nets":[{"net":2,"name":"q"}]},{"rule":"dead-net","severity":"warning","message":"latch q feeds no output (dead state)","nets":[{"net":2,"name":"q"}]},{"rule":"dead-net","severity":"warning","message":"gate f feeds no output (dead logic)","nets":[{"net":4,"name":"f"}]},{"rule":"unused-input","severity":"info","message":"input b feeds no output","nets":[{"net":1,"name":"b"}]}]}]

A clean circuit reports no findings and exits 0 even under --strict:

  $ seqver gen ctr8 -o ctr8.blif
  $ seqver lint --strict ctr8.blif
  ctr8.blif: clean

Error-level findings also make `seqver verify` refuse the input during
preflight (exit 2), so defective circuits never reach the prover:

  $ seqver verify bad.blif ctr8.blif -q
  bad.blif: 2 error(s), 0 warning(s), 0 info
    error[unclosed-latch]: latch q has no data input (set_latch_data was never called) [q]
    error[multiply-driven]: signal 'f' is driven by 2 distinct nets (n3, n4) [f f]
  [2]
