The CLI lists the benchmark suite:

  $ seqver gen --list | head -4
  ctr8       8-bit binary counter
  ctr16      16-bit binary counter
  ctr32      32-bit binary counter (s838-style depth)
  gray12     12-bit Gray-output counter

Generate a circuit, optimize it, and verify the pair with every method:

  $ seqver gen ctr8 -o spec.blif
  $ seqver stats spec.blif
  aig: 2 pis, 9 pos, 8 latches, 40 ands

  $ seqver opt spec.blif impl.aag --recipe retime+opt --seed 3 > /dev/null
  $ seqver verify spec.blif impl.aag -q
  $ seqver verify spec.blif impl.aag -e sat -q
  $ seqver verify spec.blif impl.aag -e sat -j 2 -q
  $ seqver verify spec.blif impl.aag -m traversal -q

Without positional arguments the verify command needs --suite:

  $ seqver verify -q
  seqver verify: expected SPEC IMPL (or --suite)
  [2]

Register correspondence alone cannot handle the retimed circuit
(exit code 3 = unknown; 2 is reserved for usage and parse errors):

  $ seqver verify spec.blif impl.aag -m regcorr --no-retime -q
  [3]

A broken implementation is refuted (exit code 1):

  $ seqver gen mod10 -o good.blif
  $ seqver opt good.blif bad.aag --recipe retime --seed 5 > /dev/null
  $ seqver verify good.blif bad.aag -q
  $ seqver sim good.blif --frames 2 --seed 1 | head -1
  frame   0: phase0=ffffffffffffffff phase1=0 phase2=0 phase3=0 phase4=0 phase5=0 phase6=0 phase7=0 phase8=0 phase9=0

The .bench format and the portfolio method:

  $ seqver gen mod10 --format bench -o mod10.bench
  $ seqver stats mod10.bench
  aig: 1 pis, 10 pos, 4 latches, 37 ands
  $ seqver verify mod10.bench good.blif -m auto -q

Bounded model checking gives concrete traces:

  $ seqver gen ctr8 -o c8.blif
  $ seqver bmc c8.blif c8.blif --depth 5
  no difference within 6 frames
