Certificates: prove a retimed pair equivalent and export the relation,
then re-validate it with the independent checker (exit 0):

  $ seqver gen ctr8 -o spec.blif
  $ seqver opt spec.blif impl.aag --recipe retime --seed 7 > /dev/null
  $ seqver verify spec.blif impl.aag --emit-cert cert.txt -q
  $ head -7 cert.txt
  seqver-cert 1
  spec-md5 6d97f2e50f16f2f6d4094192c6966496
  impl-md5 ad791fb9c5fc69a83010b18bfa266220
  engine bdd
  candidates all
  induction 1
  retime-rounds 0
  $ seqver check-cert cert.txt spec.blif impl.aag
  certificate valid: 42 classes, 82 constraints (induction 1)

The same certificate is rejected against a different implementation
(exit 1 — the fingerprint no longer matches):

  $ seqver opt spec.blif other.aag --recipe retime+opt --seed 3 > /dev/null
  $ seqver check-cert cert.txt spec.blif other.aag -q
  certificate REJECTED: implementation fingerprint mismatch: certificate has ad791fb9c5fc69a83010b18bfa266220, circuit is a0042957c5ab6bbedeaebee6f55ff60e
  [1]

Witnesses: a refuted pair ships a replayable counterexample.  The two
circuits below differ combinationally (o = q versus o = !q):

  $ cat > a.blif << EOF
  > .model spec
  > .inputs x
  > .outputs o
  > .latch n q 0
  > .names x n
  > 1 1
  > .names q o
  > 1 1
  > .end
  > EOF
  $ sed 's/^1 1$/0 1/; s/.model spec/.model impl/' a.blif > b.blif
  $ seqver verify a.blif b.blif --emit-witness w.txt -q
  [1]
  $ cat w.txt
  seqver-witness 1
  pis 1
  frames 1
  failing-frame 0
  frame 0 1
  end

Replay confirms the mismatch by simulating both circuits (exit 0):

  $ seqver replay w.txt a.blif b.blif
  CONFIRMED: output o differs at frame 0 (spec=0 impl=1)
  witness: 1 frame(s), disproof at frame 0
    pi0            1
    spec o         0
    impl o         1

A witness that replays cleanly confirms nothing (exit 1), and one whose
PI width does not fit the circuits is diagnosed, not truncated (exit 2):

  $ seqver replay w.txt a.blif a.blif -q
  NOT CONFIRMED: replay shows no output mismatch: the witness disproves nothing
  [1]
  $ seqver replay w.txt spec.blif impl.aag -q
  seqver replay: PI vector of frame 0 has 1 bit(s) but the specification has 2 primary input(s)
  [2]

The waveform can also be rendered as a VCD:

  $ seqver replay w.txt a.blif b.blif --vcd w.vcd -q
  $ head -5 w.vcd
  $timescale 1 ns $end
  $scope module witness $end
  $var wire 1 ! pi0 $end
  $var wire 1 " spec_o $end
  $var wire 1 # impl_o $end

Certificate emission is only meaningful for the signal-correspondence
method, and refuses relations computed under reachability don't-cares
(usage errors, exit 2):

  $ seqver verify a.blif b.blif -m traversal --emit-cert x.txt
  seqver verify: --emit-cert/--emit-witness require -m scorr
  [2]
  $ seqver verify spec.blif impl.aag --dontcare --emit-cert x.txt
  seqver verify: --emit-cert is incompatible with --dontcare (a relation holding only inside the reachable care set is not self-certifying)
  [2]

Bounded model checking exports its counterexamples in the same witness
format:

  $ seqver bmc a.blif b.blif --depth 2 --emit-witness wb.txt
  NOT EQUIVALENT: outputs differ at frame 0
    t=0: 0
  witness: wb.txt (1 frames)
  [1]
  $ seqver replay wb.txt a.blif b.blif -q
