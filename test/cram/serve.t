The verification service: a daemon over a Unix socket, newline-framed
JSON requests, and a fingerprint-keyed result cache.

  $ seqver gen ctr8 -o spec.blif
  $ seqver opt spec.blif impl.aag --recipe retime+opt --seed 3 > /dev/null

Start a daemon on a private socket and wait for it to come up:

  $ seqver serve --socket d.sock --cache-dir cache > serve.log 2>&1 &
  $ SERVE_PID=$!
  $ for i in $(seq 100); do test -S d.sock && break; sleep 0.1; done

A first submission runs the verification, reports a fresh (uncached)
verdict, and persists a checkable certificate under the cache:

  $ seqver submit spec.blif impl.aag --socket d.sock --json > r1.json
  $ grep -c '"verdict":"equivalent"' r1.json
  1
  $ grep -c '"cached":false' r1.json
  1
  $ find cache -name cert | wc -l
  1

An exact resubmission is answered from the cache — same verdict, zero
re-verification, strictly less wall time:

  $ seqver submit spec.blif impl.aag --socket d.sock --json > r2.json
  $ grep -c '"cached":true' r2.json
  1
  $ grep -c '"verdict":"equivalent"' r2.json
  1
  $ R1=$(sed -n 's/.*"runtime":\([0-9.]*\).*/\1/p' r1.json)
  $ R2=$(sed -n 's/.*"runtime":\([0-9.]*\).*/\1/p' r2.json)
  $ awk -v a="$R1" -v b="$R2" 'BEGIN { exit !(b < a) }'

The same pair under modified options misses the cache (the options are
part of the key) but warm-starts from the stored checkpoint instead of
refining from scratch:

  $ seqver submit spec.blif impl.aag -e sat --socket d.sock --json > r3.json
  $ grep -c '"cached":false' r3.json
  1
  $ RES=$(sed -n 's/.*"resumed_iterations":\([0-9]*\).*/\1/p' r3.json)
  $ test "$RES" -gt 0

Unknown job ids are protocol errors, not crashes:

  $ seqver submit --cancel job-99 --socket d.sock
  seqver submit: unknown job "job-99"
  [2]

The stats report counts cache traffic and keeps a per-job record of
scheduler wait:

  $ seqver submit --stats --socket d.sock | grep -E 'submitted|warm starts'
  submitted:       3 (done 3, cached 1, cancelled 0)
  warm starts:     1
  $ seqver submit --stats --socket d.sock | grep -c sched_wait
  3

Shutdown is graceful: the daemon answers, drains, exits 0, and removes
its socket:

  $ seqver submit --shutdown --socket d.sock
  daemon shutting down
  $ wait $SERVE_PID
  $ test ! -e d.sock
