Speculative reduction: --speculate merges every candidate class onto its
representative and discharges the assumption obligations on the reduced
product through the per-class engine dispatcher.  The verdict and the
relation match the plain sweep exactly; the stats block reports the
speculation rounds and the per-engine obligation split:

  $ seqver gen ctr8 -o spec.blif
  $ seqver opt spec.blif impl.aag --recipe retime --seed 7 > /dev/null
  $ seqver verify spec.blif impl.aag --speculate -q
  $ seqver verify spec.blif impl.aag --speculate | grep -E 'spec rounds|spec merges|refuted assumps'
    spec rounds:     15
    spec merges:     1524
    refuted assumps: 56

--no-speculate forces it off (and wins over --speculate); plain runs
print no speculation block:

  $ seqver verify spec.blif impl.aag --speculate --no-speculate | grep -c 'spec rounds'
  0
  [1]

A certificate emitted by a speculative run with the analysis layer on
records the FRAIG pre-reduction seed and still checks against the
ORIGINAL circuits — the checker replays the reduction, re-proving every
merge, before rebuilding the product:

  $ seqver verify spec.blif impl.aag --speculate --analysis --emit-cert cert.txt -q
  $ grep prereduced cert.txt
  prereduced 17
  $ seqver check-cert cert.txt spec.blif impl.aag
  certificate valid: 42 classes, 82 constraints (induction 1)

Speculation composes with the k-inductive SAT engine — Q-hat is assumed
over k frames and obligations are checked at frame k+1:

  $ seqver verify spec.blif impl.aag -e sat -k 2 --speculate -q
