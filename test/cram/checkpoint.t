Deadline budgets and checkpoints: a run that blows its wall-clock budget
exits 3 (unknown) and leaves a resumable snapshot of the partial
partition when --checkpoint is set:

  $ seqver gen ctr8 -o spec.blif
  $ seqver opt spec.blif impl.aag --recipe retime+opt --seed 3 > /dev/null
  $ seqver verify spec.blif impl.aag --deadline 0.0001 --checkpoint cp.txt -q
  [3]

The checkpoint records the circuit fingerprints, the options that shape
the fixed point, and one line per multi-member class:

  $ head -9 cp.txt
  seqver-checkpoint 1
  spec-md5 6d97f2e50f16f2f6d4094192c6966496
  impl-md5 a0042957c5ab6bbedeaebee6f55ff60e
  engine bdd
  candidates all
  induction 1
  seed 17
  retime-rounds 0
  product-nodes 271

  $ seqver checkpoint cp.txt
  checkpoint: cp.txt
    spec md5:        6d97f2e50f16f2f6d4094192c6966496
    impl md5:        a0042957c5ab6bbedeaebee6f55ff60e
    engine:          bdd
    candidates:      all
    induction:       1
    seed:            17
    retime rounds:   0
    product nodes:   271
    iterations:      0
    classes:         26 (212 constraints)
    pool patterns:   0

Resuming from the checkpoint completes the proof (exit 0):

  $ seqver verify spec.blif impl.aag --resume cp.txt -q

A checkpoint never seeds a run on different circuits — the fingerprint
check refuses it before any engine work (exit 2):

  $ seqver opt spec.blif other.aag --recipe retime+opt --seed 4 > /dev/null
  $ seqver verify spec.blif other.aag --resume cp.txt -q
  seqver verify: checkpoint rejected: implementation fingerprint mismatch: checkpoint has a0042957c5ab6bbedeaebee6f55ff60e, circuit is bbeb8a77c10251aec1670f9b6f99ae75
  [2]

Nor a run whose induction depth exceeds the checkpointed one (its splits
are only sound at the shallower depth):

  $ seqver verify spec.blif impl.aag -e sat -k 2 --resume cp.txt -q
  seqver verify: checkpoint rejected: induction mismatch: a depth-1 checkpoint cannot seed a depth-2 run (its splits are only sound at depth <= 1)
  [2]

A truncated checkpoint is rejected by the inspector (exit 2):

  $ head -5 cp.txt > broken.txt
  $ seqver checkpoint broken.txt
  broken.txt: unexpected end of checkpoint (expected induction)
  [2]

With SPEC and IMPL arguments the inspector probes the checkpoint against
a circuit pair before any engine work.  A match reports both paths (exit
0); a stale snapshot is diagnosed with both fingerprints so the culprit
file is obvious (exit 2):

  $ seqver checkpoint cp.txt spec.blif impl.aag | tail -1
    compatible:      yes (fingerprints match spec.blif impl.aag)

  $ seqver checkpoint cp.txt spec.blif other.aag
  checkpoint: cp.txt
    spec md5:        6d97f2e50f16f2f6d4094192c6966496
    impl md5:        a0042957c5ab6bbedeaebee6f55ff60e
    engine:          bdd
    candidates:      all
    induction:       1
    seed:            17
    retime rounds:   0
    product nodes:   271
    iterations:      0
    classes:         26 (212 constraints)
    pool patterns:   0
    compatible:      no
  seqver checkpoint: implementation fingerprint mismatch: checkpoint has a0042957c5ab6bbedeaebee6f55ff60e, circuit is bbeb8a77c10251aec1670f9b6f99ae75
  [2]

A lone extra argument is a usage error:

  $ seqver checkpoint cp.txt spec.blif > /dev/null
  seqver checkpoint: expected CHECKPOINT, or CHECKPOINT SPEC IMPL
  [2]
