(* Static-analysis layer tests: shape metrics, diagnostics, the
   PI-support candidate prefilter (including that it can never split a
   truly equivalent pair of the suite's fixed points), the structural
   reduction's semantics preservation / idempotence / proof obligations,
   the engine-steering policy, and the analysis-backed lint rules. *)

let small_aig seed =
  let c = Test_util.random_circuit ~n_inputs:3 ~n_latches:4 ~n_gates:18 seed in
  let a, _ = Aig.of_netlist c in
  a

let suite_aig name = Circuits.Suite.aig_of (Option.get (Circuits.Suite.find name))

(* --- metrics ---------------------------------------------------------------- *)

(* x, y PIs; g = x & y; latch q (next g) feeding the single PO. *)
let mk_small () =
  let t = Aig.create () in
  let x = Aig.add_pi t in
  let y = Aig.add_pi t in
  let q = Aig.add_latch t ~init:false in
  let g = Aig.mk_and t x y in
  Aig.set_latch_next t q ~next:g;
  Aig.add_po t "o" q;
  (t, Aig.node_of_lit x, Aig.node_of_lit y, Aig.node_of_lit q, Aig.node_of_lit g)

let test_metrics_small () =
  let t, nx, _, nq, ng = mk_small () in
  let m = Analysis.Metrics.make t in
  Alcotest.(check int) "pi level" 0 m.Analysis.Metrics.level.(nx);
  Alcotest.(check int) "latch level" 0 m.Analysis.Metrics.level.(nq);
  Alcotest.(check int) "and level" 1 m.Analysis.Metrics.level.(ng);
  Alcotest.(check int) "and cone (g,x,y)" 3 m.Analysis.Metrics.cone.(ng);
  Alcotest.(check int) "and fanout (latch next)" 1 m.Analysis.Metrics.fanout.(ng);
  let s = Analysis.Metrics.summary t in
  Alcotest.(check int) "ands" 1 s.Analysis.Metrics.ands;
  Alcotest.(check int) "latches" 1 s.Analysis.Metrics.latches;
  Alcotest.(check int) "levels" 1 s.Analysis.Metrics.levels;
  Alcotest.(check int) "no autonomous nodes" 0 s.Analysis.Metrics.autonomous

(* --- diagnostics ------------------------------------------------------------- *)

let test_diag_clean () =
  let t, _, _, _, _ = mk_small () in
  let d = Analysis.Diag.run t in
  Alcotest.(check bool) "clean" true (Analysis.Diag.clean d);
  Alcotest.(check bool) "acyclic" true d.Analysis.Diag.acyclic

let test_diag_findings () =
  let t = Aig.create () in
  let x = Aig.add_pi t in
  let y = Aig.add_pi t in
  (* dead: an AND no PO can reach *)
  let dead = Aig.mk_and t x (Aig.lit_not y) in
  (* unobservable: a latch feeding nothing *)
  let r = Aig.add_latch t ~init:false in
  Aig.set_latch_next t r ~next:x;
  Aig.add_po t "o" x;
  Aig.add_po t "stuck" Aig.lit_true;
  let d = Analysis.Diag.run t in
  Alcotest.(check bool) "not clean" false (Analysis.Diag.clean d);
  Alcotest.(check (list int)) "dead and node" [ Aig.node_of_lit dead ]
    d.Analysis.Diag.dead_nodes;
  Alcotest.(check (list int)) "unobservable latch" [ 0 ]
    d.Analysis.Diag.unobservable_latches;
  Alcotest.(check int) "constant po" 1 (List.length d.Analysis.Diag.constant_pos)

(* --- prefilter --------------------------------------------------------------- *)

let test_prefilter_supports () =
  let t, nx, ny, nq, ng = mk_small () in
  let p = Analysis.Prefilter.make t in
  Alcotest.(check bool) "x vs y disjoint" false (Analysis.Prefilter.compatible p nx ny);
  Alcotest.(check bool) "x vs g share x" true (Analysis.Prefilter.compatible p nx ng);
  (* q's support closes through its next-state function g *)
  Alcotest.(check bool) "q vs x share x" true (Analysis.Prefilter.compatible p nq nx);
  Alcotest.(check bool) "const is empty" true (Analysis.Prefilter.empty p 0);
  (* empty vs non-empty stays compatible: constants can equal anything *)
  Alcotest.(check bool) "const vs x compatible" true (Analysis.Prefilter.compatible p 0 nx);
  Alcotest.(check int) "support size of g" 2 (Analysis.Prefilter.support_size p ng)

(* The engine-side prefilter splits a class whose members have disjoint
   non-empty PI supports — zero solver calls. *)
let test_prefilter_class_fires () =
  let t, nx, ny, _, _ = mk_small () in
  let sup = Scorr.Support.make t in
  let part =
    Scorr.Partition.create ~n_nodes:(Aig.num_nodes t) ~candidates:[ nx; ny ]
      ~pol:(Array.make (Aig.num_nodes t) false)
  in
  Alcotest.(check bool) "splits" true (Scorr.Support.prefilter_class sup part 0);
  Alcotest.(check int) "singleton classes"
    0
    (List.length (Scorr.Partition.multi_member_classes part))

(* On every suite fixed point the final multi-member classes hold only
   truly equivalent signals, so the static prefilter must consider all of
   them compatible: a split there would break a real equivalence. *)
let test_prefilter_never_splits_suite_fixed_point () =
  List.iter
    (fun name ->
      let spec = suite_aig name in
      let impl =
        Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_opt ~seed:11 spec
      in
      match Scorr.Verify.run_with_relation spec impl with
      | _, product, Some partition ->
        let sup = Scorr.Support.make product.Scorr.Product.aig in
        List.iter
          (fun cls ->
            match Scorr.Partition.members partition cls with
            | [] | [ _ ] -> ()
            | rep :: rest ->
              List.iter
                (fun m ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s: class %d members pi-compatible" name cls)
                    true
                    (Scorr.Support.pi_compatible sup rep m))
                rest)
          (Scorr.Partition.multi_member_classes partition)
      | _, _, None -> Alcotest.fail (name ^ ": no relation computed"))
    [ "ctr8"; "gray12"; "mod10"; "traffic"; "arb4" ]

(* Same fixed point with and without the static prefilter in the loop:
   verdict and equivalence percentage must match exactly, on both
   engines. *)
let prop_prefilter_preserves_fixed_point =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"prefilter preserves the fixed point" ~count:10
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let a = small_aig seed in
         let a' = Transform.Opt.rewrite ~seed a in
         List.for_all
           (fun engine ->
             let opts use_analysis =
               (* speculation pinned off: with it on, the analysis arm
                  would additionally FRAIG-reduce the pair (Verify.
                  prereduces) and the partitions would live over
                  different products *)
               { Scorr.default_options with
                 Scorr.Verify.engine;
                 use_analysis;
                 use_speculation = false
               }
             in
             let v0 = Scorr.check ~options:(opts false) a a' in
             let v1 = Scorr.check ~options:(opts true) a a' in
             let s0 = Scorr.verdict_stats v0 and s1 = Scorr.verdict_stats v1 in
             (match (v0, v1) with
             | Scorr.Equivalent _, Scorr.Equivalent _
             | Scorr.Not_equivalent _, Scorr.Not_equivalent _
             | Scorr.Unknown _, Scorr.Unknown _ -> true
             | _ -> false)
             && s0.Scorr.Verify.eq_pct = s1.Scorr.Verify.eq_pct)
           [ Scorr.Verify.Bdd_engine; Scorr.Verify.Sat_engine ]))

(* --- reduction --------------------------------------------------------------- *)

(* Semantics preservation: the reduced circuit simulates identically on
   random frames, and every recorded merge obligation independently
   re-proves on the original with a fresh solver. *)
let prop_reduce_preserves_semantics =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"reduction is semantics-preserving" ~count:40
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let a =
           Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_opt ~seed
             (small_aig seed)
         in
         let reduced, s = Analysis.Reduce.run ~seed a in
         Aig.num_pis reduced = Aig.num_pis a
         (* unobservable latches may be garbage collected, never added *)
         && Aig.num_latches reduced <= Aig.num_latches a
         && List.map fst (Aig.pos reduced) = List.map fst (Aig.pos a)
         && Test_util.aig_seq_differ ~n_frames:48 a reduced = None
         && Analysis.Reduce.check_obligations a s.Analysis.Reduce.obligations = []))

let prop_reduce_idempotent =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"reduction is idempotent" ~count:40
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let a =
           Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_opt ~seed
             (small_aig seed)
         in
         let reduced, _ = Analysis.Reduce.run ~seed a in
         let _, s2 = Analysis.Reduce.run ~seed reduced in
         s2.Analysis.Reduce.ands_after = s2.Analysis.Reduce.ands_before
         && s2.Analysis.Reduce.fraig_merges = 0))

(* Reduction feeds both engines in the steered portfolio; the verdict on
   the pre-reduced pair must match the verdict on the originals. *)
let prop_reduced_verdict_agrees =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"engines agree on reduced circuits" ~count:15
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let a = small_aig seed in
         let a' = Transform.Opt.rewrite ~seed a in
         let ra, _ = Analysis.Reduce.run ~seed a in
         let ra', _ = Analysis.Reduce.run ~seed a' in
         let verdict options x y =
           match Scorr.check ~options x y with
           | Scorr.Equivalent _ -> `Eq
           | Scorr.Not_equivalent _ -> `Neq
           | Scorr.Unknown _ -> `Unknown
         in
         List.for_all
           (fun engine ->
             let options = { Scorr.default_options with Scorr.Verify.engine } in
             verdict options a a' = verdict options ra ra')
           [ Scorr.Verify.Bdd_engine; Scorr.Verify.Sat_engine ]))

(* --- steering ---------------------------------------------------------------- *)

let test_steer_plan () =
  let small = Analysis.Steer.plan ~product_latches:24 ~levels:20 () in
  Alcotest.(check bool) "small product goes bdd-first" true small.Analysis.Steer.bdd_first;
  (match small.Analysis.Steer.rungs with
  | { Analysis.Steer.engine = Analysis.Steer.Bdd; induction = 1 }
    :: { Analysis.Steer.engine = Analysis.Steer.Sat; induction = 1 } :: deeper ->
    Alcotest.(check (list int)) "deeper sat rungs" [ 2; 3 ]
      (List.map (fun r -> r.Analysis.Steer.induction) deeper)
  | _ -> Alcotest.fail "unexpected bdd-first ladder");
  let big = Analysis.Steer.plan ~product_latches:128 ~levels:20 () in
  Alcotest.(check bool) "many state vars go sat-first" false big.Analysis.Steer.bdd_first;
  (match big.Analysis.Steer.rungs with
  | { Analysis.Steer.engine = Analysis.Steer.Sat; induction = 1 } :: _ -> ()
  | _ -> Alcotest.fail "expected a sat rung first");
  let deep = Analysis.Steer.plan ~product_latches:24 ~levels:200 () in
  Alcotest.(check bool) "deep logic goes sat-first" false deep.Analysis.Steer.bdd_first

let test_steer_dynamic_rules () =
  let rung engine induction = { Analysis.Steer.engine; induction } in
  let completed = rung Analysis.Steer.Bdd 1 in
  Alcotest.(check bool) "same depth redundant" true
    (Analysis.Steer.redundant_after ~completed (rung Analysis.Steer.Sat 1));
  Alcotest.(check bool) "deeper rung survives" false
    (Analysis.Steer.redundant_after ~completed (rung Analysis.Steer.Sat 2));
  Alcotest.(check bool) "bdd dropped after node blowup" true
    (Analysis.Steer.drop_on_exhaustion ~reason:(Some "bdd nodes")
       (rung Analysis.Steer.Bdd 1));
  Alcotest.(check bool) "sat keeps running" false
    (Analysis.Steer.drop_on_exhaustion ~reason:(Some "bdd nodes")
       (rung Analysis.Steer.Sat 2));
  Alcotest.(check bool) "other aborts drop nothing" false
    (Analysis.Steer.drop_on_exhaustion ~reason:(Some "sat calls")
       (rung Analysis.Steer.Bdd 1))

(* The analysis-steered portfolio stays sound and conclusive on suite
   pairs (pre-reduction + plan + skip rules end to end). *)
let test_steered_portfolio_proves_suite () =
  List.iter
    (fun name ->
      let spec = suite_aig name in
      let impl =
        Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_opt ~seed:11 spec
      in
      let options = { Scorr.default_options with Scorr.Verify.use_analysis = true } in
      match Scorr.portfolio ~options spec impl with
      | Scorr.Equivalent _ -> ()
      | Scorr.Not_equivalent _ | Scorr.Unknown _ ->
        Alcotest.fail (name ^ ": steered portfolio failed to prove"))
    [ "ctr8"; "mod10"; "traffic"; "arb4" ]

(* --- analysis report / lint rules --------------------------------------------- *)

let test_report_json_shape () =
  let t, _, _, _, _ = mk_small () in
  let r = Analysis.report ~name:"tiny" t in
  let j = Analysis.to_json r in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " present") true
        (try
           ignore (Str.search_forward (Str.regexp_string key) j 0);
           true
         with Not_found -> false))
    [ {|"name":"tiny"|}; {|"metrics"|}; {|"reduction"|}; {|"diagnostics"|}; {|"clean":true|} ];
  let r' = Analysis.report ~reduce:false ~name:"tiny" t in
  Alcotest.(check bool) "reduction null without reduce" true
    (try
       ignore (Str.search_forward (Str.regexp_string {|"reduction":null|}) (Analysis.to_json r') 0);
       true
     with Not_found -> false)

let rules ds = List.sort_uniq compare (List.map (fun d -> d.Netlist.Diag.rule) ds)

let test_lint_analysis_rules () =
  (* a clean, irreducible circuit stays clean with the analysis rules on *)
  let ctr8 = suite_aig "ctr8" in
  Alcotest.(check (list string)) "ctr8 clean under --analysis" []
    (rules (Lint.check_aig ~analysis:true ctr8));
  (* an unobservable latch fires the warning *)
  let t = Aig.create () in
  let x = Aig.add_pi t in
  let r = Aig.add_latch t ~init:false in
  Aig.set_latch_next t r ~next:x;
  Aig.add_po t "o" x;
  Alcotest.(check (list string)) "unobservable latch fires" [ "unobservable-latch" ]
    (rules (Lint.check_aig ~analysis:true t));
  Alcotest.(check (list string)) "analysis rules are opt-in" []
    (rules (Lint.check_aig t));
  (* reducible logic fires on a circuit with a provably mergeable cone:
     (a & b) & a is a distinct node strashing keeps but FRAIG proves
     equal to a & b *)
  let t2 = Aig.create () in
  let a = Aig.add_pi t2 in
  let b = Aig.add_pi t2 in
  let g1 = Aig.mk_and t2 a b in
  let g2 = Aig.mk_and t2 g1 a in
  Aig.add_po t2 "o" g2;
  let ds = Lint.check_aig ~analysis:true t2 in
  Alcotest.(check bool) "reducible-logic fires" true
    (List.mem "reducible-logic" (rules ds))

let suite =
  [ Alcotest.test_case "metrics on a tiny aig" `Quick test_metrics_small;
    Alcotest.test_case "diagnostics clean" `Quick test_diag_clean;
    Alcotest.test_case "diagnostics findings" `Quick test_diag_findings;
    Alcotest.test_case "prefilter supports" `Quick test_prefilter_supports;
    Alcotest.test_case "prefilter splits disjoint class" `Quick test_prefilter_class_fires;
    Alcotest.test_case "prefilter spares suite fixed points" `Quick
      test_prefilter_never_splits_suite_fixed_point;
    prop_prefilter_preserves_fixed_point;
    prop_reduce_preserves_semantics;
    prop_reduce_idempotent;
    prop_reduced_verdict_agrees;
    Alcotest.test_case "steering plan" `Quick test_steer_plan;
    Alcotest.test_case "steering dynamic rules" `Quick test_steer_dynamic_rules;
    Alcotest.test_case "steered portfolio proves suite" `Quick
      test_steered_portfolio_proves_suite;
    Alcotest.test_case "report json shape" `Quick test_report_json_shape;
    Alcotest.test_case "analysis-backed lint rules" `Quick test_lint_analysis_rules;
  ]

let () = Alcotest.run "analysis" [ ("analysis", suite) ]
