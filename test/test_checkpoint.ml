(* Tests of fixed-point checkpoints: format round-trips, malformed-input
   rejection, resume validation, and the central soundness property —
   interrupting the refinement and resuming from the checkpoint reaches
   exactly the same verdict and final partition as an uninterrupted run
   (the greatest fixed point is unique, and every checkpointed partition
   sits between the initial partition and the fixed point). *)

let aig_pair ?(n_inputs = 3) ?(n_latches = 5) ?(n_gates = 25) seed =
  let c = Test_util.random_circuit ~n_inputs ~n_latches ~n_gates seed in
  let spec, _ = Aig.of_netlist c in
  let impl = Transform.Opt.rewrite ~seed spec in
  (spec, impl)

let suite_pair () =
  let spec = Circuits.Suite.aig_of (Option.get (Circuits.Suite.find "ctr16")) in
  let impl =
    Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_opt ~seed:5 spec
  in
  (spec, impl)

let temp_path () = Filename.temp_file "seqver-ckpt" ".txt"

(* A checkpoint with real content: interrupt the SAT engine on the ctr16
   pair after a couple of refinement iterations. *)
let interrupted_checkpoint () =
  let spec, impl = suite_pair () in
  let options =
    {
      Scorr.default_options with
      Scorr.Verify.engine = Scorr.Verify.Sat_engine;
      max_iterations = 2;
      use_retime = false;
    }
  in
  let ((verdict, _, _) as run) = Scorr.Verify.run_with_relation ~options spec impl in
  (match verdict with
  | Scorr.Unknown s ->
    Alcotest.(check (option string))
      "exhausted reason" (Some "iterations") s.Scorr.Verify.exhausted
  | _ -> Alcotest.fail "expected an iteration-budget Unknown");
  match Scorr.Verify.checkpoint_of_run ~options ~spec ~impl run with
  | Ok cp -> (spec, impl, options, cp)
  | Error msg -> Alcotest.fail ("no checkpoint from the aborted run: " ^ msg)

(* --- serialization ---------------------------------------------------------- *)

let test_round_trip () =
  let _, _, _, cp = interrupted_checkpoint () in
  Alcotest.(check bool) "has classes" true (Scorr.Checkpoint.n_classes cp > 0);
  let cp' = Scorr.Checkpoint.parse_string (Scorr.Checkpoint.to_string cp) in
  Alcotest.(check string) "spec digest" cp.Scorr.Checkpoint.spec_digest
    cp'.Scorr.Checkpoint.spec_digest;
  Alcotest.(check string) "impl digest" cp.Scorr.Checkpoint.impl_digest
    cp'.Scorr.Checkpoint.impl_digest;
  Alcotest.(check int) "induction" cp.Scorr.Checkpoint.induction
    cp'.Scorr.Checkpoint.induction;
  Alcotest.(check int) "seed" cp.Scorr.Checkpoint.seed cp'.Scorr.Checkpoint.seed;
  Alcotest.(check int) "iterations" cp.Scorr.Checkpoint.iterations
    cp'.Scorr.Checkpoint.iterations;
  Alcotest.(check int) "product nodes" cp.Scorr.Checkpoint.product_nodes
    cp'.Scorr.Checkpoint.product_nodes;
  Alcotest.(check (list (list int))) "classes" cp.Scorr.Checkpoint.classes
    cp'.Scorr.Checkpoint.classes;
  (* and through a file *)
  let path = temp_path () in
  Scorr.Checkpoint.to_file path cp;
  let cp'' = Scorr.Checkpoint.parse_file path in
  Sys.remove path;
  Alcotest.(check (list (list int))) "file classes" cp.Scorr.Checkpoint.classes
    cp''.Scorr.Checkpoint.classes

let test_pattern_round_trip () =
  (* hand-built checkpoint with pool patterns, including empty vectors *)
  let cp =
    {
      Scorr.Checkpoint.spec_digest = String.make 32 'a';
      impl_digest = String.make 32 'b';
      engine = "sat";
      candidates = "all";
      induction = 2;
      seed = 17;
      retime_rounds = 1;
      product_nodes = 42;
      iterations = 3;
      classes = [ [ 4; 6; 13 ]; [ 9; 10 ] ];
      patterns = [ ([| true; false; true |], [| false; true |]); ([||], [| true |]) ];
    }
  in
  let cp' = Scorr.Checkpoint.parse_string (Scorr.Checkpoint.to_string cp) in
  Alcotest.(check int) "patterns survive" 2 (Scorr.Checkpoint.n_patterns cp');
  Alcotest.(check bool) "pattern bits survive" true
    (cp.Scorr.Checkpoint.patterns = cp'.Scorr.Checkpoint.patterns)

let expect_parse_error text =
  match Scorr.Checkpoint.parse_string text with
  | exception Scorr.Checkpoint.Parse_error _ -> ()
  | _ -> Alcotest.fail "malformed checkpoint accepted"

let test_rejects_malformed () =
  let _, _, _, cp = interrupted_checkpoint () in
  let text = Scorr.Checkpoint.to_string cp in
  (* truncation at any field boundary must raise, never return garbage *)
  expect_parse_error "";
  expect_parse_error "seqver-checkpoint 1\n";
  expect_parse_error (String.sub text 0 (String.length text / 2));
  (* a missing end marker *)
  expect_parse_error (String.concat "\n" List.(filter (fun l -> l <> "end")
    (String.split_on_char '\n' text)));
  (* a corrupt integer field and a wrong version *)
  expect_parse_error (Str.global_replace (Str.regexp "^iterations .*$") "iterations x" text);
  expect_parse_error
    (Str.global_replace (Str.regexp "^seqver-checkpoint 1") "seqver-checkpoint 9" text);
  (* a pattern with non-binary characters *)
  expect_parse_error
    (Str.global_replace (Str.regexp "^patterns 0") "patterns 1\npattern 01x2 1" text)

(* --- resume validation --------------------------------------------------------- *)

let test_validate_rejects_mismatches () =
  let spec, impl, _, cp = interrupted_checkpoint () in
  let ok ~candidates ~induction ~seed =
    Scorr.Checkpoint.validate ~spec ~impl ~candidates ~induction ~seed cp
  in
  ok ~candidates:"all" ~induction:1 ~seed:17;
  let refused f =
    match f () with
    | exception Scorr.Checkpoint.Incompatible _ -> ()
    | () -> Alcotest.fail "incompatible checkpoint accepted"
  in
  (* the checkpointed run had induction depth 1: a deeper run must refuse
     it (its splits are only sound at depth <= 1) *)
  refused (fun () -> ok ~candidates:"all" ~induction:2 ~seed:17);
  refused (fun () -> ok ~candidates:"registers" ~induction:1 ~seed:17);
  refused (fun () -> ok ~candidates:"all" ~induction:1 ~seed:18);
  (* swapped circuits: fingerprint mismatch *)
  refused (fun () ->
      Scorr.Checkpoint.validate ~spec:impl ~impl:spec ~candidates:"all" ~induction:1
        ~seed:17 cp)

let test_resume_refuses_mutant () =
  let spec, impl, options, cp = interrupted_checkpoint () in
  let path = temp_path () in
  Scorr.Checkpoint.to_file path cp;
  let cp = Scorr.Checkpoint.parse_file path in
  Sys.remove path;
  (* resuming against a different implementation must be refused before
     any engine work: the partition is meaningless on another circuit *)
  let mutant =
    match Transform.Mutate.observable_mutant ~seed:3 impl with
    | Some (m, _) -> m
    | None -> Alcotest.fail "no mutant"
  in
  let options = { options with Scorr.Verify.resume = Some cp; max_iterations = 0 } in
  (match Scorr.Verify.run_with_relation ~options spec mutant with
  | exception Scorr.Checkpoint.Incompatible _ -> ()
  | _ -> Alcotest.fail "mutated implementation accepted on resume");
  (* the genuine pair still resumes *)
  match Scorr.Verify.run_with_relation ~options spec impl with
  | Scorr.Equivalent _, _, _ -> ()
  | _ -> Alcotest.fail "expected Equivalent on resume"

(* --- deadline aborts ------------------------------------------------------------ *)

let test_deadline_abort_checkpoints () =
  let spec, impl = suite_pair () in
  let path = temp_path () in
  let options =
    {
      Scorr.default_options with
      Scorr.Verify.engine = Scorr.Verify.Sat_engine;
      deadline_seconds = 1e-4;
      checkpoint_path = Some path;
    }
  in
  (match Scorr.check ~options spec impl with
  | Scorr.Unknown s ->
    Alcotest.(check (option string))
      "exhausted by the deadline" (Some "deadline") s.Scorr.Verify.exhausted;
    Alcotest.(check bool) "partial partition harvested" true (s.classes > 0)
  | _ -> Alcotest.fail "expected a deadline Unknown");
  (* the checkpoint written on abort is valid and resumes to completion *)
  let cp = Scorr.Checkpoint.parse_file path in
  Sys.remove path;
  let options =
    { options with Scorr.Verify.deadline_seconds = 0.0; checkpoint_path = None;
      resume = Some cp }
  in
  match Scorr.check ~options spec impl with
  | Scorr.Equivalent _ -> ()
  | _ -> Alcotest.fail "expected Equivalent after resume"

let test_periodic_checkpoint () =
  let spec, impl = suite_pair () in
  let path = temp_path () in
  let options =
    {
      Scorr.default_options with
      Scorr.Verify.engine = Scorr.Verify.Sat_engine;
      checkpoint_path = Some path;
      checkpoint_every = 1;
      use_retime = false;
    }
  in
  (match Scorr.check ~options spec impl with
  | Scorr.Equivalent _ -> ()
  | _ -> Alcotest.fail "expected Equivalent");
  (* the file holds the latest periodic snapshot, well-formed *)
  let cp = Scorr.Checkpoint.parse_file path in
  Sys.remove path;
  Alcotest.(check bool) "iterations recorded" true (cp.Scorr.Checkpoint.iterations > 0)

(* --- interrupt/resume equivalence (gfp uniqueness) ------------------------------ *)

let normalized_classes partition =
  List.sort compare
    (List.map
       (fun cls ->
         List.sort compare
           (List.map (Scorr.Partition.norm_lit partition)
              (Scorr.Partition.members partition cls)))
       (Scorr.Partition.multi_member_classes partition))

let verdict_label = function
  | Scorr.Equivalent _ -> "equivalent"
  | Scorr.Not_equivalent _ -> "not_equivalent"
  | Scorr.Unknown _ -> "unknown"

let prop_resume_reaches_same_fixed_point =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"interrupt + resume = uninterrupted (both engines, all jobs)"
       ~count:8
       QCheck.(pair (int_range 0 100_000) (int_range 1 4))
       (fun (seed, cut) ->
         let spec, impl = aig_pair seed in
         List.for_all
           (fun (engine, jobs) ->
             let base =
               { Scorr.default_options with Scorr.Verify.engine; jobs; preflight = false }
             in
             let full = Scorr.Verify.run_with_relation ~options:base spec impl in
             let interrupted =
               Scorr.Verify.run_with_relation
                 ~options:{ base with Scorr.Verify.max_iterations = cut }
                 spec impl
             in
             let resumed =
               match interrupted with
               | Scorr.Unknown { exhausted = Some "iterations"; _ }, _, _ -> (
                 match
                   Scorr.Verify.checkpoint_of_run ~options:base ~spec ~impl interrupted
                 with
                 | Error _ -> None
                 | Ok cp ->
                   Some
                     (Scorr.Verify.run_with_relation
                        ~options:{ base with Scorr.Verify.resume = Some cp }
                        spec impl))
               | _ -> None (* the run finished before the cut: nothing to resume *)
             in
             match resumed with
             | None -> true
             | Some resumed ->
               let (v1, _, p1) = full and (v2, _, p2) = resumed in
               verdict_label v1 = verdict_label v2
               && Float.abs
                    ((Scorr.verdict_stats v1).Scorr.Verify.eq_pct
                    -. (Scorr.verdict_stats v2).Scorr.Verify.eq_pct)
                  < 1e-9
               &&
               match (p1, p2) with
               | Some p1, Some p2 -> normalized_classes p1 = normalized_classes p2
               | None, None -> true
               | _ -> false)
           [
             (Scorr.Verify.Bdd_engine, 1);
             (Scorr.Verify.Sat_engine, 1);
             (Scorr.Verify.Sat_engine, 2);
             (Scorr.Verify.Sat_engine, 4);
           ]))

let suite =
  [ Alcotest.test_case "checkpoint round-trips" `Quick test_round_trip;
    Alcotest.test_case "patterns round-trip" `Quick test_pattern_round_trip;
    Alcotest.test_case "malformed checkpoints rejected" `Quick test_rejects_malformed;
    Alcotest.test_case "validation rejects mismatches" `Quick
      test_validate_rejects_mismatches;
    Alcotest.test_case "resume refuses a mutated circuit" `Quick test_resume_refuses_mutant;
    Alcotest.test_case "deadline abort writes a resumable checkpoint" `Quick
      test_deadline_abort_checkpoints;
    Alcotest.test_case "periodic checkpoints are well-formed" `Quick
      test_periodic_checkpoint;
    prop_resume_reaches_same_fixed_point;
  ]

let () = Alcotest.run "checkpoint" [ ("checkpoint", suite) ]
