(* Netlist tests: construction, simulation semantics, BLIF roundtrips. *)

(* a small init-0 counter, built locally so this suite stays independent
   of the circuits library *)
let circuits_stub_counter () =
  let c = Netlist.create "ctr4" in
  let en = Netlist.add_input ~name:"en" c in
  let bits = List.init 4 (fun i -> Netlist.add_latch ~name:(Printf.sprintf "q%d" i) c ~init:false) in
  let carry = ref en in
  List.iteri
    (fun i q ->
      let d = Netlist.bxor c q !carry in
      Netlist.set_latch_data c q ~data:d;
      Netlist.add_output c (Printf.sprintf "count%d" i) q;
      carry := Netlist.band c q !carry)
    bits;
  c

let mk_half_adder () =
  let c = Netlist.create "ha" in
  let a = Netlist.add_input ~name:"a" c in
  let b = Netlist.add_input ~name:"b" c in
  let sum = Netlist.add_gate ~name:"sum" c Netlist.Xor [ a; b ] in
  let carry = Netlist.add_gate ~name:"carry" c Netlist.And [ a; b ] in
  Netlist.add_output c "sum" sum;
  Netlist.add_output c "carry" carry;
  c

let test_half_adder_sim () =
  let c = mk_half_adder () in
  Alcotest.(check bool) "valid" true (Netlist.validate c = Ok ());
  let outs = Netlist.Sim.run c [ [| 0b0011L; 0b0101L |] ] in
  match outs with
  | [ frame ] ->
    Alcotest.(check int64) "sum" 0b0110L (List.assoc "sum" frame);
    Alcotest.(check int64) "carry" 0b0001L (List.assoc "carry" frame)
  | _ -> Alcotest.fail "one frame expected"

let mk_toggle () =
  (* q' = q xor en; out = q *)
  let c = Netlist.create "toggle" in
  let en = Netlist.add_input ~name:"en" c in
  let q = Netlist.add_latch ~name:"q" c ~init:false in
  let d = Netlist.bxor c q en in
  Netlist.set_latch_data c q ~data:d;
  Netlist.add_output c "out" q;
  c

let test_toggle_sequence () =
  let c = mk_toggle () in
  (* bit 0 of each word is one pattern; enable: 1,1,0,1 *)
  let frames = [ [| 1L |]; [| 1L |]; [| 0L |]; [| 1L |] ] in
  let outs = Netlist.Sim.run c frames in
  let bit frame = Int64.logand 1L (List.assoc "out" frame) in
  Alcotest.(check (list int64)) "toggle trace" [ 0L; 1L; 0L; 0L ] (List.map bit outs)

let test_gate_semantics () =
  let eval fn ins =
    let c = Netlist.create "g" in
    let nets = List.map (fun _ -> Netlist.add_input c) ins in
    let g = Netlist.add_gate c fn nets in
    Netlist.add_output c "o" g;
    let words = Array.of_list (List.map (fun b -> if b then 1L else 0L) ins) in
    match Netlist.Sim.run c [ words ] with
    | [ [ (_, w) ] ] -> Int64.logand w 1L = 1L
    | _ -> assert false
  in
  Alcotest.(check bool) "and" true (eval Netlist.And [ true; true; true ]);
  Alcotest.(check bool) "and f" false (eval Netlist.And [ true; false; true ]);
  Alcotest.(check bool) "nand" true (eval Netlist.Nand [ true; false ]);
  Alcotest.(check bool) "or" true (eval Netlist.Or [ false; true ]);
  Alcotest.(check bool) "nor" true (eval Netlist.Nor [ false; false ]);
  Alcotest.(check bool) "xor odd" true (eval Netlist.Xor [ true; true; true ]);
  Alcotest.(check bool) "xor even" false (eval Netlist.Xor [ true; true ]);
  Alcotest.(check bool) "xnor" true (eval Netlist.Xnor [ true; true ]);
  Alcotest.(check bool) "not" true (eval Netlist.Not [ false ]);
  Alcotest.(check bool) "buf" true (eval Netlist.Buf [ true ])

let test_validate_catches_open_latch () =
  let c = Netlist.create "bad" in
  let _ = Netlist.add_latch c ~init:false in
  match Netlist.validate c with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected validation error"

let test_blif_roundtrip_simple () =
  let c = mk_toggle () in
  let text = Netlist.Blif.to_string c in
  let c2 = Netlist.Blif.parse_string text in
  Alcotest.(check bool) "valid" true (Netlist.validate c2 = Ok ());
  Alcotest.(check (option int)) "no behavioural difference" None
    (Test_util.seq_differ c c2)

let test_blif_parse_cover () =
  let text =
    ".model cover\n.inputs a b c\n.outputs f g h\n# f = a'b + c\n.names a b c f\n01- 1\n--1 1\n.names a b g\n11 0\n.names h\n1\n.end\n"
  in
  let c = Netlist.Blif.parse_string text in
  let run ins =
    match Netlist.Sim.run c [ ins ] with
    | [ frame ] -> frame
    | _ -> assert false
  in
  let b2w b = if b then 1L else 0L in
  List.iter
    (fun (a, b, cc) ->
      let frame = run [| b2w a; b2w b; b2w cc |] in
      let get name = Int64.logand 1L (List.assoc name frame) = 1L in
      let expect_f = ((not a) && b) || cc in
      let expect_g = not (a && b) in
      Alcotest.(check bool) "f" expect_f (get "f");
      Alcotest.(check bool) "g" expect_g (get "g");
      Alcotest.(check bool) "h const" true (get "h"))
    [ (false, false, false); (false, true, false); (true, true, false);
      (false, false, true); (true, true, true) ]

let test_blif_latch_init () =
  let text = ".model l\n.inputs x\n.outputs o\n.latch x q 1\n.names q o\n1 1\n.end\n" in
  let c = Netlist.Blif.parse_string text in
  match Netlist.Sim.run c [ [| 0L |]; [| 0L |] ] with
  | [ f1; f2 ] ->
    Alcotest.(check int64) "init 1" 1L (Int64.logand 1L (List.assoc "o" f1));
    Alcotest.(check int64) "captured 0" 0L (Int64.logand 1L (List.assoc "o" f2))
  | _ -> Alcotest.fail "two frames"

let test_bench_parse () =
  let text =
    "# s27-style example\nINPUT(G0)\nINPUT(G1)\nOUTPUT(G17)\nG10 = DFF(G14)\nG11 = NOT(G0)\nG14 = NAND(G10, G11)\nG17 = AND(G14, G1)\n"
  in
  let c = Netlist.Bench.parse_string text in
  Alcotest.(check bool) "valid" true (Netlist.validate c = Ok ());
  Alcotest.(check int) "inputs" 2 (List.length (Netlist.inputs c));
  Alcotest.(check int) "latches" 1 (List.length (Netlist.latches c));
  (* frame 0: G10=0 -> G14 = NAND(0, !G0) = 1; G17 = G14 & G1 *)
  match Netlist.Sim.run c [ [| 0b01L; 0b10L |] ] with
  | [ frame ] ->
    Alcotest.(check int64) "G17" 0b10L (Int64.logand 0b11L (List.assoc "G17" frame))
  | _ -> Alcotest.fail "one frame"

let all_inits_false c = List.for_all (fun l -> not (Netlist.latch_init c l)) (Netlist.latches c)

let prop_bench_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"bench roundtrip preserves behaviour (init-0 circuits)"
       ~count:60
       QCheck.(int_range 0 10_000)
       (fun seed ->
         let c = Test_util.random_circuit seed in
         QCheck.assume (all_inits_false c);
         let c2 = Netlist.Bench.parse_string (Netlist.Bench.to_string c) in
         Netlist.validate c2 = Ok () && Test_util.seq_differ c c2 = None))

let test_bench_blif_cross () =
  (* counter emitted as .bench, reparsed, and compared against the BLIF
     round trip of the same circuit *)
  let c = circuits_stub_counter () in
  let via_bench = Netlist.Bench.parse_string (Netlist.Bench.to_string c) in
  let via_blif = Netlist.Blif.parse_string (Netlist.Blif.to_string c) in
  Alcotest.(check (option int)) "bench = blif behaviour" None
    (Test_util.seq_differ via_bench via_blif)

let test_verilog_writer () =
  let c = circuits_stub_counter () in
  let v = Netlist.Verilog.to_string c in
  let contains needle =
    let n = String.length needle and h = String.length v in
    let rec go i = i + n <= h && (String.sub v i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("contains " ^ fragment) true (contains fragment))
    [ "module ctr4("; "input clock;"; "input reset;"; "input en;";
      "output count0;"; "reg q0;"; "always @(posedge clock)"; "q0 <= 1'b0;";
      "endmodule" ];
  (* every latch gets both a reset and an update assignment *)
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "q%d updated" i)
        true
        (contains (Printf.sprintf "q%d <= " i)))
    [ 0; 1; 2; 3 ]

let prop_random_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"blif roundtrip preserves behaviour" ~count:60
       QCheck.(int_range 0 10_000)
       (fun seed ->
         let c = Test_util.random_circuit seed in
         QCheck.assume (Netlist.validate c = Ok ());
         let c2 = Netlist.Blif.parse_string (Netlist.Blif.to_string c) in
         Test_util.seq_differ c c2 = None))

let prop_topo_sound =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"topo order places fanins first" ~count:60
       QCheck.(int_range 0 10_000)
       (fun seed ->
         let c = Test_util.random_circuit seed in
         let order = Netlist.topo_order c in
         let pos = Hashtbl.create 64 in
         List.iteri (fun i net -> Hashtbl.replace pos net i) order;
         List.for_all
           (fun net ->
             match Netlist.node c net with
             | Netlist.Gate (_, fanins) ->
               Array.for_all
                 (fun f -> Hashtbl.find pos f < Hashtbl.find pos net)
                 fanins
             | Netlist.Input | Netlist.Latch _ -> true)
           order))

let suite =
  [ Alcotest.test_case "half adder" `Quick test_half_adder_sim;
    Alcotest.test_case "toggle sequence" `Quick test_toggle_sequence;
    Alcotest.test_case "gate semantics" `Quick test_gate_semantics;
    Alcotest.test_case "validate open latch" `Quick test_validate_catches_open_latch;
    Alcotest.test_case "blif roundtrip toggle" `Quick test_blif_roundtrip_simple;
    Alcotest.test_case "blif covers" `Quick test_blif_parse_cover;
    Alcotest.test_case "blif latch init" `Quick test_blif_latch_init;
    Alcotest.test_case "bench parse" `Quick test_bench_parse;
    Alcotest.test_case "verilog writer" `Quick test_verilog_writer;
    Alcotest.test_case "bench/blif cross check" `Quick test_bench_blif_cross;
    prop_random_roundtrip;
    prop_bench_roundtrip;
    prop_topo_sound;
  ]

let () = Alcotest.run "netlist" [ ("netlist", suite) ]
