(* Tests of the trust layer (lib/cert): witness and certificate format
   round-trips, replay of refutation traces on injected faults, shape
   diagnostics, and independent certificate checking — including
   handcrafted bogus certificates that must fail the base-case and
   induction conditions. *)

(* --- witness format round-trip ------------------------------------------------ *)

let gen_witness =
  QCheck.Gen.(
    int_range 0 4 >>= fun pis ->
    int_range 1 5 >>= fun frames ->
    int_range 0 (frames - 1) >>= fun failing ->
    opt (oneofl [ "o"; "carry"; "outputs_agree" ]) >>= fun output ->
    array_repeat frames (array_repeat pis bool) >>= fun inputs ->
    return { Cert.Witness.frame = failing; inputs; output })

let arb_witness = QCheck.make ~print:Cert.Witness.to_string gen_witness

let prop_witness_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"witness print/parse round-trips" ~count:200 arb_witness
       (fun w -> Cert.Witness.parse_string (Cert.Witness.to_string w) = w))

(* --- certificate format round-trip -------------------------------------------- *)

let gen_cert =
  QCheck.Gen.(
    int_range 0 1_000_000 >>= fun salt ->
    oneofl [ "bdd"; "sat" ] >>= fun engine ->
    oneofl [ "all"; "registers" ] >>= fun candidates ->
    int_range 1 4 >>= fun induction ->
    int_range 0 3 >>= fun retime_rounds ->
    opt (int_range 0 99) >>= fun prereduce ->
    int_range 1 500 >>= fun product_nodes ->
    list_size (int_range 0 5) (list_size (int_range 0 4) (int_range 0 999)) >>= fun classes ->
    (* half the certificates carry a DRAT proof section, so the format
       round-trip covers segments, deletions and the empty clause *)
    let gen_lit = map (fun n -> if n = 0 then 1 else n) (int_range (-50) 50) in
    let gen_step =
      oneof
        [
          map (fun ls -> Sat.Dimacs.Add ls) (list_size (int_range 0 4) gen_lit);
          map (fun ls -> Sat.Dimacs.Delete ls) (list_size (int_range 1 4) gen_lit);
        ]
    in
    opt (list_size (int_range 0 3) (list_size (int_range 0 5) gen_step)) >>= fun proof ->
    return
      {
        Cert.Certificate.spec_digest = Digest.to_hex (Digest.string (string_of_int salt));
        impl_digest = Digest.to_hex (Digest.string (string_of_int (salt + 1)));
        engine;
        candidates;
        induction;
        retime_rounds;
        prereduce;
        product_nodes;
        classes;
        proof;
      })

let arb_cert = QCheck.make ~print:Cert.Certificate.to_string gen_cert

let prop_cert_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"certificate print/parse round-trips" ~count:200 arb_cert
       (fun c -> Cert.Certificate.parse_string (Cert.Certificate.to_string c) = c))

let test_witness_parse_rejects () =
  let rejects what text =
    match Cert.Witness.parse_string text with
    | exception Cert.Witness.Parse_error _ -> ()
    | _ -> Alcotest.fail ("parser accepted " ^ what)
  in
  rejects "an empty witness" "";
  rejects "a bad version" "seqver-witness 2\npis 1\nframes 1\nfailing-frame 0\nframe 0 1\nend\n";
  rejects "an out-of-range failing frame"
    "seqver-witness 1\npis 1\nframes 1\nfailing-frame 3\nframe 0 1\nend\n";
  rejects "a width mismatch"
    "seqver-witness 1\npis 2\nframes 1\nfailing-frame 0\nframe 0 1\nend\n";
  rejects "a bad bit" "seqver-witness 1\npis 1\nframes 1\nfailing-frame 0\nframe 0 x\nend\n";
  rejects "a missing end marker" "seqver-witness 1\npis 1\nframes 1\nfailing-frame 0\nframe 0 1\n"

(* --- replay diagnostics --------------------------------------------------------- *)

(* a 1-PI buffer: out = x *)
let buffer () =
  let a = Aig.create () in
  let x = Aig.add_pi a in
  Aig.add_po a "o" x;
  a

let test_width_mismatch_diagnosed () =
  let a = buffer () in
  let w = Cert.Witness.make [| [| true; false |] |] in
  (match Cert.Witness.check_shape ~subject:"circuit" a w with
  | Error (Cert.Witness.Width_mismatch { expected = 1; got = 2; frame = 0; _ }) -> ()
  | Error e -> Alcotest.fail ("wrong diagnostic: " ^ Cert.Witness.explain_error e)
  | Ok () -> Alcotest.fail "accepted a too-wide witness");
  match Cert.Witness.replay ~spec:a ~impl:a w with
  | Error (Cert.Witness.Width_mismatch _) -> ()
  | _ -> Alcotest.fail "replay must reject the width mismatch"

let test_frame_out_of_range_diagnosed () =
  let a = buffer () in
  let w = { Cert.Witness.frame = 5; inputs = [| [| true |] |]; output = None } in
  match Cert.Witness.check_shape ~subject:"circuit" a w with
  | Error (Cert.Witness.Frame_out_of_range { failing_frame = 5; frames = 1 }) -> ()
  | _ -> Alcotest.fail "expected Frame_out_of_range"

let test_clean_replay_is_no_failure () =
  let a = buffer () in
  let w = Cert.Witness.make [| [| true |]; [| false |] |] in
  match Cert.Witness.replay ~spec:a ~impl:a w with
  | Error Cert.Witness.No_failure -> ()
  | _ -> Alcotest.fail "identical circuits cannot be refuted"

(* --- replay of injected faults --------------------------------------------------- *)

let prop_mutant_witness_replays =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"mutant refutation witnesses replay and shrink" ~count:25
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let c = Test_util.random_circuit ~n_inputs:3 ~n_latches:4 ~n_gates:18 seed in
         let spec, _ = Aig.of_netlist c in
         match Transform.Mutate.observable_mutant ~seed spec with
         | None -> QCheck.assume_fail ()
         | Some (mutant, _) -> (
           match Scorr.check spec mutant with
           | Scorr.Not_equivalent { trace = Some trace; _ } -> (
             let w = Cert.Witness.of_trace trace in
             match Cert.Witness.replay ~spec ~impl:mutant w with
             | Error _ -> false
             | Ok _ -> (
               let s = Cert.Witness.shrink ~spec ~impl:mutant w in
               match Cert.Witness.replay ~spec ~impl:mutant s with
               | Ok m ->
                 m.Cert.Witness.at_frame = s.Cert.Witness.frame
                 && Cert.Witness.n_frames s <= Cert.Witness.n_frames w
               | Error _ -> false))
           | Scorr.Not_equivalent { trace = None; _ } -> false (* must carry a witness *)
           | Scorr.Equivalent _ -> false
           | Scorr.Unknown _ -> true)))

let test_bmc_witness_refutes () =
  let spec, _ = Aig.of_netlist (Circuits.Counter.modulo 5) in
  let mutant = Transform.Mutate.apply spec (Transform.Mutate.Flip_latch_init 1) in
  let product = (Scorr.Product.make spec mutant).Scorr.Product.aig in
  match Reach.Bmc.check ~max_depth:8 product with
  | Reach.Bmc.Counterexample cex ->
    let w = Cert.Witness.of_bmc cex in
    Alcotest.(check bool) "refutes the product property" true
      (Cert.Witness.refutes product w)
  | _ -> Alcotest.fail "expected a counterexample"

(* --- certificates: emission and independent checking ------------------------------ *)

let fig2_cert () =
  let spec, impl = Circuits.Fig2.pair () in
  let options = Scorr.default_options in
  let run = Scorr.Verify.run_with_relation ~options spec impl in
  match Cert.Certificate.of_run ~options ~spec ~impl run with
  | Ok cert -> (spec, impl, cert)
  | Error e -> Alcotest.fail (Cert.Certificate.explain_emit_error e)

let test_fig2_certificate_checks () =
  let spec, impl, cert = fig2_cert () in
  (* round-trip through the text format before checking *)
  let cert = Cert.Certificate.parse_string (Cert.Certificate.to_string cert) in
  Alcotest.(check bool) "has constraints" true (Cert.Certificate.n_constraints cert > 0);
  match Cert.Certificate.check ~spec ~impl cert with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Cert.Certificate.explain_check_error e)

let test_certificate_rejects_mutated_impl () =
  let spec, impl, cert = fig2_cert () in
  let mutant = Transform.Mutate.apply impl (Transform.Mutate.Flip_latch_init 0) in
  match Cert.Certificate.check ~spec ~impl:mutant cert with
  | Error (Cert.Certificate.Fingerprint_mismatch { subject = "implementation"; _ }) -> ()
  | Ok () -> Alcotest.fail "accepted a certificate for a mutated implementation"
  | Error e -> Alcotest.fail ("wrong rejection: " ^ Cert.Certificate.explain_check_error e)

let test_certificate_rejects_tampering () =
  let spec, impl, cert = fig2_cert () in
  (match
     Cert.Certificate.check ~spec ~impl
       { cert with Cert.Certificate.product_nodes = cert.Cert.Certificate.product_nodes + 1 }
   with
  | Error (Cert.Certificate.Shape_mismatch _) -> ()
  | _ -> Alcotest.fail "expected Shape_mismatch");
  match
    Cert.Certificate.check ~spec ~impl
      { cert with Cert.Certificate.classes = [ 1_000_000; 1_000_002 ] :: cert.classes }
  with
  | Error (Cert.Certificate.Bad_literal _) -> ()
  | _ -> Alcotest.fail "expected Bad_literal"

let test_emit_refuses_dontcare_relations () =
  let spec, impl = Circuits.Fig2.pair () in
  let options = { Scorr.default_options with Scorr.Verify.use_reach_dontcare = true } in
  let run = Scorr.Verify.run_with_relation ~options spec impl in
  match Cert.Certificate.of_run ~options ~spec ~impl run with
  | Error (Cert.Certificate.Unsupported _) -> ()
  | Ok _ -> Alcotest.fail "emitted a certificate under reachability don't-cares"
  | Error e -> Alcotest.fail ("wrong error: " ^ Cert.Certificate.explain_emit_error e)

(* spec circuit with its latch literal exposed: q (init 0, next = x), o = q *)
let latch_follows_input () =
  let a = Aig.create () in
  let x = Aig.add_pi a in
  let q = Aig.add_latch a ~init:false in
  Aig.set_latch_next a q ~next:x;
  Aig.add_po a "o" q;
  (a, x, q)

let handcrafted_cert spec impl classes =
  let product = Scorr.Product.make spec impl in
  ( {
      Cert.Certificate.spec_digest = Cert.Certificate.fingerprint spec;
      impl_digest = Cert.Certificate.fingerprint impl;
      engine = "bdd";
      candidates = "all";
      induction = 1;
      retime_rounds = 0;
      prereduce = None;
      product_nodes = Aig.num_nodes product.Scorr.Product.aig;
      classes;
      proof = None;
    },
    product )

let test_bogus_equality_fails_base_case () =
  (* claim pi = latch: false at frame 0, where the latch is still 0 *)
  let spec, x, q = latch_follows_input () in
  let impl, _, _ = latch_follows_input () in
  let product = Scorr.Product.make spec impl in
  let x_p = product.Scorr.Product.spec.Scorr.Product.lit_in_product x in
  let q_p = product.Scorr.Product.spec.Scorr.Product.lit_in_product q in
  let cert, _ = handcrafted_cert spec impl [ List.sort compare [ x_p; q_p ] ] in
  match Cert.Certificate.check ~spec ~impl cert with
  | Error (Cert.Certificate.Not_initial { frame = 0; _ }) -> ()
  | Ok () -> Alcotest.fail "accepted a relation that fails at the initial state"
  | Error e -> Alcotest.fail ("wrong rejection: " ^ Cert.Certificate.explain_check_error e)

let test_bogus_equality_fails_induction () =
  (* claim latch = const0: true at frame 0 (init), destroyed by next = x *)
  let spec, _, q = latch_follows_input () in
  let impl, _, _ = latch_follows_input () in
  let product = Scorr.Product.make spec impl in
  let q_p = product.Scorr.Product.spec.Scorr.Product.lit_in_product q in
  let cert, _ = handcrafted_cert spec impl [ List.sort compare [ Aig.lit_false; q_p ] ] in
  match Cert.Certificate.check ~spec ~impl cert with
  | Error (Cert.Certificate.Not_inductive _) -> ()
  | Ok () -> Alcotest.fail "accepted a non-inductive relation"
  | Error e -> Alcotest.fail ("wrong rejection: " ^ Cert.Certificate.explain_check_error e)

(* --- trace-backed (DRAT) certificates ---------------------------------------------- *)

let fig2_proved_cert () =
  let spec, impl, cert = fig2_cert () in
  match Cert.Certificate.prove ~spec ~impl cert with
  | Error e -> Alcotest.fail (Cert.Certificate.explain_check_error e)
  | Ok proved -> (spec, impl, proved)

let test_proof_roundtrip_and_replay () =
  let spec, impl, proved = fig2_proved_cert () in
  (match proved.Cert.Certificate.proof with
  | Some (_ :: _) -> ()
  | Some [] | None -> Alcotest.fail "prove produced no trace segments");
  (* the replay must survive the text format *)
  let proved = Cert.Certificate.parse_string (Cert.Certificate.to_string proved) in
  match Cert.Certificate.check ~use_proof:true ~spec ~impl proved with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Cert.Certificate.explain_check_error e)

let test_proof_missing_is_rejected () =
  let spec, impl, cert = fig2_cert () in
  match Cert.Certificate.check ~use_proof:true ~spec ~impl cert with
  | Error Cert.Certificate.Proof_missing -> ()
  | Ok () -> Alcotest.fail "proof mode accepted a certificate without a trace"
  | Error e -> Alcotest.fail ("wrong rejection: " ^ Cert.Certificate.explain_check_error e)

let test_mutated_proof_is_rejected () =
  let spec, impl, proved = fig2_proved_cert () in
  let segments =
    match proved.Cert.Certificate.proof with
    | Some segs -> segs
    | None -> Alcotest.fail "no proof"
  in
  let rejects what cert =
    match Cert.Certificate.check ~use_proof:true ~spec ~impl cert with
    | Error _ -> ()
    | Ok () -> Alcotest.fail ("proof mode accepted " ^ what)
  in
  (* a non-RUP addition smuggled into the first segment *)
  let bogus =
    match segments with
    | seg :: rest -> (Sat.Dimacs.Add [ 999_999 ] :: seg) :: rest
    | [] -> Alcotest.fail "no segments"
  in
  rejects "a non-RUP clause addition"
    { proved with Cert.Certificate.proof = Some bogus };
  (* a truncated trace: the last obligation has no segment left *)
  let truncated = List.filteri (fun i _ -> i < List.length segments - 1) segments in
  rejects "a truncated trace" { proved with Cert.Certificate.proof = Some truncated };
  (* emptied segments: refutations replay to nothing, obligations fail *)
  let emptied = List.map (fun _ -> []) segments in
  rejects "an emptied trace" { proved with Cert.Certificate.proof = Some emptied }

let test_sat_k2_proof_replays () =
  let spec, impl = Circuits.Fig2.pair () in
  let options =
    { Scorr.default_options with Scorr.Verify.engine = Scorr.Verify.Sat_engine; sat_unroll = 2 }
  in
  let run = Scorr.Verify.run_with_relation ~options spec impl in
  match Cert.Certificate.of_run ~options ~spec ~impl run with
  | Error e -> Alcotest.fail (Cert.Certificate.explain_emit_error e)
  | Ok cert -> (
    match Cert.Certificate.prove ~spec ~impl cert with
    | Error e -> Alcotest.fail (Cert.Certificate.explain_check_error e)
    | Ok proved -> (
      match Cert.Certificate.check ~use_proof:true ~spec ~impl proved with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Cert.Certificate.explain_check_error e)))

let test_sat_engine_k2_certificate () =
  let spec, impl = Circuits.Fig2.pair () in
  let options =
    { Scorr.default_options with Scorr.Verify.engine = Scorr.Verify.Sat_engine; sat_unroll = 2 }
  in
  let run = Scorr.Verify.run_with_relation ~options spec impl in
  match Cert.Certificate.of_run ~options ~spec ~impl run with
  | Error e -> Alcotest.fail (Cert.Certificate.explain_emit_error e)
  | Ok cert -> (
    Alcotest.(check int) "records k" 2 cert.Cert.Certificate.induction;
    match Cert.Certificate.check ~spec ~impl cert with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Cert.Certificate.explain_check_error e))

let test_retimed_certificate_checks () =
  (* a pair that needs retiming augmentation: the certificate must record
     the rounds and the checker must replay them *)
  let spec, _ = Aig.of_netlist (Circuits.Counter.binary 8) in
  let impl =
    Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_only ~seed:7 spec
  in
  let options = Scorr.default_options in
  let run = Scorr.Verify.run_with_relation ~options spec impl in
  match Cert.Certificate.of_run ~options ~spec ~impl run with
  | Error e -> Alcotest.fail (Cert.Certificate.explain_emit_error e)
  | Ok cert -> (
    match Cert.Certificate.check ~spec ~impl cert with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Cert.Certificate.explain_check_error e))

let suite =
  [
    Alcotest.test_case "witness parser rejects malformed input" `Quick
      test_witness_parse_rejects;
    Alcotest.test_case "width mismatch is diagnosed" `Quick test_width_mismatch_diagnosed;
    Alcotest.test_case "failing frame out of range is diagnosed" `Quick
      test_frame_out_of_range_diagnosed;
    Alcotest.test_case "clean replay reports No_failure" `Quick
      test_clean_replay_is_no_failure;
    Alcotest.test_case "bmc witness refutes the product" `Quick test_bmc_witness_refutes;
    Alcotest.test_case "fig2 certificate emits and checks" `Quick
      test_fig2_certificate_checks;
    Alcotest.test_case "certificate rejects a mutated implementation" `Quick
      test_certificate_rejects_mutated_impl;
    Alcotest.test_case "certificate rejects tampering" `Quick
      test_certificate_rejects_tampering;
    Alcotest.test_case "emission refuses don't-care relations" `Quick
      test_emit_refuses_dontcare_relations;
    Alcotest.test_case "bogus equality fails the base case" `Quick
      test_bogus_equality_fails_base_case;
    Alcotest.test_case "bogus equality fails induction" `Quick
      test_bogus_equality_fails_induction;
    Alcotest.test_case "sat-engine k=2 certificate checks" `Quick
      test_sat_engine_k2_certificate;
    Alcotest.test_case "proved certificate round-trips and replays" `Quick
      test_proof_roundtrip_and_replay;
    Alcotest.test_case "proof mode rejects a missing trace" `Quick
      test_proof_missing_is_rejected;
    Alcotest.test_case "proof mode rejects mutated traces" `Quick
      test_mutated_proof_is_rejected;
    Alcotest.test_case "sat-engine k=2 proof replays" `Quick test_sat_k2_proof_replays;
    Alcotest.test_case "retimed pair certificate checks" `Quick
      test_retimed_certificate_checks;
    prop_witness_roundtrip;
    prop_cert_roundtrip;
    prop_mutant_witness_replays;
  ]

let () = Alcotest.run "cert" [ ("cert", suite) ]
