(* Signal-correspondence checker tests: the paper's method must prove
   every behaviour-preserving transformation of the library, must never
   claim equivalence of circuits that differ (soundness, cross-checked
   against exhaustive product-machine exploration on tiny circuits), and
   its data structures must respect the fixed-point invariants. *)

let bdd_opts = Scorr.default_options
let sat_opts = { Scorr.default_options with Scorr.Verify.engine = Scorr.Verify.Sat_engine }

let is_equiv = function Scorr.Equivalent _ -> true | Scorr.Not_equivalent _ | Scorr.Unknown _ -> false
let is_refuted = function Scorr.Not_equivalent _ -> true | Scorr.Equivalent _ | Scorr.Unknown _ -> false

let small_aig seed =
  let c = Test_util.random_circuit ~n_inputs:3 ~n_latches:4 ~n_gates:18 seed in
  let a, _ = Aig.of_netlist c in
  a

(* --- positive cases ------------------------------------------------------- *)

let test_self_equivalence () =
  List.iter
    (fun e ->
      let a = Circuits.Suite.aig_of e in
      if Aig.num_latches a <= 40 then
        Alcotest.(check bool) (e.Circuits.Suite.name ^ " self") true
          (is_equiv (Scorr.check a a)))
    (List.filteri (fun i _ -> i < 6) Circuits.Suite.suite)

let test_fig2 () =
  let spec, impl = Circuits.Fig2.pair () in
  List.iter
    (fun (name, opts) ->
      Alcotest.(check bool) name true (is_equiv (Scorr.check ~options:opts spec impl)))
    [ ("bdd", bdd_opts); ("sat", sat_opts) ]

let check_pipeline name transform =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:25
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let a = small_aig seed in
         let a' = transform seed a in
         is_equiv (Scorr.check a a') && is_equiv (Scorr.check ~options:sat_opts a a')))

let prop_rewrite_proved =
  check_pipeline "proves cut rewriting" (fun seed a -> Transform.Opt.rewrite ~seed a)

let prop_retime_fwd_proved =
  check_pipeline "proves forward retiming" (fun _ a -> Transform.Retime.forward ~max_steps:2 a)

let prop_retime_bwd_proved =
  check_pipeline "proves backward retiming" (fun _ a -> Transform.Retime.backward ~max_steps:1 a)

(* The full pipeline can retime past what depth-1 correspondence closes
   (rarely: e.g. seed 68234), so the k=1 engines are only required to be
   inconclusive-or-better here; the portfolio must finish the proof. *)
let prop_full_pipeline_proved =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"proves retime+rewrite+fraig+sweep" ~count:25
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let a = small_aig seed in
         let a' = Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_opt ~seed a in
         (not (is_refuted (Scorr.check a a')))
         && (not (is_refuted (Scorr.check ~options:sat_opts a a')))
         && is_equiv (Scorr.Verify.portfolio ~options:bdd_opts a a')))

let test_suite_retimed_proved () =
  List.iter
    (fun name ->
      match Circuits.Suite.find name with
      | None -> Alcotest.fail ("missing suite entry " ^ name)
      | Some e ->
        let spec = Circuits.Suite.aig_of e in
        let impl =
          Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_only ~seed:7 spec
        in
        Alcotest.(check bool) (name ^ " retimed") true (is_equiv (Scorr.check spec impl)))
    [ "ctr8"; "traffic"; "mod10"; "lfsr16"; "det-bin" ]

let test_reencoded_counters () =
  (* mod-k binary counter vs one-hot ring with the same phase outputs *)
  let spec, _ = Aig.of_netlist (Circuits.Counter.modulo 5) in
  let impl, _ = Aig.of_netlist (Circuits.Counter.ring 5) in
  Alcotest.(check bool) "mod5 vs ring5 (bdd)" true (is_equiv (Scorr.check spec impl));
  Alcotest.(check bool) "mod5 vs ring5 (sat)" true
    (is_equiv (Scorr.check ~options:sat_opts spec impl))

(* --- negative cases (soundness) -------------------------------------------- *)

let prop_mutants_never_proved =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"mutants are never proven equivalent" ~count:40
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let a = small_aig seed in
         match Transform.Mutate.observable_mutant ~seed a with
         | None -> QCheck.assume_fail ()
         | Some (mutant, _) ->
           (not (is_equiv (Scorr.check a mutant)))
           && not (is_equiv (Scorr.check ~options:sat_opts a mutant))))

let prop_soundness_vs_exhaustive =
  (* on tiny machines, an Equivalent verdict must agree with exhaustive
     product exploration; Not_equivalent must too *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"verdicts agree with exhaustive exploration" ~count:30
       QCheck.(pair (int_range 0 100_000) (int_range 0 100_000))
       (fun (seed1, seed2) ->
         let mk seed =
           let c = Test_util.random_circuit ~n_inputs:2 ~n_latches:3 ~n_gates:10 seed in
           let a, _ = Aig.of_netlist c in
           a
         in
         let a1 = mk seed1 and a2 = mk seed2 in
         let ground_truth = Test_util.bounded_seq_equiv a1 a2 in
         (match Scorr.check a1 a2 with
         | Scorr.Equivalent _ -> ground_truth
         | Scorr.Not_equivalent _ -> not ground_truth
         | Scorr.Unknown _ -> true)
         &&
         match Scorr.check ~options:sat_opts a1 a2 with
         | Scorr.Equivalent _ -> ground_truth
         | Scorr.Not_equivalent _ -> not ground_truth
         | Scorr.Unknown _ -> true))

let test_latch_init_fault_detected () =
  (* a flipped initial value is invisible combinationally but changes the
     sequential behaviour of a counter *)
  let spec, _ = Aig.of_netlist (Circuits.Counter.binary 4) in
  let mutant = Transform.Mutate.apply spec (Transform.Mutate.Flip_latch_init 0) in
  Alcotest.(check bool) "init fault refuted" true (is_refuted (Scorr.check spec mutant))

let test_deep_counterexample_not_proved () =
  (* two counters differing only in the carry-out of the top bit: the
     difference appears after 2^n steps, far beyond simulation; the
     checker must not claim equivalence (Unknown or refuted are fine) *)
  let spec, _ = Aig.of_netlist (Circuits.Counter.binary 10) in
  let mutant = Transform.Mutate.apply spec (Transform.Mutate.Stuck_output "carry") in
  Alcotest.(check bool) "stuck carry not proven" false (is_equiv (Scorr.check spec mutant))

(* --- invariants -------------------------------------------------------------- *)

let prop_classes_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"refinement only splits classes" ~count:25
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let a = small_aig seed in
         let a' = Transform.Opt.rewrite ~seed a in
         let product = Scorr.Product.make a a' in
         let pol = Scorr.Product.reference_values product in
         let partition =
           Scorr.Partition.create
             ~n_nodes:(Aig.num_nodes product.Scorr.Product.aig)
             ~candidates:(Scorr.Product.candidate_nodes product)
             ~pol
         in
         ignore (Scorr.Simseed.refine product partition);
         let ctx = Scorr.Engine_bdd.make product in
         Scorr.Engine_bdd.refine_initial ctx partition;
         let ok = ref true in
         let last = ref (Scorr.Partition.n_classes partition) in
         let iters = ref 0 in
         while Scorr.Engine_bdd.refine_once ctx partition do
           incr iters;
           let now = Scorr.Partition.n_classes partition in
           if now < !last then ok := false;
           last := now
         done;
         (* Theorem 2: iteration count is bounded by |F| + 1 *)
         !ok && !iters <= Aig.num_nodes product.Scorr.Product.aig + 1))

let prop_fixpoint_is_correspondence =
  (* at the fixed point, one more refinement pass must not split, and all
     class members must be pairwise equal at the initial state *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"fixed point satisfies Definition 2" ~count:20
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let a = small_aig seed in
         let product = Scorr.Product.make a a in
         let pol = Scorr.Product.reference_values product in
         let partition =
           Scorr.Partition.create
             ~n_nodes:(Aig.num_nodes product.Scorr.Product.aig)
             ~candidates:(Scorr.Product.candidate_nodes product)
             ~pol
         in
         ignore (Scorr.Simseed.refine product partition);
         let ctx = Scorr.Engine_bdd.make product in
         Scorr.Engine_bdd.refine_initial ctx partition;
         while Scorr.Engine_bdd.refine_once ctx partition do () done;
         (* stability *)
         (not (Scorr.Engine_bdd.refine_once ctx partition))
         &&
         (* condition 1 of Definition 2: equal at s0 for all inputs *)
         List.for_all
           (fun (rep, id) ->
             Bdd.equal
               (Scorr.Engine_bdd.norm_ini ctx partition rep)
               (Scorr.Engine_bdd.norm_ini ctx partition id))
           (Scorr.Partition.constraint_pairs partition)))

(* --- k-induction (SAT unrolling extension) ---------------------------------------- *)

let sat_k k = { sat_opts with Scorr.Verify.sat_unroll = k }

let prop_k_induction_sound =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"k=2 SAT engine is sound" ~count:25
       QCheck.(pair (int_range 0 100_000) (int_range 0 100_000))
       (fun (seed1, seed2) ->
         let mk seed =
           let c = Test_util.random_circuit ~n_inputs:2 ~n_latches:3 ~n_gates:10 seed in
           let a, _ = Aig.of_netlist c in
           a
         in
         let a1 = mk seed1 and a2 = mk seed2 in
         match Scorr.check ~options:(sat_k 2) a1 a2 with
         | Scorr.Equivalent _ -> Test_util.bounded_seq_equiv a1 a2
         | Scorr.Not_equivalent _ -> not (Test_util.bounded_seq_equiv a1 a2)
         | Scorr.Unknown _ -> true))

let prop_k2_extends_k1 =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"k=2 proves whatever k=1 proves" ~count:20
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let a = small_aig seed in
         let a' = Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_opt ~seed a in
         (not (is_equiv (Scorr.check ~options:(sat_k 1) a a')))
         || is_equiv (Scorr.check ~options:(sat_k 2) a a')))

let test_k_induction_on_suite () =
  List.iter
    (fun name ->
      match Circuits.Suite.find name with
      | None -> ()
      | Some e ->
        let spec = Circuits.Suite.aig_of e in
        let impl =
          Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_only ~seed:5 spec
        in
        Alcotest.(check bool) (name ^ " k=2") true
          (is_equiv (Scorr.check ~options:(sat_k 2) spec impl)))
    [ "ctr8"; "traffic"; "mod10" ]

let test_portfolio_closes_k1_gaps () =
  (* crc32 retime+opt is the documented k=1-incomplete case: the portfolio
     must close it by escalating to k=2 *)
  let spec = Circuits.Suite.aig_of (Option.get (Circuits.Suite.find "crc32")) in
  let impl = Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_opt ~seed:11 spec in
  Alcotest.(check bool) "k=1 bdd does not prove" false
    (is_equiv (Scorr.check ~options:{ bdd_opts with Scorr.Verify.node_limit = 500_000 } spec impl));
  Alcotest.(check bool) "portfolio proves" true (is_equiv (Scorr.portfolio spec impl))

let prop_portfolio_sound =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"portfolio is sound" ~count:20
       QCheck.(pair (int_range 0 100_000) (int_range 0 100_000))
       (fun (seed1, seed2) ->
         let mk seed =
           let c = Test_util.random_circuit ~n_inputs:2 ~n_latches:3 ~n_gates:10 seed in
           let a, _ = Aig.of_netlist c in
           a
         in
         let a1 = mk seed1 and a2 = mk seed2 in
         match Scorr.portfolio a1 a2 with
         | Scorr.Equivalent _ -> Test_util.bounded_seq_equiv a1 a2
         | Scorr.Not_equivalent _ -> not (Test_util.bounded_seq_equiv a1 a2)
         | Scorr.Unknown _ -> true))

(* --- engine agreement ---------------------------------------------------------- *)

let prop_engines_agree =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"bdd and sat engines give the same verdict" ~count:20
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let a = small_aig seed in
         let a' = Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_opt ~seed a in
         is_equiv (Scorr.check a a') = is_equiv (Scorr.check ~options:sat_opts a a')))

let prop_engines_compute_same_relation =
  (* Theorem 2: the maximum signal correspondence relation is unique, so
     both engines — BDD refinement and SAT with counterexample-driven bulk
     splits (a different chaotic iteration order) — must converge to the
     same partition *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"bdd and sat engines reach the same fixed point" ~count:15
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let a = small_aig seed in
         let a' = Transform.Opt.rewrite ~seed a in
         let relation opts =
           match Scorr.Verify.run_with_relation ~options:opts a a' with
           | Scorr.Equivalent _, _, Some p -> Some p
           | _ -> None
         in
         let no_retime o = { o with Scorr.Verify.use_retime = false } in
         match (relation (no_retime bdd_opts), relation (no_retime sat_opts)) with
         | Some pb, Some ps ->
           Scorr.Partition.n_classes pb = Scorr.Partition.n_classes ps
           && List.sort compare
                (List.map (List.sort compare)
                   (List.map (Scorr.Partition.members pb)
                      (Scorr.Partition.multi_member_classes pb)))
              = List.sort compare
                  (List.map (List.sort compare)
                     (List.map (Scorr.Partition.members ps)
                        (Scorr.Partition.multi_member_classes ps)))
         | _ -> true))

let prop_batched_matches_pairwise =
  (* the counterexample pool, batched disjunctive sweeps and the stability
     cache are pure accelerators: for either engine the final partition,
     the verdict and the equivalence score must be exactly those of the
     legacy one-solve-per-pair path *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"batched sweeps reach the pairwise fixed point" ~count:12
       QCheck.(pair (int_range 0 100_000) bool)
       (fun (seed, use_sat) ->
         let a = small_aig seed in
         let a' = Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_opt ~seed a in
         let base = if use_sat then sat_opts else bdd_opts in
         let run batched =
           Scorr.Verify.run_with_relation
             ~options:{ base with Scorr.Verify.use_batched_sweeps = batched }
             a a'
         in
         let classes = function
           | _, _, Some p ->
             Some
               (List.sort compare
                  (List.map
                     (fun c -> List.sort compare (Scorr.Partition.members p c))
                     (Scorr.Partition.multi_member_classes p)))
           | _, _, None -> None
         in
         let tag = function
           | Scorr.Equivalent _ -> 0
           | Scorr.Not_equivalent _ -> 1
           | Scorr.Unknown _ -> 2
         in
         let ((vb, _, _) as rb) = run true and ((vp, _, _) as rp) = run false in
         tag vb = tag vp
         && (Scorr.Verify.verdict_stats vb).Scorr.Verify.eq_pct
            = (Scorr.Verify.verdict_stats vp).Scorr.Verify.eq_pct
         && classes rb = classes rp))

let prop_parallel_matches_sequential =
  (* the domain-parallel scheduler freezes the partition per round, solves
     classes in worker lanes and merges the verdicts serially in canonical
     class order, so for any worker count the fixed point must be exactly
     the sequential one: same verdict, same equivalence score, same final
     partition (the greatest fixed point is unique; only the schedule of
     sound splits differs) *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"parallel sweeps reach the sequential fixed point" ~count:8
       QCheck.(pair (int_range 0 100_000) bool)
       (fun (seed, use_sat) ->
         let a = small_aig seed in
         let a' = Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_opt ~seed a in
         let base = if use_sat then sat_opts else bdd_opts in
         let run jobs =
           Scorr.Verify.run_with_relation ~options:{ base with Scorr.Verify.jobs } a a'
         in
         let classes = function
           | _, _, Some p ->
             Some
               (List.sort compare
                  (List.map
                     (fun c -> List.sort compare (Scorr.Partition.members p c))
                     (Scorr.Partition.multi_member_classes p)))
           | _, _, None -> None
         in
         let tag = function
           | Scorr.Equivalent _ -> 0
           | Scorr.Not_equivalent _ -> 1
           | Scorr.Unknown _ -> 2
         in
         let ((v1, _, _) as r1) = run 1 in
         List.for_all
           (fun jobs ->
             let ((v, _, _) as r) = run jobs in
             tag v = tag v1
             && (Scorr.Verify.verdict_stats v).Scorr.Verify.eq_pct
                = (Scorr.Verify.verdict_stats v1).Scorr.Verify.eq_pct
             && classes r = classes r1)
           [ 2; 4 ]))

let prop_incremental_matches_fresh =
  (* persistent incremental solving — activation-guarded obligations on one
     live solver per lane, learned-clause sharing at merge points, failed-core
     proof transfer — is a pure accelerator: under any worker count, verdict,
     equivalence score and final partition must match the fresh-solver-per-
     class baseline exactly *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"incremental sat matches fresh solvers" ~count:10
       QCheck.(pair (int_range 0 100_000) (int_range 1 2))
       (fun (seed, k) ->
         let a = small_aig seed in
         let a' = Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_opt ~seed a in
         let run ~jobs ~incr =
           Scorr.Verify.run_with_relation
             ~options:
               { sat_opts with
                 Scorr.Verify.jobs;
                 use_incremental = incr;
                 sat_unroll = k
               }
             a a'
         in
         let classes = function
           | _, _, Some p ->
             Some
               (List.sort compare
                  (List.map
                     (fun c -> List.sort compare (Scorr.Partition.members p c))
                     (Scorr.Partition.multi_member_classes p)))
           | _, _, None -> None
         in
         let tag = function
           | Scorr.Equivalent _ -> 0
           | Scorr.Not_equivalent _ -> 1
           | Scorr.Unknown _ -> 2
         in
         List.for_all
           (fun jobs ->
             let ((vi, _, _) as ri) = run ~jobs ~incr:true
             and ((vf, _, _) as rf) = run ~jobs ~incr:false in
             tag vi = tag vf
             && (Scorr.Verify.verdict_stats vi).Scorr.Verify.eq_pct
                = (Scorr.Verify.verdict_stats vf).Scorr.Verify.eq_pct
             && classes ri = classes rf)
           [ 1; 2; 4 ]))

let prop_speculation_matches_plain =
  (* speculative reduction — merge all candidates, discharge assumption
     obligations on the reduced product through the per-class dispatcher,
     refine on refutation — reaches the same greatest fixed point as the
     plain per-class sweep (the exactness lemma in specreduce.ml): under
     either engine and any worker count, verdict, equivalence score and
     final partition must match exactly.  Analysis is off so neither arm
     pre-reduces and the partitions live over the same product. *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"speculation matches plain sweeps" ~count:8
       QCheck.(pair (int_range 0 100_000) (oneofl [ `Bdd; `Sat ]))
       (fun (seed, eng) ->
         let a = small_aig seed in
         let a' = Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_opt ~seed a in
         let base = match eng with `Bdd -> bdd_opts | `Sat -> sat_opts in
         let run ~jobs ~spec =
           Scorr.Verify.run_with_relation
             ~options:{ base with Scorr.Verify.jobs; use_speculation = spec }
             a a'
         in
         let classes = function
           | _, _, Some p ->
             Some
               (List.sort compare
                  (List.map
                     (fun c -> List.sort compare (Scorr.Partition.members p c))
                     (Scorr.Partition.multi_member_classes p)))
           | _, _, None -> None
         in
         let tag = function
           | Scorr.Equivalent _ -> 0
           | Scorr.Not_equivalent _ -> 1
           | Scorr.Unknown _ -> 2
         in
         List.for_all
           (fun jobs ->
             let ((vs, _, _) as rs) = run ~jobs ~spec:true
             and ((vp, _, _) as rp) = run ~jobs ~spec:false in
             tag vs = tag vp
             && (Scorr.Verify.verdict_stats vs).Scorr.Verify.eq_pct
                = (Scorr.Verify.verdict_stats vp).Scorr.Verify.eq_pct
             && classes rs = classes rp)
           [ 1; 2; 4 ]))

(* --- register correspondence ----------------------------------------------------- *)

let test_regcorr_proves_comb_opt () =
  (* combinational optimization preserves registers: provable by the
     restricted method of [5]/[9] *)
  let spec, _ = Aig.of_netlist (Circuits.Counter.modulo 10) in
  let impl = Transform.Opt.rewrite ~seed:3 spec in
  Alcotest.(check bool) "regcorr proves rewrite" true
    (is_equiv (Scorr.register_correspondence spec impl))

let test_regcorr_fails_on_retiming () =
  (* the motivating gap: register correspondence cannot relate retimed
     registers, while full signal correspondence can *)
  let spec, _ = Aig.of_netlist (Circuits.Counter.binary 6) in
  let impl = Transform.Retime.backward ~max_steps:1 spec in
  let regcorr =
    Scorr.register_correspondence
      ~options:{ bdd_opts with Scorr.Verify.use_retime = false }
      spec impl
  in
  let full = Scorr.check spec impl in
  Alcotest.(check bool) "signal correspondence proves" true (is_equiv full);
  Alcotest.(check bool) "register correspondence alone does not" false (is_equiv regcorr)

let prop_regcorr_sound =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"register correspondence is sound" ~count:25
       QCheck.(pair (int_range 0 100_000) (int_range 0 100_000))
       (fun (seed1, seed2) ->
         let mk seed =
           let c = Test_util.random_circuit ~n_inputs:2 ~n_latches:3 ~n_gates:10 seed in
           let a, _ = Aig.of_netlist c in
           a
         in
         let a1 = mk seed1 and a2 = mk seed2 in
         match Scorr.register_correspondence a1 a2 with
         | Scorr.Equivalent _ -> Test_util.bounded_seq_equiv a1 a2
         | Scorr.Not_equivalent _ -> not (Test_util.bounded_seq_equiv a1 a2)
         | Scorr.Unknown _ -> true))

(* --- options / ablations ------------------------------------------------------------ *)

let test_no_simseed_still_works () =
  let spec, _ = Aig.of_netlist (Circuits.Counter.binary 6) in
  let impl = Transform.Opt.rewrite ~seed:9 spec in
  let opts = { bdd_opts with Scorr.Verify.use_sim_seed = false } in
  Alcotest.(check bool) "proved without seeding" true
    (is_equiv (Scorr.check ~options:opts spec impl))

let test_no_fundep_still_works () =
  let spec, _ = Aig.of_netlist (Circuits.Counter.binary 6) in
  let impl = Transform.Retime.backward ~max_steps:1 spec in
  let opts = { bdd_opts with Scorr.Verify.use_fundep = false } in
  Alcotest.(check bool) "proved without fundep" true
    (is_equiv (Scorr.check ~options:opts spec impl))

let test_dontcare_option () =
  let spec, _ = Aig.of_netlist (Circuits.Counter.modulo 5) in
  let impl, _ = Aig.of_netlist (Circuits.Counter.ring 5) in
  let opts = { bdd_opts with Scorr.Verify.use_reach_dontcare = true } in
  Alcotest.(check bool) "proved with reachable don't-cares" true
    (is_equiv (Scorr.check ~options:opts spec impl))

let test_retime_augmentation_adds_signals () =
  (* a gate fed by two latches must produce an augmentation signal *)
  let a = Aig.create () in
  let x = Aig.add_pi a and y = Aig.add_pi a in
  let q1 = Aig.add_latch a ~init:false and q2 = Aig.add_latch a ~init:false in
  Aig.set_latch_next a q1 ~next:x;
  Aig.set_latch_next a q2 ~next:y;
  Aig.add_po a "o" (Aig.mk_and a q1 q2);
  let p = Scorr.Product.make a a in
  let before = Aig.num_nodes p.Scorr.Product.aig in
  let added = Scorr.Retime_aug.augment p in
  Alcotest.(check bool) "signals added" true (added > 0);
  Alcotest.(check int) "node count grew" (before + added) (Aig.num_nodes p.Scorr.Product.aig);
  (* idempotent second round: the same logic is hashed, nothing new *)
  Alcotest.(check int) "second round adds nothing" 0 (Scorr.Retime_aug.augment p)

let suite =
  [ Alcotest.test_case "self equivalence" `Quick test_self_equivalence;
    Alcotest.test_case "fig2 example" `Quick test_fig2;
    Alcotest.test_case "suite retimed proved" `Quick test_suite_retimed_proved;
    Alcotest.test_case "re-encoded counters" `Quick test_reencoded_counters;
    Alcotest.test_case "latch init fault" `Quick test_latch_init_fault_detected;
    Alcotest.test_case "deep fault not proven" `Quick test_deep_counterexample_not_proved;
    Alcotest.test_case "regcorr proves comb opt" `Quick test_regcorr_proves_comb_opt;
    Alcotest.test_case "regcorr fails on retiming" `Quick test_regcorr_fails_on_retiming;
    Alcotest.test_case "works without simseed" `Quick test_no_simseed_still_works;
    Alcotest.test_case "works without fundep" `Quick test_no_fundep_still_works;
    Alcotest.test_case "reachable dontcare option" `Quick test_dontcare_option;
    Alcotest.test_case "retime augmentation" `Quick test_retime_augmentation_adds_signals;
    prop_rewrite_proved;
    prop_retime_fwd_proved;
    prop_retime_bwd_proved;
    prop_full_pipeline_proved;
    prop_mutants_never_proved;
    prop_soundness_vs_exhaustive;
    prop_classes_monotone;
    prop_fixpoint_is_correspondence;
    prop_engines_agree;
    prop_engines_compute_same_relation;
    prop_batched_matches_pairwise;
    prop_parallel_matches_sequential;
    prop_incremental_matches_fresh;
    prop_speculation_matches_plain;
    prop_regcorr_sound;
    prop_k_induction_sound;
    prop_k2_extends_k1;
    Alcotest.test_case "k-induction on suite" `Quick test_k_induction_on_suite;
    Alcotest.test_case "portfolio closes k=1 gaps" `Quick test_portfolio_closes_k1_gaps;
    prop_portfolio_sound;
  ]

let () = Alcotest.run "scorr" [ ("scorr", suite) ]
