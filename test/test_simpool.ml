(* Unit tests of the counterexample pattern pool: lane packing, the
   masked flush (an unused all-zero lane is not a witness and must never
   split a class), and buffer reset between flushes. *)

(* A tiny product-style AIG: PIs x, y; a latch q; and the gate x & y. *)
let mk_aig () =
  let t = Aig.create () in
  let x = Aig.add_pi t in
  let y = Aig.add_pi t in
  let q = Aig.add_latch t ~init:false in
  let f = Aig.mk_and t x y in
  Aig.set_latch_next t q ~next:f;
  Aig.add_po t "out" q;
  (t, Aig.node_of_lit x, Aig.node_of_lit y, Aig.node_of_lit q, Aig.node_of_lit f)

let mk_partition t ?(pol = []) candidates =
  let pol_arr = Array.make (Aig.num_nodes t) false in
  List.iter (fun i -> pol_arr.(i) <- true) pol;
  Scorr.Partition.create ~n_nodes:(Aig.num_nodes t) ~candidates ~pol:pol_arr

let test_lane_packing () =
  let aig, _, _, _, _ = mk_aig () in
  let pool = Scorr.Simpool.create aig in
  Alcotest.(check int) "empty" 0 (Scorr.Simpool.lanes pool);
  Alcotest.(check bool) "not full" false (Scorr.Simpool.is_full pool);
  for lane = 1 to 64 do
    Scorr.Simpool.add pool ~pi:(fun _ -> lane mod 2 = 0) ~latch:(fun _ -> false);
    Alcotest.(check int) "lane count" lane (Scorr.Simpool.lanes pool)
  done;
  Alcotest.(check bool) "full after 64" true (Scorr.Simpool.is_full pool);
  Alcotest.(check int) "total lanes" 64 (Scorr.Simpool.total_lanes pool);
  Alcotest.check_raises "65th lane rejected"
    (Invalid_argument "Simpool.add: pool is full") (fun () ->
      Scorr.Simpool.add pool ~pi:(fun _ -> false) ~latch:(fun _ -> false))

let test_flush_splits_by_pattern () =
  let aig, x, y, q, f = mk_aig () in
  let pool = Scorr.Simpool.create aig in
  let p = mk_partition aig [ x; y; q; f ] in
  (* pattern x=1 y=0 q=1: values x=1, y=0, q=1, f=0 *)
  Scorr.Simpool.add pool ~pi:(fun i -> i = 0) ~latch:(fun _ -> true);
  let created = Scorr.Simpool.flush pool p in
  Alcotest.(check int) "one class created" 1 created;
  Alcotest.(check (list int))
    "ones group keeps the class" [ x; q ]
    (List.sort compare (Scorr.Partition.members p 0));
  Alcotest.(check (list int))
    "zeros group" [ y; f ]
    (List.sort compare (Scorr.Partition.members p 1));
  Alcotest.(check int) "split counter" 1 (Scorr.Simpool.resim_splits pool);
  Alcotest.(check int) "flush counter" 1 (Scorr.Simpool.flushes pool)

let test_unused_lanes_masked () =
  let aig, x, y, _, _ = mk_aig () in
  let pool = Scorr.Simpool.create aig in
  (* candidates x and !y: on the single buffered pattern x=0 y=1 both
     normalize to 0, so they must stay together.  On the 63 *unused*
     all-zero lanes x=0 but !y=1 — if those lanes leaked into the key the
     class would split spuriously. *)
  let p = mk_partition aig ~pol:[ y ] [ x; y ] in
  Scorr.Simpool.add pool ~pi:(fun i -> i = 1) ~latch:(fun _ -> false);
  let created = Scorr.Simpool.flush pool p in
  Alcotest.(check int) "no spurious split" 0 created;
  Alcotest.(check int) "still one class" 1 (Scorr.Partition.n_classes p)

let test_flush_resets_buffer () =
  let aig, x, y, q, f = mk_aig () in
  let pool = Scorr.Simpool.create aig in
  let p = mk_partition aig [ x; y; q; f ] in
  (* first fill agrees everywhere (all-ones pattern): no split *)
  Scorr.Simpool.add pool ~pi:(fun _ -> true) ~latch:(fun _ -> true);
  Alcotest.(check int) "agreeing pattern" 0 (Scorr.Simpool.flush pool p);
  Alcotest.(check int) "buffer drained" 0 (Scorr.Simpool.lanes pool);
  (* an empty flush is a no-op, not a recorded flush *)
  Alcotest.(check int) "empty flush" 0 (Scorr.Simpool.flush pool p);
  Alcotest.(check int) "flush counter" 1 (Scorr.Simpool.flushes pool);
  (* the earlier lane must not survive the reset: q=0 here, and if the old
     all-ones lane were still buffered x/q would differ on it *)
  Scorr.Simpool.add pool ~pi:(fun _ -> true) ~latch:(fun _ -> false);
  let created = Scorr.Simpool.flush pool p in
  Alcotest.(check int) "split on fresh lane only" 1 created;
  Alcotest.(check (list int))
    "x y f together" [ x; y; f ]
    (List.sort compare (Scorr.Partition.members p 0));
  Alcotest.(check int) "total lanes accumulate" 2 (Scorr.Simpool.total_lanes pool)

let suite =
  [ Alcotest.test_case "lane packing" `Quick test_lane_packing;
    Alcotest.test_case "flush splits by pattern" `Quick test_flush_splits_by_pattern;
    Alcotest.test_case "unused lanes are masked" `Quick test_unused_lanes_masked;
    Alcotest.test_case "flush resets the buffer" `Quick test_flush_resets_buffer;
  ]

let () = Alcotest.run "simpool" [ ("simpool", suite) ]
