(* Symbolic traversal tests: exact reachability counts on known machines,
   equivalence checking on products, functional dependencies, and the
   soundness of the approximate upper bound. *)

let trans_of_netlist c =
  let a, _ = Aig.of_netlist c in
  Reach.Trans.make a

let run_reachable ?budget ?use_fundep trans =
  match (Reach.Traversal.run ?budget ?use_fundep trans).Reach.Traversal.outcome with
  | Reach.Traversal.Fixpoint r -> r
  | Reach.Traversal.Property_violation _ -> Alcotest.fail "unexpected violation"
  | Reach.Traversal.Budget_exceeded what -> Alcotest.fail ("budget: " ^ what)

let test_counter_states () =
  (* n-bit counter reaches all 2^n states *)
  List.iter
    (fun n ->
      let trans = trans_of_netlist (Circuits.Counter.binary n) in
      let reached = run_reachable trans in
      Alcotest.(check (float 0.01))
        (Printf.sprintf "%d-bit counter" n)
        (2.0 ** float_of_int n)
        (Reach.Traversal.count_states trans reached))
    [ 2; 4; 6 ]

let test_modulo_states () =
  List.iter
    (fun k ->
      let trans = trans_of_netlist (Circuits.Counter.modulo k) in
      let reached = run_reachable trans in
      Alcotest.(check (float 0.01))
        (Printf.sprintf "mod-%d counter" k)
        (float_of_int k)
        (Reach.Traversal.count_states trans reached))
    [ 3; 5; 10 ]

let test_ring_states () =
  let trans = trans_of_netlist (Circuits.Counter.ring 5) in
  let reached = run_reachable trans in
  Alcotest.(check (float 0.01)) "5-ring" 5.0 (Reach.Traversal.count_states trans reached)

let product_trans spec impl =
  let p = Scorr.Product.make spec impl in
  Reach.Trans.make p.Scorr.Product.aig

let test_product_equivalence () =
  let spec, impl = Circuits.Fig2.pair () in
  let trans = product_trans spec impl in
  match (Reach.Traversal.check_equivalence trans).Reach.Traversal.outcome with
  | Reach.Traversal.Fixpoint _ -> ()
  | _ -> Alcotest.fail "fig2 pair should be proven by traversal"

let test_product_violation () =
  let spec, _ = Aig.of_netlist (Circuits.Counter.modulo 5) in
  match Transform.Mutate.observable_mutant ~seed:4 spec with
  | None -> Alcotest.fail "no observable mutant"
  | Some (mutant, _) -> (
    let trans = product_trans spec mutant in
    match (Reach.Traversal.check_equivalence trans).Reach.Traversal.outcome with
    | Reach.Traversal.Property_violation _ -> ()
    | Reach.Traversal.Fixpoint _ -> Alcotest.fail "mutant wrongly proven"
    | Reach.Traversal.Budget_exceeded what -> Alcotest.fail ("budget: " ^ what))

let test_budget_enforced () =
  let trans = trans_of_netlist (Circuits.Counter.binary 24) in
  let budget =
    { Reach.Traversal.max_iterations = 50; max_live_nodes = max_int; max_seconds = 60.0 }
  in
  match (Reach.Traversal.run ~budget trans).Reach.Traversal.outcome with
  | Reach.Traversal.Budget_exceeded _ -> ()
  | _ -> Alcotest.fail "24-bit counter should exceed 50 iterations"

let prop_fundep_same_reachable =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"fundep traversal reaches the same set" ~count:30
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let c = Test_util.random_circuit ~n_inputs:3 ~n_latches:4 ~n_gates:15 seed in
         let a, _ = Aig.of_netlist c in
         let t1 = Reach.Trans.make a and t2 = Reach.Trans.make a in
         let r1 = run_reachable ~use_fundep:false t1 in
         let r2 = run_reachable ~use_fundep:true t2 in
         (* same manager layout, but different managers: compare by count
            and by evaluation on all states *)
         let n = Aig.num_latches a in
         let all_states_equal =
           let rec go bits =
             bits >= 1 lsl n
             ||
             let env_of t v =
               let arr = t.Reach.Trans.cs_vars in
               let rec idx i = if i >= Array.length arr then None else if arr.(i) = v then Some i else idx (i + 1) in
               match idx 0 with Some i -> bits land (1 lsl i) <> 0 | None -> false
             in
             Bdd.eval r1 (env_of t1) = Bdd.eval r2 (env_of t2) && go (bits + 1)
           in
           go 0
         in
         all_states_equal))

let prop_approx_is_upper_bound =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"approximate reach contains exact reach" ~count:30
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let c = Test_util.random_circuit ~n_inputs:3 ~n_latches:5 ~n_gates:15 seed in
         let a, _ = Aig.of_netlist c in
         let trans = Reach.Trans.make a in
         let exact = run_reachable trans in
         let approx = Reach.Approx.upper_bound ~block_size:2 trans in
         Bdd.is_false (Bdd.mk_and trans.Reach.Trans.m exact (Bdd.mk_not trans.Reach.Trans.m approx))))

let test_approx_excludes_unreachable () =
  (* mod-5 counter on 3 bits: approx with block covering all latches is
     exact, so states 5..7 are excluded *)
  let trans = trans_of_netlist (Circuits.Counter.modulo 5) in
  let approx = Reach.Approx.upper_bound ~block_size:4 trans in
  let cs = trans.Reach.Trans.cs_vars in
  let env_of bits v =
    let rec idx i = if cs.(i) = v then i else idx (i + 1) in
    bits land (1 lsl idx 0) <> 0
  in
  List.iter
    (fun bits ->
      Alcotest.(check bool)
        (Printf.sprintf "state %d excluded" bits)
        false
        (Bdd.eval approx (env_of bits)))
    [ 5; 6; 7 ];
  List.iter
    (fun bits ->
      Alcotest.(check bool) (Printf.sprintf "state %d included" bits) true
        (Bdd.eval approx (env_of bits)))
    [ 0; 1; 2; 3; 4 ]

let test_fundep_detect () =
  (* R = (a <-> b) /\ c: b is dependent on a, c is dependent (constant) *)
  let m = Bdd.create () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 and c = Bdd.var m 2 in
  let r = Bdd.mk_and m (Bdd.mk_iff m a b) c in
  let deps, compressed = Reach.Fundep.detect m r ~candidates:[ 1; 2 ] in
  Alcotest.(check int) "two dependencies" 2 (List.length deps);
  Alcotest.(check bool) "compressed to true" true (Bdd.is_true compressed);
  let rebuilt = Reach.Fundep.reconstruct m compressed deps in
  Alcotest.(check bool) "reconstruct" true (Bdd.equal rebuilt r)

let test_fundep_product_compression () =
  (* product of a circuit with itself: every impl state var is dependent *)
  let spec, _ = Aig.of_netlist (Circuits.Counter.binary 4) in
  let trans = product_trans spec spec in
  let r = run_reachable ~use_fundep:true trans in
  (* impl state variables must be functions of spec's in the reached set *)
  let impl_cs =
    Array.to_list (Array.sub trans.Reach.Trans.cs_vars 4 4)
  in
  let deps, _ = Reach.Fundep.detect trans.Reach.Trans.m r ~candidates:impl_cs in
  Alcotest.(check int) "all impl vars dependent" 4 (List.length deps)

(* --- bounded model checking -------------------------------------------------- *)

let product_aig spec impl = (Scorr.Product.make spec impl).Scorr.Product.aig

let test_bmc_equivalent_clean () =
  let spec, impl = Circuits.Fig2.pair () in
  match Reach.Bmc.check ~max_depth:12 (product_aig spec impl) with
  | Reach.Bmc.No_counterexample d -> Alcotest.(check int) "full depth" 12 d
  | Reach.Bmc.Counterexample _ -> Alcotest.fail "spurious counterexample"
  | Reach.Bmc.Budget what -> Alcotest.fail ("budget: " ^ what)

let test_bmc_finds_latch_fault () =
  (* flipping an initial value shows up at a small depth with a trace *)
  let spec, _ = Aig.of_netlist (Circuits.Counter.modulo 5) in
  let mutant = Transform.Mutate.apply spec (Transform.Mutate.Flip_latch_init 1) in
  let product = product_aig spec mutant in
  match Reach.Bmc.check ~max_depth:8 product with
  | Reach.Bmc.Counterexample cex ->
    Alcotest.(check bool) "replay confirms" true
      (Cert.Witness.refutes product (Cert.Witness.of_bmc cex));
    Alcotest.(check bool) "trace length" true (Array.length cex.Reach.Bmc.inputs = cex.depth + 1)
  | Reach.Bmc.No_counterexample _ -> Alcotest.fail "missed the fault"
  | Reach.Bmc.Budget what -> Alcotest.fail ("budget: " ^ what)

let prop_bmc_agrees_with_exhaustive =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"bmc agrees with exhaustive exploration" ~count:30
       QCheck.(pair (int_range 0 100_000) (int_range 0 100_000))
       (fun (seed1, seed2) ->
         let mk seed =
           let c = Test_util.random_circuit ~n_inputs:2 ~n_latches:3 ~n_gates:10 seed in
           let a, _ = Aig.of_netlist c in
           a
         in
         let a1 = mk seed1 and a2 = mk seed2 in
         let equal = Test_util.bounded_seq_equiv a1 a2 in
         (* 3 latches per side: every joint state is reachable within 2^6
            steps if at all; depth 70 is exhaustive for differences that
            exist *)
         match Reach.Bmc.check ~max_depth:(if equal then 12 else 70) (product_aig a1 a2) with
         | Reach.Bmc.Counterexample cex ->
           (not equal) && Cert.Witness.refutes (product_aig a1 a2) (Cert.Witness.of_bmc cex)
         | Reach.Bmc.No_counterexample _ -> equal
         | Reach.Bmc.Budget _ -> true))

(* --- plain k-induction ---------------------------------------------------------- *)

let test_induction_proves_simple () =
  (* a binary counter exposes every state bit on its outputs, so output
     equality of the self-product is 1-inductive *)
  let a, _ = Aig.of_netlist (Circuits.Counter.binary 4) in
  let p = Scorr.Product.make a a in
  match Reach.Induction.check p.Scorr.Product.aig with
  | Reach.Induction.Proved k -> Alcotest.(check bool) "small k" true (k <= 2)
  | Reach.Induction.Refuted _ -> Alcotest.fail "refuted an identity"
  | Reach.Induction.Unknown w -> Alcotest.fail ("unknown: " ^ w)

let test_induction_incomplete_on_hidden_state () =
  (* the mod-5 self-product is NOT output-inductive: an adversarial start
     state in the unreachable range (5..7 on 3 bits) keeps the outputs
     equal for arbitrarily many stalled frames and then diverges — the
     classical incompleteness of k-induction without uniqueness, and
     exactly the gap the signal-correspondence relation closes *)
  let a, _ = Aig.of_netlist (Circuits.Counter.modulo 5) in
  let p = Scorr.Product.make a a in
  (match Reach.Induction.check ~max_k:5 p.Scorr.Product.aig with
  | Reach.Induction.Unknown _ -> ()
  | Reach.Induction.Proved _ -> Alcotest.fail "unexpectedly inductive"
  | Reach.Induction.Refuted _ -> Alcotest.fail "refuted an identity");
  (* while signal correspondence proves it immediately *)
  Alcotest.(check bool) "scorr proves it" true
    (match Scorr.check a a with Scorr.Equivalent _ -> true | _ -> false)

let test_induction_refutes_mutant () =
  let a, _ = Aig.of_netlist (Circuits.Counter.modulo 5) in
  let mutant = Transform.Mutate.apply a (Transform.Mutate.Flip_latch_init 1) in
  let p = Scorr.Product.make a mutant in
  match Reach.Induction.check p.Scorr.Product.aig with
  | Reach.Induction.Refuted cex ->
    Alcotest.(check bool) "replay" true
      (Cert.Witness.refutes p.Scorr.Product.aig (Cert.Witness.of_bmc cex))
  | Reach.Induction.Proved _ -> Alcotest.fail "proved a mutant"
  | Reach.Induction.Unknown w -> Alcotest.fail ("unknown: " ^ w)

let prop_induction_sound =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"k-induction is sound" ~count:25
       QCheck.(pair (int_range 0 100_000) (int_range 0 100_000))
       (fun (seed1, seed2) ->
         let mk seed =
           let c = Test_util.random_circuit ~n_inputs:2 ~n_latches:3 ~n_gates:10 seed in
           let a, _ = Aig.of_netlist c in
           a
         in
         let a1 = mk seed1 and a2 = mk seed2 in
         let p = Scorr.Product.make a1 a2 in
         match Reach.Induction.check ~max_k:4 p.Scorr.Product.aig with
         | Reach.Induction.Proved _ -> Test_util.bounded_seq_equiv a1 a2
         | Reach.Induction.Refuted _ -> not (Test_util.bounded_seq_equiv a1 a2)
         | Reach.Induction.Unknown _ -> true))

let suite =
  [ Alcotest.test_case "counter reachable counts" `Quick test_counter_states;
    Alcotest.test_case "modulo reachable counts" `Quick test_modulo_states;
    Alcotest.test_case "ring reachable count" `Quick test_ring_states;
    Alcotest.test_case "product equivalence" `Quick test_product_equivalence;
    Alcotest.test_case "product violation" `Quick test_product_violation;
    Alcotest.test_case "budget enforced" `Quick test_budget_enforced;
    Alcotest.test_case "fundep detect" `Quick test_fundep_detect;
    Alcotest.test_case "fundep product compression" `Quick test_fundep_product_compression;
    Alcotest.test_case "approx excludes unreachable" `Quick test_approx_excludes_unreachable;
    Alcotest.test_case "bmc clean on equivalent pair" `Quick test_bmc_equivalent_clean;
    Alcotest.test_case "bmc finds latch fault" `Quick test_bmc_finds_latch_fault;
    prop_bmc_agrees_with_exhaustive;
    Alcotest.test_case "induction proves identity" `Quick test_induction_proves_simple;
    Alcotest.test_case "induction incomplete on hidden state" `Quick
      test_induction_incomplete_on_hidden_state;
    Alcotest.test_case "induction refutes mutant" `Quick test_induction_refutes_mutant;
    prop_induction_sound;
    prop_fundep_same_reachable;
    prop_approx_is_upper_bound;
  ]

let () = Alcotest.run "reach" [ ("reach", suite) ]
