(* SAT solver tests: random CNF instances are cross-checked against a
   brute-force enumerator; classic crafted families exercise learning. *)

let brute_force nvars clauses =
  (* clauses as DIMACS int lists *)
  let sat_under bits =
    List.for_all
      (List.exists (fun l ->
           let v = abs l - 1 in
           let value = bits land (1 lsl v) <> 0 in
           if l > 0 then value else not value))
      clauses
  in
  let rec go bits = bits < 1 lsl nvars && (sat_under bits || go (bits + 1)) in
  go 0

let solve_clauses nvars clauses =
  let s = Sat.create () in
  Sat.ensure_vars s nvars;
  List.iter (fun c -> Sat.add_clause s (List.map Sat.Lit.of_int c)) clauses;
  (s, Sat.solve s)

let cnf_gen =
  let open QCheck.Gen in
  let nvars = 6 in
  let lit = map2 (fun v s -> if s then v + 1 else -(v + 1)) (int_bound (nvars - 1)) bool in
  let clause = list_size (int_range 1 4) lit in
  map (fun cs -> (nvars, cs)) (list_size (int_range 1 30) clause)

let arbitrary_cnf =
  QCheck.make cnf_gen ~print:(fun (_, cs) ->
      String.concat " ; "
        (List.map (fun c -> String.concat " " (List.map string_of_int c)) cs))

let prop_matches_brute_force (nvars, clauses) =
  let _, r = solve_clauses nvars clauses in
  let expect = brute_force nvars clauses in
  (r = Sat.Sat) = expect

let prop_model_satisfies (nvars, clauses) =
  let s, r = solve_clauses nvars clauses in
  match r with
  | Sat.Unsat -> true
  | Sat.Sat ->
    List.for_all
      (List.exists (fun l ->
           let v = abs l - 1 in
           let value = Sat.value s v in
           if l > 0 then value else not value))
      clauses

let prop_assumptions_sound (nvars, clauses) =
  (* solving under assumption [a] must match solving with unit clause [a] *)
  let s, _ = solve_clauses nvars clauses in
  let a = Sat.Lit.pos 0 in
  let r_assume = Sat.solve ~assumptions:[ a ] s in
  let expect = brute_force nvars ([ 1 ] :: clauses) in
  (r_assume = Sat.Sat) = expect

let prop_assumptions_dont_stick (nvars, clauses) =
  (* an assumption must not constrain later solve calls *)
  let s, r0 = solve_clauses nvars clauses in
  let _ = Sat.solve ~assumptions:[ Sat.Lit.pos 0 ] s in
  let _ = Sat.solve ~assumptions:[ Sat.Lit.neg 0 ] s in
  let r1 = Sat.solve s in
  r0 = r1

(* pigeonhole principle PHP(n+1, n): always unsat, needs real learning *)
let pigeonhole n =
  let var p h = (p * n) + h + 1 in
  let clauses = ref [] in
  for p = 0 to n do
    clauses := List.init n (fun h -> var p h) :: !clauses
  done;
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        clauses := [ -var p1 h; -var p2 h ] :: !clauses
      done
    done
  done;
  ((n + 1) * n, !clauses)

let test_pigeonhole () =
  List.iter
    (fun n ->
      let nvars, clauses = pigeonhole n in
      let _, r = solve_clauses nvars clauses in
      Alcotest.(check bool) (Printf.sprintf "php %d unsat" n) true (r = Sat.Unsat))
    [ 2; 3; 4; 5 ]

let test_empty_clause () =
  let s = Sat.create () in
  Sat.add_clause s [];
  Alcotest.(check bool) "inconsistent" false (Sat.is_consistent s);
  Alcotest.(check bool) "unsat" true (Sat.solve s = Sat.Unsat)

let test_unit_propagation_chain () =
  let s = Sat.create () in
  Sat.ensure_vars s 50;
  (* x0 and a chain x_i -> x_{i+1}; finally !x49: unsat *)
  Sat.add_clause s [ Sat.Lit.pos 0 ];
  for i = 0 to 48 do
    Sat.add_clause s [ Sat.Lit.neg i; Sat.Lit.pos (i + 1) ]
  done;
  Sat.add_clause s [ Sat.Lit.neg 49 ];
  Alcotest.(check bool) "chain unsat" true (Sat.solve s = Sat.Unsat)

let test_xor_chain () =
  (* parity constraints: x0 ^ x1 = 1, x1 ^ x2 = 1, ..., x0 ^ xn = parity *)
  let n = 12 in
  let s = Sat.create () in
  Sat.ensure_vars s (n + 1);
  let xor_clauses a b value =
    (* a ^ b = value *)
    if value then
      [ [ Sat.Lit.pos a; Sat.Lit.pos b ]; [ Sat.Lit.neg a; Sat.Lit.neg b ] ]
    else [ [ Sat.Lit.pos a; Sat.Lit.neg b ]; [ Sat.Lit.neg a; Sat.Lit.pos b ] ]
  in
  for i = 0 to n - 1 do
    List.iter (Sat.add_clause s) (xor_clauses i (i + 1) true)
  done;
  (* x0 ^ xn should equal n mod 2; assert the wrong value: unsat *)
  let wrong = n mod 2 = 0 in
  List.iter (Sat.add_clause s) (xor_clauses 0 n wrong);
  Alcotest.(check bool) "xor chain unsat" true (Sat.solve s = Sat.Unsat)

let test_tautology_dropped () =
  let s = Sat.create () in
  Sat.ensure_vars s 2;
  Sat.add_clause s [ Sat.Lit.pos 0; Sat.Lit.neg 0 ];
  Alcotest.(check int) "no clause stored" 0 (Sat.num_clauses s);
  Alcotest.(check bool) "sat" true (Sat.solve s = Sat.Sat)

let test_dimacs_roundtrip () =
  let text = "c comment\np cnf 3 3\n1 -2 0\n2 3 0\n-1 0\n" in
  let cnf = Sat.Dimacs.parse_string text in
  Alcotest.(check int) "nvars" 3 cnf.Sat.Dimacs.nvars;
  Alcotest.(check int) "nclauses" 3 (List.length cnf.Sat.Dimacs.clauses);
  let cnf2 = Sat.Dimacs.parse_string (Sat.Dimacs.to_string cnf) in
  Alcotest.(check bool) "roundtrip" true (cnf = cnf2);
  let s = Sat.create () in
  Sat.Dimacs.load_into s cnf;
  Alcotest.(check bool) "sat" true (Sat.solve s = Sat.Sat);
  (* -1 forces x1 false, then 1 -2 forces x2 false, then 2 3 forces x3 *)
  Alcotest.(check bool) "x3 true" true (Sat.value s 2)

let test_incremental_growth () =
  let s = Sat.create () in
  Sat.ensure_vars s 3;
  Sat.add_clause s [ Sat.Lit.pos 0; Sat.Lit.pos 1 ];
  Alcotest.(check bool) "sat 1" true (Sat.solve s = Sat.Sat);
  Sat.add_clause s [ Sat.Lit.neg 0 ];
  Alcotest.(check bool) "sat 2" true (Sat.solve s = Sat.Sat);
  Alcotest.(check bool) "x1 forced" true (Sat.value s 1);
  Sat.add_clause s [ Sat.Lit.neg 1 ];
  Alcotest.(check bool) "unsat" true (Sat.solve s = Sat.Unsat)

let test_dimacs_edge_cases () =
  (* clauses spread over lines, comments between, missing problem line *)
  let cnf = Sat.Dimacs.parse_string "c no p-line\n1 2\n0\nc mid comment\n-1\n-2 0\n" in
  Alcotest.(check int) "inferred nvars" 2 cnf.Sat.Dimacs.nvars;
  Alcotest.(check int) "clauses" 2 (List.length cnf.Sat.Dimacs.clauses);
  let s = Sat.create () in
  Sat.Dimacs.load_into s cnf;
  (* (1 or 2) and (!1 and-implicit !2): wait, second clause is [-1; -2] *)
  Alcotest.(check bool) "sat" true (Sat.solve s = Sat.Sat)

let test_solver_statistics_progress () =
  let nvars, clauses = pigeonhole 5 in
  let s, r = solve_clauses nvars clauses in
  Alcotest.(check bool) "unsat" true (r = Sat.Unsat);
  Alcotest.(check bool) "conflicts counted" true (Sat.num_conflicts s > 0);
  Alcotest.(check bool) "decisions counted" true (Sat.num_decisions s > 0);
  Alcotest.(check bool) "propagations counted" true (Sat.num_propagations s > 0);
  Alcotest.(check bool) "learned clauses" true (Sat.num_learnts s > 0)

let test_large_random_3sat () =
  (* an easy satisfiable 3-SAT instance at low clause ratio *)
  let rng = Random.State.make [| 2024 |] in
  let nvars = 200 in
  let s = Sat.create () in
  Sat.ensure_vars s nvars;
  for _ = 1 to 500 do
    let clause =
      List.init 3 (fun _ ->
          Sat.Lit.make (Random.State.int rng nvars) (Random.State.bool rng))
    in
    Sat.add_clause s clause
  done;
  match Sat.solve s with
  | Sat.Sat -> ()
  | Sat.Unsat -> Alcotest.fail "low-ratio 3-sat should be satisfiable"

let test_failed_assumption_core () =
  let s = Sat.create () in
  Sat.ensure_vars s 4;
  (* a and b cannot hold together; c, d are free *)
  Sat.add_clause s [ Sat.Lit.neg 0; Sat.Lit.neg 1 ];
  let assumptions = [ Sat.Lit.pos 0; Sat.Lit.pos 1; Sat.Lit.pos 2; Sat.Lit.pos 3 ] in
  Alcotest.(check bool) "unsat under a,b" true (Sat.solve ~assumptions s = Sat.Unsat);
  let core = Sat.failed_assumptions s in
  Alcotest.(check bool) "core nonempty" true (core <> []);
  Alcotest.(check bool)
    "core within assumptions" true
    (List.for_all (fun l -> List.mem l assumptions) core);
  Alcotest.(check bool)
    "core avoids free vars" true
    (List.for_all (fun l -> Sat.Lit.var l < 2) core);
  (* the core really is refuted on its own *)
  Alcotest.(check bool) "core refutes" true (Sat.solve ~assumptions:core s = Sat.Unsat);
  (* cores are per-solve: a satisfiable call clears them *)
  Alcotest.(check bool) "sat without assumptions" true (Sat.solve s = Sat.Sat);
  Alcotest.(check bool) "core reset" true (Sat.failed_assumptions s = [])

let test_activation_release () =
  let s = Sat.create () in
  Sat.ensure_vars s 2;
  Sat.add_clause s [ Sat.Lit.neg 0; Sat.Lit.neg 1 ];
  let g = Sat.new_var s in
  Sat.add_clause ~act:g s [ Sat.Lit.pos 0 ];
  Sat.add_clause ~act:g s [ Sat.Lit.pos 1 ];
  let guarded = Sat.num_clauses s in
  (* the guarded clause only bites while g is assumed *)
  Alcotest.(check bool) "unsat under g" true (Sat.solve ~assumptions:[ Sat.Lit.pos g ] s = Sat.Unsat);
  Alcotest.(check bool)
    "core is g" true
    (Sat.failed_assumptions s = [ Sat.Lit.pos g ]);
  Alcotest.(check bool) "sat without g" true (Sat.solve s = Sat.Sat);
  Sat.release s g;
  Alcotest.(check bool) "guarded clause dropped" true (Sat.num_clauses s < guarded);
  Alcotest.(check bool) "still sat" true (Sat.solve s = Sat.Sat);
  (* a released activation variable is pinned false *)
  Alcotest.(check bool)
    "released g refuted" true
    (Sat.solve ~assumptions:[ Sat.Lit.pos g ] s = Sat.Unsat)

let test_restarts_counted () =
  let nvars, clauses = pigeonhole 6 in
  let s, r = solve_clauses nvars clauses in
  Alcotest.(check bool) "unsat" true (r = Sat.Unsat);
  Alcotest.(check bool) "restarts happened" true (Sat.num_restarts s > 0)

(* Base encoding: an inconsistent-parity xor chain, split so that the
   contradiction is only reachable through an activation-guarded clause.
   Learned clauses exported under [limit_var = base] must be entailed by
   the base clauses alone. *)
let test_export_import_soundness () =
  let n = 10 in
  let xor_clauses a b value =
    if value then
      [ [ Sat.Lit.pos a; Sat.Lit.pos b ]; [ Sat.Lit.neg a; Sat.Lit.neg b ] ]
    else [ [ Sat.Lit.pos a; Sat.Lit.neg b ]; [ Sat.Lit.neg a; Sat.Lit.pos b ] ]
  in
  let base_clauses =
    List.concat (List.init n (fun i -> xor_clauses i (i + 1) true))
  in
  let s = Sat.create () in
  Sat.ensure_vars s (n + 1);
  List.iter (Sat.add_clause s) base_clauses;
  let base = Sat.num_vars s in
  let g = Sat.new_var s in
  (* guarded wrong-parity closure makes the instance unsat under g *)
  List.iter (Sat.add_clause ~act:g s) (xor_clauses 0 n (n mod 2 = 0));
  Alcotest.(check bool) "unsat under g" true (Sat.solve ~assumptions:[ Sat.Lit.pos g ] s = Sat.Unsat);
  let shared = Sat.export_learnts s ~limit_var:base ~max_size:8 ~max_lbd:6 in
  Alcotest.(check bool)
    "exports stay below limit_var" true
    (List.for_all (List.for_all (fun l -> Sat.Lit.var l < base)) shared);
  Alcotest.(check bool)
    "exports respect max_size" true
    (List.for_all (fun c -> List.length c <= 8) shared);
  (* every exported clause is entailed by the base encoding alone *)
  let entailed c =
    let fresh = Sat.create () in
    Sat.ensure_vars fresh (n + 1);
    List.iter (Sat.add_clause fresh) base_clauses;
    Sat.solve ~assumptions:(List.map Sat.Lit.negate c) fresh = Sat.Unsat
  in
  Alcotest.(check bool) "exports entailed by base" true (List.for_all entailed shared);
  (* importing them into a sibling must not change its verdicts *)
  let sibling = Sat.create () in
  Sat.ensure_vars sibling (n + 1);
  List.iter (Sat.add_clause sibling) base_clauses;
  List.iter (Sat.import_clause sibling) shared;
  Alcotest.(check bool) "sibling still sat" true (Sat.solve sibling = Sat.Sat)

let test_drat_text_roundtrip () =
  let open Sat.Dimacs in
  let trace =
    [ Add [ 1; -2; 3 ]; Delete [ 1; -2; 3 ]; Add [ -4 ]; Delete [ 7; 8 ]; Add [] ]
  in
  let text = drat_to_string trace in
  Alcotest.(check bool) "roundtrip" true (drat_parse_string text = trace);
  (* whitespace and comments are tolerated *)
  let trace2 = drat_parse_string "c comment\n1 2 0\nd 1 2 0\n\n0\n" in
  Alcotest.(check bool)
    "parsed forms" true
    (trace2 = [ Add [ 1; 2 ]; Delete [ 1; 2 ]; Add [] ])

let test_rup_checker () =
  let open Sat.Dimacs in
  (* (1 or 2) and (1 or -2): resolving gives 1, so Add [1] is RUP *)
  let r = Rup.create () in
  Rup.add_input r [ 1; 2 ];
  Rup.add_input r [ 1; -2 ];
  Alcotest.(check bool) "unit not yet forced" false (Rup.holds r [ 2 ]);
  Alcotest.(check bool) "resolvent is RUP" true (Rup.holds r [ 1 ]);
  Alcotest.(check bool) "replay accepts" true (Rup.replay r [ Add [ 1 ] ] = Ok ());
  Alcotest.(check bool) "now forced" true (Rup.holds r [ 1 ]);
  (* a top-level conflict makes everything implied *)
  let r2 = Rup.create () in
  Rup.add_input r2 [ 1 ];
  Rup.add_input r2 [ -1; 2 ];
  Rup.add_input r2 [ -2 ];
  Alcotest.(check bool) "contradiction implies empty" true (Rup.holds r2 [])

let test_rup_rejects_non_rup () =
  let open Sat.Dimacs in
  let fresh () =
    let r = Rup.create () in
    Rup.add_input r [ 1; 2 ];
    Rup.add_input r [ 1; -2 ];
    r
  in
  (* 2 alone is not implied *)
  (match Rup.replay (fresh ()) [ Add [ 2 ] ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "non-RUP addition accepted");
  (* an unconstrained fresh variable is certainly not implied *)
  (match Rup.replay (fresh ()) [ Add [ 999_999 ] ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unseen variable accepted");
  (* deleting the clauses breaks a previously valid derivation *)
  match Rup.replay (fresh ()) [ Delete [ 1; 2 ]; Add [ 1 ] ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "deletion-invalidated addition accepted"

let test_solver_trace_replays () =
  (* end to end: the solver's own proof log, replayed through the
     independent checker, re-derives unsatisfiability *)
  let s = Sat.create () in
  let rup = Sat.Dimacs.Rup.create () in
  let trace = ref [] in
  Sat.set_input_logger s
    (Some (fun lits -> Sat.Dimacs.Rup.add_input rup (List.map Sat.Lit.to_int lits)));
  Sat.set_proof_logger s
    (Some
       (fun step ->
         trace :=
           (match step with
           | Sat.Step_add lits -> Sat.Dimacs.Add (List.map Sat.Lit.to_int lits)
           | Sat.Step_delete lits -> Sat.Dimacs.Delete (List.map Sat.Lit.to_int lits))
           :: !trace));
  let nvars, clauses = pigeonhole 4 in
  Sat.ensure_vars s nvars;
  List.iter (fun c -> Sat.add_clause s (List.map Sat.Lit.of_int c)) clauses;
  Alcotest.(check bool) "unsat" true (Sat.solve s = Sat.Unsat);
  (match Sat.Dimacs.Rup.replay rup (List.rev !trace) with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("trace rejected: " ^ msg));
  Alcotest.(check bool) "empty clause derived" true (Sat.Dimacs.Rup.holds rup [])

let qprop name count arb p = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb p)

let suite =
  [ Alcotest.test_case "empty clause" `Quick test_empty_clause;
    Alcotest.test_case "unit chain" `Quick test_unit_propagation_chain;
    Alcotest.test_case "xor chain" `Quick test_xor_chain;
    Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
    Alcotest.test_case "tautology dropped" `Quick test_tautology_dropped;
    Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
    Alcotest.test_case "incremental" `Quick test_incremental_growth;
    Alcotest.test_case "dimacs edge cases" `Quick test_dimacs_edge_cases;
    Alcotest.test_case "statistics progress" `Quick test_solver_statistics_progress;
    Alcotest.test_case "random 3-sat" `Quick test_large_random_3sat;
    Alcotest.test_case "failed-assumption core" `Quick test_failed_assumption_core;
    Alcotest.test_case "activation release" `Quick test_activation_release;
    Alcotest.test_case "restarts counted" `Quick test_restarts_counted;
    Alcotest.test_case "export/import soundness" `Quick test_export_import_soundness;
    Alcotest.test_case "drat text roundtrip" `Quick test_drat_text_roundtrip;
    Alcotest.test_case "rup checker" `Quick test_rup_checker;
    Alcotest.test_case "rup rejects non-rup" `Quick test_rup_rejects_non_rup;
    Alcotest.test_case "solver trace replays" `Quick test_solver_trace_replays;
    qprop "matches brute force" 500 arbitrary_cnf prop_matches_brute_force;
    qprop "model satisfies" 500 arbitrary_cnf prop_model_satisfies;
    qprop "assumptions sound" 300 arbitrary_cnf prop_assumptions_sound;
    qprop "assumptions are temporary" 200 arbitrary_cnf prop_assumptions_dont_stick;
  ]

let () = Alcotest.run "sat" [ ("sat", suite) ]
