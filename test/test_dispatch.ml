(* The per-class engine dispatcher of speculative reduction: routing
   thresholds, cost-model overrides, exhaustion fallbacks.  The routing
   rule is pure policy — exercised here directly through [Dispatch.route]
   on a tiny product — while the end-to-end fallback (a preferred engine
   whose budget is exhausted mid-round) is checked against the plain
   sweep at the [Verify] level: budgets may move obligations between
   engines, never change the fixed point. *)

let product_of seed =
  let c = Test_util.random_circuit ~n_inputs:3 ~n_latches:4 ~n_gates:18 seed in
  let a, _ = Aig.of_netlist c in
  let a' = Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_opt ~seed a in
  Scorr.Product.make a a'

let make_dispatch ?(prefer = Scorr.Dispatch.Bdd) ?config () =
  let product = product_of 42 in
  let config =
    match config with
    | Some c -> c
    | None -> Scorr.Dispatch.default_config ~prefer
  in
  let pool = Scorr.Simpool.create product.Scorr.Product.aig in
  Scorr.Dispatch.create ~config ~product ~pool ~deadline:Scorr.Deadline.none ()

let check_route d ~what ~cls ~cone ~level expected =
  Alcotest.(check string)
    what
    (Scorr.Dispatch.engine_name expected)
    (Scorr.Dispatch.engine_name (Scorr.Dispatch.route d ~cls ~cone ~level))

(* --- static thresholds ------------------------------------------------------- *)

let test_sim_screens_first () =
  (* a class that never survived a screen goes to simulation while
     certified walk states exist (the initial state always does) *)
  let d = make_dispatch () in
  check_route d ~what:"fresh class simulates" ~cls:7 ~cone:10 ~level:3 Scorr.Dispatch.Sim;
  Scorr.Dispatch.mark_sim_survivor d ~cls:7;
  Alcotest.(check bool) "marked" true (Scorr.Dispatch.sim_survivor d ~cls:7);
  check_route d ~what:"survivor escalates" ~cls:7 ~cone:10 ~level:3 Scorr.Dispatch.Bdd

let test_bdd_threshold_boundaries () =
  let cfg = Scorr.Dispatch.default_config ~prefer:Scorr.Dispatch.Bdd in
  let d = make_dispatch ~config:cfg () in
  let cone_max = cfg.Scorr.Dispatch.bdd_cone_limit in
  let level_max = cfg.Scorr.Dispatch.bdd_level_limit in
  Scorr.Dispatch.mark_sim_survivor d ~cls:1;
  check_route d ~what:"at both limits -> bdd" ~cls:1 ~cone:cone_max ~level:level_max
    Scorr.Dispatch.Bdd;
  check_route d ~what:"cone past limit -> sat" ~cls:1 ~cone:(cone_max + 1)
    ~level:level_max Scorr.Dispatch.Sat;
  check_route d ~what:"level past limit -> sat" ~cls:1 ~cone:cone_max
    ~level:(level_max + 1) Scorr.Dispatch.Sat

let test_sat_preference_shrinks_bdd_region () =
  (* a SAT-preferring run still sends small shallow cones to BDD, but the
     thresholds shrink to a quarter of the cone / half of the level *)
  let cfg = Scorr.Dispatch.default_config ~prefer:Scorr.Dispatch.Sat in
  let d = make_dispatch ~config:cfg () in
  let cone_max = cfg.Scorr.Dispatch.bdd_cone_limit / 4 in
  let level_max = cfg.Scorr.Dispatch.bdd_level_limit / 2 in
  Scorr.Dispatch.mark_sim_survivor d ~cls:1;
  check_route d ~what:"small cone -> bdd despite sat preference" ~cls:1 ~cone:cone_max
    ~level:level_max Scorr.Dispatch.Bdd;
  check_route d ~what:"past shrunk cone limit -> sat" ~cls:1 ~cone:(cone_max + 1)
    ~level:level_max Scorr.Dispatch.Sat;
  check_route d ~what:"past shrunk level limit -> sat" ~cls:1 ~cone:cone_max
    ~level:(level_max + 1) Scorr.Dispatch.Sat

(* --- cost model ---------------------------------------------------------------- *)

let test_cost_model_overrides_static () =
  (* once both engines have data on a class, the cheaper EMA wins over
     the static default, in either direction *)
  let d = make_dispatch ~prefer:Scorr.Dispatch.Bdd () in
  Scorr.Dispatch.mark_sim_survivor d ~cls:3;
  Scorr.Dispatch.observe d ~cls:3 ~engine:Scorr.Dispatch.Bdd 2.0;
  Scorr.Dispatch.observe d ~cls:3 ~engine:Scorr.Dispatch.Sat 0.01;
  check_route d ~what:"cheap sat beats static bdd" ~cls:3 ~cone:10 ~level:3
    Scorr.Dispatch.Sat;
  Scorr.Dispatch.mark_sim_survivor d ~cls:4;
  Scorr.Dispatch.observe d ~cls:4 ~engine:Scorr.Dispatch.Bdd 0.01;
  Scorr.Dispatch.observe d ~cls:4 ~engine:Scorr.Dispatch.Sat 2.0;
  check_route d ~what:"cheap bdd beats big cone" ~cls:4 ~cone:1_000_000 ~level:500
    Scorr.Dispatch.Bdd

let test_cost_model_ema () =
  (* estimate' = alpha*sample + (1-alpha)*estimate, alpha = 0.5 *)
  let open Analysis.Steer in
  let c = Cost.create () in
  Alcotest.(check (option (float 1e-9)))
    "no data" None
    (Cost.estimate c ~cls:0 ~engine:Bdd);
  Cost.observe c ~cls:0 ~engine:Bdd 1.0;
  Alcotest.(check (option (float 1e-9)))
    "first sample taken verbatim" (Some 1.0)
    (Cost.estimate c ~cls:0 ~engine:Bdd);
  Cost.observe c ~cls:0 ~engine:Bdd 3.0;
  Alcotest.(check (option (float 1e-9)))
    "EMA halves toward the sample" (Some 2.0)
    (Cost.estimate c ~cls:0 ~engine:Bdd);
  Alcotest.(check (option (float 1e-9)))
    "keys are per (class, engine)" None
    (Cost.estimate c ~cls:0 ~engine:Sat)

(* --- exhaustion fallback -------------------------------------------------------- *)

let test_ban_falls_back_to_sat () =
  (* a banned engine never routes again for that class; SAT, the
     fallback terminus, is never banned *)
  let d = make_dispatch ~prefer:Scorr.Dispatch.Bdd () in
  Scorr.Dispatch.mark_sim_survivor d ~cls:5;
  check_route d ~what:"small cone -> bdd" ~cls:5 ~cone:10 ~level:3 Scorr.Dispatch.Bdd;
  Scorr.Dispatch.ban d ~cls:5 ~engine:Scorr.Dispatch.Bdd;
  check_route d ~what:"banned bdd -> sat" ~cls:5 ~cone:10 ~level:3 Scorr.Dispatch.Sat;
  (* the ban is per class: a sibling still routes to BDD *)
  Scorr.Dispatch.mark_sim_survivor d ~cls:6;
  check_route d ~what:"sibling class unaffected" ~cls:6 ~cone:10 ~level:3
    Scorr.Dispatch.Bdd;
  (* a favorable EMA cannot resurrect a banned engine *)
  Scorr.Dispatch.observe d ~cls:5 ~engine:Scorr.Dispatch.Bdd 0.001;
  Scorr.Dispatch.observe d ~cls:5 ~engine:Scorr.Dispatch.Sat 9.0;
  check_route d ~what:"ban is sticky" ~cls:5 ~cone:10 ~level:3 Scorr.Dispatch.Sat

let test_sim_ban_is_survivor_mark () =
  let d = make_dispatch () in
  Scorr.Dispatch.ban d ~cls:9 ~engine:Scorr.Dispatch.Sim;
  Alcotest.(check bool) "sim ban marks survivor" true (Scorr.Dispatch.sim_survivor d ~cls:9)

let test_exhausted_bdd_budget_preserves_fixpoint () =
  (* end to end: a BDD node budget too small for any obligation forces
     every discharge through the SAT fallback mid-round, and the
     speculative fixed point still matches the plain sweep *)
  let c = Test_util.random_circuit ~n_inputs:3 ~n_latches:4 ~n_gates:18 7 in
  let a, _ = Aig.of_netlist c in
  let a' = Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_opt ~seed:7 a in
  let run spec =
    Scorr.Verify.run_with_relation
      ~options:{ Scorr.default_options with Scorr.Verify.node_limit = 2; use_speculation = spec }
      a a'
  in
  let classes = function
    | _, _, Some p ->
      Some
        (List.sort compare
           (List.map
              (fun cls -> List.sort compare (Scorr.Partition.members p cls))
              (Scorr.Partition.multi_member_classes p)))
    | _, _, None -> None
  in
  let ((vs, _, _) as rs) = run true and ((vp, _, _) as rp) = run false in
  Alcotest.(check bool)
    "same verdict under starved bdd budget" true
    ((match vs with Scorr.Equivalent _ -> 0 | Scorr.Not_equivalent _ -> 1 | Scorr.Unknown _ -> 2)
    = (match vp with Scorr.Equivalent _ -> 0 | Scorr.Not_equivalent _ -> 1 | Scorr.Unknown _ -> 2));
  Alcotest.(check bool) "same partition" true (classes rs = classes rp)

let suite =
  [
    Alcotest.test_case "sim screens first" `Quick test_sim_screens_first;
    Alcotest.test_case "bdd threshold boundaries" `Quick test_bdd_threshold_boundaries;
    Alcotest.test_case "sat preference shrinks bdd region" `Quick
      test_sat_preference_shrinks_bdd_region;
    Alcotest.test_case "cost model overrides static route" `Quick
      test_cost_model_overrides_static;
    Alcotest.test_case "cost model EMA" `Quick test_cost_model_ema;
    Alcotest.test_case "ban falls back to sat" `Quick test_ban_falls_back_to_sat;
    Alcotest.test_case "sim ban marks survivor" `Quick test_sim_ban_is_survivor_mark;
    Alcotest.test_case "exhausted bdd budget preserves fixpoint" `Quick
      test_exhausted_bdd_budget_preserves_fixpoint;
  ]

let () = Alcotest.run "dispatch" [ ("dispatch", suite) ]
