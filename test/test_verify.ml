(* Tests of the verification driver itself: the state-variable ordering
   heuristic, counterexample traces, and the relation certificate. *)

let aig_pair seed =
  let c = Test_util.random_circuit seed in
  let spec, _ = Aig.of_netlist c in
  let impl = Transform.Opt.rewrite ~seed spec in
  (spec, impl)

(* --- latch ordering ------------------------------------------------------ *)

let prop_order_is_permutation =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"latch order is a permutation" ~count:60
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let spec, impl = aig_pair seed in
         let product = Scorr.Product.make spec impl in
         let order = Scorr.Verify.latch_order_from_outputs product in
         let n = Aig.num_latches product.Scorr.Product.aig in
         Array.length order = n
         && List.sort compare (Array.to_list order) = List.init n Fun.id))

let test_order_interleaves_counter () =
  (* the self-product of a counter must interleave spec and impl bits *)
  let a, _ = Aig.of_netlist (Circuits.Counter.binary 8) in
  let product = Scorr.Product.make a a in
  let order = Scorr.Verify.latch_order_from_outputs product in
  (* positions of spec latch i and impl latch i must be adjacent-ish: the
     maximum distance between partners stays far below one full side *)
  let pos = Array.make 16 0 in
  Array.iteri (fun p i -> pos.(i) <- p) order;
  for i = 0 to 7 do
    let d = abs (pos.(i) - pos.(i + 8)) in
    Alcotest.(check bool) (Printf.sprintf "bit %d partners close (%d)" i d) true (d <= 2)
  done

(* --- counterexample traces ------------------------------------------------- *)

let replay_outputs_differ spec impl trace =
  (* feed the trace to both circuits; the outputs must differ at the last
     frame *)
  let to_words frame = Array.map (fun b -> if b then -1L else 0L) frame in
  let frames = Array.to_list (Array.map to_words trace) in
  let o1, _ = Aig.Sim.run spec frames and o2, _ = Aig.Sim.run impl frames in
  match (List.rev o1, List.rev o2) with
  | last1 :: _, last2 :: _ -> List.sort compare last1 <> List.sort compare last2
  | _ -> false

let prop_traces_replay =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"refutation traces replay to a real difference" ~count:40
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let c = Test_util.random_circuit ~n_inputs:3 ~n_latches:4 ~n_gates:18 seed in
         let spec, _ = Aig.of_netlist c in
         match Transform.Mutate.observable_mutant ~seed spec with
         | None -> QCheck.assume_fail ()
         | Some (mutant, _) -> (
           match Scorr.check spec mutant with
           | Scorr.Not_equivalent { frame; trace = Some trace; _ } ->
             Array.length trace = frame + 1 && replay_outputs_differ spec mutant trace
           | Scorr.Not_equivalent { trace = None; _ } ->
             false (* every refutation must carry a concrete trace *)
           | Scorr.Equivalent _ -> false
           | Scorr.Unknown _ -> true)))

let test_bmc_catches_post_sim_difference () =
  (* a fault beyond the default 64 presim frames but within bmc_depth:
     a latch-init flip on a latch that only matters at a specific count.
     Craft directly: out = (count == 3) on a 2-bit counter with no enable;
     mutant flips bit-1 init so outputs first differ at frame 2. *)
  let mk init1 =
    let a = Aig.create () in
    let q0 = Aig.add_latch a ~init:false in
    let q1 = Aig.add_latch a ~init:init1 in
    Aig.set_latch_next a q0 ~next:(Aig.lit_not q0);
    Aig.set_latch_next a q1 ~next:(Aig.mk_xor a q1 q0);
    Aig.add_po a "eq3" (Aig.mk_and a q0 q1);
    a
  in
  let spec = mk false and impl = mk true in
  (* no PIs: random simulation has no levers but still detects it by
     running frames; disable presim to force the BMC path *)
  let options = { Scorr.default_options with Scorr.Verify.presim_frames = 0; bmc_depth = 6 } in
  match Scorr.check ~options spec impl with
  | Scorr.Not_equivalent { frame; trace = Some _; _ } ->
    Alcotest.(check int) "first difference at frame 1" 1 frame
  | _ -> Alcotest.fail "expected a BMC refutation with a trace"

let test_initial_frame_split_has_witness () =
  (* combinationally inverted outputs with presimulation and bounded
     refutation disabled: the disproof comes from the initial-frame class
     split, which used to ship trace = None *)
  let mk invert =
    let a = Aig.create () in
    let x = Aig.add_pi a in
    Aig.add_po a "o" (if invert then Aig.lit_not x else x);
    a
  in
  let spec = mk false and impl = mk true in
  let options =
    { Scorr.default_options with Scorr.Verify.presim_frames = 0; bmc_depth = 0 }
  in
  match Scorr.check ~options spec impl with
  | Scorr.Not_equivalent { frame = 0; trace = Some trace; _ } ->
    Alcotest.(check bool) "trace replays" true (replay_outputs_differ spec impl trace)
  | Scorr.Not_equivalent { trace = None; _ } ->
    Alcotest.fail "initial-frame refutation carried no trace"
  | _ -> Alcotest.fail "expected a frame-0 refutation"

(* --- relation certificate ----------------------------------------------------- *)

let test_certificate_covers_outputs () =
  let spec, impl = Circuits.Fig2.pair () in
  match Scorr.Verify.run_with_relation spec impl with
  | Scorr.Equivalent _, product, Some partition ->
    (* each output pair must be provably equal under the relation *)
    List.iter
      (fun (name, ls, li) ->
        Alcotest.(check bool) (name ^ " pair in relation") true
          (Scorr.Partition.lits_equal partition ls li))
      product.Scorr.Product.outputs;
    (* and printing must not raise *)
    let text = Format.asprintf "%a" Scorr.Verify.pp_relation (product, partition) in
    Alcotest.(check bool) "non-empty dump" true (String.length text > 0)
  | _ -> Alcotest.fail "expected Equivalent with a relation"

let prop_certificate_relation_is_inductive =
  (* re-checking the returned relation with a fresh engine must not split
     any class: it is a genuine fixed point *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"returned relation is a fixed point" ~count:15
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let spec, impl = aig_pair seed in
         match Scorr.Verify.run_with_relation spec impl with
         | Scorr.Equivalent _, product, Some partition ->
           let ctx =
             Scorr.Engine_bdd.make
               ~latch_order:(Scorr.Verify.latch_order_from_outputs product)
               product
           in
           not (Scorr.Engine_bdd.refine_once ctx partition)
         | _ -> true))

(* --- budget-exhausted exits still carry their stats ----------------------- *)

(* Regression: Unknown verdicts produced by a blown engine budget used to
   report peak_bdd_nodes = 0 and empty phase stats because the exceptional
   exit skipped the counter harvest; the harvest now runs on every exit
   path of the per-round engine scope. *)

let budget_pair () =
  let spec = Circuits.Suite.aig_of (Option.get (Circuits.Suite.find "ctr16")) in
  let impl =
    Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_opt ~seed:5 spec
  in
  (spec, impl)

let test_budget_unknown_keeps_sat_stats () =
  let spec, impl = budget_pair () in
  let options =
    {
      Scorr.default_options with
      Scorr.Verify.engine = Scorr.Verify.Sat_engine;
      max_sat_calls = 3;
      use_retime = false;
    }
  in
  match Scorr.check ~options spec impl with
  | Scorr.Unknown s ->
    Alcotest.(check bool) "sat_calls harvested" true (s.Scorr.Verify.sat_calls > 0);
    Alcotest.(check bool) "phase stats harvested" true (s.phase_seconds <> [])
  | _ -> Alcotest.fail "expected Unknown under a 3-call SAT budget"

let test_budget_unknown_keeps_bdd_stats () =
  let spec, impl = budget_pair () in
  let options =
    (* low enough that the refinement sweep blows the budget, high enough
       that engine construction itself succeeds (it needs ~5k nodes);
       speculation pinned off — its dispatcher would route the starved
       classes to SAT and prove the pair instead of going Unknown *)
    { Scorr.default_options with
      Scorr.Verify.node_limit = 10_000;
      use_retime = false;
      use_speculation = false
    }
  in
  match Scorr.check ~options spec impl with
  | Scorr.Unknown s ->
    Alcotest.(check bool) "peak nodes harvested" true (s.Scorr.Verify.peak_bdd_nodes > 0);
    Alcotest.(check bool) "phase stats harvested" true (s.phase_seconds <> [])
  | _ -> Alcotest.fail "expected Unknown under a 2k-node BDD budget"

let suite =
  [ Alcotest.test_case "order interleaves counter" `Quick test_order_interleaves_counter;
    Alcotest.test_case "bmc catches post-sim fault" `Quick test_bmc_catches_post_sim_difference;
    Alcotest.test_case "initial-frame split has a witness" `Quick
      test_initial_frame_split_has_witness;
    Alcotest.test_case "certificate covers outputs" `Quick test_certificate_covers_outputs;
    Alcotest.test_case "budget Unknown keeps SAT stats" `Quick
      test_budget_unknown_keeps_sat_stats;
    Alcotest.test_case "budget Unknown keeps BDD stats" `Quick
      test_budget_unknown_keeps_bdd_stats;
    prop_order_is_permutation;
    prop_traces_replay;
    prop_certificate_relation_is_inductive;
  ]

let () = Alcotest.run "verify" [ ("verify", suite) ]
