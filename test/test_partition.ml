(* Unit tests of the partition data structure underlying the fixed point:
   the refinement laws it must satisfy for Theorem 2 to apply. *)

let mk_partition ?(n = 10) ?(pol = []) candidates =
  let pol_arr = Array.make n false in
  List.iter (fun i -> pol_arr.(i) <- true) pol;
  Scorr.Partition.create ~n_nodes:n ~candidates ~pol:pol_arr

let members_sorted p cls = List.sort compare (Scorr.Partition.members p cls)

let test_initial_single_class () =
  let p = mk_partition [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "one class" 1 (Scorr.Partition.n_classes p);
  Alcotest.(check (list int)) "all members" [ 1; 2; 3; 4 ] (members_sorted p 0);
  Alcotest.(check bool) "candidate" true (Scorr.Partition.is_candidate p 2);
  Alcotest.(check bool) "non-candidate" false (Scorr.Partition.is_candidate p 7);
  Alcotest.(check int) "class of non-candidate" (-1) (Scorr.Partition.class_of p 7)

let test_refine_by_key () =
  let p = mk_partition [ 1; 2; 3; 4; 5 ] in
  let created = Scorr.Partition.refine_by_key p (fun id -> id mod 2) in
  Alcotest.(check int) "one new class" 1 created;
  Alcotest.(check int) "two classes" 2 (Scorr.Partition.n_classes p);
  (* the representative (smallest id = 1) keeps the old class id *)
  Alcotest.(check (list int)) "odd group keeps class 0" [ 1; 3; 5 ] (members_sorted p 0);
  Alcotest.(check (list int)) "even group" [ 2; 4 ] (members_sorted p 1);
  (* stable under the same key *)
  Alcotest.(check int) "idempotent" 0 (Scorr.Partition.refine_by_key p (fun id -> id mod 2))

let test_refine_class_pairwise () =
  let p = mk_partition [ 1; 2; 3; 4; 5; 6 ] in
  (* equal iff same tercile *)
  let changed = Scorr.Partition.refine_class p 0 ~equal:(fun a b -> (a - 1) / 2 = (b - 1) / 2) in
  Alcotest.(check bool) "split happened" true changed;
  Alcotest.(check int) "three classes" 3 (Scorr.Partition.n_classes p);
  Alcotest.(check (list int)) "first subgroup in place" [ 1; 2 ] (members_sorted p 0)

let test_norm_lit_polarity () =
  let p = mk_partition ~pol:[ 3 ] [ 2; 3 ] in
  Alcotest.(check int) "plain" (Aig.lit_of_node 2) (Scorr.Partition.norm_lit p 2);
  Alcotest.(check int) "complemented" (Aig.lit_of_node 3 lor 1) (Scorr.Partition.norm_lit p 3)

let test_lits_equal_polarity () =
  (* nodes 2 (plain) and 3 (complemented) in one class: node2 ~ NOT node3 *)
  let p = mk_partition ~pol:[ 3 ] [ 2; 3 ] in
  let l2 = Aig.lit_of_node 2 and l3 = Aig.lit_of_node 3 in
  Alcotest.(check bool) "2 = !3" true (Scorr.Partition.lits_equal p l2 (Aig.lit_not l3));
  Alcotest.(check bool) "2 <> 3" false (Scorr.Partition.lits_equal p l2 l3);
  Alcotest.(check bool) "!2 = 3" true (Scorr.Partition.lits_equal p (Aig.lit_not l2) l3)

let test_constraint_pairs () =
  let p = mk_partition [ 1; 2; 3; 4 ] in
  ignore (Scorr.Partition.refine_by_key p (fun id -> id <= 2));
  let pairs = List.sort compare (Scorr.Partition.constraint_pairs p) in
  Alcotest.(check (list (pair int int))) "rep-member pairs" [ (1, 2); (3, 4) ] pairs

let test_multi_member_classes () =
  let p = mk_partition [ 1; 2; 3 ] in
  ignore (Scorr.Partition.refine_by_key p (fun id -> id = 3));
  (* classes: {1;2} and {3}: only the first is multi-member *)
  let multi = Scorr.Partition.multi_member_classes p in
  Alcotest.(check int) "one multi class" 1 (List.length multi)

let test_version_dirty_tracking () =
  let p = mk_partition [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "initial version" 0 (Scorr.Partition.version p);
  Alcotest.(check int) "initial touch" 0 (Scorr.Partition.touched_version p 0);
  (* a refinement that splits nothing must not bump the version *)
  ignore (Scorr.Partition.refine_by_key p (fun _ -> 0));
  Alcotest.(check int) "no-split keeps version" 0 (Scorr.Partition.version p);
  ignore (Scorr.Partition.refine_by_key p (fun id -> id mod 2));
  Alcotest.(check int) "split bumps version once" 1 (Scorr.Partition.version p);
  Alcotest.(check int) "old class touched" 1 (Scorr.Partition.touched_version p 0);
  Alcotest.(check int) "new class touched" 1 (Scorr.Partition.touched_version p 1);
  (* the journal records exactly the members that left class 0 *)
  (match Scorr.Partition.moved_since p 0 with
  | None -> Alcotest.fail "journal unexpectedly truncated"
  | Some moved ->
    Alcotest.(check (list int)) "moved nodes" [ 2; 4 ] (List.sort compare moved));
  Alcotest.(check (option (list int)))
    "nothing since current version" (Some [])
    (Scorr.Partition.moved_since p 1);
  (* second event: shatter class 0 = {1;3;5}; class 1 stays untouched *)
  let changed = Scorr.Partition.refine_class p 0 ~equal:(fun a b -> a = b) in
  Alcotest.(check bool) "refine_class splits" true changed;
  Alcotest.(check int) "second event" 2 (Scorr.Partition.version p);
  Alcotest.(check int) "class 1 untouched by second event" 1
    (Scorr.Partition.touched_version p 1);
  (match Scorr.Partition.moved_since p 1 with
  | None -> Alcotest.fail "journal unexpectedly truncated"
  | Some moved ->
    Alcotest.(check (list int)) "second-event moves" [ 3; 5 ] (List.sort compare moved));
  match Scorr.Partition.moved_since p 0 with
  | None -> Alcotest.fail "journal unexpectedly truncated"
  | Some moved ->
    Alcotest.(check (list int)) "all moves" [ 2; 3; 4; 5 ] (List.sort compare moved)

let test_moved_since_limit () =
  (* long journals report [None]: the caller must fall back to assuming
     every class is dirty rather than scanning an unbounded list *)
  let candidates = List.init 40 (fun i -> i) in
  let p = mk_partition ~n:64 candidates in
  ignore (Scorr.Partition.refine_by_key p (fun id -> id));
  Alcotest.(check (option (list int)))
    "over limit" None
    (Scorr.Partition.moved_since ~limit:10 p 0);
  match Scorr.Partition.moved_since ~limit:64 p 0 with
  | None -> Alcotest.fail "within limit"
  | Some moved ->
    Alcotest.(check int) "all but the representative moved" 39 (List.length moved)

let prop_refinement_invariants =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"refine_by_key preserves membership and monotonicity" ~count:200
       QCheck.(pair (int_range 1 30) (int_range 0 1_000))
       (fun (n_cands, seed) ->
         let rng = Random.State.make [| seed |] in
         let candidates = List.init n_cands (fun i -> i) in
         let p = mk_partition ~n:32 candidates in
         let ok = ref true in
         for _ = 1 to 5 do
           let modulus = 1 + Random.State.int rng 4 in
           let salt = Random.State.int rng 100 in
           let before = Scorr.Partition.n_classes p in
           ignore (Scorr.Partition.refine_by_key p (fun id -> (id + salt) mod modulus));
           if Scorr.Partition.n_classes p < before then ok := false
         done;
         (* every candidate is in exactly the class recorded for it *)
         List.iter
           (fun id ->
             let cls = Scorr.Partition.class_of p id in
             if not (List.mem id (Scorr.Partition.members p cls)) then ok := false)
           candidates;
         (* classes are disjoint and cover the candidates *)
         let all =
           List.concat
             (List.init (Scorr.Partition.n_classes p) (fun c -> Scorr.Partition.members p c))
         in
         !ok
         && List.sort compare all = List.sort compare candidates))

let suite =
  [ Alcotest.test_case "initial single class" `Quick test_initial_single_class;
    Alcotest.test_case "refine_by_key" `Quick test_refine_by_key;
    Alcotest.test_case "refine_class pairwise" `Quick test_refine_class_pairwise;
    Alcotest.test_case "norm_lit polarity" `Quick test_norm_lit_polarity;
    Alcotest.test_case "lits_equal polarity" `Quick test_lits_equal_polarity;
    Alcotest.test_case "constraint pairs" `Quick test_constraint_pairs;
    Alcotest.test_case "multi member classes" `Quick test_multi_member_classes;
    Alcotest.test_case "version and dirty tracking" `Quick test_version_dirty_tracking;
    Alcotest.test_case "moved_since journal limit" `Quick test_moved_since_limit;
    prop_refinement_invariants;
  ]

let () = Alcotest.run "partition" [ ("partition", suite) ]
