(* Tests for the clocking front end: lowering vs the direct multi-clock
   reference simulator, Verilog writer/reader round trips, the label
   uniquification fixes, and malformed-input handling. *)

module Clocking = Netlist.Clocking

let sorted_frames = List.map (List.sort compare)

(* A random clocked design exercising enables, gated clocks and both
   reset styles.  Reset nets are drawn from the input-only cone so the
   pathological async cycle (reset cone through the register's own
   output) cannot arise; enables and clock gates may come from anywhere,
   including other registers. *)
let random_design ?(n_inputs = 4) ?(n_regs = 4) ?(n_gates = 12) seed =
  let rng = Random.State.make [| seed; 0xc10c |] in
  let d = Clocking.create (Printf.sprintf "clkrand%d" seed) in
  let c = Clocking.circuit d in
  let ins =
    List.init n_inputs (fun i ->
        Netlist.add_input ~name:(Printf.sprintf "in%d" i) c)
  in
  (* a small input-only cone for spec nets *)
  let spec_pool = ref ins in
  for _ = 1 to 3 do
    let pick l = List.nth l (Random.State.int rng (List.length l)) in
    spec_pool :=
      Netlist.add_gate c
        (if Random.State.bool rng then Netlist.And else Netlist.Xor)
        [ pick !spec_pool; pick !spec_pool ]
      :: !spec_pool
  done;
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let all = ref !spec_pool in
  let regs =
    List.init n_regs (fun i ->
        let clock_gate =
          if Random.State.int rng 3 = 0 then Some (pick !all) else None
        in
        let enable =
          if Random.State.int rng 2 = 0 then Some (pick !all) else None
        in
        let reset =
          match Random.State.int rng 3 with
          | 0 -> None
          | 1 -> Some (Clocking.Sync, pick !spec_pool, Random.State.bool rng)
          | _ -> Some (Clocking.Async, pick !spec_pool, Random.State.bool rng)
        in
        let q =
          Clocking.add_reg
            ~name:(Printf.sprintf "r%d" i)
            ?clock_gate ?enable ?reset d
            ~init:(Random.State.bool rng)
        in
        all := q :: !all;
        q)
  in
  for _ = 1 to n_gates do
    all :=
      Netlist.add_gate c
        (match Random.State.int rng 4 with
        | 0 -> Netlist.And
        | 1 -> Netlist.Or
        | 2 -> Netlist.Xor
        | _ -> Netlist.Nand)
        [ pick !all; pick !all ]
      :: !all
  done;
  List.iter (fun q -> Netlist.set_latch_data c q ~data:(pick !all)) regs;
  Netlist.add_output c "out0" (pick !all);
  Netlist.add_output c "out1" (pick !all);
  d

let prop_lower_preserves_sim =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"lowering preserves 64-lane simulation" ~count:200
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let d = random_design seed in
         QCheck.assume (Clocking.validate d = Ok ());
         let n_inputs = List.length (Netlist.inputs (Clocking.circuit d)) in
         let stimuli =
           Netlist.Sim.random_stimuli ~seed ~n_inputs ~n_frames:24
         in
         let reference = Clocking.simulate d stimuli in
         let lowered = Netlist.Sim.run (Clocking.lower d) stimuli in
         sorted_frames reference = sorted_frames lowered))

(* Pin the documented conventions with tiny hand-computed sequences
   (single-lane stimuli: one bit per frame in lane 0). *)
let lane0 outs name =
  List.map
    (fun frame -> Int64.to_int (Int64.logand 1L (List.assoc name frame)))
    outs

let test_enable_semantics () =
  let d = Clocking.create "en" in
  let c = Clocking.circuit d in
  let din = Netlist.add_input ~name:"d" c in
  let en = Netlist.add_input ~name:"e" c in
  let q = Clocking.add_reg ~name:"q" ~enable:en d ~init:false in
  Netlist.set_latch_data c q ~data:din;
  Netlist.add_output c "q" q;
  (* frames: (d, e) *)
  let stim = List.map (fun (d, e) -> [| d; e |])
      [ (1L, 0L); (1L, 1L); (0L, 0L); (0L, 1L); (0L, 0L) ] in
  let expect = [ 0; 0; 1; 1; 0 ] in
  Alcotest.(check (list int)) "reference" expect (lane0 (Clocking.simulate d stim) "q");
  Alcotest.(check (list int)) "lowered" expect
    (lane0 (Netlist.Sim.run (Clocking.lower d) stim) "q")

let test_gated_clock_semantics () =
  (* gated clock: capture only on a 0->1 edge of g; g's past value starts
     at 0, so g=1 in the very first frame triggers a capture *)
  let d = Clocking.create "gc" in
  let c = Clocking.circuit d in
  let din = Netlist.add_input ~name:"d" c in
  let g = Netlist.add_input ~name:"g" c in
  let q = Clocking.add_reg ~name:"q" ~clock_gate:g d ~init:false in
  Netlist.set_latch_data c q ~data:din;
  Netlist.add_output c "q" q;
  let stim = List.map (fun (d, g) -> [| d; g |])
      [ (1L, 1L); (0L, 1L); (1L, 0L); (1L, 1L); (0L, 0L) ] in
  (* captures at frames 0 (first edge) and 3 (0->1 edge) *)
  let expect = [ 0; 1; 1; 1; 1 ] in
  Alcotest.(check (list int)) "reference" expect (lane0 (Clocking.simulate d stim) "q");
  Alcotest.(check (list int)) "lowered" expect
    (lane0 (Netlist.Sim.run (Clocking.lower d) stim) "q")

let test_reset_semantics () =
  (* sync reset is visible one cycle later, async in the same cycle *)
  let build kind =
    let d = Clocking.create "rst" in
    let c = Clocking.circuit d in
    let din = Netlist.add_input ~name:"d" c in
    let rst = Netlist.add_input ~name:"r" c in
    let q = Clocking.add_reg ~name:"q" ~reset:(kind, rst, true) d ~init:true in
    Netlist.set_latch_data c q ~data:din;
    Netlist.add_output c "q" q;
    d
  in
  let stim = List.map (fun (d, r) -> [| d; r |])
      [ (0L, 0L); (0L, 1L); (0L, 0L); (1L, 1L); (0L, 0L) ] in
  let check name kind expect =
    let d = build kind in
    Alcotest.(check (list int)) (name ^ " reference") expect
      (lane0 (Clocking.simulate d stim) "q");
    Alcotest.(check (list int)) (name ^ " lowered") expect
      (lane0 (Netlist.Sim.run (Clocking.lower d) stim) "q")
  in
  (* sync: q0=1(init); frame1 r=1 -> q2=1; async: r=1 forces q=1 visibly *)
  check "sync" Clocking.Sync [ 1; 0; 1; 0; 1 ];
  check "async" Clocking.Async [ 1; 1; 1; 1; 1 ]

let test_async_cycle_rejected () =
  let d = Clocking.create "cyc" in
  let c = Clocking.circuit d in
  let q = ref (-1) in
  let d_in = Netlist.add_input ~name:"d" c in
  (* reset cone passes through the register's own output *)
  q := Clocking.add_reg ~name:"q" d ~init:false;
  let rst = Netlist.add_gate ~name:"r" c Netlist.Buf [ !q ] in
  Clocking.set_spec d !q
    { Clocking.default_spec with reset = Some (Clocking.Async, rst, false) };
  Netlist.set_latch_data c !q ~data:d_in;
  Netlist.add_output c "q" !q;
  Alcotest.check_raises "lower rejects"
    (Clocking.Lower_error
       "async-reset cone of r passes through the register itself")
    (fun () -> ignore (Clocking.lower d))

(* --- Verilog round trips ------------------------------------------------- *)

(* Plain-circuit round trip: the written text must be a fixed point of
   write-parse-write, and the reparsed design (reset input tied low) must
   behave exactly like the original circuit. *)
let roundtrip_plain ?(n_frames = 24) c =
  let v1 = Netlist.Verilog.to_string c in
  let d = Netlist.Verilog.parse_string v1 in
  let v2 = Netlist.Verilog.design_to_string d in
  if v1 <> v2 then (
    Printf.printf "FIRST:\n%s\nSECOND:\n%s\n" v1 v2;
    Alcotest.fail "re-serialized Verilog differs");
  let lowered = Clocking.lower d in
  let n_inputs = List.length (Netlist.inputs c) in
  let stimuli = Netlist.Sim.random_stimuli ~seed:9 ~n_inputs ~n_frames in
  let has_reset =
    List.length (Netlist.inputs lowered) = n_inputs + 1
  in
  let stimuli' =
    if has_reset then
      List.map (fun f -> Array.append [| 0L |] f) stimuli
    else stimuli
  in
  let o1 = Netlist.Sim.run c stimuli in
  let o2 = Netlist.Sim.run lowered stimuli' in
  Alcotest.(check bool) "same behaviour" true
    (sorted_frames o1 = sorted_frames o2)

let test_roundtrip_suite () =
  List.iter
    (fun entry ->
      let c = entry.Circuits.Suite.build () in
      roundtrip_plain c)
    Circuits.Suite.suite

let prop_roundtrip_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"verilog round trip on random circuits" ~count:60
       QCheck.(int_range 0 10_000)
       (fun seed ->
         let c = Test_util.random_circuit seed in
         QCheck.assume (Netlist.validate c = Ok ());
         let v1 = Netlist.Verilog.to_string c in
         let d = Netlist.Verilog.parse_string v1 in
         let v2 = Netlist.Verilog.design_to_string d in
         v1 = v2))

(* Clocked designs round-trip through the design-level writer, specs and
   all. *)
let prop_roundtrip_design =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"verilog round trip on clocked designs" ~count:100
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let d = random_design seed in
         QCheck.assume (Clocking.validate d = Ok ());
         let v1 = Netlist.Verilog.design_to_string d in
         let d2 = Netlist.Verilog.parse_string v1 in
         let v2 = Netlist.Verilog.design_to_string d2 in
         let n_inputs = List.length (Netlist.inputs (Clocking.circuit d)) in
         let stimuli =
           Netlist.Sim.random_stimuli ~seed ~n_inputs ~n_frames:24
         in
         v1 = v2
         && sorted_frames (Clocking.simulate d stimuli)
            = sorted_frames (Clocking.simulate d2 stimuli)))

(* --- label uniquification regressions ------------------------------------ *)

let declared_identifiers ?(kinds = [ "input "; "output "; "wire "; "reg " ]) v =
  (* declared labels of the given declaration kinds *)
  let ids = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      List.iter
        (fun prefix ->
          let pl = String.length prefix in
          if String.length line > pl && String.sub line 0 pl = prefix then
            let rest = String.sub line pl (String.length line - pl) in
            let rest = String.trim rest in
            let id =
              match String.index_opt rest ';' with
              | Some i -> String.sub rest 0 i
              | None -> rest
            in
            ids := String.trim id :: !ids)
        kinds)
    (String.split_on_char '\n' v);
  !ids

(* signals must be pairwise distinct within input/wire/reg (one namespace
   of drivers); an output may legally share its name with the wire/reg it
   re-declares, but never with an input or another output *)
let check_distinct_labels v =
  let rec dup = function
    | a :: (b :: _ as rest) -> if a = b then Some a else dup rest
    | _ -> None
  in
  let signals =
    List.sort compare (declared_identifiers ~kinds:[ "input "; "wire "; "reg " ] v)
  in
  (match dup signals with
  | Some id -> Alcotest.fail (Printf.sprintf "duplicate signal %s" id)
  | None -> ());
  let outs = declared_identifiers ~kinds:[ "output " ] v in
  (match dup (List.sort compare outs) with
  | Some id -> Alcotest.fail (Printf.sprintf "duplicate output %s" id)
  | None -> ());
  let ins = declared_identifiers ~kinds:[ "input " ] v in
  List.iter
    (fun o ->
      if List.mem o ins then
        Alcotest.fail (Printf.sprintf "output %s collides with an input" o))
    outs

let test_adversarial_names () =
  let c = Netlist.create "names" in
  (* a.b and a_b sanitize to the same label; clock/reset shadow the
     generated ports; n5 collides with the fallback label of unnamed net
     5; wire is a keyword *)
  let a_dot_b = Netlist.add_input ~name:"a.b" c in
  let a_und_b = Netlist.add_input ~name:"a_b" c in
  let clk = Netlist.add_input ~name:"clock" c in
  let rst = Netlist.add_input ~name:"reset" c in
  let n5 = Netlist.add_input ~name:"n5" c in
  let kw = Netlist.add_input ~name:"wire" c in
  (* unnamed gates: one of them is net 5 or nearby, exercising the n%d
     fallback against the explicit "n5" input *)
  let g1 = Netlist.add_gate c Netlist.And [ a_dot_b; a_und_b ] in
  let g2 = Netlist.add_gate c Netlist.Xor [ clk; rst ] in
  let g3 = Netlist.add_gate c Netlist.Or [ n5; kw ] in
  let q = Netlist.add_latch ~name:"q" c ~init:true in
  Netlist.set_latch_data c q ~data:g1;
  Netlist.add_output c "o1" g2;
  Netlist.add_output c "o2" g3;
  Netlist.add_output c "q" q;
  let v = Netlist.Verilog.to_string c in
  check_distinct_labels v;
  (* and the output still parses and behaves like the original *)
  roundtrip_plain c

let test_output_alias_collision () =
  (* output named like an unnamed net's fallback label *)
  let c = Netlist.create "alias" in
  let a = Netlist.add_input ~name:"a" c in
  let g = Netlist.add_gate c Netlist.Not [ a ] in
  (* net 1 is unnamed -> label n1; output deliberately named n1 *)
  Netlist.add_output c "n1" g;
  let v = Netlist.Verilog.to_string c in
  check_distinct_labels v;
  (* the user-chosen output name wins; the unnamed net's fallback label
     is the one suffixed away *)
  let outs = declared_identifiers ~kinds:[ "output " ] v in
  Alcotest.(check (list string)) "output keeps its name" [ "n1" ] outs;
  roundtrip_plain c

(* --- reader: clocked constructs from external text ----------------------- *)

let test_parse_enable_reset () =
  let src =
    {|
module top(clk, rst, en, d, q);
  input clk;
  input rst;
  input en;
  input d;
  output q;
  reg q;
  always @(posedge clk) begin
    if (rst) q <= 1'b0;
    else if (en) q <= d;
  end
endmodule
|}
  in
  let dsg = Netlist.Verilog.parse_string src in
  let c = Clocking.circuit dsg in
  Alcotest.(check string) "clock name" "clk" (Clocking.clock_name dsg);
  let q = Option.get (Netlist.net_of_name c "q") in
  let s = Clocking.spec dsg q in
  Alcotest.(check bool) "enable" true (s.Clocking.enable <> None);
  (match s.Clocking.reset with
  | Some (Clocking.Sync, _, false) -> ()
  | _ -> Alcotest.fail "expected sync reset to 0");
  Alcotest.(check bool) "init from reset" false (Netlist.latch_init c q)

let test_parse_async_reset () =
  let src =
    {|
module top(clk, rst, d, q);
  input clk;
  input rst;
  input d;
  output q;
  reg q;
  always @(posedge clk or posedge rst) begin
    if (rst) q <= 1'b1;
    else q <= d;
  end
endmodule
|}
  in
  let dsg = Netlist.Verilog.parse_string src in
  let c = Clocking.circuit dsg in
  let q = Option.get (Netlist.net_of_name c "q") in
  (match (Clocking.spec dsg q).Clocking.reset with
  | Some (Clocking.Async, _, true) -> ()
  | _ -> Alcotest.fail "expected async reset to 1");
  Alcotest.(check bool) "init from reset" true (Netlist.latch_init c q)

let test_parse_gated_clock () =
  let src =
    {|
module top(clk, d, q);
  input clk;
  input d;
  output q;
  reg tick;
  reg q;
  wire gclk;
  assign gclk = tick;
  always @(posedge clk) tick <= ~tick;
  always @(posedge gclk) q <= d;
endmodule
|}
  in
  let dsg = Netlist.Verilog.parse_string src in
  let c = Clocking.circuit dsg in
  let q = Option.get (Netlist.net_of_name c "q") in
  Alcotest.(check bool) "gated" true
    ((Clocking.spec dsg q).Clocking.clock_gate <> None);
  let tick = Option.get (Netlist.net_of_name c "tick") in
  Alcotest.(check bool) "tick on primary clock" true
    ((Clocking.spec dsg tick).Clocking.clock_gate = None)

(* --- malformed input ------------------------------------------------------ *)

let expect_parse_error ?lenient src =
  match Netlist.Verilog.parse_string ?lenient src with
  | exception Netlist.Verilog.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error"

let test_malformed () =
  (* unclosed module: syntactic, rejected in both modes *)
  let unclosed = "module m(a);\n  input a;\n" in
  expect_parse_error unclosed;
  expect_parse_error ~lenient:true unclosed;
  (* non-subset constructs: rejected in both modes *)
  let star = "module m(a); input a; always @(a) begin end endmodule" in
  expect_parse_error star;
  expect_parse_error ~lenient:true star;
  let negedge =
    "module m(c, q); input c; output q; reg q;\n\
     always @(negedge c) q <= 1'b0; endmodule"
  in
  expect_parse_error negedge;
  expect_parse_error ~lenient:true negedge;
  let wide = "module m(a, y); input a; output y; wire y; assign y = 2'b10; endmodule" in
  expect_parse_error wide;
  expect_parse_error ~lenient:true wide

let test_lenient_recovery () =
  (* a reg with no always block and an undefined rhs signal: strict
     rejects, lenient materializes the defects for lint, mirroring
     BLIF/.bench behaviour *)
  let src =
    {|
module broken(clk, a, y);
  input clk;
  input a;
  output y;
  reg q;
  wire y;
  assign y = a & ghost;
endmodule
|}
  in
  expect_parse_error src;
  let dsg = Netlist.Verilog.parse_string ~lenient:true src in
  let c = Clocking.circuit dsg in
  (match Netlist.validate c with
  | Error msg ->
    Alcotest.(check bool) "reports unclosed latch" true
      (Str.string_match (Str.regexp ".*unclosed.*") msg 0
       || Str.string_match (Str.regexp ".*undriven.*") msg 0)
  | Ok () -> Alcotest.fail "lenient parse should keep the defects visible")

(* The snippet-2 pair: the delayed-enable resampling design must match
   the plain-resampling spec, both under the reference simulator and
   after lowering. *)
let test_ffde_pair_equiv () =
  let spec = Circuits.Clocked.ffde_spec () in
  let impl = Circuits.Clocked.ffde_impl () in
  let stim = Netlist.Sim.random_stimuli ~seed:11 ~n_inputs:2 ~n_frames:40 in
  let outs d = List.map (List.filter (fun (n, _) -> n = "o")) (Clocking.simulate d stim) in
  Alcotest.(check bool) "reference simulation agrees" true (outs spec = outs impl);
  let lowered d = sorted_frames (Netlist.Sim.run (Clocking.lower d) stim) in
  Alcotest.(check bool) "lowered simulation agrees" true
    (lowered spec = lowered impl)

(* The hand-flattened divider is the structural twin of the lowered
   gated-clock divider: identical behaviour on every output. *)
let test_divider_flat_equiv () =
  let gated = Clocking.lower (Circuits.Clocked.gated_divider ~stages:3 ()) in
  let flat = Circuits.Clocked.gated_divider_flat ~stages:3 () in
  let stim = Netlist.Sim.random_stimuli ~seed:5 ~n_inputs:1 ~n_frames:64 in
  Alcotest.(check bool) "divider twins agree" true
    (sorted_frames (Netlist.Sim.run gated stim)
    = sorted_frames (Netlist.Sim.run flat stim))

let suite =
  [ Alcotest.test_case "enable semantics" `Quick test_enable_semantics;
    Alcotest.test_case "gated clock semantics" `Quick test_gated_clock_semantics;
    Alcotest.test_case "reset semantics" `Quick test_reset_semantics;
    Alcotest.test_case "async cycle rejected" `Quick test_async_cycle_rejected;
    Alcotest.test_case "roundtrip suite circuits" `Slow test_roundtrip_suite;
    Alcotest.test_case "adversarial names" `Quick test_adversarial_names;
    Alcotest.test_case "output alias collision" `Quick test_output_alias_collision;
    Alcotest.test_case "parse enable+reset" `Quick test_parse_enable_reset;
    Alcotest.test_case "parse async reset" `Quick test_parse_async_reset;
    Alcotest.test_case "parse gated clock" `Quick test_parse_gated_clock;
    Alcotest.test_case "malformed inputs" `Quick test_malformed;
    Alcotest.test_case "lenient recovery" `Quick test_lenient_recovery;
    Alcotest.test_case "ffde pair equivalence" `Quick test_ffde_pair_equiv;
    Alcotest.test_case "divider flat twin" `Quick test_divider_flat_equiv;
    prop_lower_preserves_sim;
    prop_roundtrip_random;
    prop_roundtrip_design;
  ]

let () = Alcotest.run "clocking" [ ("clocking", suite) ]
