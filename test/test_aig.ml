(* AIG tests: structural-hashing invariants, netlist conversion agreement,
   AIGER roundtrips, Tseitin encoding consistency, cleanup. *)

let test_strash_folding () =
  let t = Aig.create () in
  let a = Aig.add_pi t and b = Aig.add_pi t in
  Alcotest.(check int) "a&a = a" a (Aig.mk_and t a a);
  Alcotest.(check int) "a&!a = 0" Aig.lit_false (Aig.mk_and t a (Aig.lit_not a));
  Alcotest.(check int) "a&1 = a" a (Aig.mk_and t a Aig.lit_true);
  Alcotest.(check int) "a&0 = 0" Aig.lit_false (Aig.mk_and t a Aig.lit_false);
  let ab1 = Aig.mk_and t a b and ab2 = Aig.mk_and t b a in
  Alcotest.(check int) "strash commutes" ab1 ab2;
  Alcotest.(check bool) "xor of equal is 0" true (Aig.mk_xor t a a = Aig.lit_false)

let test_no_duplicate_ands () =
  let t = Aig.create () in
  let a = Aig.add_pi t and b = Aig.add_pi t and c = Aig.add_pi t in
  let _ = Aig.mk_and t (Aig.mk_and t a b) c in
  let _ = Aig.mk_and t c (Aig.mk_and t b a) in
  (* check global invariant: all And nodes have distinct fanin pairs *)
  let seen = Hashtbl.create 16 in
  let dup = ref false in
  for id = 0 to Aig.num_nodes t - 1 do
    match Aig.node t id with
    | Aig.And (x, y) ->
      if Hashtbl.mem seen (x, y) then dup := true;
      Hashtbl.replace seen (x, y) ();
      if x > y then dup := true
    | Aig.Const | Aig.Pi _ | Aig.Latch _ -> ()
  done;
  Alcotest.(check bool) "no duplicates, fanins ordered" false !dup

let netlist_vs_aig seed =
  let c = Test_util.random_circuit seed in
  let a, lit_of = Aig.of_netlist c in
  QCheck.assume (Aig.validate a = Ok ());
  ignore lit_of;
  Test_util.seq_differ c (c) = None
  (* trivially true; the real comparison is below via output words *)
  &&
  let n_inputs = List.length (Netlist.inputs c) in
  let stimuli = Netlist.Sim.random_stimuli ~seed:(seed + 1) ~n_inputs ~n_frames:24 in
  let net_out = Netlist.Sim.run c stimuli in
  let aig_out, _ = Aig.Sim.run a stimuli in
  List.for_all2
    (fun f1 f2 -> List.sort compare f1 = List.sort compare f2)
    net_out aig_out

let prop_netlist_conversion =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"netlist->aig preserves behaviour" ~count:80
       QCheck.(int_range 0 100_000)
       netlist_vs_aig)

let prop_aiger_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"aiger roundtrip preserves behaviour" ~count:60
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let c = Test_util.random_circuit seed in
         let a, _ = Aig.of_netlist c in
         let a2 = Aig.Aiger.parse_string (Aig.Aiger.to_string a) in
         Aig.validate a2 = Ok () && Test_util.aig_seq_differ a a2 = None))

let prop_binary_aiger_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"binary aiger roundtrip preserves behaviour" ~count:60
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let c = Test_util.random_circuit seed in
         let a, _ = Aig.of_netlist c in
         let a2 = Aig.Aiger.parse_binary_string (Aig.Aiger.to_binary_string a) in
         Aig.validate a2 = Ok () && Test_util.aig_seq_differ a a2 = None))

let prop_binary_smaller_than_ascii =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"binary aiger is more compact" ~count:20
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let c = Test_util.random_circuit ~n_gates:60 seed in
         let a, _ = Aig.of_netlist c in
         QCheck.assume (Aig.num_ands a > 10);
         String.length (Aig.Aiger.to_binary_string a)
         < String.length (Aig.Aiger.to_string a)))

let test_parse_errors () =
  let expect_error name f =
    match f () with
    | exception Aig.Aiger.Parse_error _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Parse_error")
  in
  expect_error "empty" (fun () -> Aig.Aiger.parse_string "");
  expect_error "bad header" (fun () -> Aig.Aiger.parse_string "aag x\n");
  expect_error "truncated" (fun () -> Aig.Aiger.parse_string "aag 2 1 0 1 1\n2\n");
  expect_error "undefined literal" (fun () -> Aig.Aiger.parse_string "aag 1 0 0 1 0\n4\n");
  expect_error "binary bad header" (fun () -> Aig.Aiger.parse_binary_string "aig 3 1 0 1 1\n")

let prop_cleanup_preserves =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"cleanup preserves behaviour" ~count:60
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let c = Test_util.random_circuit ~n_gates:40 seed in
         let a, _ = Aig.of_netlist c in
         let a2, _ = Aig.cleanup a in
         Aig.num_nodes a2 <= Aig.num_nodes a && Test_util.aig_seq_differ a a2 = None))

(* Tseitin encoding: a random assignment of PIs/latches propagated by the
   SAT solver must match simulation. *)
let prop_cnf_agrees_with_sim =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"tseitin agrees with simulation" ~count:60
       QCheck.(pair (int_range 0 100_000) (int_range 0 1_000))
       (fun (seed, bits) ->
         let c = Test_util.random_circuit seed in
         let a, _ = Aig.of_netlist c in
         let solver = Sat.create () in
         let pi_vars, latch_vars, lit_of = Aig.Cnf.encode_fresh solver a in
         let n_pis = Aig.num_pis a and n_latches = Aig.num_latches a in
         let pi_val i = bits land (1 lsl i) <> 0 in
         let latch_val i = bits land (1 lsl (i + n_pis)) <> 0 in
         (* force the inputs *)
         for i = 0 to n_pis - 1 do
           Sat.add_clause solver [ Sat.Lit.make pi_vars.(i) (pi_val i) ]
         done;
         for i = 0 to n_latches - 1 do
           Sat.add_clause solver [ Sat.Lit.make latch_vars.(i) (latch_val i) ]
         done;
         match Sat.solve solver with
         | Sat.Unsat -> false
         | Sat.Sat ->
           let pi_words = Array.init n_pis (fun i -> if pi_val i then -1L else 0L) in
           let latch_words =
             Array.init n_latches (fun i -> if latch_val i then -1L else 0L)
           in
           let values = Aig.Sim.eval_comb a ~pi_words ~latch_words in
           List.for_all
             (fun (_, l) ->
               let sim = Int64.logand 1L (Aig.Sim.lit_word values l) = 1L in
               let sat_lit = lit_of l in
               let sat_val = Sat.value solver (Sat.Lit.var sat_lit) in
               let sat = if Sat.Lit.sign sat_lit then sat_val else not sat_val in
               sim = sat)
             (Aig.pos a)))

let test_copy_into () =
  (* build a & b in one AIG, copy into another with remapped inputs *)
  let src = Aig.create () in
  let a = Aig.add_pi src and b = Aig.add_pi src in
  let f = Aig.mk_and src a (Aig.lit_not b) in
  let dst = Aig.create () in
  let x = Aig.add_pi dst and y = Aig.add_pi dst in
  let tr =
    Aig.copy_into dst ~src ~pi_lit:(fun i -> if i = 0 then y else x) ~latch_lit:(fun _ -> assert false)
  in
  let g = tr f in
  (* g should equal y & !x in dst *)
  let expect = Aig.mk_and dst y (Aig.lit_not x) in
  Alcotest.(check int) "copied structure" expect g

let test_latch_roundtrip_aiger () =
  let t = Aig.create () in
  let x = Aig.add_pi t in
  let q = Aig.add_latch t ~init:true in
  Aig.set_latch_next t q ~next:(Aig.mk_xor t q x);
  Aig.add_po t "out" q;
  let t2 = Aig.Aiger.parse_string (Aig.Aiger.to_string t) in
  Alcotest.(check int) "latches" 1 (Aig.num_latches t2);
  Alcotest.(check bool) "init" true (Aig.latch_init t2 0);
  Alcotest.(check (option int)) "behaviour" None (Test_util.aig_seq_differ t t2)

let test_random_frames_all_lanes_toggle () =
  (* Regression for the bit-63 bias: [Random.State.int64 max_int] never sets
     bit 63, so simulation lane 63 stayed constant-0 and one of the 64
     parallel patterns was wasted.  With enough frames every one of the 64
     lanes of every PI word must take both values. *)
  let n_pis = 4 and n_frames = 64 in
  List.iter
    (fun seed ->
      let frames = Aig.Sim.random_frames ~seed ~n_pis ~n_frames in
      Alcotest.(check int) "frame count" n_frames (List.length frames);
      for pi = 0 to n_pis - 1 do
        let ones = ref 0L and zeros = ref (-1L) in
        List.iter
          (fun words ->
            ones := Int64.logor !ones words.(pi);
            zeros := Int64.logand !zeros words.(pi))
          frames;
        Alcotest.(check int64)
          (Printf.sprintf "seed %d pi %d: every lane hits 1" seed pi)
          (-1L) !ones;
        Alcotest.(check int64)
          (Printf.sprintf "seed %d pi %d: every lane hits 0" seed pi)
          0L !zeros
      done)
    [ 0; 1; 42 ]

let suite =
  [ Alcotest.test_case "strash folding" `Quick test_strash_folding;
    Alcotest.test_case "random frames toggle all 64 lanes" `Quick
      test_random_frames_all_lanes_toggle;
    Alcotest.test_case "no duplicate ands" `Quick test_no_duplicate_ands;
    Alcotest.test_case "copy_into" `Quick test_copy_into;
    Alcotest.test_case "aiger latch roundtrip" `Quick test_latch_roundtrip_aiger;
    Alcotest.test_case "aiger parse errors" `Quick test_parse_errors;
    prop_netlist_conversion;
    prop_aiger_roundtrip;
    prop_binary_aiger_roundtrip;
    prop_binary_smaller_than_ascii;
    prop_cleanup_preserves;
    prop_cnf_agrees_with_sim;
  ]

let () = Alcotest.run "aig" [ ("aig", suite) ]
