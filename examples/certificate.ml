(* The checker's certificate: after proving equivalence, print the final
   signal correspondence relation — which specification signal matches
   which implementation signal, with polarity (antivalences show up as
   complemented partners) — then export it as a portable certificate and
   re-validate it with the independent checker from [Cert].

   Run with:  dune exec examples/certificate.exe *)

let () =
  let spec, _ = Aig.of_netlist (Circuits.Counter.modulo 10) in
  let impl = Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_only ~seed:5 spec in
  Format.printf "spec: %a@." Aig.pp_stats spec;
  Format.printf "impl: %a@.@." Aig.pp_stats impl;
  let options = Scorr.default_options in
  let ((verdict, product, relation) as run) =
    Scorr.Verify.run_with_relation ~options spec impl
  in
  match (verdict, relation) with
  | Scorr.Equivalent stats, Some partition ->
    Format.printf "EQUIVALENT in %d iterations; the relation that proves it:@.@."
      stats.Scorr.Verify.iterations;
    Format.printf "%a@." Scorr.Verify.pp_relation (product, partition);
    Format.printf
      "Reading the classes: spec:* / impl:* tag each signal's circuit,@.";
    Format.printf
      "~ marks a complemented (antivalent) member, shared:* is logic the@.";
    Format.printf
      "structural hash already unified, and miter:* are the comparison@.";
    Format.printf "XNORs.  Every output pair sits in a common class (Theorem 1).@.@.";
    (* the relation is an inductive invariant, so it travels: export it
       and re-prove the verdict without the fixed-point engine *)
    (match Cert.Certificate.of_run ~options ~spec ~impl run with
    | Error e -> Format.printf "emission failed: %s@." (Cert.Certificate.explain_emit_error e)
    | Ok cert ->
      Format.printf "exported certificate (%d classes, %d constraints):@.@.%s@."
        (Cert.Certificate.n_classes cert)
        (Cert.Certificate.n_constraints cert)
        (Cert.Certificate.to_string cert);
      (match Cert.Certificate.check ~spec ~impl cert with
      | Ok () ->
        Format.printf
          "independent check PASSED: the relation holds initially, is@.";
        Format.printf "1-step inductive, and covers every output pair.@."
      | Error e ->
        Format.printf "independent check FAILED: %s@."
          (Cert.Certificate.explain_check_error e)))
  | Scorr.Not_equivalent { frame; _ }, _ ->
    Format.printf "NOT EQUIVALENT at frame %d — unexpected!@." frame
  | Scorr.Unknown _, _ -> Format.printf "UNKNOWN — unexpected for this workload!@."
  | Scorr.Equivalent _, None -> Format.printf "no relation recorded — unexpected!@."
