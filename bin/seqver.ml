(* seqver — command-line driver for the sequential equivalence checker.

   Subcommands: verify (the paper's method, the register-correspondence
   special case, or the traversal baseline), bmc (bounded refutation),
   check-cert (independently re-validate an equivalence certificate),
   replay (re-simulate a counterexample witness), lint (static analysis),
   analyze (structural shape metrics, reduction opportunities and
   diagnostics), gen (emit suite circuits), opt (apply the synthesis
   pipeline), sim (random simulation), stats. *)

(* Every input path is preflight-linted — including .aag files, which used
   to bypass validation entirely; a rejection prints the full
   multi-diagnostic report and exits 2.  Netlists are parsed leniently so
   that the lint pass sees every defect at once instead of the parser
   bailing on the first one; the preflight's error-level rules cover all
   lenient recoveries, so nothing defective reaches the prover. *)
let read_circuit path =
  try
    if Filename.check_suffix path ".aag" then begin
      let aig = Aig.Aiger.parse_file path in
      Lint.preflight_aig ~subject:path aig;
      aig
    end
    else if Filename.check_suffix path ".v" then begin
      (* structural Verilog carries register specs (enables, derived
         clocks, resets): preflight the raw circuit so lenient-parse
         defects are reported, then lower to plain latches for the
         prover and preflight the result. *)
      let design = Netlist.Verilog.parse_file ~lenient:true path in
      Lint.preflight_netlist ~subject:path (Netlist.Clocking.circuit design);
      let lowered = Netlist.Clocking.lower design in
      Lint.preflight_netlist ~subject:path lowered;
      fst (Aig.of_netlist lowered)
    end
    else begin
      let netlist =
        if Filename.check_suffix path ".bench" then
          Netlist.Bench.parse_file ~lenient:true path
        else Netlist.Blif.parse_file ~lenient:true path
      in
      Lint.preflight_netlist ~subject:path netlist;
      fst (Aig.of_netlist netlist)
    end
  with
  | Lint.Rejected report ->
      prerr_string report;
      exit 2
  | Netlist.Blif.Parse_error msg | Netlist.Bench.Parse_error msg
  | Netlist.Verilog.Parse_error msg | Aig.Aiger.Parse_error msg ->
      Printf.eprintf "%s: parse error: %s\n" path msg;
      exit 2
  | Netlist.Clocking.Lower_error msg ->
      Printf.eprintf "%s: clocking error: %s\n" path msg;
      exit 2

let write_circuit path aig =
  if Filename.check_suffix path ".aag" then Aig.Aiger.to_file path aig
  else failwith "seqver: can only write .aag files from AIGs"

(* --- verify ----------------------------------------------------------------- *)

type method_kind = M_scorr | M_regcorr | M_traversal | M_auto

let pp_stats (s : Scorr.stats) =
  Printf.printf
    "  iterations:      %d\n  retime rounds:   %d\n  candidates:      %d\n\
    \  classes:         %d\n  peak BDD nodes:  %d\n  SAT calls:       %d\n\
    \  batched solves:  %d\n  pool lanes:      %d\n  resim splits:    %d\n\
    \  cache hits:      %d\n  equivalences:    %.1f%%\n  time:            %.2f s\n"
    s.Scorr.Verify.iterations s.retime_rounds s.candidates s.classes
    s.peak_bdd_nodes s.sat_calls s.batched_solves s.pool_lanes s.resim_splits
    s.cache_hits s.eq_pct s.seconds;
  if s.conflicts > 0 || s.propagations > 0 then
    Printf.printf
      "  SAT conflicts:   %d\n  propagations:    %d\n  restarts:        %d\n\
      \  encoded vars:    %d\n  reused clauses:  %d\n  shared clauses:  %d\n\
      \  core prunes:     %d\n"
      s.conflicts s.propagations s.restarts s.encoded_vars s.reused_clauses
      s.shared_clauses s.core_prunes;
  if s.spec_rounds > 0 then
    Printf.printf
      "  spec rounds:     %d\n  spec merges:     %d\n  refuted assumps: %d\n\
      \  classes by sim:  %d\n  classes by BDD:  %d\n  classes by SAT:  %d\n"
      s.spec_rounds s.spec_merges s.refuted_assumptions s.spec_by_sim s.spec_by_bdd
      s.spec_by_sat;
  if s.domains > 1 then
    Printf.printf "  domains:         %d (lane solves: %s; steals: %d; wait: %.2f s)\n"
      s.domains
      (String.concat "," (List.map string_of_int s.lane_solves))
      s.steals s.sched_wait_seconds;
  match s.phase_seconds with
  | [] -> ()
  | phases ->
    Printf.printf "  phases:         %s\n"
      (String.concat " "
         (List.map (fun (name, t) -> Printf.sprintf "%s=%.2fs" name t) phases))

(* verify --suite: every built-in (spec, retimed implementation) pair,
   dispatched as whole verification jobs across worker domains.  Each
   job is fully isolated — its own circuits, SAT solvers and BDD manager
   — and results are collected and printed in suite order, so the
   output (and the exit code, the max of the per-pair codes) is
   deterministic for every [-j]. *)
let run_verify_suite engine jobs deadline quiet =
  let jobs = if jobs <= 0 then Domain.recommended_domain_count () else jobs in
  let options =
    {
      Scorr.default_options with
      Scorr.Verify.engine =
        (match engine with "sat" -> Scorr.Verify.Sat_engine | _ -> Scorr.Verify.Bdd_engine);
      jobs = 1; (* parallelism lives at the job level here *)
      deadline_seconds = deadline; (* per pair, not per suite *)
    }
  in
  let entries = Array.of_list Circuits.Suite.suite in
  let pool = Scorr.Parsweep.create ~jobs ~init:(fun _ -> ()) in
  let results =
    Scorr.Parsweep.map pool
      ~f:(fun () e ->
        let spec = fst (Aig.of_netlist (e.Circuits.Suite.build ())) in
        let impl =
          Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_only ~seed:7 spec
        in
        Scorr.Clock.timed (fun () -> Scorr.check ~options spec impl))
      entries
  in
  Scorr.Parsweep.shutdown pool;
  let code = ref 0 in
  Array.iteri
    (fun i (verdict, secs) ->
      let name = entries.(i).Circuits.Suite.name in
      let label, c =
        match verdict with
        | Scorr.Equivalent _ -> ("equivalent", 0)
        | Scorr.Not_equivalent _ -> ("NOT EQUIVALENT", 1)
        | Scorr.Unknown _ -> ("unknown", 3)
      in
      code := max !code c;
      if not quiet then
        Printf.printf "%-4s %-10s %-14s %6.2f s  eq=%.1f%%\n"
          (if c = 0 then "ok" else "FAIL")
          name label secs
          (Scorr.verdict_stats verdict).Scorr.Verify.eq_pct)
    results;
  !code

let run_verify spec_path impl_path meth engine no_sim_seed no_fundep no_retime
    no_incremental speculate no_speculate dontcare analysis node_limit unroll seconds
    deadline checkpoint checkpoint_every resume show_classes emit_cert proof emit_witness
    jobs suite quiet =
  if suite then run_verify_suite engine jobs deadline quiet
  else
  match (spec_path, impl_path) with
  | None, _ | _, None ->
    prerr_endline "seqver verify: expected SPEC IMPL (or --suite)";
    exit 2
  | Some spec_path, Some impl_path ->
  (* certificate emission needs the relation, which only -m scorr exposes,
     and refuses don't-care-strengthened relations (not self-certifying) *)
  if (emit_cert <> None || emit_witness <> None) && meth <> M_scorr then begin
    prerr_endline "seqver verify: --emit-cert/--emit-witness require -m scorr";
    exit 2
  end;
  if emit_cert <> None && dontcare then begin
    prerr_endline
      "seqver verify: --emit-cert is incompatible with --dontcare (a relation \
       holding only inside the reachable care set is not self-certifying)";
    exit 2
  end;
  if proof && emit_cert = None then begin
    prerr_endline "seqver verify: --proof requires --emit-cert";
    exit 2
  end;
  let spec = read_circuit spec_path and impl = read_circuit impl_path in
  let resume =
    match resume with
    | None -> None
    | Some path -> (
      try Some (Scorr.Checkpoint.parse_file path) with
      | Scorr.Checkpoint.Parse_error msg ->
        Printf.eprintf "%s: %s\n" path msg;
        exit 2
      | Sys_error msg ->
        Printf.eprintf "seqver verify: %s\n" msg;
        exit 2)
  in
  let options =
    {
      Scorr.default_options with
      Scorr.Verify.engine =
        (match engine with "sat" -> Scorr.Verify.Sat_engine | _ -> Scorr.Verify.Bdd_engine);
      use_sim_seed = not no_sim_seed;
      use_fundep = not no_fundep;
      use_retime = not no_retime;
      use_incremental = not no_incremental;
      use_speculation =
        (speculate || Scorr.default_options.Scorr.Verify.use_speculation)
        && not no_speculate;
      use_reach_dontcare = dontcare;
      (* the portfolio is analysis-steered by default; the flag opts the
         direct methods into the static support prefilter *)
      use_analysis = analysis || meth = M_auto;
      node_limit;
      sat_unroll = unroll;
      jobs = (if jobs > 0 then jobs else Scorr.default_options.Scorr.Verify.jobs);
      deadline_seconds = deadline;
      checkpoint_path = checkpoint;
      checkpoint_every;
      resume;
    }
  in
  let exit_of = function
    | Scorr.Equivalent stats ->
      if not quiet then begin
        print_endline "EQUIVALENT";
        pp_stats stats
      end;
      0
    | Scorr.Not_equivalent { frame; trace; stats } ->
      if not quiet then begin
        Printf.printf "NOT EQUIVALENT (difference at frame %d)\n" frame;
        (match trace with
        | Some inputs ->
          print_endline "  witness input trace (one vector per frame):";
          Array.iteri
            (fun t frame_inputs ->
              Printf.printf "    t=%d:" t;
              Array.iter (fun b -> print_string (if b then " 1" else " 0")) frame_inputs;
              print_newline ())
            inputs
        | None -> ());
        pp_stats stats
      end;
      1
    | Scorr.Unknown stats ->
      if not quiet then begin
        (match stats.Scorr.Verify.exhausted with
        | Some why -> Printf.printf "UNKNOWN (budget exhausted: %s)\n" why
        | None -> print_endline "UNKNOWN (the method is sound but incomplete)");
        (match (options.Scorr.Verify.checkpoint_path, stats.Scorr.Verify.exhausted) with
        | Some path, Some _ -> Printf.printf "  checkpoint:      %s\n" path
        | _ -> ());
        pp_stats stats
      end;
      3
  in
  let dispatch () =
  match meth with
  | M_auto -> exit_of (Scorr.portfolio ~options spec impl)
  | M_scorr ->
    if show_classes || emit_cert <> None || emit_witness <> None then begin
      let ((verdict, product, relation) as run) =
        Scorr.Verify.run_with_relation ~options spec impl
      in
      if show_classes then
        (match relation with
        | Some partition -> Format.printf "%a" Scorr.Verify.pp_relation (product, partition)
        | None -> ());
      (match emit_cert with
      | None -> ()
      | Some path -> (
        match Cert.Certificate.of_run ~options ~spec ~impl run with
        | Ok cert -> (
          let proved =
            if proof then
              match Cert.Certificate.prove ~spec ~impl cert with
              | Ok c -> Some c
              | Error e ->
                Printf.eprintf "seqver verify: no certificate emitted: proof trace: %s\n"
                  (Cert.Certificate.explain_check_error e);
                None
            else Some cert
          in
          match proved with
          | None -> ()
          | Some cert ->
            Cert.Certificate.to_file path cert;
            if not quiet then
              Printf.printf "certificate: %s (%d classes, %d constraints%s)\n" path
                (Cert.Certificate.n_classes cert)
                (Cert.Certificate.n_constraints cert)
                (match cert.Cert.Certificate.proof with
                | Some segs -> Printf.sprintf ", %d proof segments" (List.length segs)
                | None -> ""))
        | Error e ->
          Printf.eprintf "seqver verify: no certificate emitted: %s\n"
            (Cert.Certificate.explain_emit_error e)));
      (match emit_witness with
      | None -> ()
      | Some path -> (
        match verdict with
        | Scorr.Not_equivalent { trace = Some inputs; _ } ->
          let w = Cert.Witness.of_trace inputs in
          Cert.Witness.to_file path w;
          if not quiet then
            Printf.printf "witness: %s (%d frames)\n" path (Cert.Witness.n_frames w)
        | Scorr.Not_equivalent { trace = None; _ } ->
          prerr_endline "seqver verify: no witness emitted: refutation carried no trace"
        | Scorr.Equivalent _ | Scorr.Unknown _ ->
          if not quiet then
            Printf.eprintf "seqver verify: no witness emitted: circuits not refuted\n"));
      exit_of verdict
    end
    else exit_of (Scorr.check ~options spec impl)
  | M_regcorr -> exit_of (Scorr.register_correspondence ~options spec impl)
  | M_traversal -> (
    let product = Scorr.Product.make spec impl in
    let trans =
      Reach.Trans.make ~node_limit
        ~latch_order:(Scorr.Verify.latch_order_from_outputs product)
        product.Scorr.Product.aig
    in
    let budget =
      {
        Reach.Traversal.max_iterations = max_int;
        max_live_nodes = node_limit;
        max_seconds = seconds;
      }
    in
    let result = Reach.Traversal.check_equivalence ~budget ~use_fundep:(not no_fundep) trans in
    let st = result.Reach.Traversal.stats in
    let report verdict code =
      if not quiet then begin
        print_endline verdict;
        Printf.printf "  depth:           %d\n  peak BDD nodes:  %d\n  dependencies:    %d\n  time:            %.2f s\n"
          st.Reach.Traversal.iterations st.peak_nodes st.dependencies_found st.seconds
      end;
      code
    in
    match result.Reach.Traversal.outcome with
    | Reach.Traversal.Fixpoint _ -> report "EQUIVALENT (traversal fixpoint)" 0
    | Reach.Traversal.Property_violation d ->
      report (Printf.sprintf "NOT EQUIVALENT (violation at depth %d)" d) 1
    | Reach.Traversal.Budget_exceeded what ->
      report (Printf.sprintf "UNKNOWN (budget exceeded: %s)" what) 3)
  in
  try dispatch () with
  | Scorr.Checkpoint.Incompatible msg ->
    Printf.eprintf "seqver verify: checkpoint rejected: %s\n" msg;
    exit 2

(* --- checkpoint ------------------------------------------------------------------ *)

(* Inspect a checkpoint file: exit 0 when well-formed, 2 otherwise.  With
   SPEC and IMPL also given, probe whether the checkpoint could seed a
   run over those circuits — a fingerprint drift used to surface as a
   confusing resume-time rejection; here it is a first-class diagnostic
   naming both MD5s. *)
let run_checkpoint path spec_path impl_path =
  match Scorr.Checkpoint.parse_file path with
  | exception Scorr.Checkpoint.Parse_error msg ->
    Printf.eprintf "%s: %s\n" path msg;
    2
  | exception Sys_error msg ->
    Printf.eprintf "seqver checkpoint: %s\n" msg;
    2
  | cp ->
    Printf.printf
      "checkpoint: %s\n\
      \  spec md5:        %s\n\
      \  impl md5:        %s\n\
      \  engine:          %s\n\
      \  candidates:      %s\n\
      \  induction:       %d\n\
      \  seed:            %d\n\
      \  retime rounds:   %d\n\
      \  product nodes:   %d\n\
      \  iterations:      %d\n\
      \  classes:         %d (%d constraints)\n\
      \  pool patterns:   %d\n"
      path cp.Scorr.Checkpoint.spec_digest cp.Scorr.Checkpoint.impl_digest
      cp.Scorr.Checkpoint.engine cp.Scorr.Checkpoint.candidates
      cp.Scorr.Checkpoint.induction cp.Scorr.Checkpoint.seed
      cp.Scorr.Checkpoint.retime_rounds cp.Scorr.Checkpoint.product_nodes
      cp.Scorr.Checkpoint.iterations
      (Scorr.Checkpoint.n_classes cp)
      (Scorr.Checkpoint.n_constraints cp)
      (Scorr.Checkpoint.n_patterns cp);
    (match (spec_path, impl_path) with
    | None, None -> 0
    | Some spec_path, Some impl_path -> (
      let spec = read_circuit spec_path and impl = read_circuit impl_path in
      (* probe against the checkpoint's own option pins, so the only
         thing that can mismatch here is the circuits themselves *)
      match
        Scorr.Checkpoint.compatible
          ~spec_digest:(Scorr.Checkpoint.fingerprint spec)
          ~impl_digest:(Scorr.Checkpoint.fingerprint impl)
          ~candidates:cp.Scorr.Checkpoint.candidates ~induction:cp.Scorr.Checkpoint.induction
          ~seed:cp.Scorr.Checkpoint.seed cp
      with
      | Ok () ->
        Printf.printf "  compatible:      yes (fingerprints match %s %s)\n" spec_path impl_path;
        0
      | Error msg ->
        Printf.printf "  compatible:      no\n";
        Printf.eprintf "seqver checkpoint: %s\n" msg;
        2)
    | _ ->
      prerr_endline "seqver checkpoint: expected CHECKPOINT, or CHECKPOINT SPEC IMPL";
      2)

(* --- gen ---------------------------------------------------------------------- *)

let run_gen name out fmt list_only =
  if list_only then begin
    List.iter
      (fun e ->
        Printf.printf "%-10s %s\n" e.Circuits.Suite.name e.Circuits.Suite.description)
      Circuits.Suite.suite;
    0
  end
  else
    match Circuits.Suite.find name with
    | None ->
      Printf.eprintf "seqver gen: unknown circuit %s (try --list)\n" name;
      1
    | Some e ->
      let netlist = e.Circuits.Suite.build () in
      let text =
        match fmt with
        | "bench" -> Netlist.Bench.to_string netlist
        | "verilog" | "v" -> Netlist.Verilog.to_string netlist
        | _ -> Netlist.Blif.to_string netlist
      in
      (match out with
      | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc text)
      | None -> print_string text);
      0

(* --- opt ----------------------------------------------------------------------- *)

let run_opt in_path out_path recipe seed =
  let aig = read_circuit in_path in
  let recipe =
    match recipe with
    | "retime" -> Circuits.Suite.Retime_only
    | _ -> Circuits.Suite.Retime_opt
  in
  let impl = Circuits.Suite.implementation ~recipe ~seed aig in
  write_circuit out_path impl;
  Printf.printf "%s -> %s\n" (Format.asprintf "%a" Aig.pp_stats aig)
    (Format.asprintf "%a" Aig.pp_stats impl);
  0

(* --- sim ------------------------------------------------------------------------ *)

let run_sim path frames seed =
  let aig = read_circuit path in
  let stimuli = Aig.Sim.random_frames ~seed ~n_pis:(Aig.num_pis aig) ~n_frames:frames in
  let outs, _ = Aig.Sim.run aig stimuli in
  List.iteri
    (fun t frame ->
      Printf.printf "frame %3d:" t;
      List.iter (fun (name, w) -> Printf.printf " %s=%Lx" name w) frame;
      print_newline ())
    outs;
  0

(* --- bmc ------------------------------------------------------------------------ *)

let run_bmc spec_path impl_path depth emit_witness =
  let spec = read_circuit spec_path and impl = read_circuit impl_path in
  let product = Scorr.Product.make spec impl in
  match Reach.Bmc.check ~max_depth:depth product.Scorr.Product.aig with
  | Reach.Bmc.No_counterexample d ->
    Printf.printf "no difference within %d frames\n" (d + 1);
    0
  | Reach.Bmc.Counterexample cex ->
    Printf.printf "NOT EQUIVALENT: outputs differ at frame %d\n" cex.Reach.Bmc.depth;
    Array.iteri
      (fun t frame ->
        Printf.printf "  t=%d:" t;
        Array.iter (fun b -> print_string (if b then " 1" else " 0")) frame;
        print_newline ())
      cex.Reach.Bmc.inputs;
    (match emit_witness with
    | None -> ()
    | Some path ->
      let w = Cert.Witness.of_bmc cex in
      Cert.Witness.to_file path w;
      Printf.printf "witness: %s (%d frames)\n" path (Cert.Witness.n_frames w));
    1
  | Reach.Bmc.Budget what ->
    Printf.printf "budget exceeded: %s\n" what;
    2

(* --- check-cert ----------------------------------------------------------------- *)

(* Exit codes: 0 the certificate (or every suite certificate) validated,
   1 a check rejected it, 2 parse/IO/usage trouble. *)
let run_check_cert cert_path spec_path impl_path suite proof quiet =
  if suite then begin
    (* self-check: emit and independently re-validate a certificate for
       every built-in (spec, retimed implementation) pair; with --proof,
       also record a DRAT trace and re-validate by replay alone *)
    let failures = ref 0 in
    List.iter
      (fun e ->
        let spec = fst (Aig.of_netlist (e.Circuits.Suite.build ())) in
        let impl =
          Circuits.Suite.implementation ~recipe:Circuits.Suite.Retime_only ~seed:7 spec
        in
        let options = Scorr.default_options in
        let run = Scorr.Verify.run_with_relation ~options spec impl in
        let status =
          match Cert.Certificate.of_run ~options ~spec ~impl run with
          | Error e -> Error (Cert.Certificate.explain_emit_error e)
          | Ok cert -> (
            let proved =
              if proof then Cert.Certificate.prove ~spec ~impl cert else Ok cert
            in
            match proved with
            | Error e -> Error (Cert.Certificate.explain_check_error e)
            | Ok cert -> (
              (* round-trip through the text format so the suite also
                 exercises the parser *)
              let cert = Cert.Certificate.parse_string (Cert.Certificate.to_string cert) in
              match Cert.Certificate.check ~use_proof:proof ~spec ~impl cert with
              | Ok () -> Ok (Cert.Certificate.n_constraints cert)
              | Error e -> Error (Cert.Certificate.explain_check_error e)))
        in
        match status with
        | Ok n ->
          if not quiet then
            Printf.printf "ok   %-10s %d constraints\n" e.Circuits.Suite.name n
        | Error msg ->
          incr failures;
          Printf.printf "FAIL %-10s %s\n" e.Circuits.Suite.name msg)
      Circuits.Suite.suite;
    if !failures = 0 then 0 else 1
  end
  else
    match (cert_path, spec_path, impl_path) with
    | Some cert_path, Some spec_path, Some impl_path -> (
      let cert =
        try Cert.Certificate.parse_file cert_path with
        | Cert.Certificate.Parse_error msg ->
          Printf.eprintf "%s: %s\n" cert_path msg;
          exit 2
        | Sys_error msg ->
          Printf.eprintf "seqver check-cert: %s\n" msg;
          exit 2
      in
      let spec = read_circuit spec_path and impl = read_circuit impl_path in
      match Cert.Certificate.check ~use_proof:proof ~spec ~impl cert with
      | Ok () ->
        if not quiet then
          Printf.printf "certificate valid: %d classes, %d constraints (induction %d%s)\n"
            (Cert.Certificate.n_classes cert)
            (Cert.Certificate.n_constraints cert)
            cert.Cert.Certificate.induction
            (if proof then ", proof replayed" else "");
        0
      | Error e ->
        Printf.printf "certificate REJECTED: %s\n" (Cert.Certificate.explain_check_error e);
        1)
    | _ ->
      prerr_endline "seqver check-cert: expected CERT SPEC IMPL (or --suite)";
      2

(* --- replay --------------------------------------------------------------------- *)

(* Exit codes: 0 the witness demonstrates a real output mismatch, 1 it
   replays cleanly (disproves nothing), 2 malformed witness or a
   shape/width mismatch against the circuits. *)
let run_replay witness_path spec_path impl_path do_shrink vcd quiet =
  let w =
    try Cert.Witness.parse_file witness_path with
    | Cert.Witness.Parse_error msg ->
      Printf.eprintf "%s: %s\n" witness_path msg;
      exit 2
    | Sys_error msg ->
      Printf.eprintf "seqver replay: %s\n" msg;
      exit 2
  in
  let spec = read_circuit spec_path and impl = read_circuit impl_path in
  match Cert.Witness.replay ~spec ~impl w with
  | Ok _ ->
    let w = if do_shrink then Cert.Witness.shrink ~spec ~impl w else w in
    let m =
      match Cert.Witness.replay ~spec ~impl w with
      | Ok m -> m
      | Error _ -> assert false (* shrink preserves the disproof *)
    in
    if not quiet then begin
      Printf.printf "CONFIRMED: output %s differs at frame %d (spec=%d impl=%d)\n"
        m.Cert.Witness.output m.at_frame
        (Bool.to_int m.spec_value) (Bool.to_int m.impl_value);
      print_string (Cert.Witness.to_waveform ~spec ~impl w)
    end;
    (match vcd with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Cert.Witness.to_vcd ~spec ~impl w));
      if not quiet then Printf.printf "vcd: %s\n" path);
    0
  | Error Cert.Witness.No_failure ->
    Printf.printf "NOT CONFIRMED: %s\n" (Cert.Witness.explain_error Cert.Witness.No_failure);
    1
  | Error e ->
    Printf.eprintf "seqver replay: %s\n" (Cert.Witness.explain_error e);
    2

(* --- lint ----------------------------------------------------------------------- *)

(* Files are parsed leniently so that every structural defect is
   materialized and reported in one run instead of aborting at the first
   parse error; only files too malformed to tokenize are rejected
   outright (exit 2). *)
let lint_subjects files suite =
  let of_file path =
    if Filename.check_suffix path ".aag" then (path, `Aig (Aig.Aiger.parse_file path))
    else if Filename.check_suffix path ".bench" then
      (path, `Netlist (Netlist.Bench.parse_file ~lenient:true path))
    else if Filename.check_suffix path ".v" then begin
      (* lint the lowered form so the ternary/X rules see the real
         next-state functions; fall back to the raw circuit when the
         design is too defective to lower. *)
      let design = Netlist.Verilog.parse_file ~lenient:true path in
      let netlist =
        match Netlist.Clocking.validate design with
        | Ok () -> (
          try Netlist.Clocking.lower design
          with Netlist.Clocking.Lower_error _ -> Netlist.Clocking.circuit design)
        | Error _ -> Netlist.Clocking.circuit design
      in
      (path, `Netlist netlist)
    end
    else (path, `Netlist (Netlist.Blif.parse_file ~lenient:true path))
  in
  let from_suite =
    if not suite then []
    else
      List.map
        (fun e -> ("suite:" ^ e.Circuits.Suite.name, `Netlist (e.Circuits.Suite.build ())))
        Circuits.Suite.suite
  in
  List.map of_file files @ from_suite

let run_lint files suite json strict analysis =
  let subjects =
    try lint_subjects files suite with
    | Netlist.Blif.Parse_error msg | Netlist.Bench.Parse_error msg
    | Netlist.Verilog.Parse_error msg ->
      Printf.eprintf "seqver lint: parse error: %s\n" msg;
      exit 2
    | Aig.Aiger.Parse_error msg ->
      Printf.eprintf "seqver lint: aiger parse error: %s\n" msg;
      exit 2
    | Sys_error msg ->
      Printf.eprintf "seqver lint: %s\n" msg;
      exit 2
  in
  let results =
    List.map
      (fun (subject, c) ->
        let diags =
          match c with
          | `Netlist n -> Lint.check_netlist n
          | `Aig a -> Lint.check_aig ~analysis a
        in
        (subject, diags))
      subjects
  in
  if json then
    Printf.printf "[%s]\n"
      (String.concat ","
         (List.map (fun (subject, diags) -> Lint.to_json ~subject diags) results))
  else
    List.iter (fun (subject, diags) -> print_string (Lint.render ~subject diags)) results;
  List.fold_left (fun code (_, diags) -> max code (Lint.exit_code ~strict diags)) 0 results

(* --- analyze -------------------------------------------------------------------- *)

(* Static structural analysis over AIGs: per-circuit shape metrics, the
   reduction the structural pass would apply (with its SAT-discharged
   proof-obligation count), and the static diagnostics.  Exit codes: 0
   analyzed (all diagnostics clean, or [--strict] unset), 1 a diagnostic
   fired under [--strict], 2 parse/usage trouble. *)
let run_analyze files suite json strict no_reduce =
  let subjects =
    List.map (fun path -> (path, read_circuit path)) files
    @
    if not suite then []
    else
      List.map
        (fun e ->
          ( "suite:" ^ e.Circuits.Suite.name,
            fst (Aig.of_netlist (e.Circuits.Suite.build ())) ))
        Circuits.Suite.suite
  in
  if subjects = [] then begin
    prerr_endline "seqver analyze: expected FILE arguments or --suite";
    exit 2
  end;
  let reports =
    List.map (fun (name, aig) -> Analysis.report ~reduce:(not no_reduce) ~name aig) subjects
  in
  if json then
    Printf.printf "[%s]\n" (String.concat "," (List.map Analysis.to_json reports))
  else List.iter (fun r -> print_string (Analysis.render r)) reports;
  if
    strict
    && List.exists (fun r -> not (Analysis.Diag.clean r.Analysis.diag)) reports
  then 1
  else 0

(* --- stats ---------------------------------------------------------------------- *)

let run_stats path =
  let aig = read_circuit path in
  Format.printf "%a@." Aig.pp_stats aig;
  0

(* --- serve / submit ------------------------------------------------------------- *)

(* seqver serve: run the verification daemon in the foreground.  Exit 0
   on a graceful shutdown (SIGTERM/SIGINT or a shutdown request), 2 on
   setup trouble (socket in use, bad cache dir). *)
let run_serve socket tcp workers queue cache_dir cache_entries verbose =
  let cfg =
    {
      Serve.Daemon.socket_path = socket;
      tcp_port = tcp;
      workers;
      queue_capacity = queue;
      cache_dir;
      cache_capacity = cache_entries;
      verbose;
    }
  in
  try Serve.Daemon.run cfg with
  | Unix.Unix_error (e, _, ctx) ->
    Printf.eprintf "seqver serve: %s (%s)\n" (Unix.error_message e) ctx;
    2
  | Failure msg | Sys_error msg ->
    Printf.eprintf "seqver serve: %s\n" msg;
    2

let parse_hostport s =
  match String.rindex_opt s ':' with
  | Some i -> (
    let host = String.sub s 0 i and port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p -> (host, p)
    | None ->
      Printf.eprintf "seqver submit: bad --tcp %S (expected HOST:PORT)\n" s;
      exit 2)
  | None ->
    Printf.eprintf "seqver submit: bad --tcp %S (expected HOST:PORT)\n" s;
    exit 2

(* The client ships circuits inline as canonical AIGER text (parsed and
   preflight-linted locally first), so the daemon needs no access to the
   client's filesystem and the fingerprint is computed from exactly what
   the client verified. *)
let inline_circuit path = Serve.Protocol.Aag (Aig.Aiger.to_string (read_circuit path))

let print_outcome ~json ~quiet job (o : Serve.Protocol.outcome) =
  if json then
    print_endline
      (Serve.Json.to_string
         (Serve.Json.Obj
            [ ("job", Serve.Json.String job); ("outcome", Serve.Protocol.outcome_to_json o) ]))
  else if not quiet then begin
    (match o.verdict with
    | "equivalent" -> print_endline "EQUIVALENT"
    | "not_equivalent" -> Printf.printf "NOT EQUIVALENT (difference at frame %d)\n" o.frame
    | "cancelled" -> print_endline "CANCELLED"
    | _ -> (
      match o.reason with
      | Some why -> Printf.printf "UNKNOWN (%s)\n" why
      | None -> print_endline "UNKNOWN"));
    Printf.printf
      "  job:             %s\n\
      \  cached:          %b\n\
      \  runtime:         %.6f s\n\
      \  queue wait:      %.6f s\n\
      \  resumed iters:   %d\n\
      \  iterations:      %d\n\
      \  classes:         %d\n\
      \  SAT calls:       %d\n\
      \  equivalences:    %.1f%%\n"
      job o.cached o.runtime o.queue_wait o.resumed_iterations o.iterations o.classes
      o.sat_calls o.eq_pct;
    if o.spec_rounds > 0 then
      Printf.printf
        "  spec rounds:     %d\n  spec merges:     %d\n  refuted assumps: %d\n\
        \  by sim/BDD/SAT:  %d/%d/%d\n"
        o.spec_rounds o.spec_merges o.refuted_assumptions o.spec_by_sim o.spec_by_bdd
        o.spec_by_sat;
    (match o.trace with
    | [] -> ()
    | frames -> Printf.printf "  witness:         %s\n" (String.concat " " frames));
    match o.cert with Some p -> Printf.printf "  certificate:     %s\n" p | None -> ()
  end;
  Serve.Protocol.exit_code_of_outcome o

let print_server_stats ~json (s : Serve.Protocol.server_stats) =
  if json then
    print_endline (Serve.Protocol.response_to_line (Serve.Protocol.Stats_report s))
  else begin
    Printf.printf
      "uptime:          %.1f s\n\
       submitted:       %d (done %d, cached %d, cancelled %d)\n\
       queue:           %d queued, %d running, %d workers\n\
       cache:           %d entries, %d hits, %d misses, %d evictions\n\
       warm starts:     %d\n"
      s.uptime s.jobs_submitted s.jobs_done s.jobs_cached s.jobs_cancelled s.queue_len
      s.running s.workers s.cache_entries s.cache_hits s.cache_misses s.cache_evictions
      s.warm_starts;
    if s.jobs <> [] then begin
      print_endline "jobs:";
      List.iter
        (fun (j : Serve.Protocol.job_stat) ->
          Printf.printf "  %-8s %-10s sched_wait=%.6fs\n" j.js_job j.js_state j.js_sched_wait)
        s.jobs
    end
  end;
  0

(* seqver submit: scriptable client for a running daemon.  One of:
   SPEC IMPL (submit and wait), --status JOB, --result JOB [--wait],
   --cancel JOB, --stats, --shutdown.  Exit codes follow verify (0
   equivalent, 1 not equivalent, 3 unknown/cancelled, 2 protocol or
   usage trouble). *)
let run_submit spec impl socket tcp meth engine induction seed analysis no_incremental
    speculate deadline json quiet progress cancel status result wait stats shutdown =
  let tcp = Option.map parse_hostport tcp in
  let with_client k =
    match Serve.Client.connect ?tcp ~socket () with
    | exception Serve.Client.Error msg ->
      Printf.eprintf "seqver submit: %s\n" msg;
      2
    | client ->
      Fun.protect
        ~finally:(fun () -> Serve.Client.close client)
        (fun () ->
          try k client
          with Serve.Client.Error msg ->
            Printf.eprintf "seqver submit: %s\n" msg;
            exit 2)
  in
  match (spec, impl, cancel, status, result, stats, shutdown) with
  | Some spec_path, Some impl_path, None, None, None, false, false ->
    (* parse and lint locally before touching the daemon *)
    let spec = inline_circuit spec_path and impl = inline_circuit impl_path in
    with_client (fun client ->
        let opts =
          {
            Serve.Protocol.meth;
            engine;
            induction;
            seed;
            analysis;
            incremental = not no_incremental;
            speculate;
            deadline;
          }
        in
        let on_progress ~round ~iteration ~classes ~engine =
          if progress && not quiet then
            Printf.printf "progress: round=%d iteration=%d classes=%d engine=%s\n%!" round
              iteration classes engine
        in
        let job, outcome = Serve.Client.submit_and_wait ~on_progress client ~spec ~impl ~opts () in
        print_outcome ~json ~quiet job outcome)
  | None, None, Some job, None, None, false, false ->
    with_client (fun client ->
        match Serve.Client.request client (Serve.Protocol.Cancel job) with
        | Serve.Protocol.Cancelled { job; state } ->
          if not quiet then Printf.printf "cancel %s: %s\n" job state;
          0
        | Serve.Protocol.Error_resp msg ->
          Printf.eprintf "seqver submit: %s\n" msg;
          2
        | _ ->
          prerr_endline "seqver submit: unexpected response";
          2)
  | None, None, None, Some job, None, false, false ->
    with_client (fun client ->
        match Serve.Client.request client (Serve.Protocol.Status job) with
        | Serve.Protocol.Job_status { job; state; queue_pos } ->
          if queue_pos >= 0 then Printf.printf "%s: %s (queue position %d)\n" job state queue_pos
          else Printf.printf "%s: %s\n" job state;
          0
        | Serve.Protocol.Error_resp msg ->
          Printf.eprintf "seqver submit: %s\n" msg;
          2
        | _ ->
          prerr_endline "seqver submit: unexpected response";
          2)
  | None, None, None, None, Some job, false, false ->
    with_client (fun client ->
        match Serve.Client.request client (Serve.Protocol.Result { job; wait }) with
        | Serve.Protocol.Job_result { job; outcome } -> print_outcome ~json ~quiet job outcome
        | Serve.Protocol.Job_status { job; state; _ } ->
          if not quiet then Printf.printf "%s: %s (no result yet; use --wait)\n" job state;
          3
        | Serve.Protocol.Error_resp msg ->
          Printf.eprintf "seqver submit: %s\n" msg;
          2
        | _ ->
          prerr_endline "seqver submit: unexpected response";
          2)
  | None, None, None, None, None, true, false ->
    with_client (fun client ->
        match Serve.Client.request client Serve.Protocol.Stats with
        | Serve.Protocol.Stats_report s -> print_server_stats ~json s
        | Serve.Protocol.Error_resp msg ->
          Printf.eprintf "seqver submit: %s\n" msg;
          2
        | _ ->
          prerr_endline "seqver submit: unexpected response";
          2)
  | None, None, None, None, None, false, true ->
    with_client (fun client ->
        match Serve.Client.request client Serve.Protocol.Shutdown with
        | Serve.Protocol.Bye ->
          if not quiet then print_endline "daemon shutting down";
          0
        | Serve.Protocol.Error_resp msg ->
          Printf.eprintf "seqver submit: %s\n" msg;
          2
        | _ ->
          prerr_endline "seqver submit: unexpected response";
          2)
  | _ ->
    prerr_endline
      "seqver submit: expected SPEC IMPL, or exactly one of --cancel/--status/--result \
       JOB, --stats, --shutdown";
    2

(* --- cmdliner wiring ------------------------------------------------------------- *)

open Cmdliner

let verify_cmd =
  let spec = Arg.(value & pos 0 (some file) None & info [] ~docv:"SPEC") in
  let impl = Arg.(value & pos 1 (some file) None & info [] ~docv:"IMPL") in
  let meth =
    let parse = function
      | "scorr" -> Ok M_scorr
      | "regcorr" -> Ok M_regcorr
      | "traversal" -> Ok M_traversal
      | "auto" -> Ok M_auto
      | s -> Error (`Msg ("unknown method " ^ s))
    in
    let print ppf m =
      Format.pp_print_string ppf
        (match m with
        | M_scorr -> "scorr"
        | M_regcorr -> "regcorr"
        | M_traversal -> "traversal"
        | M_auto -> "auto")
    in
    Arg.(value & opt (conv (parse, print)) M_scorr
         & info [ "m"; "method" ] ~doc:"Method: scorr, regcorr, traversal or auto (portfolio).")
  in
  let engine =
    Arg.(value & opt string "bdd" & info [ "e"; "engine" ] ~doc:"Refinement engine: bdd or sat.")
  in
  let no_sim_seed = Arg.(value & flag & info [ "no-sim-seed" ] ~doc:"Disable simulation seeding.") in
  let no_fundep = Arg.(value & flag & info [ "no-fundep" ] ~doc:"Disable functional dependencies.") in
  let no_retime = Arg.(value & flag & info [ "no-retime" ] ~doc:"Disable retiming extension.") in
  let no_incremental =
    Arg.(value & flag
         & info [ "no-incremental" ]
             ~doc:"Solve every class obligation on a throwaway SAT solver instead of the \
                   persistent per-lane incremental solvers (baseline for A/B comparison; \
                   verdicts are identical, only the work differs).")
  in
  let speculate =
    Arg.(value & flag
         & info [ "speculate" ]
             ~doc:"Discharge the one-frame induction step on the speculatively reduced \
                   product: every candidate class is merged onto its representative, \
                   each merge yields one assumption obligation, and obligations are \
                   routed per class to simulation, BDD or incremental SAT by an online \
                   cost model.  Refuted assumptions refine the partition and rebuild \
                   the reduction.  Verdicts and the final partition are identical to \
                   the plain sweep; only the work differs.  (Also \\$SEQVER_SPECULATE.)")
  in
  let no_speculate =
    Arg.(value & flag
         & info [ "no-speculate" ]
             ~doc:"Force the plain per-class sweep even when \\$SEQVER_SPECULATE or \
                   $(b,--speculate) would enable speculative reduction.")
  in
  let dontcare =
    Arg.(value & flag & info [ "dontcare" ] ~doc:"Strengthen Q with approximate reachability.")
  in
  let analysis =
    Arg.(value & flag
         & info [ "analysis" ]
             ~doc:"Enable the static-analysis layer: the input-support candidate \
                   prefilter inside the fixed point (and, with -m auto, reduction and \
                   engine steering — the default there).")
  in
  let node_limit =
    Arg.(value & opt int 2_000_000 & info [ "node-limit" ] ~doc:"BDD node budget.")
  in
  let unroll =
    Arg.(value & opt int 1
         & info [ "k"; "unroll" ] ~doc:"SAT-engine induction depth (1 = the paper).")
  in
  let seconds =
    Arg.(value & opt float 60.0 & info [ "time-limit" ] ~doc:"Traversal time budget (s).")
  in
  let deadline =
    Arg.(value & opt float 0.0
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"Wall-clock budget for the run (0 = none).  On expiry the fixed point \
                   aborts within one class solve, the verdict is UNKNOWN (exit 3), and \
                   the partial partition is checkpointed when $(b,--checkpoint) is set.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Write the partial partition here when a budget or deadline aborts the \
                   fixed point (resumable with $(b,--resume)).")
  in
  let checkpoint_every =
    Arg.(value & opt int 0
         & info [ "checkpoint-every" ] ~docv:"N"
             ~doc:"Also checkpoint every N refinement iterations (0 = aborts only).")
  in
  let resume =
    Arg.(value & opt (some file) None
         & info [ "resume" ] ~docv:"FILE"
             ~doc:"Resume the fixed point from a checkpoint.  The checkpoint must match \
                   the circuits and options (fingerprints, candidate set, seed, induction \
                   depth); an incompatible one is rejected with exit 2.")
  in
  let show_classes =
    Arg.(value & flag & info [ "show-classes" ] ~doc:"Print the correspondence relation.")
  in
  let emit_cert =
    Arg.(value & opt (some string) None
         & info [ "emit-cert" ] ~docv:"FILE"
             ~doc:"Write an independently checkable equivalence certificate (scorr only).")
  in
  let proof =
    Arg.(value & flag
         & info [ "proof" ]
             ~doc:"With $(b,--emit-cert): embed a DRAT trace of every checker obligation \
                   in the certificate, so $(b,check-cert --proof) can replay it without \
                   any SAT solving.")
  in
  let emit_witness =
    Arg.(value & opt (some string) None
         & info [ "emit-witness" ] ~docv:"FILE"
             ~doc:"Write a replayable counterexample witness on refutation (scorr only).")
  in
  let jobs =
    Arg.(value & opt int 0
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker domains.  With SPEC IMPL: parallel class solving inside the SAT \
                   engine (0 = \\$SEQVER_JOBS or 1).  With $(b,--suite): whole \
                   verification jobs in parallel (0 = all cores).")
  in
  let suite =
    Arg.(value & flag
         & info [ "suite" ]
             ~doc:"Verify every built-in suite circuit against its retimed implementation \
                   instead of a SPEC/IMPL pair.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only set the exit code.") in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Check sequential equivalence of two circuits \
             (exit 0 equivalent, 1 not equivalent, 3 unknown, 2 usage/parse error)")
    Term.(
      const run_verify $ spec $ impl $ meth $ engine $ no_sim_seed $ no_fundep $ no_retime
      $ no_incremental $ speculate $ no_speculate $ dontcare $ analysis $ node_limit
      $ unroll $ seconds $ deadline $ checkpoint $ checkpoint_every $ resume
      $ show_classes $ emit_cert $ proof $ emit_witness $ jobs $ suite $ quiet)

let gen_cmd =
  let circuit_name = Arg.(value & pos 0 string "" & info [] ~docv:"NAME") in
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.") in
  let fmt =
    Arg.(value & opt string "blif" & info [ "format" ] ~doc:"Output format: blif, bench or verilog.")
  in
  let list_only = Arg.(value & flag & info [ "list" ] ~doc:"List available circuits.") in
  Cmd.v
    (Cmd.info "gen" ~doc:"Emit a benchmark circuit as BLIF, .bench or structural Verilog")
    Term.(const run_gen $ circuit_name $ out $ fmt $ list_only)

let opt_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT") in
  let output = Arg.(required & pos 1 (some string) None & info [] ~docv:"OUTPUT.aag") in
  let recipe =
    Arg.(value & opt string "retime+opt" & info [ "recipe" ] ~doc:"retime or retime+opt.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "opt" ~doc:"Produce a retimed/optimized implementation")
    Term.(const run_opt $ input $ output $ recipe $ seed)

let sim_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT") in
  let frames = Arg.(value & opt int 8 & info [ "frames" ] ~doc:"Number of frames.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "sim" ~doc:"Randomly simulate a circuit")
    Term.(const run_sim $ input $ frames $ seed)

let bmc_cmd =
  let spec = Arg.(required & pos 0 (some file) None & info [] ~docv:"SPEC") in
  let impl = Arg.(required & pos 1 (some file) None & info [] ~docv:"IMPL") in
  let depth = Arg.(value & opt int 20 & info [ "depth" ] ~doc:"Unrolling depth.") in
  let emit_witness =
    Arg.(value & opt (some string) None
         & info [ "emit-witness" ] ~docv:"FILE"
             ~doc:"Write the counterexample as a replayable witness.")
  in
  Cmd.v
    (Cmd.info "bmc" ~doc:"Bounded refutation with a concrete trace")
    Term.(const run_bmc $ spec $ impl $ depth $ emit_witness)

let check_cert_cmd =
  let cert = Arg.(value & pos 0 (some file) None & info [] ~docv:"CERT") in
  let spec = Arg.(value & pos 1 (some file) None & info [] ~docv:"SPEC") in
  let impl = Arg.(value & pos 2 (some file) None & info [] ~docv:"IMPL") in
  let suite =
    Arg.(value & flag
         & info [ "suite" ]
             ~doc:"Emit and re-validate a certificate for every built-in \
                   (spec, retimed implementation) pair instead.")
  in
  let proof =
    Arg.(value & flag
         & info [ "proof" ]
             ~doc:"Validate by replaying the certificate's embedded DRAT trace through an \
                   independent reverse-unit-propagation checker — no SAT solving at all.  \
                   A certificate without a trace is rejected.  With $(b,--suite), \
                   certificates are emitted with traces and replay-checked.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only set the exit code.") in
  Cmd.v
    (Cmd.info "check-cert"
       ~doc:"Independently re-validate an equivalence certificate \
             (exit 0 valid, 1 rejected, 2 parse/usage error)")
    Term.(const run_check_cert $ cert $ spec $ impl $ suite $ proof $ quiet)

let replay_cmd =
  let witness = Arg.(required & pos 0 (some file) None & info [] ~docv:"WITNESS") in
  let spec = Arg.(required & pos 1 (some file) None & info [] ~docv:"SPEC") in
  let impl = Arg.(required & pos 2 (some file) None & info [] ~docv:"IMPL") in
  let shrink =
    Arg.(value & flag & info [ "shrink" ] ~doc:"Greedily minimize the witness first.")
  in
  let vcd =
    Arg.(value & opt (some string) None
         & info [ "vcd" ] ~docv:"FILE" ~doc:"Also write a VCD waveform.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only set the exit code.") in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay a counterexample witness against two circuits \
             (exit 0 mismatch confirmed, 1 no failure, 2 malformed)")
    Term.(const run_replay $ witness $ spec $ impl $ shrink $ vcd $ quiet)

let stats_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT") in
  Cmd.v (Cmd.info "stats" ~doc:"Print circuit statistics") Term.(const run_stats $ input)

let checkpoint_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"CHECKPOINT") in
  let spec = Arg.(value & pos 1 (some file) None & info [] ~docv:"SPEC") in
  let impl = Arg.(value & pos 2 (some file) None & info [] ~docv:"IMPL") in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:"Inspect a fixed-point checkpoint; with SPEC IMPL also probe whether it can \
             seed a run over those circuits (exit 0 well-formed/compatible, 2 \
             malformed/incompatible)")
    Term.(const run_checkpoint $ input $ spec $ impl)

let lint_cmd =
  let files = Arg.(value & pos_all file [] & info [] ~docv:"FILE") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.") in
  let strict =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"Exit 2 when any error-level finding fired, 1 on warnings, 0 otherwise.")
  in
  let suite =
    Arg.(value & flag & info [ "suite" ] ~doc:"Also lint every built-in suite circuit.")
  in
  let analysis =
    Arg.(value & flag
         & info [ "analysis" ]
             ~doc:"Also run the analysis-backed rules on AIG subjects \
                   (unobservable-latch, reducible-logic).")
  in
  Cmd.v
    (Cmd.info "lint" ~doc:"Run the static-analysis rules over circuits")
    Term.(const run_lint $ files $ suite $ json $ strict $ analysis)

let analyze_cmd =
  let files = Arg.(value & pos_all file [] & info [] ~docv:"FILE") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.") in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Exit 1 when any static diagnostic fired.")
  in
  let suite =
    Arg.(value & flag & info [ "suite" ] ~doc:"Also analyze every built-in suite circuit.")
  in
  let no_reduce =
    Arg.(value & flag
         & info [ "no-reduce" ]
             ~doc:"Skip the structural-reduction pass (metrics and diagnostics only).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Report structural shape metrics, reduction opportunities and static \
             diagnostics (exit 0 clean, 1 findings under $(b,--strict), 2 parse error)")
    Term.(const run_analyze $ files $ suite $ json $ strict $ no_reduce)

let serve_cmd =
  let socket =
    Arg.(value & opt string "seqver.sock"
         & info [ "socket" ] ~docv:"PATH" ~doc:"Unix socket to listen on.")
  in
  let tcp =
    Arg.(value & opt (some int) None
         & info [ "tcp" ] ~docv:"PORT" ~doc:"Also listen on 127.0.0.1:PORT.")
  in
  let workers =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc:"Verification worker domains.")
  in
  let queue =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N" ~doc:"Job queue capacity (submissions beyond it are refused).")
  in
  let cache_dir =
    Arg.(value & opt string ".seqver-cache"
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"On-disk result store: verdicts, certificates and warm-start checkpoints, \
                   keyed by circuit fingerprints and option set.")
  in
  let cache_entries =
    Arg.(value & opt int 128
         & info [ "cache-entries" ] ~docv:"N" ~doc:"In-memory verdict LRU capacity.")
  in
  let verbose = Arg.(value & flag & info [ "verbose" ] ~doc:"Log accepted jobs to stderr.") in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the verification daemon: a Unix-socket (and optional TCP) service with a \
             job queue, worker domains and a fingerprint-keyed result cache \
             (exit 0 on graceful shutdown, 2 on setup trouble)")
    Term.(const run_serve $ socket $ tcp $ workers $ queue $ cache_dir $ cache_entries $ verbose)

let submit_cmd =
  let spec = Arg.(value & pos 0 (some file) None & info [] ~docv:"SPEC") in
  let impl = Arg.(value & pos 1 (some file) None & info [] ~docv:"IMPL") in
  let socket =
    Arg.(value & opt string "seqver.sock"
         & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon Unix socket.")
  in
  let tcp =
    Arg.(value & opt (some string) None
         & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Reach the daemon over TCP instead.")
  in
  let meth =
    Arg.(value & opt string "scorr"
         & info [ "m"; "method" ] ~doc:"Method: scorr or auto (portfolio).")
  in
  let engine =
    Arg.(value & opt string "bdd" & info [ "e"; "engine" ] ~doc:"Refinement engine: bdd or sat.")
  in
  let induction =
    Arg.(value & opt int 1
         & info [ "k"; "unroll" ] ~doc:"SAT-engine induction depth (1 = the paper).")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let analysis =
    Arg.(value & flag & info [ "analysis" ] ~doc:"Enable the static-analysis layer.")
  in
  let no_incremental =
    Arg.(value & flag
         & info [ "no-incremental" ]
             ~doc:"Run the job with throwaway per-class SAT solvers instead of the \
                   persistent incremental ones (cached separately).")
  in
  let speculate =
    Arg.(value & flag
         & info [ "speculate" ]
             ~doc:"Run the job with speculative reduction and the per-class engine \
                   dispatcher (cached separately).")
  in
  let deadline =
    Arg.(value & opt float 0.0
         & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Per-job wall-clock budget (0 = none).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Print the result as one JSON line.") in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only set the exit code.") in
  let progress =
    Arg.(value & flag & info [ "progress" ] ~doc:"Print streamed fixed-point progress events.")
  in
  let cancel =
    Arg.(value & opt (some string) None & info [ "cancel" ] ~docv:"JOB" ~doc:"Cancel a job.")
  in
  let status =
    Arg.(value & opt (some string) None & info [ "status" ] ~docv:"JOB" ~doc:"Query a job's state.")
  in
  let result =
    Arg.(value & opt (some string) None
         & info [ "result" ] ~docv:"JOB" ~doc:"Fetch a job's result.")
  in
  let wait =
    Arg.(value & flag
         & info [ "wait" ] ~doc:"With $(b,--result): block until the job finishes.")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print daemon statistics.") in
  let shutdown = Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the daemon to shut down.") in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a verification job to a running daemon, or manage one \
             (exit 0 equivalent, 1 not equivalent, 3 unknown/cancelled, 2 protocol error)")
    Term.(
      const run_submit $ spec $ impl $ socket $ tcp $ meth $ engine $ induction $ seed
      $ analysis $ no_incremental $ speculate $ deadline $ json $ quiet $ progress
      $ cancel $ status $ result $ wait $ stats $ shutdown)

let () =
  let doc = "sequential equivalence checking without state space traversal" in
  let info = Cmd.info "seqver" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ verify_cmd; bmc_cmd; check_cert_cmd; replay_cmd; checkpoint_cmd; serve_cmd;
            submit_cmd; lint_cmd; analyze_cmd; gen_cmd; opt_cmd; sim_cmd; stats_cmd ]))
