(* Approximate (over-approximated) reachability after Cho et al. [4]:
   partition the latches into small blocks, traverse each block's
   sub-machine with every other state variable treated as a free input,
   and take the conjunction of the per-block reachable sets.

   The result always contains the exact reachable set, so it is safe to
   use as a care set — this is the "sequential don't cares" extension of
   the paper's Section 3 (conjoining an upper bound of the reachable
   state space with the correspondence condition). *)

(* Greedy partition of latch indices into blocks of at most [k], grouping
   latches whose next-state supports overlap. *)
let partition_latches trans ~k =
  let n = Array.length trans.Trans.cs_vars in
  let supports =
    Array.init n (fun i ->
        List.filter
          (fun v -> Array.exists (fun cs -> cs = v) trans.Trans.cs_vars)
          (Bdd.support trans.Trans.next_fns.(i)))
  in
  let latch_of_var = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace latch_of_var v i) trans.Trans.cs_vars;
  let assigned = Array.make n false in
  let blocks = ref [] in
  for i = 0 to n - 1 do
    if not assigned.(i) then begin
      let block = ref [ i ] in
      assigned.(i) <- true;
      (* pull in related latches while room remains *)
      let related j =
        List.exists
          (fun v ->
            match Hashtbl.find_opt latch_of_var v with
            | Some l -> List.mem l !block
            | None -> false)
          supports.(j)
        || List.exists
             (fun v ->
               match Hashtbl.find_opt latch_of_var v with
               | Some l -> l = j
               | None -> false)
             (List.concat_map (fun l -> supports.(l)) !block)
      in
      let continue = ref true in
      while !continue && List.length !block < k do
        match
          List.find_opt
            (fun j -> (not assigned.(j)) && related j)
            (List.init n (fun j -> j))
        with
        | Some j ->
          assigned.(j) <- true;
          block := j :: !block
        | None -> continue := false
      done;
      blocks := List.sort compare !block :: !blocks
    end
  done;
  List.rev !blocks

(* Reachable over-approximation of one block: a fixpoint where the image
   existentially quantifies all inputs and all state variables outside the
   block (they are completely free).  Sound and monotone. *)
let block_reachable ?(max_iterations = 10_000) trans block =
  let m = trans.Trans.m in
  let in_block = Hashtbl.create 8 in
  List.iter (fun i -> Hashtbl.replace in_block i ()) block;
  let outside_cs =
    List.concat
      (List.init (Array.length trans.Trans.cs_vars) (fun i ->
           if Hashtbl.mem in_block i then [] else [ trans.Trans.cs_vars.(i) ]))
  in
  let quantified = Array.to_list trans.Trans.pi_vars @ outside_cs in
  let init =
    Bdd.cube m
      (List.map (fun i -> (trans.Trans.cs_vars.(i), Aig.latch_init trans.Trans.aig i)) block)
  in
  (* relation over (block cs) -> (block ns) with everything else free *)
  let step from =
    let conj =
      List.fold_left
        (fun acc i ->
          Bdd.mk_and m acc
            (Bdd.mk_iff m (Bdd.var m trans.Trans.ns_vars.(i)) trans.Trans.next_fns.(i)))
        Bdd.one block
    in
    let img = Bdd.and_exists m (Array.to_list trans.Trans.cs_vars) from conj in
    let img = Bdd.exists m (Array.to_list trans.Trans.pi_vars) img in
    let perm = List.map (fun i -> (trans.Trans.ns_vars.(i), trans.Trans.cs_vars.(i))) block in
    Bdd.rename m img perm
  in
  ignore quantified;
  let rec loop reached k =
    if k >= max_iterations then reached
    else begin
      let img = step reached in
      let next = Bdd.mk_or m reached img in
      if Bdd.equal next reached then reached else loop next (k + 1)
    end
  in
  loop init 0

(* The conjunction of all block approximations: an upper bound on the
   reachable state space, over the cs variables. *)
let upper_bound ?(block_size = 8) trans =
  let blocks = partition_latches trans ~k:block_size in
  List.fold_left
    (fun acc block -> Bdd.mk_and trans.Trans.m acc (block_reachable trans block))
    Bdd.one blocks
