(* Breadth-first symbolic state-space traversal of an AIG — the
   conventional sequential equivalence checking algorithm (Table 1's
   baseline), optionally exploiting functional dependencies [6] when
   computing images of the frontier. *)

type budget = {
  max_iterations : int;
  max_live_nodes : int;
  max_seconds : float;
}

let default_budget =
  { max_iterations = max_int; max_live_nodes = 2_000_000; max_seconds = 60.0 }

type stats = {
  iterations : int; (* traversal depth reached *)
  peak_nodes : int; (* unique-table high-water mark *)
  dependencies_found : int;
  seconds : float;
}

type outcome =
  | Fixpoint of Bdd.t (* the exact reachable set (over cs vars) *)
  | Property_violation of int (* depth at which the property failed *)
  | Budget_exceeded of string

type result = { outcome : outcome; stats : stats }

(* Traverse from the initial state.  [property] (over pi, cs), when given,
   is required to hold for every reached state and input; its violation
   stops the traversal.  With [use_fundep], each frontier is compressed by
   functional-dependency detection before the image is taken. *)
let run ?(budget = default_budget) ?(use_fundep = false) ?property trans =
  let m = trans.Trans.m in
  Bdd.set_node_limit m budget.max_live_nodes;
  let start = Sys.time () in
  let peak = ref (Bdd.live_nodes m) in
  let deps_found = ref 0 in
  let note_peak () =
    let live = Bdd.live_nodes m in
    peak := max !peak live;
    (* keep the operation caches proportional to the unique table *)
    if Bdd.memo_entries m > (4 * live) + 1_000_000 then Bdd.clear_caches m
  in
  let finish outcome iterations =
    {
      outcome;
      stats =
        {
          iterations;
          peak_nodes = !peak;
          dependencies_found = !deps_found;
          seconds = Sys.time () -. start;
        };
    }
  in
  let bad =
    match property with Some p -> Bdd.mk_not m p | None -> Bdd.zero
  in
  let cs_list = Array.to_list trans.Trans.cs_vars in
  let deepest = ref 0 in
  let rec loop reached frontier depth =
    deepest := max !deepest depth;
    note_peak ();
    if Trans.has_bad_state trans frontier bad then finish (Property_violation depth) depth
    else if Sys.time () -. start > budget.max_seconds then
      finish (Budget_exceeded "time") depth
    else if Bdd.live_nodes m > budget.max_live_nodes then
      finish (Budget_exceeded "nodes") depth
    else if depth >= budget.max_iterations then finish (Budget_exceeded "iterations") depth
    else begin
      let img =
        if use_fundep then begin
          let deps, compressed = Fundep.detect m frontier ~candidates:cs_list in
          deps_found := !deps_found + List.length deps;
          if deps = [] then Trans.image trans frontier
          else begin
            let subst = Fundep.substitution m ~nvars:(Bdd.nvars m) deps in
            let next_fns =
              Array.map (fun f -> Bdd.vector_compose m f subst) trans.Trans.next_fns
            in
            Trans.image_with trans ~next_fns compressed
          end
        end
        else Trans.image trans frontier
      in
      note_peak ();
      let fresh = Bdd.mk_and m img (Bdd.mk_not m reached) in
      if Bdd.is_false fresh then finish (Fixpoint reached) depth
      else loop (Bdd.mk_or m reached img) fresh (depth + 1)
    end
  in
  let result =
    try loop trans.Trans.init trans.Trans.init 0
    with Bdd.Limit_exceeded -> finish (Budget_exceeded "nodes") !deepest
  in
  Bdd.set_node_limit m max_int;
  result

(* Sequential equivalence via traversal of a product machine: the property
   is "all output pairs agree". *)
let check_equivalence ?budget ?use_fundep trans =
  let property = Trans.property_all_outputs_one trans in
  run ?budget ?use_fundep ~property trans

let count_states trans reached =
  Bdd.sat_count trans.Trans.m ~nvars:(Bdd.nvars trans.Trans.m) reached
  /. (2.0 ** float_of_int (Bdd.nvars trans.Trans.m - Array.length trans.Trans.cs_vars))
