(* Functional dependencies between state variables, after van Eijk & Jess
   [6]: inside a state set R, variable v is functionally dependent on the
   remaining variables iff R|v=0 /\ R|v=1 is empty; the dependency function
   is g = R|v=1 (exact on the care set R).  Substituting v := g compresses
   both the reached set and the next-state functions — this is what lets
   plain symbolic traversal cope with product machines, where the
   implementation's state is largely a function of the specification's. *)

type dependency = { var : int; fn : Bdd.t }

(* Detect variables of [candidates] functionally dependent in [r].
   Dependencies are extracted greedily and applied immediately, so later
   dependency functions never mention earlier dependent variables.
   Returns the dependencies and the compressed set (dependent variables
   quantified away). *)
let detect m r ~candidates =
  let deps = ref [] in
  let r = ref r in
  List.iter
    (fun v ->
      let r0 = Bdd.cofactor m !r v false in
      let r1 = Bdd.cofactor m !r v true in
      if Bdd.is_false (Bdd.mk_and m r0 r1) then begin
        deps := { var = v; fn = r1 } :: !deps;
        r := Bdd.mk_or m r0 r1
      end)
    candidates;
  (* a function extracted early may still mention variables made dependent
     later; back-substitute (last extracted first, whose function is
     already clean) so every dependency function is free of every
     dependent variable *)
  let nvars = Bdd.nvars m in
  let subst = Array.make nvars None in
  let cleaned =
    List.fold_left
      (fun acc d ->
        let fn = Bdd.vector_compose m d.fn subst in
        subst.(d.var) <- Some fn;
        { d with fn } :: acc)
      [] !deps
  in
  (cleaned, !r)

(* Substitution array for {!Bdd.vector_compose} from a dependency list. *)
let substitution m ~nvars deps =
  ignore m;
  let subst = Array.make nvars None in
  List.iter (fun { var; fn } -> subst.(var) <- Some fn) deps;
  subst

(* Reconstruct the full set from a compressed set and its dependencies. *)
let reconstruct m compressed deps =
  List.fold_left
    (fun acc { var; fn } -> Bdd.mk_and m acc (Bdd.mk_iff m (Bdd.var m var) fn))
    compressed deps
