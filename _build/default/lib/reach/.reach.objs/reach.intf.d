lib/reach/reach.mli: Aig Bdd
