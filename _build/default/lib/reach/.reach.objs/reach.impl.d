lib/reach/reach.ml: Approx Bmc Fundep Induction Trans Traversal
