lib/reach/fundep.ml: Array Bdd List
