lib/reach/traversal.ml: Array Bdd Fundep List Sys Trans
