lib/reach/trans.ml: Aig Array Bdd Engines Fun Hashtbl List
