lib/reach/induction.ml: Aig Array Bmc List Sat
