lib/reach/approx.ml: Aig Array Bdd Hashtbl List Trans
