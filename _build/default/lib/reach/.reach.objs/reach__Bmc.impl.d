lib/reach/bmc.ml: Aig Array Int64 List Sat
