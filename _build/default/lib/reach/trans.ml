(* Symbolic transition system of an AIG: BDD next-state functions, initial
   state cube, output functions, and a partitioned-relation image operator
   with early quantification.  The substrate of the conventional
   state-space-traversal approach the paper compares against. *)

type t = {
  m : Bdd.manager;
  aig : Aig.t;
  n_pis : int;
  n_latches : int;
  pi_vars : int array; (* BDD variable indices of the inputs *)
  cs_vars : int array; (* current-state variables *)
  ns_vars : int array; (* next-state variables *)
  next_fns : Bdd.t array; (* over (pi, cs) *)
  init : Bdd.t; (* cube over cs *)
  outputs : (string * Bdd.t) list; (* over (pi, cs) *)
  bdd_of_lit : int -> Bdd.t; (* any AIG literal over (pi, cs) *)
}

(* Variable layout: inputs first, then current/next state interleaved
   (cs_i and ns_i adjacent) — the classical order for image computation.
   [latch_order], when given, lists latch indices in the order their
   variable pairs should be placed (essential for product machines, whose
   corresponding state bits must sit together).  [node_limit] installs a
   hard budget on the manager; construction itself can raise
   {!Bdd.Limit_exceeded}. *)
let make ?node_limit ?latch_order aig =
  let m = Bdd.create () in
  (match node_limit with Some l -> Bdd.set_node_limit m l | None -> ());
  let n_pis = Aig.num_pis aig in
  let n_latches = Aig.num_latches aig in
  let position =
    let pos = Array.init n_latches Fun.id in
    (match latch_order with
    | Some order -> Array.iteri (fun p i -> pos.(i) <- p) order
    | None -> ());
    pos
  in
  let pi_vars = Array.init n_pis (fun i -> i) in
  let cs_vars = Array.init n_latches (fun i -> n_pis + (2 * position.(i))) in
  let ns_vars = Array.init n_latches (fun i -> n_pis + (2 * position.(i)) + 1) in
  let bdd_of_lit =
    Engines.Aig_bdd.build m aig
      ~pi_var:(fun i -> Bdd.var m pi_vars.(i))
      ~latch_var:(fun i -> Bdd.var m cs_vars.(i))
  in
  let next_fns = Array.init n_latches (fun i -> bdd_of_lit (Aig.latch_next aig i)) in
  let init =
    Bdd.cube m (List.init n_latches (fun i -> (cs_vars.(i), Aig.latch_init aig i)))
  in
  let outputs = List.map (fun (name, l) -> (name, bdd_of_lit l)) (Aig.pos aig) in
  { m; aig; n_pis; n_latches; pi_vars; cs_vars; ns_vars; next_fns; init; outputs;
    bdd_of_lit }

(* Image of a state set [from] (over cs): exists pi, cs.
   from /\ /\_i (ns_i <-> delta_i), renamed back to cs variables.
   The conjunction is processed latch by latch; a variable is quantified
   as soon as no remaining partition mentions it (early quantification). *)
let image_with t ~next_fns from =
  let m = t.m in
  let n = t.n_latches in
  if n = 0 then if Bdd.is_false from then Bdd.zero else Bdd.one
  else begin
    (* last partition index in which each (pi|cs) variable occurs *)
    let last_use = Hashtbl.create 64 in
    Array.iteri (fun v _ -> Hashtbl.replace last_use t.pi_vars.(v) (-1)) t.pi_vars;
    Array.iteri (fun v _ -> Hashtbl.replace last_use t.cs_vars.(v) (-1)) t.cs_vars;
    for i = 0 to n - 1 do
      List.iter
        (fun v -> if Hashtbl.mem last_use v then Hashtbl.replace last_use v i)
        (Bdd.support next_fns.(i))
    done;
    let due = Array.make n [] in
    let immediately = ref [] in
    Hashtbl.iter
      (fun v i -> if i < 0 then immediately := v :: !immediately else due.(i) <- v :: due.(i))
      last_use;
    let acc = ref (Bdd.exists m !immediately from) in
    for i = 0 to n - 1 do
      let part = Bdd.mk_iff m (Bdd.var m t.ns_vars.(i)) next_fns.(i) in
      acc := Bdd.and_exists m due.(i) !acc part
    done;
    (* rename ns -> cs *)
    let perm = Array.to_list (Array.mapi (fun i ns -> (ns, t.cs_vars.(i))) t.ns_vars) in
    Bdd.rename m !acc perm
  end

let image t from = image_with t ~next_fns:t.next_fns from

(* States (over cs) that can produce [bad] (over pi, cs) for some input. *)
let has_bad_state t reached bad =
  not (Bdd.is_false (Bdd.mk_and t.m reached bad))

(* The "all corresponding outputs agree" condition is supplied by product
   machines; for plain model checking any property over (pi, cs) works. *)
let property_all_outputs_one t =
  List.fold_left (fun acc (_, f) -> Bdd.mk_and t.m acc f) Bdd.one t.outputs
