(* Public API of the symbolic-traversal library; see reach.mli. *)

module Trans = Trans
module Traversal = Traversal
module Fundep = Fundep
module Approx = Approx
module Bmc = Bmc
module Induction = Induction
