(* Plain k-induction on the outputs: prove every PO stays 1 by (a) BMC up
   to depth k-1 (base case) and (b) assuming the POs hold for k frames
   from an ARBITRARY state and showing them at frame k (step case).

   This is the "monolithic" modern baseline: it reasons about the output
   property alone, with no internal signal correspondences.  On product
   machines it usually needs a large k (or fails outright), because the
   output equality is rarely inductive by itself — exactly the gap the
   paper's signal-level relation fills.  No uniqueness (simple-path)
   constraints are added, so the step case is sound but incomplete. *)

type outcome =
  | Proved of int (* the k at which induction closed *)
  | Refuted of Bmc.counterexample
  | Unknown of string

let check ?(max_k = 8) ?(max_sat_calls = max_int) aig =
  let n_latches = Aig.num_latches aig in
  let pos = Aig.pos aig in
  (* step case at a given k: frames 0..k from a free initial state *)
  let step_holds k calls =
    let solver = Sat.create () in
    let latch_vars = ref (Array.init n_latches (fun _ -> Sat.new_var solver)) in
    let last_frame = ref (fun _ -> 0) in
    for frame = 0 to k do
      let x_vars = Array.init (Aig.num_pis aig) (fun _ -> Sat.new_var solver) in
      let lit_of =
        Aig.Cnf.encode solver aig
          ~pi_var:(fun i -> x_vars.(i))
          ~latch_var:(fun i -> !latch_vars.(i))
      in
      if frame < k then
        (* assume the property in this frame *)
        List.iter (fun (_, l) -> Sat.add_clause solver [ lit_of l ]) pos
      else last_frame := lit_of;
      if frame < k then
        latch_vars :=
          Array.init n_latches (fun i ->
              let v = Sat.new_var solver in
              let next = lit_of (Aig.latch_next aig i) in
              Sat.add_clause solver [ Sat.Lit.neg v; next ];
              Sat.add_clause solver [ Sat.Lit.pos v; Sat.Lit.negate next ];
              v)
    done;
    (* can any PO be 0 at frame k? *)
    List.for_all
      (fun (_, l) ->
        incr calls;
        !calls <= max_sat_calls
        && Sat.solve ~assumptions:[ Sat.Lit.negate (!last_frame l) ] solver = Sat.Unsat)
      pos
  in
  let calls = ref 0 in
  let rec try_k k =
    if k > max_k then Unknown "max k reached"
    else if !calls > max_sat_calls then Unknown "sat calls"
    else begin
      (* base case: no violation within the first k frames *)
      match Bmc.check ~max_depth:(k - 1) ~max_sat_calls:(max_sat_calls - !calls) aig with
      | Bmc.Counterexample cex -> Refuted cex
      | Bmc.Budget what -> Unknown what
      | Bmc.No_counterexample _ -> if step_holds k calls then Proved k else try_k (k + 1)
    end
  in
  try_k 1
