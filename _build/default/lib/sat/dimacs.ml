(* DIMACS CNF reading/writing, for interop and for test fixtures. *)

type cnf = { nvars : int; clauses : int list list }
(* clauses hold DIMACS integers (1-based, sign = polarity) *)

let parse_string text =
  let nvars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ "p"; "cnf"; nv; _nc ] -> nvars := int_of_string nv
        | _ -> failwith "Dimacs.parse: malformed problem line"
      end
      else
        String.split_on_char ' ' line
        |> List.filter (fun s -> s <> "")
        |> List.iter (fun tok ->
               let i = int_of_string tok in
               if i = 0 then begin
                 clauses := List.rev !current :: !clauses;
                 current := []
               end
               else begin
                 nvars := max !nvars (abs i);
                 current := i :: !current
               end))
    lines;
  if !current <> [] then clauses := List.rev !current :: !clauses;
  { nvars = !nvars; clauses = List.rev !clauses }

let to_string { nvars; clauses } =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" nvars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let load_into solver { nvars; clauses } =
  Solver.ensure_vars solver nvars;
  List.iter
    (fun clause -> Solver.add_clause solver (List.map Lit.of_int clause))
    clauses
