lib/sat/sat.ml: Dimacs Lit Solver
