lib/sat/sat.mli: Format
