(* Literals encoded as ints: variable [v] yields literals [2v] (positive)
   and [2v+1] (negative), the usual MiniSat packing. *)

type t = int

let make v sign = if sign then 2 * v else (2 * v) + 1
let pos v = 2 * v
let neg v = (2 * v) + 1
let var (l : t) = l lsr 1
let negate (l : t) = l lxor 1
let sign (l : t) = l land 1 = 0

let to_int (l : t) =
  let v = var l + 1 in
  if sign l then v else -v

let of_int i =
  if i = 0 then invalid_arg "Lit.of_int: zero";
  if i > 0 then pos (i - 1) else neg (-i - 1)

let to_string l = string_of_int (to_int l)
let pp ppf l = Format.pp_print_string ppf (to_string l)
