lib/engines/cec.ml: Aig Aig_bdd Array Bdd Int64 List Printf Random Sat
