lib/engines/engines.mli: Aig Bdd Sat
