lib/engines/aig_bdd.ml: Aig Array Bdd
