lib/engines/engines.ml: Aig_bdd Cec
