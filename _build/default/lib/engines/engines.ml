(* Public API of the combinational-equivalence library; see engines.mli. *)

module Aig_bdd = Aig_bdd
module Cec = Cec
