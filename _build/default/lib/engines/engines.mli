(** Combinational equivalence checking — the "state-of-the-art
    combinational verification techniques" the paper's method lifts to
    sequential circuits. *)

(** Building BDDs for AIG nodes under a caller-chosen variable mapping. *)
module Aig_bdd : sig
  val build :
    Bdd.manager -> Aig.t -> pi_var:(int -> Bdd.t) -> latch_var:(int -> Bdd.t) -> int -> Bdd.t
  (** Eagerly build every node function; the result maps AIG literals to
      BDDs.  The PI/latch mapping choice serves combinational checking
      (latches free), traversal (latches = state variables) and the
      two-frame checks of signal correspondence (latches = delta). *)

  val build_default : Bdd.manager -> Aig.t -> int -> Bdd.t
  (** PIs on variables [0..], latch outputs following. *)
end

(** Equivalence of two combinational(ly viewed) AIGs: latch outputs are
    treated as free inputs, so [Equivalent] means equal in every state. *)
module Cec : sig
  type engine = [ `Bdd | `Sat | `Hybrid ]

  type counterexample = { cex_pis : bool array; cex_latches : bool array }

  type verdict = Equivalent | Different of counterexample

  val interface_compatible : Aig.t -> Aig.t -> bool

  val check : ?engine:engine -> Aig.t -> Aig.t -> verdict
  (** Compare all outputs (paired by name).  [`Hybrid] simulates first and
      only calls SAT on simulation-indistinguishable pairs.
      @raise Invalid_argument on interface or output-name mismatch. *)

  val check_bdd : Aig.t -> Aig.t -> verdict
  val check_sat : Aig.t -> Aig.t -> verdict
  val check_hybrid : ?seed:int -> ?n_words:int -> Aig.t -> Aig.t -> verdict

  val confirm_counterexample : Aig.t -> Aig.t -> counterexample -> bool
  (** Validate a counterexample by simulation. *)

  (** Reusable SAT context for repeated pair queries. *)
  type sat_ctx = {
    solver : Sat.t;
    pi_vars : int array;
    latch_vars : int array;
    lit1 : int -> Sat.Lit.t;
    lit2 : int -> Sat.Lit.t;
  }

  val make_sat_ctx : Aig.t -> Aig.t -> sat_ctx
  val sat_lits_equal : sat_ctx -> Sat.Lit.t -> Sat.Lit.t -> counterexample option
end
