(* Combinational equivalence checking of two AIGs: the "powerful base
   verification algorithm" that the paper's method lifts to sequential
   circuits.  Latch outputs are treated as free inputs (cut points), so
   this is exactly the check available once a register correspondence is
   known.

   Three engines: monolithic BDDs, SAT on the Tseitin encoding, and a
   simulation-first hybrid that only calls SAT on simulation-equivalent
   output pairs. *)

type engine = [ `Bdd | `Sat | `Hybrid ]

type counterexample = { cex_pis : bool array; cex_latches : bool array }

type verdict = Equivalent | Different of counterexample

let interface_compatible a1 a2 =
  Aig.num_pis a1 = Aig.num_pis a2 && Aig.num_latches a1 = Aig.num_latches a2

let paired_outputs a1 a2 =
  let o1 = Aig.pos a1 and o2 = Aig.pos a2 in
  if List.length o1 <> List.length o2 then
    invalid_arg "Cec: output counts differ";
  List.map
    (fun (name, l1) ->
      match List.assoc_opt name o2 with
      | Some l2 -> (name, l1, l2)
      | None -> invalid_arg (Printf.sprintf "Cec: output %s missing" name))
    o1

(* --- BDD engine ---------------------------------------------------------- *)

let check_bdd a1 a2 =
  if not (interface_compatible a1 a2) then invalid_arg "Cec.check_bdd: interfaces";
  let m = Bdd.create () in
  let n_pis = Aig.num_pis a1 in
  let pi_var i = Bdd.var m i in
  let latch_var i = Bdd.var m (n_pis + i) in
  let f1 = Aig_bdd.build m a1 ~pi_var ~latch_var in
  let f2 = Aig_bdd.build m a2 ~pi_var ~latch_var in
  let n_latches = Aig.num_latches a1 in
  let rec scan = function
    | [] -> Equivalent
    | (_, l1, l2) :: rest ->
      let diff = Bdd.mk_xor m (f1 l1) (f2 l2) in
      if Bdd.is_false diff then scan rest
      else
        let cube = match Bdd.any_sat diff with Some c -> c | None -> assert false in
        let assign = Array.make (n_pis + n_latches) false in
        List.iter (fun (v, b) -> assign.(v) <- b) cube;
        Different
          {
            cex_pis = Array.sub assign 0 n_pis;
            cex_latches = Array.sub assign n_pis n_latches;
          }
  in
  scan (paired_outputs a1 a2)

(* --- SAT engine ----------------------------------------------------------- *)

(* A reusable SAT context holding both circuits over shared input/latch
   variables; pair checks are assumption-based so learned clauses are kept
   across queries. *)
type sat_ctx = {
  solver : Sat.t;
  pi_vars : int array;
  latch_vars : int array;
  lit1 : int -> Sat.Lit.t;
  lit2 : int -> Sat.Lit.t;
}

let make_sat_ctx a1 a2 =
  if not (interface_compatible a1 a2) then invalid_arg "Cec.make_sat_ctx: interfaces";
  let solver = Sat.create () in
  let pi_vars = Array.init (Aig.num_pis a1) (fun _ -> Sat.new_var solver) in
  let latch_vars = Array.init (Aig.num_latches a1) (fun _ -> Sat.new_var solver) in
  let lit1 =
    Aig.Cnf.encode solver a1 ~pi_var:(fun i -> pi_vars.(i))
      ~latch_var:(fun i -> latch_vars.(i))
  in
  let lit2 =
    Aig.Cnf.encode solver a2 ~pi_var:(fun i -> pi_vars.(i))
      ~latch_var:(fun i -> latch_vars.(i))
  in
  { solver; pi_vars; latch_vars; lit1; lit2 }

(* Are two SAT literals equivalent under the context's clauses?  Adds a
   fresh selector encoding (s -> l1 <> l2) and solves under assumption s. *)
let sat_lits_equal ctx sl1 sl2 =
  let s = Sat.new_var ctx.solver in
  let sl = Sat.Lit.pos s in
  let ns = Sat.Lit.negate sl in
  Sat.add_clause ctx.solver [ ns; sl1; sl2 ];
  Sat.add_clause ctx.solver [ ns; Sat.Lit.negate sl1; Sat.Lit.negate sl2 ];
  match Sat.solve ~assumptions:[ sl ] ctx.solver with
  | Sat.Unsat ->
    (* retire the selector so the clauses become vacuous *)
    Sat.add_clause ctx.solver [ ns ];
    None
  | Sat.Sat ->
    let cex_pis = Array.map (fun v -> Sat.value ctx.solver v) ctx.pi_vars in
    let cex_latches = Array.map (fun v -> Sat.value ctx.solver v) ctx.latch_vars in
    Sat.add_clause ctx.solver [ ns ];
    Some { cex_pis; cex_latches }

let check_sat a1 a2 =
  let ctx = make_sat_ctx a1 a2 in
  let rec scan = function
    | [] -> Equivalent
    | (_, l1, l2) :: rest -> (
      match sat_lits_equal ctx (ctx.lit1 l1) (ctx.lit2 l2) with
      | None -> scan rest
      | Some cex -> Different cex)
  in
  scan (paired_outputs a1 a2)

(* --- hybrid engine --------------------------------------------------------- *)

(* Random simulation first: a differing pattern is extracted directly; SAT
   confirms only the pairs simulation cannot distinguish. *)
let check_hybrid ?(seed = 1) ?(n_words = 16) a1 a2 =
  if not (interface_compatible a1 a2) then invalid_arg "Cec.check_hybrid: interfaces";
  let n_pis = Aig.num_pis a1 and n_latches = Aig.num_latches a1 in
  let rng = Random.State.make [| seed |] in
  let word () = Random.State.int64 rng Int64.max_int in
  let outputs = paired_outputs a1 a2 in
  let sim_difference () =
    let rec try_words k =
      if k = 0 then None
      else begin
        let pi_words = Array.init n_pis (fun _ -> word ()) in
        let latch_words = Array.init n_latches (fun _ -> word ()) in
        let v1 = Aig.Sim.eval_comb a1 ~pi_words ~latch_words in
        let v2 = Aig.Sim.eval_comb a2 ~pi_words ~latch_words in
        let diff =
          List.find_map
            (fun (_, l1, l2) ->
              let d = Int64.logxor (Aig.Sim.lit_word v1 l1) (Aig.Sim.lit_word v2 l2) in
              if d = 0L then None
              else begin
                (* locate a differing bit position *)
                let rec bit i = if Int64.logand (Int64.shift_right_logical d i) 1L = 1L then i else bit (i + 1) in
                Some (bit 0, pi_words, latch_words)
              end)
            outputs
        in
        match diff with None -> try_words (k - 1) | some -> some
      end
    in
    try_words n_words
  in
  match sim_difference () with
  | Some (bit, pi_words, latch_words) ->
    let get words i = Int64.logand (Int64.shift_right_logical words.(i) bit) 1L = 1L in
    Different
      {
        cex_pis = Array.init n_pis (get pi_words);
        cex_latches = Array.init n_latches (get latch_words);
      }
  | None -> check_sat a1 a2

let check ?(engine = `Hybrid) a1 a2 =
  match engine with
  | `Bdd -> check_bdd a1 a2
  | `Sat -> check_sat a1 a2
  | `Hybrid -> check_hybrid a1 a2

(* Validate a counterexample by simulation: true when the outputs really
   differ under the assignment. *)
let confirm_counterexample a1 a2 cex =
  let to_words arr = Array.map (fun b -> if b then -1L else 0L) arr in
  let v1 = Aig.Sim.eval_comb a1 ~pi_words:(to_words cex.cex_pis) ~latch_words:(to_words cex.cex_latches) in
  let v2 = Aig.Sim.eval_comb a2 ~pi_words:(to_words cex.cex_pis) ~latch_words:(to_words cex.cex_latches) in
  List.exists
    (fun (_, l1, l2) ->
      Int64.logand 1L (Int64.logxor (Aig.Sim.lit_word v1 l1) (Aig.Sim.lit_word v2 l2))
      = 1L)
    (paired_outputs a1 a2)
