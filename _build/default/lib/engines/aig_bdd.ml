(* Building BDDs for every node of an AIG.  The variable mapping for PIs
   and latch outputs is supplied by the caller, so the same code serves
   combinational equivalence (latches as free inputs), symbolic traversal
   (latches as current-state variables) and the two-time-frame checks of
   signal correspondence. *)

(* Returns a function from AIG literal to BDD.  All node functions are
   built eagerly in topological (id) order. *)
let build m aig ~pi_var ~latch_var =
  let n = Aig.num_nodes aig in
  let funcs = Array.make n Bdd.zero in
  let bdd_of_lit l =
    let f = funcs.(Aig.node_of_lit l) in
    if Aig.lit_is_compl l then Bdd.mk_not m f else f
  in
  for id = 0 to n - 1 do
    funcs.(id) <-
      (match Aig.node aig id with
      | Aig.Const -> Bdd.zero
      | Aig.Pi i -> pi_var i
      | Aig.Latch i -> latch_var i
      | Aig.And (a, b) -> Bdd.mk_and m (bdd_of_lit a) (bdd_of_lit b))
  done;
  bdd_of_lit

(* Standard variable layout used by several clients: PIs first, then latch
   outputs (optionally interleaved later by reordering). *)
let build_default m aig =
  let n_pis = Aig.num_pis aig in
  build m aig
    ~pi_var:(fun i -> Bdd.var m i)
    ~latch_var:(fun i -> Bdd.var m (n_pis + i))
