(* Public API of the synthesis-transformation library; see transform.mli. *)

module Retime = Retime
module Opt = Opt
module Fraig = Fraig
module Mutate = Mutate
